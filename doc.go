// Package repro is a from-scratch Go reproduction of the serverless
// ecosystem deconstructed in "Le Taureau: Deconstructing the Serverless
// Landscape & A Look Forward" (Khandelwal, Kejariwal, Ramasamy — SIGMOD
// 2020): a FaaS platform with demand-driven scaling and fine-grained
// billing, the BaaS substrates (blob store, transactional database, queues),
// a Step-Functions-style orchestrator, a Pulsar-style messaging cluster
// (brokers, BookKeeper-style ledgers, ZooKeeper-style coordination, Pulsar
// Functions), the Jiffy ephemeral-state store, a data-sketch library, and
// the analytics/ML workloads the paper surveys.
//
// Start at internal/core for the assembled platform, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the experiment results. The
// examples/ directory holds runnable programs; cmd/benchrunner regenerates
// every experiment table.
package repro
