package repro

// Allocation-regression gate for the two hot paths the PR6 rework made
// allocation-free (DESIGN.md §10). These run in CI's alloc-gate job, so a
// change that quietly reintroduces a per-request or per-publish heap
// allocation fails the build instead of showing up three PRs later as a
// bench regression.
//
// Both tests warm up well past the lazy one-time allocations (pool seeding,
// duration/billing rings, tracer retention cap) before measuring: the gate
// is about steady state, not first-touch cost.

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/obs"
)

// TestWarmInvokeZeroAllocs pins the warm synchronous invoke path at zero
// heap allocations per request.
func TestWarmInvokeZeroAllocs(t *testing.T) {
	p := core.New(core.Options{})
	if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return in, nil
	}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
		t.Fatal(err)
	}
	// Past the tracer retention cap and every lazily-built ring.
	for i := 0; i < 20000; i++ {
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(2000, func() {
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("warm invoke allocates %.3f allocs/op, want 0", got)
	}
}

// TestPublishSyncAtMostOneAlloc pins the synchronous publish path at ≤1
// alloc per message. The budget covers the amortized arena-block refill
// (one 64KB block per ~200 entries) and topic-cache growth; a per-publish
// message copy or a rebuilt map would blow well past it.
func TestPublishSyncAtMostOneAlloc(t *testing.T) {
	p := core.New(core.Options{PulsarBatchMax: 1, PulsarFlushInterval: time.Hour})
	if err := p.Pulsar.CreateTopic("alloc-gate", 0); err != nil {
		t.Fatal(err)
	}
	prod, err := p.Pulsar.CreateProducer("alloc-gate")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 256)
	for i := 0; i < 20000; i++ {
		if _, err := prod.Send(payload); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(2000, func() {
		if _, err := prod.Send(payload); err != nil {
			t.Fatal(err)
		}
	})
	if got > 1 {
		t.Fatalf("sync publish allocates %.3f allocs/op, want <= 1", got)
	}
}

// TestWarmInvokeTracedZeroAllocs pins the warm invoke path at zero allocs
// with tracing *actively staging* spans. The tail sampler is configured to
// discard every normal trace (KeepFraction 0, nothing slow enough to force
// a keep), so the retention buffer never fills and the full-tracer
// short-circuit the plain gate eventually hits can never kick in: every
// measured invoke runs the real span staging, finalization and sampling
// machinery. Per-trace buffers must come from the tracer's free list and
// span contexts from atomics for this to stay at zero.
func TestWarmInvokeTracedZeroAllocs(t *testing.T) {
	p := core.New(core.Options{})
	p.Obs.Tracer().SetSampler(obs.SamplerConfig{
		Seed:          7,
		KeepFraction:  0,
		SlowThreshold: time.Hour,
	})
	if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return in, nil
	}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000; i++ {
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			t.Fatal(err)
		}
	}
	got := testing.AllocsPerRun(2000, func() {
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			t.Fatal(err)
		}
	})
	if got != 0 {
		t.Fatalf("traced warm invoke allocates %.3f allocs/op, want 0", got)
	}
	if st := p.Obs.Tracer().Stats(); st.DiscardedTraces == 0 {
		t.Fatalf("sampler never discarded a trace (stats %+v); the gate is not exercising staging", st)
	}
}
