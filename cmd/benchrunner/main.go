// Command benchrunner regenerates every experiment table in DESIGN.md §2
// (E1-E25), the reproduction's counterpart to the evaluation section a
// systems paper would carry. Each experiment runs on a fresh deterministic
// virtual-clock platform.
//
// Usage:
//
//	benchrunner            # run every experiment
//	benchrunner -e E4      # run one experiment
//	benchrunner -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		exp  = flag.String("e", "", "run a single experiment by ID (e.g. E4)")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return
	}
	run := experiments.All()
	if *exp != "" {
		e, ok := experiments.ByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *exp)
			os.Exit(1)
		}
		run = []experiments.Experiment{e}
	}
	for _, e := range run {
		start := time.Now()
		table := e.Run()
		fmt.Print(table)
		fmt.Printf("(%s took %v real)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
