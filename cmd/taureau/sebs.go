package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/sebs"
)

// runSebs executes the SeBS-style end-to-end suite — every app driven
// through the real HTTP gateway on the virtual clock — and prints the JSON
// report to stdout.
func runSebs(requests int, apps string) {
	cfg := sebs.Config{Requests: requests}
	if apps != "" {
		cfg.Apps = strings.Split(apps, ",")
	}
	rep, err := sebs.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println(string(out))
}

// runGateway serves the v1 REST API (plus the telemetry endpoints) on a
// real-clock platform until killed. Tokens arrive as
// "token=tenant,token=tenant"; the in-process executor exposes the builtin
// handlers (echo, work, fail), so the whole register→invoke→invoice loop is
// curl-able with no Go code.
func runGateway(addr, tokenSpec string) {
	tokens := make(map[string]string)
	for _, pair := range strings.Split(tokenSpec, ",") {
		tok, tenant, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || tok == "" || tenant == "" {
			fmt.Fprintf(os.Stderr, "bad -tokens entry %q (want token=tenant)\n", pair)
			os.Exit(1)
		}
		tokens[tok] = tenant
	}
	p := core.New(core.Options{})
	gw := gateway.New(p, gateway.Config{Tokens: tokens, Executor: gateway.NewInProc()})
	handler := p.Obs.Handler(
		obs.Route{Pattern: "/v1/", Handler: gw.ServeHTTP},
		obs.Route{Pattern: "/healthz", Handler: gw.ServeHTTP},
	)
	fmt.Printf("taureau gateway: serving v1 API + telemetry on %s (%d tenant tokens)\n", addr, len(tokens))
	if err := http.ListenAndServe(addr, handler); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
