// Command taureau is the platform's CLI: it boots a full in-process
// serverless deployment (FaaS + BaaS + Pulsar + Jiffy + orchestration) and
// runs a named demo scenario against it, printing what happened and what it
// cost. It is the quickest way to poke at the public API without writing a
// program.
//
// Usage:
//
//	taureau -demo invoke      # deploy + invoke a function, show the bill
//	taureau -demo pipeline    # blob-triggered orchestrated ETL
//	taureau -demo stream      # Count-Min as a Pulsar function (Fig. 3)
//	taureau -demo state       # Jiffy namespaces, scaling, leases
//	taureau -demo oram        # Path ORAM access-pattern hiding (§6)
//	taureau -demo burst       # autoscaler under a 10× open-loop burst (§4.1)
//	taureau -demo rebalance   # broker load manager spreading hot partitions
//	taureau -list             # list demos
//
// Telemetry:
//
//	taureau -demo invoke -metrics                # metrics dump after the demo
//	taureau -demo stream -metrics -format prom   # Prometheus text exposition
//	taureau -demo pipeline -trace                # trace spans as a JSON list
//	taureau -demo pipeline -trace -trace-top 5   # 5 slowest traces as span trees
//	taureau -demo invoke -trace -trace-tenant demo   # one tenant's traces only
//	taureau -demo burst -slo                     # per-tenant SLO burn-rate report
//	taureau -demo stream -serve :9090            # keep serving /metrics + pprof
//	taureau -demo burst -serve :9090             # … plus /autoscale state and /slo
//	taureau -demo rebalance -serve :9090         # … plus the /brokers load report
//
// Chaos:
//
//	taureau -demo stream -chaos 42    # run the demo under seeded fault injection
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"sync"
	"time"

	"net/http"

	"repro/internal/autoscale"
	"repro/internal/blob"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/obs"
	"repro/internal/oram"
	"repro/internal/orchestrate"
	"repro/internal/pulsar"
	"repro/internal/scheduler"
	"repro/internal/simclock"
	"repro/internal/sketch"
	"repro/internal/workload"
)

var demos = map[string]func(*core.Platform, simclock.Clock){
	"invoke":    demoInvoke,
	"pipeline":  demoPipeline,
	"stream":    demoStream,
	"state":     demoState,
	"oram":      demoORAM,
	"burst":     demoBurst,
	"rebalance": demoRebalance,
}

func main() {
	var (
		demo        = flag.String("demo", "invoke", "demo scenario to run")
		list        = flag.Bool("list", false, "list demos and exit")
		metrics     = flag.Bool("metrics", false, "dump platform metrics after the demo")
		format      = flag.String("format", "text", "metrics dump format: text, prom, or json")
		trace       = flag.Bool("trace", false, "dump collected trace spans as JSON after the demo")
		traceTop    = flag.Int("trace-top", 0, "with -trace: print the N slowest traces (span trees, slowest first) instead of raw JSON")
		traceTenant = flag.String("trace-tenant", "", "with -trace: only traces attributed to this tenant")
		slo         = flag.Bool("slo", false, "print the per-tenant SLO burn-rate report after the demo")
		serve       = flag.String("serve", "", "after the demo, serve /metrics, /metrics.json, /trace, /slo and pprof on this address (e.g. :9090)")
		seed        = flag.Int64("chaos", -1, "seed=N: run the demo under a seeded fault schedule (bookie/broker/jiffy crashes, stragglers, drops); -1 disables")
		conformRun  = flag.Bool("conform", false, "run the execution-semantics conformance explorer over the reference workloads and exit")
		conformFull = flag.Bool("conform-full", false, "like -conform, but with the full schedule budget instead of the quick one")
		sebsRun     = flag.Bool("sebs", false, "run the SeBS-style end-to-end suite through the HTTP gateway and print the JSON report")
		sebsReqs    = flag.Int("sebs-requests", 0, "with -sebs: requests per app (0 = default 40)")
		sebsApps    = flag.String("sebs-apps", "", "with -sebs: comma-separated app subset (default all)")
		gatewayAddr = flag.String("gateway", "", "serve the v1 REST API + telemetry on this address (real clock; e.g. :8080) until killed")
		tokenSpec   = flag.String("tokens", "dev-token=dev", "with -gateway: comma-separated bearer token=tenant pairs")
	)
	flag.Parse()
	if *conformRun || *conformFull {
		runConformance(*conformFull)
		return
	}
	if *sebsRun {
		runSebs(*sebsReqs, *sebsApps)
		return
	}
	if *gatewayAddr != "" {
		runGateway(*gatewayAddr, *tokenSpec)
		return
	}
	if *list {
		names := make([]string, 0, len(demos))
		for n := range demos {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return
	}
	fn, ok := demos[*demo]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown demo %q; use -list\n", *demo)
		os.Exit(1)
	}
	platform, clock := core.NewVirtual(core.Options{})
	defer clock.Close()
	var inj *chaos.Injector
	clock.Run(func() {
		if *seed >= 0 {
			inj = startChaos(platform, clock, *seed)
		}
		fn(platform, clock)
		if inj != nil {
			inj.Wait()
		}
	})
	if inj != nil {
		fmt.Println("\nchaos events applied:")
		for _, line := range inj.Log() {
			fmt.Println("  " + line)
		}
	}
	fmt.Println()
	for _, tenant := range platform.Meter.Tenants() {
		fmt.Print(platform.Tenant(tenant).Invoice())
	}
	fmt.Printf("simulated time: %v\n", platform.Elapsed())

	if *metrics {
		fmt.Println()
		var err error
		switch *format {
		case "text":
			err = platform.Obs.WriteText(os.Stdout)
		case "prom":
			err = platform.Obs.WritePrometheus(os.Stdout)
		case "json":
			err = platform.Obs.WriteJSON(os.Stdout)
		default:
			fmt.Fprintf(os.Stderr, "unknown -format %q; use text, prom, or json\n", *format)
			os.Exit(1)
		}
		if err != nil {
			log.Fatal(err)
		}
	}
	if *trace || *traceTop > 0 || *traceTenant != "" {
		fmt.Println()
		if *traceTop > 0 || *traceTenant != "" {
			printTraces(platform.Obs.Tracer(), *traceTop, *traceTenant)
		} else {
			out, err := platform.Obs.Tracer().ExportJSON()
			if err != nil {
				log.Fatal(err)
			}
			os.Stdout.Write(out)
			fmt.Println()
		}
	}
	if *slo {
		fmt.Println()
		if err := platform.Obs.SLO().WriteSLOText(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	if *serve != "" {
		fmt.Printf("\nserving /metrics, /metrics.json, /trace, /autoscale, /brokers and /debug/pprof on %s (ctrl-c to stop)\n", *serve)
		autoscaleRoute := obs.Route{Pattern: "/autoscale", Handler: func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			var st autoscale.Status
			if platform.Autoscaler != nil {
				st = platform.Autoscaler.Status()
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(st)
		}}
		brokersRoute := obs.Route{Pattern: "/brokers", Handler: func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			var rep pulsar.LoadReport
			if platform.BrokerLoad != nil {
				rep = platform.BrokerLoad.Report()
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
		}}
		if err := platform.Obs.Serve(*serve, autoscaleRoute, brokersRoute); err != nil {
			log.Fatal(err)
		}
	}
}

func demoInvoke(p *core.Platform, clock simclock.Clock) {
	demo := p.Tenant("demo")
	if err := demo.Register("hello", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(30 * time.Millisecond)
		return []byte(fmt.Sprintf("hello %s", in)), nil
	}, faas.Config{MemoryMB: 256}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		res, err := demo.Invoke("hello", []byte(fmt.Sprintf("call-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-16s cold=%-5v latency=%-10v billed=%v\n", res.Output, res.Cold, res.Latency, res.Billed)
	}
}

func demoPipeline(p *core.Platform, clock simclock.Clock) {
	demo := p.Tenant("demo")
	if err := p.Blob.CreateBucket("in", "demo"); err != nil {
		log.Fatal(err)
	}
	for _, step := range []string{"extract", "transform", "load"} {
		step := step
		if err := demo.Register(step, func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			ctx.Work(25 * time.Millisecond)
			return append(in, []byte("|"+step)...), nil
		}, faas.Config{MemoryMB: 128}); err != nil {
			log.Fatal(err)
		}
	}
	if err := p.Orchestrator.RegisterComposition("etl", orchestrate.Chain(
		orchestrate.Task("extract"), orchestrate.Task("transform"), orchestrate.Task("load"),
	)); err != nil {
		log.Fatal(err)
	}
	var results []string
	faas.BindBlob(p.FaaS, p.Blob, "in", "driver")
	if err := demo.Register("driver", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		out, err := p.Orchestrator.Execute(orchestrate.Task("etl"), in)
		if err == nil {
			results = append(results, string(out))
		}
		return out, err
	}, faas.Config{MemoryMB: 128}); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := p.Blob.Put("in", fmt.Sprintf("obj-%d", i), []byte("x"), blob.PutOptions{}); err != nil {
			log.Fatal(err)
		}
	}
	clock.Sleep(2 * time.Second)
	fmt.Printf("pipeline ran %d times; sample output tail: %q\n", len(results), tail(results))
}

func demoStream(p *core.Platform, clock simclock.Clock) {
	if err := p.Pulsar.CreateTopic("clicks", 2); err != nil {
		log.Fatal(err)
	}
	cm := sketch.NewCountMinWH(20, 20)
	fn, err := p.Pulsar.StartFunction(pulsar.FunctionConfig{Name: "cm", Inputs: []string{"clicks"}},
		func(ctx *pulsar.FnContext, m pulsar.Message) ([]byte, error) {
			cm.Add(m.Key, 1)
			return nil, nil
		})
	if err != nil {
		log.Fatal(err)
	}
	prod, err := p.Pulsar.CreateProducer("clicks")
	if err != nil {
		log.Fatal(err)
	}
	keys := workload.ZipfKeys(100, 1.5, 2000, 7)
	for _, k := range keys {
		if _, err := prod.SendKey(k, nil); err != nil {
			log.Fatal(err)
		}
	}
	for i := 0; i < 10000 && fn.Processed() < int64(len(keys)); i++ {
		clock.Sleep(5 * time.Millisecond)
	}
	fn.Stop()
	fmt.Printf("processed %d events; estimate(key-0) = %d\n", fn.Processed(), cm.Estimate("key-0"))
}

func demoState(p *core.Platform, clock simclock.Clock) {
	app, err := p.Jiffy.CreateNamespace("/demo", jiffy.NamespaceOptions{Lease: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	task, err := app.CreateChild("task1", jiffy.NamespaceOptions{Lease: time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := task.Put(fmt.Sprintf("k%d", i), []byte("value")); err != nil {
			log.Fatal(err)
		}
	}
	moved, err := task.Scale(+3)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := json.Marshal(map[string]any{
		"namespace":  task.Path(),
		"blocks":     task.Blocks(),
		"used_bytes": task.UsedBytes(),
		"keys_moved": moved,
		"pool_free":  p.Jiffy.FreeBlocks(),
	})
	fmt.Printf("after scale(+3): %s\n", out)
	clock.Sleep(2 * time.Minute) // lease lapses
	p.Jiffy.ReapExpired()
	fmt.Printf("after lease expiry: pool free = %d (state reclaimed)\n", p.Jiffy.FreeBlocks())
}

func demoORAM(p *core.Platform, clock simclock.Clock) {
	if err := p.Blob.CreateBucket("secure", "demo"); err != nil {
		log.Fatal(err)
	}
	client, err := oram.New(p.Blob, "secure", "tree", 64, 7)
	if err != nil {
		log.Fatal(err)
	}
	start := clock.Now()
	if err := client.Write(13, []byte("the bull, plate XI")); err != nil {
		log.Fatal(err)
	}
	writeDur := clock.Now().Sub(start)
	start = clock.Now()
	data, err := client.Read(13)
	if err != nil {
		log.Fatal(err)
	}
	readDur := clock.Now().Sub(start)
	fmt.Printf("oram[13] = %q\n", data)
	fmt.Printf("each access touched exactly %d buckets (path length %d×2): write %v, read %v\n",
		2*(client.Levels()+1), client.Levels()+1, writeDur.Round(time.Millisecond), readDur.Round(time.Millisecond))
	fmt.Printf("the store observed %d reads and %d writes — none reveal which block was used\n",
		client.Reads, client.Writes)
}

// demoBurst drives the elastic control plane (§4.1) with an open-loop 10×
// burst: steady 2 rps, a 20 rps surge, then idle. The autoscaler panics up,
// absorbs the surge, re-converges, and finally scales the function — and the
// machines behind it — back to zero.
func demoBurst(p *core.Platform, clock simclock.Clock) {
	demo := p.Tenant("demo")
	// A machine fleet so the controller has something to grow and drain:
	// each machine holds four 1000-mCPU instances.
	p.FaaS.AttachCluster(scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{}), 0)
	if err := demo.Register("api", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(250 * time.Millisecond)
		return in, nil
	}, faas.Config{
		MemoryMB:        128,
		ColdStart:       200 * time.Millisecond,
		KeepAlive:       4 * time.Second,
		ColdStartBudget: 10 * time.Second,
	}); err != nil {
		log.Fatal(err)
	}
	ctrl := p.EnableAutoscale(autoscale.Config{
		TickInterval:     time.Second,
		StableWindow:     20 * time.Second,
		PanicWindow:      3 * time.Second,
		ScaleToZeroAfter: 5 * time.Second,
		DrainDelay:       4 * time.Second,
	})
	defer ctrl.Stop()

	const (
		baseRPS = 2.0
		window  = 30 * time.Second
	)
	rf := workload.Burst(baseRPS, 10, 5*time.Second, 5*time.Second)
	// Off-grid arrivals (+500µs) cannot race a same-instant autoscaler tick,
	// which keeps the virtual-clock run deterministic.
	arrivals := workload.OffsetArrivals(workload.Arrivals(rf, window, 42), 500*time.Microsecond)
	fmt.Printf("open-loop drive: %.0f rps steady, 10× burst at 5s for 5s — %d arrivals over %v\n",
		baseRPS, len(arrivals), window)

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		latencies []time.Duration
		cold      int
		peakWant  int
	)
	start := clock.Now()
	for _, at := range arrivals {
		at := at
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			clock.Sleep(at - clock.Now().Sub(start))
			res, err := demo.Invoke("api", []byte("r"))
			if err != nil {
				return
			}
			mu.Lock()
			latencies = append(latencies, res.Latency)
			if res.Cold {
				cold++
			}
			mu.Unlock()
		})
	}
	// Sample the controller's desired count while the surge is in flight.
	wg.Add(1)
	clock.Go(func() {
		defer wg.Done()
		for i := 0; i < 12; i++ {
			clock.Sleep(time.Second)
			for _, f := range ctrl.Status().Functions {
				if f.Name == "api" && f.Desired > peakWant {
					peakWant = f.Desired
				}
			}
		}
	})
	clock.BlockOn(wg.Wait)

	p99, _ := faas.PercentileOK(latencies, 99)
	fmt.Printf("served %d/%d invocations (%d cold starts), p99 %v, peak desired instances %d\n",
		len(latencies), len(arrivals), cold, p99.Round(time.Millisecond), peakWant)

	clock.Sleep(15 * time.Second) // idle: scale-to-zero + machine drain
	st := ctrl.Status()
	pool, _ := p.FaaS.PoolTarget("api")
	fmt.Printf("after %v idle: pool=%d machines=%d retired=%d (scale-to-zero reclaimed the fleet)\n",
		15*time.Second, pool, st.Machines, st.Retired)
}

// startChaos generates a seeded fault schedule against the platform's
// bookies, brokers and Jiffy nodes and starts replaying it alongside the
// demo. Bookie straggler events are filtered out: the platform's bookie
// fleet is shared with Pulsar, whose brokers append under topic locks, and
// a sleeper holding a lock the injector contends stalls the virtual clock.
func startChaos(p *core.Platform, clock simclock.Clock, seed int64) *chaos.Injector {
	inj := chaos.NewInjector(clock, p.Ledgers, p.Pulsar, p.Jiffy)
	if p.Obs != nil {
		inj.SetObs(p.Obs)
	}
	sch := chaos.Generate(chaos.Options{
		Seed:       seed,
		Duration:   500 * time.Millisecond,
		Bookies:    p.Ledgers.BookieIDs(),
		Brokers:    p.Pulsar.BrokerIDs(),
		JiffyNodes: p.Jiffy.NodeIDs(),
	})
	filtered := sch[:0]
	for _, e := range sch {
		if e.Kind == chaos.KindBookie && e.Op == chaos.OpSlow {
			continue
		}
		filtered = append(filtered, e)
	}
	fmt.Printf("chaos: seed %d, %d faults over 500ms\n\n", seed, len(filtered))
	inj.Run(filtered)
	return inj
}

// printTraces renders retained traces as indented span trees, slowest root
// first — the -trace-top / -trace-tenant view. top <= 0 means "all".
func printTraces(tr *obs.Tracer, top int, tenant string) {
	traces := tr.Traces()
	if tenant != "" {
		kept := traces[:0]
		for _, t := range traces {
			if t.Tenant == tenant {
				kept = append(kept, t)
			}
		}
		traces = kept
	}
	sort.SliceStable(traces, func(i, j int) bool { return traces[i].Duration > traces[j].Duration })
	if top > 0 && len(traces) > top {
		traces = traces[:top]
	}
	if len(traces) == 0 {
		fmt.Println("no matching traces")
		return
	}
	for _, t := range traces {
		errMark := ""
		if t.Err {
			errMark = "  ERR"
		}
		fmt.Printf("trace %016x  %-24s tenant=%-12s dur=%-12v spans=%d%s\n",
			uint64(t.TraceID), t.Name, valueOr(t.Tenant, "-"), t.Duration, t.Spans, errMark)
		spans := tr.TraceSpans(t.TraceID)
		children := map[int64][]obs.SpanData{}
		for _, sd := range spans {
			children[sd.ParentID] = append(children[sd.ParentID], sd)
		}
		for pid := range children {
			kids := children[pid]
			sort.Slice(kids, func(i, j int) bool {
				if !kids[i].Start.Equal(kids[j].Start) {
					return kids[i].Start.Before(kids[j].Start)
				}
				return kids[i].Name < kids[j].Name
			})
		}
		var walk func(id int64, depth int)
		walk = func(id int64, depth int) {
			for _, sd := range children[id] {
				mark := ""
				if sd.Err {
					mark = "  ERR"
				}
				fmt.Printf("  %*s%-*s %v%s\n", 2*depth, "", 30-2*depth, sd.Name, sd.Duration, mark)
				walk(sd.SpanID, depth+1)
			}
		}
		// Roots are spans whose parent is not in this trace (ParentID 0).
		walk(0, 0)
	}
}

func valueOr(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

func tail(s []string) string {
	if len(s) == 0 {
		return ""
	}
	return s[len(s)-1]
}

// demoRebalance pins a fleet of topics onto one broker, drives skewed
// publish load, and lets the broker load manager spread the hot partitions
// across the cluster through cursor-exact ownership handoffs. With
// -serve :9090 the final /brokers endpoint reports the per-broker load.
func demoRebalance(p *core.Platform, clock simclock.Clock) {
	topics := []string{"orders", "payments", "carts", "emails", "fraud", "audit"}
	prods := make([]*pulsar.Producer, len(topics))
	for i, tp := range topics {
		if err := p.Pulsar.CreateTopic(tp, 0); err != nil {
			log.Fatal(err)
		}
		if err := p.Pulsar.MoveTopic(tp, "broker-0"); err != nil {
			log.Fatal(err)
		}
		prod, err := p.Pulsar.CreateProducer(tp)
		if err != nil {
			log.Fatal(err)
		}
		prods[i] = prod
	}
	fmt.Printf("%d topics pinned to broker-0; load manager sampling every 100ms\n", len(topics))
	lm := p.EnableBrokerLoadManager(pulsar.LoadManagerConfig{
		Interval:       100*time.Millisecond + 333*time.Nanosecond,
		OverloadFactor: 1.1,
		MinMoveRate:    10,
	})
	defer lm.Stop()

	// Skewed load: topic i publishes (i+1)×50 msg per 100ms round.
	payload := workload.Payload(256, 7)
	for round := 0; round < 10; round++ {
		for i, prod := range prods {
			for n := 0; n < (i+1)*5; n++ {
				if _, err := prod.Send(payload); err != nil {
					log.Fatal(err)
				}
			}
		}
		clock.Sleep(100 * time.Millisecond)
	}

	rep := lm.Report()
	fmt.Printf("\nload manager: %d moves, %d splits\n", rep.Moves, rep.Splits)
	for _, ev := range rep.Events {
		fmt.Printf("  %-5s %-10s %s → %s\n", ev.Action, ev.Topic, ev.From, ev.To)
	}
	fmt.Println()
	for _, b := range rep.Brokers {
		fmt.Printf("%-10s topics=%d rate=%.0f msg/s\n", b.ID, b.Topics, b.MsgsPerSec)
	}
}
