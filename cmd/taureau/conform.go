package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/conform"
)

// runConformance explores every reference workload with the deterministic
// interleaving explorer and reports each verdict against its locked
// expectation. A divergent workload prints its minimal witness schedule as
// JSON — replayable via conform.RunSchedule — and a verdict that contradicts
// the reference expectation fails the process.
func runConformance(full bool) {
	opts := conform.Options{MaxSchedules: 60, Parallelism: 4}
	if full {
		opts.MaxSchedules = 300
	}
	fmt.Printf("execution-semantics conformance (budget %d schedules/workload)\n\n", opts.MaxSchedules)
	failed := false
	for _, ref := range conform.References() {
		rep, err := conform.Explore(ref.Workload, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%-22s explorer error: %v\n", ref.Workload.Name, err)
			failed = true
			continue
		}
		verdict := "CONFORMANT"
		if !rep.Conformant {
			verdict = "DIVERGENT"
		}
		match := "ok"
		if rep.Conformant != ref.WantConformant {
			match = "UNEXPECTED"
			failed = true
		}
		fmt.Printf("%-22s %-11s %s  (%d interleavings, %d effect points, billing-as-predicted=%v)\n",
			ref.Workload.Name, verdict, match, rep.Explored, rep.EffectPoints, rep.BillingOK)
		fmt.Printf("%22s   %s\n", "", ref.Why)
		if rep.Witness != nil {
			w, err := json.Marshal(rep.Witness)
			if err == nil {
				fmt.Printf("%22s   witness: %s\n", "", w)
			}
			fmt.Printf("%22s   %s\n", "", rep.Witness.Diff)
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "\nconformance verdicts diverged from the reference expectations")
		os.Exit(1)
	}
	fmt.Println("\nall reference verdicts match")
}
