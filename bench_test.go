package repro

// Benchmarks mirroring the experiment suite (DESIGN.md §2): one testing.B
// benchmark per experiment table E1-E18, plus micro-benchmarks for the hot
// paths (function invocation, message publish, sketch update, ephemeral
// put/get). Experiment benchmarks execute a full deterministic simulation
// per iteration; the interesting output is the tables themselves
// (cmd/benchrunner prints them) — here we measure how long regenerating each
// one takes.

import (
	"errors"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analytics"
	"repro/internal/autoscale"
	"repro/internal/conform"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/faas"
	"repro/internal/gateway"
	"repro/internal/jiffy"
	"repro/internal/obs"
	"repro/internal/orchestrate"
	"repro/internal/pulsar"
	"repro/internal/scheduler"
	"repro/internal/simclock"
	"repro/internal/sketch"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	if testing.Short() {
		b.Skip("experiment benchmarks skipped in -short mode (full simulation per iteration)")
	}
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		tb := e.Run()
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1CostEfficiency(b *testing.B)    { benchExperiment(b, "E1") }
func BenchmarkE2Elasticity(b *testing.B)        { benchExperiment(b, "E2") }
func BenchmarkE3ColdStart(b *testing.B)         { benchExperiment(b, "E3") }
func BenchmarkE4EphemeralState(b *testing.B)    { benchExperiment(b, "E4") }
func BenchmarkE5Isolation(b *testing.B)         { benchExperiment(b, "E5") }
func BenchmarkE6PulsarSketch(b *testing.B)      { benchExperiment(b, "E6") }
func BenchmarkE7Orchestration(b *testing.B)     { benchExperiment(b, "E7") }
func BenchmarkE8Training(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9Stragglers(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Matmul(b *testing.B)           { benchExperiment(b, "E10") }
func BenchmarkE11Multiplexing(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12BinPacking(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Video(b *testing.B)            { benchExperiment(b, "E13") }
func BenchmarkE14SeqCompare(b *testing.B)       { benchExperiment(b, "E14") }
func BenchmarkE15PulsarDurability(b *testing.B) { benchExperiment(b, "E15") }
func BenchmarkE16Hyperparam(b *testing.B)       { benchExperiment(b, "E16") }
func BenchmarkE17Inference(b *testing.B)        { benchExperiment(b, "E17") }
func BenchmarkE18Leases(b *testing.B)           { benchExperiment(b, "E18") }
func BenchmarkE19Security(b *testing.B)         { benchExperiment(b, "E19") }
func BenchmarkE20SLA(b *testing.B)              { benchExperiment(b, "E20") }
func BenchmarkE21TieredStorage(b *testing.B)    { benchExperiment(b, "E21") }
func BenchmarkE22Provisioned(b *testing.B)      { benchExperiment(b, "E22") }
func BenchmarkE23ORAM(b *testing.B)             { benchExperiment(b, "E23") }
func BenchmarkE24IsolationTech(b *testing.B)    { benchExperiment(b, "E24") }
func BenchmarkE25Evolution(b *testing.B)        { benchExperiment(b, "E25") }
func BenchmarkE26ChaosRecovery(b *testing.B)    { benchExperiment(b, "E26") }
func BenchmarkE27Elastic(b *testing.B)          { benchExperiment(b, "E27") }

// --- micro-benchmarks on the real clock (data-plane hot paths) ---

// BenchmarkInvokeWarm measures warm synchronous invocation overhead.
func BenchmarkInvokeWarm(b *testing.B) {
	p := core.New(core.Options{})
	if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return in, nil
	}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
		b.Fatal(err)
	}
	if _, err := p.FaaS.Invoke("noop", nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGatewayInvoke measures the same warm invocation as
// BenchmarkInvokeWarm, but end-to-end through the HTTP gateway: a live TCP
// listener, bearer auth, request parsing, the clock-worker handoff, header
// marshalling and the streamed response. The delta against InvokeWarm is
// the full HTTP-path overhead. One op is one HTTP round trip, so this runs
// at its own (smaller) fixed iteration count in bench.sh.
func BenchmarkGatewayInvoke(b *testing.B) {
	p := core.New(core.Options{})
	gw := gateway.New(p, gateway.Config{Tokens: map[string]string{"bench-token": "bench"}})
	srv := httptest.NewServer(gw)
	defer srv.Close()
	if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return in, nil
	}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
		b.Fatal(err)
	}
	client := &gateway.Client{BaseURL: srv.URL, Token: "bench-token"}
	if _, err := client.Invoke("noop", nil); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Invoke("noop", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBreakerFastFail measures the open-breaker rejection path: an
// invoke against a tripped function must be refused before a concurrency
// slot is reserved, so the steady-state cost of shedding load is a lookup
// plus the breaker check.
func BenchmarkBreakerFastFail(b *testing.B) {
	p := core.New(core.Options{})
	if err := p.FaaS.Register("flaky", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return nil, errors.New("boom")
	}, faas.Config{WarmStart: 1, ColdStart: 1, BreakerThreshold: 3, BreakerCooldown: time.Hour}); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_, _ = p.FaaS.Invoke("flaky", nil)
	}
	if st, err := p.FaaS.BreakerState("flaky"); err != nil || st != "open" {
		b.Fatalf("breaker = %q, %v; want open", st, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.FaaS.Invoke("flaky", nil); !errors.Is(err, faas.ErrCircuitOpen) {
			b.Fatalf("want ErrCircuitOpen, got %v", err)
		}
	}
}

// BenchmarkInvokeWithRetry measures the retry wrapper's overhead:
// "first-try" is the happy path (no backoff slept), "one-retry" forces one
// failed attempt and a nanosecond backoff per call.
func BenchmarkInvokeWithRetry(b *testing.B) {
	pol := faas.RetryPolicy{MaxAttempts: 3, Base: time.Nanosecond, Jitter: -1}
	b.Run("first-try", func(b *testing.B) {
		p := core.New(core.Options{})
		if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.FaaS.InvokeWithRetry("noop", nil, pol); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("one-retry", func(b *testing.B) {
		p := core.New(core.Options{})
		var calls int64
		if err := p.FaaS.Register("flip", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			if atomic.AddInt64(&calls, 1)%2 == 1 {
				return nil, errors.New("transient")
			}
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := p.FaaS.InvokeWithRetry("flip", nil, pol)
			if err != nil {
				b.Fatal(err)
			}
			if res.Attempt != 2 {
				b.Fatalf("attempt = %d, want 2", res.Attempt)
			}
		}
	})
}

// BenchmarkPulsarPublish measures the publish path: broker → replicated
// ledger append → subscription dispatch. "sync" is one quorum round trip
// per message (batching disabled, the pre-batching behavior); "batchN"
// buffers N SendAsync messages per group-commit ledger append.
func BenchmarkPulsarPublish(b *testing.B) {
	payload := workload.Payload(256, 1)
	setup := func(b *testing.B, batch int) *pulsar.Producer {
		b.Helper()
		p := core.New(core.Options{PulsarBatchMax: batch, PulsarFlushInterval: time.Hour})
		if err := p.Pulsar.CreateTopic("bench", 0); err != nil {
			b.Fatal(err)
		}
		prod, err := p.Pulsar.CreateProducer("bench")
		if err != nil {
			b.Fatal(err)
		}
		return prod
	}
	b.Run("sync", func(b *testing.B) {
		prod := setup(b, 1)
		b.SetBytes(256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := prod.Send(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, batch := range []int{16, 64} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			prod := setup(b, batch)
			b.SetBytes(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := prod.SendAsync("", payload); err != nil {
					b.Fatal(err)
				}
			}
			if err := prod.Flush(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkObsOverhead quantifies what platform observability costs: the raw
// instrument primitives (striped counter, histogram observe, and their nil
// no-op forms), and the full Pulsar sync publish path with the registry
// attached versus core.Options{DisableObs: true}. The on/off publish pair is
// the number that matters — it bounds the tax every instrumented hot path
// pays.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("counter-inc", func(b *testing.B) {
		c := obs.New(nil).Counter("bench.counter")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("counter-inc-nil", func(b *testing.B) {
		var c *obs.Counter
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("histogram-observe", func(b *testing.B) {
		h := obs.New(nil).Histogram("bench.hist")
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	})
	b.Run("histogram-observe-nil", func(b *testing.B) {
		var h *obs.Histogram
		for i := 0; i < b.N; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
	})
	payload := workload.Payload(256, 1)
	for _, mode := range []struct {
		name    string
		disable bool
	}{
		{"publish-obs-on", false},
		{"publish-obs-off", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			p := core.New(core.Options{PulsarBatchMax: 1, PulsarFlushInterval: time.Hour, DisableObs: mode.disable})
			if err := p.Pulsar.CreateTopic("bench", 0); err != nil {
				b.Fatal(err)
			}
			prod, err := p.Pulsar.CreateProducer("bench")
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := prod.Send(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkJiffyPutGet measures ephemeral KV round trips (no modelled
// latency — the raw data-plane cost).
func BenchmarkJiffyPutGet(b *testing.B) {
	ctrl := jiffy.NewController(core.New(core.Options{}).Clock, nil, jiffy.Config{
		Latency: jiffy.NoLatency, DefaultLease: -1, BlockSize: 1 << 20,
	})
	ctrl.AddNode("n0", 64)
	ns, err := ctrl.CreateNamespace("/bench", jiffy.NamespaceOptions{InitialBlocks: 8})
	if err != nil {
		b.Fatal(err)
	}
	val := workload.Payload(128, 2)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%4096)
		if err := ns.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if _, err := ns.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeWarmParallel measures warm invocation under concurrent
// admission: 8 functions registered on one platform, parallel goroutines each
// pinned to their own function. The cost that matters is the platform-wide
// admission path (request-ID assignment, function-table lookup) — with a
// single platform mutex every tenant serializes there even though their
// functions are independent.
func BenchmarkInvokeWarmParallel(b *testing.B) {
	const nFuncs = 8
	p := core.New(core.Options{})
	names := make([]string, nFuncs)
	for i := range names {
		names[i] = fmt.Sprintf("noop%d", i)
		if err := p.FaaS.Register(names[i], "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour, MaxConcurrency: 1 << 20}); err != nil {
			b.Fatal(err)
		}
		if _, err := p.FaaS.Invoke(names[i], nil); err != nil {
			b.Fatal(err)
		}
	}
	var next atomic.Int64
	b.SetParallelism(4)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		name := names[int(next.Add(1)-1)%nFuncs]
		for pb.Next() {
			if _, err := p.FaaS.Invoke(name, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJiffyPutGetParallel measures the contended state plane: 64 tenant
// namespaces live on one controller while parallel goroutines run put+get
// round trips. "multins" pins each goroutine to its own namespace — the
// isolation case §4.4 demands (one tenant's traffic must not perturb
// another's); "sharedns" aims every goroutine at a single namespace (the
// worst-case hot tenant). A controller-wide mutex plus a full lease scan per
// op serializes both shapes identically; per-namespace locking separates
// them.
func BenchmarkJiffyPutGetParallel(b *testing.B) {
	const tenants = 64
	setup := func(b *testing.B) []*jiffy.Namespace {
		b.Helper()
		ctrl := jiffy.NewController(simclock.Real{}, nil, jiffy.Config{
			Latency: jiffy.NoLatency, DefaultLease: -1, BlockSize: 1 << 20,
		})
		ctrl.AddNode("n0", 4*tenants)
		nss := make([]*jiffy.Namespace, tenants)
		for i := range nss {
			ns, err := ctrl.CreateNamespace(fmt.Sprintf("/tenant%02d", i), jiffy.NamespaceOptions{InitialBlocks: 2})
			if err != nil {
				b.Fatal(err)
			}
			nss[i] = ns
		}
		return nss
	}
	val := workload.Payload(128, 2)
	b.Run("multins", func(b *testing.B) {
		nss := setup(b)
		var next atomic.Int64
		b.SetBytes(256)
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			ns := nss[int(next.Add(1)-1)%tenants]
			i := 0
			for pb.Next() {
				key := fmt.Sprintf("k%d", i%1024)
				i++
				if err := ns.Put(key, val); err != nil {
					b.Fatal(err)
				}
				if _, err := ns.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
	b.Run("sharedns", func(b *testing.B) {
		nss := setup(b)
		ns := nss[0]
		b.SetBytes(256)
		b.SetParallelism(4)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				key := fmt.Sprintf("k%d", i%1024)
				i++
				if err := ns.Put(key, val); err != nil {
					b.Fatal(err)
				}
				if _, err := ns.Get(key); err != nil {
					b.Fatal(err)
				}
			}
		})
	})
}

// BenchmarkAdmission measures what per-tenant admission costs on the warm
// invoke path: "off" is the uninstrumented baseline, "on" adds the weighted
// token-bucket admit per request (rate high enough that nothing ever queues,
// so the number is pure bookkeeping overhead).
func BenchmarkAdmission(b *testing.B) {
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			p := core.New(core.Options{})
			if mode.on {
				p.FaaS.SetAdmission(faas.AdmissionConfig{RatePerSecond: 1e9, Burst: 1e9})
			}
			bench := p.Tenant("bench")
			if err := bench.Register("noop", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
				return in, nil
			}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
				b.Fatal(err)
			}
			if _, err := bench.Invoke("noop", nil); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := bench.Invoke("noop", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAutoscaleTick measures one control-loop evaluation over a
// 64-function platform with a cluster attached — the recurring cost the
// elastic control plane adds per tick, independent of traffic.
func BenchmarkAutoscaleTick(b *testing.B) {
	p := core.New(core.Options{})
	p.FaaS.AttachCluster(scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{}), 0)
	bench := p.Tenant("bench")
	for i := 0; i < 64; i++ {
		if err := bench.Register(fmt.Sprintf("fn%d", i), func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1}); err != nil {
			b.Fatal(err)
		}
	}
	ctrl := autoscale.New(p.Clock, p.FaaS, p.FaaS.Cluster(), autoscale.Config{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctrl.Tick()
	}
}

// BenchmarkCountMinAdd measures the Figure-3 sketch's update path.
func BenchmarkCountMinAdd(b *testing.B) {
	cm := sketch.NewCountMinWH(272, 5)
	keys := workload.ZipfKeys(10000, 1.2, 4096, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Add(keys[i%len(keys)], 1)
	}
}

// BenchmarkAblationCountMinUpdate contrasts the standard and conservative
// Count-Min update rules: speed here, accuracy in the companion test
// TestConservativeTighterThanStandard — the DESIGN.md sketch-accuracy
// ablation.
func BenchmarkAblationCountMinUpdate(b *testing.B) {
	keys := workload.ZipfKeys(10000, 1.2, 4096, 3)
	b.Run("standard", func(b *testing.B) {
		cm := sketch.NewCountMinWH(272, 5)
		for i := 0; i < b.N; i++ {
			cm.Add(keys[i%len(keys)], 1)
		}
	})
	b.Run("conservative", func(b *testing.B) {
		cm := sketch.NewCountMinWH(272, 5)
		for i := 0; i < b.N; i++ {
			cm.AddConservative(keys[i%len(keys)], 1)
		}
	})
}

// BenchmarkAblationShuffleStore contrasts MapReduce shuffle substrates —
// blob store vs Jiffy — on identical word-count jobs (the E4 claim inside a
// real workload).
func BenchmarkAblationShuffleStore(b *testing.B) {
	if testing.Short() {
		b.Skip("full MapReduce simulation per iteration; skipped in -short mode")
	}
	chunks := make([]string, 8)
	for i := range chunks {
		chunks[i] = "alpha beta gamma delta epsilon zeta eta theta " +
			"alpha beta gamma delta"
	}
	job := analytics.Job{
		Name:     "wc",
		Reducers: 4,
		Map:      analytics.WordCountMap,
		Reduce:   analytics.SumReduce,
		WorkerConfig: faas.Config{
			ColdStart: time.Millisecond, MaxRetries: -1,
		},
	}
	b.Run("blob", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, v := core.NewVirtual(core.Options{})
			v.Run(func() {
				if err := p.Blob.CreateBucket("shuffle", "t"); err != nil {
					b.Error(err)
					return
				}
				if _, err := analytics.Run(p.FaaS, analytics.BlobShuffle{Store: p.Blob, Bucket: "shuffle"}, job, chunks); err != nil {
					b.Error(err)
				}
			})
			v.Close()
		}
	})
	b.Run("jiffy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p, v := core.NewVirtual(core.Options{JiffyBlockSize: 1 << 20})
			v.Run(func() {
				ns, err := p.Jiffy.CreateNamespace("/shuffle", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 4})
				if err != nil {
					b.Error(err)
					return
				}
				if _, err := analytics.Run(p.FaaS, analytics.JiffyShuffle{NS: ns}, job, chunks); err != nil {
					b.Error(err)
				}
			})
			v.Close()
		}
	})
}

// BenchmarkHLLAdd measures cardinality-sketch updates.
func BenchmarkHLLAdd(b *testing.B) {
	h := sketch.NewHLL(12)
	keys := workload.UniformKeys(1<<20, 4096, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(keys[i%len(keys)])
	}
}

// BenchmarkOrchestratedChain measures a three-task composition end to end.
func BenchmarkOrchestratedChain(b *testing.B) {
	p := core.New(core.Options{})
	for _, n := range []string{"a", "b", "c"} {
		if err := p.FaaS.Register(n, "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
			b.Fatal(err)
		}
	}
	e := p.Orchestrator
	sm := orchestrate.Chain(orchestrate.Task("a"), orchestrate.Task("b"), orchestrate.Task("c"))
	// Warm all instances.
	if _, err := e.Execute(sm, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Execute(sm, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracePropagation prices the causal-tracing hot path added in PR7.
// The sampler is set to discard everything (KeepFraction 0, nothing slow
// enough to force a keep), so retention never fills and every iteration runs
// real span staging, finalization, and the sampling decision — the same
// regime the traced alloc gate pins at 0 allocs/op. "span-chain" is the raw
// tracer primitive (root → two children, context handoff via Ctx());
// "invoke-traced" is the full warm invoke with tracing live, the number to
// compare against BenchmarkInvokeWarm for the end-to-end tracing tax.
func BenchmarkTracePropagation(b *testing.B) {
	discard := obs.SamplerConfig{Seed: 7, KeepFraction: 0, SlowThreshold: time.Hour}
	b.Run("span-chain", func(b *testing.B) {
		tr := obs.New(nil).Tracer()
		tr.SetSampler(discard)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			root := tr.Start(obs.TraceCtx{}, "bench.root")
			c1 := tr.Start(root.Ctx(), "bench.child")
			c2 := tr.Start(c1.Ctx(), "bench.grandchild")
			c2.End()
			c1.End()
			root.End()
		}
	})
	b.Run("invoke-traced", func(b *testing.B) {
		p := core.New(core.Options{})
		p.Obs.Tracer().SetSampler(discard)
		if err := p.FaaS.Register("noop", "bench", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour}); err != nil {
			b.Fatal(err)
		}
		if _, err := p.FaaS.Invoke("noop", nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := p.FaaS.Invoke("noop", nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkLabeledCounter prices the tenant-labeled instrument path:
// "resolved" is the steady state every wired subsystem uses (handle cached at
// registration, Inc on the hot path), "with-inc" includes the interned-label
// lookup for call sites that resolve per request, and "parallel" stresses the
// resolved handle across goroutines the way concurrent tenants hit it.
func BenchmarkLabeledCounter(b *testing.B) {
	b.Run("resolved", func(b *testing.B) {
		c := obs.New(nil).CounterVec("bench.requests", "tenant", "fn").With("acme", "resize")
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("with-inc", func(b *testing.B) {
		cv := obs.New(nil).CounterVec("bench.requests", "tenant", "fn")
		cv.With("acme", "resize").Inc()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cv.With("acme", "resize").Inc()
		}
	})
	b.Run("parallel", func(b *testing.B) {
		c := obs.New(nil).CounterVec("bench.requests", "tenant", "fn").With("acme", "resize")
		b.ReportAllocs()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
}

// BenchmarkPartitionReassign measures one cursor-exact ownership handoff:
// drop from the current owner, transfer the coordination lock, and recover
// the exact cursor on the destination. The empty-ledger prune in loadTopic
// keeps this O(topic history), not O(moves so far) — without it each
// iteration would recover one more ledger than the last.
func BenchmarkPartitionReassign(b *testing.B) {
	p := core.New(core.Options{})
	if err := p.Pulsar.CreateTopic("bench", 0); err != nil {
		b.Fatal(err)
	}
	prod, err := p.Pulsar.CreateProducer("bench")
	if err != nil {
		b.Fatal(err)
	}
	payload := workload.Payload(256, 1)
	for i := 0; i < 10; i++ {
		if _, err := prod.Send(payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := p.Pulsar.MoveTopic("bench", "broker-0"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Pulsar.MoveTopic("bench", fmt.Sprintf("broker-%d", (i+1)%2)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMultiBrokerPublish drives sync publishes round-robin across
// topics owned by four brokers — the multi-broker hot path: range-routing
// table lookup, per-broker owner cache, per-topic locks.
func BenchmarkMultiBrokerPublish(b *testing.B) {
	p := core.New(core.Options{Brokers: 4})
	payload := workload.Payload(256, 1)
	const topics = 8
	prods := make([]*pulsar.Producer, topics)
	for i := range prods {
		name := fmt.Sprintf("bench-%d", i)
		if err := p.Pulsar.CreateTopic(name, 0); err != nil {
			b.Fatal(err)
		}
		prod, err := p.Pulsar.CreateProducer(name)
		if err != nil {
			b.Fatal(err)
		}
		prods[i] = prod
		if _, err := prod.Send(payload); err != nil { // elect owners up front
			b.Fatal(err)
		}
	}
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := prods[i%topics].Send(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConformExplore measures one full conformance exploration of a
// reference workload (DESIGN.md §13): each iteration enumerates a small
// schedule budget and runs every schedule on a fresh virtual-clock platform,
// digesting the final state. This is a whole-simulation benchmark — run it
// with a small fixed -benchtime (bench.sh uses CONFORM_BENCH_TIME=20x), not
// the data-plane iteration counts.
func BenchmarkConformExplore(b *testing.B) {
	ref, err := conform.Reference("put-constant")
	if err != nil {
		b.Fatal(err)
	}
	opts := conform.Options{MaxSchedules: 12, Parallelism: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := conform.Explore(ref.Workload, opts)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Conformant {
			b.Fatalf("put-constant diverged: %+v", rep.Witness)
		}
	}
}
