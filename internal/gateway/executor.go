package gateway

import (
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/faas"
)

// FunctionSpec is the wire form of a function registration: what
// POST /v1/functions accepts. Handler names an executor entry — a builtin
// ("echo", "work", "fail") or a handler the host process bound with
// InProc.Bind — because the gateway ships no code-upload path yet; the
// Executor seam is where a subprocess or container backend would slot in.
type FunctionSpec struct {
	Name    string            `json:"name"`
	Handler string            `json:"handler"`
	Env     map[string]string `json:"env,omitempty"`

	// Resource and lifecycle knobs, all optional (zero → faas defaults).
	MemoryMB       int   `json:"memory_mb,omitempty"`
	TimeoutMs      int64 `json:"timeout_ms,omitempty"`
	KeepAliveMs    int64 `json:"keepalive_ms,omitempty"`
	ColdStartMs    int64 `json:"cold_start_ms,omitempty"`
	WarmStartMs    int64 `json:"warm_start_ms,omitempty"`
	MaxConcurrency int   `json:"max_concurrency,omitempty"`
	Prewarm        int   `json:"prewarm,omitempty"`
	MaxRetries     int   `json:"max_retries,omitempty"`
}

// faasConfig lowers the spec's wire knobs onto a faas.Config.
func (s FunctionSpec) faasConfig() faas.Config {
	return faas.Config{
		MemoryMB:       s.MemoryMB,
		Timeout:        time.Duration(s.TimeoutMs) * time.Millisecond,
		KeepAlive:      time.Duration(s.KeepAliveMs) * time.Millisecond,
		ColdStart:      time.Duration(s.ColdStartMs) * time.Millisecond,
		WarmStart:      time.Duration(s.WarmStartMs) * time.Millisecond,
		MaxConcurrency: s.MaxConcurrency,
		Prewarm:        s.Prewarm,
		MaxRetries:     s.MaxRetries,
	}
}

// Executor materializes a FunctionSpec into runnable code. The gateway is
// agnostic to how: InProc dispatches to Go funcs in this process; a later
// backend can exec subprocesses or containers behind the same interface
// without the HTTP surface changing.
type Executor interface {
	// Resolve returns the handler for spec, or ErrUnknownHandler (wrapped)
	// when the spec names nothing the executor can run.
	Resolve(spec FunctionSpec) (faas.Handler, error)
}

// InProc is the in-process executor: a catalog of builtin handlers plus
// whatever the host program binds. Safe for concurrent use.
type InProc struct {
	mu    sync.RWMutex
	bound map[string]faas.Handler
}

// NewInProc returns an executor with only the builtins.
func NewInProc() *InProc {
	return &InProc{bound: make(map[string]faas.Handler)}
}

// Bind registers a named handler implemented by the host process, making it
// referenceable from FunctionSpec.Handler. Later binds overwrite.
func (e *InProc) Bind(name string, h faas.Handler) {
	e.mu.Lock()
	e.bound[name] = h
	e.mu.Unlock()
}

// Resolve implements Executor. Host-bound handlers shadow builtins.
func (e *InProc) Resolve(spec FunctionSpec) (faas.Handler, error) {
	e.mu.RLock()
	h, ok := e.bound[spec.Handler]
	e.mu.RUnlock()
	if ok {
		return h, nil
	}
	switch spec.Handler {
	case "echo":
		// Returns the request payload unchanged.
		return func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			return payload, nil
		}, nil
	case "work":
		// Consumes env["ms"] milliseconds of simulated execution time
		// (default 1ms), then echoes env["output"] or the payload.
		ms := int64(1)
		if v, err := strconv.ParseInt(spec.Env["ms"], 10, 64); err == nil && v >= 0 {
			ms = v
		}
		out := []byte(spec.Env["output"])
		return func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Work(time.Duration(ms) * time.Millisecond)
			if len(out) > 0 {
				return out, nil
			}
			return payload, nil
		}, nil
	case "fail":
		// Always fails — exercises retry, breaker and error-envelope paths.
		return func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			return nil, fmt.Errorf("builtin fail: handler error")
		}, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrUnknownHandler, spec.Handler)
}
