package gateway

import (
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/errs"
	"repro/internal/faas"
)

// errsSentinels maps every exported sentinel in internal/errs by name. When
// a new sentinel lands there, TestWireTableExhaustive finds its name via the
// parser and fails until it is added both here and to wireTable — the test
// cannot silently go stale.
var errsSentinels = map[string]error{
	"ErrThrottled":        errs.ErrThrottled,
	"ErrColdStartTimeout": errs.ErrColdStartTimeout,
	"ErrBreakerOpen":      errs.ErrBreakerOpen,
	"ErrLeaseExpired":     errs.ErrLeaseExpired,
	"ErrNoCapacity":       errs.ErrNoCapacity,
}

// TestWireTableExhaustive parses the internal/errs source and asserts every
// exported Err* sentinel has a wire mapping with a machine-readable code.
func TestWireTableExhaustive(t *testing.T) {
	fset := token.NewFileSet()
	pkgAST, err := parser.ParseFile(fset, "../errs/errs.go", nil, 0)
	if err != nil {
		t.Fatalf("parse internal/errs: %v", err)
	}
	var names []string
	for _, decl := range pkgAST.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, id := range vs.Names {
				if strings.HasPrefix(id.Name, "Err") && ast.IsExported(id.Name) {
					names = append(names, id.Name)
				}
			}
		}
	}
	if len(names) == 0 {
		t.Fatal("parser found no exported Err* sentinels in internal/errs — wrong path?")
	}
	for _, name := range names {
		sentinel, ok := errsSentinels[name]
		if !ok {
			t.Errorf("errs.%s has no entry in errsSentinels — add it here and to wireTable", name)
			continue
		}
		m := statusFor(sentinel)
		if m.Code == "internal" {
			t.Errorf("errs.%s has no wire mapping (fell through to 500 internal)", name)
		}
		if m.Status < 400 || m.Status > 599 {
			t.Errorf("errs.%s maps to non-error status %d", name, m.Status)
		}
	}
	// And the inverse is total: every code decodes back to some sentinel.
	for _, w := range wireTable {
		if _, ok := codeTable[w.Code]; !ok {
			t.Errorf("code %q missing from codeTable", w.Code)
		}
		if w.Code == "" || w.Code == "internal" {
			t.Errorf("mapping for %v has reserved/empty code %q", w.Err, w.Code)
		}
	}
}

// TestStatusForSpecificity: wrapped subsystem sentinels must resolve to
// their specific row, not the identity they wrap.
func TestStatusForSpecificity(t *testing.T) {
	cases := []struct {
		err      error
		wantCode string
	}{
		{faas.ErrTenantThrottled, "tenant_throttled"},
		{faas.ErrThrottled, "throttled"},
		{faas.ErrCircuitOpen, "breaker_open"},
		{faas.ErrColdStartTimeout, "cold_start_timeout"},
		{errs.ErrThrottled, "throttled"},
		{errors.New("some handler error"), "internal"},
	}
	for _, c := range cases {
		if got := statusFor(c.err).Code; got != c.wantCode {
			t.Errorf("statusFor(%v).Code = %q, want %q", c.err, got, c.wantCode)
		}
	}
}

// TestErrorEnvelopeRoundTrip serializes every wire-table sentinel through
// writeError and decodes it with decodeError: the decoded error must
// errors.Is-match the original sentinel — error identity round-trips the
// wire, not just the status code.
func TestErrorEnvelopeRoundTrip(t *testing.T) {
	for _, w := range wireTable {
		rec := httptest.NewRecorder()
		writeError(rec, w.Err)
		if rec.Code != w.Status {
			t.Errorf("%q: status = %d, want %d", w.Code, rec.Code, w.Status)
		}
		decoded := decodeError(rec.Code, rec.Body.Bytes())
		if !errors.Is(decoded, w.Err) {
			t.Errorf("%q: decoded error %v does not errors.Is-match %v", w.Code, decoded, w.Err)
		}
		if w.RetryAfter && rec.Header().Get("Retry-After") == "" {
			t.Errorf("%q: throttle-class error missing Retry-After header", w.Code)
		}
	}
	// Garbage bodies still decode to a usable APIError.
	garbage := decodeError(http.StatusBadGateway, []byte("<html>proxy error</html>"))
	if garbage.Code != "internal" || garbage.Status != http.StatusBadGateway {
		t.Errorf("garbage body decoded to %+v", garbage)
	}
}

// TestErrorsIsOverTheWire drives a real error through the full HTTP stack —
// live listener, Client, envelope decode — and checks errors.Is against the
// platform sentinel on the far side.
func TestErrorsIsOverTheWire(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}

	_, err := c.Invoke("ghost", nil)
	if !errors.Is(err, faas.ErrNoFunction) {
		t.Fatalf("invoke(ghost) = %v, want errors.Is ErrNoFunction", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "no_function" {
		t.Fatalf("wire error = %+v, want 404 no_function", apiErr)
	}

	if err := c.Register(FunctionSpec{Name: "f", Handler: "no-such-builtin"}); !errors.Is(err, ErrUnknownHandler) {
		t.Fatalf("register(bad handler) = %v, want errors.Is ErrUnknownHandler", err)
	}
}
