package gateway

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/billing"
)

// Client is a typed caller of the v1 API. The zero fields default sanely
// (http.DefaultClient, no Block wrapper); BaseURL and Token are required.
//
// Block, when set, wraps every HTTP round-trip. A driver goroutine tracked
// by the virtual clock MUST set it to clock.BlockOn: the socket wait inside
// Do is otherwise invisible to quiescence detection and the simulation
// deadlocks — the clock sees a tracked goroutine that is neither running nor
// blocked on it. Real-clock callers leave it nil.
type Client struct {
	BaseURL string
	Token   string
	HTTP    *http.Client
	Block   func(func())
}

// InvokeResult is the client-side decoding of a sync invoke response: the
// streamed body plus the X-Taureau-* metadata headers. Latency and Billed
// are platform-clock figures — under a virtual clock, exact simulated
// durations.
type InvokeResult struct {
	Output    []byte
	Cold      bool
	Latency   time.Duration
	Billed    time.Duration
	RequestID int64
	TraceID   int64
	Attempt   int
	Deduped   bool
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// do runs one request and returns status, body and headers. Non-2xx
// responses come back as (*APIError, nil body) so errors.Is works against
// platform sentinels across the wire.
func (c *Client) do(method, path string, body []byte, hdr map[string]string) (int, []byte, http.Header, error) {
	req, err := http.NewRequest(method, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("Authorization", "Bearer "+c.Token)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}

	var resp *http.Response
	var respBody []byte
	var rtErr error
	roundTrip := func() {
		resp, rtErr = c.httpClient().Do(req)
		if rtErr != nil {
			return
		}
		defer resp.Body.Close()
		respBody, rtErr = io.ReadAll(resp.Body)
	}
	if c.Block != nil {
		c.Block(roundTrip)
	} else {
		roundTrip()
	}
	if rtErr != nil {
		return 0, nil, nil, rtErr
	}
	if resp.StatusCode >= 400 {
		return resp.StatusCode, nil, resp.Header, decodeError(resp.StatusCode, respBody)
	}
	return resp.StatusCode, respBody, resp.Header, nil
}

// Register deploys a function from its spec.
func (c *Client) Register(spec FunctionSpec) error {
	body, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	_, _, _, err = c.do(http.MethodPost, "/v1/functions", body, map[string]string{
		"Content-Type": "application/json",
	})
	return err
}

// Invoke runs a function synchronously and decodes the result metadata from
// the response headers.
func (c *Client) Invoke(name string, payload []byte) (InvokeResult, error) {
	return c.InvokeIdem(name, "", payload)
}

// InvokeIdem is Invoke carrying an idempotency key.
func (c *Client) InvokeIdem(name, idemKey string, payload []byte) (InvokeResult, error) {
	hdr := map[string]string{"Content-Type": "application/octet-stream"}
	if idemKey != "" {
		hdr["Idempotency-Key"] = idemKey
	}
	_, body, respHdr, err := c.do(http.MethodPost, "/v1/functions/"+name+"/invoke", payload, hdr)
	if err != nil {
		return InvokeResult{}, err
	}
	parseI := func(key string) int64 {
		v, _ := strconv.ParseInt(respHdr.Get(key), 10, 64)
		return v
	}
	return InvokeResult{
		Output:    body,
		Cold:      respHdr.Get(hdrCold) == "true",
		Latency:   time.Duration(parseI(hdrLatencyNs)),
		Billed:    time.Duration(parseI(hdrBilledNs)),
		RequestID: parseI(hdrRequestID),
		TraceID:   parseI(hdrTraceID),
		Attempt:   int(parseI(hdrAttempt)),
		Deduped:   respHdr.Get(hdrDeduped) == "true",
	}, nil
}

// InvokeAsync submits an invocation and returns its id for polling.
func (c *Client) InvokeAsync(name string, payload []byte) (string, error) {
	_, body, _, err := c.do(http.MethodPost, "/v1/functions/"+name+"/invoke-async", payload, map[string]string{
		"Content-Type": "application/octet-stream",
	})
	if err != nil {
		return "", err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return "", fmt.Errorf("gateway client: bad submit response: %w", err)
	}
	return resp.ID, nil
}

// Invocation polls one async invocation's status.
func (c *Client) Invocation(id string) (InvocationStatus, error) {
	_, body, _, err := c.do(http.MethodGet, "/v1/invocations/"+id, nil, nil)
	if err != nil {
		return InvocationStatus{}, err
	}
	var st InvocationStatus
	if err := json.Unmarshal(body, &st); err != nil {
		return InvocationStatus{}, fmt.Errorf("gateway client: bad poll response: %w", err)
	}
	return st, nil
}

// List returns this tenant's functions.
func (c *Client) List() ([]FunctionSummary, error) {
	_, body, _, err := c.do(http.MethodGet, "/v1/functions", nil, nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Functions []FunctionSummary `json:"functions"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("gateway client: bad list response: %w", err)
	}
	return resp.Functions, nil
}

// Delete unregisters a function.
func (c *Client) Delete(name string) error {
	_, _, _, err := c.do(http.MethodDelete, "/v1/functions/"+name, nil, nil)
	return err
}

// Invoice fetches the tenant's priced usage.
func (c *Client) Invoice(tenant string) (billing.Invoice, error) {
	_, body, _, err := c.do(http.MethodGet, "/v1/tenants/"+tenant+"/invoice", nil, nil)
	if err != nil {
		return billing.Invoice{}, err
	}
	var inv billing.Invoice
	if err := json.Unmarshal(body, &inv); err != nil {
		return billing.Invoice{}, fmt.Errorf("gateway client: bad invoice response: %w", err)
	}
	return inv, nil
}
