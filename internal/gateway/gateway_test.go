package gateway

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faas"
)

// newRealGateway boots a real-clock platform behind a live httptest server
// with two tenants: token "tok-a" → "alpha", "tok-b" → "beta". Handler
// tests use the real clock (with millisecond start latencies) so no
// virtual-clock driving is needed.
func newRealGateway(t *testing.T, cfg *Config) (*core.Platform, *httptest.Server) {
	t.Helper()
	p := core.New(core.Options{})
	c := Config{Tokens: map[string]string{"tok-a": "alpha", "tok-b": "beta"}}
	if cfg != nil {
		if cfg.Tokens != nil {
			c.Tokens = cfg.Tokens
		}
		c.Executor = cfg.Executor
		c.MaxBody = cfg.MaxBody
	}
	srv := httptest.NewServer(New(p, c))
	t.Cleanup(srv.Close)
	return p, srv
}

// fastSpec is an echo function with millisecond lifecycle latencies, so
// real-clock tests stay fast.
func fastSpec(name string) FunctionSpec {
	return FunctionSpec{
		Name:        name,
		Handler:     "echo",
		ColdStartMs: 1,
		WarmStartMs: 1,
		KeepAliveMs: 60_000,
	}
}

// httpDo issues a raw request (for cases the typed Client can't produce,
// like missing auth or malformed JSON).
func httpDo(t *testing.T, method, url, token string, body []byte) *http.Response {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeEnvelope(t *testing.T, resp *http.Response) Envelope {
	t.Helper()
	var env Envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("decode envelope: %v", err)
	}
	return env
}

// TestAuthRequired: every API route (except /healthz) rejects missing and
// unknown tokens with a 401 envelope.
func TestAuthRequired(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	routes := []struct{ method, path string }{
		{http.MethodPost, "/v1/functions"},
		{http.MethodGet, "/v1/functions"},
		{http.MethodDelete, "/v1/functions/f"},
		{http.MethodPost, "/v1/functions/f/invoke"},
		{http.MethodPost, "/v1/functions/f/invoke-async"},
		{http.MethodGet, "/v1/invocations/inv-000001"},
		{http.MethodGet, "/v1/tenants/alpha/invoice"},
	}
	for _, token := range []string{"", "wrong-token"} {
		for _, rt := range routes {
			resp := httpDo(t, rt.method, srv.URL+rt.path, token, nil)
			if resp.StatusCode != http.StatusUnauthorized {
				t.Errorf("%s %s token=%q: status %d, want 401", rt.method, rt.path, token, resp.StatusCode)
				continue
			}
			if env := decodeEnvelope(t, resp); env.Error.Code != "unauthorized" {
				t.Errorf("%s %s: code %q, want unauthorized", rt.method, rt.path, env.Error.Code)
			}
		}
	}
	resp := httpDo(t, http.MethodGet, srv.URL+"/healthz", "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz without auth: %d, want 200", resp.StatusCode)
	}
}

// TestRegisterValidation: malformed JSON and incomplete specs are 400
// bad_request; unknown handlers are 400 unknown_handler; duplicate
// registration is 409 function_exists.
func TestRegisterValidation(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}

	cases := []struct {
		name     string
		body     string
		wantCode string
	}{
		{"malformed JSON", `{"name": "f", `, "bad_request"},
		{"missing handler", `{"name": "f"}`, "bad_request"},
		{"missing name", `{"handler": "echo"}`, "bad_request"},
		{"unknown handler", `{"name": "f", "handler": "cobol"}`, "unknown_handler"},
	}
	for _, tc := range cases {
		resp := httpDo(t, http.MethodPost, srv.URL+"/v1/functions", "tok-a", []byte(tc.body))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if env := decodeEnvelope(t, resp); env.Error.Code != tc.wantCode {
			t.Errorf("%s: code %q, want %q", tc.name, env.Error.Code, tc.wantCode)
		}
	}

	if err := c.Register(fastSpec("dup")); err != nil {
		t.Fatal(err)
	}
	err := c.Register(fastSpec("dup"))
	if !errors.Is(err, faas.ErrExists) {
		t.Fatalf("duplicate register = %v, want errors.Is ErrExists", err)
	}
}

// TestCrossTenantUnprobeable: tenant B invoking (or deleting) tenant A's
// function gets exactly the response a nonexistent function gives — 404
// no_function, never 403 — and B can register the same name for itself.
func TestCrossTenantUnprobeable(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	a := &Client{BaseURL: srv.URL, Token: "tok-a"}
	b := &Client{BaseURL: srv.URL, Token: "tok-b"}

	if err := a.Register(fastSpec("shared")); err != nil {
		t.Fatal(err)
	}
	wantNotFound := func(what string, err error) {
		t.Helper()
		var apiErr *APIError
		if !errors.As(err, &apiErr) {
			t.Fatalf("%s: err = %v, want APIError", what, err)
		}
		if apiErr.Status != http.StatusNotFound || apiErr.Code != "no_function" {
			t.Fatalf("%s: got %d %q, want 404 no_function", what, apiErr.Status, apiErr.Code)
		}
	}
	_, errExisting := b.Invoke("shared", nil)
	wantNotFound("invoke of A's function", errExisting)
	_, errGhost := b.Invoke("never-registered", nil)
	wantNotFound("invoke of ghost", errGhost)
	// The two must be indistinguishable on the wire (same status + code).
	if fmt.Sprint(errors.Unwrap(errExisting)) != fmt.Sprint(errors.Unwrap(errGhost)) {
		t.Fatalf("probeable namespace: existing=%v ghost=%v", errExisting, errGhost)
	}
	wantNotFound("delete of A's function", b.Delete("shared"))

	// B registers its own "shared"; both tenants now resolve their own.
	if err := b.Register(fastSpec("shared")); err != nil {
		t.Fatalf("B register shared: %v", err)
	}
	if _, err := b.Invoke("shared", []byte("from-b")); err != nil {
		t.Fatalf("B invoke own shared: %v", err)
	}
	if _, err := a.Invoke("shared", []byte("from-a")); err != nil {
		t.Fatalf("A invoke own shared: %v", err)
	}
}

// TestInvokeStreamingAndHeaders: the sync invoke round-trips a payload
// larger than the streaming chunk size and carries result metadata in
// X-Taureau-* headers.
func TestInvokeStreamingAndHeaders(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	if err := c.Register(fastSpec("big")); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("chunky"), (invokeChunk*3)/6+1)
	res, err := c.Invoke("big", payload)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Output, payload) {
		t.Fatalf("output mismatch: got %d bytes, want %d", len(res.Output), len(payload))
	}
	if !res.Cold {
		t.Error("first invoke should be cold")
	}
	if res.RequestID <= 0 || res.Attempt != 1 || res.Latency <= 0 {
		t.Errorf("metadata = %+v, want positive request id/latency, attempt 1", res)
	}
	if res.TraceID <= 0 {
		t.Errorf("trace id = %d, want a rooted trace per HTTP invoke", res.TraceID)
	}
	warm, err := c.Invoke("big", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cold {
		t.Error("second invoke should be warm")
	}
}

// TestPayloadTooLarge: bodies over MaxBody are 413 payload_too_large.
func TestPayloadTooLarge(t *testing.T) {
	// Big enough for the register spec, far smaller than the invoke payload.
	_, srv := newRealGateway(t, &Config{MaxBody: 256})
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	if err := c.Register(fastSpec("small")); err != nil {
		t.Fatal(err)
	}
	_, err := c.Invoke("small", bytes.Repeat([]byte("y"), 1024))
	if !errors.Is(err, faas.ErrPayloadSize) {
		t.Fatalf("oversize invoke = %v, want errors.Is ErrPayloadSize", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize invoke status = %+v, want 413", apiErr)
	}
}

// TestAsyncLifecycle: submit → pending id → poll to completion; unknown and
// cross-tenant ids are 404 no_invocation.
func TestAsyncLifecycle(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	b := &Client{BaseURL: srv.URL, Token: "tok-b"}
	if err := c.Register(fastSpec("task")); err != nil {
		t.Fatal(err)
	}
	id, err := c.InvokeAsync("task", []byte("async-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(id, "inv-") {
		t.Fatalf("id = %q, want inv-* form", id)
	}

	var st InvocationStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.Invocation(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "pending" || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Status != "succeeded" {
		t.Fatalf("final status = %q, want succeeded", st.Status)
	}
	if string(st.Output) != "async-payload" {
		t.Fatalf("output = %q", st.Output)
	}
	if st.Function != "task" || st.Attempt < 1 || st.LatencyNs <= 0 {
		t.Fatalf("status record = %+v", st)
	}

	for what, err := range map[string]error{
		"unknown id": func() error { _, e := c.Invocation("inv-999999"); return e }(),
		"cross-tenant id": func() error { _, e := b.Invocation(id); return e }(),
	} {
		if !errors.Is(err, ErrNoInvocation) {
			t.Errorf("%s: err = %v, want errors.Is ErrNoInvocation", what, err)
		}
	}
}

// TestAsyncFailureSurfacesEnvelopeCode: a handler that always fails reports
// status "failed" with the wire-table code for the underlying error.
func TestAsyncFailureSurfacesEnvelopeCode(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	spec := fastSpec("doomed")
	spec.Handler = "fail"
	spec.MaxRetries = -1 // no async re-attempts; fail fast
	if err := c.Register(spec); err != nil {
		t.Fatal(err)
	}
	id, err := c.InvokeAsync("doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st InvocationStatus
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err = c.Invocation(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != "pending" || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.Status != "failed" || st.Error == nil {
		t.Fatalf("status = %+v, want failed with error body", st)
	}
	if st.Error.Code != "internal" { // handler app errors carry no sentinel
		t.Fatalf("error code = %q, want internal", st.Error.Code)
	}
}

// TestListDeleteLifecycle: functions appear in the tenant's list with their
// effective config, disappear on delete, and a second delete is 404.
func TestListDeleteLifecycle(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	spec := fastSpec("listed")
	spec.MemoryMB = 512
	if err := c.Register(spec); err != nil {
		t.Fatal(err)
	}
	fns, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(fns) != 1 || fns[0].Name != "listed" || fns[0].MemoryMB != 512 {
		t.Fatalf("list = %+v", fns)
	}
	if err := c.Delete("listed"); err != nil {
		t.Fatal(err)
	}
	if fns, err = c.List(); err != nil || len(fns) != 0 {
		t.Fatalf("list after delete = %+v, %v", fns, err)
	}
	if err := c.Delete("listed"); !errors.Is(err, faas.ErrNoFunction) {
		t.Fatalf("second delete = %v, want ErrNoFunction", err)
	}
}

// TestInvoiceEndpoint: a tenant reads its own bill (nonzero after an
// invoke); another tenant's bill reads as 404 no_tenant.
func TestInvoiceEndpoint(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	c := &Client{BaseURL: srv.URL, Token: "tok-a"}
	if err := c.Register(fastSpec("billed")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Invoke("billed", []byte("x")); err != nil {
		t.Fatal(err)
	}
	inv, err := c.Invoice("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if inv.Tenant != "alpha" || inv.Total <= 0 {
		t.Fatalf("invoice = %+v, want nonzero total for alpha", inv)
	}
	_, err = c.Invoice("beta")
	if !errors.Is(err, ErrNoTenant) {
		t.Fatalf("cross-tenant invoice = %v, want errors.Is ErrNoTenant", err)
	}
}

// TestConcurrentInvokes hammers the gateway from many goroutines mixing
// sync invokes, async submit/poll, lists, and invoices — meaningful under
// -race, and it verifies every response is well-formed.
func TestConcurrentInvokes(t *testing.T) {
	_, srv := newRealGateway(t, nil)
	setup := &Client{BaseURL: srv.URL, Token: "tok-a"}
	spec := fastSpec("hot")
	spec.MaxConcurrency = 64
	if err := setup.Register(spec); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errCh := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{BaseURL: srv.URL, Token: "tok-a"}
			for i := 0; i < perWorker; i++ {
				payload := []byte(fmt.Sprintf("w%d-i%d", w, i))
				switch i % 4 {
				case 0, 1: // sync invoke
					res, err := c.Invoke("hot", payload)
					if err != nil {
						errCh <- err
					} else if !bytes.Equal(res.Output, payload) {
						errCh <- fmt.Errorf("echo mismatch: %q", res.Output)
					}
				case 2: // async submit + poll once (completion not required)
					id, err := c.InvokeAsync("hot", payload)
					if err != nil {
						errCh <- err
						continue
					}
					if _, err := c.Invocation(id); err != nil {
						errCh <- err
					}
				case 3: // control-plane reads
					if _, err := c.List(); err != nil {
						errCh <- err
					}
					if _, err := c.Invoice("alpha"); err != nil {
						errCh <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
