// Package gateway is the platform's deployable front door: a versioned REST
// control/data plane over the core.Platform assembly. Callers authenticate
// with bearer tokens that map to tenant handles; every request operates
// strictly inside that tenant's namespace (cross-tenant names read as
// not-found, never forbidden, so namespaces stay unprobeable — the same
// contract core.TenantHandle enforces in-process).
//
// The API surface, v1:
//
//	POST   /v1/functions                  register (FunctionSpec body)
//	GET    /v1/functions                  list this tenant's functions
//	DELETE /v1/functions/{name}           unregister
//	POST   /v1/functions/{name}/invoke    sync invoke (streaming body)
//	POST   /v1/functions/{name}/invoke-async   submit, 202 + id
//	GET    /v1/invocations/{id}           poll an async invocation
//	GET    /v1/tenants/{tenant}/invoice   priced usage
//	GET    /healthz                       liveness (no auth)
//
// Every error is a JSON envelope with a machine-readable code drawn from the
// wire table in status.go; invocation metadata (cold, latency, billed
// duration — all on the platform clock, so deterministic under the virtual
// clock) travels in X-Taureau-* response headers beside the streamed output.
//
// Clock discipline: gateway handlers run on net/http goroutines the virtual
// clock does not track. Each invoke is therefore handed to a clock.Go worker
// (tracked; its Sleeps advance virtual time) and the handler waits on a
// plain channel — an untracked wait the clock cannot see, which is exactly
// right: the HTTP goroutine must be invisible to quiescence detection.
// Virtual-clock callers in the same process wrap their HTTP round-trips in
// clock.BlockOn (see Client) so the driver's socket wait does not deadlock
// the simulation.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/obs"
)

// Config parameterizes a Gateway.
type Config struct {
	// Tokens maps bearer tokens to tenant names. Requests whose token is
	// absent fail 401; there is no anonymous access.
	Tokens map[string]string
	// Executor materializes FunctionSpecs. Default: NewInProc() (builtins
	// only).
	Executor Executor
	// MaxBody bounds request bodies in bytes. Default 8 MiB.
	MaxBody int64
}

// Gateway serves the v1 REST API over one core.Platform. It is an
// http.Handler; mount it wherever (httptest, taureau -gateway, behind the
// telemetry mux).
type Gateway struct {
	p       *core.Platform
	exec    Executor
	tokens  map[string]string
	maxBody int64
	mux     *http.ServeMux

	mu     sync.Mutex
	invs   map[string]*invocation
	nextID int64
}

// invocation is one async submission's lifecycle record.
type invocation struct {
	tenant   string
	function string
	done     bool
	res      faas.Result
	err      error
}

// New builds a Gateway over p.
func New(p *core.Platform, cfg Config) *Gateway {
	if cfg.Executor == nil {
		cfg.Executor = NewInProc()
	}
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 8 << 20
	}
	g := &Gateway{
		p:       p,
		exec:    cfg.Executor,
		tokens:  cfg.Tokens,
		maxBody: cfg.MaxBody,
		invs:    make(map[string]*invocation),
	}
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain")
		fmt.Fprintln(w, "ok")
	})
	m.HandleFunc("POST /v1/functions", g.authed(g.handleRegister))
	m.HandleFunc("GET /v1/functions", g.authed(g.handleList))
	m.HandleFunc("DELETE /v1/functions/{name}", g.authed(g.handleDelete))
	m.HandleFunc("POST /v1/functions/{name}/invoke", g.authed(g.handleInvoke))
	m.HandleFunc("POST /v1/functions/{name}/invoke-async", g.authed(g.handleInvokeAsync))
	m.HandleFunc("GET /v1/invocations/{id}", g.authed(g.handlePoll))
	m.HandleFunc("GET /v1/tenants/{tenant}/invoice", g.authed(g.handleInvoice))
	g.mux = m
	return g
}

// ServeHTTP implements http.Handler.
func (g *Gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	g.mux.ServeHTTP(w, r)
}

// authed resolves the bearer token to a tenant and rejects everything else.
func (g *Gateway) authed(h func(http.ResponseWriter, *http.Request, string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		tok, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok {
			writeError(w, ErrUnauthorized)
			return
		}
		tenant, ok := g.tokens[strings.TrimSpace(tok)]
		if !ok {
			writeError(w, ErrUnauthorized)
			return
		}
		h(w, r, tenant)
	}
}

// readBody drains the request body under the size cap, translating the cap
// trip to the payload-size sentinel.
func (g *Gateway) readBody(w http.ResponseWriter, r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, g.maxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, fmt.Errorf("%w: request body exceeds %d bytes", faas.ErrPayloadSize, g.maxBody)
		}
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return body, nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleRegister deploys a function from its wire spec.
func (g *Gateway) handleRegister(w http.ResponseWriter, r *http.Request, tenant string) {
	body, err := g.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	var spec FunctionSpec
	if err := json.Unmarshal(body, &spec); err != nil {
		writeError(w, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	if spec.Name == "" || spec.Handler == "" {
		writeError(w, fmt.Errorf("%w: name and handler are required", ErrBadRequest))
		return
	}
	h, err := g.exec.Resolve(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	if err := g.p.Tenant(tenant).Register(spec.Name, h, spec.faasConfig()); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{
		"name":   spec.Name,
		"tenant": tenant,
	})
}

// FunctionSummary is one row of GET /v1/functions.
type FunctionSummary struct {
	Name           string `json:"name"`
	MemoryMB       int    `json:"memory_mb"`
	TimeoutMs      int64  `json:"timeout_ms"`
	KeepAliveMs    int64  `json:"keepalive_ms"`
	MaxConcurrency int    `json:"max_concurrency"`
	Prewarm        int    `json:"prewarm,omitempty"`
}

func (g *Gateway) handleList(w http.ResponseWriter, r *http.Request, tenant string) {
	infos := g.p.Tenant(tenant).Functions()
	out := make([]FunctionSummary, 0, len(infos))
	for _, fi := range infos {
		out = append(out, FunctionSummary{
			Name:           fi.Name,
			MemoryMB:       fi.Config.MemoryMB,
			TimeoutMs:      fi.Config.Timeout.Milliseconds(),
			KeepAliveMs:    fi.Config.KeepAlive.Milliseconds(),
			MaxConcurrency: fi.Config.MaxConcurrency,
			Prewarm:        fi.Config.Prewarm,
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"functions": out})
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request, tenant string) {
	if err := g.p.Tenant(tenant).Unregister(r.PathValue("name")); err != nil {
		writeError(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// runInvoke executes one invocation on a clock-tracked worker goroutine and
// waits for it on a plain (untracked, clock-invisible) channel. Each HTTP
// invoke roots exactly one trace; the span carries tenant and function
// labels into the SLO/telemetry pipeline.
func (g *Gateway) runInvoke(tenant, name string, payload []byte, idemKey string) (faas.Result, error) {
	type outcome struct {
		res faas.Result
		err error
	}
	ch := make(chan outcome, 1)
	g.p.Clock.Go(func() {
		var span obs.SpanRef
		var tc obs.TraceCtx
		if g.p.Obs != nil {
			span = g.p.Obs.Tracer().Start(obs.TraceCtx{}, "gateway.invoke")
			tc = span.Ctx()
		}
		res, err := g.p.FaaS.InvokeForTraceIdem(tenant, name, payload, tc, idemKey)
		if span.Active() {
			span.EndLabeled(tenant, name, err != nil)
		}
		ch <- outcome{res, err}
	})
	o := <-ch
	return o.res, o.err
}

// Result metadata headers on sync invoke responses. Values are platform-
// clock durations in nanoseconds — under the virtual clock they are exact
// simulated figures, independent of wall time.
const (
	hdrRequestID = "X-Taureau-Request-Id"
	hdrCold      = "X-Taureau-Cold"
	hdrLatencyNs = "X-Taureau-Latency-Ns"
	hdrBilledNs  = "X-Taureau-Billed-Ns"
	hdrAttempt   = "X-Taureau-Attempt"
	hdrTraceID   = "X-Taureau-Trace-Id"
	hdrDeduped   = "X-Taureau-Deduped"
)

func setResultHeaders(w http.ResponseWriter, res faas.Result) {
	h := w.Header()
	h.Set(hdrRequestID, strconv.FormatInt(res.RequestID, 10))
	h.Set(hdrCold, strconv.FormatBool(res.Cold))
	h.Set(hdrLatencyNs, strconv.FormatInt(res.Latency.Nanoseconds(), 10))
	h.Set(hdrBilledNs, strconv.FormatInt(res.Billed.Nanoseconds(), 10))
	h.Set(hdrAttempt, strconv.Itoa(res.Attempt))
	h.Set(hdrTraceID, strconv.FormatInt(res.TraceID, 10))
	if res.Deduped {
		h.Set(hdrDeduped, "true")
	}
}

// invokeChunk bounds each streamed write of the response body. Handler
// outputs are arbitrary bytes; streaming them in flushed chunks means a
// client sees first bytes before the last are serialized, and large outputs
// never require a contiguous response buffer.
const invokeChunk = 32 << 10

func (g *Gateway) handleInvoke(w http.ResponseWriter, r *http.Request, tenant string) {
	payload, err := g.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")
	res, err := g.runInvoke(tenant, name, payload, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeError(w, err)
		return
	}
	setResultHeaders(w, res)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	for off := 0; off < len(res.Output); off += invokeChunk {
		end := off + invokeChunk
		if end > len(res.Output) {
			end = len(res.Output)
		}
		if _, err := w.Write(res.Output[off:end]); err != nil {
			return // client went away mid-stream
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func (g *Gateway) handleInvokeAsync(w http.ResponseWriter, r *http.Request, tenant string) {
	payload, err := g.readBody(w, r)
	if err != nil {
		writeError(w, err)
		return
	}
	name := r.PathValue("name")

	g.mu.Lock()
	g.nextID++
	id := fmt.Sprintf("inv-%06d", g.nextID)
	g.invs[id] = &invocation{tenant: tenant, function: name}
	g.mu.Unlock()

	// InvokeAsyncFor spawns its own clock-tracked goroutine and applies the
	// platform's transparent retry; the callback lands on that goroutine.
	g.p.FaaS.InvokeAsyncFor(tenant, name, payload, func(res faas.Result, err error) {
		g.mu.Lock()
		if inv := g.invs[id]; inv != nil {
			inv.done, inv.res, inv.err = true, res, err
		}
		g.mu.Unlock()
	})
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "status": "pending"})
}

// InvocationStatus is the poll response for one async invocation.
type InvocationStatus struct {
	ID        string     `json:"id"`
	Function  string     `json:"function"`
	Status    string     `json:"status"` // pending | succeeded | failed
	Output    []byte     `json:"output,omitempty"` // base64 in JSON
	Error     *ErrorBody `json:"error,omitempty"`
	Cold      bool       `json:"cold,omitempty"`
	LatencyNs int64      `json:"latency_ns,omitempty"`
	BilledNs  int64      `json:"billed_ns,omitempty"`
	Attempt   int        `json:"attempt,omitempty"`
}

func (g *Gateway) handlePoll(w http.ResponseWriter, r *http.Request, tenant string) {
	id := r.PathValue("id")
	g.mu.Lock()
	inv := g.invs[id]
	var snap invocation
	if inv != nil {
		snap = *inv
	}
	g.mu.Unlock()
	if inv == nil || snap.tenant != tenant {
		writeError(w, fmt.Errorf("%w: %s", ErrNoInvocation, id))
		return
	}
	st := InvocationStatus{ID: id, Function: snap.function, Status: "pending"}
	if snap.done {
		if snap.err != nil {
			m := statusFor(snap.err)
			st.Status = "failed"
			st.Error = &ErrorBody{Code: m.Code, Message: snap.err.Error()}
		} else {
			st.Status = "succeeded"
			st.Output = snap.res.Output
		}
		st.Cold = snap.res.Cold
		st.LatencyNs = snap.res.Latency.Nanoseconds()
		st.BilledNs = snap.res.Billed.Nanoseconds()
		st.Attempt = snap.res.Attempt
	}
	writeJSON(w, http.StatusOK, st)
}

func (g *Gateway) handleInvoice(w http.ResponseWriter, r *http.Request, tenant string) {
	want := r.PathValue("tenant")
	if want != tenant {
		// Not-found, not forbidden: token holders cannot probe for other
		// tenant names.
		writeError(w, fmt.Errorf("%w: %s", ErrNoTenant, want))
		return
	}
	writeJSON(w, http.StatusOK, g.p.Tenant(tenant).Invoice())
}
