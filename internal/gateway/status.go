// The errs→HTTP contract lives in this file and nowhere else: one ordered
// table maps every typed sentinel the platform can surface to exactly one
// HTTP status and one machine-readable code, and the same table drives the
// reverse direction (code → sentinel) so a client that decodes an error
// envelope gets back an error that errors.Is-matches the sentinel the server
// returned — the wire round-trips error identity, not just prose.
package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/errs"
	"repro/internal/faas"
)

// Gateway-local sentinels: failures that originate in the HTTP layer itself
// rather than in a platform plane.
var (
	// ErrUnauthorized marks a request with a missing or unknown bearer token.
	ErrUnauthorized = errors.New("gateway: missing or invalid bearer token")
	// ErrBadRequest marks a syntactically invalid request (malformed JSON,
	// missing required fields).
	ErrBadRequest = errors.New("gateway: malformed request")
	// ErrUnknownHandler marks a register request naming a handler the
	// executor cannot materialize.
	ErrUnknownHandler = errors.New("gateway: unknown handler")
	// ErrNoInvocation marks a poll for an invocation id that does not exist
	// in the calling tenant's namespace (like functions, invocations are
	// unprobeable across tenants: not-yours reads as not-found).
	ErrNoInvocation = errors.New("gateway: no such invocation")
	// ErrNoTenant marks a tenant-scoped read (invoice) for a tenant the
	// caller's token does not own. 404, not 403: an authenticated caller
	// cannot learn which other tenant names exist.
	ErrNoTenant = errors.New("gateway: no such tenant")
)

// wireMapping is one row of the errs→HTTP contract.
type wireMapping struct {
	Err        error
	Status     int
	Code       string
	RetryAfter bool // emit a Retry-After header (throttle-class errors)
}

// wireTable is the single source of truth for error translation, ordered
// most-specific first: subsystem sentinels that wrap a shared identity
// (faas.ErrTenantThrottled wraps errs.ErrThrottled) must precede the
// identity they wrap, or every tenant shed would decode as a generic
// throttle. statusFor walks it with errors.Is; codeTable inverts it.
var wireTable = []wireMapping{
	// Gateway-layer failures.
	{ErrUnauthorized, http.StatusUnauthorized, "unauthorized", false},
	{ErrUnknownHandler, http.StatusBadRequest, "unknown_handler", false},
	{ErrBadRequest, http.StatusBadRequest, "bad_request", false},
	{ErrNoInvocation, http.StatusNotFound, "no_invocation", false},
	{ErrNoTenant, http.StatusNotFound, "no_tenant", false},

	// FaaS sentinels (specific forms first).
	{faas.ErrTenantThrottled, http.StatusTooManyRequests, "tenant_throttled", true},
	{faas.ErrCircuitOpen, http.StatusServiceUnavailable, "breaker_open", true},
	{faas.ErrColdStartTimeout, http.StatusServiceUnavailable, "cold_start_timeout", false},
	{faas.ErrNoFunction, http.StatusNotFound, "no_function", false},
	{faas.ErrExists, http.StatusConflict, "function_exists", false},
	{faas.ErrAmbiguous, http.StatusConflict, "ambiguous_name", false},
	{faas.ErrPayloadSize, http.StatusRequestEntityTooLarge, "payload_too_large", false},
	{faas.ErrTimeout, http.StatusGatewayTimeout, "execution_timeout", false},

	// Platform-wide identities (internal/errs). Every sentinel defined there
	// must appear here — TestWireTableExhaustive parses the errs source and
	// fails the build when a new sentinel lands without a mapping.
	{errs.ErrThrottled, http.StatusTooManyRequests, "throttled", true},
	{errs.ErrBreakerOpen, http.StatusServiceUnavailable, "breaker_open", true},
	{errs.ErrColdStartTimeout, http.StatusServiceUnavailable, "cold_start_timeout", false},
	{errs.ErrLeaseExpired, http.StatusGone, "lease_expired", false},
	{errs.ErrNoCapacity, http.StatusServiceUnavailable, "no_capacity", false},
}

// codeTable maps a wire code back to the most specific sentinel that emits
// it (first table occurrence wins, so "breaker_open" decodes to
// faas.ErrCircuitOpen — which still errors.Is-matches errs.ErrBreakerOpen
// through its wrap chain).
var codeTable = func() map[string]wireMapping {
	m := make(map[string]wireMapping, len(wireTable))
	for _, w := range wireTable {
		if _, ok := m[w.Code]; !ok {
			m[w.Code] = w
		}
	}
	return m
}()

// statusFor resolves err against the contract. Unmapped errors — handler
// application errors, mostly — fall through to 500 "internal".
func statusFor(err error) wireMapping {
	for _, w := range wireTable {
		if errors.Is(err, w.Err) {
			return w
		}
	}
	return wireMapping{Err: err, Status: http.StatusInternalServerError, Code: "internal"}
}

// Envelope is the JSON error body every non-2xx gateway response carries.
type Envelope struct {
	Error ErrorBody `json:"error"`
}

// ErrorBody is the machine-readable half of the contract: Code comes from
// the wire table; Message is prose for humans.
type ErrorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// retryAfterMs is the backoff hint attached to throttle-class errors. The
// admission plane sheds instead of queueing once its bounds are hit, so any
// constant short hint is honest; 1s matches the token-bucket refill horizon.
const retryAfterMs = 1000

// writeError renders err as its contractual status + JSON envelope.
func writeError(w http.ResponseWriter, err error) {
	m := statusFor(err)
	body := Envelope{Error: ErrorBody{Code: m.Code, Message: err.Error()}}
	if m.RetryAfter {
		body.Error.RetryAfterMs = retryAfterMs
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterMs/1000))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(m.Status)
	_ = json.NewEncoder(w).Encode(body)
}

// APIError is the client-side decoding of an error envelope. Unwrap returns
// the sentinel its code maps to, so errors.Is against faas/errs sentinels
// works across the wire exactly as it does in-process.
type APIError struct {
	Status  int
	Code    string
	Message string
}

// Error renders the wire error.
func (e *APIError) Error() string {
	return fmt.Sprintf("gateway: %s (http %d, code %q)", e.Message, e.Status, e.Code)
}

// Unwrap maps the wire code back to its sentinel identity.
func (e *APIError) Unwrap() error {
	if w, ok := codeTable[e.Code]; ok {
		return w.Err
	}
	return nil
}

// decodeError turns a non-2xx response body into an *APIError. Bodies that
// are not a valid envelope (a crash page, a proxy error) still produce a
// usable APIError with code "internal".
func decodeError(status int, body []byte) *APIError {
	var env Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Error.Code == "" {
		return &APIError{Status: status, Code: "internal", Message: string(body)}
	}
	return &APIError{Status: status, Code: env.Error.Code, Message: env.Error.Message}
}
