// Package video implements the serverless video-processing workload of §5.1
// (ExCamera [97] and Sprocket [71]): a synthetic video model (frames with
// per-frame encode complexity, grouped into GOPs) and two encode pipelines —
// a serial baseline and a chunk-parallel pipeline that fans chunks out over
// FaaS functions and pays a stitching cost at chunk boundaries. As in
// ExCamera, finer-grained parallelism buys latency at the price of extra
// boundary key-frames (larger output) and stitch work.
package video

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faas"
)

// ErrNoFrames is returned for empty videos.
var ErrNoFrames = errors.New("video: no frames")

// Frame is one synthetic video frame.
type Frame struct {
	// Complexity scales the frame's encode cost (≈ motion/detail).
	Complexity float64
	// KeyFrame marks an intra-coded frame (no dependency on predecessors).
	KeyFrame bool
}

// Video is a synthetic clip.
type Video struct {
	Frames []Frame
	// FPS is used to report real-time ratios.
	FPS int
}

// Synthetic generates a video with a key frame every gop frames and random
// per-frame complexity in [0.5, 1.5), deterministic under seed.
func Synthetic(frames, gop int, seed int64) Video {
	rng := rand.New(rand.NewSource(seed))
	v := Video{Frames: make([]Frame, frames), FPS: 30}
	for i := range v.Frames {
		v.Frames[i] = Frame{
			Complexity: 0.5 + rng.Float64(),
			KeyFrame:   gop > 0 && i%gop == 0,
		}
	}
	return v
}

// CostModel maps frames to encode work and output bytes.
type CostModel struct {
	// PerFrame is the base encode cost of a delta frame at complexity 1.
	PerFrame time.Duration
	// KeyFrameFactor multiplies cost and size for intra-coded frames.
	KeyFrameFactor float64
	// BytesPerFrame is the output size of a delta frame at complexity 1.
	BytesPerFrame int
	// StitchPerBoundary is the cost of rebasing one chunk boundary
	// (ExCamera's inter-chunk state adaptation).
	StitchPerBoundary time.Duration
}

// DefaultCost is a representative software-encoder cost model (~40ms/frame
// at complexity 1: slower than real time for 30fps input, the regime that
// motivates ExCamera's parallelism).
func DefaultCost() CostModel {
	return CostModel{
		PerFrame:          40 * time.Millisecond,
		KeyFrameFactor:    3,
		BytesPerFrame:     30 << 10,
		StitchPerBoundary: 40 * time.Millisecond,
	}
}

func (c CostModel) frameCost(f Frame, forceKey bool) time.Duration {
	d := time.Duration(float64(c.PerFrame) * f.Complexity)
	if f.KeyFrame || forceKey {
		d = time.Duration(float64(d) * c.KeyFrameFactor)
	}
	return d
}

func (c CostModel) frameBytes(f Frame, forceKey bool) int {
	b := int(float64(c.BytesPerFrame) * f.Complexity)
	if f.KeyFrame || forceKey {
		b = int(float64(b) * c.KeyFrameFactor)
	}
	return b
}

// Report describes one encode run.
type Report struct {
	Frames      int
	Chunks      int
	OutputBytes int
	// Wall is the virtual wall-clock latency of the run.
	Wall time.Duration
	// RealTimeRatio is encode latency / clip duration (<1 = faster than
	// real time; ExCamera's goal).
	RealTimeRatio float64
}

// EncodeSerial encodes the whole clip in one function invocation.
func EncodeSerial(p *faas.Platform, v Video, cost CostModel) (Report, error) {
	if len(v.Frames) == 0 {
		return Report{}, ErrNoFrames
	}
	return encodeChunked(p, v, cost, 1)
}

// EncodeParallel splits the clip into chunks encoded by concurrent function
// invocations, then stitches boundaries.
func EncodeParallel(p *faas.Platform, v Video, cost CostModel, chunks int) (Report, error) {
	if len(v.Frames) == 0 {
		return Report{}, ErrNoFrames
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks > len(v.Frames) {
		chunks = len(v.Frames)
	}
	return encodeChunked(p, v, cost, chunks)
}

func encodeChunked(p *faas.Platform, v Video, cost CostModel, chunks int) (Report, error) {
	clock := p.Clock()
	start := clock.Now()
	fnName := fmt.Sprintf("encode-%d-%d", len(v.Frames), chunks)

	type chunkResult struct {
		Bytes int `json:"bytes"`
	}
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct{ Lo, Hi int }
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		bytes := 0
		var work time.Duration
		for i := in.Lo; i < in.Hi; i++ {
			forceKey := i == in.Lo && in.Lo != 0 // chunk boundary: forced key frame
			work += cost.frameCost(v.Frames[i], forceKey)
			bytes += cost.frameBytes(v.Frames[i], forceKey)
		}
		ctx.Work(work)
		return json.Marshal(chunkResult{Bytes: bytes})
	}
	if err := p.Register(fnName, "video", worker, faas.Config{
		ColdStart:  50 * time.Millisecond,
		Timeout:    time.Hour,
		MaxRetries: -1,
	}); err != nil {
		return Report{}, err
	}
	defer p.Unregister(fnName)

	per := (len(v.Frames) + chunks - 1) / chunks
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	totalBytes := 0
	for c := 0; c < chunks; c++ {
		lo := c * per
		hi := lo + per
		if hi > len(v.Frames) {
			hi = len(v.Frames)
		}
		if lo >= hi {
			continue
		}
		payload, _ := json.Marshal(struct{ Lo, Hi int }{lo, hi})
		wg.Add(1)
		p.InvokeAsync(fnName, payload, func(res faas.Result, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				var out chunkResult
				if json.Unmarshal(res.Output, &out) == nil {
					totalBytes += out.Bytes
				}
			}
			mu.Unlock()
			wg.Done()
		})
	}
	clock.BlockOn(wg.Wait)
	if firstErr != nil {
		return Report{}, firstErr
	}
	// Stitch pass: one boundary between each adjacent chunk pair.
	clock.Sleep(time.Duration(chunks-1) * cost.StitchPerBoundary)

	wall := clock.Now().Sub(start)
	clipDur := time.Duration(len(v.Frames)) * time.Second / time.Duration(v.FPS)
	r := Report{
		Frames:      len(v.Frames),
		Chunks:      chunks,
		OutputBytes: totalBytes,
		Wall:        wall,
	}
	if clipDur > 0 {
		r.RealTimeRatio = float64(wall) / float64(clipDur)
	}
	return r, nil
}
