package video

import (
	"errors"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/simclock"
)

func env(t *testing.T) (*simclock.Virtual, *faas.Platform) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	return v, faas.New(v, nil)
}

func TestSyntheticShape(t *testing.T) {
	v := Synthetic(100, 10, 1)
	if len(v.Frames) != 100 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	keys := 0
	for i, f := range v.Frames {
		if f.Complexity < 0.5 || f.Complexity >= 1.5 {
			t.Fatalf("frame %d complexity %v", i, f.Complexity)
		}
		if f.KeyFrame {
			keys++
			if i%10 != 0 {
				t.Fatalf("key frame at %d", i)
			}
		}
	}
	if keys != 10 {
		t.Fatalf("key frames = %d", keys)
	}
	// Determinism.
	v2 := Synthetic(100, 10, 1)
	for i := range v.Frames {
		if v.Frames[i] != v2.Frames[i] {
			t.Fatal("Synthetic nondeterministic")
		}
	}
}

func TestEncodeEmpty(t *testing.T) {
	v, p := env(t)
	v.Run(func() {
		if _, err := EncodeSerial(p, Video{FPS: 30}, DefaultCost()); !errors.Is(err, ErrNoFrames) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestParallelFasterThanSerial(t *testing.T) {
	v, p := env(t)
	clip := Synthetic(240, 24, 2) // 8 seconds of video
	var serial, par Report
	v.Run(func() {
		var err error
		serial, err = EncodeSerial(p, clip, DefaultCost())
		if err != nil {
			t.Error(err)
			return
		}
		par, err = EncodeParallel(p, clip, DefaultCost(), 8)
		if err != nil {
			t.Error(err)
		}
	})
	if par.Wall >= serial.Wall {
		t.Fatalf("parallel %v not faster than serial %v", par.Wall, serial.Wall)
	}
	// 8 chunks: ideal 8×; with boundary keyframes and stitch, expect ≥4×.
	if speedup := float64(serial.Wall) / float64(par.Wall); speedup < 4 {
		t.Fatalf("speedup %.2f too low (serial %v, parallel %v)", speedup, serial.Wall, par.Wall)
	}
}

func TestParallelCostsMoreBytes(t *testing.T) {
	// Forced boundary key frames make parallel output larger — the
	// ExCamera trade-off.
	v, p := env(t)
	clip := Synthetic(120, 30, 3)
	var serial, par Report
	v.Run(func() {
		serial, _ = EncodeSerial(p, clip, DefaultCost())
		par, _ = EncodeParallel(p, clip, DefaultCost(), 6)
	})
	if par.OutputBytes <= serial.OutputBytes {
		t.Fatalf("parallel bytes %d not larger than serial %d", par.OutputBytes, serial.OutputBytes)
	}
}

func TestDiminishingReturns(t *testing.T) {
	// Latency improves with chunk count but flattens: going 4→8 chunks
	// must help less than 1→4 (stitch overhead grows with chunks).
	v, p := env(t)
	clip := Synthetic(240, 24, 4)
	walls := map[int]time.Duration{}
	v.Run(func() {
		for _, chunks := range []int{1, 4, 8} {
			r, err := EncodeParallel(p, clip, DefaultCost(), chunks)
			if err != nil {
				t.Error(err)
				return
			}
			walls[chunks] = r.Wall
		}
	})
	gain14 := walls[1] - walls[4]
	gain48 := walls[4] - walls[8]
	if gain48 >= gain14 {
		t.Fatalf("no diminishing returns: 1→4 gained %v, 4→8 gained %v", gain14, gain48)
	}
}

func TestRealTimeRatio(t *testing.T) {
	v, p := env(t)
	clip := Synthetic(300, 30, 5) // 10s clip
	var serial, par Report
	v.Run(func() {
		serial, _ = EncodeSerial(p, clip, DefaultCost())
		par, _ = EncodeParallel(p, clip, DefaultCost(), 10)
	})
	// Serial software encode is slower than real time; enough chunks push
	// it under 1.0 (ExCamera's headline capability).
	if serial.RealTimeRatio <= 1 {
		t.Fatalf("serial ratio %v — cost model should be slower than real time", serial.RealTimeRatio)
	}
	if par.RealTimeRatio >= 1 {
		t.Fatalf("parallel ratio %v — should beat real time with 10 chunks", par.RealTimeRatio)
	}
}

func TestChunksClamped(t *testing.T) {
	v, p := env(t)
	clip := Synthetic(5, 5, 6)
	v.Run(func() {
		r, err := EncodeParallel(p, clip, DefaultCost(), 100)
		if err != nil {
			t.Error(err)
			return
		}
		if r.Chunks != 5 {
			t.Errorf("chunks = %d, want clamped to 5", r.Chunks)
		}
	})
}
