package blob

import (
	"fmt"
	"sort"
)

// Verification reads for the conformance explorer (internal/conform): pure
// lock-only snapshots paying no modelled latency — observing final state must
// not move the clock.

// Buckets returns every bucket name, sorted.
func (s *Store) Buckets() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.buckets))
	for n := range s.buckets {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SnapshotObjects returns copies of the latest version of every object in a
// bucket (deleted objects excluded).
func (s *Store) SnapshotObjects(bucketName string) (map[string][]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	out := map[string][]byte{}
	for key, o := range b.objects {
		if len(o.versions) == 0 {
			continue
		}
		v := o.versions[len(o.versions)-1]
		out[key] = append([]byte(nil), v.data...)
	}
	return out, nil
}
