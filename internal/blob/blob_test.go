package blob

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/simclock"
)

func newStore() *Store {
	return New(simclock.Real{}, nil, LatencyModel{})
}

func TestPutGetRoundTrip(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "acme"))
	info, err := s.Put("b", "k", []byte("hello"), PutOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if info.Size != 5 || info.ETag == "" || info.VersionID != 1 {
		t.Fatalf("info = %+v", info)
	}
	data, got, err := s.Get("b", "k")
	if err != nil || string(data) != "hello" || got.ETag != info.ETag {
		t.Fatalf("Get = %q %+v %v", data, got, err)
	}
}

func TestGetMissing(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	if _, _, err := s.Get("b", "nope"); !errors.Is(err, ErrNoObject) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := s.Get("nobucket", "k"); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v", err)
	}
}

func TestBucketLifecycle(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	if err := s.CreateBucket("b", "t"); !errors.Is(err, ErrBucketExists) {
		t.Fatalf("err = %v", err)
	}
	_, err := s.Put("b", "k", []byte("x"), PutOptions{})
	must(t, err)
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrBucketFull) {
		t.Fatalf("err = %v", err)
	}
	must(t, s.Delete("b", "k"))
	must(t, s.DeleteBucket("b"))
	if err := s.DeleteBucket("b"); !errors.Is(err, ErrNoBucket) {
		t.Fatalf("err = %v", err)
	}
}

func TestConditionalPut(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	info, err := s.Put("b", "k", []byte("v1"), PutOptions{IfNoneMatch: true})
	must(t, err)
	// Create-only put on existing object fails.
	if _, err := s.Put("b", "k", []byte("v2"), PutOptions{IfNoneMatch: true}); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("err = %v", err)
	}
	// CAS with right etag succeeds; with stale etag fails.
	info2, err := s.Put("b", "k", []byte("v2"), PutOptions{IfMatch: info.ETag})
	must(t, err)
	if _, err := s.Put("b", "k", []byte("v3"), PutOptions{IfMatch: info.ETag}); !errors.Is(err, ErrPrecondition) {
		t.Fatalf("stale CAS err = %v", err)
	}
	data, _, _ := s.Get("b", "k")
	if string(data) != "v2" || info2.VersionID != 2 {
		t.Fatalf("data = %q v%d", data, info2.VersionID)
	}
}

func TestVersioning(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	must(t, s.SetVersioning("b", true))
	_, err := s.Put("b", "k", []byte("v1"), PutOptions{})
	must(t, err)
	_, err = s.Put("b", "k", []byte("v2"), PutOptions{})
	must(t, err)
	data, _, err := s.GetVersion("b", "k", 1)
	if err != nil || string(data) != "v1" {
		t.Fatalf("GetVersion(1) = %q %v", data, err)
	}
	data, _, _ = s.Get("b", "k")
	if string(data) != "v2" {
		t.Fatalf("latest = %q", data)
	}
	// Unversioned buckets keep only the latest.
	must(t, s.CreateBucket("u", "t"))
	_, _ = s.Put("u", "k", []byte("v1"), PutOptions{})
	_, _ = s.Put("u", "k", []byte("v2"), PutOptions{})
	if _, _, err := s.GetVersion("u", "k", 1); !errors.Is(err, ErrNoObject) {
		t.Fatalf("unversioned retained history: %v", err)
	}
}

func TestListPrefixPagination(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	for i := 0; i < 5; i++ {
		_, err := s.Put("b", fmt.Sprintf("logs/%d", i), []byte("x"), PutOptions{})
		must(t, err)
	}
	_, err := s.Put("b", "other/0", []byte("x"), PutOptions{})
	must(t, err)

	infos, trunc, err := s.List("b", "logs/", "", 3)
	must(t, err)
	if len(infos) != 3 || !trunc {
		t.Fatalf("page1 = %d items trunc=%v", len(infos), trunc)
	}
	infos2, trunc2, err := s.List("b", "logs/", infos[2].Key, 3)
	must(t, err)
	if len(infos2) != 2 || trunc2 {
		t.Fatalf("page2 = %d items trunc=%v", len(infos2), trunc2)
	}
	if infos[0].Key != "logs/0" || infos2[1].Key != "logs/4" {
		t.Fatalf("ordering wrong: %v %v", infos[0].Key, infos2[1].Key)
	}
}

func TestHeadAndTotalBytes(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	_, err := s.Put("b", "k", make([]byte, 100), PutOptions{})
	must(t, err)
	info, err := s.Head("b", "k")
	if err != nil || info.Size != 100 {
		t.Fatalf("Head = %+v %v", info, err)
	}
	n, err := s.TotalBytes("b")
	if err != nil || n != 100 {
		t.Fatalf("TotalBytes = %d %v", n, err)
	}
}

func TestNotifications(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	var events []Event
	s.Subscribe(func(e Event) { events = append(events, e) })
	_, err := s.Put("b", "k", []byte("x"), PutOptions{})
	must(t, err)
	must(t, s.Delete("b", "k"))
	if len(events) != 2 || events[0].Type != EventPut || events[1].Type != EventDelete {
		t.Fatalf("events = %+v", events)
	}
	if events[0].Object.Key != "k" {
		t.Fatalf("event object = %+v", events[0].Object)
	}
}

func TestMetering(t *testing.T) {
	m := billing.NewMeter()
	s := New(simclock.Real{}, m, LatencyModel{})
	must(t, s.CreateBucket("b", "acme"))
	_, err := s.Put("b", "k", make([]byte, 1000), PutOptions{})
	must(t, err)
	_, _, err = s.Get("b", "k")
	must(t, err)
	if got := m.Units("acme", billing.ResBlobPut); got != 1 {
		t.Fatalf("puts = %v", got)
	}
	if got := m.Units("acme", billing.ResBlobGet); got != 1 {
		t.Fatalf("gets = %v", got)
	}
	if got := m.Units("acme", billing.ResBlobBytesOut); got != 1000 {
		t.Fatalf("bytes out = %v", got)
	}
}

func TestSimulatedLatency(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := New(v, nil, LatencyModel{PerOp: 20 * time.Millisecond, PerByte: time.Microsecond})
	var elapsed time.Duration
	v.Run(func() {
		must(t, s.CreateBucket("b", "t"))
		start := v.Now()
		_, err := s.Put("b", "k", make([]byte, 1000), PutOptions{})
		must(t, err)
		elapsed = v.Now().Sub(start)
	})
	want := 20*time.Millisecond + 1000*time.Microsecond
	if elapsed != want {
		t.Fatalf("put latency = %v, want %v", elapsed, want)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newStore()
	must(t, s.CreateBucket("b", "t"))
	_, err := s.Put("b", "k", []byte("abc"), PutOptions{})
	must(t, err)
	data, _, _ := s.Get("b", "k")
	data[0] = 'X'
	data2, _, _ := s.Get("b", "k")
	if string(data2) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
