// Package blob implements the S3-style Backend-as-a-Service object store
// from §2.2/§4.1 of the paper: arbitrarily scalable buckets of immutable
// versioned objects, billed per request and per byte, with event
// notifications that FaaS triggers subscribe to.
//
// Access latency is modelled on the shared Clock (per-operation setup cost
// plus a per-byte transfer cost), making the store the "existing persistent
// stores unfortunately do not provide the required performance" baseline for
// the ephemeral-state experiments (§4.4, experiment E4).
package blob

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/billing"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by Store operations.
var (
	ErrNoBucket     = errors.New("blob: bucket does not exist")
	ErrBucketExists = errors.New("blob: bucket already exists")
	ErrNoObject     = errors.New("blob: object does not exist")
	ErrPrecondition = errors.New("blob: precondition failed")
	ErrBucketFull   = errors.New("blob: bucket not empty")
)

// LatencyModel gives the simulated access cost of the store.
type LatencyModel struct {
	PerOp   time.Duration // fixed per-request latency (network RTT + service)
	PerByte time.Duration // incremental transfer cost per payload byte
}

// Cost returns the modelled duration of an operation moving n payload bytes.
func (l LatencyModel) Cost(n int) time.Duration {
	return l.PerOp + time.Duration(n)*l.PerByte
}

// S3Latency is a representative persistent-blob-store access model:
// ~20 ms first-byte latency and ~80 MB/s effective per-stream throughput, in
// line with the measurements in the ephemeral-storage literature the paper
// cites ([124], [125]).
var S3Latency = LatencyModel{PerOp: 20 * time.Millisecond, PerByte: 12 * time.Nanosecond}

// ObjectInfo describes one stored object version.
type ObjectInfo struct {
	Bucket     string
	Key        string
	Size       int
	ETag       string
	VersionID  int64
	ModifiedAt time.Time
}

// Event is emitted to notification subscribers after a mutation.
type Event struct {
	Type   EventType
	Object ObjectInfo
}

// EventType distinguishes object mutations.
type EventType int

const (
	// EventPut fires after an object version is written.
	EventPut EventType = iota
	// EventDelete fires after an object is deleted.
	EventDelete
)

type version struct {
	data []byte
	info ObjectInfo
}

type object struct {
	versions []version // newest last
}

type bucket struct {
	name       string
	tenant     string
	versioning bool
	objects    map[string]*object
}

// Store is an in-process blob service shared by all tenants.
type Store struct {
	clock   simclock.Clock
	meter   *billing.Meter
	latency LatencyModel

	mu      sync.Mutex
	buckets map[string]*bucket
	subs    []func(Event)

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsPutLat *obs.Histogram
	obsGetLat *obs.Histogram
}

// New creates a Store. meter may be nil to disable metering.
func New(clock simclock.Clock, meter *billing.Meter, latency LatencyModel) *Store {
	return &Store{clock: clock, meter: meter, latency: latency, buckets: map[string]*bucket{}}
}

// SetObs attaches observability instruments. Call before traffic starts.
func (s *Store) SetObs(r *obs.Registry) {
	s.obsPutLat = r.Histogram("blob.put.latency")
	s.obsGetLat = r.Histogram("blob.get.latency")
}

// Subscribe registers fn to receive an Event after every mutation. Handlers
// run synchronously on the mutating goroutine, mirroring how provider-side
// notification hooks dispatch before the call returns.
func (s *Store) Subscribe(fn func(Event)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.subs = append(s.subs, fn)
}

// CreateBucket makes a bucket owned (and billed to) tenant.
func (s *Store) CreateBucket(name, tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.buckets[name]; ok {
		return fmt.Errorf("%w: %q", ErrBucketExists, name)
	}
	s.buckets[name] = &bucket{name: name, tenant: tenant, objects: map[string]*object{}}
	return nil
}

// DeleteBucket removes an empty bucket.
func (s *Store) DeleteBucket(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, name)
	}
	if len(b.objects) > 0 {
		return fmt.Errorf("%w: %q", ErrBucketFull, name)
	}
	delete(s.buckets, name)
	return nil
}

// SetVersioning toggles version retention on a bucket. Unversioned buckets
// keep only the latest version of each object.
func (s *Store) SetVersioning(name string, on bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoBucket, name)
	}
	b.versioning = on
	return nil
}

// PutOptions carries optional preconditions for Put.
type PutOptions struct {
	// IfMatch, when non-empty, requires the current ETag to equal it.
	IfMatch string
	// IfNoneMatch, when true, requires the object not to exist (create-only).
	IfNoneMatch bool
}

// Put writes an object version and returns its info. The calling goroutine
// pays the modelled transfer latency.
func (s *Store) Put(bucketName, key string, data []byte, opts PutOptions) (ObjectInfo, error) {
	if s.obsPutLat != nil {
		start := s.clock.Now()
		defer func() { s.obsPutLat.Observe(s.clock.Now().Sub(start)) }()
	}
	s.clock.Sleep(s.latency.Cost(len(data)))

	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj := b.objects[key]
	cur := ""
	if obj != nil && len(obj.versions) > 0 {
		cur = obj.versions[len(obj.versions)-1].info.ETag
	}
	if opts.IfNoneMatch && cur != "" {
		s.mu.Unlock()
		return ObjectInfo{}, fmt.Errorf("%w: object %q exists", ErrPrecondition, key)
	}
	if opts.IfMatch != "" && opts.IfMatch != cur {
		s.mu.Unlock()
		return ObjectInfo{}, fmt.Errorf("%w: etag %q != %q", ErrPrecondition, cur, opts.IfMatch)
	}
	if obj == nil {
		obj = &object{}
		b.objects[key] = obj
	}
	var nextVersion int64 = 1
	if n := len(obj.versions); n > 0 {
		nextVersion = obj.versions[n-1].info.VersionID + 1
	}
	info := ObjectInfo{
		Bucket:     bucketName,
		Key:        key,
		Size:       len(data),
		ETag:       etag(data),
		VersionID:  nextVersion,
		ModifiedAt: s.clock.Now(),
	}
	v := version{data: append([]byte(nil), data...), info: info}
	if b.versioning {
		obj.versions = append(obj.versions, v)
	} else {
		obj.versions = []version{v}
	}
	tenant := b.tenant
	subs := append([]func(Event){}, s.subs...)
	s.mu.Unlock()

	s.meterAdd(tenant, billing.ResBlobPut, 1)
	for _, fn := range subs {
		fn(Event{Type: EventPut, Object: info})
	}
	return info, nil
}

// Get returns the latest version of an object. The calling goroutine pays the
// modelled transfer latency.
func (s *Store) Get(bucketName, key string) ([]byte, ObjectInfo, error) {
	if s.obsGetLat != nil {
		start := s.clock.Now()
		defer func() { s.obsGetLat.Observe(s.clock.Now().Sub(start)) }()
	}
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return nil, ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if !ok || len(obj.versions) == 0 {
		s.mu.Unlock()
		s.clock.Sleep(s.latency.Cost(0))
		s.meterAdd(b.tenant, billing.ResBlobGet, 1)
		return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	v := obj.versions[len(obj.versions)-1]
	data := append([]byte(nil), v.data...)
	tenant := b.tenant
	s.mu.Unlock()

	s.clock.Sleep(s.latency.Cost(len(data)))
	s.meterAdd(tenant, billing.ResBlobGet, 1)
	s.meterAdd(tenant, billing.ResBlobBytesOut, float64(len(data)))
	return data, v.info, nil
}

// GetVersion returns a specific version of an object (versioned buckets).
func (s *Store) GetVersion(bucketName, key string, versionID int64) ([]byte, ObjectInfo, error) {
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return nil, ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if ok {
		for _, v := range obj.versions {
			if v.info.VersionID == versionID {
				data := append([]byte(nil), v.data...)
				tenant := b.tenant
				s.mu.Unlock()
				s.clock.Sleep(s.latency.Cost(len(data)))
				s.meterAdd(tenant, billing.ResBlobGet, 1)
				return data, v.info, nil
			}
		}
	}
	s.mu.Unlock()
	return nil, ObjectInfo{}, fmt.Errorf("%w: %s/%s@v%d", ErrNoObject, bucketName, key, versionID)
}

// Head returns object metadata without transferring the payload.
func (s *Store) Head(bucketName, key string) (ObjectInfo, error) {
	s.clock.Sleep(s.latency.Cost(0))
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return ObjectInfo{}, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if !ok || len(obj.versions) == 0 {
		return ObjectInfo{}, fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	return obj.versions[len(obj.versions)-1].info, nil
}

// Delete removes an object (all versions).
func (s *Store) Delete(bucketName, key string) error {
	s.clock.Sleep(s.latency.Cost(0))
	s.mu.Lock()
	b, ok := s.buckets[bucketName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	obj, ok := b.objects[key]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s/%s", ErrNoObject, bucketName, key)
	}
	info := obj.versions[len(obj.versions)-1].info
	delete(b.objects, key)
	subs := append([]func(Event){}, s.subs...)
	s.mu.Unlock()

	for _, fn := range subs {
		fn(Event{Type: EventDelete, Object: info})
	}
	return nil
}

// List returns up to max object infos with keys beginning with prefix and
// strictly after startAfter, in key order. It reports whether the listing was
// truncated (more results remain).
func (s *Store) List(bucketName, prefix, startAfter string, max int) ([]ObjectInfo, bool, error) {
	s.clock.Sleep(s.latency.Cost(0))
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	keys := make([]string, 0, len(b.objects))
	for k := range b.objects {
		if strings.HasPrefix(k, prefix) && k > startAfter {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	s.meterAdd(b.tenant, billing.ResBlobGet, 1)
	truncated := false
	if max > 0 && len(keys) > max {
		keys = keys[:max]
		truncated = true
	}
	out := make([]ObjectInfo, len(keys))
	for i, k := range keys {
		vs := b.objects[k].versions
		out[i] = vs[len(vs)-1].info
	}
	return out, truncated, nil
}

// TotalBytes returns the bytes currently stored in a bucket (latest versions
// plus retained history).
func (s *Store) TotalBytes(bucketName string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.buckets[bucketName]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoBucket, bucketName)
	}
	var n int
	for _, obj := range b.objects {
		for _, v := range obj.versions {
			n += len(v.data)
		}
	}
	return n, nil
}

func (s *Store) meterAdd(tenant, resource string, units float64) {
	if s.meter != nil {
		s.meter.Add(billing.Record{Tenant: tenant, Resource: resource, Units: units, At: s.clock.Now()})
	}
}

func etag(data []byte) string {
	h := fnv.New64a()
	h.Write(data)
	return fmt.Sprintf("%016x", h.Sum64())
}
