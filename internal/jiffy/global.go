package jiffy

import (
	"fmt"
	"sync"
)

// GlobalKV is the single-global-address-space baseline of §4.4: one flat
// hash space over all blocks, shared by every tenant — the design of
// classical distributed shared memory and recent in-memory stores that the
// paper argues "precludes isolation guarantees for scaling memory resources
// in multi-tenant settings, since adding/removing memory resources for an
// application requires re-partitioning data for the entire address-space."
//
// Experiment E5 contrasts it with Namespace.Scale: scaling GlobalKV moves
// keys belonging to *every* tenant; scaling a Jiffy namespace moves only
// that namespace's keys.
type GlobalKV struct {
	mu     sync.Mutex
	blocks []map[string][]byte // partition → full key → value
}

// NewGlobalKV creates a flat store with n partitions.
func NewGlobalKV(n int) *GlobalKV {
	if n < 1 {
		n = 1
	}
	g := &GlobalKV{blocks: make([]map[string][]byte, n)}
	for i := range g.blocks {
		g.blocks[i] = map[string][]byte{}
	}
	return g
}

func globalKey(tenant, key string) string { return tenant + "\x00" + key }

// Put stores a tenant's key.
func (g *GlobalKV) Put(tenant, key string, value []byte) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fk := globalKey(tenant, key)
	g.blocks[int(hashKey(fk))%len(g.blocks)][fk] = append([]byte(nil), value...)
}

// Get returns a tenant's key.
func (g *GlobalKV) Get(tenant, key string) ([]byte, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	fk := globalKey(tenant, key)
	v, ok := g.blocks[int(hashKey(fk))%len(g.blocks)][fk]
	if !ok {
		return nil, fmt.Errorf("%w: %s/%s", ErrNoKey, tenant, key)
	}
	return append([]byte(nil), v...), nil
}

// Blocks returns the partition count.
func (g *GlobalKV) Blocks() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.blocks)
}

// Scale resizes the global space by delta partitions, re-hashing the entire
// address space. It returns, per tenant, how many of that tenant's keys had
// to move — the cross-tenant disruption Jiffy's namespaces avoid.
func (g *GlobalKV) Scale(delta int) (movedByTenant map[string]int, err error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	newCount := len(g.blocks) + delta
	if newCount < 1 {
		return nil, fmt.Errorf("%w: %d blocks requested", ErrMinBlocks, newCount)
	}
	fresh := make([]map[string][]byte, newCount)
	for i := range fresh {
		fresh[i] = map[string][]byte{}
	}
	movedByTenant = map[string]int{}
	oldCount := len(g.blocks)
	for _, part := range g.blocks {
		for fk, v := range part {
			h := int(hashKey(fk))
			fresh[h%newCount][fk] = v
			if h%newCount != h%oldCount {
				tenant := fk[:indexByte(fk, 0)]
				movedByTenant[tenant]++
			}
		}
	}
	g.blocks = fresh
	return movedByTenant, nil
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}
