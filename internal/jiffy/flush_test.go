package jiffy

import (
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/simclock"
)

func TestFlushOnExpiryPersistsData(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 8)
	store := blob.New(v, nil, blob.LatencyModel{})
	target := FlushTarget{Store: store, Bucket: "cold"}
	v.Run(func() {
		must(t, store.CreateBucket("cold", "t"))
		c.SetFlushTarget(target)
		ns, err := c.CreateNamespace("/job", NamespaceOptions{Lease: time.Second, FlushOnExpiry: true})
		must(t, err)
		must(t, ns.Put("result", []byte("42")))
		must(t, ns.Put("aux", []byte("meta")))
		v.Sleep(2 * time.Second)
		c.ReapExpired()
		v.Sleep(time.Second) // let the async flush land
	})
	// Ephemeral copy is gone; persistent copy remains.
	if _, err := c.Namespace("/job"); err == nil {
		t.Fatal("namespace survived expiry")
	}
	data, err := Flushed(target, "/job", "result")
	if err != nil || string(data) != "42" {
		t.Fatalf("flushed value = %q err=%v", data, err)
	}
	keys, err := ListFlushed(target, "/job")
	must(t, err)
	if len(keys) != 2 || keys[0] != "aux" || keys[1] != "result" {
		t.Fatalf("flushed keys = %v", keys)
	}
}

func TestNoFlushWithoutOptIn(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 4)
	store := blob.New(v, nil, blob.LatencyModel{})
	target := FlushTarget{Store: store, Bucket: "cold"}
	v.Run(func() {
		must(t, store.CreateBucket("cold", "t"))
		c.SetFlushTarget(target)
		ns, err := c.CreateNamespace("/quiet", NamespaceOptions{Lease: time.Second})
		must(t, err)
		must(t, ns.Put("k", []byte("v")))
		v.Sleep(2 * time.Second)
		c.ReapExpired()
		v.Sleep(time.Second)
	})
	if keys, _ := ListFlushed(target, "/quiet"); len(keys) != 0 {
		t.Fatalf("data flushed without opt-in: %v", keys)
	}
}

func TestExplicitRemoveDoesNotFlush(t *testing.T) {
	// Flush is the expiry path only; explicit Remove means "discard".
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 4)
	store := blob.New(v, nil, blob.LatencyModel{})
	target := FlushTarget{Store: store, Bucket: "cold"}
	v.Run(func() {
		must(t, store.CreateBucket("cold", "t"))
		c.SetFlushTarget(target)
		ns, err := c.CreateNamespace("/gone", NamespaceOptions{Lease: -1, FlushOnExpiry: true})
		must(t, err)
		must(t, ns.Put("k", []byte("v")))
		must(t, ns.Remove())
		v.Sleep(time.Second)
	})
	if keys, _ := ListFlushed(target, "/gone"); len(keys) != 0 {
		t.Fatalf("explicit remove flushed data: %v", keys)
	}
}
