package jiffy

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// These tests exercise the sharded locking introduced with per-namespace
// mutexes: distinct tenants must be able to hit the data plane concurrently
// without corrupting controller state, and lease expiry must be safe to fire
// while operations are in flight. They are meaningful mainly under -race.

// TestConcurrentTenants hammers Put/Get/Delete across many namespaces at
// once — the multi-tenant isolation claim (§4.4): traffic on one tenant's
// namespace must not perturb another's.
func TestConcurrentTenants(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 64)
	const tenants = 8
	nss := make([]*Namespace, tenants)
	for i := range nss {
		ns, err := c.CreateNamespace(fmt.Sprintf("/t%d", i), NamespaceOptions{InitialBlocks: 2})
		must(t, err)
		nss[i] = ns
	}
	iters := 2000
	if testing.Short() {
		iters = 300
	}
	var wg sync.WaitGroup
	for i, ns := range nss {
		wg.Add(1)
		go func(i int, ns *Namespace) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				key := fmt.Sprintf("k%d", n%32)
				if err := ns.Put(key, []byte(fmt.Sprintf("t%d-%d", i, n))); err != nil {
					t.Errorf("tenant %d: Put: %v", i, err)
					return
				}
				if _, err := ns.Get(key); err != nil {
					t.Errorf("tenant %d: Get: %v", i, err)
					return
				}
				if n%7 == 0 {
					if err := ns.Delete(key); err != nil && !errors.Is(err, ErrNoKey) {
						t.Errorf("tenant %d: Delete: %v", i, err)
						return
					}
				}
			}
		}(i, ns)
	}
	wg.Wait()
	// Pool accounting must still balance after the storm.
	used := 0
	for _, ns := range nss {
		used += ns.Blocks()
	}
	if free := c.FreeBlocks(); free != c.TotalBlocks()-used {
		t.Fatalf("free = %d, want %d", free, c.TotalBlocks()-used)
	}
}

// TestConcurrentGrowRacingReaders scales a namespace up and down while
// readers and writers stream against it: block-set changes (grow, rehash,
// shrink) must be invisible to concurrent data ops beyond ordinary
// serialization.
func TestConcurrentGrowRacingReaders(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 32)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{InitialBlocks: 1})
	must(t, err)
	for i := 0; i < 64; i++ {
		must(t, ns.Put(fmt.Sprintf("seed%d", i), []byte("v")))
	}
	iters := 500
	if testing.Short() {
		iters = 100
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // scaler
		defer wg.Done()
		for n := 0; n < iters; n++ {
			if _, err := ns.Scale(1); err != nil && !errors.Is(err, ErrNoCapacity) {
				t.Errorf("Scale(+1): %v", err)
				return
			}
			if _, err := ns.Scale(-1); err != nil && !errors.Is(err, ErrMinBlocks) {
				t.Errorf("Scale(-1): %v", err)
				return
			}
		}
	}()
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				key := fmt.Sprintf("seed%d", n%64)
				if _, err := ns.Get(key); err != nil {
					t.Errorf("reader %d: Get(%s): %v", g, key, err)
					return
				}
				if err := ns.Put(fmt.Sprintf("w%d-%d", g, n%16), []byte("x")); err != nil {
					t.Errorf("reader %d: Put: %v", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestExpiryDuringInFlightOps lets short leases lapse while goroutines are
// mid-operation on the expiring namespaces. Every op must either succeed or
// fail with ErrNoNamespace — never corrupt state or trip the race detector.
func TestExpiryDuringInFlightOps(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 64)
	rounds := 20
	if testing.Short() {
		rounds = 5
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				ns, err := c.CreateNamespace(fmt.Sprintf("/g%d-r%d", g, r), NamespaceOptions{Lease: time.Millisecond})
				if err != nil {
					t.Errorf("g%d: create: %v", g, err)
					return
				}
				deadline := time.Now().Add(3 * time.Millisecond)
				for time.Now().Before(deadline) {
					if err := ns.Put("k", []byte("v")); err != nil && !errors.Is(err, ErrNoNamespace) {
						t.Errorf("g%d: Put: %v", g, err)
						return
					}
					if _, err := ns.Get("k"); err != nil &&
						!errors.Is(err, ErrNoNamespace) && !errors.Is(err, ErrNoKey) {
						t.Errorf("g%d: Get: %v", g, err)
						return
					}
					if err := ns.Enqueue([]byte("q")); err != nil && !errors.Is(err, ErrNoNamespace) {
						t.Errorf("g%d: Enqueue: %v", g, err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// Wait out the last leases, reap, and check every block came home.
	time.Sleep(5 * time.Millisecond)
	if free, total := c.FreeBlocks(), c.TotalBlocks(); free != total {
		t.Fatalf("free = %d after all leases lapsed, want %d", free, total)
	}
}

// TestExpiredNamespaceRejectsAllOps is the regression test for the lease
// uniformity bug: Delete and the queue ops used to skip lease reaping, so an
// expired namespace kept accepting them. Every data-plane op must now see
// ErrNoNamespace once the lease lapses.
func TestExpiredNamespaceRejectsAllOps(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 8)
	v.Run(func() {
		ns, err := c.CreateNamespace("/job", NamespaceOptions{Lease: time.Second})
		must(t, err)
		must(t, ns.Put("k", []byte("v")))
		must(t, ns.Enqueue([]byte("item")))
		v.Sleep(2 * time.Second)
		checks := map[string]error{
			"Put":     ns.Put("k2", []byte("v")),
			"Delete":  ns.Delete("k"),
			"Enqueue": ns.Enqueue([]byte("late")),
		}
		if _, err := ns.Get("k"); true {
			checks["Get"] = err
		}
		if _, err := ns.GetView("k"); true {
			checks["GetView"] = err
		}
		if _, err := ns.Dequeue(); true {
			checks["Dequeue"] = err
		}
		if _, err := ns.Scale(1); true {
			checks["Scale"] = err
		}
		for op, err := range checks {
			if !errors.Is(err, ErrNoNamespace) {
				t.Errorf("%s on expired namespace = %v, want ErrNoNamespace", op, err)
			}
		}
	})
}
