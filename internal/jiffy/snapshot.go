package jiffy

import "sort"

// Verification reads for the conformance explorer (internal/conform): pure
// lock-only snapshots of namespace contents. Unlike the data-plane ops they
// pay no modelled latency, charge no billing and allocate copies — the
// explorer compares final states across interleavings, and the act of
// observing must not move the clock.

// Paths returns every live namespace path, sorted.
func (c *Controller) Paths() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	paths := make([]string, 0, len(c.all))
	for p := range c.all {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	return paths
}

// SnapshotKV returns a copy of the namespace's entire KV content across all
// its blocks (nil for a dead namespace).
func (n *Namespace) SnapshotKV() map[string][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil
	}
	out := map[string][]byte{}
	for _, b := range n.blocks {
		for k, v := range b.kv {
			out[k] = append([]byte(nil), v...)
		}
	}
	return out
}

// SnapshotQueue returns a copy of the namespace's FIFO queue, front first
// (nil for a dead namespace).
func (n *Namespace) SnapshotQueue() [][]byte {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil
	}
	out := make([][]byte, 0, len(n.fifo))
	for _, e := range n.fifo {
		out = append(out, append([]byte(nil), e...))
	}
	return out
}
