// Package jiffy implements the paper's §4.4 ephemeral-state store
// (Figure 2): a virtual memory layer for serverless applications built on
// the paper's three insights — (1) multiplex a shared pool of memory across
// applications at block granularity, (2) break the single global
// address-space so that scaling one application's memory re-partitions only
// that application's data (isolation), and (3) borrow operating-system
// virtual-memory ideas: hierarchical namespaces as address spaces,
// block-granularity allocation as paging, lease-based lifetime management,
// and per-namespace notifications to signal consumers that state is ready.
//
// A Controller manages memory nodes contributing fixed-size blocks to a
// shared pool. Namespaces form a tree (e.g. /tenant/app/task); each
// namespace owns blocks and exposes a key-value and a FIFO-queue data
// interface over them. The GlobalKV type in global.go is the
// single-global-address-space baseline that experiment E5 compares against.
//
// Concurrency model (DESIGN.md §6): the paper's isolation insight extends to
// the control plane — one tenant's traffic must not serialize another's. The
// data plane (KV blocks, FIFO queue, subscribers) is guarded per-namespace
// by Namespace.mu; Controller.mu guards only the shared structures: the
// namespace tree, the node registry and block free-lists, and the lease
// expiry heap. Lease expiry is enforced off the hot path: each data op does
// one atomic load against the earliest deadline in the heap (Controller
// .nextExpiry) and a second atomic load against its own namespace's
// deadline; a full reap runs only when a deadline has actually lapsed.
package jiffy

import (
	"container/heap"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/billing"
	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by the store. ErrNoCapacity and ErrLeaseExpired wrap the
// platform-wide identities in internal/errs so errors.Is matches across
// planes; ErrLeaseExpired additionally wraps ErrNoNamespace, preserving the
// historical contract that every op on a reclaimed namespace matches
// ErrNoNamespace.
var (
	ErrNoNamespace = errors.New("jiffy: namespace does not exist")
	ErrNsExists    = errors.New("jiffy: namespace already exists")
	ErrNoCapacity  = fmt.Errorf("jiffy: shared memory pool exhausted (%w)", errs.ErrNoCapacity)
	// ErrLeaseExpired marks an op rejected because the namespace's lease
	// lapsed and its state was (or is being) reclaimed.
	ErrLeaseExpired = fmt.Errorf("jiffy: namespace %w: %w", errs.ErrLeaseExpired, ErrNoNamespace)
	ErrNoKey        = errors.New("jiffy: key not found")
	ErrEmptyQueue   = errors.New("jiffy: queue is empty")
	ErrBadPath      = errors.New("jiffy: malformed namespace path")
	ErrValueTooBig  = errors.New("jiffy: value exceeds block size")
	ErrHasChildren  = errors.New("jiffy: namespace has children")
	ErrMinBlocks    = errors.New("jiffy: cannot scale below one block")
	ErrNodeDown     = errors.New("jiffy: memory node is down")
	ErrNoNode       = errors.New("jiffy: memory node does not exist")
	ErrNoFlush      = errors.New("jiffy: no flush target configured")
)

// noExpiry is the deadline of a namespace whose lease never lapses.
const noExpiry = math.MaxInt64

// LatencyModel is the modelled access cost of the store. Defaults reflect
// memory-speed ephemeral storage: sub-millisecond operations, orders of
// magnitude below blob-store latency — the §4.4 performance gap experiment
// E4 measures.
type LatencyModel struct {
	PerOp   time.Duration
	PerByte time.Duration
}

// Cost returns the modelled duration of an operation moving n bytes.
func (l LatencyModel) Cost(n int) time.Duration {
	return l.PerOp + time.Duration(n)*l.PerByte
}

// MemoryLatency is the default Jiffy access model (~200µs per op, ~1 GB/s).
var MemoryLatency = LatencyModel{PerOp: 200 * time.Microsecond, PerByte: time.Nanosecond}

// NoLatency disables modelled access latency (a zero-valued LatencyModel in
// Config means "use the default"; NoLatency means "really zero" — the
// negative PerOp makes Cost non-positive, which Sleep ignores).
var NoLatency = LatencyModel{PerOp: -1}

// EventType labels namespace notifications.
type EventType int

const (
	// EventPut fires on a KV put or queue enqueue.
	EventPut EventType = iota
	// EventRemove fires on a KV delete or queue dequeue.
	EventRemove
	// EventExpired fires when a namespace's lease lapses and its state is
	// reclaimed.
	EventExpired
	// EventScaled fires when a namespace gains or loses blocks.
	EventScaled
)

// Event is delivered to namespace subscribers.
type Event struct {
	Type EventType
	Path string
	Key  string // the affected key, when applicable
}

// Config parameterizes a Controller.
type Config struct {
	// BlockSize is the capacity of one memory block in bytes. Default 64 KiB.
	BlockSize int
	// DefaultLease is the namespace lease TTL when CreateNamespace gets
	// none. Default 30s (short-lived, like the serverless tasks it serves).
	DefaultLease time.Duration
	// Latency is the modelled access cost. Default MemoryLatency.
	Latency LatencyModel
	// Tenant bills block-seconds when a meter is attached; default "jiffy".
	Tenant string
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.DefaultLease == 0 {
		c.DefaultLease = 30 * time.Second
	}
	if c.Latency == (LatencyModel{}) {
		c.Latency = MemoryLatency
	}
	if c.Tenant == "" {
		c.Tenant = "jiffy"
	}
	return c
}

// block is one fixed-size memory unit. Its storage is resident on one or
// more memory nodes (the namespace's replica count); a block belongs to
// exactly one namespace at a time and serves as one hash partition of that
// namespace's key-value data. A block whose every replica node crashed is
// marked lost: its data is gone until the namespace rematerializes from the
// flush tier, and data ops against it degrade to ErrNodeDown.
type block struct {
	nodes []*MemoryNode // replica set; empty only transiently or when lost
	lost  bool
	kv    map[string][]byte
	used  int       // bytes of KV data resident in this block
	since time.Time // allocation time, for block-seconds metering
}

// MemoryNode is one server contributing blocks to the shared pool.
type MemoryNode struct {
	ID    string
	total int
	inUse int
	// free holds this node's recycled blocks (Controller.mu): allocation
	// reuses a retired block's map storage instead of re-making it.
	free []*block
	// down is the fail-stop flag. Data ops never consult it (block data
	// survives in the shared maps); allocation and capacity accounting do.
	down atomic.Bool
}

// Free returns the node's unallocated block count (zero while down).
func (n *MemoryNode) Free() int {
	if n.down.Load() {
		return 0
	}
	return n.total - n.inUse
}

// Down reports whether the node is crashed.
func (n *MemoryNode) Down() bool { return n.down.Load() }

// Namespace is one node of the hierarchical namespace tree, owning blocks
// and exposing KV and queue interfaces over them.
type Namespace struct {
	ctrl   *Controller
	path   string
	parent *Namespace
	// children is part of the namespace tree, guarded by ctrl.mu.
	children map[string]*Namespace

	lease         time.Duration // immutable after create
	flushOnExpiry bool          // immutable after create
	replicas      int           // replica nodes per block; immutable after create
	// deadline is the lease expiry instant in unix nanoseconds (noExpiry
	// when the lease never lapses). Data ops load it lock-free; Renew and
	// the controller store it under ctrl.mu.
	deadline atomic.Int64

	// mu guards the namespace's data plane: everything below. Taking it
	// does not serialize other namespaces — the §4.4 isolation property.
	// Lock order: a goroutine may take ctrl.mu while holding mu (block
	// allocation during grow/scale), never the reverse.
	mu   sync.Mutex
	dead bool // set on removal/expiry; rejects all further data ops

	lostBlocks int      // block groups whose every replica crashed
	blocks     []*block // KV hash partitions; they also back the FIFO's capacity
	// fifo is the namespace's FIFO queue. It is namespace-scoped (ordering
	// must span partitions); its bytes count against the aggregate
	// capacity of the namespace's blocks.
	fifo     [][]byte
	fifoUsed int
	subs     []func(Event)
}

// leaseEntry is one scheduled expiry in the controller's lease heap. Entries
// are lazily invalidated: a renewal pushes a fresh entry and the stale one
// is discarded when popped (its namespace's live deadline disagrees).
type leaseEntry struct {
	at int64 // deadline, unix nanoseconds
	ns *Namespace
}

// leaseHeap is a min-heap of lease deadlines (container/heap).
type leaseHeap []leaseEntry

func (h leaseHeap) Len() int            { return len(h) }
func (h leaseHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h leaseHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *leaseHeap) Push(x interface{}) { *h = append(*h, x.(leaseEntry)) }
func (h *leaseHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = leaseEntry{}
	*h = old[:n-1]
	return e
}

// Controller is Jiffy's control plane: node registry, block allocator,
// namespace tree, leases and notifications.
type Controller struct {
	clock simclock.Clock
	meter *billing.Meter
	cfg   Config

	// nextExpiry mirrors the earliest deadline in the lease heap (noExpiry
	// when the heap is empty). Data ops compare the current time against it
	// with a single atomic load — the entire lease-enforcement cost when no
	// lease has lapsed.
	nextExpiry atomic.Int64

	mu     sync.Mutex
	nodes  []*MemoryNode
	root   map[string]*Namespace // top-level namespaces by first path part
	all    map[string]*Namespace
	flush  FlushTarget
	leases leaseHeap

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsAlloc        *obs.Counter
	obsFree         *obs.Counter
	obsLeaseExp     *obs.Counter
	obsInUse        *obs.Gauge
	obsOccupancy    *obs.Histogram
	obsOpLat        *obs.Histogram
	obsNodesDown    *obs.Gauge
	obsRecoveries   *obs.Counter
	obsBlocksLost   *obs.Counter
	obsRecoveryTime *obs.Histogram
	tracer          *obs.Tracer
}

// SetObs attaches observability instruments. Call before traffic starts.
func (c *Controller) SetObs(r *obs.Registry) {
	c.tracer = r.Tracer()
	c.obsAlloc = r.Counter("jiffy.block.alloc")
	c.obsFree = r.Counter("jiffy.block.free")
	c.obsLeaseExp = r.Counter("jiffy.lease.expired")
	c.obsInUse = r.Gauge("jiffy.blocks.inuse")
	c.obsOccupancy = r.ValueHistogram("jiffy.block.occupancy")
	c.obsOpLat = r.Histogram("jiffy.op.latency")
	c.obsNodesDown = r.Gauge("jiffy.nodes.down")
	c.obsRecoveries = r.Counter("jiffy.recoveries")
	c.obsBlocksLost = r.Counter("jiffy.blocks.lost")
	c.obsRecoveryTime = r.Histogram("jiffy.recovery.time")
}

// NewController creates an empty controller. meter may be nil.
func NewController(clock simclock.Clock, meter *billing.Meter, cfg Config) *Controller {
	c := &Controller{
		clock: clock,
		meter: meter,
		cfg:   cfg.withDefaults(),
		root:  map[string]*Namespace{},
		all:   map[string]*Namespace{},
	}
	c.nextExpiry.Store(noExpiry)
	return c
}

// AddNode contributes a memory node with the given number of blocks to the
// shared pool.
func (c *Controller) AddNode(id string, blocks int) *MemoryNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := &MemoryNode{ID: id, total: blocks}
	c.nodes = append(c.nodes, n)
	return n
}

// FreeBlocks returns the pool's unallocated block count (reaping expired
// leases first, so it reflects reclaimable capacity).
func (c *Controller) FreeBlocks() int {
	c.maybeReap(c.clock.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	free := 0
	for _, n := range c.nodes {
		free += n.Free()
	}
	return free
}

// TotalBlocks returns the pool's total block count.
func (c *Controller) TotalBlocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, n := range c.nodes {
		total += n.total
	}
	return total
}

// NamespaceOptions parameterize CreateNamespace.
type NamespaceOptions struct {
	// Lease is the TTL; zero uses the controller default. A negative
	// lease never expires.
	Lease time.Duration
	// InitialBlocks sizes the namespace's first allocation. Default 1.
	InitialBlocks int
	// FlushOnExpiry persists the namespace's KV data to the controller's
	// flush target (SetFlushTarget) when the lease lapses, instead of
	// discarding it.
	FlushOnExpiry bool
	// Replicas is the number of distinct memory nodes each of the
	// namespace's blocks is resident on. Default 1 (unreplicated): a node
	// crash loses the blocks it held. With Replicas ≥ 2 a crash degrades
	// nothing — surviving replicas keep serving and the controller restores
	// the replica count on live nodes.
	Replicas int
}

// CreateNamespace makes a namespace at path (parents must exist, except for
// top-level paths) and allocates its initial blocks from the shared pool.
func (c *Controller) CreateNamespace(path string, opts NamespaceOptions) (*Namespace, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	if opts.InitialBlocks <= 0 {
		opts.InitialBlocks = 1
	}
	lease := opts.Lease
	if lease == 0 {
		lease = c.cfg.DefaultLease
	}

	now := c.clock.Now()
	c.maybeReap(now)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.all[path]; ok {
		return nil, fmt.Errorf("%w: %q", ErrNsExists, path)
	}
	var parent *Namespace
	if len(parts) > 1 {
		parentPath := "/" + strings.Join(parts[:len(parts)-1], "/")
		parent = c.all[parentPath]
		if parent == nil {
			return nil, fmt.Errorf("%w: parent of %q", ErrNoNamespace, path)
		}
	}
	replicas := opts.Replicas
	if replicas < 1 {
		replicas = 1
	}
	ns := &Namespace{
		ctrl:          c,
		path:          path,
		parent:        parent,
		children:      map[string]*Namespace{},
		lease:         lease,
		flushOnExpiry: opts.FlushOnExpiry,
		replicas:      replicas,
	}
	ns.deadline.Store(noExpiry)
	for i := 0; i < opts.InitialBlocks; i++ {
		b, err := c.allocBlockLocked(replicas)
		if err != nil {
			c.freeBlocksLocked(ns.blocks)
			return nil, err
		}
		ns.blocks = append(ns.blocks, b)
	}
	if parent != nil {
		parent.children[parts[len(parts)-1]] = ns
	} else {
		c.root[parts[0]] = ns
	}
	c.all[path] = ns
	if lease > 0 {
		c.trackLeaseLocked(ns, now.Add(lease).UnixNano())
	}
	return ns, nil
}

// Namespace returns an existing namespace by path.
func (c *Controller) Namespace(path string) (*Namespace, error) {
	c.maybeReap(c.clock.Now())
	c.mu.Lock()
	defer c.mu.Unlock()
	ns, ok := c.all[path]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoNamespace, path)
	}
	return ns, nil
}

// Subscribe registers a notification handler on a namespace. Handlers run
// synchronously on the mutating goroutine.
func (c *Controller) Subscribe(path string, fn func(Event)) error {
	c.mu.Lock()
	ns, ok := c.all[path]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, path)
	}
	ns.mu.Lock()
	ns.subs = append(ns.subs, fn)
	ns.mu.Unlock()
	return nil
}

// ReapExpired reclaims every namespace whose lease has lapsed, firing
// EventExpired notifications. It also runs lazily: every data op checks the
// earliest scheduled deadline with one atomic load and triggers a reap only
// when it has actually passed.
func (c *Controller) ReapExpired() {
	c.reap(c.clock.Now())
}

// --- lease expiry (the off-hot-path reaper) ---

// trackLeaseLocked schedules a namespace's lease deadline (c.mu held).
func (c *Controller) trackLeaseLocked(ns *Namespace, at int64) {
	ns.deadline.Store(at)
	heap.Push(&c.leases, leaseEntry{at: at, ns: ns})
	c.nextExpiry.Store(c.leases[0].at)
}

// maybeReap is the hot-path gate: a single atomic comparison unless some
// lease deadline has actually lapsed.
func (c *Controller) maybeReap(now time.Time) {
	if now.UnixNano() <= c.nextExpiry.Load() {
		return
	}
	c.reap(now)
}

// reap reclaims every namespace whose deadline has passed. Expiry is
// strictly-after, matching time.Time.After semantics: a namespace is live at
// its exact deadline instant.
func (c *Controller) reap(now time.Time) {
	nowNs := now.UnixNano()
	c.mu.Lock()
	var expired []*Namespace
	for len(c.leases) > 0 && c.leases[0].at < nowNs {
		e := heap.Pop(&c.leases).(leaseEntry)
		if c.all[e.ns.path] != e.ns {
			continue // already removed; stale entry
		}
		if e.ns.deadline.Load() >= nowNs {
			continue // renewed; a later heap entry tracks the live deadline
		}
		expired = append(expired, e.ns)
	}
	if len(c.leases) > 0 {
		c.nextExpiry.Store(c.leases[0].at)
	} else {
		c.nextExpiry.Store(noExpiry)
	}
	// Deepest-first so children detach before parents; deterministic order.
	sort.Slice(expired, func(i, j int) bool {
		di, dj := strings.Count(expired[i].path, "/"), strings.Count(expired[j].path, "/")
		if di != dj {
			return di > dj
		}
		return expired[i].path < expired[j].path
	})
	var victims []*Namespace
	for _, ns := range expired {
		if c.all[ns.path] != ns {
			continue // detached as a descendant of an earlier victim
		}
		c.obsLeaseExp.Inc()
		c.detachLocked(ns, &victims)
	}
	target := c.flush
	c.mu.Unlock()
	c.finish(victims, true, target)
}

// detachLocked unlinks a namespace subtree from the tree (c.mu held),
// appending each namespace to out child-first. Data teardown happens later
// in finish, outside c.mu, so in-flight data ops on *other* namespaces never
// wait on a removal.
func (c *Controller) detachLocked(ns *Namespace, out *[]*Namespace) {
	names := make([]string, 0, len(ns.children))
	for name := range ns.children {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c.detachLocked(ns.children[name], out)
	}
	delete(c.all, ns.path)
	if ns.parent != nil {
		for name, ch := range ns.parent.children {
			if ch == ns {
				delete(ns.parent.children, name)
			}
		}
	} else {
		parts, _ := splitPath(ns.path)
		delete(c.root, parts[0])
	}
	*out = append(*out, ns)
}

// finish completes a removal after the tree detach: marks each namespace
// dead under its own lock, captures flush data, frees the blocks back to
// their nodes, and (on expiry) fires EventExpired notifications. victims
// arrive child-first. Lock order: ns.mu then c.mu, never nested the other
// way.
func (c *Controller) finish(victims []*Namespace, expired bool, target FlushTarget) {
	if len(victims) == 0 {
		return
	}
	var toFree []*block
	var flushFns []func()
	for _, ns := range victims {
		ns.mu.Lock()
		ns.dead = true
		blocks := ns.blocks
		ns.blocks = nil
		ns.fifo, ns.fifoUsed = nil, 0
		var subs []func(Event)
		if expired {
			if fn := flushFn(target, ns, blocks); fn != nil {
				flushFns = append(flushFns, fn)
			}
			subs = ns.subs
		}
		ns.mu.Unlock()
		toFree = append(toFree, blocks...)
		for _, fn := range subs {
			fn(Event{Type: EventExpired, Path: ns.path})
		}
	}
	c.mu.Lock()
	c.freeBlocksLocked(toFree)
	c.mu.Unlock()
	for _, fn := range flushFns {
		c.clock.Go(fn)
	}
}

// --- allocation internals ---

// allocBlock allocates one block, taking c.mu. Called from data ops that
// hold their namespace's lock (grow/scale).
func (c *Controller) allocBlock(replicas int) (*block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.allocBlockLocked(replicas)
}

// allocBlocks allocates n blocks atomically (all or none) under one c.mu
// acquisition.
func (c *Controller) allocBlocks(n, replicas int) ([]*block, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	added := make([]*block, 0, n)
	for i := 0; i < n; i++ {
		b, err := c.allocBlockLocked(replicas)
		if err != nil {
			c.freeBlocksLocked(added)
			return nil, err
		}
		added = append(added, b)
	}
	return added, nil
}

// freeBlocks returns blocks to the pool, taking c.mu.
func (c *Controller) freeBlocks(blocks []*block) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.freeBlocksLocked(blocks)
}

// allocBlockLocked carves one block group out of the pool: replicas slots
// on distinct live nodes, most-free first (spreading load across the pool),
// reusing a recycled block from the primary node's free-list when one exists
// — allocation is then pointer moves, not a map re-make.
func (c *Controller) allocBlockLocked(replicas int) (*block, error) {
	if replicas < 1 {
		replicas = 1
	}
	chosen := make([]*MemoryNode, 0, replicas)
	for len(chosen) < replicas {
		var best *MemoryNode
		for _, n := range c.nodes {
			if n.Free() <= 0 || containsNode(chosen, n) {
				continue
			}
			if best == nil || n.Free() > best.Free() {
				best = n
			}
		}
		if best == nil {
			for _, n := range chosen {
				n.inUse-- // roll back partial placement
			}
			return nil, ErrNoCapacity
		}
		best.inUse++
		chosen = append(chosen, best)
	}
	c.obsAlloc.Add(int64(replicas))
	c.obsInUse.Add(float64(replicas))
	primary := chosen[0]
	if n := len(primary.free); n > 0 {
		b := primary.free[n-1]
		primary.free[n-1] = nil
		primary.free = primary.free[:n-1]
		b.nodes = chosen
		b.since = c.clock.Now()
		return b, nil
	}
	return &block{nodes: chosen, kv: map[string][]byte{}, since: c.clock.Now()}, nil
}

func containsNode(nodes []*MemoryNode, n *MemoryNode) bool {
	for _, m := range nodes {
		if m == n {
			return true
		}
	}
	return false
}

func (c *Controller) freeBlocksLocked(blocks []*block) {
	now := c.clock.Now()
	slots := 0
	for _, b := range blocks {
		slots += len(b.nodes)
	}
	if slots > 0 {
		c.obsFree.Add(int64(slots))
		c.obsInUse.Add(-float64(slots))
	}
	for _, b := range blocks {
		var home *MemoryNode
		for _, n := range b.nodes {
			if n.down.Load() {
				continue // the crash already reset this node's accounting
			}
			n.inUse--
			if home == nil {
				home = n
			}
		}
		c.obsOccupancy.ObserveValue(int64(b.used))
		if c.meter != nil && len(b.nodes) > 0 {
			held := now.Sub(b.since).Seconds()
			c.meter.Add(billing.Record{
				Tenant:   c.cfg.Tenant,
				Resource: billing.ResJiffyBlockSecs,
				Units:    held * float64(len(b.nodes)),
				At:       now,
			})
		}
		clear(b.kv)
		b.used = 0
		b.lost = false
		b.nodes = nil
		if home != nil {
			home.free = append(home.free, b)
		}
	}
}

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || path == "/" {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	if path != "/"+strings.Join(parts, "/") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	return parts, nil
}

func hashKey(key string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(key))
	return h.Sum32()
}
