package jiffy

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/simclock"
)

func newCtrl(blocks int) *Controller {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("node-0", blocks)
	return c
}

func TestPutGetDelete(t *testing.T) {
	c := newCtrl(8)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{})
	must(t, err)
	must(t, ns.Put("k", []byte("v")))
	v, err := ns.Get("k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get = %q %v", v, err)
	}
	must(t, ns.Delete("k"))
	if _, err := ns.Get("k"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v", err)
	}
	if err := ns.Delete("k"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestHierarchicalNamespaces(t *testing.T) {
	c := newCtrl(16)
	app, err := c.CreateNamespace("/tenant", NamespaceOptions{})
	must(t, err)
	task, err := app.CreateChild("task1", NamespaceOptions{})
	must(t, err)
	if task.Path() != "/tenant/task1" {
		t.Fatalf("path = %q", task.Path())
	}
	// Parents must exist.
	if _, err := c.CreateNamespace("/ghost/child", NamespaceOptions{}); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("err = %v", err)
	}
	// Duplicate rejected.
	if _, err := c.CreateNamespace("/tenant", NamespaceOptions{}); !errors.Is(err, ErrNsExists) {
		t.Fatalf("err = %v", err)
	}
	if kids := app.Children(); len(kids) != 1 || kids[0] != "task1" {
		t.Fatalf("children = %v", kids)
	}
	// Removing the parent frees descendants.
	free := c.FreeBlocks()
	must(t, app.Remove())
	if c.FreeBlocks() != free+2 {
		t.Fatalf("blocks not freed: %d → %d", free, c.FreeBlocks())
	}
	if _, err := c.Namespace("/tenant/task1"); !errors.Is(err, ErrNoNamespace) {
		t.Fatalf("child survived parent removal: %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	c := newCtrl(4)
	for _, p := range []string{"", "/", "x", "//a", "/a//b"} {
		if _, err := c.CreateNamespace(p, NamespaceOptions{}); !errors.Is(err, ErrBadPath) {
			t.Fatalf("CreateNamespace(%q) err = %v", p, err)
		}
	}
	ns, _ := c.CreateNamespace("/ok", NamespaceOptions{})
	if _, err := ns.CreateChild("bad/name", NamespaceOptions{}); !errors.Is(err, ErrBadPath) {
		t.Fatalf("err = %v", err)
	}
}

func TestCapacityExhaustion(t *testing.T) {
	c := newCtrl(2)
	_, err := c.CreateNamespace("/a", NamespaceOptions{InitialBlocks: 2})
	must(t, err)
	if _, err := c.CreateNamespace("/b", NamespaceOptions{}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v", err)
	}
}

func TestMultiplexingAcrossShortLivedApps(t *testing.T) {
	// The pool holds 2 blocks, but 10 sequential short-lived apps can all
	// run — insight (1): short task lifetimes let capacity multiplex.
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 2)
	v.Run(func() {
		for i := 0; i < 10; i++ {
			ns, err := c.CreateNamespace(fmt.Sprintf("/app%d", i), NamespaceOptions{Lease: time.Second, InitialBlocks: 2})
			must(t, err)
			must(t, ns.Put("x", []byte("y")))
			v.Sleep(2 * time.Second) // lease lapses; blocks return to pool
		}
	})
	if c.FreeBlocks() != 2 {
		t.Fatalf("free blocks = %d, want 2", c.FreeBlocks())
	}
}

func TestLeaseExpiryAndRenewal(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 4)
	v.Run(func() {
		ns, err := c.CreateNamespace("/job", NamespaceOptions{Lease: 10 * time.Second})
		must(t, err)
		must(t, ns.Put("state", []byte("data")))
		v.Sleep(6 * time.Second)
		must(t, ns.Renew()) // consumer keeps state alive past producer death
		v.Sleep(6 * time.Second)
		if _, err := ns.Get("state"); err != nil {
			t.Errorf("state lost despite renewal: %v", err)
		}
		v.Sleep(11 * time.Second)
		if _, err := ns.Get("state"); !errors.Is(err, ErrNoNamespace) {
			t.Errorf("state survived lease expiry: %v", err)
		}
		if err := ns.Renew(); !errors.Is(err, ErrNoNamespace) {
			t.Errorf("renew after expiry = %v", err)
		}
	})
}

func TestExpiryNotification(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency})
	c.AddNode("n0", 4)
	v.Run(func() {
		_, err := c.CreateNamespace("/job", NamespaceOptions{Lease: time.Second})
		must(t, err)
		var events []Event
		must(t, c.Subscribe("/job", func(e Event) { events = append(events, e) }))
		v.Sleep(2 * time.Second)
		c.ReapExpired()
		if len(events) != 1 || events[0].Type != EventExpired {
			t.Errorf("events = %+v", events)
		}
	})
}

func TestPutGetNotifications(t *testing.T) {
	c := newCtrl(4)
	ns, _ := c.CreateNamespace("/app", NamespaceOptions{})
	var events []Event
	must(t, c.Subscribe("/app", func(e Event) { events = append(events, e) }))
	must(t, ns.Put("k", []byte("v")))
	must(t, ns.Delete("k"))
	must(t, ns.Enqueue([]byte("item")))
	_, err := ns.Dequeue()
	must(t, err)
	want := []EventType{EventPut, EventRemove, EventPut, EventRemove}
	if len(events) != len(want) {
		t.Fatalf("events = %+v", events)
	}
	for i, w := range want {
		if events[i].Type != w {
			t.Fatalf("event %d = %+v, want type %d", i, events[i], w)
		}
	}
	if events[0].Key != "k" {
		t.Fatalf("put event key = %q", events[0].Key)
	}
}

func TestQueueFIFO(t *testing.T) {
	c := newCtrl(4)
	ns, _ := c.CreateNamespace("/q", NamespaceOptions{})
	for i := 0; i < 5; i++ {
		must(t, ns.Enqueue([]byte{byte(i)}))
	}
	if ns.QueueLen() != 5 {
		t.Fatalf("len = %d", ns.QueueLen())
	}
	for i := 0; i < 5; i++ {
		item, err := ns.Dequeue()
		must(t, err)
		if item[0] != byte(i) {
			t.Fatalf("dequeue %d = %d", i, item[0])
		}
	}
	if _, err := ns.Dequeue(); !errors.Is(err, ErrEmptyQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestAutoScaleOnBlockFull(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{BlockSize: 64, Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 8)
	ns, err := c.CreateNamespace("/grow", NamespaceOptions{})
	must(t, err)
	before := ns.Blocks()
	for i := 0; i < 20; i++ {
		must(t, ns.Put(fmt.Sprintf("key-%02d", i), []byte("0123456789")))
	}
	if ns.Blocks() <= before {
		t.Fatalf("namespace did not grow: %d blocks", ns.Blocks())
	}
	// All keys still readable after repartitioning.
	for i := 0; i < 20; i++ {
		if _, err := ns.Get(fmt.Sprintf("key-%02d", i)); err != nil {
			t.Fatalf("key-%02d lost in auto-scale: %v", i, err)
		}
	}
}

func TestQueueAutoScale(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{BlockSize: 64, Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 8)
	ns, _ := c.CreateNamespace("/q", NamespaceOptions{})
	for i := 0; i < 10; i++ {
		must(t, ns.Enqueue(make([]byte, 40)))
	}
	if ns.Blocks() < 2 {
		t.Fatalf("queue did not grow blocks: %d", ns.Blocks())
	}
	if ns.QueueLen() != 10 {
		t.Fatalf("queue lost items: %d", ns.QueueLen())
	}
}

func TestValueTooBig(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{BlockSize: 16, Latency: NoLatency, DefaultLease: -1})
	c.AddNode("n0", 2)
	ns, _ := c.CreateNamespace("/x", NamespaceOptions{})
	if err := ns.Put("k", make([]byte, 32)); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("err = %v", err)
	}
	if err := ns.Enqueue(make([]byte, 32)); !errors.Is(err, ErrValueTooBig) {
		t.Fatalf("err = %v", err)
	}
}

func TestScaleIsolation(t *testing.T) {
	// §4.4 insight (2): scaling namespace A must not move namespace B's keys.
	c := newCtrl(64)
	a, err := c.CreateNamespace("/a", NamespaceOptions{InitialBlocks: 4})
	must(t, err)
	b, err := c.CreateNamespace("/b", NamespaceOptions{InitialBlocks: 4})
	must(t, err)
	for i := 0; i < 100; i++ {
		must(t, a.Put(fmt.Sprintf("a%d", i), []byte("v")))
		must(t, b.Put(fmt.Sprintf("b%d", i), []byte("v")))
	}
	bPlacement := map[string]int{}
	for _, k := range b.Keys() {
		bPlacement[k] = b.BlockOf(k)
	}
	moved, err := a.Scale(+4)
	must(t, err)
	if moved == 0 || moved == 100 {
		t.Fatalf("moved = %d, want partial movement of A's keys", moved)
	}
	// B untouched: same placements, all keys readable.
	for k, blk := range bPlacement {
		if b.BlockOf(k) != blk {
			t.Fatalf("B's key %q moved when A scaled", k)
		}
	}
	if a.Blocks() != 8 {
		t.Fatalf("A blocks = %d", a.Blocks())
	}
	// Scale down.
	_, err = a.Scale(-6)
	must(t, err)
	if a.Blocks() != 2 {
		t.Fatalf("A blocks after scale-down = %d", a.Blocks())
	}
	for i := 0; i < 100; i++ {
		if _, err := a.Get(fmt.Sprintf("a%d", i)); err != nil {
			t.Fatalf("A key lost after scaling: %v", err)
		}
	}
	if _, err := a.Scale(-2); !errors.Is(err, ErrMinBlocks) {
		t.Fatalf("scale below 1 err = %v", err)
	}
}

func TestGlobalKVDisruptsAllTenants(t *testing.T) {
	g := NewGlobalKV(8)
	for i := 0; i < 200; i++ {
		g.Put("tenantA", fmt.Sprintf("a%d", i), []byte("v"))
		g.Put("tenantB", fmt.Sprintf("b%d", i), []byte("v"))
	}
	moved, err := g.Scale(+8)
	must(t, err)
	if moved["tenantA"] == 0 || moved["tenantB"] == 0 {
		t.Fatalf("global scaling should disrupt every tenant: %v", moved)
	}
	if g.Blocks() != 16 {
		t.Fatalf("blocks = %d", g.Blocks())
	}
	// Data intact.
	for i := 0; i < 200; i++ {
		if _, err := g.Get("tenantA", fmt.Sprintf("a%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := g.Get("ghost", "x"); !errors.Is(err, ErrNoKey) {
		t.Fatalf("err = %v", err)
	}
	if _, err := g.Scale(-99); !errors.Is(err, ErrMinBlocks) {
		t.Fatalf("err = %v", err)
	}
}

func TestBlockSecondsMetering(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	m := billing.NewMeter()
	c := NewController(v, m, Config{Latency: NoLatency, Tenant: "acme"})
	c.AddNode("n0", 4)
	v.Run(func() {
		ns, err := c.CreateNamespace("/job", NamespaceOptions{Lease: -1, InitialBlocks: 2})
		must(t, err)
		v.Sleep(10 * time.Second)
		must(t, ns.Remove())
	})
	// 2 blocks × 10 s = 20 block-seconds.
	if got := m.Units("acme", billing.ResJiffyBlockSecs); got != 20 {
		t.Fatalf("block-seconds = %v, want 20", got)
	}
}

func TestAccessLatencyModelled(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: LatencyModel{PerOp: time.Millisecond}, DefaultLease: -1})
	c.AddNode("n0", 4)
	var elapsed time.Duration
	v.Run(func() {
		ns, err := c.CreateNamespace("/l", NamespaceOptions{})
		must(t, err)
		start := v.Now()
		must(t, ns.Put("k", []byte("v")))
		_, err = ns.Get("k")
		must(t, err)
		elapsed = v.Now().Sub(start)
	})
	if elapsed != 2*time.Millisecond {
		t.Fatalf("elapsed = %v, want 2ms", elapsed)
	}
}

func TestAllocationSpreadsAcrossNodes(t *testing.T) {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	n0 := c.AddNode("n0", 4)
	n1 := c.AddNode("n1", 4)
	_, err := c.CreateNamespace("/s", NamespaceOptions{InitialBlocks: 4})
	must(t, err)
	if n0.Free() != 2 || n1.Free() != 2 {
		t.Fatalf("allocation skewed: n0 free %d, n1 free %d", n0.Free(), n1.Free())
	}
	if c.TotalBlocks() != 8 || c.FreeBlocks() != 4 {
		t.Fatalf("totals wrong: %d/%d", c.FreeBlocks(), c.TotalBlocks())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
