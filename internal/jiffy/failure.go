package jiffy

import (
	"fmt"
	"sort"

	"repro/internal/blob"
)

// This file is Jiffy's failure plane: memory-node fail-stop crashes, the
// eviction/re-replication sweep that repairs block replica sets, and
// checkpoint/rematerialize against the flush tier for state that was lost
// outright. The lock order everywhere is ns.mu → c.mu (DESIGN.md §6): the
// crash sweep therefore snapshots the namespace list under c.mu, releases
// it, and repairs each namespace under that namespace's own lock.

// NodeIDs returns the registered memory-node ids in registration order.
func (c *Controller) NodeIDs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.nodes))
	for i, n := range c.nodes {
		out[i] = n.ID
	}
	return out
}

// Node returns a registered memory node by id.
func (c *Controller) Node(id string) (*MemoryNode, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.ID == id {
			return n, true
		}
	}
	return nil, false
}

// CrashNode fail-stops a memory node: its block storage vanishes from the
// pool. Every block group that held a replica there is repaired — surviving
// replicas adopt a slot on a fresh live node (restoring the namespace's
// replica count at no data cost, since replicas share the resident map) —
// and groups with no surviving replica are marked lost: their keys are gone
// and data ops against them degrade to ErrNodeDown until the namespace
// rematerializes. Returns (blocks repaired, block groups lost).
func (c *Controller) CrashNode(id string) (repaired, lost int, err error) {
	start := c.clock.Now()
	c.mu.Lock()
	var node *MemoryNode
	for _, n := range c.nodes {
		if n.ID == id {
			node = n
		}
	}
	if node == nil {
		c.mu.Unlock()
		return 0, 0, fmt.Errorf("%w: %q", ErrNoNode, id)
	}
	if node.down.Load() {
		c.mu.Unlock()
		return 0, 0, nil
	}
	node.down.Store(true)
	node.free = nil
	node.inUse = 0
	victims := make([]*Namespace, 0, len(c.all))
	for _, ns := range c.all {
		victims = append(victims, ns)
	}
	c.mu.Unlock()
	sort.Slice(victims, func(i, j int) bool { return victims[i].path < victims[j].path })

	for _, ns := range victims {
		r, l := ns.evictNode(node)
		repaired += r
		lost += l
	}
	c.obsNodesDown.Add(1)
	c.obsRecoveries.Add(int64(repaired))
	c.obsBlocksLost.Add(int64(lost))
	c.obsRecoveryTime.Observe(c.clock.Now().Sub(start))
	return repaired, lost, nil
}

// RestartNode brings a crashed node back, empty: its previous contents are
// gone (the fail-stop model), but its capacity rejoins the pool.
func (c *Controller) RestartNode(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, n := range c.nodes {
		if n.ID == id {
			if n.down.Load() {
				n.down.Store(false)
				c.obsNodesDown.Add(-1)
			}
			return nil
		}
	}
	return fmt.Errorf("%w: %q", ErrNoNode, id)
}

// evictNode removes a crashed node from every block group of this namespace,
// re-replicating groups that still have a live replica and marking the rest
// lost. Holds ns.mu; allocation of replacement slots takes c.mu inside.
func (ns *Namespace) evictNode(node *MemoryNode) (repaired, lost int) {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if ns.dead {
		return 0, 0
	}
	for _, b := range ns.blocks {
		idx := -1
		for i, n := range b.nodes {
			if n == node {
				idx = i
			}
		}
		if idx < 0 {
			continue
		}
		b.nodes = append(b.nodes[:idx], b.nodes[idx+1:]...)
		if len(b.nodes) > 0 {
			// Survivors keep serving; adopt a slot on a fresh node so the
			// replica count recovers before the next crash.
			if repl := ns.ctrl.replacementSlot(b.nodes); repl != nil {
				b.nodes = append(b.nodes, repl)
			}
			repaired++
			continue
		}
		clear(b.kv)
		b.used = 0
		b.lost = true
		ns.lostBlocks++
		lost++
	}
	// The FIFO's bytes are attributed to the namespace's first block group;
	// losing that group loses the queue.
	if lost > 0 && len(ns.blocks) > 0 && ns.blocks[0].lost {
		ns.fifo, ns.fifoUsed = nil, 0
	}
	return repaired, lost
}

// replacementSlot reserves one block slot on the live node with the most
// free capacity, excluding nodes already in the replica set. Returns nil
// when the pool has no spare capacity (the group stays degraded).
func (c *Controller) replacementSlot(exclude []*MemoryNode) *MemoryNode {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *MemoryNode
	for _, n := range c.nodes {
		if n.Free() <= 0 || containsNode(exclude, n) {
			continue
		}
		if best == nil || n.Free() > best.Free() {
			best = n
		}
	}
	if best != nil {
		best.inUse++
		c.obsAlloc.Inc()
		c.obsInUse.Add(1)
	}
	return best
}

// Checkpoint persists the namespace's current KV contents to the flush
// tier, making a later Rematerialize lossless for the checkpointed keys.
// Returns the number of pairs written. The blob writes sleep on the clock
// and run outside every store lock.
func (ns *Namespace) Checkpoint() (int, error) {
	c := ns.ctrl
	c.mu.Lock()
	target := c.flush
	c.mu.Unlock()
	if target.Store == nil {
		return 0, ErrNoFlush
	}
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return 0, err
	}
	type pair struct {
		key string
		val []byte
	}
	var pairs []pair
	for _, b := range ns.blocks {
		for k, v := range b.kv {
			pairs = append(pairs, pair{k, append([]byte(nil), v...)})
		}
	}
	ns.mu.Unlock()
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].key < pairs[j].key })
	for _, p := range pairs {
		if _, err := target.Store.Put(target.Bucket, FlushKey(ns.path, p.key), p.val, blob.PutOptions{}); err != nil {
			return 0, err
		}
	}
	return len(pairs), nil
}

// Rematerialize repairs a namespace degraded by block loss: every lost
// group gets a fresh replica set on live nodes, and keys previously
// persisted to the flush tier (Checkpoint, or FlushOnExpiry of an earlier
// incarnation) are reloaded into the groups that lost them. Keys that were
// never flushed are gone — the fail-stop cost the paper's lease/flush
// machinery exists to bound. Returns the number of keys restored.
func (ns *Namespace) Rematerialize() (int, error) {
	c := ns.ctrl
	start := c.clock.Now()
	c.mu.Lock()
	target := c.flush
	c.mu.Unlock()

	if err := ns.lockLive(c.clock.Now()); err != nil {
		return 0, err
	}
	if ns.lostBlocks == 0 {
		ns.mu.Unlock()
		return 0, nil
	}
	// Phase 1: give every lost group fresh storage so the namespace is
	// writable again, remembering which partitions need reloading.
	restoredIdx := map[int]bool{}
	for i, b := range ns.blocks {
		if !b.lost {
			continue
		}
		nb, err := c.allocBlock(ns.replicas)
		if err != nil {
			ns.mu.Unlock()
			return 0, err
		}
		nb.kv, nb.used = b.kv, 0 // reuse the (cleared) resident map
		if nb.kv == nil {
			nb.kv = map[string][]byte{}
		}
		ns.blocks[i] = nb
		restoredIdx[i] = true
	}
	ns.lostBlocks = 0
	nblocks := len(ns.blocks)
	ns.mu.Unlock()

	// Phase 2: read the flushed keys back, outside every lock (blob ops
	// sleep on the clock).
	restored := 0
	if target.Store != nil {
		keys, err := ListFlushed(target, ns.path)
		if err == nil {
			for _, key := range keys {
				if !restoredIdx[int(hashKey(key))%nblocks] {
					continue // partition survived; do not resurrect deletes
				}
				val, err := Flushed(target, ns.path, key)
				if err != nil {
					continue
				}
				if err := ns.Put(key, val); err == nil {
					restored++
				}
			}
		}
	}
	c.obsRecoveries.Inc()
	c.obsRecoveryTime.Observe(c.clock.Now().Sub(start))
	return restored, nil
}
