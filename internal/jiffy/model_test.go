package jiffy

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

// TestModelRandomOpsAndScaling drives a namespace with random puts, deletes
// and scalings and checks it stays equivalent to a plain map — the
// model-based test that repartitioning never loses or corrupts data.
func TestModelRandomOpsAndScaling(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1, BlockSize: 1 << 16})
		c.AddNode("n0", 64)
		ns, err := c.CreateNamespace("/m", NamespaceOptions{InitialBlocks: 2})
		if err != nil {
			return false
		}
		model := map[string]string{}
		for op := 0; op < 300; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(40))
			switch rng.Intn(5) {
			case 0, 1: // put
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := ns.Put(key, []byte(val)); err != nil {
					return false
				}
				model[key] = val
			case 2: // delete
				err := ns.Delete(key)
				_, exists := model[key]
				if exists != (err == nil) {
					return false
				}
				delete(model, key)
			case 3: // get
				got, err := ns.Get(key)
				want, exists := model[key]
				if exists != (err == nil) {
					return false
				}
				if exists && string(got) != want {
					return false
				}
			case 4: // scale up or down
				delta := rng.Intn(3) - 1
				if delta != 0 {
					if _, err := ns.Scale(delta); err != nil && ns.Blocks() > 1 {
						return false
					}
				}
			}
		}
		// Final equivalence.
		keys := ns.Keys()
		if len(keys) != len(model) {
			return false
		}
		for _, k := range keys {
			got, err := ns.Get(k)
			if err != nil || string(got) != model[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestPoolAccountingInvariant: allocated + free always equals the pool total
// through arbitrary create/scale/remove churn.
func TestPoolAccountingInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("a", 32)
	c.AddNode("b", 32)
	total := c.TotalBlocks()
	var spaces []*Namespace
	for i := 0; i < 200; i++ {
		switch rng.Intn(3) {
		case 0:
			ns, err := c.CreateNamespace(fmt.Sprintf("/ns%d", i), NamespaceOptions{InitialBlocks: 1 + rng.Intn(3)})
			if err == nil {
				spaces = append(spaces, ns)
			}
		case 1:
			if len(spaces) > 0 {
				idx := rng.Intn(len(spaces))
				_, _ = spaces[idx].Scale(rng.Intn(5) - 2)
			}
		case 2:
			if len(spaces) > 0 {
				idx := rng.Intn(len(spaces))
				_ = spaces[idx].Remove()
				spaces = append(spaces[:idx], spaces[idx+1:]...)
			}
		}
		allocated := 0
		for _, ns := range spaces {
			allocated += ns.Blocks()
		}
		if allocated+c.FreeBlocks() != total {
			t.Fatalf("iteration %d: allocated %d + free %d != total %d",
				i, allocated, c.FreeBlocks(), total)
		}
	}
}
