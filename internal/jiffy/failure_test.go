package jiffy

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/simclock"
)

func newFailCtrl(nodes, blocksPer int) *Controller {
	c := NewController(simclock.Real{}, nil, Config{Latency: NoLatency, DefaultLease: -1})
	for i := 0; i < nodes; i++ {
		c.AddNode(fmt.Sprintf("mem-%d", i), blocksPer)
	}
	return c
}

// TestCrashUnreplicatedLosesData pins the degraded path: with Replicas=1 a
// node crash loses the partitions it held, and data ops degrade to
// ErrNodeDown rather than pretending the keys never existed.
func TestCrashUnreplicatedLosesData(t *testing.T) {
	c := newFailCtrl(1, 8)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{})
	must(t, err)
	must(t, ns.Put("k", []byte("v")))
	must(t, ns.Enqueue([]byte("item")))

	_, lost, err := c.CrashNode("mem-0")
	must(t, err)
	if lost != 1 {
		t.Fatalf("lost = %d, want 1", lost)
	}
	if _, err := ns.Get("k"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Get err = %v, want ErrNodeDown", err)
	}
	if err := ns.Put("k2", []byte("x")); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Put err = %v, want ErrNodeDown", err)
	}
	if _, err := ns.Dequeue(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Dequeue err = %v, want ErrNodeDown", err)
	}
	if _, err := ns.Scale(1); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("Scale err = %v, want ErrNodeDown", err)
	}
	// Crashing twice is idempotent.
	if r, l, err := c.CrashNode("mem-0"); err != nil || r != 0 || l != 0 {
		t.Fatalf("second crash = (%d, %d, %v)", r, l, err)
	}
}

// TestCrashReplicatedSurvives: with Replicas=2 a single node crash loses
// nothing — the surviving replica keeps serving and the group re-replicates
// onto a live node, so a second crash of the original survivor is also safe.
func TestCrashReplicatedSurvives(t *testing.T) {
	c := newFailCtrl(3, 8)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{Replicas: 2, InitialBlocks: 2})
	must(t, err)
	for i := 0; i < 10; i++ {
		must(t, ns.Put(fmt.Sprintf("k%d", i), []byte("v")))
	}
	repaired, lost, err := c.CrashNode("mem-0")
	must(t, err)
	if lost != 0 {
		t.Fatalf("lost = %d, want 0 (replicated)", lost)
	}
	if repaired == 0 {
		t.Fatal("no block groups repaired")
	}
	for i := 0; i < 10; i++ {
		if v, err := ns.Get(fmt.Sprintf("k%d", i)); err != nil || string(v) != "v" {
			t.Fatalf("Get(k%d) after crash = %q %v", i, v, err)
		}
	}
	// The replica count was restored: crash a second node; still no loss.
	if _, lost, err := c.CrashNode("mem-1"); err != nil || lost != 0 {
		t.Fatalf("second crash lost %d groups (err %v), want 0", lost, err)
	}
	for i := 0; i < 10; i++ {
		if _, err := ns.Get(fmt.Sprintf("k%d", i)); err != nil {
			t.Fatalf("Get(k%d) after second crash: %v", i, err)
		}
	}
}

// TestRestartNodeRejoinsEmpty: a restarted node contributes capacity again
// but holds none of its former data.
func TestRestartNodeRejoinsEmpty(t *testing.T) {
	c := newFailCtrl(2, 4)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{})
	must(t, err)
	must(t, ns.Put("k", []byte("v")))
	if _, _, err := c.CrashNode("mem-0"); err != nil {
		t.Fatal(err)
	}
	free := c.FreeBlocks()
	must(t, c.RestartNode("mem-0"))
	if got := c.FreeBlocks(); got != free+4 {
		t.Fatalf("FreeBlocks after restart = %d, want %d", got, free+4)
	}
	if _, _, err := c.CrashNode("nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("crash unknown node err = %v", err)
	}
	if err := c.RestartNode("nope"); !errors.Is(err, ErrNoNode) {
		t.Fatalf("restart unknown node err = %v", err)
	}
}

// TestCheckpointRematerialize is the failover-read path: checkpointed keys
// survive a total loss of their memory node via the flush tier.
func TestCheckpointRematerialize(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	c := NewController(v, nil, Config{Latency: NoLatency, DefaultLease: -1})
	c.AddNode("mem-0", 8)
	c.AddNode("mem-1", 8)
	store := blob.New(v, nil, blob.LatencyModel{})
	v.Run(func() {
		must(t, store.CreateBucket("cold", "t"))
		c.SetFlushTarget(FlushTarget{Store: store, Bucket: "cold"})
		ns, err := c.CreateNamespace("/job", NamespaceOptions{})
		must(t, err)
		must(t, ns.Put("a", []byte("1")))
		must(t, ns.Put("b", []byte("2")))
		n, err := ns.Checkpoint()
		must(t, err)
		if n != 2 {
			t.Errorf("checkpointed %d pairs, want 2", n)
		}
		// Written after the checkpoint: lost for good.
		must(t, ns.Put("c", []byte("3")))

		if _, _, err := c.CrashNode("mem-0"); err != nil {
			t.Error(err)
			return
		}
		if _, err := ns.Get("a"); !errors.Is(err, ErrNodeDown) {
			t.Errorf("Get before rematerialize err = %v", err)
		}
		restored, err := ns.Rematerialize()
		must(t, err)
		if restored != 2 {
			t.Errorf("restored %d keys, want 2", restored)
		}
		for k, want := range map[string]string{"a": "1", "b": "2"} {
			if got, err := ns.Get(k); err != nil || string(got) != want {
				t.Errorf("Get(%q) = %q %v, want %q", k, got, err, want)
			}
		}
		if _, err := ns.Get("c"); !errors.Is(err, ErrNoKey) {
			t.Errorf("unflushed key err = %v, want ErrNoKey", err)
		}
		// The namespace is writable again.
		must(t, ns.Put("d", []byte("4")))
		// Rematerialize with nothing lost is a no-op.
		if n, err := ns.Rematerialize(); err != nil || n != 0 {
			t.Errorf("idle Rematerialize = (%d, %v)", n, err)
		}
	})
}

// TestRematerializeWithoutFlushTargetRestoresWritability: no flush tier
// means the data is gone, but the namespace must still become writable.
func TestRematerializeWithoutFlushTarget(t *testing.T) {
	c := newFailCtrl(2, 4)
	ns, err := c.CreateNamespace("/app", NamespaceOptions{})
	must(t, err)
	must(t, ns.Put("k", []byte("v")))
	if _, _, err := c.CrashNode("mem-0"); err != nil {
		t.Fatal(err)
	}
	restored, err := ns.Rematerialize()
	must(t, err)
	if restored != 0 {
		t.Fatalf("restored = %d, want 0", restored)
	}
	must(t, ns.Put("k", []byte("v2")))
	if v, err := ns.Get("k"); err != nil || string(v) != "v2" {
		t.Fatalf("Get after rematerialize = %q %v", v, err)
	}
}

// TestReplicasNeedDistinctNodes: a replica count the pool cannot place on
// distinct nodes is refused, and the partial placement is rolled back.
func TestReplicasNeedDistinctNodes(t *testing.T) {
	c := newFailCtrl(2, 4)
	if _, err := c.CreateNamespace("/app", NamespaceOptions{Replicas: 3}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if got := c.FreeBlocks(); got != 8 {
		t.Fatalf("FreeBlocks after failed alloc = %d, want 8 (rollback)", got)
	}
}
