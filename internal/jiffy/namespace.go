package jiffy

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Path returns the namespace's full path.
func (ns *Namespace) Path() string { return ns.path }

// Blocks returns the namespace's current block count.
func (ns *Namespace) Blocks() int {
	ns.ctrl.mu.Lock()
	defer ns.ctrl.mu.Unlock()
	return len(ns.blocks)
}

// UsedBytes returns the bytes stored in the namespace (KV plus queue).
func (ns *Namespace) UsedBytes() int {
	ns.ctrl.mu.Lock()
	defer ns.ctrl.mu.Unlock()
	n := ns.fifoUsed
	for _, b := range ns.blocks {
		n += b.used
	}
	return n
}

// Renew extends the namespace's lease by its TTL from now — the mechanism
// that decouples state lifetime from the producing task's lifetime (§4.4):
// any party with the path, producer or consumer, can keep the state alive.
func (ns *Namespace) Renew() error {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	if _, ok := c.all[ns.path]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	if ns.lease > 0 {
		ns.expiresAt = c.clock.Now().Add(ns.lease)
	}
	return nil
}

// Remove frees the namespace, its descendants and all their blocks.
func (ns *Namespace) Remove() error {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.all[ns.path]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	c.removeLocked(ns, false)
	return nil
}

// CreateChild creates a sub-namespace (e.g. a task's namespace under its
// application), inheriting nothing: it has its own blocks and lease.
func (ns *Namespace) CreateChild(name string, opts NamespaceOptions) (*Namespace, error) {
	if strings.ContainsAny(name, "/ ") || name == "" {
		return nil, fmt.Errorf("%w: child %q", ErrBadPath, name)
	}
	return ns.ctrl.CreateNamespace(ns.path+"/"+name, opts)
}

// Children returns the namespace's child names, sorted.
func (ns *Namespace) Children() []string {
	ns.ctrl.mu.Lock()
	defer ns.ctrl.mu.Unlock()
	out := make([]string, 0, len(ns.children))
	for name := range ns.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Scale adds (delta > 0) or removes (delta < 0) blocks, re-partitioning
// *only this namespace's* keys across the new block set — the isolation
// property that the single global address-space baseline cannot provide
// (§4.4, experiment E5). It returns the number of keys that moved.
func (ns *Namespace) Scale(delta int) (moved int, err error) {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.all[ns.path]; !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	oldCount := len(ns.blocks)
	newCount := oldCount + delta
	if newCount < 1 {
		return 0, fmt.Errorf("%w: %d blocks requested", ErrMinBlocks, newCount)
	}
	if delta > 0 {
		added := make([]*block, 0, delta)
		for i := 0; i < delta; i++ {
			b, err := c.allocBlockLocked()
			if err != nil {
				c.freeBlocksLocked(added)
				return 0, err
			}
			added = append(added, b)
		}
		ns.blocks = append(ns.blocks, added...)
	} else {
		// Preserve dropped blocks' data before returning them to the pool;
		// rehashLocked redistributes it properly below.
		keep := ns.blocks[0]
		for _, b := range ns.blocks[newCount:] {
			for k, v := range b.kv {
				keep.kv[k] = v
				keep.used += len(k) + len(v)
			}
		}
		c.freeBlocksLocked(ns.blocks[newCount:])
		ns.blocks = ns.blocks[:newCount]
	}
	// Re-hash this namespace's KV entries into the new partition count. A
	// key "moves" when its partition index changes — the data that must
	// actually transfer between blocks during the resize.
	moved = ns.rehashLocked(oldCount)
	ns.notifyLocked(Event{Type: EventScaled, Path: ns.path})
	return moved, nil
}

// rehashLocked redistributes the namespace's KV pairs across its current
// block set, returning how many keys changed partition relative to oldCount
// partitions. Called with c.mu held.
func (ns *Namespace) rehashLocked(oldCount int) int {
	type pair struct {
		k string
		v []byte
	}
	var pairs []pair
	for _, b := range ns.blocks {
		for k, v := range b.kv {
			pairs = append(pairs, pair{k, v})
		}
		b.kv = map[string][]byte{}
		b.used = 0
	}
	newCount := len(ns.blocks)
	moved := 0
	for _, p := range pairs {
		h := int(hashKey(p.k))
		t := ns.blocks[h%newCount]
		t.kv[p.k] = p.v
		t.used += len(p.k) + len(p.v)
		if h%newCount != h%oldCount {
			moved++
		}
	}
	return moved
}

// --- KV interface ---

// Put stores key→value in the namespace, auto-scaling by one block when the
// target block is full and pool capacity allows.
func (ns *Namespace) Put(key string, value []byte) error {
	c := ns.ctrl
	var start time.Time
	if c.obsOpLat != nil {
		start = c.clock.Now()
		defer func() { c.obsOpLat.Observe(c.clock.Now().Sub(start)) }()
	}
	c.cfg.Latency.sleep(c.clock, len(value))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	if _, ok := c.all[ns.path]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	sz := len(key) + len(value)
	if sz > c.cfg.BlockSize {
		return fmt.Errorf("%w: %d > %d", ErrValueTooBig, sz, c.cfg.BlockSize)
	}
	for {
		b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
		if old, ok := b.kv[key]; ok {
			b.used -= len(key) + len(old)
		}
		if b.used+sz <= c.cfg.BlockSize {
			b.kv[key] = append([]byte(nil), value...)
			b.used += sz
			ns.notifyLocked(Event{Type: EventPut, Path: ns.path, Key: key})
			return nil
		}
		// Block full: grow the namespace by one block and retry.
		if err := ns.growLocked(); err != nil {
			return err
		}
	}
}

// growLocked adds one block, re-partitioning the namespace (c.mu held).
func (ns *Namespace) growLocked() error {
	b, err := ns.ctrl.allocBlockLocked()
	if err != nil {
		return err
	}
	oldCount := len(ns.blocks)
	ns.blocks = append(ns.blocks, b)
	ns.rehashLocked(oldCount)
	ns.notifyLocked(Event{Type: EventScaled, Path: ns.path})
	return nil
}

// Get returns the value for key.
func (ns *Namespace) Get(key string) ([]byte, error) {
	c := ns.ctrl
	var start time.Time
	if c.obsOpLat != nil {
		start = c.clock.Now()
		defer func() { c.obsOpLat.Observe(c.clock.Now().Sub(start)) }()
	}
	c.mu.Lock()
	c.reapLocked()
	if _, ok := c.all[ns.path]; !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
	v, ok := b.kv[key]
	var out []byte
	if ok {
		out = append([]byte(nil), v...)
	}
	c.mu.Unlock()
	c.cfg.Latency.sleep(c.clock, len(out))
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoKey, key, ns.path)
	}
	return out, nil
}

// Delete removes key.
func (ns *Namespace) Delete(key string) error {
	c := ns.ctrl
	c.cfg.Latency.sleep(c.clock, 0)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.all[ns.path]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
	v, ok := b.kv[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoKey, key)
	}
	delete(b.kv, key)
	b.used -= len(key) + len(v)
	ns.notifyLocked(Event{Type: EventRemove, Path: ns.path, Key: key})
	return nil
}

// Keys returns every key in the namespace, sorted.
func (ns *Namespace) Keys() []string {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, b := range ns.blocks {
		for k := range b.kv {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// BlockOf returns the index of the block holding key (for isolation tests).
func (ns *Namespace) BlockOf(key string) int {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	return int(hashKey(key)) % len(ns.blocks)
}

// --- FIFO queue interface ---

// Enqueue appends an item to the namespace's FIFO (the shuffle/exchange
// primitive data-flow and ML workloads use for ephemeral state).
func (ns *Namespace) Enqueue(item []byte) error {
	c := ns.ctrl
	c.cfg.Latency.sleep(c.clock, len(item))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked()
	if _, ok := c.all[ns.path]; !ok {
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	if len(item) > c.cfg.BlockSize {
		return fmt.Errorf("%w: %d > %d", ErrValueTooBig, len(item), c.cfg.BlockSize)
	}
	// The queue's bytes count against the namespace's aggregate block
	// capacity; grow the namespace when the pool of blocks is exhausted.
	for ns.usedLocked()+len(item) > len(ns.blocks)*c.cfg.BlockSize {
		if err := ns.growLocked(); err != nil {
			return err
		}
	}
	ns.fifo = append(ns.fifo, append([]byte(nil), item...))
	ns.fifoUsed += len(item)
	ns.notifyLocked(Event{Type: EventPut, Path: ns.path})
	return nil
}

// usedLocked returns total resident bytes (c.mu held).
func (ns *Namespace) usedLocked() int {
	n := ns.fifoUsed
	for _, b := range ns.blocks {
		n += b.used
	}
	return n
}

// Dequeue pops the oldest item, or ErrEmptyQueue.
func (ns *Namespace) Dequeue() ([]byte, error) {
	c := ns.ctrl
	c.mu.Lock()
	c.reapLocked()
	if _, ok := c.all[ns.path]; !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	if len(ns.fifo) == 0 {
		c.mu.Unlock()
		c.cfg.Latency.sleep(c.clock, 0)
		return nil, fmt.Errorf("%w: %q", ErrEmptyQueue, ns.path)
	}
	item := ns.fifo[0]
	ns.fifo = ns.fifo[1:]
	ns.fifoUsed -= len(item)
	ns.notifyLocked(Event{Type: EventRemove, Path: ns.path})
	c.mu.Unlock()
	c.cfg.Latency.sleep(c.clock, len(item))
	return item, nil
}

// QueueLen returns the FIFO's current depth.
func (ns *Namespace) QueueLen() int {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(ns.fifo)
}

func (l LatencyModel) sleep(clock interface{ Sleep(time.Duration) }, n int) {
	clock.Sleep(l.Cost(n))
}
