package jiffy

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Path returns the namespace's full path.
func (ns *Namespace) Path() string { return ns.path }

// Blocks returns the namespace's current block count.
func (ns *Namespace) Blocks() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.blocks)
}

// UsedBytes returns the bytes stored in the namespace (KV plus queue).
func (ns *Namespace) UsedBytes() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return ns.usedLocked()
}

// Renew extends the namespace's lease by its TTL from now — the mechanism
// that decouples state lifetime from the producing task's lifetime (§4.4):
// any party with the path, producer or consumer, can keep the state alive.
func (ns *Namespace) Renew() error {
	c := ns.ctrl
	now := c.clock.Now()
	c.maybeReap(now)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.all[ns.path] != ns {
		if now.UnixNano() > ns.deadline.Load() {
			return fmt.Errorf("%w: %q", ErrLeaseExpired, ns.path)
		}
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	if ns.lease > 0 {
		c.trackLeaseLocked(ns, now.Add(ns.lease).UnixNano())
	}
	return nil
}

// Remove frees the namespace, its descendants and all their blocks.
func (ns *Namespace) Remove() error {
	c := ns.ctrl
	c.mu.Lock()
	if c.all[ns.path] != ns {
		c.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	var victims []*Namespace
	c.detachLocked(ns, &victims)
	c.mu.Unlock()
	c.finish(victims, false, FlushTarget{})
	return nil
}

// CreateChild creates a sub-namespace (e.g. a task's namespace under its
// application), inheriting nothing: it has its own blocks and lease.
func (ns *Namespace) CreateChild(name string, opts NamespaceOptions) (*Namespace, error) {
	if strings.ContainsAny(name, "/ ") || name == "" {
		return nil, fmt.Errorf("%w: child %q", ErrBadPath, name)
	}
	return ns.ctrl.CreateNamespace(ns.path+"/"+name, opts)
}

// Children returns the namespace's child names, sorted.
func (ns *Namespace) Children() []string {
	c := ns.ctrl
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(ns.children))
	for name := range ns.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// lockLive enforces the lease and acquires the namespace's data lock: the
// shared prologue of every data-plane op, so that expired or removed
// namespaces reject Put, Get, Delete and the queue ops uniformly. The
// happy path costs two atomic loads (pool-wide earliest deadline, own
// deadline) plus the namespace lock; a controller-wide reap runs only when
// some deadline has actually lapsed. On success the caller holds ns.mu.
func (ns *Namespace) lockLive(now time.Time) error {
	c := ns.ctrl
	c.maybeReap(now)
	if now.UnixNano() > ns.deadline.Load() {
		return fmt.Errorf("%w: %q", ErrLeaseExpired, ns.path)
	}
	ns.mu.Lock()
	if ns.dead {
		ns.mu.Unlock()
		// A dead namespace whose deadline lapsed was reclaimed by lease
		// expiry; one with a live deadline was removed explicitly.
		if now.UnixNano() > ns.deadline.Load() {
			return fmt.Errorf("%w: %q", ErrLeaseExpired, ns.path)
		}
		return fmt.Errorf("%w: %q", ErrNoNamespace, ns.path)
	}
	return nil
}

// --- KV interface ---

// Put stores key→value in the namespace, auto-scaling by one block when the
// target block is full and pool capacity allows. Overwriting a key reuses
// the previous value's buffer when it has capacity (no allocation on
// steady-state overwrite); slices returned by GetView for that key are
// invalidated.
func (ns *Namespace) Put(key string, value []byte) error {
	c := ns.ctrl
	var start time.Time
	if c.obsOpLat != nil {
		start = c.clock.Now()
		defer func() { c.obsOpLat.Observe(c.clock.Now().Sub(start)) }()
	}
	c.cfg.Latency.sleep(c.clock, len(value))
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return err
	}
	defer ns.mu.Unlock()
	sz := len(key) + len(value)
	if sz > c.cfg.BlockSize {
		return fmt.Errorf("%w: %d > %d", ErrValueTooBig, sz, c.cfg.BlockSize)
	}
	for {
		b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
		if b.lost {
			return fmt.Errorf("%w: partition of %q in %q lost", ErrNodeDown, key, ns.path)
		}
		old, existed := b.kv[key]
		if existed {
			b.used -= len(key) + len(old)
		}
		if b.used+sz <= c.cfg.BlockSize {
			if existed {
				b.kv[key] = append(old[:0], value...)
			} else {
				b.kv[key] = append([]byte(nil), value...)
			}
			b.used += sz
			ns.notifyLocked(Event{Type: EventPut, Path: ns.path, Key: key})
			return nil
		}
		if existed {
			b.used += len(key) + len(old) // undo; grow's rehash recounts
		}
		// Block full: grow the namespace by one block and retry.
		if err := ns.growLocked(); err != nil {
			return err
		}
	}
}

// growLocked adds one block, re-partitioning the namespace (ns.mu held; the
// controller lock is taken only for the allocation itself). Growth is
// refused while any partition is lost: the rehash would scatter live keys
// into unreadable blocks.
func (ns *Namespace) growLocked() error {
	if ns.lostBlocks > 0 {
		return fmt.Errorf("%w: %q has %d lost partitions", ErrNodeDown, ns.path, ns.lostBlocks)
	}
	b, err := ns.ctrl.allocBlock(ns.replicas)
	if err != nil {
		return err
	}
	oldCount := len(ns.blocks)
	ns.blocks = append(ns.blocks, b)
	ns.rehashLocked(oldCount)
	ns.notifyLocked(Event{Type: EventScaled, Path: ns.path})
	return nil
}

// Get returns a copy of the value for key.
func (ns *Namespace) Get(key string) ([]byte, error) {
	return ns.get(key, true)
}

// GetView returns the stored value for key without copying. The returned
// slice is owned by the store: it stays valid until the key is next
// overwritten or deleted, and the caller must not modify it. It is the
// opt-in zero-copy read for read-once consumers (shuffle partitions,
// producer→consumer handoff) where Get's defensive copy is pure overhead;
// callers racing writers to the same key must use Get instead.
func (ns *Namespace) GetView(key string) ([]byte, error) {
	return ns.get(key, false)
}

func (ns *Namespace) get(key string, copied bool) ([]byte, error) {
	c := ns.ctrl
	var start time.Time
	if c.obsOpLat != nil {
		start = c.clock.Now()
		defer func() { c.obsOpLat.Observe(c.clock.Now().Sub(start)) }()
	}
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return nil, err
	}
	b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
	if b.lost {
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: partition of %q in %q lost", ErrNodeDown, key, ns.path)
	}
	v, ok := b.kv[key]
	var out []byte
	if ok {
		if copied {
			out = append([]byte(nil), v...)
		} else {
			out = v
		}
	}
	ns.mu.Unlock()
	c.cfg.Latency.sleep(c.clock, len(out))
	if !ok {
		return nil, fmt.Errorf("%w: %q in %q", ErrNoKey, key, ns.path)
	}
	return out, nil
}

// Delete removes key. Like every data-plane op it enforces the lease: an
// expired namespace rejects deletes just as it rejects puts and gets.
func (ns *Namespace) Delete(key string) error {
	c := ns.ctrl
	c.cfg.Latency.sleep(c.clock, 0)
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return err
	}
	defer ns.mu.Unlock()
	b := ns.blocks[int(hashKey(key))%len(ns.blocks)]
	if b.lost {
		return fmt.Errorf("%w: partition of %q in %q lost", ErrNodeDown, key, ns.path)
	}
	v, ok := b.kv[key]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoKey, key)
	}
	delete(b.kv, key)
	b.used -= len(key) + len(v)
	ns.notifyLocked(Event{Type: EventRemove, Path: ns.path, Key: key})
	return nil
}

// Keys returns every key in the namespace, sorted.
func (ns *Namespace) Keys() []string {
	ns.mu.Lock()
	var out []string
	for _, b := range ns.blocks {
		for k := range b.kv {
			out = append(out, k)
		}
	}
	ns.mu.Unlock()
	sort.Strings(out)
	return out
}

// BlockOf returns the index of the block holding key (for isolation tests).
func (ns *Namespace) BlockOf(key string) int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return int(hashKey(key)) % len(ns.blocks)
}

// Scale adds (delta > 0) or removes (delta < 0) blocks, re-partitioning
// *only this namespace's* keys across the new block set — the isolation
// property that the single global address-space baseline cannot provide
// (§4.4, experiment E5). It returns the number of keys that moved.
func (ns *Namespace) Scale(delta int) (moved int, err error) {
	c := ns.ctrl
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return 0, err
	}
	defer ns.mu.Unlock()
	oldCount := len(ns.blocks)
	newCount := oldCount + delta
	if newCount < 1 {
		return 0, fmt.Errorf("%w: %d blocks requested", ErrMinBlocks, newCount)
	}
	if ns.lostBlocks > 0 {
		return 0, fmt.Errorf("%w: %q has %d lost partitions", ErrNodeDown, ns.path, ns.lostBlocks)
	}
	if delta > 0 {
		added, err := c.allocBlocks(delta, ns.replicas)
		if err != nil {
			return 0, err
		}
		ns.blocks = append(ns.blocks, added...)
	} else {
		// Preserve dropped blocks' data before returning them to the pool;
		// rehashLocked redistributes it properly below.
		keep := ns.blocks[0]
		for _, b := range ns.blocks[newCount:] {
			for k, v := range b.kv {
				keep.kv[k] = v
				keep.used += len(k) + len(v)
			}
		}
		c.freeBlocks(ns.blocks[newCount:])
		ns.blocks = ns.blocks[:newCount]
	}
	// Re-hash this namespace's KV entries into the new partition count. A
	// key "moves" when its partition index changes — the data that must
	// actually transfer between blocks during the resize.
	moved = ns.rehashLocked(oldCount)
	ns.notifyLocked(Event{Type: EventScaled, Path: ns.path})
	return moved, nil
}

// rehashLocked redistributes the namespace's KV pairs across its current
// block set, returning how many keys changed partition relative to oldCount
// partitions. Called with ns.mu held.
func (ns *Namespace) rehashLocked(oldCount int) int {
	type pair struct {
		k string
		v []byte
	}
	var pairs []pair
	for _, b := range ns.blocks {
		for k, v := range b.kv {
			pairs = append(pairs, pair{k, v})
		}
		clear(b.kv)
		b.used = 0
	}
	newCount := len(ns.blocks)
	moved := 0
	for _, p := range pairs {
		h := int(hashKey(p.k))
		t := ns.blocks[h%newCount]
		t.kv[p.k] = p.v
		t.used += len(p.k) + len(p.v)
		if h%newCount != h%oldCount {
			moved++
		}
	}
	return moved
}

// --- FIFO queue interface ---

// Enqueue appends an item to the namespace's FIFO (the shuffle/exchange
// primitive data-flow and ML workloads use for ephemeral state).
func (ns *Namespace) Enqueue(item []byte) error {
	c := ns.ctrl
	c.cfg.Latency.sleep(c.clock, len(item))
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return err
	}
	defer ns.mu.Unlock()
	if len(ns.blocks) > 0 && ns.blocks[0].lost {
		return fmt.Errorf("%w: queue partition of %q lost", ErrNodeDown, ns.path)
	}
	if len(item) > c.cfg.BlockSize {
		return fmt.Errorf("%w: %d > %d", ErrValueTooBig, len(item), c.cfg.BlockSize)
	}
	// The queue's bytes count against the namespace's aggregate block
	// capacity; grow the namespace when the pool of blocks is exhausted.
	for ns.usedLocked()+len(item) > len(ns.blocks)*c.cfg.BlockSize {
		if err := ns.growLocked(); err != nil {
			return err
		}
	}
	ns.fifo = append(ns.fifo, append([]byte(nil), item...))
	ns.fifoUsed += len(item)
	ns.notifyLocked(Event{Type: EventPut, Path: ns.path})
	return nil
}

// usedLocked returns total resident bytes (ns.mu held).
func (ns *Namespace) usedLocked() int {
	n := ns.fifoUsed
	for _, b := range ns.blocks {
		n += b.used
	}
	return n
}

// Dequeue pops the oldest item, or ErrEmptyQueue.
func (ns *Namespace) Dequeue() ([]byte, error) {
	c := ns.ctrl
	if err := ns.lockLive(c.clock.Now()); err != nil {
		return nil, err
	}
	if len(ns.blocks) > 0 && ns.blocks[0].lost {
		ns.mu.Unlock()
		return nil, fmt.Errorf("%w: queue partition of %q lost", ErrNodeDown, ns.path)
	}
	if len(ns.fifo) == 0 {
		ns.mu.Unlock()
		c.cfg.Latency.sleep(c.clock, 0)
		return nil, fmt.Errorf("%w: %q", ErrEmptyQueue, ns.path)
	}
	item := ns.fifo[0]
	ns.fifo[0] = nil
	ns.fifo = ns.fifo[1:]
	ns.fifoUsed -= len(item)
	ns.notifyLocked(Event{Type: EventRemove, Path: ns.path})
	ns.mu.Unlock()
	c.cfg.Latency.sleep(c.clock, len(item))
	return item, nil
}

// QueueLen returns the FIFO's current depth.
func (ns *Namespace) QueueLen() int {
	ns.mu.Lock()
	defer ns.mu.Unlock()
	return len(ns.fifo)
}

func (ns *Namespace) notifyLocked(ev Event) {
	for _, fn := range ns.subs {
		fn(ev)
	}
}

func (l LatencyModel) sleep(clock interface{ Sleep(time.Duration) }, n int) {
	clock.Sleep(l.Cost(n))
}
