package jiffy

import (
	"strings"

	"repro/internal/blob"
)

// FlushTarget configures where expiring namespaces persist their data.
type FlushTarget struct {
	Store  *blob.Store
	Bucket string
}

// SetFlushTarget installs a persistent tier: namespaces created with
// FlushOnExpiry have their KV contents written to the blob store when their
// lease lapses, instead of being silently discarded — the "flush to
// persistent storage" flavour of Jiffy's lifetime management, for state
// whose consumer may arrive after the lease.
func (c *Controller) SetFlushTarget(t FlushTarget) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.flush = t
}

// FlushKey returns the blob key a namespace's KV entry flushes to.
func FlushKey(nsPath, key string) string {
	return "flushed" + nsPath + "/" + key
}

// flushFn builds the closure persisting a namespace's KV pairs to the flush
// target. Called with ns.mu held during expiry teardown, before the blocks
// return to the pool (which clears their maps); the pairs are copied out so
// the blob writes can run later on their own tracked goroutine (blob Puts
// sleep on the clock and must not run under any store lock).
func flushFn(t FlushTarget, ns *Namespace, blocks []*block) func() {
	if t.Store == nil || !ns.flushOnExpiry {
		return nil
	}
	type pair struct {
		key string
		val []byte
	}
	var pairs []pair
	for _, b := range blocks {
		for k, v := range b.kv {
			pairs = append(pairs, pair{k, append([]byte(nil), v...)})
		}
	}
	store, bucket, path := t.Store, t.Bucket, ns.path
	return func() {
		for _, p := range pairs {
			_, _ = store.Put(bucket, FlushKey(path, p.key), p.val, blob.PutOptions{})
		}
	}
}

// Flushed reads a flushed value back from the persistent tier.
func Flushed(t FlushTarget, nsPath, key string) ([]byte, error) {
	data, _, err := t.Store.Get(t.Bucket, FlushKey(nsPath, key))
	return data, err
}

// ListFlushed returns the keys flushed from a namespace.
func ListFlushed(t FlushTarget, nsPath string) ([]string, error) {
	infos, _, err := t.Store.List(t.Bucket, "flushed"+nsPath+"/", "", 0)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(infos))
	prefix := "flushed" + nsPath + "/"
	for i, info := range infos {
		out[i] = strings.TrimPrefix(info.Key, prefix)
	}
	return out, nil
}
