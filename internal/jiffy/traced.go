package jiffy

import (
	"errors"

	"repro/internal/obs"
)

// TracedNamespace is a value wrapper binding a namespace to one request's
// causal context: each data-plane op records a child span ("jiffy.put",
// "jiffy.get", ...) on the request's trace. The wrapper is two words and
// lives on the caller's stack — taking one per request allocates nothing —
// and with a zero context (or no tracer attached) every op degrades to the
// plain namespace call plus one branch.
type TracedNamespace struct {
	ns *Namespace
	tc obs.TraceCtx
}

// Traced binds the namespace to a request's causal context.
func (ns *Namespace) Traced(tc obs.TraceCtx) TracedNamespace {
	return TracedNamespace{ns: ns, tc: tc}
}

// Namespace returns the underlying namespace.
func (t TracedNamespace) Namespace() *Namespace { return t.ns }

func (t TracedNamespace) span(name string) obs.SpanRef {
	if !t.tc.Valid() {
		return obs.SpanRef{}
	}
	return t.ns.ctrl.tracer.Start(t.tc, name)
}

// Put stores key→value, recording a "jiffy.put" span on the bound trace.
func (t TracedNamespace) Put(key string, value []byte) error {
	sp := t.span("jiffy.put")
	err := t.ns.Put(key, value)
	sp.EndErr(err != nil)
	return err
}

// Get returns a copy of the value for key under a "jiffy.get" span.
func (t TracedNamespace) Get(key string) ([]byte, error) {
	sp := t.span("jiffy.get")
	v, err := t.ns.Get(key)
	sp.EndErr(err != nil)
	return v, err
}

// GetView is the zero-copy read under a "jiffy.get" span (the span does not
// distinguish the copying discipline — latency-wise they are the same op).
func (t TracedNamespace) GetView(key string) ([]byte, error) {
	sp := t.span("jiffy.get")
	v, err := t.ns.GetView(key)
	sp.EndErr(err != nil)
	return v, err
}

// Delete removes key under a "jiffy.delete" span.
func (t TracedNamespace) Delete(key string) error {
	sp := t.span("jiffy.delete")
	err := t.ns.Delete(key)
	sp.EndErr(err != nil)
	return err
}

// Enqueue appends a FIFO item under a "jiffy.enqueue" span.
func (t TracedNamespace) Enqueue(item []byte) error {
	sp := t.span("jiffy.enqueue")
	err := t.ns.Enqueue(item)
	sp.EndErr(err != nil)
	return err
}

// Dequeue pops the oldest FIFO item under a "jiffy.dequeue" span. An empty
// queue is a routine outcome for polling consumers, not a failure, so
// ErrEmptyQueue does not flag the span (flagged spans force the whole trace
// through the tail sampler's always-keep path).
func (t TracedNamespace) Dequeue() ([]byte, error) {
	sp := t.span("jiffy.dequeue")
	v, err := t.ns.Dequeue()
	sp.EndErr(err != nil && !errors.Is(err, ErrEmptyQueue))
	return v, err
}
