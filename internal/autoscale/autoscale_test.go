package autoscale

import (
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

var machineCap = scheduler.Resources{CPU: 4000, MemMB: 16384}

func worker(d time.Duration) faas.Handler {
	return func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		ctx.Work(d)
		return payload, nil
	}
}

// boundedGrow is a policy that packs first-fit but refuses to self-grow the
// cluster beyond its initial machine: capacity is added only by an explicit
// Grow (i.e. by the autoscaler), which is how a fixed fleet behaves.
type boundedGrow struct{}

func (boundedGrow) Name() string { return "bounded" }
func (boundedGrow) Choose(machines []*scheduler.Machine, demand scheduler.Resources, _ string) int {
	for _, m := range machines {
		if m.Free().Fits(demand) {
			return m.ID
		}
	}
	if len(machines) == 0 {
		return -1
	}
	return machines[0].ID // full: force a placement failure, not growth
}

// TestBurstPanicAndScaleToZero walks the full reactive arc: a 12-wide burst
// flips the controller into panic mode and holds capacity up; after the
// burst drains and panic expires, the function scales to zero and the
// drained machines leave the fleet.
func TestBurstPanicAndScaleToZero(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	cluster := scheduler.NewCluster(machineCap, scheduler.FirstFit{})
	p.AttachCluster(cluster, 0)
	must(t, p.Register("burst", "t", worker(2*time.Second), faas.Config{
		Demand:    scheduler.Resources{CPU: 1000, MemMB: 512},
		KeepAlive: 2 * time.Second, ColdStart: 10 * time.Millisecond, WarmStart: time.Millisecond,
	}))
	ctrl := New(v, p, cluster, Config{
		TickInterval: time.Second, StableWindow: 10 * time.Second,
		PanicWindow: 2 * time.Second, ScaleToZeroAfter: 3 * time.Second,
		DrainDelay: 2 * time.Second,
	})
	reg := obs.New(v)
	ctrl.SetObs(reg)

	v.Run(func() {
		ctrl.Start()
		rep := faas.Drive(p, "burst", nil, make([]time.Duration, 12))
		v.Sleep(1500 * time.Millisecond)

		st := ctrl.Status()
		if len(st.Functions) != 1 {
			t.Fatalf("functions = %d, want 1", len(st.Functions))
		}
		fs := st.Functions[0]
		if !fs.PanicMode {
			t.Error("controller not in panic mode mid-burst")
		}
		if fs.Desired < 2 {
			t.Errorf("desired = %d mid-burst, want ≥ 2", fs.Desired)
		}
		rep.Wait()
		if n := len(rep.Errors()); n != 0 {
			t.Fatalf("burst errors = %d: %v", n, rep.Errors()[0])
		}

		v.Sleep(25 * time.Second) // panic expiry + idle window + drain delay
		st = ctrl.Status()
		fs = st.Functions[0]
		if fs.PanicMode {
			t.Error("still panicking long after the burst")
		}
		if fs.Desired != 0 {
			t.Errorf("desired = %d after idle, want 0 (scale-to-zero)", fs.Desired)
		}
		if tgt, _ := p.PoolTarget("burst"); tgt != 0 {
			t.Errorf("pool target = %d after idle, want 0", tgt)
		}
		if got := cluster.ActiveMachines(); got != 0 {
			t.Errorf("active machines after scale-to-zero = %d, want 0", got)
		}
		if got := cluster.MachineCount(); got != 0 {
			t.Errorf("placeable machines after drain = %d, want 0", got)
		}
		ctrl.Stop()
	})
	if ctrl.Ticks() < 20 {
		t.Errorf("ticks = %d, want ≥ 20 over ~26s of virtual time", ctrl.Ticks())
	}
	if got := reg.CounterValue("autoscale.ticks"); got != ctrl.Ticks() {
		t.Errorf("obs ticks = %d, want %d", got, ctrl.Ticks())
	}
	if got := reg.CounterValue("autoscale.machines.drained"); got == 0 {
		t.Error("no machines recorded as drained")
	}
}

// TestKeepAliveIsTheScaleToZeroFloor: a function whose KeepAlive exceeds
// ScaleToZeroAfter keeps its last instance until the KeepAlive lapses.
func TestKeepAliveIsTheScaleToZeroFloor(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	must(t, p.Register("sticky", "t", worker(10*time.Millisecond), faas.Config{
		KeepAlive: 20 * time.Second, ColdStart: 10 * time.Millisecond,
	}))
	ctrl := New(v, p, nil, Config{
		TickInterval: time.Second, StableWindow: 4 * time.Second,
		PanicWindow: time.Second, ScaleToZeroAfter: 2 * time.Second,
	})
	v.Run(func() {
		if _, err := p.Invoke("sticky", nil); err != nil {
			t.Fatal(err)
		}
		// 10s idle: well past ScaleToZeroAfter, inside KeepAlive.
		for i := 0; i < 10; i++ {
			v.Sleep(time.Second)
			ctrl.Tick()
		}
		if fs := ctrl.Status().Functions[0]; fs.Desired != 1 {
			t.Errorf("desired = %d inside keep-alive, want 1", fs.Desired)
		}
		st, _ := p.Stats("sticky")
		if st.WarmIdle != 1 {
			t.Errorf("warm idle = %d inside keep-alive, want 1", st.WarmIdle)
		}
		// Past the keep-alive floor the function goes to zero.
		for i := 0; i < 12; i++ {
			v.Sleep(time.Second)
			ctrl.Tick()
		}
		if fs := ctrl.Status().Functions[0]; fs.Desired != 0 {
			t.Errorf("desired = %d past keep-alive, want 0", fs.Desired)
		}
	})
}

// TestPredictivePrewarm: with a steady 4s arrival rhythm and an aggressive
// scale-to-zero, the inter-arrival EWMA prewarms one instance ahead of each
// request, eliminating steady-state cold starts; the same rhythm without
// prediction pays a cold start every time.
func TestPredictivePrewarm(t *testing.T) {
	run := func(predict bool) (cold int) {
		v := simclock.NewVirtual()
		defer v.Close()
		p := faas.New(v, nil)
		must(t, p.Register("tides", "t", worker(50*time.Millisecond), faas.Config{
			KeepAlive: time.Second, ColdStart: 200 * time.Millisecond, WarmStart: time.Millisecond,
		}))
		ctrl := New(v, p, nil, Config{
			TickInterval: time.Second, StableWindow: 2 * time.Second,
			PanicWindow: time.Second, ScaleToZeroAfter: time.Second,
			PredictivePrewarm: predict,
		})
		offsets := make([]time.Duration, 6)
		for i := range offsets {
			// Off-grid arrivals so requests never race a tick instant.
			offsets[i] = time.Duration(i)*4*time.Second + 500*time.Microsecond
		}
		v.Run(func() {
			ctrl.Start()
			rep := faas.Drive(p, "tides", nil, offsets)
			rep.Wait()
			ctrl.Stop()
			for _, r := range rep.Results() {
				if r.Cold {
					cold++
				}
			}
		})
		return cold
	}

	coldWith := run(true)
	coldWithout := run(false)
	if coldWithout != 6 {
		t.Errorf("without prediction: cold = %d, want all 6", coldWithout)
	}
	// The first arrival is always cold and the EWMA needs one gap to seed,
	// so prediction can save arrivals 3..6 at best.
	if coldWith > 2 {
		t.Errorf("with prediction: cold = %d, want ≤ 2", coldWith)
	}
}

// TestPlacePressureGrowsTheFleet: on a fixed fleet that cannot self-grow,
// provisioning failures feed back into the next tick as place pressure and
// the controller adds machines until the burst's cold invocations — waiting
// inside their ColdStartBudget — find capacity.
func TestPlacePressureGrowsTheFleet(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	cluster := scheduler.NewCluster(machineCap, boundedGrow{})
	p.AttachCluster(cluster, 0)
	must(t, p.Register("squeeze", "t", worker(20*time.Second), faas.Config{
		Demand:          scheduler.Resources{CPU: 2000, MemMB: 512}, // 2 per machine
		ColdStartBudget: 15 * time.Second,
		KeepAlive:       5 * time.Second, ColdStart: 10 * time.Millisecond,
		MaxRetries: -1,
	}))
	ctrl := New(v, p, cluster, Config{
		TickInterval: time.Second, StableWindow: 30 * time.Second,
		PanicWindow: 2 * time.Second, ScaleToZeroAfter: 5 * time.Second,
	})
	v.Run(func() {
		ctrl.Start()
		rep := faas.Drive(p, "squeeze", nil, make([]time.Duration, 4))
		rep.Wait()
		if n := len(rep.Errors()); n != 0 {
			t.Fatalf("errors = %d (fleet never grew?): %v", n, rep.Errors()[0])
		}
		if got := cluster.MachineCount(); got < 2 {
			t.Errorf("machines = %d, want ≥ 2 after place-pressure growth", got)
		}
		ctrl.Stop()
	})
}

// TestStartStopIdempotent: Start twice runs one loop; Stop ends it.
func TestStartStopIdempotent(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	ctrl := New(v, p, nil, Config{TickInterval: time.Second})
	v.Run(func() {
		ctrl.Start()
		ctrl.Start()
		v.Sleep(5500 * time.Millisecond)
		ctrl.Stop()
	})
	if got := ctrl.Ticks(); got != 5 {
		t.Errorf("ticks = %d, want exactly 5 (double Start must not double-tick)", got)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
