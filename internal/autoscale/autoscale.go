// Package autoscale is the platform's elastic control plane: a control loop
// that watches per-function load (in-flight concurrency, arrival deltas,
// placement failures) and drives both the instance pools (faas.SetPoolTarget)
// and the machine fleet (scheduler.Grow / DrainEmpty) toward demand.
//
// It implements the reactive core the paper attributes to production FaaS
// platforms (§4.1 "resource elasticity", §6 "A Look Forward"): a
// Knative-KPA-style dual-window autoscaler — a slow stable window that sets
// steady-state capacity and a fast panic window that reacts to bursts and
// never scales down while panicking — plus scale-to-zero after idle (the
// defining serverless property, §2) with the function's keep-alive as the
// floor, and a predictive prewarm hint from an inter-arrival-time EWMA so
// periodic workloads dodge their next cold start.
//
// The controller ticks on a simclock.Clock, so experiments drive it under
// the virtual clock with byte-identical results run over run.
package autoscale

import (
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// Config tunes the control loop. The zero value gets sensible defaults.
type Config struct {
	// TickInterval is the control-loop period. Default 2s.
	TickInterval time.Duration
	// TargetPerInstance is the in-flight concurrency one instance should
	// carry (Knative's container-concurrency target). Default 1.
	TargetPerInstance float64
	// StableWindow smooths the in-flight signal for steady-state sizing;
	// it is also how long panic mode persists after its last trigger.
	// Default 60s.
	StableWindow time.Duration
	// PanicWindow smooths the in-flight signal for burst detection.
	// Default 6s.
	PanicWindow time.Duration
	// PanicThreshold enters panic mode when the panic-window desired
	// instance count reaches this multiple of current capacity. Default 2.
	PanicThreshold float64
	// MaxScaleUpRate caps growth per tick as a multiple of current
	// capacity (Knative's max-scale-up-rate). Default 10.
	MaxScaleUpRate float64
	// ScaleToZeroAfter reclaims a function's last instances once it has
	// been idle this long. A function's own KeepAlive acts as a floor:
	// the effective delay is max(ScaleToZeroAfter, KeepAlive). Default 60s.
	ScaleToZeroAfter time.Duration
	// PredictivePrewarm keeps one instance warm when the inter-arrival
	// EWMA predicts the next request within two ticks, even if reactive
	// sizing would scale to zero. Off by default.
	PredictivePrewarm bool
	// MaxMachines caps cluster growth (0 = unlimited).
	MaxMachines int
	// DrainDelay is how long machine surplus must persist before empty
	// machines are drained — hysteresis against thrashing. Default 30s.
	DrainDelay time.Duration
}

func (c Config) withDefaults() Config {
	if c.TickInterval <= 0 {
		c.TickInterval = 2 * time.Second
	}
	if c.TargetPerInstance <= 0 {
		c.TargetPerInstance = 1
	}
	if c.StableWindow <= 0 {
		c.StableWindow = 60 * time.Second
	}
	if c.PanicWindow <= 0 {
		c.PanicWindow = 6 * time.Second
	}
	if c.PanicThreshold <= 0 {
		c.PanicThreshold = 2
	}
	if c.MaxScaleUpRate <= 0 {
		c.MaxScaleUpRate = 10
	}
	if c.ScaleToZeroAfter <= 0 {
		c.ScaleToZeroAfter = 60 * time.Second
	}
	if c.DrainDelay <= 0 {
		c.DrainDelay = 30 * time.Second
	}
	return c
}

// fnState is the controller's per-function memory between ticks.
type fnState struct {
	name   string // bare function name (display)
	tenant string // owning tenant

	stable     float64 // stable-window EWMA of in-flight concurrency
	panicky    float64 // panic-window EWMA of in-flight concurrency
	seeded     bool
	everActive bool
	lastActive time.Time
	panicUntil time.Time

	lastInvocations int64
	lastPlaceFails  int64

	lastArrival time.Time
	interEWMA   time.Duration // smoothed inter-arrival time; 0 = unknown

	desired int

	desiredGauge *obs.Gauge // autoscale.desired.<fn>
}

// Controller is the autoscaling control loop over one faas.Platform and
// (optionally) its scheduler.Cluster.
type Controller struct {
	clock   simclock.Clock
	p       *faas.Platform
	cluster *scheduler.Cluster
	cfg     Config

	mu           sync.Mutex
	fns          map[string]*fnState
	ticks        int64
	started      bool
	stopped      bool
	surplusSince time.Time

	reg        *obs.Registry
	ticksCtr   *obs.Counter
	panicGauge *obs.Gauge
	machGauge  *obs.Gauge
	wantGauge  *obs.Gauge
	grownCtr   *obs.Counter
	drainedCtr *obs.Counter
}

// New builds a controller. cluster may be nil (instance pools only).
func New(clock simclock.Clock, p *faas.Platform, cluster *scheduler.Cluster, cfg Config) *Controller {
	return &Controller{
		clock:   clock,
		p:       p,
		cluster: cluster,
		cfg:     cfg.withDefaults(),
		fns:     map[string]*fnState{},
	}
}

// SetObs attaches metrics: autoscale.ticks, autoscale.panic (functions in
// panic mode), autoscale.machines, autoscale.desired (total desired
// instances, plus a per-function autoscale.desired.<fn> gauge),
// autoscale.machines.grown / .drained.
func (c *Controller) SetObs(r *obs.Registry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = r
	c.ticksCtr = r.Counter("autoscale.ticks")
	c.panicGauge = r.Gauge("autoscale.panic")
	c.machGauge = r.Gauge("autoscale.machines")
	c.wantGauge = r.Gauge("autoscale.desired")
	c.grownCtr = r.Counter("autoscale.machines.grown")
	c.drainedCtr = r.Counter("autoscale.machines.drained")
}

// Start launches the tick loop on the controller's clock. Idempotent.
func (c *Controller) Start() {
	c.mu.Lock()
	if c.started {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.stopped = false
	c.mu.Unlock()
	c.clock.Go(func() {
		for {
			c.clock.Sleep(c.cfg.TickInterval)
			c.mu.Lock()
			done := c.stopped
			c.mu.Unlock()
			if done {
				return
			}
			c.Tick()
		}
	})
}

// Stop ends the tick loop (it exits at its next tick boundary, so under the
// virtual clock the loop goroutine drains before Run returns).
func (c *Controller) Stop() {
	c.mu.Lock()
	c.stopped = true
	c.started = false
	c.mu.Unlock()
}

// alphaFor converts a smoothing window to a per-tick EWMA weight.
func alphaFor(tick, window time.Duration) float64 {
	if window <= tick {
		return 1
	}
	return 1 - math.Exp(-float64(tick)/float64(window))
}

// Tick runs one control-loop evaluation: read loads, update the per-function
// windows, size the machine fleet, and push pool targets. Exported so tests
// and smoke drivers can step the loop without the background goroutine.
func (c *Controller) Tick() {
	now := c.clock.Now()
	loads := c.p.Loads()

	c.mu.Lock()
	c.ticks++
	alphaS := alphaFor(c.cfg.TickInterval, c.cfg.StableWindow)
	alphaP := alphaFor(c.cfg.TickInterval, c.cfg.PanicWindow)

	type action struct {
		key     string
		desired int
	}
	actions := make([]action, 0, len(loads))
	var (
		machinesNeeded float64
		placePressure  int64
		panicking      int
		totalDesired   int
	)
	for _, l := range loads {
		// State is keyed by the tenant-qualified key: two tenants' same-named
		// functions are scaled independently.
		s := c.fns[l.Key]
		if s == nil {
			s = &fnState{name: l.Name, tenant: l.Tenant, lastActive: now}
			if c.reg != nil {
				s.desiredGauge = c.reg.Gauge("autoscale.desired." + l.Key)
			}
			c.fns[l.Key] = s
		}

		inflight := float64(l.Running)
		delta := l.Invocations - s.lastInvocations
		s.lastInvocations = l.Invocations
		pfDelta := l.PlaceFails - s.lastPlaceFails
		s.lastPlaceFails = l.PlaceFails
		placePressure += pfDelta

		if delta > 0 || l.Running > 0 {
			s.lastActive = now
			s.everActive = true
		}
		if delta > 0 {
			// Fold the mean gap since the last arrival tick into the EWMA.
			if !s.lastArrival.IsZero() {
				inter := now.Sub(s.lastArrival) / time.Duration(delta)
				if s.interEWMA == 0 {
					s.interEWMA = inter
				} else {
					s.interEWMA = (3*s.interEWMA + inter) / 4
				}
			}
			s.lastArrival = now
		}

		if !s.seeded {
			s.stable, s.panicky, s.seeded = inflight, inflight, true
		} else {
			s.stable += alphaS * (inflight - s.stable)
			s.panicky += alphaP * (inflight - s.panicky)
		}

		current := l.Pool()
		desiredStable := int(math.Ceil(s.stable / c.cfg.TargetPerInstance))
		desiredPanic := int(math.Ceil(s.panicky / c.cfg.TargetPerInstance))

		// Enter (or extend) panic when the fast window wants a multiple of
		// what the controller last asked for — instances self-materialize on
		// the invoke path, so the pool itself chases inflight too closely to
		// be the burst baseline. Panic persists for a stable window.
		if float64(desiredPanic) >= c.cfg.PanicThreshold*math.Max(float64(s.desired), 1) {
			s.panicUntil = now.Add(c.cfg.StableWindow)
		}
		desired := desiredStable
		if now.Before(s.panicUntil) {
			// Panic mode sizes from the fast window and never scales down.
			if desiredPanic > desired {
				desired = desiredPanic
			}
			if s.desired > desired {
				desired = s.desired
			}
			panicking++
		}

		// Scale-to-zero: hold the last instance until the function has been
		// idle for max(ScaleToZeroAfter, KeepAlive); once the window lapses,
		// zero is authoritative — the EWMA's exponential tail must not pin
		// a ghost instance (ceil of any positive remnant is 1).
		zeroAfter := c.cfg.ScaleToZeroAfter
		if l.KeepAlive > zeroAfter {
			zeroAfter = l.KeepAlive
		}
		if s.everActive && now.Sub(s.lastActive) >= zeroAfter {
			desired = 0
			s.stable, s.panicky = 0, 0
		} else if desired == 0 && s.everActive {
			desired = 1
		}
		// Predictive prewarm: if the arrival rhythm says the next request
		// lands within two ticks, keep one instance warm through the gap.
		if c.cfg.PredictivePrewarm && desired == 0 && s.interEWMA > 0 {
			next := s.lastArrival.Add(s.interEWMA)
			if next.After(now) && next.Sub(now) <= 2*c.cfg.TickInterval {
				desired = 1
			}
		}

		if l.Prewarm > desired {
			desired = l.Prewarm
		}
		// Rate-limit growth, then respect the concurrency cap.
		if maxUp := int(math.Ceil(math.Max(float64(current), 1) * c.cfg.MaxScaleUpRate)); desired > maxUp {
			desired = maxUp
		}
		if desired > l.MaxConcurrency {
			desired = l.MaxConcurrency
		}
		s.desired = desired
		s.desiredGauge.Set(float64(desired))
		totalDesired += desired
		actions = append(actions, action{key: l.Key, desired: desired})

		if c.cluster != nil {
			footprint := desired
			if current > footprint {
				footprint = current
			}
			if slots := c.cluster.SlotsPerMachine(l.Demand); slots > 0 {
				machinesNeeded += float64(footprint) / float64(slots)
			}
		}
	}
	c.ticksCtr.Inc()
	c.panicGauge.Set(float64(panicking))
	c.wantGauge.Set(float64(totalDesired))

	// Size the fleet before pushing pool targets, so the provisioning the
	// targets trigger finds machines to land on.
	if c.cluster != nil {
		target := int(math.Ceil(machinesNeeded))
		cur := c.cluster.MachineCount()
		if placePressure > 0 && target <= cur {
			// Placements failed at current size: our packing estimate is
			// optimistic (fragmentation), so force one machine of growth.
			target = cur + 1
		}
		if c.cfg.MaxMachines > 0 && target > c.cfg.MaxMachines {
			target = c.cfg.MaxMachines
		}
		switch {
		case target > cur:
			c.cluster.Grow(target - cur)
			c.grownCtr.Add(int64(target - cur))
			c.surplusSince = time.Time{}
		case target < cur:
			if c.surplusSince.IsZero() {
				c.surplusSince = now
			} else if now.Sub(c.surplusSince) >= c.cfg.DrainDelay {
				if n := c.cluster.DrainEmpty(cur - target); n > 0 {
					c.drainedCtr.Add(int64(n))
				}
				c.surplusSince = time.Time{}
			}
		default:
			c.surplusSince = time.Time{}
		}
		c.machGauge.Set(float64(c.cluster.MachineCount()))
	}
	c.mu.Unlock()

	// Push pool targets outside c.mu: SetPoolTarget takes platform locks
	// and spawns provisioning goroutines.
	for _, a := range actions {
		_, _ = c.p.SetPoolTarget(a.key, a.desired)
	}
}

// FnStatus is one function's autoscaler view.
type FnStatus struct {
	Name           string        `json:"name"`
	Tenant         string        `json:"tenant"`
	StableInflight float64       `json:"stable_inflight"`
	PanicInflight  float64       `json:"panic_inflight"`
	Desired        int           `json:"desired"`
	PanicMode      bool          `json:"panic_mode"`
	IdleFor        time.Duration `json:"idle_for"`
	InterArrival   time.Duration `json:"inter_arrival_ewma"`
}

// Status is a point-in-time snapshot of the control loop, served by
// `taureau -serve` at /autoscale.
type Status struct {
	Ticks     int64      `json:"ticks"`
	Machines  int        `json:"machines"`
	Retired   int        `json:"retired"`
	Functions []FnStatus `json:"functions"`
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	now := c.clock.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Ticks: c.ticks}
	if c.cluster != nil {
		st.Machines = c.cluster.MachineCount()
		st.Retired = c.cluster.RetiredMachines()
	}
	keys := make([]string, 0, len(c.fns))
	for key := range c.fns {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		s := c.fns[key]
		st.Functions = append(st.Functions, FnStatus{
			Name:           s.name,
			Tenant:         s.tenant,
			StableInflight: s.stable,
			PanicInflight:  s.panicky,
			Desired:        s.desired,
			PanicMode:      now.Before(s.panicUntil),
			IdleFor:        now.Sub(s.lastActive),
			InterArrival:   s.interEWMA,
		})
	}
	return st
}

// Ticks returns how many control-loop evaluations have run.
func (c *Controller) Ticks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ticks
}
