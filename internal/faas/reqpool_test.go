package faas

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// TestRequestPoolResetOnPut pins the reset-on-put contract directly: the
// moment putRequest returns, every field of the recycled request — exported
// invocation identity and unexported budget bookkeeping alike — must be
// zero, before any later Get can observe it.
func TestRequestPoolResetOnPut(t *testing.T) {
	r := getRequest()
	r.ctx = Ctx{
		Clock:        simclock.Real{},
		FunctionName: "leaky",
		Tenant:       "tenant-a",
		RequestID:    42,
		InstanceID:   7,
		Attempt:      3,
		budget:       time.Second,
		worked:       time.Millisecond,
		exceeded:     true,
		slowdown:     2.5,
	}
	putRequest(r)
	if r.ctx != (Ctx{}) {
		t.Fatalf("putRequest left state behind: %+v", r.ctx)
	}
}

// TestRequestPoolNoCrossTenantLeak interleaves two tenants' invocations so
// their requests churn through the shared pool (run under -race in CI's
// alloc-gate job). Each handler asserts the Ctx it was handed carries
// exactly its own identity — a skipped reset or a data race on a recycled
// request shows up as another tenant's field, a stale attempt count, or a
// race report.
func TestRequestPoolNoCrossTenantLeak(t *testing.T) {
	p := New(simclock.Real{}, nil)
	const perTenant = 2000

	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		tenant := tenant
		name := "echo-" + tenant
		err := p.Register(name, tenant, func(ctx *Ctx, in []byte) ([]byte, error) {
			if ctx.Tenant != tenant || ctx.FunctionName != name {
				return nil, fmt.Errorf("ctx leaked across pool: tenant=%q fn=%q, want %q/%q",
					ctx.Tenant, ctx.FunctionName, tenant, name)
			}
			if ctx.Attempt != 1 || ctx.exceeded || ctx.worked != 0 {
				return nil, fmt.Errorf("recycled request not reset: attempt=%d exceeded=%v worked=%v",
					ctx.Attempt, ctx.exceeded, ctx.worked)
			}
			return in, nil
		}, Config{WarmStart: 1, ColdStart: 1, KeepAlive: time.Hour, MaxConcurrency: 4})
		if err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, tenant := range []string{"tenant-a", "tenant-b"} {
		wg.Add(1)
		go func(tenant string) {
			defer wg.Done()
			payload := []byte("payload-" + tenant)
			for i := 0; i < perTenant; i++ {
				res, err := p.Invoke("echo-"+tenant, payload)
				if err != nil {
					errs <- fmt.Errorf("%s invoke %d: %w", tenant, i, err)
					return
				}
				if !bytes.Equal(res.Output, payload) {
					errs <- fmt.Errorf("%s invoke %d: echoed %q", tenant, i, res.Output)
					return
				}
			}
		}(tenant)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
