package faas

import (
	"time"

	"repro/internal/scheduler"
)

// Isolation models the §6 spectrum of function-isolation technologies:
// "recent research has focused on lightweight isolation between functions on
// shared hardware via secure containers" (Firecracker [29], gVisor [38],
// Kata [44], unikernels [95/139]). Each technology trades isolation strength
// for cold-start latency and per-instance memory overhead — which in turn
// sets how densely functions pack onto a machine (experiment E24).
type Isolation struct {
	// Name labels the technology.
	Name string
	// ColdStart is the provisioning+boot latency of one instance.
	ColdStart time.Duration
	// MemOverheadMB is the runtime's fixed memory cost on top of the
	// function's own memory.
	MemOverheadMB int
}

// The presets follow published measurements circa the paper: standard
// containers boot in hundreds of ms with substantial runtime overhead;
// Firecracker microVMs boot in ~125ms in a few MB; gVisor sits between;
// unikernels boot in tens of ms with minimal footprint.
var (
	// Container is a standard OCI container runtime.
	Container = Isolation{Name: "container", ColdStart: 400 * time.Millisecond, MemOverheadMB: 128}
	// GVisor is a user-space-kernel sandbox ([38]).
	GVisor = Isolation{Name: "gvisor", ColdStart: 250 * time.Millisecond, MemOverheadMB: 64}
	// MicroVM is a Firecracker-style minimal VM ([29]).
	MicroVM = Isolation{Name: "microvm", ColdStart: 125 * time.Millisecond, MemOverheadMB: 16}
	// Unikernel is a single-application library OS ([95], [139]).
	Unikernel = Isolation{Name: "unikernel", ColdStart: 20 * time.Millisecond, MemOverheadMB: 4}
)

// Isolations lists the presets from strongest-compatibility to lightest.
func Isolations() []Isolation {
	return []Isolation{Container, GVisor, MicroVM, Unikernel}
}

// Apply returns cfg with the technology's cold start and memory overhead
// folded in (Demand gains the overhead so packing density reflects it).
func (i Isolation) Apply(cfg Config) Config {
	cfg.ColdStart = i.ColdStart
	mem := cfg.MemoryMB
	if mem == 0 {
		mem = 128
	}
	if cfg.Demand == (scheduler.Resources{}) {
		cfg.Demand = scheduler.Resources{CPU: 1000, MemMB: float64(mem)}
	}
	cfg.Demand.MemMB += float64(i.MemOverheadMB)
	return cfg
}

// Density returns how many instances of a function with the given memory fit
// on a machine with machineMemMB under this isolation technology.
func (i Isolation) Density(functionMemMB, machineMemMB int) int {
	per := functionMemMB + i.MemOverheadMB
	if per <= 0 {
		return 0
	}
	return machineMemMB / per
}
