package faas

import (
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
)

// This file is the platform's sync-invoke resilience plane: a per-function
// circuit breaker (closed → open → half-open) that sheds load fast when a
// handler persistently fails, and a capped exponential-backoff retry policy
// with deterministic jitter for callers who want at-least-once semantics on
// the synchronous path. Jangda et al. ("Formal Foundations of Serverless
// Computing") make the case that retry behaviour *is* the observable
// contract of a FaaS platform; this makes ours explicit and testable.

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// gaugeValue encodes the state for the faas.breaker.state.<fn> gauge:
// 0 closed, 1 open, 0.5 half-open.
func (s breakerState) gaugeValue() float64 {
	switch s {
	case breakerOpen:
		return 1
	case breakerHalfOpen:
		return 0.5
	default:
		return 0
	}
}

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerOutcome classifies a gated invocation for breaker accounting.
// Throttles and placement failures are aborted: they carry no signal about
// the handler's health and must not trip or reset the breaker.
type breakerOutcome int

const (
	outcomeSuccess breakerOutcome = iota
	outcomeFailure
	outcomeAborted
)

// breaker is the per-function circuit breaker. While closed it counts
// consecutive handler failures; at the threshold it opens and invocations
// fast-fail without reserving a concurrency slot. After the cooldown a
// single probe runs half-open: success re-closes the breaker, failure
// re-opens it for another cooldown.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // the single half-open probe is in flight
}

// allow reports whether an invocation may proceed; probe is true when this
// invocation is the half-open probe.
func (b *breaker) allow(now time.Time, cooldown time.Duration) (ok, probe bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) >= cooldown {
			b.state = breakerHalfOpen
			b.probing = true
			return true, true
		}
		return false, false
	default: // half-open: exactly one probe at a time
		if !b.probing {
			b.probing = true
			return true, true
		}
		return false, false
	}
}

// record folds an invocation outcome into the state machine, returning the
// new state and whether it changed.
func (b *breaker) record(out breakerOutcome, probe bool, threshold int, now time.Time) (breakerState, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		switch out {
		case outcomeSuccess:
			b.state = breakerClosed
			b.fails = 0
			return breakerClosed, true
		case outcomeFailure:
			b.state = breakerOpen
			b.openedAt = now
			return breakerOpen, true
		default:
			return b.state, false // aborted probe: stay half-open
		}
	}
	switch out {
	case outcomeSuccess:
		b.fails = 0
	case outcomeFailure:
		b.fails++
		if b.state == breakerClosed && b.fails >= threshold {
			b.state = breakerOpen
			b.openedAt = now
			return breakerOpen, true
		}
	}
	return b.state, false
}

// recordBreaker applies an outcome to a function's breaker and keeps the
// state gauge and open-transition counter current.
func (p *Platform) recordBreaker(fn *function, out breakerOutcome, probe bool) {
	st, changed := fn.brk.record(out, probe, fn.cfg.BreakerThreshold, p.clock.Now())
	if changed {
		fn.brkGauge.Set(st.gaugeValue())
		if st == breakerOpen {
			p.obsBreakerOpen.Inc()
		}
	}
}

// RetryPolicy configures InvokeWithRetry: capped exponential backoff with
// jitter, slept on the platform clock.
type RetryPolicy struct {
	// MaxAttempts is the total number of executions, including the first.
	// Default 3.
	MaxAttempts int
	// Base is the backoff before the second attempt; it doubles per attempt.
	// Default 100ms.
	Base time.Duration
	// Cap bounds a single backoff. Default 10s.
	Cap time.Duration
	// Jitter is the fraction of each backoff that is randomized (equal
	// jitter: the sleep lands in ((1-Jitter)·d, d]). Default 0.2; negative
	// disables jitter entirely.
	Jitter float64
	// Decide, when non-nil, replaces the default retry predicate: after
	// every attempt it receives the attempt number, its Result and error,
	// and returns whether another attempt should run (MaxAttempts still
	// bounds the loop). Unlike the default predicate it may return true
	// after a *successful* attempt — modelling a client that lost the reply
	// and re-invokes — which is what lets the conformance explorer
	// (internal/conform) drive every attempt boundary as an explicit
	// decision point. Non-retryable platform errors (unknown function,
	// oversized payload, open breaker) still end the loop.
	Decide func(attempt int, res Result, err error) bool
}

func (rp RetryPolicy) withDefaults() RetryPolicy {
	if rp.MaxAttempts <= 0 {
		rp.MaxAttempts = 3
	}
	if rp.Base <= 0 {
		rp.Base = 100 * time.Millisecond
	}
	if rp.Cap <= 0 {
		rp.Cap = 10 * time.Second
	}
	if rp.Jitter == 0 {
		rp.Jitter = 0.2
	}
	if rp.Jitter < 0 {
		rp.Jitter = 0
	}
	if rp.Jitter > 1 {
		rp.Jitter = 1
	}
	return rp
}

// backoffFor returns the un-jittered wait before the given (2-based) attempt.
func (rp RetryPolicy) backoffFor(attempt int) time.Duration {
	d := rp.Base
	for i := 2; i < attempt && d < rp.Cap; i++ {
		d *= 2
	}
	if d > rp.Cap {
		d = rp.Cap
	}
	return d
}

// jittered shaves a random slice (up to frac·d) off d, using the platform's
// seeded rng — deterministic under the virtual clock.
func (p *Platform) jittered(d time.Duration, frac float64) time.Duration {
	if frac <= 0 || d <= 0 {
		return d
	}
	p.rngMu.Lock()
	u := p.rng.Float64()
	p.rngMu.Unlock()
	return d - time.Duration(u*frac*float64(d))
}

// InvokeWithRetry runs a function synchronously, re-invoking failed attempts
// after a capped exponential backoff with jitter. Errors that retrying
// cannot fix — unknown function, oversized payload, an open circuit breaker
// — return immediately: the breaker exists to shed load, so hammering it
// from the retry loop would defeat the point. The returned Result's Attempt
// and RetryWait fields report the attempt that produced it and the total
// backoff slept.
func (p *Platform) InvokeWithRetry(name string, payload []byte, pol RetryPolicy) (Result, error) {
	return p.invokeWithRetry(name, "", payload, pol)
}

// InvokeWithRetryIdem is InvokeWithRetry carrying an idempotency key: every
// attempt presents idemKey, so on a function with a DedupWindow a retry of an
// attempt that actually succeeded (a lost reply) is served from the dedup
// cache instead of re-executing the handler.
func (p *Platform) InvokeWithRetryIdem(name, idemKey string, payload []byte, pol RetryPolicy) (Result, error) {
	return p.invokeWithRetry(name, idemKey, payload, pol)
}

func (p *Platform) invokeWithRetry(name, idemKey string, payload []byte, pol RetryPolicy) (Result, error) {
	pol = pol.withDefaults()
	// All attempts share one trace under a retry-wrapper root, mirroring
	// InvokeAsync: a retried request reads as one causal story, not N.
	root := p.obsTracer.Start(obs.TraceCtx{}, "faas.invoke.retry")
	var res Result
	var err error
	var waited time.Duration
	for attempt := 1; attempt <= pol.MaxAttempts; attempt++ {
		if attempt > 1 {
			d := p.jittered(pol.backoffFor(attempt), pol.Jitter)
			wspan := p.obsTracer.Start(root.Ctx(), "faas.retry.backoff")
			p.clock.Sleep(d)
			wspan.End()
			waited += d
		}
		res, err = p.invoke(name, payload, attempt, root.Ctx(), idemKey)
		res.Attempt = attempt
		res.RetryWait = waited
		if pol.Decide != nil {
			if (err != nil && !retryable(err)) || !pol.Decide(attempt, res, err) {
				break
			}
			continue
		}
		if err == nil || !retryable(err) {
			break
		}
	}
	p.obsRetryWait.Observe(waited)
	if root.Active() {
		res.TraceID = root.TraceID()
	}
	root.EndErr(err != nil)
	return res, err
}

// retryable reports whether a retry could plausibly change the outcome.
func retryable(err error) bool {
	return !errors.Is(err, ErrNoFunction) &&
		!errors.Is(err, ErrPayloadSize) &&
		!errors.Is(err, ErrCircuitOpen)
}

// BreakerState reports a function's current breaker position ("closed",
// "open", "half-open"); functions without an armed breaker are "closed".
func (p *Platform) BreakerState(name string) (string, error) {
	fn, err := p.lookup(name)
	if err != nil {
		return "", err
	}
	fn.brk.mu.Lock()
	defer fn.brk.mu.Unlock()
	return fn.brk.state.String(), nil
}
