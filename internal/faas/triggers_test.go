package faas

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/queue"
	"repro/internal/simclock"
)

func TestBindQueueInvokesAndAcks(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	qs := queue.New(v, nil)
	must(t, qs.CreateQueue("jobs", "t", queue.DefaultConfig()))

	var mu sync.Mutex
	var seen []string
	h := func(ctx *Ctx, payload []byte) ([]byte, error) {
		mu.Lock()
		seen = append(seen, string(payload))
		mu.Unlock()
		return nil, nil
	}
	must(t, p.Register("etl", "t", h, Config{}))
	must(t, BindQueue(p, qs, "jobs", "etl", 10))

	v.Run(func() {
		for _, m := range []string{"a", "b", "c"} {
			_, err := qs.Send("jobs", []byte(m))
			must(t, err)
		}
		v.Sleep(time.Second) // let async invocations drain
	})
	if len(seen) != 3 {
		t.Fatalf("invoked %d times, want 3: %v", len(seen), seen)
	}
	n, _ := qs.Len("jobs")
	if n != 0 {
		t.Fatalf("queue length = %d after acks, want 0", n)
	}
}

func TestBindQueueFailedMessageStays(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	qs := queue.New(v, nil)
	must(t, qs.CreateQueue("jobs", "t", queue.Config{VisibilityTimeout: 10 * time.Second}))
	var calls int64
	h := func(ctx *Ctx, payload []byte) ([]byte, error) {
		atomic.AddInt64(&calls, 1)
		return nil, errTransient
	}
	must(t, p.Register("bad", "t", h, Config{MaxRetries: -1}))
	must(t, BindQueue(p, qs, "jobs", "bad", 1))
	v.Run(func() {
		_, err := qs.Send("jobs", []byte("x"))
		must(t, err)
		v.Sleep(11 * time.Second) // past visibility timeout
	})
	// The message must still be on the queue (unacked after failure).
	n, _ := qs.Len("jobs")
	if n != 1 {
		t.Fatalf("queue length = %d, want 1 (failed message retained)", n)
	}
}

var errTransient = errString("transient")

type errString string

func (e errString) Error() string { return string(e) }

func TestBindBlobEventPayload(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	store := blob.New(v, nil, blob.LatencyModel{})
	must(t, store.CreateBucket("photos", "t"))
	must(t, store.CreateBucket("other", "t"))

	var mu sync.Mutex
	var events []BlobEvent
	h := func(ctx *Ctx, payload []byte) ([]byte, error) {
		var e BlobEvent
		if err := json.Unmarshal(payload, &e); err != nil {
			return nil, err
		}
		mu.Lock()
		events = append(events, e)
		mu.Unlock()
		return nil, nil
	}
	must(t, p.Register("thumb", "t", h, Config{}))
	BindBlob(p, store, "photos", "thumb")

	v.Run(func() {
		_, err := store.Put("photos", "cat.jpg", []byte("img"), blob.PutOptions{})
		must(t, err)
		_, err = store.Put("other", "skip.jpg", []byte("img"), blob.PutOptions{})
		must(t, err)
		must(t, store.Delete("photos", "cat.jpg"))
		v.Sleep(time.Second)
	})
	if len(events) != 2 {
		t.Fatalf("events = %+v, want put+delete for photos only", events)
	}
	// Async invocations race; assert the event *set*, not the order.
	byType := map[string]BlobEvent{}
	for _, e := range events {
		byType[e.Type] = e
	}
	put, ok := byType["put"]
	if !ok || put.Key != "cat.jpg" || put.Size != 3 {
		t.Fatalf("put event = %+v", put)
	}
	if _, ok := byType["delete"]; !ok {
		t.Fatalf("missing delete event: %+v", events)
	}
}

func TestDriveSchedulesArrivals(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var mu sync.Mutex
	var stamps []time.Duration
	h := func(ctx *Ctx, payload []byte) ([]byte, error) {
		mu.Lock()
		stamps = append(stamps, v.Now().Sub(simclock.Epoch))
		mu.Unlock()
		return nil, nil
	}
	must(t, p.Register("f", "t", h, Config{ColdStart: time.Millisecond, WarmStart: time.Millisecond}))
	arrivals := []time.Duration{0, time.Second, 2 * time.Second}
	v.Run(func() {
		rep := Drive(p, "f", nil, arrivals)
		rep.Wait()
		if len(rep.Results()) != 3 || len(rep.Errors()) != 0 {
			t.Errorf("results=%d errors=%d", len(rep.Results()), len(rep.Errors()))
		}
	})
	if len(stamps) != 3 {
		t.Fatalf("stamps = %v", stamps)
	}
	// Handlers start 1ms (start latency) after each arrival.
	for i, want := range []time.Duration{time.Millisecond, time.Second + time.Millisecond, 2*time.Second + time.Millisecond} {
		if stamps[i] != want {
			t.Fatalf("stamp[%d] = %v, want %v", i, stamps[i], want)
		}
	}
}
