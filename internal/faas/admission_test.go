package faas

import (
	"errors"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/errs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// TestAdmissionShedAndFairness reproduces the multi-tenant isolation claim:
// an attacker firing a 40-wide burst is shed down to its fair share while a
// victim tenant's steady trickle is never throttled, and every shed request
// is itemized on the attacker's bill.
func TestAdmissionShedAndFairness(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	meter := billing.NewMeter()
	p := New(v, meter)
	must(t, p.Register("atk", "attacker", echo, Config{}))
	must(t, p.Register("vic", "victim", echo, Config{}))
	p.SetAdmission(AdmissionConfig{RatePerSecond: 20, Burst: 4, MaxQueue: 4, MaxWait: 500 * time.Millisecond})

	var atkErrs []error
	v.Run(func() {
		vicOffsets := make([]time.Duration, 10)
		for i := range vicOffsets {
			vicOffsets[i] = time.Duration(i) * 200 * time.Millisecond
		}
		atkRep := Drive(p, "atk", nil, make([]time.Duration, 40))
		vicRep := Drive(p, "vic", nil, vicOffsets)
		atkRep.Wait()
		vicRep.Wait()
		atkErrs = atkRep.Errors()
		if n := len(vicRep.Errors()); n != 0 {
			t.Errorf("victim saw %d errors: %v", n, vicRep.Errors()[0])
		}
	})

	// Burst 4 admitted instantly + MaxQueue 4 queued; the other 32 shed.
	if got := p.AdmissionShed("attacker"); got != 32 {
		t.Errorf("attacker shed = %d, want 32", got)
	}
	if got := p.AdmissionAdmitted("attacker"); got != 8 {
		t.Errorf("attacker admitted = %d, want 8", got)
	}
	if got := p.AdmissionShed("victim"); got != 0 {
		t.Errorf("victim shed = %d, want 0", got)
	}
	if got := p.AdmissionAdmitted("victim"); got != 10 {
		t.Errorf("victim admitted = %d, want 10", got)
	}
	if len(atkErrs) != 32 {
		t.Fatalf("attacker errors = %d, want 32", len(atkErrs))
	}
	for _, err := range atkErrs {
		if !errors.Is(err, ErrTenantThrottled) {
			t.Fatalf("shed error %v does not match ErrTenantThrottled", err)
		}
		if !errors.Is(err, errs.ErrThrottled) {
			t.Fatalf("shed error %v does not match platform errs.ErrThrottled", err)
		}
		if errors.Is(err, ErrThrottled) {
			t.Fatalf("tenant shed %v must not match the concurrency-cap ErrThrottled", err)
		}
	}
	// Shedding is visible to billing, free but itemized.
	if got := meter.Units("attacker", billing.ResShedRequests); got != 32 {
		t.Errorf("billed shed units = %v, want 32", got)
	}
	if got := meter.Units("victim", billing.ResShedRequests); got != 0 {
		t.Errorf("victim billed shed units = %v, want 0", got)
	}
}

// TestAdmissionQueueDeterministic: arrivals beyond the burst reserve future
// tokens and sleep until their refill instant, so a same-instant burst
// drains at exactly the admitted rate under the virtual clock.
func TestAdmissionQueueDeterministic(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("q", "t", echo, Config{}))
	p.SetAdmission(AdmissionConfig{RatePerSecond: 10, Burst: 1, MaxQueue: 10, MaxWait: 10 * time.Second})

	v.Run(func() {
		start := v.Now()
		rep := Drive(p, "q", nil, make([]time.Duration, 4))
		rep.Wait()
		if n := len(rep.Errors()); n != 0 {
			t.Fatalf("errors = %d, want 0", n)
		}
		// 1 token instantly, then refills at 10/s: the 4th admit lands at
		// t=300ms. Everything before that would mean queuing didn't pace.
		if el := v.Now().Sub(start); el < 300*time.Millisecond {
			t.Errorf("burst drained in %v, want ≥ 300ms of token pacing", el)
		}
	})
	if got := p.AdmissionAdmitted("t"); got != 4 {
		t.Errorf("admitted = %d, want 4", got)
	}
	if got := p.AdmissionShed("t"); got != 0 {
		t.Errorf("shed = %d, want 0", got)
	}
}

// TestAdmissionDisable: a zero rate turns admission back off.
func TestAdmissionDisable(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", echo, Config{}))
	p.SetAdmission(AdmissionConfig{RatePerSecond: 1, Burst: 1, MaxQueue: 1, MaxWait: time.Millisecond})
	p.SetAdmission(AdmissionConfig{})
	v.Run(func() {
		rep := Drive(p, "f", nil, make([]time.Duration, 20))
		rep.Wait()
		if n := len(rep.Errors()); n != 0 {
			t.Fatalf("errors with admission disabled = %d, want 0", n)
		}
	})
	if got := p.AdmissionShed("t"); got != 0 {
		t.Errorf("shed = %d, want 0", got)
	}
}

// TestSetTenantLimitWeights: a heavier weight buys a larger share of the
// platform rate — the heavy tenant's queued burst drains twice as fast.
func TestSetTenantLimitWeights(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("heavy", "gold", echo, Config{}))
	must(t, p.Register("light", "bronze", echo, Config{}))
	p.SetAdmission(AdmissionConfig{RatePerSecond: 30, Burst: 1, MaxQueue: 20, MaxWait: time.Minute})
	p.SetTenantLimit("gold", TenantLimit{Weight: 2})
	p.SetTenantLimit("bronze", TenantLimit{Weight: 1})

	var heavyDone, lightDone time.Duration
	v.Run(func() {
		start := v.Now()
		heavyRep := Drive(p, "heavy", nil, make([]time.Duration, 10))
		lightRep := Drive(p, "light", nil, make([]time.Duration, 10))
		heavyRep.Wait()
		heavyDone = v.Now().Sub(start)
		lightRep.Wait()
		lightDone = v.Now().Sub(start)
	})
	// gold's share is 20/s, bronze's 10/s: the same 10-wide burst takes
	// gold about half as long to drain.
	if heavyDone >= lightDone {
		t.Errorf("gold (w=2) drained in %v, bronze (w=1) in %v; want gold faster", heavyDone, lightDone)
	}
}

// TestSetPoolTarget drives the pool up and down: growth provisions warm
// instances asynchronously, shrinkage trims idle instances but never below
// the Prewarm floor, and growth is capped by MaxConcurrency.
func TestSetPoolTarget(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("pw", "t", echo, Config{
		ColdStart: 100 * time.Millisecond, Prewarm: 1, KeepAlive: time.Hour,
	}))
	v.Run(func() {
		v.Sleep(time.Millisecond) // let Register's own prewarm settle
		started, err := p.SetPoolTarget("pw", 3)
		must(t, err)
		if started != 2 { // prewarm already holds 1 idle
			t.Fatalf("started = %d, want 2", started)
		}
		st, _ := p.Stats("pw")
		if st.Warming != 2 {
			t.Fatalf("warming = %d, want 2", st.Warming)
		}
		v.Sleep(200 * time.Millisecond) // cold starts complete
		st, _ = p.Stats("pw")
		if st.Warming != 0 || st.WarmIdle != 3 {
			t.Fatalf("after warmup: warming=%d idle=%d, want 0/3", st.Warming, st.WarmIdle)
		}
		if tgt, ok := p.PoolTarget("pw"); !ok || tgt != 3 {
			t.Fatalf("PoolTarget = %d,%v, want 3,true", tgt, ok)
		}
		// Trim to zero: the Prewarm floor of 1 holds.
		released, err := p.SetPoolTarget("pw", 0)
		must(t, err)
		if released != -2 {
			t.Fatalf("released = %d, want -2 (floor keeps 1)", released)
		}
		st, _ = p.Stats("pw")
		if st.WarmIdle != 1 {
			t.Fatalf("idle after trim = %d, want the Prewarm floor of 1", st.WarmIdle)
		}
	})

	// Growth is capped by MaxConcurrency.
	must(t, p.Register("capped", "t", echo, Config{MaxConcurrency: 2, ColdStart: time.Millisecond}))
	v.Run(func() {
		started, err := p.SetPoolTarget("capped", 5)
		must(t, err)
		if started != 2 {
			t.Fatalf("started = %d, want MaxConcurrency cap of 2", started)
		}
	})

	if _, err := p.SetPoolTarget("ghost", 1); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("err = %v, want ErrNoFunction", err)
	}
	if _, ok := p.PoolTarget("ghost"); ok {
		t.Fatal("PoolTarget(ghost) ok = true")
	}
}

// TestLoadsSnapshot: Loads reports per-function load sorted by name with
// the fields the autoscaler consumes.
func TestLoadsSnapshot(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("zeta", "t2", echo, Config{KeepAlive: time.Minute}))
	must(t, p.Register("alpha", "t1", worker(50*time.Millisecond), Config{
		KeepAlive: 30 * time.Second, Prewarm: 0, MemoryMB: 256,
	}))
	v.Run(func() {
		rep := Drive(p, "alpha", nil, make([]time.Duration, 3))
		rep.Wait()
	})
	loads := p.Loads()
	if len(loads) != 2 || loads[0].Name != "alpha" || loads[1].Name != "zeta" {
		t.Fatalf("loads = %+v, want [alpha zeta]", loads)
	}
	a := loads[0]
	if a.Tenant != "t1" || a.Invocations != 3 || a.WarmIdle != 3 {
		t.Errorf("alpha load = %+v", a)
	}
	if a.KeepAlive != 30*time.Second {
		t.Errorf("alpha keep-alive = %v", a.KeepAlive)
	}
	if a.Demand.MemMB != 256 {
		t.Errorf("alpha demand = %+v, want MemoryMB default applied", a.Demand)
	}
	if a.Pool() != 3 {
		t.Errorf("alpha pool = %d, want 3", a.Pool())
	}
}

// TestColdStartBudget: a cold invocation that finds the cluster full waits
// inside its budget for capacity, succeeding when capacity frees in time
// and failing with ErrColdStartTimeout when it does not.
func TestColdStartBudget(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	// One machine, two 2000-CPU slots, no growth.
	cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, onlyOneMachine{})
	p.AttachCluster(cluster, 0)
	demand := scheduler.Resources{CPU: 2000, MemMB: 512}
	must(t, p.Register("hog", "t", echo, Config{Demand: demand, KeepAlive: time.Hour, ColdStart: time.Millisecond}))
	must(t, p.Register("late", "t", echo, Config{
		Demand: demand, ColdStartBudget: 200 * time.Millisecond,
		ColdStart: time.Millisecond, MaxRetries: -1,
	}))
	must(t, p.Register("strict", "t", echo, Config{Demand: demand, MaxRetries: -1}))

	v.Run(func() {
		// Fill the machine with two prewarmed hog instances.
		if n, err := p.SetPoolTarget("hog", 2); err != nil || n != 2 {
			t.Fatalf("prewarm hog: n=%d err=%v", n, err)
		}
		v.Sleep(10 * time.Millisecond)

		// Without a budget the cold placement fails immediately.
		start := v.Now()
		_, err := p.Invoke("strict", nil)
		if !errors.Is(err, ErrThrottled) {
			t.Fatalf("no-budget err = %v, want ErrThrottled", err)
		}
		if el := v.Now().Sub(start); el > 50*time.Millisecond {
			t.Fatalf("no-budget failure took %v, want immediate", el)
		}

		// With a budget and no relief, the invocation fails only after the
		// budget lapses, with the typed timeout sentinel.
		start = v.Now()
		_, err = p.Invoke("late", nil)
		if !errors.Is(err, ErrColdStartTimeout) || !errors.Is(err, errs.ErrColdStartTimeout) {
			t.Fatalf("budget err = %v, want ErrColdStartTimeout", err)
		}
		if el := v.Now().Sub(start); el < 150*time.Millisecond {
			t.Fatalf("budget failure took %v, want ≈200ms of retrying", el)
		}

		// Capacity freed inside the budget rescues the invocation.
		v.Go(func() {
			v.Sleep(50 * time.Millisecond)
			if _, err := p.SetPoolTarget("hog", 0); err != nil {
				t.Errorf("trim hog: %v", err)
			}
		})
		res, err := p.Invoke("late", nil)
		must(t, err)
		if !res.Cold {
			t.Fatal("rescued invocation should be cold")
		}
	})
}

// TestPercentileOK: the empty-window percentile is explicit, not a silent 0.
func TestPercentileOK(t *testing.T) {
	if v, ok := PercentileOK(nil, 99); ok || v != 0 {
		t.Fatalf("PercentileOK(nil) = %v,%v, want 0,false", v, ok)
	}
	ds := []time.Duration{4 * time.Millisecond, 1 * time.Millisecond, 3 * time.Millisecond, 2 * time.Millisecond}
	if v, ok := PercentileOK(ds, 50); !ok || v != 2*time.Millisecond {
		t.Fatalf("p50 = %v,%v", v, ok)
	}
	if v, ok := PercentileOK(ds, 100); !ok || v != 4*time.Millisecond {
		t.Fatalf("p100 = %v,%v", v, ok)
	}
	// The legacy wrapper keeps its 0-on-empty contract.
	if Percentile(nil, 99) != 0 {
		t.Fatal("Percentile(nil) != 0")
	}
}
