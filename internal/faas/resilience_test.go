package faas

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/simclock"
)

// failing returns a handler that fails while healthy is 0.
func failing(healthy *int64) Handler {
	return func(ctx *Ctx, payload []byte) ([]byte, error) {
		if atomic.LoadInt64(healthy) == 0 {
			return nil, errors.New("boom")
		}
		return []byte("ok"), nil
	}
}

// TestBreakerOpensAndFastFails pins the acceptance criterion: once the
// breaker opens, every invoke fast-fails with ErrCircuitOpen without
// reserving a concurrency slot (the invocation counter — incremented only
// after slot reservation — must not move).
func TestBreakerOpensAndFastFails(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	reg := obs.New(v)
	p.SetObs(reg)
	var healthy int64
	must(t, p.Register("f", "t", failing(&healthy), Config{
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	}))
	v.Run(func() {
		for i := 0; i < 3; i++ {
			if _, err := p.Invoke("f", nil); err == nil {
				t.Error("want handler failure")
			}
		}
		if st, _ := p.BreakerState("f"); st != "open" {
			t.Errorf("breaker state = %q, want open", st)
		}
		before, _ := p.Stats("f")
		fastFails := 0
		for i := 0; i < 100; i++ {
			if _, err := p.Invoke("f", nil); errors.Is(err, ErrCircuitOpen) {
				fastFails++
			}
		}
		if fastFails < 95 {
			t.Errorf("fast-fails = %d/100, want >= 95", fastFails)
		}
		after, _ := p.Stats("f")
		if after.Invocations != before.Invocations {
			t.Errorf("open breaker consumed slots: invocations %d -> %d", before.Invocations, after.Invocations)
		}
	})
	if got := reg.CounterValue("faas.breaker.fastfail"); got < 95 {
		t.Errorf("faas.breaker.fastfail = %d, want >= 95", got)
	}
	if got := reg.CounterValue("faas.breaker.opened"); got != 1 {
		t.Errorf("faas.breaker.opened = %d, want 1", got)
	}
	snap := reg.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Name == "faas.breaker.state.f" && g.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Error("faas.breaker.state.f gauge not 1 (open) in snapshot")
	}
}

// TestBreakerHalfOpenProbeRecloses: after the cooldown a single probe runs;
// when the handler has recovered the breaker re-closes and traffic flows.
func TestBreakerHalfOpenProbeRecloses(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var healthy int64
	must(t, p.Register("f", "t", failing(&healthy), Config{
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
	}))
	v.Run(func() {
		p.Invoke("f", nil)
		p.Invoke("f", nil)
		if _, err := p.Invoke("f", nil); !errors.Is(err, ErrCircuitOpen) {
			t.Errorf("err = %v, want ErrCircuitOpen", err)
		}
		atomic.StoreInt64(&healthy, 1)
		v.Sleep(2 * time.Second)
		// The next invoke is the half-open probe; it succeeds and re-closes.
		if res, err := p.Invoke("f", nil); err != nil || string(res.Output) != "ok" {
			t.Errorf("probe invoke = %q, %v", res.Output, err)
		}
		if st, _ := p.BreakerState("f"); st != "closed" {
			t.Errorf("state after probe = %q, want closed", st)
		}
		if _, err := p.Invoke("f", nil); err != nil {
			t.Errorf("invoke after re-close: %v", err)
		}
	})
}

// TestBreakerProbeFailureReopens: a failed probe puts the breaker straight
// back to open for another cooldown.
func TestBreakerProbeFailureReopens(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var healthy int64
	must(t, p.Register("f", "t", failing(&healthy), Config{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Second,
	}))
	v.Run(func() {
		p.Invoke("f", nil) // opens
		v.Sleep(2 * time.Second)
		if _, err := p.Invoke("f", nil); err == nil || errors.Is(err, ErrCircuitOpen) {
			t.Errorf("probe err = %v, want handler failure", err)
		}
		if st, _ := p.BreakerState("f"); st != "open" {
			t.Errorf("state after failed probe = %q, want open", st)
		}
		if _, err := p.Invoke("f", nil); !errors.Is(err, ErrCircuitOpen) {
			t.Errorf("err = %v, want ErrCircuitOpen", err)
		}
	})
}

// TestInvokeWithRetryBacksOff: the retry policy sleeps doubling backoffs and
// surfaces Attempt/RetryWait in the result.
func TestInvokeWithRetryBacksOff(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var calls int64
	flaky := func(ctx *Ctx, payload []byte) ([]byte, error) {
		if atomic.AddInt64(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}
	must(t, p.Register("f", "t", flaky, Config{}))
	v.Run(func() {
		res, err := p.InvokeWithRetry("f", nil, RetryPolicy{
			MaxAttempts: 5,
			Base:        100 * time.Millisecond,
			Jitter:      -1, // exact backoffs
		})
		if err != nil {
			t.Errorf("InvokeWithRetry: %v", err)
		}
		if res.Attempt != 3 {
			t.Errorf("Attempt = %d, want 3", res.Attempt)
		}
		if res.RetryWait != 300*time.Millisecond {
			t.Errorf("RetryWait = %v, want 300ms (100 + 200)", res.RetryWait)
		}
	})
}

// TestInvokeWithRetryStopsOnNonRetryable: errors a retry cannot fix return
// after a single attempt — including an open breaker, which exists to shed
// load, not attract it.
func TestInvokeWithRetryStopsOnNonRetryable(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var healthy int64
	must(t, p.Register("f", "t", failing(&healthy), Config{
		BreakerThreshold: 1,
		BreakerCooldown:  time.Hour,
	}))
	v.Run(func() {
		if _, err := p.InvokeWithRetry("nope", nil, RetryPolicy{}); !errors.Is(err, ErrNoFunction) {
			t.Errorf("err = %v, want ErrNoFunction", err)
		}
		p.Invoke("f", nil) // opens the breaker
		start := v.Now()
		res, err := p.InvokeWithRetry("f", nil, RetryPolicy{MaxAttempts: 5, Base: time.Second})
		if !errors.Is(err, ErrCircuitOpen) {
			t.Errorf("err = %v, want ErrCircuitOpen", err)
		}
		if res.Attempt != 1 {
			t.Errorf("Attempt = %d, want 1 (no retries against an open breaker)", res.Attempt)
		}
		if waited := v.Now().Sub(start); waited != 0 {
			t.Errorf("retry loop slept %v against an open breaker", waited)
		}
	})
}

// TestRetryJitterDeterministic: two identically seeded platforms produce
// identical jittered retry spacing — the property the chaos soak relies on.
func TestRetryJitterDeterministic(t *testing.T) {
	run := func() []time.Duration {
		v := simclock.NewVirtual()
		defer v.Close()
		p := New(v, nil)
		alwaysFail := func(ctx *Ctx, payload []byte) ([]byte, error) {
			return nil, errors.New("boom")
		}
		must(t, p.Register("f", "t", alwaysFail, Config{MaxRetries: -1}))
		var waits []time.Duration
		v.Run(func() {
			for i := 0; i < 4; i++ {
				res, _ := p.InvokeWithRetry("f", nil, RetryPolicy{MaxAttempts: 3, Base: 50 * time.Millisecond})
				waits = append(waits, res.RetryWait)
			}
		})
		return waits
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= 0 {
			t.Fatalf("RetryWait[%d] = %v, want > 0", i, a[i])
		}
	}
}

// TestAsyncRetryJitterBounds: async retries back off 500ms·2^k with up to
// 20% equal jitter, and the callback's Result surfaces Attempt and
// RetryWait.
func TestAsyncRetryJitterBounds(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var calls int64
	flaky := func(ctx *Ctx, payload []byte) ([]byte, error) {
		if atomic.AddInt64(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return nil, nil
	}
	must(t, p.Register("f", "t", flaky, Config{MaxRetries: 2}))
	var final Result
	v.Run(func() {
		done := make(chan struct{})
		p.InvokeAsync("f", nil, func(res Result, err error) {
			final = res
			if err != nil {
				t.Errorf("async retry failed: %v", err)
			}
			close(done)
		})
		v.BlockOn(func() { <-done })
	})
	if final.Attempt != 3 {
		t.Fatalf("Attempt = %d, want 3", final.Attempt)
	}
	// Waits: U(400,500]ms + U(800,1000]ms ⇒ total in (1200ms, 1500ms].
	if final.RetryWait <= 1200*time.Millisecond || final.RetryWait > 1500*time.Millisecond {
		t.Fatalf("RetryWait = %v, want in (1200ms, 1500ms]", final.RetryWait)
	}
}
