package faas

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

// TestParallelWarmInvokes drives many goroutines through warm invocations on
// a shared set of functions. With admission off the platform-wide lock
// (atomic request IDs, RWMutex function table) the only serialization left
// is per-function, so this must hold up under -race: counters consistent,
// no invocation lost, no cold start after the pools are warmed.
func TestParallelWarmInvokes(t *testing.T) {
	p := New(simclock.Real{}, nil)
	const fns = 4
	for i := 0; i < fns; i++ {
		must(t, p.Register(fmt.Sprintf("f%d", i), "t", echo, Config{
			WarmStart:      time.Nanosecond,
			ColdStart:      time.Nanosecond,
			KeepAlive:      time.Hour,
			MaxConcurrency: 1 << 20,
		}))
	}
	iters := 500
	if testing.Short() {
		iters = 100
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("f%d", w%fns)
			for n := 0; n < iters; n++ {
				res, err := p.Invoke(name, []byte("x"))
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if string(res.Output) != "x" {
					t.Errorf("worker %d: output = %q", w, res.Output)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	var invocations int64
	for i := 0; i < fns; i++ {
		st, err := p.Stats(fmt.Sprintf("f%d", i))
		must(t, err)
		invocations += st.Invocations
		if st.Throttles != 0 {
			t.Errorf("f%d: %d throttles with unbounded concurrency", i, st.Throttles)
		}
	}
	if want := int64(workers * iters); invocations != want {
		t.Fatalf("invocations = %d, want %d", invocations, want)
	}
}
