package faas

import "sync"

// request is the pooled per-invocation record: the handler context (which
// carries the request identity, attempt number, time budget and interference
// state) lives inside it, so a warm invoke draws one record from the pool
// instead of allocating. The record is owned by exactly one invocation from
// getRequest to putRequest; handlers receive a *Ctx pointing into it and must
// not retain that pointer past return (documented on Handler).
type request struct {
	ctx Ctx
}

// reqPool recycles invocation records across requests and tenants. Records
// are zeroed on Put (see putRequest), never on Get, so a bug that skips the
// reset is caught by the hygiene tests rather than masked.
var reqPool = sync.Pool{New: func() any { return new(request) }}

func getRequest() *request { return reqPool.Get().(*request) }

// putRequest returns a record to the pool. Every field is zeroed first so no
// state — tenant, request ID, budget, slowdown — can leak into whichever
// invocation (of whichever tenant) draws the record next.
func putRequest(r *request) {
	r.ctx = Ctx{}
	reqPool.Put(r)
}
