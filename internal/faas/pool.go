package faas

import (
	"sort"
	"time"

	"repro/internal/scheduler"
)

// This file is the autoscaler's surface on the platform: light load
// snapshots (Loads), pool-target driving (SetPoolTarget) and bounded
// cold-start placement waits (placeWithBudget). The autoscaler in
// internal/autoscale ticks on these; nothing here assumes one exists —
// SetPoolTarget is equally usable as a manual pre-warming knob.

// placeRetryInterval spaces placement retries while a cold invocation waits
// inside its ColdStartBudget for the autoscaler to grow the cluster.
const placeRetryInterval = 5 * time.Millisecond

// placeWithBudget claims cluster capacity for a cold instance, retrying
// within the function's ColdStartBudget (counted from the invocation's
// start) so a concurrently growing cluster can absorb the demand. With a
// zero budget it is exactly placeInstance.
func (p *Platform) placeWithBudget(fn *function, inst *instance, start time.Time) error {
	err := p.placeInstance(fn, inst)
	if err == nil || fn.cfg.ColdStartBudget <= 0 {
		if err != nil {
			p.obsPlaceFail.Inc()
		}
		return err
	}
	deadline := start.Add(fn.cfg.ColdStartBudget)
	for p.clock.Now().Add(placeRetryInterval).Before(deadline) {
		p.clock.Sleep(placeRetryInterval)
		if err = p.placeInstance(fn, inst); err == nil {
			return nil
		}
	}
	p.obsPlaceFail.Inc()
	return err
}

// demandOf returns the function's per-instance resource demand with the
// MemoryMB default applied (what placement actually claims).
func (fn *function) demandOf() scheduler.Resources {
	d := fn.cfg.Demand
	if d == (scheduler.Resources{}) {
		d = scheduler.Resources{CPU: 1000, MemMB: float64(fn.cfg.MemoryMB)}
	}
	return d
}

// Load is one function's instantaneous load, as the autoscaler sees it.
type Load struct {
	// Key is the tenant-qualified registry key ("tenant/name") — the handle
	// to pass back into SetPoolTarget/PoolTarget, unambiguous even when two
	// tenants deploy the same function name. Name and Tenant are its parts.
	Key    string
	Name   string
	Tenant string
	// Running is in-flight invocations; WarmIdle is live idle instances;
	// Warming is instances still provisioning toward the pool target.
	Running  int
	WarmIdle int
	Warming  int
	// Invocations is the function's lifetime invocation count; deltas
	// between autoscaler ticks give the arrival rate.
	Invocations int64
	// PlaceFails counts cold placements the cluster rejected — scale-up
	// pressure the autoscaler must answer with Grow.
	PlaceFails int64
	// KeepAlive and Prewarm are the function's configured floors: the
	// autoscaler must not scale to zero before an idle instance's
	// keep-alive lapses, nor trim below the provisioned floor.
	KeepAlive time.Duration
	Prewarm   int
	// Demand is the per-instance resource vector placement claims.
	Demand         scheduler.Resources
	MaxConcurrency int
}

// Pool returns the function's total instance footprint.
func (l Load) Pool() int { return l.Running + l.WarmIdle + l.Warming }

// Loads snapshots every registered function's load, sorted by name (the
// deterministic iteration order the autoscaler depends on). It is cheap:
// no durations or timelines are copied.
func (p *Platform) Loads() []Load {
	p.mu.RLock()
	fns := make([]*function, 0, len(p.functions))
	for _, fn := range p.functions {
		fns = append(fns, fn)
	}
	p.mu.RUnlock()
	sort.Slice(fns, func(i, j int) bool { return fns[i].key < fns[j].key })
	out := make([]Load, len(fns))
	for i, fn := range fns {
		fn.mu.Lock()
		out[i] = Load{
			Key:            fn.key,
			Name:           fn.name,
			Tenant:         fn.tenant,
			Running:        fn.running,
			WarmIdle:       len(fn.idle),
			Warming:        fn.warming,
			Invocations:    fn.invocations,
			PlaceFails:     fn.placeFails,
			KeepAlive:      fn.cfg.KeepAlive,
			Prewarm:        fn.cfg.Prewarm,
			Demand:         fn.demandOf(),
			MaxConcurrency: fn.cfg.MaxConcurrency,
		}
		fn.mu.Unlock()
	}
	return out
}

// SetPoolTarget drives a function's instance pool (running + warm idle +
// warming) toward target. Growth provisions warm instances asynchronously —
// each pays its cold start off the request path and joins the idle pool
// when ready; a placement rejection is counted (Load.PlaceFails) and
// surrendered for this tick, so the autoscaler can Grow the cluster and
// retry next tick. Shrinkage releases surplus idle instances immediately
// (oldest first), never below the Prewarm floor and never touching running
// or still-warming instances. It returns how many instances were started
// (+) or released (-).
func (p *Platform) SetPoolTarget(name string, target int) (int, error) {
	if target < 0 {
		target = 0
	}
	fn, err := p.lookup(name)
	if err != nil {
		return 0, err
	}
	now := p.clock.Now()

	fn.mu.Lock()
	fn.poolTarget = target
	pool := fn.running + len(fn.idle) + fn.warming
	switch {
	case pool < target:
		n := target - pool
		if room := fn.cfg.MaxConcurrency - pool; n > room {
			n = room
		}
		starts := make([]*instance, 0, n)
		for i := 0; i < n; i++ {
			fn.nextInst++
			starts = append(starts, &instance{id: fn.nextInst})
		}
		fn.warming += len(starts)
		if len(starts) > 0 {
			fn.recordLocked(now)
		}
		fn.mu.Unlock()
		for _, inst := range starts {
			inst := inst
			p.clock.Go(func() { p.provision(fn, inst) })
		}
		return len(starts), nil

	case pool > target:
		// Trim idle only, oldest (front) first, holding the Prewarm floor.
		trim := pool - target
		if spare := len(fn.idle) - fn.cfg.Prewarm; trim > spare {
			trim = spare
		}
		if trim <= 0 {
			fn.mu.Unlock()
			return 0, nil
		}
		victims := fn.idle[:trim]
		fn.idle = append([]*instance{}, fn.idle[trim:]...)
		for _, in := range victims {
			p.releaseInstance(fn, in)
		}
		fn.recordLocked(now)
		fn.mu.Unlock()
		return -trim, nil
	}
	fn.mu.Unlock()
	return 0, nil
}

// provision pays one warm instance's placement and cold start, then parks
// it in the idle pool. Runs on its own clock goroutine.
func (p *Platform) provision(fn *function, inst *instance) {
	if err := p.placeInstance(fn, inst); err != nil {
		fn.mu.Lock()
		fn.warming--
		fn.placeFails++
		fn.mu.Unlock()
		p.obsPlaceFail.Inc()
		return
	}
	p.clock.Sleep(fn.cfg.ColdStart)
	now := p.clock.Now()
	fn.mu.Lock()
	fn.warming--
	if fn.gone {
		p.releaseInstance(fn, inst)
		fn.mu.Unlock()
		return
	}
	inst.idleSince = now
	fn.idle = append(fn.idle, inst)
	fn.recordLocked(now)
	fn.mu.Unlock()
	p.obsPrewarmed.Inc()
}

// Owner returns the tenant that registered the function (false when the
// function is unknown).
func (p *Platform) Owner(name string) (string, bool) {
	fn, err := p.lookup(name)
	if err != nil {
		return "", false
	}
	return fn.tenant, true
}

// PoolTarget returns the function's current autoscaler target (0 and false
// when the function is unknown).
func (p *Platform) PoolTarget(name string) (int, bool) {
	fn, err := p.lookup(name)
	if err != nil {
		return 0, false
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	return fn.poolTarget, true
}
