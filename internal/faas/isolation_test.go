package faas

import (
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simclock"
)

func TestIsolationPresetsOrdered(t *testing.T) {
	isos := Isolations()
	if len(isos) != 4 {
		t.Fatalf("presets = %d", len(isos))
	}
	for i := 1; i < len(isos); i++ {
		if isos[i].ColdStart >= isos[i-1].ColdStart {
			t.Fatalf("cold start not decreasing at %s", isos[i].Name)
		}
		if isos[i].MemOverheadMB >= isos[i-1].MemOverheadMB {
			t.Fatalf("overhead not decreasing at %s", isos[i].Name)
		}
	}
}

func TestIsolationApply(t *testing.T) {
	cfg := MicroVM.Apply(Config{MemoryMB: 256})
	if cfg.ColdStart != MicroVM.ColdStart {
		t.Fatalf("cold start = %v", cfg.ColdStart)
	}
	if cfg.Demand.MemMB != 256+float64(MicroVM.MemOverheadMB) {
		t.Fatalf("demand mem = %v", cfg.Demand.MemMB)
	}
	// Zero memory defaults to 128 before overhead.
	cfg = Unikernel.Apply(Config{})
	if cfg.Demand.MemMB != 128+float64(Unikernel.MemOverheadMB) {
		t.Fatalf("default-mem demand = %v", cfg.Demand.MemMB)
	}
	// Pre-set demand keeps its CPU and gains only the overhead.
	cfg = Container.Apply(Config{Demand: scheduler.Resources{CPU: 500, MemMB: 100}})
	if cfg.Demand.CPU != 500 || cfg.Demand.MemMB != 100+float64(Container.MemOverheadMB) {
		t.Fatalf("custom demand = %+v", cfg.Demand)
	}
}

func TestIsolationDensity(t *testing.T) {
	if d := Unikernel.Density(128, 16384); d != 16384/(128+4) {
		t.Fatalf("unikernel density = %d", d)
	}
	if d := Container.Density(128, 16384); d != 16384/(128+128) {
		t.Fatalf("container density = %d", d)
	}
	if d := Container.Density(-200, 16384); d != 0 {
		t.Fatalf("degenerate density = %d", d)
	}
}

func TestCtxAccessors(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var remaining time.Duration
	var timedOut bool
	var slowdown float64
	h := func(ctx *Ctx, _ []byte) ([]byte, error) {
		ctx.Work(100 * time.Millisecond)
		remaining = ctx.Remaining()
		timedOut = ctx.TimedOut()
		slowdown = ctx.Slowdown()
		return nil, nil
	}
	must(t, p.Register("f", "t", h, Config{Timeout: time.Second}))
	v.Run(func() {
		_, err := p.Invoke("f", nil)
		must(t, err)
	})
	if remaining != 900*time.Millisecond {
		t.Fatalf("remaining = %v", remaining)
	}
	if timedOut {
		t.Fatal("spurious timeout")
	}
	if slowdown != 1 {
		t.Fatalf("slowdown = %v without a cluster", slowdown)
	}
	if p.Clock() != simclock.Clock(v) {
		t.Fatal("Clock accessor wrong")
	}
	if p.Cluster() != nil {
		t.Fatal("Cluster should be nil when unattached")
	}
}

func TestPrewarmedUnregisterReleasesCluster(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{})
	p.AttachCluster(cluster, 0)
	must(t, p.Register("pw", "t", echo, Config{Prewarm: 3}))
	if cluster.ActiveMachines() == 0 {
		t.Fatal("prewarmed instances not placed")
	}
	must(t, p.Unregister("pw"))
	if cluster.ActiveMachines() != 0 {
		t.Fatalf("unregister left %d machines active", cluster.ActiveMachines())
	}
	if p.Cluster() != cluster {
		t.Fatal("Cluster accessor wrong")
	}
}
