package faas

import (
	"testing"
	"time"

	"repro/internal/scheduler"
	"repro/internal/simclock"
)

func TestPrewarmEliminatesColdStarts(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("hot", "t", worker(10*time.Millisecond), Config{
		Prewarm: 4, ColdStart: 500 * time.Millisecond, WarmStart: time.Millisecond,
	}))
	v.Run(func() {
		// Four concurrent first requests: all should hit warm instances.
		rep := Drive(p, "hot", nil, make([]time.Duration, 4))
		rep.Wait()
		for _, r := range rep.Results() {
			if r.Cold {
				t.Errorf("prewarmed function paid a cold start: %+v", r)
			}
		}
	})
	st, _ := p.Stats("hot")
	if st.ColdStarts != 0 {
		t.Fatalf("cold starts = %d, want 0", st.ColdStarts)
	}
}

func TestPrewarmFloorSurvivesReaping(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("floor", "t", echo, Config{Prewarm: 2, KeepAlive: time.Minute}))
	v.Run(func() {
		// Burst to 6 instances.
		rep := Drive(p, "floor", nil, make([]time.Duration, 6))
		rep.Wait()
		v.Sleep(10 * time.Minute) // way past keep-alive
		st, _ := p.Stats("floor")
		if st.WarmIdle != 2 {
			t.Errorf("warm idle = %d, want the Prewarm floor of 2", st.WarmIdle)
		}
	})
}

func TestClusterPlacementAndRelease(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{})
	p.AttachCluster(cluster, 0)
	must(t, p.Register("placed", "acme", worker(time.Second), Config{
		MemoryMB: 1024, KeepAlive: time.Minute,
	}))
	v.Run(func() {
		rep := Drive(p, "placed", nil, make([]time.Duration, 3))
		rep.Wait()
		if got := cluster.ActiveMachines(); got == 0 {
			t.Error("no machines active while instances warm")
		}
		v.Sleep(5 * time.Minute) // keep-alive lapses → instances released
		p.Stats("placed")        // force reap
		if got := cluster.ActiveMachines(); got != 0 {
			t.Errorf("machines still active after scale-to-zero: %d", got)
		}
	})
}

func TestClusterCapacityThrottles(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	// One machine only fits two 2000-CPU instances; one-machine template.
	cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, onlyOneMachine{})
	p.AttachCluster(cluster, 0)
	must(t, p.Register("tight", "t", worker(time.Second), Config{
		Demand: scheduler.Resources{CPU: 2000, MemMB: 512}, KeepAlive: time.Hour, MaxRetries: -1,
	}))
	v.Run(func() {
		rep := Drive(p, "tight", nil, make([]time.Duration, 3))
		rep.Wait()
		if len(rep.Errors()) != 1 {
			t.Errorf("errors = %d, want 1 (third instance unplaceable)", len(rep.Errors()))
		}
	})
}

// onlyOneMachine is a test policy that refuses to grow beyond machine 0.
type onlyOneMachine struct{}

func (onlyOneMachine) Name() string { return "one-machine" }
func (onlyOneMachine) Choose(machines []*scheduler.Machine, demand scheduler.Resources, _ string) int {
	if len(machines) == 0 {
		return -1 // create the single machine
	}
	// Always answer machine 0: when it has no room, the cluster rejects
	// the placement (finite capacity) instead of growing.
	return 0
}

func TestInterferenceSlowdown(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{})
	p.AttachCluster(cluster, 0.5) // +50% per contender
	must(t, p.Register("noisy", "t", worker(time.Second), Config{
		Demand:    scheduler.Resources{CPU: 1000, MemMB: 512}, // cpu-dominant; 4 fit per machine
		KeepAlive: time.Hour,
		ColdStart: time.Millisecond,
		WarmStart: time.Millisecond,
	}))
	v.Run(func() {
		// Alone: 1s of work takes 1s.
		res, err := p.Invoke("noisy", nil)
		must(t, err)
		if res.Latency > 1100*time.Millisecond {
			t.Errorf("solo latency %v", res.Latency)
		}
		// Four concurrent instances on one machine: 3 contenders each →
		// slowdown 2.5× → ~2.5s.
		rep := Drive(p, "noisy", nil, make([]time.Duration, 4))
		rep.Wait()
		sawSlow := false
		for _, r := range rep.Results() {
			if r.Latency > 2*time.Second {
				sawSlow = true
			}
		}
		if !sawSlow {
			t.Error("no invocation suffered interference slowdown")
		}
	})
}
