package faas

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/simclock"
)

// TestRetryBreakerTripBillingConsistent pins the contract between the retry
// loop, the breaker and the meter: with a threshold of 3 and an always-failing
// handler, InvokeWithRetry's first three attempts execute (and bill), the
// third trips the breaker, and the fourth fast-fails with ErrCircuitOpen —
// ending the loop immediately. The Result's Attempt count and the billed
// faas:requests must tell the same story: 4 attempts issued, 3 executions
// billed.
func TestRetryBreakerTripBillingConsistent(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	meter := billing.NewMeter()
	p := New(v, meter)
	var healthy int64
	must(t, p.Register("f", "acme", failing(&healthy), Config{
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour,
	}))
	v.Run(func() {
		res, err := p.InvokeWithRetry("f", nil, RetryPolicy{
			MaxAttempts: 5,
			Base:        time.Millisecond,
			Jitter:      -1,
		})
		if !errors.Is(err, ErrCircuitOpen) {
			t.Fatalf("err = %v, want ErrCircuitOpen", err)
		}
		if res.Attempt != 4 {
			t.Errorf("res.Attempt = %d, want 4 (three executions + the fast-fail)", res.Attempt)
		}
		st, _ := p.Stats("f")
		if st.Invocations != 3 {
			t.Errorf("executions = %d, want 3", st.Invocations)
		}
		if got := meter.Units("acme", billing.ResInvocationReqs); got != 3 {
			t.Errorf("billed faas:requests = %v, want 3 (the fast-failed attempt must not bill)", got)
		}
	})
}

// TestDedupWindowServesCachedResult: on a function with a DedupWindow, a
// second invoke presenting the same idempotency key is served from the cache
// — no execution, no billing, Result.Deduped set — while a fresh key and a
// key past the window re-execute.
func TestDedupWindowServesCachedResult(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	meter := billing.NewMeter()
	p := New(v, meter)
	var execs int64
	must(t, p.Register("f", "acme", func(ctx *Ctx, payload []byte) ([]byte, error) {
		atomic.AddInt64(&execs, 1)
		return []byte("ok"), nil
	}, Config{DedupWindow: time.Minute}))
	v.Run(func() {
		r1, err := p.InvokeIdem("f", "k1", nil)
		must(t, err)
		if r1.Deduped {
			t.Error("first keyed invoke must execute, not dedup")
		}
		r2, err := p.InvokeIdem("f", "k1", nil)
		must(t, err)
		if !r2.Deduped {
			t.Error("duplicate key inside the window must be served from cache")
		}
		if string(r2.Output) != "ok" {
			t.Errorf("cached output = %q, want %q", r2.Output, "ok")
		}
		if r3, err := p.InvokeIdem("f", "k2", nil); err != nil || r3.Deduped {
			t.Errorf("fresh key: err=%v deduped=%v, want execution", err, r3.Deduped)
		}
		if got := atomic.LoadInt64(&execs); got != 2 {
			t.Errorf("executions = %d, want 2", got)
		}
		if got := meter.Units("acme", billing.ResInvocationReqs); got != 2 {
			t.Errorf("billed faas:requests = %v, want 2 (deduped invoke must not bill)", got)
		}
		// Past the window the key executes again.
		v.Sleep(2 * time.Minute)
		r4, err := p.InvokeIdem("f", "k1", nil)
		must(t, err)
		if r4.Deduped {
			t.Error("key past the window must re-execute")
		}
		if got := atomic.LoadInt64(&execs); got != 3 {
			t.Errorf("executions after expiry = %d, want 3", got)
		}
	})
}

// TestDedupNeverCachesFailures: a failed keyed attempt must not poison the
// window — the retry that could fix it has to reach the handler.
func TestDedupNeverCachesFailures(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var healthy int64
	must(t, p.Register("f", "acme", failing(&healthy), Config{DedupWindow: time.Minute}))
	v.Run(func() {
		if _, err := p.InvokeIdem("f", "k", nil); err == nil {
			t.Fatal("want handler failure")
		}
		atomic.StoreInt64(&healthy, 1)
		res, err := p.InvokeIdem("f", "k", nil)
		must(t, err)
		if res.Deduped {
			t.Error("retry after failure was deduped; failures must not be cached")
		}
		if string(res.Output) != "ok" {
			t.Errorf("output = %q, want %q", res.Output, "ok")
		}
	})
}

// TestRetryDecideLostReply: a Decide predicate that re-invokes after success
// (a client that lost the reply) double-executes a plain function but not a
// dedup-windowed one — the second attempt of the keyed retry is served from
// the cache.
func TestRetryDecideLostReply(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var plain, keyed int64
	count := func(n *int64) Handler {
		return func(ctx *Ctx, payload []byte) ([]byte, error) {
			atomic.AddInt64(n, 1)
			return []byte("ok"), nil
		}
	}
	must(t, p.Register("plain", "acme", count(&plain), Config{}))
	must(t, p.Register("keyed", "acme", count(&keyed), Config{DedupWindow: time.Minute}))
	lostReply := RetryPolicy{
		MaxAttempts: 2,
		Base:        time.Millisecond,
		Jitter:      -1,
		Decide:      func(attempt int, res Result, err error) bool { return attempt < 2 },
	}
	v.Run(func() {
		res, err := p.InvokeWithRetry("plain", nil, lostReply)
		must(t, err)
		if res.Attempt != 2 || atomic.LoadInt64(&plain) != 2 {
			t.Errorf("plain: attempt=%d execs=%d, want 2/2 (lost reply re-executes)", res.Attempt, plain)
		}
		res, err = p.InvokeWithRetryIdem("keyed", "req-1", nil, lostReply)
		must(t, err)
		if res.Attempt != 2 || !res.Deduped {
			t.Errorf("keyed: attempt=%d deduped=%v, want attempt 2 served from cache", res.Attempt, res.Deduped)
		}
		if got := atomic.LoadInt64(&keyed); got != 1 {
			t.Errorf("keyed executions = %d, want 1", got)
		}
	})
}
