package faas

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/simclock"
)

func echo(ctx *Ctx, payload []byte) ([]byte, error) { return payload, nil }

func worker(d time.Duration) Handler {
	return func(ctx *Ctx, payload []byte) ([]byte, error) {
		ctx.Work(d)
		return payload, nil
	}
}

func TestRegisterInvoke(t *testing.T) {
	p := New(simclock.Real{}, nil)
	must(t, p.Register("echo", "t", echo, Config{}))
	res, err := p.Invoke("echo", []byte("hi"))
	must(t, err)
	if string(res.Output) != "hi" || !res.Cold {
		t.Fatalf("res = %+v", res)
	}
	// Second invoke reuses the warm instance.
	res2, err := p.Invoke("echo", []byte("again"))
	must(t, err)
	if res2.Cold {
		t.Fatal("second invocation was cold")
	}
}

func TestRegisterDuplicateAndMissing(t *testing.T) {
	p := New(simclock.Real{}, nil)
	must(t, p.Register("f", "t", echo, Config{}))
	if err := p.Register("f", "t", echo, Config{}); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.Invoke("ghost", nil); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("err = %v", err)
	}
	must(t, p.Unregister("f"))
	if err := p.Unregister("f"); !errors.Is(err, ErrNoFunction) {
		t.Fatalf("err = %v", err)
	}
}

func TestColdVsWarmLatency(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	cfg := Config{ColdStart: 200 * time.Millisecond, WarmStart: time.Millisecond, KeepAlive: time.Hour}
	must(t, p.Register("f", "t", worker(10*time.Millisecond), cfg))
	v.Run(func() {
		res1, err := p.Invoke("f", nil)
		must(t, err)
		if res1.Latency != 210*time.Millisecond {
			t.Errorf("cold latency = %v, want 210ms", res1.Latency)
		}
		res2, err := p.Invoke("f", nil)
		must(t, err)
		if res2.Latency != 11*time.Millisecond {
			t.Errorf("warm latency = %v, want 11ms", res2.Latency)
		}
	})
}

func TestKeepAliveExpiryCausesColdStart(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", echo, Config{KeepAlive: time.Minute}))
	v.Run(func() {
		_, err := p.Invoke("f", nil)
		must(t, err)
		v.Sleep(30 * time.Second)
		res, err := p.Invoke("f", nil)
		must(t, err)
		if res.Cold {
			t.Error("instance reaped before keep-alive lapsed")
		}
		v.Sleep(2 * time.Minute)
		res, err = p.Invoke("f", nil)
		must(t, err)
		if !res.Cold {
			t.Error("instance survived past keep-alive")
		}
	})
}

func TestScaleToZero(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", echo, Config{KeepAlive: time.Minute}))
	v.Run(func() {
		for i := 0; i < 3; i++ {
			_, err := p.Invoke("f", nil)
			must(t, err)
		}
		st, _ := p.Stats("f")
		if st.WarmIdle != 1 {
			t.Errorf("warm idle = %d, want 1 (sequential reuse)", st.WarmIdle)
		}
		v.Sleep(5 * time.Minute)
		st, _ = p.Stats("f")
		if st.WarmIdle != 0 || st.Running != 0 {
			t.Errorf("did not scale to zero: %+v", st)
		}
	})
}

func TestDemandDrivenScaleOut(t *testing.T) {
	// N concurrent invocations of a slow function must provision N instances.
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", worker(time.Second), Config{KeepAlive: time.Hour}))
	var end time.Time
	v.Run(func() {
		rep := Drive(p, "f", nil, make([]time.Duration, 8)) // 8 arrivals at t=0
		rep.Wait()
		end = v.Now()
		st, _ := p.Stats("f")
		if st.ColdStarts != 8 {
			t.Errorf("cold starts = %d, want 8", st.ColdStarts)
		}
	})
	// All 8 ran in parallel: elapsed ≈ coldstart + 1s, not 8s.
	if e := end.Sub(simclock.Epoch); e > 2*time.Second {
		t.Fatalf("elapsed %v — invocations did not run in parallel", e)
	}
}

func TestConcurrencyThrottle(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", worker(time.Second), Config{MaxConcurrency: 2, KeepAlive: time.Hour, MaxRetries: -1}))
	v.Run(func() {
		var throttled int64
		done := make(chan struct{}, 3)
		for i := 0; i < 3; i++ {
			p.InvokeAsync("f", nil, func(_ Result, err error) {
				if errors.Is(err, ErrThrottled) {
					atomic.AddInt64(&throttled, 1)
				}
				done <- struct{}{}
			})
		}
		v.BlockOn(func() {
			for i := 0; i < 3; i++ {
				<-done
			}
		})
		if throttled != 1 {
			t.Errorf("throttled = %d, want 1", throttled)
		}
	})
}

func TestExecutionTimeLimit(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("slow", "t", worker(10*time.Second), Config{Timeout: time.Second, MaxRetries: -1}))
	v.Run(func() {
		start := v.Now()
		_, err := p.Invoke("slow", nil)
		if !errors.Is(err, ErrTimeout) {
			t.Errorf("err = %v, want ErrTimeout", err)
		}
		// The handler must have been cut at the 1s budget, not run 10s.
		if e := v.Now().Sub(start); e > 2*time.Second {
			t.Errorf("timeout did not bound execution: %v", e)
		}
		st, _ := p.Stats("slow")
		if st.Timeouts != 1 {
			t.Errorf("timeouts = %d", st.Timeouts)
		}
	})
}

func TestBillingFineGrained(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	m := billing.NewMeter()
	p := New(v, m)
	// 250 ms of work at 1024 MB bills 300 ms → 0.3 GB-s.
	must(t, p.Register("f", "acme", worker(250*time.Millisecond), Config{MemoryMB: 1024}))
	v.Run(func() {
		_, err := p.Invoke("f", nil)
		must(t, err)
	})
	got := m.Units("acme", billing.ResInvocationGBs)
	if got < 0.2999 || got > 0.3001 {
		t.Fatalf("GB-seconds = %v, want 0.3", got)
	}
	if m.Units("acme", billing.ResInvocationReqs) != 1 {
		t.Fatal("request not metered")
	}
}

func TestAsyncRetrySucceedsEventually(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var calls int64
	flaky := func(ctx *Ctx, payload []byte) ([]byte, error) {
		if atomic.AddInt64(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}
	must(t, p.Register("flaky", "t", flaky, Config{MaxRetries: 2}))
	v.Run(func() {
		done := make(chan error, 1)
		var attempt int
		p.InvokeAsync("flaky", nil, func(res Result, err error) {
			attempt = int(atomic.LoadInt64(&calls))
			done <- err
		})
		var err error
		v.BlockOn(func() { err = <-done })
		if err != nil {
			t.Errorf("async retry failed: %v", err)
		}
		if attempt != 3 {
			t.Errorf("attempts = %d, want 3", attempt)
		}
	})
}

func TestAttemptNumberVisibleToHandler(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	var lastAttempt int64
	h := func(ctx *Ctx, payload []byte) ([]byte, error) {
		atomic.StoreInt64(&lastAttempt, int64(ctx.Attempt))
		if ctx.Attempt < 2 {
			return nil, errors.New("fail once")
		}
		return nil, nil
	}
	must(t, p.Register("f", "t", h, Config{MaxRetries: 2}))
	v.Run(func() {
		done := make(chan struct{})
		p.InvokeAsync("f", nil, func(Result, error) { close(done) })
		v.BlockOn(func() { <-done })
	})
	if lastAttempt != 2 {
		t.Fatalf("final attempt = %d, want 2", lastAttempt)
	}
}

func TestPayloadLimit(t *testing.T) {
	p := New(simclock.Real{}, nil)
	must(t, p.Register("f", "t", echo, Config{MaxPayload: 10}))
	if _, err := p.Invoke("f", make([]byte, 11)); !errors.Is(err, ErrPayloadSize) {
		t.Fatalf("err = %v", err)
	}
}

func TestTimelineRecordsScaling(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := New(v, nil)
	must(t, p.Register("f", "t", worker(time.Second), Config{KeepAlive: time.Minute}))
	v.Run(func() {
		rep := Drive(p, "f", nil, make([]time.Duration, 4))
		rep.Wait()
		v.Sleep(2 * time.Minute)
		p.Stats("f") // force reap
	})
	st, _ := p.Stats("f")
	peak := 0
	for _, pt := range st.Timeline {
		if pt.Instances > peak {
			peak = pt.Instances
		}
	}
	if peak != 4 {
		t.Fatalf("peak instances = %d, want 4", peak)
	}
	last := st.Timeline[len(st.Timeline)-1]
	if last.Instances != 0 {
		t.Fatalf("final instances = %d, want 0", last.Instances)
	}
}

func TestPercentile(t *testing.T) {
	ds := []time.Duration{5, 1, 4, 2, 3}
	if got := Percentile(ds, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(ds, 100); got != 5 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(ds, 50); got != 3 {
		t.Fatalf("p50 = %v", got)
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestHandlerErrorCountsAsFailure(t *testing.T) {
	p := New(simclock.Real{}, nil)
	boom := errors.New("boom")
	must(t, p.Register("f", "t", func(*Ctx, []byte) ([]byte, error) { return nil, boom }, Config{}))
	if _, err := p.Invoke("f", nil); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	st, _ := p.Stats("f")
	if st.Failures != 1 {
		t.Fatalf("failures = %d", st.Failures)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
