// Package faas implements the Function-as-a-Service platform at the centre
// of the paper (§2, §4.1): users register stateless functions and the
// platform provides demand-driven execution — instances are provisioned on
// demand (paying a cold-start penalty), kept warm for a keep-alive window,
// and reaped back to zero when idle — with limited execution times,
// per-function concurrency limits, transparent retry of failed asynchronous
// invocations, and fine-grained billing.
//
// Function compute is modelled, not burned: handlers call Ctx.Work(d) to
// consume d of simulated execution time on the shared Clock, which also
// enforces the platform's execution time limit deterministically.
package faas

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"repro/internal/billing"
	"repro/internal/errs"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// Errors returned by the platform. Throttle, breaker and cold-start
// sentinels wrap the platform-wide identities in internal/errs, so
// errors.Is(err, core.ErrThrottled) matches regardless of which plane shed
// the request.
var (
	ErrNoFunction  = errors.New("faas: function not registered")
	ErrExists      = errors.New("faas: function already registered")
	ErrAmbiguous   = errors.New("faas: function name owned by several tenants; qualify as tenant/name")
	ErrThrottled   = fmt.Errorf("faas: concurrency limit reached (%w)", errs.ErrThrottled)
	ErrTimeout     = errors.New("faas: execution time limit exceeded")
	ErrPayloadSize = errors.New("faas: payload too large")
	ErrCircuitOpen = fmt.Errorf("faas: %w", errs.ErrBreakerOpen)
	// ErrColdStartTimeout is returned when a cold invocation could not obtain
	// cluster capacity within its ColdStartBudget (the autoscaler did not
	// grow the fleet in time).
	ErrColdStartTimeout = fmt.Errorf("faas: %w waiting for capacity", errs.ErrColdStartTimeout)
)

// Handler is the user function body. It may call Ctx.Work to model compute
// and may use any platform service captured in its closure; its returned
// bytes are the invocation result. The *Ctx is drawn from a platform-wide
// pool and is recycled when the handler returns: handlers must not retain it
// past return (copy the fields they need instead).
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Config parameterizes one registered function.
type Config struct {
	// MemoryMB sizes the instance; it scales billing (GB-seconds).
	// Default 128.
	MemoryMB int
	// Timeout is the execution time limit ("limited execution times",
	// §4.1). Default 60s.
	Timeout time.Duration
	// MaxConcurrency caps simultaneously running instances. Default 1000.
	MaxConcurrency int
	// KeepAlive is how long an idle warm instance survives before the
	// platform reclaims it. Default 10m, matching observed provider
	// behaviour ([180]). Zero means instances are never reused.
	KeepAlive time.Duration
	// ColdStart is the provisioning+runtime-init latency of a new
	// instance. Default 250ms, in the range measured by [112]/[180].
	ColdStart time.Duration
	// WarmStart is the dispatch latency onto an existing instance.
	// Default 1ms.
	WarmStart time.Duration
	// MaxRetries is how many times InvokeAsync re-executes a failed
	// invocation. Default 2 (i.e. up to 3 attempts), as AWS Lambda does
	// for asynchronous events.
	MaxRetries int
	// MaxPayload bounds the request payload size in bytes. Default 6 MB.
	MaxPayload int
	// Prewarm keeps at least this many instances warm at all times
	// ("provisioned concurrency"): they are created at registration and
	// exempt from keep-alive reaping, trading standing cost for zero cold
	// starts — the §6 SLA-predictability lever.
	Prewarm int
	// Demand is the instance's resource vector when the platform is
	// attached to a cluster (AttachCluster). Zero means {CPU: 1000,
	// MemMB: MemoryMB}.
	Demand scheduler.Resources
	// BreakerThreshold arms a per-function circuit breaker: after this many
	// consecutive handler failures the breaker opens and invokes fast-fail
	// with ErrCircuitOpen — before reserving a concurrency slot — until a
	// half-open probe succeeds. Zero (default) disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before letting a
	// single half-open probe through. Default 30s when the breaker is armed.
	BreakerCooldown time.Duration
	// ColdStartBudget bounds how long a cold invocation may wait for
	// cluster capacity (retrying placement while the autoscaler grows the
	// fleet) before failing with ErrColdStartTimeout. Zero keeps the legacy
	// behaviour: a failed placement throttles immediately.
	ColdStartBudget time.Duration
	// DedupWindow arms per-function idempotency-key deduplication: an invoke
	// carrying a key (InvokeIdem, InvokeWithRetryIdem) whose previous keyed
	// invocation *succeeded* within the window is served the cached Result —
	// no handler execution, no billing — with Result.Deduped set. This is the
	// opt-in half of exactly-once-observable semantics over an at-least-once
	// transport: the platform still retries, but a client that lost the reply
	// and re-sends its key cannot double-execute the handler. Failed attempts
	// are never cached (a retry after failure must re-execute), and the
	// window is best-effort for *concurrent* duplicates: two in-flight
	// invocations of the same key may both execute, as on real platforms
	// whose dedup is a post-commit record, not a lock. Zero disables dedup;
	// keys are then ignored.
	DedupWindow time.Duration
}

func (c Config) withDefaults() Config {
	if c.MemoryMB == 0 {
		c.MemoryMB = 128
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxConcurrency == 0 {
		c.MaxConcurrency = 1000
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 10 * time.Minute
	}
	if c.ColdStart == 0 {
		c.ColdStart = 250 * time.Millisecond
	}
	if c.WarmStart == 0 {
		c.WarmStart = time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0 // negative disables async retry
	}
	if c.MaxPayload == 0 {
		c.MaxPayload = 6 << 20
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown == 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Ctx is passed to every handler invocation.
type Ctx struct {
	Clock        simclock.Clock
	FunctionName string
	Tenant       string
	RequestID    int64
	InstanceID   int64 // identity of the warm instance running this request
	Attempt      int   // 1-based attempt number under async retry
	// Trace is the handler span's causal context. Handlers thread it into
	// downstream trace-aware APIs (pulsar SendTrace, jiffy Traced, nested
	// InvokeTrace) so one request is one trace across subsystems. It is two
	// int64s copied by value — safe to pass onward even though *Ctx itself
	// is pooled and must not be retained.
	Trace obs.TraceCtx

	budget   time.Duration // remaining execution time
	worked   time.Duration
	exceeded bool
	slowdown float64 // interference multiplier (≥1) from co-resident contenders
}

// Work consumes d of simulated execution time. If the function's remaining
// time budget is smaller than d, Work consumes only the budget and marks the
// invocation as timed out; the platform then fails it with ErrTimeout.
// When the platform is attached to a cluster, the wall-clock cost is
// inflated by the instance's interference slowdown (§6 "SLA Guarantees":
// contention makes performance unpredictable) while the budget is charged
// the nominal amount.
func (c *Ctx) Work(d time.Duration) {
	if d <= 0 || c.exceeded {
		return
	}
	if d >= c.budget {
		d = c.budget
		c.exceeded = true
	}
	c.budget -= d
	c.worked += d
	wall := d
	if c.slowdown > 1 {
		wall = time.Duration(float64(d) * c.slowdown)
	}
	c.Clock.Sleep(wall)
}

// Slowdown returns the invocation's interference multiplier (1 when the
// platform has no cluster attached or the instance has no contenders).
func (c *Ctx) Slowdown() float64 {
	if c.slowdown < 1 {
		return 1
	}
	return c.slowdown
}

// TimedOut reports whether the invocation has exhausted its time budget.
func (c *Ctx) TimedOut() bool { return c.exceeded }

// Remaining returns the unconsumed execution time budget.
func (c *Ctx) Remaining() time.Duration { return c.budget }

type instance struct {
	id        int64
	idleSince time.Time
}

// ScalePoint is one sample of a function's instance footprint over time,
// recorded at every scaling-relevant event (experiment E2).
type ScalePoint struct {
	At        time.Time
	Instances int // warm idle + running
}

type function struct {
	name     string
	key      string // tenant-qualified registry key: "tenant/name"
	tenant   string
	handler  Handler
	cfg      Config
	platform *Platform

	brk      breaker    // armed when cfg.BreakerThreshold > 0
	brkGauge *obs.Gauge // per-function breaker state; nil → no-op

	// idem is the dedup-window cache (armed when cfg.DedupWindow > 0):
	// idempotency key → cached successful Result and its expiry. Its own
	// mutex, not fn.mu — a dedup hit must not contend with the instance-pool
	// bookkeeping it exists to bypass.
	idemMu sync.Mutex
	idem   map[string]idemEntry

	// Tenant/function-labeled handles and the tenant SLO accumulator,
	// resolved once at Register (nil no-ops without observability) so the
	// invoke path never touches a label map.
	lblInv  *obs.Counter
	lblFail *obs.Counter
	lblLat  *obs.Histogram
	slo     *obs.TenantSLO

	mu          sync.Mutex
	idle        []*instance // LIFO: most recently used first
	running     int
	warming     int  // instances provisioning toward the pool target
	gone        bool // set by Unregister; in-flight provisions release
	placeFails  int64
	poolTarget  int // autoscaler-desired pool size (informational)
	nextInst    int64
	invocations int64
	coldStarts  int64
	throttles   int64
	timeouts    int64
	failures    int64
	// durations is a fixed-capacity ring of the most recent end-to-end
	// invoke latencies (lazily allocated, durationWindow entries). A ring
	// instead of an unbounded append keeps the steady-state invoke path
	// allocation-free and bounds per-function memory on long soaks.
	durBuf   []time.Duration
	durNext  int // next write position
	durCount int // number of valid entries (≤ len(durBuf))
	timeline []ScalePoint
}

// idemEntry is one cached keyed result in a function's dedup window.
type idemEntry struct {
	res     Result
	expires time.Time
}

// idemSweepAt bounds the dedup cache: once the map holds this many entries a
// store first sweeps everything expired, so the cache is O(live window), not
// O(history).
const idemSweepAt = 1 << 12

// dedupLookup returns the cached Result for an idempotency key if it is still
// inside the window. Expired entries are deleted on the way.
func (fn *function) dedupLookup(key string, now time.Time) (Result, bool) {
	if key == "" || fn.cfg.DedupWindow <= 0 {
		return Result{}, false
	}
	fn.idemMu.Lock()
	defer fn.idemMu.Unlock()
	e, ok := fn.idem[key]
	if !ok {
		return Result{}, false
	}
	if now.After(e.expires) {
		delete(fn.idem, key)
		return Result{}, false
	}
	return e.res, true
}

// dedupStore records a successful keyed invocation. Only successes are
// cached: replaying a failure would hide exactly the retry that could fix it.
func (fn *function) dedupStore(key string, res Result, now time.Time) {
	if key == "" || fn.cfg.DedupWindow <= 0 {
		return
	}
	fn.idemMu.Lock()
	defer fn.idemMu.Unlock()
	if fn.idem == nil {
		fn.idem = map[string]idemEntry{}
	} else if len(fn.idem) >= idemSweepAt {
		for k, e := range fn.idem {
			if now.After(e.expires) {
				delete(fn.idem, k)
			}
		}
	}
	fn.idem[key] = idemEntry{res: res, expires: now.Add(fn.cfg.DedupWindow)}
}

// durationWindow is the per-function latency-window size. Every existing
// workload (experiments, demos, soaks) invokes any single function far fewer
// times than this, so percentiles over the window equal percentiles over the
// full history for them; only unbounded growth is cut off.
const durationWindow = 1 << 15

// recordDurationLocked appends a latency sample to the ring. Called with
// fn.mu held.
func (fn *function) recordDurationLocked(d time.Duration) {
	if fn.durBuf == nil {
		fn.durBuf = make([]time.Duration, durationWindow)
	}
	fn.durBuf[fn.durNext] = d
	fn.durNext = (fn.durNext + 1) % len(fn.durBuf)
	if fn.durCount < len(fn.durBuf) {
		fn.durCount++
	}
}

// durationsLocked reconstructs the window oldest-first. Called with fn.mu
// held.
func (fn *function) durationsLocked() []time.Duration {
	out := make([]time.Duration, 0, fn.durCount)
	start := fn.durNext - fn.durCount
	if start < 0 {
		start += len(fn.durBuf)
	}
	for i := 0; i < fn.durCount; i++ {
		out = append(out, fn.durBuf[(start+i)%len(fn.durBuf)])
	}
	return out
}

// Platform is the FaaS control plane plus data plane.
//
// Admission is lock-free on the platform level: request IDs come from an
// atomic counter and the function table sits behind an RWMutex, so invokes
// of different functions never serialize on platform-wide state — only
// Register/Unregister take the write lock. Per-function state is under the
// function's own mutex, held only for bookkeeping (never across cold-start
// placement, start latency or handler execution).
type Platform struct {
	clock simclock.Clock
	meter *billing.Meter

	mu        sync.RWMutex // guards functions, bare, cluster, penalty, adm
	functions map[string]*function
	// bare indexes functions by unqualified name, maintained at
	// Register/Unregister time so bare-name lookup on the invoke hot path is
	// one map probe instead of a registry scan. A nil value marks a name
	// owned by several tenants (ErrAmbiguous).
	bare map[string]*function

	// adm is the per-tenant admission state (nil = admission off).
	adm *admission

	nextReq atomic.Int64

	cluster *scheduler.Cluster
	penalty float64 // slowdown per same-dominant co-resident

	// rng drives retry jitter. Seeded at construction so retry spacing is
	// deterministic under the virtual clock; guarded by rngMu.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Pre-resolved observability handles; nil (all no-ops) until SetObs.
	obsReg         *obs.Registry // kept for per-function breaker gauges
	obsCold        *obs.Counter
	obsWarm        *obs.Counter
	obsThrottled   *obs.Counter
	obsTimeout     *obs.Counter
	obsFailure     *obs.Counter
	obsQueueWait   *obs.Histogram
	obsHandlerLat  *obs.Histogram
	obsInvokeLat   *obs.Histogram
	obsBreakerFast *obs.Counter
	obsBreakerOpen *obs.Counter
	obsRetryWait   *obs.Histogram
	obsAdmShed     *obs.Counter
	obsAdmWait     *obs.Histogram
	obsPrewarmed   *obs.Counter
	obsPlaceFail   *obs.Counter
	obsTracer      *obs.Tracer
	obsSLO         *obs.SLOEngine
	obsInvVec      *obs.CounterVec
	obsFailVec     *obs.CounterVec
	obsLatVec      *obs.HistogramVec
}

// New creates an empty Platform. meter may be nil to disable billing.
func New(clock simclock.Clock, meter *billing.Meter) *Platform {
	return &Platform{
		clock:     clock,
		meter:     meter,
		functions: map[string]*function{},
		bare:      map[string]*function{},
		rng:       rand.New(rand.NewSource(0x7a05)),
	}
}

// SetObs attaches observability instruments. Handles are resolved once here
// so the invoke path touches only atomics; a nil registry yields nil
// instruments, whose methods are no-ops. Call before registering functions
// so their breaker gauges land in the registry.
func (p *Platform) SetObs(r *obs.Registry) {
	p.obsReg = r
	p.obsCold = r.Counter("faas.invoke.cold")
	p.obsWarm = r.Counter("faas.invoke.warm")
	p.obsThrottled = r.Counter("faas.invoke.throttled")
	p.obsTimeout = r.Counter("faas.invoke.timeout")
	p.obsFailure = r.Counter("faas.invoke.failure")
	p.obsQueueWait = r.Histogram("faas.queue.wait")
	p.obsHandlerLat = r.Histogram("faas.handler.latency")
	p.obsInvokeLat = r.Histogram("faas.invoke.latency")
	p.obsBreakerFast = r.Counter("faas.breaker.fastfail")
	p.obsBreakerOpen = r.Counter("faas.breaker.opened")
	p.obsRetryWait = r.Histogram("faas.retry.wait")
	p.obsAdmShed = r.Counter("faas.admission.shed")
	p.obsAdmWait = r.Histogram("faas.admission.wait")
	p.obsPrewarmed = r.Counter("faas.pool.prewarmed")
	p.obsPlaceFail = r.Counter("faas.pool.placefail")
	p.obsTracer = r.Tracer()
	p.obsSLO = r.SLO()
	p.obsInvVec = r.CounterVec("faas.tenant.invocations", "tenant", "function")
	p.obsFailVec = r.CounterVec("faas.tenant.failures", "tenant", "function")
	p.obsLatVec = r.HistogramVec("faas.tenant.latency", "tenant", "function")
	r.SetHelp("faas.tenant.invocations", "Invocations that reached a handler, by tenant and function.")
	r.SetHelp("faas.tenant.failures", "Handler failures and timeouts, by tenant and function.")
	r.SetHelp("faas.tenant.latency", "End-to-end invoke latency, by tenant and function.")
	r.SetHelp("faas.invoke.latency", "End-to-end invoke latency across all tenants.")
}

// Clock returns the platform's clock (handlers and triggers share it).
func (p *Platform) Clock() simclock.Clock { return p.clock }

// AttachCluster binds instance placement to a scheduler cluster: every
// instance occupies its function's Demand on a machine chosen by the
// cluster's policy, and invocations suffer a slowdown of
// 1 + penalty × (same-dominant co-residents) — making §6's bin-packing /
// performance-isolation trade-off measurable (experiments E19, E20). Attach
// before registering functions.
func (p *Platform) AttachCluster(c *scheduler.Cluster, penaltyPerContender float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cluster = c
	p.penalty = penaltyPerContender
}

// Cluster returns the attached cluster (nil if none).
func (p *Platform) Cluster() *scheduler.Cluster {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cluster
}

// qualifiedKey is the registry key for a tenant's function. Function names
// are a namespace per tenant: two tenants may each own a "resize".
func qualifiedKey(tenant, name string) string { return tenant + "/" + name }

// lookupLocked resolves a bare or tenant-qualified ("tenant/name") function
// name under p.mu. A bare name resolves when exactly one tenant owns it —
// the whole pre-tenant-handle API keeps working unchanged — and fails with
// ErrAmbiguous once several tenants deploy the same name, at which point
// callers must qualify (or go through a TenantHandle, which always does).
// Both forms are a single map probe: the bare index is maintained at
// registration time, so the invoke hot path never scans the registry.
func (p *Platform) lookupLocked(name string) (*function, error) {
	if fn, ok := p.functions[name]; ok {
		return fn, nil
	}
	if fn, ok := p.bare[name]; ok {
		if fn == nil {
			return nil, fmt.Errorf("%w: %q", ErrAmbiguous, name)
		}
		return fn, nil
	}
	return nil, fmt.Errorf("%w: %q", ErrNoFunction, name)
}

// rebuildBareLocked recomputes the bare-name index entry for name after a
// registration change. Called with p.mu held for writing; O(registry), but
// only on Unregister — never on the invoke path.
func (p *Platform) rebuildBareLocked(name string) {
	var hit *function
	ambiguous := false
	for _, fn := range p.functions {
		if fn.name == name {
			if hit != nil {
				ambiguous = true
			}
			hit = fn
		}
	}
	switch {
	case ambiguous:
		p.bare[name] = nil
	case hit != nil:
		p.bare[name] = hit
	default:
		delete(p.bare, name)
	}
}

func (p *Platform) lookup(name string) (*function, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.lookupLocked(name)
}

// Register adds a function owned by tenant. With Prewarm > 0, the
// provisioned instances are created (and placed) immediately. Names are
// scoped per tenant: registration collides only with the same tenant's own
// functions, never with (and without revealing) another tenant's.
func (p *Platform) Register(name, tenant string, handler Handler, cfg Config) error {
	key := qualifiedKey(tenant, name)
	p.mu.Lock()
	if _, ok := p.functions[key]; ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	fn := &function{name: name, key: key, tenant: tenant, handler: handler, cfg: cfg.withDefaults(), platform: p}
	if fn.cfg.BreakerThreshold > 0 {
		fn.brkGauge = p.obsReg.Gauge("faas.breaker.state." + name)
	}
	fn.lblInv = p.obsInvVec.With(tenant, name)
	fn.lblFail = p.obsFailVec.With(tenant, name)
	fn.lblLat = p.obsLatVec.With(tenant, name)
	fn.slo = p.obsSLO.Tenant(tenant)
	p.functions[key] = fn
	if _, taken := p.bare[name]; taken {
		p.bare[name] = nil // second tenant deployed the name: now ambiguous
	} else {
		p.bare[name] = fn
	}
	p.mu.Unlock()

	// Provisioned concurrency: instances exist before the first request.
	fn.mu.Lock()
	defer fn.mu.Unlock()
	now := p.clock.Now()
	for i := 0; i < fn.cfg.Prewarm; i++ {
		fn.nextInst++
		inst := &instance{id: fn.nextInst, idleSince: now}
		if err := p.placeInstance(fn, inst); err != nil {
			return err
		}
		fn.idle = append(fn.idle, inst)
	}
	if fn.cfg.Prewarm > 0 {
		fn.recordLocked(now)
	}
	return nil
}

// instKey identifies an instance in the attached cluster. Keyed by the
// tenant-qualified function key so two tenants' same-named functions never
// collide on cluster slots.
func instKey(fnKey string, id int64) string {
	return fmt.Sprintf("%s#%d", fnKey, id)
}

// placeInstance claims cluster capacity for a new instance (no-op without a
// cluster).
func (p *Platform) placeInstance(fn *function, inst *instance) error {
	if p.cluster == nil {
		return nil
	}
	demand := fn.cfg.Demand
	if demand == (scheduler.Resources{}) {
		demand = scheduler.Resources{CPU: 1000, MemMB: float64(fn.cfg.MemoryMB)}
	}
	_, err := p.cluster.PlaceTenant(instKey(fn.key, inst.id), fn.tenant, demand)
	return err
}

// releaseInstance returns an instance's cluster capacity (no-op without a
// cluster).
func (p *Platform) releaseInstance(fn *function, inst *instance) {
	if p.cluster != nil {
		_ = p.cluster.Release(instKey(fn.key, inst.id))
	}
}

// slowdownFor computes an instance's current interference multiplier.
func (p *Platform) slowdownFor(fn *function, inst *instance) float64 {
	if p.cluster == nil || p.penalty <= 0 {
		return 1
	}
	return 1 + p.penalty*float64(p.cluster.ContendersOf(instKey(fn.key, inst.id)))
}

// Unregister removes a function, releasing its idle instances' cluster
// capacity.
func (p *Platform) Unregister(name string) error {
	p.mu.Lock()
	fn, err := p.lookupLocked(name)
	if err != nil {
		p.mu.Unlock()
		return err
	}
	delete(p.functions, fn.key)
	p.rebuildBareLocked(fn.name)
	p.mu.Unlock()

	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.gone = true
	for _, in := range fn.idle {
		p.releaseInstance(fn, in)
	}
	fn.idle = nil
	return nil
}

// Result describes one completed invocation.
type Result struct {
	Output    []byte
	Cold      bool          // the invocation paid a cold start
	Latency   time.Duration // end-to-end: queuing + start + execution
	Billed    time.Duration // duration billed (rounded up)
	RequestID int64
	Attempt   int           // 1-based attempt that produced this result
	RetryWait time.Duration // total backoff slept before this attempt
	TraceID   int64         // causal trace covering this invocation (0 = untraced)
	// Deduped marks a result served from the function's idempotency-key
	// dedup window: the handler did not run and nothing was billed.
	Deduped bool
}

// Invoke runs a function synchronously and returns its result. The calling
// goroutine pays the start latency and execution time on the platform clock.
func (p *Platform) Invoke(name string, payload []byte) (Result, error) {
	return p.invoke(name, payload, 1, obs.TraceCtx{}, "")
}

// InvokeIdem is Invoke carrying an idempotency key: on a function with a
// DedupWindow, a key whose previous invocation succeeded inside the window is
// answered from the cache (Result.Deduped) without executing or billing.
func (p *Platform) InvokeIdem(name, idemKey string, payload []byte) (Result, error) {
	return p.invoke(name, payload, 1, obs.TraceCtx{}, idemKey)
}

// InvokeTrace is Invoke with an inbound causal context: a zero tc roots a
// new trace at this invocation; a valid tc (an orchestrate step, a consuming
// function's handler span) attaches the invocation to the caller's trace.
func (p *Platform) InvokeTrace(name string, payload []byte, tc obs.TraceCtx) (Result, error) {
	return p.invoke(name, payload, 1, tc, "")
}

// InvokeFor runs tenant's function name synchronously, resolving only within
// that tenant's namespace: another tenant's function of the same name is
// indistinguishable from an unregistered one.
func (p *Platform) InvokeFor(tenant, name string, payload []byte) (Result, error) {
	return p.invoke(qualifiedKey(tenant, name), payload, 1, obs.TraceCtx{}, "")
}

// InvokeForTrace is InvokeFor with an inbound causal context.
func (p *Platform) InvokeForTrace(tenant, name string, payload []byte, tc obs.TraceCtx) (Result, error) {
	return p.invoke(qualifiedKey(tenant, name), payload, 1, tc, "")
}

// InvokeForTraceIdem is InvokeFor carrying both an inbound causal context and
// an idempotency key — the full-surface entry point a front door (the HTTP
// gateway) uses: one trace per external request, tenant-scoped resolution,
// and keyed dedup when the caller re-sends a lost reply.
func (p *Platform) InvokeForTraceIdem(tenant, name string, payload []byte, tc obs.TraceCtx, idemKey string) (Result, error) {
	return p.invoke(qualifiedKey(tenant, name), payload, 1, tc, idemKey)
}

// UnregisterFor removes tenant's function name, resolving only within that
// tenant's namespace: another tenant's same-named function is untouched and
// unprobeable (ErrNoFunction either way).
func (p *Platform) UnregisterFor(tenant, name string) error {
	return p.Unregister(qualifiedKey(tenant, name))
}

// StatsFor is Stats resolved within tenant's namespace.
func (p *Platform) StatsFor(tenant, name string) (Stats, error) {
	return p.Stats(qualifiedKey(tenant, name))
}

// FunctionInfo summarizes one registered function for control-plane listings.
type FunctionInfo struct {
	Name   string
	Tenant string
	Config Config
}

// FunctionsFor lists tenant's registered functions, sorted by name. Only the
// tenant's own namespace is visible — the listing can never leak another
// tenant's deployments.
func (p *Platform) FunctionsFor(tenant string) []FunctionInfo {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]FunctionInfo, 0, 4)
	for _, fn := range p.functions {
		if fn.tenant == tenant {
			out = append(out, FunctionInfo{Name: fn.name, Tenant: fn.tenant, Config: fn.cfg})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// InvokeAsyncFor is InvokeAsync resolved within tenant's namespace.
func (p *Platform) InvokeAsyncFor(tenant, name string, payload []byte, done func(Result, error)) {
	p.InvokeAsync(qualifiedKey(tenant, name), payload, done)
}

func (p *Platform) invoke(name string, payload []byte, attempt int, parent obs.TraceCtx, idemKey string) (Result, error) {
	p.mu.RLock()
	fn, err := p.lookupLocked(name)
	adm := p.adm
	p.mu.RUnlock()
	if err != nil {
		return Result{}, err
	}
	reqID := p.nextReq.Add(1)

	// The invoke span roots a new trace (zero parent) or joins the caller's
	// (orchestrate step, async retry wrapper, nested invocation). It covers
	// admission, the breaker gate, queuing, and the handler, so shed and
	// fast-failed requests still yield a (failed) trace.
	span := p.obsTracer.Start(parent, "faas.invoke")

	if len(payload) > fn.cfg.MaxPayload {
		span.EndLabeled(fn.tenant, fn.name, true)
		return Result{}, fmt.Errorf("%w: %d > %d bytes", ErrPayloadSize, len(payload), fn.cfg.MaxPayload)
	}

	// Dedup window: a key that already succeeded inside the window never
	// reaches admission, the breaker, the pool or the meter — the cached
	// reply *is* the invocation, which is what makes keyed retries
	// billing-invisible.
	if res, ok := fn.dedupLookup(idemKey, p.clock.Now()); ok {
		res.RequestID = reqID
		res.Attempt = attempt
		res.Deduped = true
		res.TraceID = span.TraceID()
		span.EndLabeled(fn.tenant, fn.name, false)
		return res, nil
	}

	// Tenant admission: the fair-share token bucket gates (and may queue or
	// shed) the request before any breaker or concurrency state is touched.
	if err := p.admit(adm, fn.tenant); err != nil {
		fn.mu.Lock()
		fn.throttles++
		fn.mu.Unlock()
		span.EndLabeled(fn.tenant, fn.name, true)
		return Result{RequestID: reqID, Attempt: attempt, TraceID: span.TraceID()}, err
	}

	// Circuit-breaker gate: an open breaker sheds the request here, before
	// the concurrency-slot reservation below — fast-fail must not consume
	// capacity the healthy traffic could use.
	gated := fn.cfg.BreakerThreshold > 0
	var probe bool
	if gated {
		var ok bool
		ok, probe = fn.brk.allow(p.clock.Now(), fn.cfg.BreakerCooldown)
		if !ok {
			p.obsBreakerFast.Inc()
			span.EndLabeled(fn.tenant, fn.name, true)
			return Result{RequestID: reqID, Attempt: attempt, TraceID: span.TraceID()}, fmt.Errorf("%w: %q", ErrCircuitOpen, name)
		}
		if probe {
			fn.brkGauge.Set(breakerHalfOpen.gaugeValue())
		}
	}

	start := p.clock.Now()
	qspan := p.obsTracer.Start(span.Ctx(), "faas.queue")

	// Acquire an instance: reuse a live warm one or reserve a cold slot.
	// The reservation (running++) happens under fn.mu so MaxConcurrency
	// holds, but cluster placement runs after the unlock: a slow cold-start
	// placement must not block warm acquisitions on sibling instances.
	fn.mu.Lock()
	fn.reapLocked(start)
	var inst *instance
	cold := false
	if n := len(fn.idle); n > 0 {
		inst = fn.idle[n-1]
		fn.idle = fn.idle[:n-1]
	} else {
		if fn.running+len(fn.idle)+fn.warming >= fn.cfg.MaxConcurrency {
			fn.throttles++
			fn.mu.Unlock()
			p.obsThrottled.Inc()
			if gated {
				p.recordBreaker(fn, outcomeAborted, probe)
			}
			qspan.EndErr(true)
			span.EndLabeled(fn.tenant, fn.name, true)
			return Result{TraceID: span.TraceID()}, fmt.Errorf("%w: %q at %d", ErrThrottled, name, fn.cfg.MaxConcurrency)
		}
		fn.nextInst++
		inst = &instance{id: fn.nextInst}
		cold = true
		fn.coldStarts++
	}
	fn.running++
	fn.invocations++
	fn.recordLocked(start)
	fn.mu.Unlock()

	if cold {
		if err := p.placeWithBudget(fn, inst, start); err != nil {
			// Roll back the reservation; the instance ID is not reused.
			fn.mu.Lock()
			fn.running--
			fn.coldStarts--
			fn.invocations--
			fn.throttles++
			fn.recordLocked(start)
			fn.mu.Unlock()
			p.obsThrottled.Inc()
			if gated {
				p.recordBreaker(fn, outcomeAborted, probe)
			}
			qspan.EndErr(true)
			span.EndLabeled(fn.tenant, fn.name, true)
			if fn.cfg.ColdStartBudget > 0 {
				return Result{TraceID: span.TraceID()}, fmt.Errorf("%w: %q after %v: %v",
					ErrColdStartTimeout, name, fn.cfg.ColdStartBudget, err)
			}
			return Result{TraceID: span.TraceID()}, fmt.Errorf("%w: %q: %v", ErrThrottled, name, err)
		}
	}

	// Pay start latency.
	if cold {
		p.obsCold.Inc()
		p.clock.Sleep(fn.cfg.ColdStart)
	} else {
		p.obsWarm.Inc()
		p.clock.Sleep(fn.cfg.WarmStart)
	}
	execStart := p.clock.Now()
	p.obsQueueWait.Observe(execStart.Sub(start))
	qspan.End()

	// Execute with the time-limit budget. The invocation record comes from
	// the request pool; it is recycled (zeroed) as soon as the handler's
	// outcome has been read out, which is why handlers must not retain *Ctx.
	// The handler span's context rides in the pooled Ctx by value, so the
	// recycle cannot corrupt a trace the handler already propagated.
	hspan := p.obsTracer.Start(span.Ctx(), "faas.handler")
	req := getRequest()
	ctx := &req.ctx
	*ctx = Ctx{
		Clock:        p.clock,
		FunctionName: name,
		Tenant:       fn.tenant,
		RequestID:    reqID,
		InstanceID:   inst.id,
		Attempt:      attempt,
		Trace:        hspan.Ctx(),
		budget:       fn.cfg.Timeout,
		slowdown:     p.slowdownFor(fn, inst),
	}
	out, err := fn.handler(ctx, payload)
	timedOut := ctx.exceeded
	execDur := ctx.worked
	putRequest(req)
	if timedOut {
		err = fmt.Errorf("%w: %q after %v", ErrTimeout, name, fn.cfg.Timeout)
		out = nil
	}
	hspan.EndErr(err != nil)

	end := p.clock.Now()
	p.obsHandlerLat.Observe(end.Sub(execStart))
	p.obsInvokeLat.ObserveTrace(end.Sub(start), span.TraceID())
	fn.lblInv.Inc()
	if err != nil {
		fn.lblFail.Inc()
	}
	fn.lblLat.ObserveTrace(end.Sub(start), span.TraceID())
	fn.slo.Record(end.Sub(start), err != nil)
	if execDur == 0 {
		// Handlers that do no modelled work still bill a minimum granule.
		execDur = time.Millisecond
	}
	if p.meter != nil {
		p.meter.AddInvocation(fn.tenant, execDur, fn.cfg.MemoryMB, end)
	}

	// Return the instance to the warm pool (even after handler errors; the
	// runtime survives user exceptions, as on real platforms).
	fn.mu.Lock()
	fn.running--
	inst.idleSince = end
	if fn.cfg.KeepAlive > 0 || fn.cfg.Prewarm > 0 {
		fn.idle = append(fn.idle, inst)
		fn.reapLocked(end)
	} else {
		p.releaseInstance(fn, inst)
	}
	fn.recordDurationLocked(end.Sub(start))
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			fn.timeouts++
			p.obsTimeout.Inc()
		}
		fn.failures++
		p.obsFailure.Inc()
	}
	fn.recordLocked(end)
	fn.mu.Unlock()

	if gated {
		out := outcomeSuccess
		if err != nil {
			out = outcomeFailure
		}
		p.recordBreaker(fn, out, probe)
	}

	span.EndLabeled(fn.tenant, fn.name, err != nil)

	res := Result{
		Output:    out,
		Cold:      cold,
		Latency:   end.Sub(start),
		Billed:    billing.BilledDuration(execDur),
		RequestID: reqID,
		Attempt:   attempt,
		TraceID:   span.TraceID(),
	}
	if err == nil {
		fn.dedupStore(idemKey, res, end)
	}
	return res, err
}

// asyncRetryBase is the backoff before an async re-execution; it doubles per
// attempt (providers space retries out so transient failures can clear).
const asyncRetryBase = 500 * time.Millisecond

// asyncJitter is the fraction of each async backoff that is randomized, so
// a burst of failed invocations does not re-execute in lockstep.
const asyncJitter = 0.2

// InvokeAsync runs a function on its own goroutine, transparently
// re-executing it on failure — with exponential backoff plus jitter — up to
// the function's MaxRetries (§4.1: "most FaaS platforms re-execute functions
// transparently on failure"). done, if non-nil, receives the final result;
// its Attempt and RetryWait fields surface how many executions it took and
// how long the retries backed off in total.
func (p *Platform) InvokeAsync(name string, payload []byte, done func(Result, error)) {
	p.clock.Go(func() {
		fn, lookupErr := p.lookup(name)
		retries := 0
		if lookupErr == nil {
			retries = fn.cfg.MaxRetries
		}
		// One async submission is one trace: the wrapper span roots it, each
		// execution attempt and each backoff sleep is a child, so a trace of
		// a retried request shows attempt 1 failing, the wait, attempt 2...
		root := p.obsTracer.Start(obs.TraceCtx{}, "faas.invoke.async")
		var res Result
		var err error
		var waited time.Duration
		backoff := asyncRetryBase
		for attempt := 1; attempt <= retries+1; attempt++ {
			if attempt > 1 {
				d := p.jittered(backoff, asyncJitter)
				wspan := p.obsTracer.Start(root.Ctx(), "faas.retry.backoff")
				p.clock.Sleep(d)
				wspan.End()
				waited += d
				backoff *= 2
			}
			res, err = p.invoke(name, payload, attempt, root.Ctx(), "")
			res.Attempt = attempt
			res.RetryWait = waited
			if err == nil {
				break
			}
			// A tenant-level shed is an explicit back-pressure signal:
			// retrying it from inside the platform would amplify exactly
			// the overload admission is shedding (a retry storm). Surface
			// it to the caller instead.
			if errors.Is(err, ErrTenantThrottled) {
				break
			}
		}
		p.obsRetryWait.Observe(waited)
		if root.Active() {
			res.TraceID = root.TraceID()
		}
		if fn != nil {
			root.EndLabeled(fn.tenant, fn.name, err != nil)
		} else {
			root.EndErr(true)
		}
		if done != nil {
			done(res, err)
		}
	})
}

// reapLocked retires idle instances whose keep-alive lapsed, never dropping
// the idle pool below the provisioned (Prewarm) floor. Called with fn.mu
// held — on every acquire and release, so the steady-state scan (nothing
// expired) must not allocate; only an actual reap event builds slices.
func (fn *function) reapLocked(now time.Time) {
	if len(fn.idle) == 0 {
		return
	}
	anyExpired := false
	for _, in := range fn.idle {
		if !(fn.cfg.KeepAlive > 0 && now.Sub(in.idleSince) < fn.cfg.KeepAlive) {
			anyExpired = true
			break
		}
	}
	if !anyExpired {
		return
	}
	var kept, expired []*instance
	for _, in := range fn.idle {
		if fn.cfg.KeepAlive > 0 && now.Sub(in.idleSince) < fn.cfg.KeepAlive {
			kept = append(kept, in)
		} else {
			expired = append(expired, in)
		}
	}
	// Retain the most recently idle expired instances to hold the floor.
	if need := fn.cfg.Prewarm - len(kept); need > 0 {
		if need > len(expired) {
			need = len(expired)
		}
		kept = append(kept, expired[len(expired)-need:]...)
		expired = expired[:len(expired)-need]
	}
	for _, in := range expired {
		fn.platform.releaseInstance(fn, in)
	}
	fn.idle = kept
	if len(expired) > 0 {
		fn.recordLocked(now)
	}
}

// recordLocked samples the instance footprint for the scaling timeline,
// deduplicating by value: a warm acquire/release moves an instance between
// idle and running without changing the footprint, so steady-state traffic
// appends nothing. Consumers (experiment E2) reconstruct a step function
// from the timeline — "last point not after t" — which dedup preserves
// exactly.
func (fn *function) recordLocked(at time.Time) {
	n := fn.running + len(fn.idle)
	if k := len(fn.timeline); k > 0 && fn.timeline[k-1].Instances == n {
		return
	}
	fn.timeline = append(fn.timeline, ScalePoint{At: at, Instances: n})
}

// Stats is a snapshot of one function's counters.
type Stats struct {
	Invocations int64
	ColdStarts  int64
	Throttles   int64
	Timeouts    int64
	Failures    int64
	WarmIdle    int
	Running     int
	Warming     int
	// Durations holds the most recent durationWindow end-to-end invoke
	// latencies, oldest first.
	Durations []time.Duration
	Timeline  []ScalePoint
}

// Stats returns a snapshot for a function, with the warm pool reaped as of
// now (so WarmIdle reflects scale-to-zero).
func (p *Platform) Stats(name string) (Stats, error) {
	fn, err := p.lookup(name)
	if err != nil {
		return Stats{}, err
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.reapLocked(p.clock.Now())
	return Stats{
		Invocations: fn.invocations,
		ColdStarts:  fn.coldStarts,
		Throttles:   fn.throttles,
		Timeouts:    fn.timeouts,
		Failures:    fn.failures,
		WarmIdle:    len(fn.idle),
		Running:     fn.running,
		Warming:     fn.warming,
		Durations:   fn.durationsLocked(),
		Timeline:    append([]ScalePoint{}, fn.timeline...),
	}, nil
}

// PercentileOK returns the q-th percentile (0..100) of ds, with ok=false
// when the window is empty — an empty window has no percentile, and callers
// that render one must say so rather than print a silent 0.
func PercentileOK(ds []time.Duration, q float64) (time.Duration, bool) {
	if len(ds) == 0 {
		return 0, false
	}
	s := append([]time.Duration{}, ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q / 100 * float64(len(s)-1))
	return s[idx], true
}

// Percentile returns the q-th percentile (0..100) of ds. It returns 0 for an
// empty slice; use PercentileOK to distinguish that from a real 0.
func Percentile(ds []time.Duration, q float64) time.Duration {
	v, _ := PercentileOK(ds, q)
	return v
}
