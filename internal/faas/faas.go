// Package faas implements the Function-as-a-Service platform at the centre
// of the paper (§2, §4.1): users register stateless functions and the
// platform provides demand-driven execution — instances are provisioned on
// demand (paying a cold-start penalty), kept warm for a keep-alive window,
// and reaped back to zero when idle — with limited execution times,
// per-function concurrency limits, transparent retry of failed asynchronous
// invocations, and fine-grained billing.
//
// Function compute is modelled, not burned: handlers call Ctx.Work(d) to
// consume d of simulated execution time on the shared Clock, which also
// enforces the platform's execution time limit deterministically.
package faas

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"math/rand"

	"repro/internal/billing"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// Errors returned by the platform.
var (
	ErrNoFunction  = errors.New("faas: function not registered")
	ErrExists      = errors.New("faas: function already registered")
	ErrThrottled   = errors.New("faas: concurrency limit reached")
	ErrTimeout     = errors.New("faas: execution time limit exceeded")
	ErrPayloadSize = errors.New("faas: payload too large")
	ErrCircuitOpen = errors.New("faas: circuit breaker open")
)

// Handler is the user function body. It may call Ctx.Work to model compute
// and may use any platform service captured in its closure; its returned
// bytes are the invocation result.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Config parameterizes one registered function.
type Config struct {
	// MemoryMB sizes the instance; it scales billing (GB-seconds).
	// Default 128.
	MemoryMB int
	// Timeout is the execution time limit ("limited execution times",
	// §4.1). Default 60s.
	Timeout time.Duration
	// MaxConcurrency caps simultaneously running instances. Default 1000.
	MaxConcurrency int
	// KeepAlive is how long an idle warm instance survives before the
	// platform reclaims it. Default 10m, matching observed provider
	// behaviour ([180]). Zero means instances are never reused.
	KeepAlive time.Duration
	// ColdStart is the provisioning+runtime-init latency of a new
	// instance. Default 250ms, in the range measured by [112]/[180].
	ColdStart time.Duration
	// WarmStart is the dispatch latency onto an existing instance.
	// Default 1ms.
	WarmStart time.Duration
	// MaxRetries is how many times InvokeAsync re-executes a failed
	// invocation. Default 2 (i.e. up to 3 attempts), as AWS Lambda does
	// for asynchronous events.
	MaxRetries int
	// MaxPayload bounds the request payload size in bytes. Default 6 MB.
	MaxPayload int
	// Prewarm keeps at least this many instances warm at all times
	// ("provisioned concurrency"): they are created at registration and
	// exempt from keep-alive reaping, trading standing cost for zero cold
	// starts — the §6 SLA-predictability lever.
	Prewarm int
	// Demand is the instance's resource vector when the platform is
	// attached to a cluster (AttachCluster). Zero means {CPU: 1000,
	// MemMB: MemoryMB}.
	Demand scheduler.Resources
	// BreakerThreshold arms a per-function circuit breaker: after this many
	// consecutive handler failures the breaker opens and invokes fast-fail
	// with ErrCircuitOpen — before reserving a concurrency slot — until a
	// half-open probe succeeds. Zero (default) disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before letting a
	// single half-open probe through. Default 30s when the breaker is armed.
	BreakerCooldown time.Duration
}

func (c Config) withDefaults() Config {
	if c.MemoryMB == 0 {
		c.MemoryMB = 128
	}
	if c.Timeout == 0 {
		c.Timeout = 60 * time.Second
	}
	if c.MaxConcurrency == 0 {
		c.MaxConcurrency = 1000
	}
	if c.KeepAlive == 0 {
		c.KeepAlive = 10 * time.Minute
	}
	if c.ColdStart == 0 {
		c.ColdStart = 250 * time.Millisecond
	}
	if c.WarmStart == 0 {
		c.WarmStart = time.Millisecond
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 2
	} else if c.MaxRetries < 0 {
		c.MaxRetries = 0 // negative disables async retry
	}
	if c.MaxPayload == 0 {
		c.MaxPayload = 6 << 20
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown == 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	return c
}

// Ctx is passed to every handler invocation.
type Ctx struct {
	Clock        simclock.Clock
	FunctionName string
	Tenant       string
	RequestID    int64
	InstanceID   int64 // identity of the warm instance running this request
	Attempt      int   // 1-based attempt number under async retry

	budget   time.Duration // remaining execution time
	worked   time.Duration
	exceeded bool
	slowdown float64 // interference multiplier (≥1) from co-resident contenders
}

// Work consumes d of simulated execution time. If the function's remaining
// time budget is smaller than d, Work consumes only the budget and marks the
// invocation as timed out; the platform then fails it with ErrTimeout.
// When the platform is attached to a cluster, the wall-clock cost is
// inflated by the instance's interference slowdown (§6 "SLA Guarantees":
// contention makes performance unpredictable) while the budget is charged
// the nominal amount.
func (c *Ctx) Work(d time.Duration) {
	if d <= 0 || c.exceeded {
		return
	}
	if d >= c.budget {
		d = c.budget
		c.exceeded = true
	}
	c.budget -= d
	c.worked += d
	wall := d
	if c.slowdown > 1 {
		wall = time.Duration(float64(d) * c.slowdown)
	}
	c.Clock.Sleep(wall)
}

// Slowdown returns the invocation's interference multiplier (1 when the
// platform has no cluster attached or the instance has no contenders).
func (c *Ctx) Slowdown() float64 {
	if c.slowdown < 1 {
		return 1
	}
	return c.slowdown
}

// TimedOut reports whether the invocation has exhausted its time budget.
func (c *Ctx) TimedOut() bool { return c.exceeded }

// Remaining returns the unconsumed execution time budget.
func (c *Ctx) Remaining() time.Duration { return c.budget }

type instance struct {
	id        int64
	idleSince time.Time
}

// ScalePoint is one sample of a function's instance footprint over time,
// recorded at every scaling-relevant event (experiment E2).
type ScalePoint struct {
	At        time.Time
	Instances int // warm idle + running
}

type function struct {
	name     string
	tenant   string
	handler  Handler
	cfg      Config
	platform *Platform

	brk      breaker    // armed when cfg.BreakerThreshold > 0
	brkGauge *obs.Gauge // per-function breaker state; nil → no-op

	mu          sync.Mutex
	idle        []*instance // LIFO: most recently used first
	running     int
	nextInst    int64
	invocations int64
	coldStarts  int64
	throttles   int64
	timeouts    int64
	failures    int64
	durations   []time.Duration // end-to-end invoke latencies
	timeline    []ScalePoint
}

// Platform is the FaaS control plane plus data plane.
//
// Admission is lock-free on the platform level: request IDs come from an
// atomic counter and the function table sits behind an RWMutex, so invokes
// of different functions never serialize on platform-wide state — only
// Register/Unregister take the write lock. Per-function state is under the
// function's own mutex, held only for bookkeeping (never across cold-start
// placement, start latency or handler execution).
type Platform struct {
	clock simclock.Clock
	meter *billing.Meter

	mu        sync.RWMutex // guards functions, cluster, penalty
	functions map[string]*function

	nextReq atomic.Int64

	cluster *scheduler.Cluster
	penalty float64 // slowdown per same-dominant co-resident

	// rng drives retry jitter. Seeded at construction so retry spacing is
	// deterministic under the virtual clock; guarded by rngMu.
	rngMu sync.Mutex
	rng   *rand.Rand

	// Pre-resolved observability handles; nil (all no-ops) until SetObs.
	obsReg         *obs.Registry // kept for per-function breaker gauges
	obsCold        *obs.Counter
	obsWarm        *obs.Counter
	obsThrottled   *obs.Counter
	obsTimeout     *obs.Counter
	obsFailure     *obs.Counter
	obsQueueWait   *obs.Histogram
	obsHandlerLat  *obs.Histogram
	obsInvokeLat   *obs.Histogram
	obsBreakerFast *obs.Counter
	obsBreakerOpen *obs.Counter
	obsRetryWait   *obs.Histogram
}

// New creates an empty Platform. meter may be nil to disable billing.
func New(clock simclock.Clock, meter *billing.Meter) *Platform {
	return &Platform{
		clock:     clock,
		meter:     meter,
		functions: map[string]*function{},
		rng:       rand.New(rand.NewSource(0x7a05)),
	}
}

// SetObs attaches observability instruments. Handles are resolved once here
// so the invoke path touches only atomics; a nil registry yields nil
// instruments, whose methods are no-ops. Call before registering functions
// so their breaker gauges land in the registry.
func (p *Platform) SetObs(r *obs.Registry) {
	p.obsReg = r
	p.obsCold = r.Counter("faas.invoke.cold")
	p.obsWarm = r.Counter("faas.invoke.warm")
	p.obsThrottled = r.Counter("faas.invoke.throttled")
	p.obsTimeout = r.Counter("faas.invoke.timeout")
	p.obsFailure = r.Counter("faas.invoke.failure")
	p.obsQueueWait = r.Histogram("faas.queue.wait")
	p.obsHandlerLat = r.Histogram("faas.handler.latency")
	p.obsInvokeLat = r.Histogram("faas.invoke.latency")
	p.obsBreakerFast = r.Counter("faas.breaker.fastfail")
	p.obsBreakerOpen = r.Counter("faas.breaker.opened")
	p.obsRetryWait = r.Histogram("faas.retry.wait")
}

// Clock returns the platform's clock (handlers and triggers share it).
func (p *Platform) Clock() simclock.Clock { return p.clock }

// AttachCluster binds instance placement to a scheduler cluster: every
// instance occupies its function's Demand on a machine chosen by the
// cluster's policy, and invocations suffer a slowdown of
// 1 + penalty × (same-dominant co-residents) — making §6's bin-packing /
// performance-isolation trade-off measurable (experiments E19, E20). Attach
// before registering functions.
func (p *Platform) AttachCluster(c *scheduler.Cluster, penaltyPerContender float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cluster = c
	p.penalty = penaltyPerContender
}

// Cluster returns the attached cluster (nil if none).
func (p *Platform) Cluster() *scheduler.Cluster {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.cluster
}

// Register adds a function owned by tenant. With Prewarm > 0, the
// provisioned instances are created (and placed) immediately.
func (p *Platform) Register(name, tenant string, handler Handler, cfg Config) error {
	p.mu.Lock()
	if _, ok := p.functions[name]; ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrExists, name)
	}
	fn := &function{name: name, tenant: tenant, handler: handler, cfg: cfg.withDefaults(), platform: p}
	if fn.cfg.BreakerThreshold > 0 {
		fn.brkGauge = p.obsReg.Gauge("faas.breaker.state." + name)
	}
	p.functions[name] = fn
	p.mu.Unlock()

	// Provisioned concurrency: instances exist before the first request.
	fn.mu.Lock()
	defer fn.mu.Unlock()
	now := p.clock.Now()
	for i := 0; i < fn.cfg.Prewarm; i++ {
		fn.nextInst++
		inst := &instance{id: fn.nextInst, idleSince: now}
		if err := p.placeInstance(fn, inst); err != nil {
			return err
		}
		fn.idle = append(fn.idle, inst)
	}
	if fn.cfg.Prewarm > 0 {
		fn.recordLocked(now)
	}
	return nil
}

// instKey identifies an instance in the attached cluster.
func instKey(fnName string, id int64) string {
	return fmt.Sprintf("%s#%d", fnName, id)
}

// placeInstance claims cluster capacity for a new instance (no-op without a
// cluster).
func (p *Platform) placeInstance(fn *function, inst *instance) error {
	if p.cluster == nil {
		return nil
	}
	demand := fn.cfg.Demand
	if demand == (scheduler.Resources{}) {
		demand = scheduler.Resources{CPU: 1000, MemMB: float64(fn.cfg.MemoryMB)}
	}
	_, err := p.cluster.PlaceTenant(instKey(fn.name, inst.id), fn.tenant, demand)
	return err
}

// releaseInstance returns an instance's cluster capacity (no-op without a
// cluster).
func (p *Platform) releaseInstance(fn *function, inst *instance) {
	if p.cluster != nil {
		_ = p.cluster.Release(instKey(fn.name, inst.id))
	}
}

// slowdownFor computes an instance's current interference multiplier.
func (p *Platform) slowdownFor(fn *function, inst *instance) float64 {
	if p.cluster == nil || p.penalty <= 0 {
		return 1
	}
	return 1 + p.penalty*float64(p.cluster.ContendersOf(instKey(fn.name, inst.id)))
}

// Unregister removes a function, releasing its idle instances' cluster
// capacity.
func (p *Platform) Unregister(name string) error {
	p.mu.Lock()
	fn, ok := p.functions[name]
	if !ok {
		p.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoFunction, name)
	}
	delete(p.functions, name)
	p.mu.Unlock()

	fn.mu.Lock()
	defer fn.mu.Unlock()
	for _, in := range fn.idle {
		p.releaseInstance(fn, in)
	}
	fn.idle = nil
	return nil
}

// Result describes one completed invocation.
type Result struct {
	Output    []byte
	Cold      bool          // the invocation paid a cold start
	Latency   time.Duration // end-to-end: queuing + start + execution
	Billed    time.Duration // duration billed (rounded up)
	RequestID int64
	Attempt   int           // 1-based attempt that produced this result
	RetryWait time.Duration // total backoff slept before this attempt
}

// Invoke runs a function synchronously and returns its result. The calling
// goroutine pays the start latency and execution time on the platform clock.
func (p *Platform) Invoke(name string, payload []byte) (Result, error) {
	return p.invoke(name, payload, 1)
}

func (p *Platform) invoke(name string, payload []byte, attempt int) (Result, error) {
	p.mu.RLock()
	fn, ok := p.functions[name]
	p.mu.RUnlock()
	if !ok {
		return Result{}, fmt.Errorf("%w: %q", ErrNoFunction, name)
	}
	reqID := p.nextReq.Add(1)

	if len(payload) > fn.cfg.MaxPayload {
		return Result{}, fmt.Errorf("%w: %d > %d bytes", ErrPayloadSize, len(payload), fn.cfg.MaxPayload)
	}

	// Circuit-breaker gate: an open breaker sheds the request here, before
	// the concurrency-slot reservation below — fast-fail must not consume
	// capacity the healthy traffic could use.
	gated := fn.cfg.BreakerThreshold > 0
	var probe bool
	if gated {
		var ok bool
		ok, probe = fn.brk.allow(p.clock.Now(), fn.cfg.BreakerCooldown)
		if !ok {
			p.obsBreakerFast.Inc()
			return Result{RequestID: reqID, Attempt: attempt}, fmt.Errorf("%w: %q", ErrCircuitOpen, name)
		}
		if probe {
			fn.brkGauge.Set(breakerHalfOpen.gaugeValue())
		}
	}

	start := p.clock.Now()

	// Acquire an instance: reuse a live warm one or reserve a cold slot.
	// The reservation (running++) happens under fn.mu so MaxConcurrency
	// holds, but cluster placement runs after the unlock: a slow cold-start
	// placement must not block warm acquisitions on sibling instances.
	fn.mu.Lock()
	fn.reapLocked(start)
	var inst *instance
	cold := false
	if n := len(fn.idle); n > 0 {
		inst = fn.idle[n-1]
		fn.idle = fn.idle[:n-1]
	} else {
		if fn.running+len(fn.idle) >= fn.cfg.MaxConcurrency {
			fn.throttles++
			fn.mu.Unlock()
			p.obsThrottled.Inc()
			if gated {
				p.recordBreaker(fn, outcomeAborted, probe)
			}
			return Result{}, fmt.Errorf("%w: %q at %d", ErrThrottled, name, fn.cfg.MaxConcurrency)
		}
		fn.nextInst++
		inst = &instance{id: fn.nextInst}
		cold = true
		fn.coldStarts++
	}
	fn.running++
	fn.invocations++
	fn.recordLocked(start)
	fn.mu.Unlock()

	if cold {
		if err := p.placeInstance(fn, inst); err != nil {
			// Roll back the reservation; the instance ID is not reused.
			fn.mu.Lock()
			fn.running--
			fn.coldStarts--
			fn.invocations--
			fn.throttles++
			fn.recordLocked(start)
			fn.mu.Unlock()
			p.obsThrottled.Inc()
			if gated {
				p.recordBreaker(fn, outcomeAborted, probe)
			}
			return Result{}, fmt.Errorf("%w: %q: %v", ErrThrottled, name, err)
		}
	}

	// Pay start latency.
	if cold {
		p.obsCold.Inc()
		p.clock.Sleep(fn.cfg.ColdStart)
	} else {
		p.obsWarm.Inc()
		p.clock.Sleep(fn.cfg.WarmStart)
	}
	execStart := p.clock.Now()
	p.obsQueueWait.Observe(execStart.Sub(start))

	// Execute with the time-limit budget.
	ctx := &Ctx{
		Clock:        p.clock,
		FunctionName: name,
		Tenant:       fn.tenant,
		RequestID:    reqID,
		InstanceID:   inst.id,
		Attempt:      attempt,
		budget:       fn.cfg.Timeout,
		slowdown:     p.slowdownFor(fn, inst),
	}
	out, err := fn.handler(ctx, payload)
	if ctx.exceeded {
		err = fmt.Errorf("%w: %q after %v", ErrTimeout, name, fn.cfg.Timeout)
		out = nil
	}

	end := p.clock.Now()
	p.obsHandlerLat.Observe(end.Sub(execStart))
	p.obsInvokeLat.Observe(end.Sub(start))
	execDur := ctx.worked
	if execDur == 0 {
		// Handlers that do no modelled work still bill a minimum granule.
		execDur = time.Millisecond
	}
	if p.meter != nil {
		p.meter.AddInvocation(fn.tenant, execDur, fn.cfg.MemoryMB, end)
	}

	// Return the instance to the warm pool (even after handler errors; the
	// runtime survives user exceptions, as on real platforms).
	fn.mu.Lock()
	fn.running--
	inst.idleSince = end
	if fn.cfg.KeepAlive > 0 || fn.cfg.Prewarm > 0 {
		fn.idle = append(fn.idle, inst)
		fn.reapLocked(end)
	} else {
		p.releaseInstance(fn, inst)
	}
	fn.durations = append(fn.durations, end.Sub(start))
	if err != nil {
		if errors.Is(err, ErrTimeout) {
			fn.timeouts++
			p.obsTimeout.Inc()
		}
		fn.failures++
		p.obsFailure.Inc()
	}
	fn.recordLocked(end)
	fn.mu.Unlock()

	if gated {
		out := outcomeSuccess
		if err != nil {
			out = outcomeFailure
		}
		p.recordBreaker(fn, out, probe)
	}

	res := Result{
		Output:    out,
		Cold:      cold,
		Latency:   end.Sub(start),
		Billed:    billing.BilledDuration(execDur),
		RequestID: reqID,
		Attempt:   attempt,
	}
	return res, err
}

// asyncRetryBase is the backoff before an async re-execution; it doubles per
// attempt (providers space retries out so transient failures can clear).
const asyncRetryBase = 500 * time.Millisecond

// asyncJitter is the fraction of each async backoff that is randomized, so
// a burst of failed invocations does not re-execute in lockstep.
const asyncJitter = 0.2

// InvokeAsync runs a function on its own goroutine, transparently
// re-executing it on failure — with exponential backoff plus jitter — up to
// the function's MaxRetries (§4.1: "most FaaS platforms re-execute functions
// transparently on failure"). done, if non-nil, receives the final result;
// its Attempt and RetryWait fields surface how many executions it took and
// how long the retries backed off in total.
func (p *Platform) InvokeAsync(name string, payload []byte, done func(Result, error)) {
	p.clock.Go(func() {
		p.mu.RLock()
		fn, ok := p.functions[name]
		p.mu.RUnlock()
		retries := 0
		if ok {
			retries = fn.cfg.MaxRetries
		}
		var res Result
		var err error
		var waited time.Duration
		backoff := asyncRetryBase
		for attempt := 1; attempt <= retries+1; attempt++ {
			if attempt > 1 {
				d := p.jittered(backoff, asyncJitter)
				p.clock.Sleep(d)
				waited += d
				backoff *= 2
			}
			res, err = p.invoke(name, payload, attempt)
			res.Attempt = attempt
			res.RetryWait = waited
			if err == nil {
				break
			}
		}
		p.obsRetryWait.Observe(waited)
		if done != nil {
			done(res, err)
		}
	})
}

// reapLocked retires idle instances whose keep-alive lapsed, never dropping
// the idle pool below the provisioned (Prewarm) floor. Called with fn.mu
// held.
func (fn *function) reapLocked(now time.Time) {
	var kept, expired []*instance
	for _, in := range fn.idle {
		if fn.cfg.KeepAlive > 0 && now.Sub(in.idleSince) < fn.cfg.KeepAlive {
			kept = append(kept, in)
		} else {
			expired = append(expired, in)
		}
	}
	// Retain the most recently idle expired instances to hold the floor.
	if need := fn.cfg.Prewarm - len(kept); need > 0 {
		if need > len(expired) {
			need = len(expired)
		}
		kept = append(kept, expired[len(expired)-need:]...)
		expired = expired[:len(expired)-need]
	}
	for _, in := range expired {
		fn.platform.releaseInstance(fn, in)
	}
	fn.idle = kept
	if len(expired) > 0 {
		fn.recordLocked(now)
	}
}

func (fn *function) recordLocked(at time.Time) {
	fn.timeline = append(fn.timeline, ScalePoint{At: at, Instances: fn.running + len(fn.idle)})
}

// Stats is a snapshot of one function's counters.
type Stats struct {
	Invocations int64
	ColdStarts  int64
	Throttles   int64
	Timeouts    int64
	Failures    int64
	WarmIdle    int
	Running     int
	Durations   []time.Duration
	Timeline    []ScalePoint
}

// Stats returns a snapshot for a function, with the warm pool reaped as of
// now (so WarmIdle reflects scale-to-zero).
func (p *Platform) Stats(name string) (Stats, error) {
	p.mu.RLock()
	fn, ok := p.functions[name]
	p.mu.RUnlock()
	if !ok {
		return Stats{}, fmt.Errorf("%w: %q", ErrNoFunction, name)
	}
	fn.mu.Lock()
	defer fn.mu.Unlock()
	fn.reapLocked(p.clock.Now())
	return Stats{
		Invocations: fn.invocations,
		ColdStarts:  fn.coldStarts,
		Throttles:   fn.throttles,
		Timeouts:    fn.timeouts,
		Failures:    fn.failures,
		WarmIdle:    len(fn.idle),
		Running:     fn.running,
		Durations:   append([]time.Duration{}, fn.durations...),
		Timeline:    append([]ScalePoint{}, fn.timeline...),
	}, nil
}

// Percentile returns the q-th percentile (0..100) of ds. It returns 0 for an
// empty slice.
func Percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration{}, ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(q / 100 * float64(len(s)-1))
	return s[idx]
}
