package faas

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/billing"
	"repro/internal/errs"
	"repro/internal/obs"
)

// Admission is the platform's tenant-facing ingress control (§2, §6
// "SLA Guarantees"): a weighted fair-share token bucket per tenant, with
// bounded queuing and load shedding, so one tenant's burst cannot starve
// another's steady traffic. Each tenant's bucket refills at
// RatePerSecond × weight/Σweights; a request that finds no token either
// queues (deterministically, by reserving a future token and sleeping until
// its refill instant) or — when the projected wait exceeds the tenant's
// MaxWait or its queue bound is full — is shed with ErrThrottled before any
// instance capacity is consumed. Sheds are counted per tenant in obs
// (faas.admission.shed.<tenant>) and metered to billing
// (billing.ResShedRequests), so throttling is visible on the invoice.

// TenantLimit configures one tenant's share of the admission rate.
// Zero-valued fields inherit the AdmissionConfig defaults.
type TenantLimit struct {
	// Weight is the tenant's fair-share weight. The tenant's admitted rate
	// is RatePerSecond × Weight / (sum of all tenants' weights). Default 1.
	Weight float64
	// Burst is the token bucket depth: how many requests above the
	// steady-state rate the tenant may fire instantaneously.
	Burst float64
	// MaxQueue bounds how many of the tenant's requests may wait for a
	// token at once; arrivals beyond it are shed.
	MaxQueue int
	// MaxWait bounds the projected token wait; a request that would wait
	// longer is shed immediately (no goodput is gained by queueing it).
	MaxWait time.Duration
}

// AdmissionConfig enables per-tenant admission on a Platform.
type AdmissionConfig struct {
	// RatePerSecond is the total admitted request rate shared by all
	// tenants in proportion to their weights. Required (> 0).
	RatePerSecond float64
	// Burst is the default per-tenant bucket depth. Default 10.
	Burst float64
	// MaxQueue is the default per-tenant queue bound. Default 64.
	MaxQueue int
	// MaxWait is the default bound on projected token wait. Default 1s.
	MaxWait time.Duration
}

func (c AdmissionConfig) withDefaults() AdmissionConfig {
	if c.Burst <= 0 {
		c.Burst = 10
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = time.Second
	}
	return c
}

// tenantBucket is one tenant's admission state. Protected by admission.mu.
type tenantBucket struct {
	limit  TenantLimit
	tokens float64   // may go negative: each queued request holds a reservation
	last   time.Time // last refill instant
	queued int       // requests sleeping until their reserved token refills
	shed   int64
	admits int64

	shedCtr *obs.Counter // faas.admission.shed.<tenant>; nil → no-op
}

func (b *tenantBucket) weight() float64 {
	if b.limit.Weight <= 0 {
		return 1
	}
	return b.limit.Weight
}

// admission is the platform-wide admission state.
type admission struct {
	mu          sync.Mutex
	cfg         AdmissionConfig
	buckets     map[string]*tenantBucket
	totalWeight float64
}

// effective returns the tenant's limit with config defaults applied.
func (a *admission) effective(l TenantLimit) TenantLimit {
	if l.Weight <= 0 {
		l.Weight = 1
	}
	if l.Burst <= 0 {
		l.Burst = a.cfg.Burst
	}
	if l.MaxQueue <= 0 {
		l.MaxQueue = a.cfg.MaxQueue
	}
	if l.MaxWait <= 0 {
		l.MaxWait = a.cfg.MaxWait
	}
	return l
}

// bucketLocked returns (creating if needed) the tenant's bucket. a.mu held.
func (a *admission) bucketLocked(p *Platform, tenant string, now time.Time) *tenantBucket {
	b := a.buckets[tenant]
	if b == nil {
		b = &tenantBucket{limit: a.effective(TenantLimit{}), last: now}
		b.tokens = b.limit.Burst // a fresh tenant starts with a full bucket
		b.shedCtr = p.obsReg.Counter("faas.admission.shed." + tenant)
		a.buckets[tenant] = b
		a.totalWeight += b.weight()
	}
	return b
}

// SetAdmission enables (or reconfigures) per-tenant admission. Pass it
// before traffic; existing per-tenant limits are preserved across
// reconfiguration. A zero RatePerSecond disables admission entirely.
func (p *Platform) SetAdmission(cfg AdmissionConfig) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cfg.RatePerSecond <= 0 {
		p.adm = nil
		return
	}
	cfg = cfg.withDefaults()
	if p.adm == nil {
		p.adm = &admission{cfg: cfg, buckets: map[string]*tenantBucket{}}
		return
	}
	p.adm.mu.Lock()
	p.adm.cfg = cfg
	p.adm.mu.Unlock()
}

// SetTenantLimit sets one tenant's fair-share weight, burst and queue
// bounds. No-op unless SetAdmission has enabled admission.
func (p *Platform) SetTenantLimit(tenant string, l TenantLimit) {
	p.mu.RLock()
	a := p.adm
	p.mu.RUnlock()
	if a == nil {
		return
	}
	now := p.clock.Now()
	a.mu.Lock()
	defer a.mu.Unlock()
	b := a.bucketLocked(p, tenant, now)
	a.totalWeight -= b.weight()
	b.limit = a.effective(l)
	a.totalWeight += b.weight()
	if b.tokens > b.limit.Burst {
		b.tokens = b.limit.Burst
	}
}

// AdmissionShed returns how many of the tenant's requests admission has shed
// (0 when admission is off or the tenant is unknown).
func (p *Platform) AdmissionShed(tenant string) int64 {
	p.mu.RLock()
	a := p.adm
	p.mu.RUnlock()
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.buckets[tenant]; b != nil {
		return b.shed
	}
	return 0
}

// AdmissionAdmitted returns how many of the tenant's requests admission let
// through.
func (p *Platform) AdmissionAdmitted(tenant string) int64 {
	p.mu.RLock()
	a := p.adm
	p.mu.RUnlock()
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if b := a.buckets[tenant]; b != nil {
		return b.admits
	}
	return 0
}

// admit gates one request from tenant through admission. It returns after
// the request holds a token — sleeping on the platform clock while queued —
// or fails with ErrThrottled when the request must be shed. a may be nil
// (admission off).
func (p *Platform) admit(a *admission, tenant string) error {
	if a == nil {
		return nil
	}
	now := p.clock.Now()
	a.mu.Lock()
	b := a.bucketLocked(p, tenant, now)
	// Refill at the tenant's weighted share of the platform rate.
	rate := a.cfg.RatePerSecond * b.weight() / a.totalWeight
	if el := now.Sub(b.last); el > 0 {
		b.tokens += rate * el.Seconds()
		if b.tokens > b.limit.Burst {
			b.tokens = b.limit.Burst
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		b.admits++
		a.mu.Unlock()
		return nil
	}
	// No token: compute the wait until this request's reservation refills.
	// The bucket goes negative one unit per queued request, so waits space
	// out FIFO at the tenant's admitted rate without any condition variable
	// — deterministic under the virtual clock.
	wait := time.Duration((1 - b.tokens) / rate * float64(time.Second))
	if b.queued >= b.limit.MaxQueue || wait > b.limit.MaxWait {
		b.shed++
		b.shedCtr.Inc()
		a.mu.Unlock()
		p.obsAdmShed.Inc()
		if p.meter != nil {
			p.meter.Add(billing.Record{Tenant: tenant, Resource: billing.ResShedRequests, Units: 1, At: now})
		}
		return fmt.Errorf("%w: tenant %q shed by admission (wait %v, queued %d)",
			ErrTenantThrottled, tenant, wait, b.queued)
	}
	b.tokens--
	b.admits++
	b.queued++
	a.mu.Unlock()

	p.clock.Sleep(wait)
	p.obsAdmWait.Observe(wait)

	a.mu.Lock()
	b.queued--
	a.mu.Unlock()
	return nil
}

// ErrTenantThrottled marks a request shed by per-tenant admission. It wraps
// the same platform-wide errs.ErrThrottled identity as ErrThrottled, so
// errors.Is(err, core.ErrThrottled) matches either; matching this sentinel
// distinguishes tenant-level shedding from a function's concurrency cap.
var ErrTenantThrottled = fmt.Errorf("faas: tenant rate limit reached (%w)", errs.ErrThrottled)
