package faas

import (
	"encoding/json"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/queue"
)

// BindQueue wires a queue as an event source for a function (the Lambda+SQS
// ETL pattern of §3.1): every send triggers a dispatch that receives up to
// batch messages, invokes the function once per message, and acks messages
// whose invocation succeeded. Failed messages stay on the queue and redeliver
// after the visibility timeout, feeding the dead-letter redrive policy.
func BindQueue(p *Platform, qs *queue.Service, queueName, fnName string, batch int) error {
	if batch <= 0 {
		batch = 1
	}
	return qs.OnSend(queueName, func(qn string) {
		deliveries, err := qs.Receive(qn, batch)
		if err != nil {
			return
		}
		for _, d := range deliveries {
			d := d
			p.InvokeAsync(fnName, d.Body, func(_ Result, err error) {
				if err == nil {
					_ = qs.Ack(qn, d.ReceiptHandle)
				}
			})
		}
	})
}

// BlobEvent is the JSON payload delivered to blob-triggered functions.
type BlobEvent struct {
	Type   string `json:"type"` // "put" or "delete"
	Bucket string `json:"bucket"`
	Key    string `json:"key"`
	Size   int    `json:"size"`
	ETag   string `json:"etag"`
}

// BindBlob invokes a function for every mutation in the given bucket (the
// event-driven web/data-processing pattern of §3.1: an object lands in
// storage and a function reacts).
func BindBlob(p *Platform, store *blob.Store, bucketName, fnName string) {
	store.Subscribe(func(e blob.Event) {
		if e.Object.Bucket != bucketName {
			return
		}
		typ := "put"
		if e.Type == blob.EventDelete {
			typ = "delete"
		}
		payload, _ := json.Marshal(BlobEvent{
			Type:   typ,
			Bucket: e.Object.Bucket,
			Key:    e.Object.Key,
			Size:   e.Object.Size,
			ETag:   e.Object.ETag,
		})
		p.InvokeAsync(fnName, payload, nil)
	})
}

// DriveReport collects the outcomes of a Drive run.
type DriveReport struct {
	mu      sync.Mutex
	results []Result
	errs    []error
	wg      sync.WaitGroup
	p       *Platform
}

// Results returns the collected invocation results (call after Wait).
func (r *DriveReport) Results() []Result {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Result{}, r.results...)
}

// Errors returns the collected invocation errors (call after Wait).
func (r *DriveReport) Errors() []error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]error{}, r.errs...)
}

// Wait blocks (clock-aware) until every driven invocation has completed.
func (r *DriveReport) Wait() {
	r.p.clock.BlockOn(r.wg.Wait)
}

// Drive replays an arrival schedule against a function: at each offset in
// arrivals (relative to now), one asynchronous invocation fires. It is the
// bridge from workload generators to the platform used by the elasticity,
// cold-start and cost experiments (E1-E3).
func Drive(p *Platform, fnName string, payload []byte, arrivals []time.Duration) *DriveReport {
	rep := &DriveReport{p: p}
	rep.wg.Add(len(arrivals))
	p.clock.Go(func() {
		var prev time.Duration
		for _, at := range arrivals {
			p.clock.Sleep(at - prev)
			prev = at
			p.InvokeAsync(fnName, payload, func(res Result, err error) {
				rep.mu.Lock()
				rep.results = append(rep.results, res)
				if err != nil {
					rep.errs = append(rep.errs, err)
				}
				rep.mu.Unlock()
				rep.wg.Done()
			})
		}
	})
	return rep
}
