package experiments

import (
	"reflect"
	"sync"
	"time"

	"repro/internal/autoscale"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

// elasticDigest is everything one seeded burst run produced. Two runs with
// the same seed must be identical — the control loop is deterministic under
// the virtual clock.
type elasticDigest struct {
	Served       int
	Cold         int
	SteadyP99    time.Duration
	BurstP99     time.Duration
	Converge     time.Duration
	PeakDesired  int
	PeakMachines int
	FinalPool    int
	FinalMach    int
	Grown        int64
	Drained      int64
}

// fairnessDigest compares a well-behaved tenant's latency with and without a
// flooding neighbour under weighted fair-share admission.
type fairnessDigest struct {
	VictimSoloP99 time.Duration
	VictimP99     time.Duration
	VictimShed    int64
	AttackerShed  int64
	AttackerOK    int
}

// E27Elastic: §4.1 "resource elasticity" / §6 SLAs — the elastic control
// plane under a 10× open-loop burst. The autoscaler must panic up so p99
// re-converges to ≤2× the steady-state value within the measured window,
// then scale instances and machines back to zero after idle; weighted
// fair-share admission must shed a flooding tenant while a well-behaved
// tenant's p99 stays within 1.5× of running alone.
func E27Elastic() Table {
	const seed = 11
	d1 := runBurstConverge(seed)
	d2 := runBurstConverge(seed)
	fair := runFairness(seed)
	deterministic := reflect.DeepEqual(d1, d2)

	conv := "never"
	if d1.Converge >= 0 {
		conv = f("%v", d1.Converge)
	}
	table := Table{
		ID:      "E27",
		Title:   "Elastic control plane: burst convergence, scale-to-zero, fair-share shedding",
		Claim:   "§4.1/§6: the platform allocates on bursts and de-allocates to zero on idle, while per-tenant admission keeps one tenant's flood from another's latency",
		Columns: []string{"measure", "value", "criterion", "pass"},
		Rows: [][]string{
			{"steady p99", f("%v", d1.SteadyP99), "baseline", "-"},
			{"burst p99", f("%v", d1.BurstP99), "cold starts expected", "-"},
			{"re-converged ≤2x steady in", conv, "within window", pass(d1.Converge >= 0)},
			{"peak desired instances", f("%d", d1.PeakDesired), "> 1 (panic scaled up)", pass(d1.PeakDesired > 1)},
			{"peak machines", f("%d", d1.PeakMachines), "> 1 (fleet grew)", pass(d1.PeakMachines > 1)},
			{"pool after idle", f("%d", d1.FinalPool), "0 (scale-to-zero)", pass(d1.FinalPool == 0)},
			{"machines after idle", f("%d", d1.FinalMach), "0 (fleet drained)", pass(d1.FinalMach == 0)},
			{"victim p99 solo / contended", f("%v / %v", fair.VictimSoloP99, fair.VictimP99), "≤1.5x solo", pass(fair.VictimP99 <= fair.VictimSoloP99*3/2)},
			{"attacker shed / victim shed", f("%d / %d", fair.AttackerShed, fair.VictimShed), "shed > 0 / 0", pass(fair.AttackerShed > 0 && fair.VictimShed == 0)},
		},
	}
	table.Notes = f("seed %d: %d served (%d cold); autoscaler drained %d surplus machines after idle; identical rerun digest: %v",
		seed, d1.Served, d1.Cold, d1.Drained, deterministic)
	return table
}

func pass(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// runBurstConverge drives one seeded 10× burst through a full platform with
// the autoscaler on: 2 rps steady, 20 rps for 10s, steady again, then idle.
func runBurstConverge(seed int64) elasticDigest {
	const (
		baseRPS   = 2.0
		burstAt   = 10 * time.Second
		burstFor  = 10 * time.Second
		window    = 40 * time.Second
		steadyCut = 10 * time.Second
	)
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	p.FaaS.AttachCluster(scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{}), 0)
	demo := p.Tenant("demo")

	// Steady load is uniform (500ms spacing: no accidental concurrency, so
	// the baseline p99 is a warm invoke); the 10× surge is Poisson on top.
	// +500µs keeps every arrival off the controller's 1s tick grid: an
	// arrival can then never race a same-instant control evaluation, so the
	// virtual-clock run is order-deterministic.
	arrivals := workload.OffsetArrivals(workload.UniformArrivals(workload.Constant(baseRPS), window), 500*time.Microsecond)
	surge := workload.OffsetArrivals(workload.Arrivals(workload.Constant(9*baseRPS), burstFor, seed), burstAt+500*time.Microsecond)
	arrivals = append(arrivals, surge...)

	var (
		mu        sync.Mutex
		wg        sync.WaitGroup
		latAll    []time.Duration
		perSecond = make([][]time.Duration, int(window/time.Second)+1)
		d         elasticDigest
	)
	var ctrl *autoscale.Controller
	v.Run(func() {
		if err := demo.Register("api", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			ctx.Work(250 * time.Millisecond)
			return nil, nil
		}, faas.Config{
			MemoryMB:        128,
			ColdStart:       time.Second,
			KeepAlive:       8 * time.Second,
			ColdStartBudget: 10 * time.Second,
		}); err != nil {
			panic(err)
		}
		ctrl = p.EnableAutoscale(autoscale.Config{
			TickInterval:     time.Second,
			StableWindow:     20 * time.Second,
			PanicWindow:      3 * time.Second,
			ScaleToZeroAfter: 5 * time.Second,
			DrainDelay:       4 * time.Second,
		})
		defer ctrl.Stop()

		for _, at := range arrivals {
			at := at
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				v.Sleep(at)
				res, err := demo.Invoke("api", nil)
				if err != nil {
					return
				}
				mu.Lock()
				latAll = append(latAll, res.Latency)
				if sec := int(at / time.Second); sec < len(perSecond) {
					perSecond[sec] = append(perSecond[sec], res.Latency)
				}
				if res.Cold {
					d.Cold++
				}
				mu.Unlock()
			})
		}
		// Sample the controller's view once per tick while the burst runs.
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			for i := 0; i < int(window/time.Second); i++ {
				v.Sleep(time.Second)
				st := ctrl.Status()
				if st.Machines > d.PeakMachines {
					d.PeakMachines = st.Machines
				}
				for _, fs := range st.Functions {
					if fs.Name == "api" && fs.Desired > d.PeakDesired {
						d.PeakDesired = fs.Desired
					}
				}
			}
		})
		v.BlockOn(wg.Wait)

		v.Sleep(30 * time.Second) // idle: scale-to-zero, then drain
		st := ctrl.Status()
		d.FinalMach = st.Machines
		d.FinalPool, _ = p.FaaS.PoolTarget("api")
	})

	d.Served = len(latAll)
	// Steady p99 from the warm pre-burst phase (skip the first second's
	// unavoidable cold start), then convergence of the per-second series
	// measured from burst end.
	var steady []time.Duration
	for sec := 1; sec < int(steadyCut/time.Second); sec++ {
		steady = append(steady, perSecond[sec]...)
	}
	d.SteadyP99 = faas.Percentile(steady, 99)
	var burst []time.Duration
	for sec := int(burstAt / time.Second); sec < int((burstAt+burstFor)/time.Second); sec++ {
		burst = append(burst, perSecond[sec]...)
	}
	d.BurstP99 = faas.Percentile(burst, 99)
	series := make([]time.Duration, len(perSecond))
	for i, b := range perSecond {
		if p99, ok := faas.PercentileOK(b, 99); ok {
			series[i] = p99
		}
	}
	// Measured from burst start: how long cold-start pain lasted before the
	// panic-scaled pool brought p99 back under 2× the warm baseline.
	d.Converge = workload.ConvergenceTime(series, d.SteadyP99, 2, burstAt)
	d.Grown = p.Obs.CounterValue("autoscale.machines.grown")
	d.Drained = p.Obs.CounterValue("autoscale.machines.drained")
	return d
}

// runFairness measures a well-behaved tenant's p99 twice — alone, then next
// to a tenant flooding 20× the platform's admitted rate — under weighted
// fair-share admission. The flood must be shed, not absorbed into the
// victim's latency.
func runFairness(seed int64) fairnessDigest {
	const (
		window    = 20 * time.Second
		victimRPS = 4.0
		floodRPS  = 100.0
	)
	victimLat := func(withAttacker bool) ([]time.Duration, int64, int64, int) {
		p, v := core.NewVirtual(core.Options{})
		defer v.Close()
		p.FaaS.SetAdmission(faas.AdmissionConfig{
			RatePerSecond: 12,
			Burst:         6,
			MaxQueue:      8,
			MaxWait:       500 * time.Millisecond,
		})
		victim := p.Tenant("victim")
		attacker := p.Tenant("attacker")

		var (
			mu   sync.Mutex
			wg   sync.WaitGroup
			lats []time.Duration
			aOK  int
		)
		v.Run(func() {
			h := func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
				ctx.Work(50 * time.Millisecond)
				return nil, nil
			}
			cfg := faas.Config{MemoryMB: 128, ColdStart: 50 * time.Millisecond}
			if err := victim.Register("v", h, cfg); err != nil {
				panic(err)
			}
			if err := attacker.Register("a", h, cfg); err != nil {
				panic(err)
			}
			drive := func(t *core.TenantHandle, fn string, arrivals []time.Duration, ok *int) {
				for _, at := range arrivals {
					at := at
					wg.Add(1)
					v.Go(func() {
						defer wg.Done()
						v.Sleep(at)
						res, err := t.Invoke(fn, nil)
						if err != nil {
							return
						}
						mu.Lock()
						if ok != nil {
							*ok++
						} else {
							lats = append(lats, res.Latency)
						}
						mu.Unlock()
					})
				}
			}
			drive(victim, "v", workload.OffsetArrivals(workload.Arrivals(workload.Constant(victimRPS), window, seed), 300*time.Microsecond), nil)
			if withAttacker {
				drive(attacker, "a", workload.OffsetArrivals(workload.Arrivals(workload.Constant(floodRPS), window, seed+1), 700*time.Microsecond), &aOK)
			}
			v.BlockOn(wg.Wait)
		})
		return lats, victim.Shed(), attacker.Shed(), aOK
	}

	var d fairnessDigest
	solo, _, _, _ := victimLat(false)
	d.VictimSoloP99 = faas.Percentile(solo, 99)
	contended, vShed, aShed, aOK := victimLat(true)
	d.VictimP99 = faas.Percentile(contended, 99)
	d.VictimShed = vShed
	d.AttackerShed = aShed
	d.AttackerOK = aOK
	return d
}
