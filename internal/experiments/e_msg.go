package experiments

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pulsar"
	"repro/internal/sketch"
	"repro/internal/workload"
)

// E6PulsarSketch: §4.3.1 / Figure 3 — stateful streaming analytics as a
// Pulsar function: a Count-Min sketch over a skewed event stream, estimates
// checked against exact counts and the sketch's εN bound.
func E6PulsarSketch() Table {
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	const events = 6000
	keys := workload.ZipfKeys(500, 1.3, events, 6)
	truth := map[string]uint64{}
	for _, k := range keys {
		truth[k]++
	}

	cm := sketch.NewCountMinWH(272, 5) // ε≈0.01, δ≈0.007
	var processed int64
	var wall time.Duration
	v.Run(func() {
		if err := p.Pulsar.CreateTopic("events", 4); err != nil {
			panic(err)
		}
		rf, err := p.Pulsar.StartFunction(pulsar.FunctionConfig{
			Name:   "countmin",
			Inputs: []string{"events"},
		}, func(ctx *pulsar.FnContext, m pulsar.Message) ([]byte, error) {
			cm.Add(m.Key, 1) // single instance: the sketch is the function's state (Fig. 3)
			return nil, nil
		})
		if err != nil {
			panic(err)
		}
		prod, err := p.Pulsar.CreateProducer("events")
		if err != nil {
			panic(err)
		}
		start := v.Now()
		for _, k := range keys {
			if _, err := prod.SendKey(k, nil); err != nil {
				panic(err)
			}
		}
		for i := 0; i < 100000 && rf.Processed() < events; i++ {
			v.Sleep(5 * time.Millisecond)
		}
		wall = v.Now().Sub(start)
		processed = rf.Processed()
		rf.Stop()
	})

	// Top keys by true count.
	type kc struct {
		k string
		c uint64
	}
	var all []kc
	for k, c := range truth {
		all = append(all, kc{k, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].k < all[j].k
	})
	table := Table{
		ID:      "E6",
		Title:   "Count-Min as a Pulsar function over a Zipf stream (Fig. 3)",
		Claim:   "§4.3.1: Pulsar functions support stateful analytics on real-time streams",
		Columns: []string{"key", "true", "estimate", "within εN"},
	}
	bound := cm.ErrorBound()
	for _, e := range all[:8] {
		est := cm.Estimate(e.k)
		table.Rows = append(table.Rows, []string{
			e.k, f("%d", e.c), f("%d", est), f("%v", est >= e.c && est-e.c <= bound),
		})
	}
	rate := float64(processed) / wall.Seconds()
	table.Notes = f("%d events processed in %v simulated (%.0f msg/s through broker+ledger); εN bound = %d", processed, wall.Round(time.Millisecond), rate, bound)
	return table
}

// E15PulsarDurability: §4.3 — Pulsar's unified queuing+pub-sub with durable,
// replicated storage and failure recovery: kill the owning broker and one
// bookie mid-stream; every acked message must still be consumed.
func E15PulsarDurability() Table {
	p, v := core.NewVirtual(core.Options{Brokers: 3, Bookies: 4})
	defer v.Close()
	table := Table{
		ID:      "E15",
		Title:   "Message durability across broker and bookie failures",
		Claim:   "§4.3: brokers are stateless (ownership migrates); bookies replicate entries (quorum survives failures)",
		Columns: []string{"phase", "published", "received", "lost"},
	}
	v.Run(func() {
		if err := p.Pulsar.CreateTopic("t", 0); err != nil {
			panic(err)
		}
		prod, err := p.Pulsar.CreateProducer("t")
		if err != nil {
			panic(err)
		}
		cons, err := p.Pulsar.Subscribe("t", "s", pulsar.Exclusive, pulsar.Earliest)
		if err != nil {
			panic(err)
		}
		recvAll := func() map[int64]bool {
			seen := map[int64]bool{}
			for {
				m, ok := cons.Receive(50 * time.Millisecond)
				if !ok {
					return seen
				}
				seen[m.Seq] = true
				_ = cons.Ack(m)
			}
		}

		// Phase 1: steady state.
		pub := 0
		for i := 0; i < 100; i++ {
			if _, err := prod.Send([]byte{byte(i)}); err == nil {
				pub++
			}
		}
		got := recvAll()
		table.Rows = append(table.Rows, []string{"steady", f("%d", pub), f("%d", len(got)), f("%d", pub-len(got))})

		// Phase 2: kill the owning broker; keep publishing.
		if data, held := p.Coord.LockHolder("/pulsar/owners/t"); held {
			if b, ok := p.Pulsar.Broker(string(data)); ok {
				b.SetDown(true)
			}
		}
		pub = 0
		for i := 0; i < 100; i++ {
			if _, err := prod.Send([]byte{byte(i)}); err == nil {
				pub++
			}
		}
		got = recvAll()
		table.Rows = append(table.Rows, []string{"broker killed", f("%d", pub), f("%d", len(got)), f("%d", maxInt(0, pub-len(got)))})

		// Phase 3: kill one bookie (quorum 2/4 still intact for most stripes).
		if bk, ok := p.Ledgers.Bookie("bookie-0"); ok {
			bk.SetDown(true)
		}
		pub = 0
		for i := 0; i < 100; i++ {
			if _, err := prod.Send([]byte{byte(i)}); err == nil {
				pub++
			}
		}
		got = recvAll()
		table.Rows = append(table.Rows, []string{"bookie killed", f("%d", pub), f("%d", len(got)), f("%d", maxInt(0, pub-len(got)))})
	})
	table.Notes = "received counts unacked redeliveries as well; 'lost' must be 0 in every phase"
	return table
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
