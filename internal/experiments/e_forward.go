package experiments

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/ledger"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// E19Security: §6 "Security" — "functions of different tenants may run on
// the same physical hardware, increasing the likelihood of traditional
// side-channel attacks like Rowhammer". Compare placement policies by their
// cross-tenant co-residency exposure and machine cost: consolidation and
// isolation pull in opposite directions.
func E19Security() Table {
	table := Table{
		ID:      "E19",
		Title:   "Cross-tenant co-residency exposure vs machine cost",
		Claim:   "§6: co-residency creates side-channel exposure; hardware-level tenant isolation trades machines for safety",
		Columns: []string{"policy", "machines", "cross-tenant pairs", "mean util"},
	}
	capVec := scheduler.Resources{CPU: 4000, MemMB: 16384}
	demand := scheduler.Resources{CPU: 900, MemMB: 2048} // 4 per machine
	const tenants, perTenant = 6, 8
	for _, pol := range []scheduler.Policy{scheduler.FirstFit{}, scheduler.Complementary{}, scheduler.TenantDedicated{}} {
		c := scheduler.NewCluster(capVec, pol)
		// Interleaved arrivals across tenants — the realistic shared-pool
		// admission order.
		for i := 0; i < tenants*perTenant; i++ {
			tenant := fmt.Sprintf("tenant-%d", i%tenants)
			if _, err := c.PlaceTenant(fmt.Sprintf("i%d", i), tenant, demand); err != nil {
				panic(err)
			}
		}
		table.Rows = append(table.Rows, []string{
			pol.Name(), f("%d", c.ActiveMachines()), f("%d", c.CrossTenantPairs()), f("%.2f", c.MeanUtilization()),
		})
	}
	table.Notes = "tenant-dedicated must reach 0 exposure; the machine-count delta is the price of hardware isolation"
	return table
}

// E20SLA: §6 "SLA Guarantees" — "higher resource sharing also leads to
// decreased performance predictability"; future bin-packing should ensure
// co-located functions "do not contend with each other". Invocations suffer
// a slowdown per same-dominant co-resident; compare packing policies' tail
// latency on a fixed fleet.
func E20SLA() Table {
	table := Table{
		ID:      "E20",
		Title:   "Invocation tail latency under contention-aware placement",
		Claim:   "§6: packing density trades machines for tail latency; complementary packing recovers predictability",
		Columns: []string{"policy", "machines used", "p50", "p99", "p99/p50"},
	}
	for _, pol := range []scheduler.Policy{scheduler.FirstFit{}, scheduler.Complementary{}, scheduler.WorstFit{}} {
		p, v := core.NewVirtual(core.Options{})
		cluster := scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, pol)
		cluster.Grow(16) // the provider fleet exists before placements
		p.FaaS.AttachCluster(cluster, 0.5)

		reg := func(name string, demand scheduler.Resources) {
			if err := p.Tenant("acme").Register(name, func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
				ctx.Work(100 * time.Millisecond)
				return nil, nil
			}, faas.Config{Demand: demand, ColdStart: time.Millisecond, KeepAlive: time.Hour, MaxRetries: -1}); err != nil {
				panic(err)
			}
		}
		reg("cpu-fn", scheduler.Resources{CPU: 1900, MemMB: 512})
		reg("mem-fn", scheduler.Resources{CPU: 150, MemMB: 7500})

		var durations []time.Duration
		v.Run(func() {
			repA := faas.Drive(p.FaaS, "cpu-fn", nil, make([]time.Duration, 8))
			repB := faas.Drive(p.FaaS, "mem-fn", nil, make([]time.Duration, 8))
			repA.Wait()
			repB.Wait()
			for _, r := range append(repA.Results(), repB.Results()...) {
				durations = append(durations, r.Latency)
			}
		})
		used := 0
		for _, m := range cluster.Machines() {
			if m.Used != (scheduler.Resources{}) {
				used++
			}
		}
		p50 := faas.Percentile(durations, 50)
		p99 := faas.Percentile(durations, 99)
		v.Close()
		table.Rows = append(table.Rows, []string{
			pol.Name(), f("%d", used),
			p50.Round(time.Millisecond).String(), p99.Round(time.Millisecond).String(),
			f("%.2f", float64(p99)/float64(p50)),
		})
	}
	table.Notes = "slowdown model: +50% work per same-dominant co-resident; 100ms nominal function"
	return table
}

// E21TieredStorage: §4.3 lists tiered storage among Pulsar's key features:
// older segments move to cheap object storage, transparently readable.
// Compare hot (bookie) vs offloaded (blob) read latency and the bookie
// space reclaimed.
func E21TieredStorage() Table {
	v := simclock.NewVirtual()
	defer v.Close()
	meta := coord.NewStore(v)
	sys := ledger.NewSystem(v, meta)
	for i := 0; i < 3; i++ {
		sys.AddBookie(ledger.NewBookie(f("bookie-%d", i)))
	}
	sys.AppendLatency = time.Millisecond
	sys.ReadLatency = time.Millisecond // bookie RPC
	store := blob.New(v, nil, blob.S3Latency)

	table := Table{
		ID:      "E21",
		Title:   "Ledger reads: hot bookie tier vs offloaded blob tier",
		Claim:   "§4.3: tiered storage keeps old segments readable on cheap object storage while freeing bookie space",
		Columns: []string{"tier", "first-entry latency", "full replay", "bookie entries held"},
	}
	const entries = 200
	v.Run(func() {
		if err := store.CreateBucket("tier", "pulsar"); err != nil {
			panic(err)
		}
		w, err := sys.CreateLedger(3, 2, 2)
		if err != nil {
			panic(err)
		}
		payload := make([]byte, 512)
		for i := 0; i < entries; i++ {
			if _, err := w.Append(payload); err != nil {
				panic(err)
			}
		}
		if err := w.Close(); err != nil {
			panic(err)
		}
		bookieHeld := func() int {
			n := 0
			for i := 0; i < 3; i++ {
				b, _ := sys.Bookie(f("bookie-%d", i))
				n += b.EntryCount()
			}
			return n
		}

		measure := func(label string) {
			start := v.Now()
			r, err := sys.OpenTiered(w.ID(), store)
			if err != nil {
				panic(err)
			}
			if _, err := r.ReadTiered(0); err != nil {
				panic(err)
			}
			first := v.Now().Sub(start)
			for i := int64(1); i < entries; i++ {
				if _, err := r.ReadTiered(i); err != nil {
					panic(err)
				}
			}
			table.Rows = append(table.Rows, []string{
				label, first.String(), v.Now().Sub(start).String(), f("%d", bookieHeld()),
			})
		}
		measure("hot (bookies)")
		if err := sys.Offload(w.ID(), store, "tier"); err != nil {
			panic(err)
		}
		measure("cold (blob)")
	})
	table.Notes = "cold first access pays the blob fetch of the whole segment (then reads from the cached copy); bookie space drops to zero after offload"
	return table
}

// E22Provisioned: §6 "SLA Guarantees" / [112] — provisioned concurrency
// (pre-warmed instances) removes cold starts from the request path for
// sporadic traffic, at a standing capacity cost.
func E22Provisioned() Table {
	table := Table{
		ID:      "E22",
		Title:   "Sporadic traffic: on-demand vs provisioned concurrency",
		Claim:   "§6/[112]: keeping provisioned instances warm removes cold-start latency at a standing cost",
		Columns: []string{"config", "invocations", "cold", "p50", "p99", "standing instances"},
	}
	const gap = 15 * time.Minute // beyond the 10m keep-alive: every hit is cold on-demand
	arrivals := make([]time.Duration, 20)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * gap
	}
	for _, prewarm := range []int{0, 2} {
		p, v := core.NewVirtual(core.Options{})
		if err := p.Tenant("t").Register("spiky", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			ctx.Work(20 * time.Millisecond)
			return nil, nil
		}, faas.Config{Prewarm: prewarm, ColdStart: 400 * time.Millisecond, WarmStart: time.Millisecond}); err != nil {
			panic(err)
		}
		v.Run(func() {
			rep := faas.Drive(p.FaaS, "spiky", nil, arrivals)
			rep.Wait()
		})
		st, _ := p.FaaS.Stats("spiky")
		v.Close()
		cfg := "on-demand"
		if prewarm > 0 {
			cfg = f("provisioned=%d", prewarm)
		}
		table.Rows = append(table.Rows, []string{
			cfg, f("%d", st.Invocations), f("%d", st.ColdStarts),
			faas.Percentile(st.Durations, 50).Round(time.Millisecond).String(),
			faas.Percentile(st.Durations, 99).Round(time.Millisecond).String(),
			f("%d", st.WarmIdle),
		})
	}
	table.Notes = "provisioned instances never reap below the floor: zero cold starts, but capacity is held between requests"
	return table
}
