package experiments

import (
	"fmt"
	"strings"
)

// asciiChart renders a small bar chart of series values — the closest thing
// to a paper figure a terminal gets. Values are scaled to width columns.
func asciiChart(labels []string, values []float64, width int, unit string) string {
	if len(labels) == 0 || len(labels) != len(values) {
		return ""
	}
	max := 0.0
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	var b strings.Builder
	for i, v := range values {
		bar := 0
		if max > 0 {
			bar = int(v / max * float64(width))
		}
		if v > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "  %-*s |%s%s %.4g%s\n", labelW, labels[i],
			strings.Repeat("█", bar), strings.Repeat(" ", width-bar), v, unit)
	}
	return b.String()
}
