package experiments

import (
	"time"

	"repro/internal/billing"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/orchestrate"
)

// E7Orchestration: §4.2's three properties of orchestration frameworks
// (Lopez et al. [137]): functions are black boxes, a composition is itself a
// function, and the user "should only be charged for the basic functions,
// not the composition as well, i.e., they should not be double-billed".
func E7Orchestration() Table {
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	table := Table{
		ID:      "E7",
		Title:   "Composition billing vs direct invocation billing",
		Claim:   "§4.2: composing functions must not double-bill; a composition is itself a function",
		Columns: []string{"workflow", "tasks", "direct GB-s", "composed GB-s", "double-billed"},
	}
	reg := func(name string, work time.Duration) {
		if err := p.Tenant("acme").Register(name, func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			ctx.Work(work)
			return in, nil
		}, faas.Config{MemoryMB: 512, ColdStart: time.Millisecond, MaxRetries: -1}); err != nil {
			panic(err)
		}
	}
	v.Run(func() {
		reg("extract", 100*time.Millisecond)
		reg("transform", 200*time.Millisecond)
		reg("load", 100*time.Millisecond)

		e := p.Orchestrator
		if err := e.RegisterComposition("etl", orchestrate.Chain(
			orchestrate.Task("extract"),
			orchestrate.Task("transform"),
			orchestrate.Task("load"),
		)); err != nil {
			panic(err)
		}
		// A nested composition: parallel etl over two branches, then load.
		if err := e.RegisterComposition("fanout-etl", orchestrate.Chain(
			orchestrate.Parallel(orchestrate.Task("etl"), orchestrate.Task("etl")),
			orchestrate.Task("load"),
		)); err != nil {
			panic(err)
		}

		cases := []struct {
			name    string
			tasks   []string // the basic functions the workflow invokes
			machine orchestrate.State
		}{
			{"chain(3)", []string{"extract", "transform", "load"}, orchestrate.Task("etl")},
			{"nested parallel", []string{"extract", "transform", "load", "extract", "transform", "load", "load"}, orchestrate.Task("fanout-etl")},
		}
		for _, c := range cases {
			p.Meter.Reset()
			for _, fn := range c.tasks {
				if _, err := p.Tenant("acme").Invoke(fn, []byte("x")); err != nil {
					panic(err)
				}
			}
			direct := p.Meter.Units("acme", billing.ResInvocationGBs)

			p.Meter.Reset()
			if _, err := e.Execute(c.machine, []byte("x")); err != nil {
				panic(err)
			}
			composed := p.Meter.Units("acme", billing.ResInvocationGBs)

			table.Rows = append(table.Rows, []string{
				c.name, f("%d", len(c.tasks)),
				f("%.4f", direct), f("%.4f", composed),
				f("%v", composed > direct+1e-9),
			})
		}
	})
	table.Notes = "composition executes the same basic invocations; the orchestration layer itself meters nothing"
	return table
}
