package experiments

import (
	"math"
	"time"

	"repro/internal/billing"
)

// E25Evolution: the paper's framing arc (§1, §2.1) — "bare metal → virtual
// machines → containers → serverless": each virtualization step shortens
// provisioning and shrinks the billing granule, so a bursty tenant pays ever
// closer to actual use. One reference workload (bursty web traffic, peak ≫
// mean) is billed under each layer's granularity.
func E25Evolution() Table {
	const (
		window     = 30 * 24 * time.Hour // one month
		peakRPS    = 20.0                // hourly burst height
		trickleRPS = 0.5                 // sparse background traffic
		period     = time.Hour
		burstLen   = 6 * time.Minute // 10% duty cycle
		perUnit    = 10.0            // requests/s one CPU-unit sustains
		workDur    = 100 * time.Millisecond
	)
	price := billing.DefaultPricing()
	unitHour := price[billing.ResVMHours] // one CPU-unit-hour at VM list price

	periods := window.Hours() // one burst per hour
	burstReqs := peakRPS * burstLen.Seconds() * periods
	trickleReqs := trickleRPS * window.Seconds()
	peakUnits := math.Ceil((peakRPS + trickleRPS) / perUnit)

	// layer describes one step of the ladder: how fast capacity appears and
	// the time quantum it is billed in.
	type layer struct {
		name      string
		provision time.Duration
		granule   time.Duration
		// billedUnitHours computes capacity-hours billed for the window.
		billedUnitHours func() float64
	}

	layers := []layer{
		{
			// Bare metal: purchased/racked for the peak; billed (amortized)
			// whether used or not, all month.
			name: "bare metal", provision: 14 * 24 * time.Hour, granule: 30 * 24 * time.Hour,
			billedUnitHours: func() float64 { return peakUnits * window.Hours() },
		},
		{
			// VMs: elastically acquired, but hourly granules and minutes of
			// boot mean capacity is held for every hour containing a burst —
			// with hourly bursts, that is every hour, at burst peak size.
			name: "virtual machines", provision: 3 * time.Minute, granule: time.Hour,
			billedUnitHours: func() float64 { return peakUnits * window.Hours() },
		},
		{
			// Containers: second-granularity billing. Bursts hold peak
			// capacity for the burst duration (+1 granule); each sparse
			// trickle request still holds one unit for a full one-second
			// granule — 10x its actual 100ms of work.
			name: "containers", provision: 2 * time.Second, granule: time.Second,
			billedUnitHours: func() float64 {
				burst := periods * peakUnits * (burstLen + time.Second).Hours()
				offBurstTrickle := trickleRPS * (window.Seconds() - periods*burstLen.Seconds())
				return burst + offBurstTrickle*time.Second.Hours()
			},
		},
		{
			// Serverless: 100ms granules of per-request execution — pay for
			// request-time, not held capacity.
			name: "serverless (FaaS)", provision: 250 * time.Millisecond, granule: billing.BillingGranularity,
			billedUnitHours: func() float64 {
				return (burstReqs + trickleReqs) * billing.BilledDuration(workDur).Hours()
			},
		},
	}

	table := Table{
		ID:      "E25",
		Title:   "The §2.1 ladder: provisioning latency, billing granule, monthly cost",
		Claim:   "§1/§2.1: bare metal → VMs → containers → serverless; each step shrinks provisioning time and the billing granule, closing the gap between paid and used",
		Columns: []string{"layer", "provisioning", "billing granule", "billed unit-hours", "monthly cost", "paid/used"},
	}
	// Actual capacity-time consumed: every request occupies one unit for its
	// 100ms of work.
	usedUnitHours := (burstReqs + trickleReqs) * workDur.Hours()
	for _, l := range layers {
		billed := l.billedUnitHours()
		table.Rows = append(table.Rows, []string{
			l.name,
			l.provision.String(),
			l.granule.String(),
			f("%.0f", billed),
			f("$%.2f", billed*unitHour),
			f("%.1fx", billed/usedUnitHours),
		})
	}
	table.Notes = f("reference workload: hourly 6-minute bursts to %.0f rps over a %.1f rps trickle; one unit serves %.0f rps at $%.3f/unit-hour",
		peakRPS, trickleRPS, perUnit, unitHour)
	return table
}
