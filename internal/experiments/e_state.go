package experiments

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/jiffy"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// E4EphemeralState: §4.4 "Existing persistent stores unfortunately do not
// provide the required performance for such exchange". Producer→consumer
// state handoff through Jiffy vs the blob store, across payload sizes.
func E4EphemeralState() Table {
	table := Table{
		ID:      "E4",
		Title:   "Inter-task state exchange: Jiffy vs persistent blob store",
		Claim:   "§4.4: persistent stores lack the performance ephemeral state exchange needs",
		Columns: []string{"payload", "jiffy put+get", "blob put+get", "speedup"},
	}
	for _, size := range []int{1 << 10, 64 << 10, 1 << 20} {
		p, v := core.NewVirtual(core.Options{JiffyBlockSize: 4 << 20})
		payload := workload.Payload(size, 3)
		var jiffyDur, blobDur time.Duration
		v.Run(func() {
			ns, err := p.Jiffy.CreateNamespace("/exchange", jiffy.NamespaceOptions{Lease: -1})
			if err != nil {
				panic(err)
			}
			if err := p.Blob.CreateBucket("exchange", "t"); err != nil {
				panic(err)
			}
			const reps = 20
			start := v.Now()
			for i := 0; i < reps; i++ {
				key := f("k%d", i)
				if err := ns.Put(key, payload); err != nil {
					panic(err)
				}
				if _, err := ns.Get(key); err != nil {
					panic(err)
				}
			}
			jiffyDur = v.Now().Sub(start) / reps
			start = v.Now()
			for i := 0; i < reps; i++ {
				key := f("k%d", i)
				if _, err := p.Blob.Put("exchange", key, payload, blob.PutOptions{}); err != nil {
					panic(err)
				}
				if _, _, err := p.Blob.Get("exchange", key); err != nil {
					panic(err)
				}
			}
			blobDur = v.Now().Sub(start) / reps
		})
		v.Close()
		table.Rows = append(table.Rows, []string{
			fmtBytes(size), jiffyDur.String(), blobDur.String(),
			f("%.1fx", float64(blobDur)/float64(jiffyDur)),
		})
	}
	table.Notes = "latency models: jiffy ~200µs/op memory-speed; blob ~20ms/op persistent store ([124],[125])"
	return table
}

// E5Isolation: §4.4 "a single global address space ... precludes isolation
// guarantees for scaling memory resources in multi-tenant settings, since
// adding/removing memory resources for an application requires
// re-partitioning data for the entire address-space".
func E5Isolation() Table {
	const keysPerTenant = 2000
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	var aMoved, bMoved int
	v.Run(func() {
		a, err := p.Jiffy.CreateNamespace("/tenantA", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
		if err != nil {
			panic(err)
		}
		b, err := p.Jiffy.CreateNamespace("/tenantB", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
		if err != nil {
			panic(err)
		}
		for i := 0; i < keysPerTenant; i++ {
			if err := a.Put(f("a%d", i), []byte("v")); err != nil {
				panic(err)
			}
			if err := b.Put(f("b%d", i), []byte("v")); err != nil {
				panic(err)
			}
		}
		placement := map[string]int{}
		for _, k := range b.Keys() {
			placement[k] = b.BlockOf(k)
		}
		aMoved, err = a.Scale(+8)
		if err != nil {
			panic(err)
		}
		for _, k := range b.Keys() {
			if b.BlockOf(k) != placement[k] {
				bMoved++
			}
		}
	})

	// Baseline: one flat global address space holding both tenants.
	g := jiffy.NewGlobalKV(16)
	for i := 0; i < keysPerTenant; i++ {
		g.Put("tenantA", f("a%d", i), []byte("v"))
		g.Put("tenantB", f("b%d", i), []byte("v"))
	}
	moved, err := g.Scale(+8)
	if err != nil {
		panic(err)
	}

	return Table{
		ID:      "E5",
		Title:   "Keys moved when tenant A scales +8 blocks (2000 keys/tenant)",
		Claim:   "§4.4: hierarchical namespaces re-partition only the scaled namespace; a global address space disrupts every tenant",
		Columns: []string{"design", "tenant A moved", "tenant B moved"},
		Rows: [][]string{
			{"jiffy namespaces", f("%d", aMoved), f("%d", bMoved)},
			{"global address space", f("%d", moved["tenantA"]), f("%d", moved["tenantB"])},
		},
		Notes: "tenant B must be untouched under namespaces and disrupted under the global space",
	}
}

// E18Leases: §4.4 "lifetime of shared state may be much longer than that of
// the producer task: it is tied to when data is consumed" — namespaces
// decouple the two via leases, with notifications signalling consumers.
func E18Leases() Table {
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	table := Table{
		ID:      "E18",
		Title:   "State lifetime decoupled from producer via leases",
		Claim:   "§4.4: lease-based lifetime management + per-namespace notifications",
		Columns: []string{"t", "event", "state readable", "free blocks"},
	}
	row := func(at time.Duration, event string, readable bool) {
		table.Rows = append(table.Rows, []string{
			at.String(), event, f("%v", readable), f("%d", p.Jiffy.FreeBlocks()),
		})
	}
	v.Run(func() {
		var notified []string
		ns, err := p.Jiffy.CreateNamespace("/job", jiffy.NamespaceOptions{Lease: 30 * time.Second})
		if err != nil {
			panic(err)
		}
		if err := p.Jiffy.Subscribe("/job", func(e jiffy.Event) {
			notified = append(notified, f("%d@%v", e.Type, v.Elapsed()))
		}); err != nil {
			panic(err)
		}
		// Producer writes, then "dies" (never touches the namespace again).
		if err := ns.Put("result", []byte("output")); err != nil {
			panic(err)
		}
		row(v.Elapsed(), "producer wrote + exited", readable(ns))

		v.Sleep(20 * time.Second)
		// Consumer arrives within the lease, reads, and renews.
		row(v.Elapsed(), "consumer read (in lease)", readable(ns))
		if err := ns.Renew(); err != nil {
			panic(err)
		}
		v.Sleep(25 * time.Second)
		row(v.Elapsed(), "renewed lease still live", readable(ns))
		v.Sleep(40 * time.Second)
		p.Jiffy.ReapExpired()
		row(v.Elapsed(), "lease expired, reclaimed", readable(ns))
		table.Notes = f("notifications fired: %d (incl. expiry)", len(notified))
	})
	return table
}

func readable(ns *jiffy.Namespace) bool {
	_, err := ns.Get("result")
	return err == nil
}

func fmtBytes(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

var _ = simclock.Epoch
