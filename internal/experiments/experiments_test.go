package experiments

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

// The tests below run each experiment and assert the *shape* of its result —
// the qualitative claim the paper makes — not absolute numbers.

func cell(t *testing.T, tb Table, row, col int) string {
	t.Helper()
	if row >= len(tb.Rows) || col >= len(tb.Columns) {
		t.Fatalf("%s: no cell (%d,%d) in\n%s", tb.ID, row, col, tb)
	}
	return tb.Rows[row][col]
}

func numPrefix(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimPrefix(s, "$")
	// Full parse first (handles scientific notation like "1.3e-14").
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return v
	}
	end := len(s)
	for i, r := range s {
		if (r < '0' || r > '9') && r != '.' && r != '-' {
			end = i
			break
		}
	}
	v, err := strconv.ParseFloat(s[:end], 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 27 {
		t.Fatalf("experiments = %d, want 27", len(all))
	}
	for i, e := range all {
		want := "E" + strconv.Itoa(i+1)
		if e.ID != want {
			t.Fatalf("experiment %d has ID %s, want %s", i, e.ID, want)
		}
	}
	if _, ok := ByID("e7"); !ok {
		t.Fatal("ByID case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Fatal("ByID found nonexistent experiment")
	}
}

func TestE1SavingsGrowWithPeakToMean(t *testing.T) {
	tb := E1CostEfficiency()
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Serverless cost falls as the ratio rises (same peak, less usage);
	// reserved stays flat; savings multiplier must strictly grow.
	prevSavings := 0.0
	for i := 1; i < len(tb.Rows); i++ { // skip ratio=1 (the crossover case)
		s := numPrefix(t, cell(t, tb, i, 4))
		if s <= prevSavings {
			t.Fatalf("savings not increasing at row %d:\n%s", i, tb)
		}
		prevSavings = s
	}
	// At sustained full utilization (ratio 1) reservation should be
	// competitive: savings < the ratio-50 savings by a wide margin.
	first := numPrefix(t, cell(t, tb, 0, 4))
	last := numPrefix(t, cell(t, tb, 4, 4))
	if last < 5*first {
		t.Fatalf("bursty savings %.1f not ≫ steady savings %.1f\n%s", last, first, tb)
	}
}

func TestE2ScalesToZero(t *testing.T) {
	tb := E2Elasticity()
	last := tb.Rows[len(tb.Rows)-1]
	if last[2] != "0" {
		t.Fatalf("final instances = %s, want 0\n%s", last[2], tb)
	}
	// Peak instances > 0 at some burst minute.
	peak := 0
	for _, row := range tb.Rows {
		if n, _ := strconv.Atoi(row[2]); n > peak {
			peak = n
		}
	}
	if peak == 0 {
		t.Fatalf("never scaled up:\n%s", tb)
	}
}

func TestE3ColdFractionRisesWithGap(t *testing.T) {
	tb := E3ColdStart()
	firstFrac := numPrefix(t, cell(t, tb, 0, 3))
	lastFrac := numPrefix(t, cell(t, tb, len(tb.Rows)-1, 3))
	if firstFrac > 0.1 {
		t.Fatalf("tight arrivals should be warm: frac %.2f\n%s", firstFrac, tb)
	}
	if lastFrac < 0.99 {
		t.Fatalf("past keep-alive everything should be cold: frac %.2f\n%s", lastFrac, tb)
	}
}

func TestE4JiffyBeatsBlob(t *testing.T) {
	tb := E4EphemeralState()
	for i := range tb.Rows {
		s := numPrefix(t, cell(t, tb, i, 3))
		if s < 5 {
			t.Fatalf("jiffy speedup %.1f < 5 at row %d\n%s", s, i, tb)
		}
	}
}

func TestE5NamespaceIsolation(t *testing.T) {
	tb := E5Isolation()
	if cell(t, tb, 0, 2) != "0" {
		t.Fatalf("jiffy scaling moved tenant B keys:\n%s", tb)
	}
	if numPrefix(t, cell(t, tb, 1, 2)) == 0 {
		t.Fatalf("global space did not disturb tenant B:\n%s", tb)
	}
	if numPrefix(t, cell(t, tb, 0, 1)) == 0 {
		t.Fatalf("jiffy scaling moved no tenant A keys:\n%s", tb)
	}
}

func TestE6EstimatesWithinBound(t *testing.T) {
	tb := E6PulsarSketch()
	for i := range tb.Rows {
		if cell(t, tb, i, 3) != "true" {
			t.Fatalf("estimate out of bound at row %d:\n%s", i, tb)
		}
	}
}

func TestE7NoDoubleBilling(t *testing.T) {
	tb := E7Orchestration()
	for i := range tb.Rows {
		if cell(t, tb, i, 4) != "false" {
			t.Fatalf("double billing detected:\n%s", tb)
		}
		direct := numPrefix(t, cell(t, tb, i, 2))
		composed := numPrefix(t, cell(t, tb, i, 3))
		if direct != composed {
			t.Fatalf("billing differs: direct %v composed %v\n%s", direct, composed, tb)
		}
	}
}

func TestE8HierarchicalWinsAtScale(t *testing.T) {
	tb := E8Training()
	// At 32 workers the hierarchical speedup must exceed 1.5x.
	last := tb.Rows[len(tb.Rows)-1]
	if s := numPrefix(t, last[3]); s < 1.5 {
		t.Fatalf("hier speedup at 32 workers = %.2f\n%s", s, tb)
	}
	// Losses identical.
	for i := range tb.Rows {
		if cell(t, tb, i, 4) != cell(t, tb, i, 5) {
			t.Fatalf("losses differ at row %d:\n%s", i, tb)
		}
	}
}

func TestE9CodedResilient(t *testing.T) {
	tb := E9Stragglers()
	// At p=0.3 coded must be much faster.
	if s := numPrefix(t, cell(t, tb, 2, 4)); s < 2 {
		t.Fatalf("coded speedup at p=0.3 = %.1f\n%s", s, tb)
	}
}

func TestE10Exact(t *testing.T) {
	tb := E10Matmul()
	for i := range tb.Rows {
		if d := numPrefix(t, cell(t, tb, i, 5)); d > 1e-6 {
			t.Fatalf("numerical error %g too large\n%s", d, tb)
		}
		if r := numPrefix(t, cell(t, tb, i, 4)); r >= 1 {
			t.Fatalf("strassen op ratio %.2f not < 1\n%s", r, tb)
		}
	}
}

func TestE11SharedPoolWins(t *testing.T) {
	tb := E11Multiplexing()
	for i := range tb.Rows {
		if s := numPrefix(t, cell(t, tb, i, 3)); s < 1.5 {
			t.Fatalf("multiplexing saving %.1f < 1.5\n%s", s, tb)
		}
	}
}

func TestE12ComplementaryMinimizesContention(t *testing.T) {
	tb := E12BinPacking()
	cont := map[string]float64{}
	machines := map[string]float64{}
	for i := range tb.Rows {
		cont[cell(t, tb, i, 0)] = numPrefix(t, cell(t, tb, i, 3))
		machines[cell(t, tb, i, 0)] = numPrefix(t, cell(t, tb, i, 1))
	}
	if cont["complementary"] >= cont["first-fit"] {
		t.Fatalf("complementary contention %v >= first-fit %v\n%s", cont["complementary"], cont["first-fit"], tb)
	}
	if machines["complementary"] > machines["first-fit"]*1.2 {
		t.Fatalf("complementary uses too many machines:\n%s", tb)
	}
}

func TestE13LatencyDropsWithChunks(t *testing.T) {
	tb := E13Video()
	// Speedup at 16 chunks ≥ 5x; diminishing at 32 (≤ 2x gain over 16).
	var s16, s32 float64
	for i := range tb.Rows {
		switch cell(t, tb, i, 0) {
		case "16":
			s16 = numPrefix(t, cell(t, tb, i, 2))
		case "32":
			s32 = numPrefix(t, cell(t, tb, i, 2))
		}
	}
	if s16 < 5 {
		t.Fatalf("16-chunk speedup %.1f\n%s", s16, tb)
	}
	if s32 > 2*s16 {
		t.Fatalf("no diminishing returns: s32 %.1f vs s16 %.1f\n%s", s32, s16, tb)
	}
}

func TestE14ExactAndScales(t *testing.T) {
	tb := E14SeqCompare()
	for i := range tb.Rows {
		if cell(t, tb, i, 4) != "true" {
			t.Fatalf("serverless scores differ from serial:\n%s", tb)
		}
	}
	if s := numPrefix(t, cell(t, tb, len(tb.Rows)-1, 3)); s < 4 {
		t.Fatalf("16-worker speedup %.1f < 4\n%s", s, tb)
	}
}

func TestE15NothingLost(t *testing.T) {
	tb := E15PulsarDurability()
	for i := range tb.Rows {
		if cell(t, tb, i, 3) != "0" {
			t.Fatalf("messages lost in phase %s:\n%s", cell(t, tb, i, 0), tb)
		}
	}
}

func TestE16SameBestMuchFaster(t *testing.T) {
	tb := E16Hyperparam()
	if cell(t, tb, 0, 3) != cell(t, tb, 1, 3) || cell(t, tb, 0, 4) != cell(t, tb, 1, 4) {
		t.Fatalf("best config differs between modes:\n%s", tb)
	}
	seq := parseDur(t, cell(t, tb, 0, 2))
	conc := parseDur(t, cell(t, tb, 1, 2))
	if conc*4 > seq {
		t.Fatalf("concurrent %v not ≪ sequential %v\n%s", conc, seq, tb)
	}
}

func TestE17CacheHelps(t *testing.T) {
	tb := E17Inference()
	noCacheP50 := parseDur(t, cell(t, tb, 0, 2))
	cacheP50 := parseDur(t, cell(t, tb, 1, 2))
	if cacheP50*2 > noCacheP50 {
		t.Fatalf("cache p50 %v not ≪ reload p50 %v\n%s", cacheP50, noCacheP50, tb)
	}
}

func TestE18LeaseLifecycle(t *testing.T) {
	tb := E18Leases()
	wantReadable := []string{"true", "true", "true", "false"}
	for i, w := range wantReadable {
		if cell(t, tb, i, 2) != w {
			t.Fatalf("row %d readable = %s, want %s\n%s", i, cell(t, tb, i, 2), w, tb)
		}
	}
	// Blocks return to the pool after expiry.
	first := numPrefix(t, cell(t, tb, 0, 3))
	last := numPrefix(t, cell(t, tb, 3, 3))
	if last <= first {
		t.Fatalf("blocks not reclaimed: %v → %v\n%s", first, last, tb)
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   "n",
	}
	s := tb.String()
	for _, want := range []string{"EX", "demo", "claim: c", "a", "bb", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func parseDur(t *testing.T, s string) float64 {
	t.Helper()
	// Parse "1.2s"/"300ms" etc. into seconds.
	d, err := time.ParseDuration(s)
	if err != nil {
		t.Fatalf("cannot parse duration %q: %v", s, err)
	}
	return d.Seconds()
}

func TestE19DedicatedEliminatesExposure(t *testing.T) {
	tb := E19Security()
	var ded, ff struct{ pairs, machines float64 }
	for i := range tb.Rows {
		switch cell(t, tb, i, 0) {
		case "tenant-dedicated":
			ded.pairs = numPrefix(t, cell(t, tb, i, 2))
			ded.machines = numPrefix(t, cell(t, tb, i, 1))
		case "first-fit":
			ff.pairs = numPrefix(t, cell(t, tb, i, 2))
			ff.machines = numPrefix(t, cell(t, tb, i, 1))
		}
	}
	if ded.pairs != 0 {
		t.Fatalf("tenant-dedicated exposure %v != 0\n%s", ded.pairs, tb)
	}
	if ff.pairs == 0 {
		t.Fatalf("first-fit exposure 0 — no contrast\n%s", tb)
	}
	if ded.machines < ff.machines {
		t.Fatalf("isolation should not use fewer machines\n%s", tb)
	}
}

func TestE20TailLatencyImproves(t *testing.T) {
	tb := E20SLA()
	ratios := map[string]float64{}
	for i := range tb.Rows {
		ratios[cell(t, tb, i, 0)] = parseDur(t, cell(t, tb, i, 3))
	}
	if ratios["complementary"] >= ratios["first-fit"] {
		t.Fatalf("complementary p99 %v not below first-fit %v\n%s",
			ratios["complementary"], ratios["first-fit"], tb)
	}
	if ratios["worst-fit"] > ratios["complementary"] {
		t.Fatalf("spreading should be fastest\n%s", tb)
	}
}

func TestE21OffloadFreesBookies(t *testing.T) {
	tb := E21TieredStorage()
	if cell(t, tb, 0, 3) == "0" {
		t.Fatalf("hot tier should hold bookie entries\n%s", tb)
	}
	if cell(t, tb, 1, 3) != "0" {
		t.Fatalf("offload left bookie entries\n%s", tb)
	}
	hotFirst := parseDur(t, cell(t, tb, 0, 1))
	coldFirst := parseDur(t, cell(t, tb, 1, 1))
	if coldFirst <= hotFirst {
		t.Fatalf("cold first access should cost more: hot %v cold %v\n%s", hotFirst, coldFirst, tb)
	}
}

func TestE22ProvisionedRemovesColdStarts(t *testing.T) {
	tb := E22Provisioned()
	if numPrefix(t, cell(t, tb, 0, 2)) == 0 {
		t.Fatalf("on-demand sporadic traffic should be all cold\n%s", tb)
	}
	if cell(t, tb, 1, 2) != "0" {
		t.Fatalf("provisioned config paid cold starts\n%s", tb)
	}
	p99OnDemand := parseDur(t, cell(t, tb, 0, 4))
	p99Prov := parseDur(t, cell(t, tb, 1, 4))
	if p99Prov*5 > p99OnDemand {
		t.Fatalf("provisioned p99 %v not well below on-demand %v\n%s", p99Prov, p99OnDemand, tb)
	}
}

func TestE23ORAMOverheadLogarithmic(t *testing.T) {
	tb := E23ORAM()
	prevOps := 0.0
	for i := range tb.Rows {
		ops := numPrefix(t, cell(t, tb, i, 2))
		pathLen := numPrefix(t, cell(t, tb, i, 1))
		if ops != 2*pathLen {
			t.Fatalf("ops/access %v != 2×path length %v\n%s", ops, pathLen, tb)
		}
		if ops <= prevOps {
			t.Fatalf("overhead not growing with store size\n%s", tb)
		}
		prevOps = ops
		if s := numPrefix(t, cell(t, tb, i, 5)); s < 5 {
			t.Fatalf("ORAM slowdown %v implausibly low\n%s", s, tb)
		}
	}
}

func TestE24LighterIsolationWins(t *testing.T) {
	tb := E24IsolationTech()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prevP99 := 1e18
	prevDensity := 0.0
	for i := range tb.Rows {
		p99 := parseDur(t, cell(t, tb, i, 2))
		density := numPrefix(t, cell(t, tb, i, 3))
		if p99 >= prevP99 {
			t.Fatalf("p99 not improving down the isolation spectrum\n%s", tb)
		}
		if density <= prevDensity {
			t.Fatalf("density not improving down the spectrum\n%s", tb)
		}
		prevP99, prevDensity = p99, density
	}
	// Unikernel cold p99 must be a small fraction of container p99.
	containerP99 := parseDur(t, cell(t, tb, 0, 2))
	unikernelP99 := parseDur(t, cell(t, tb, 3, 2))
	if unikernelP99*5 > containerP99 {
		t.Fatalf("unikernel p99 %v not ≪ container %v\n%s", unikernelP99, containerP99, tb)
	}
}

func TestE25LadderMonotone(t *testing.T) {
	tb := E25Evolution()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	prevCost := 1e18
	prevRatio := 1e18
	for i := range tb.Rows {
		cost := numPrefix(t, cell(t, tb, i, 4))
		ratio := numPrefix(t, cell(t, tb, i, 5))
		if cost > prevCost {
			t.Fatalf("cost not falling down the ladder\n%s", tb)
		}
		if ratio > prevRatio {
			t.Fatalf("paid/used not falling down the ladder\n%s", tb)
		}
		prevCost, prevRatio = cost, ratio
	}
	// Serverless paid/used must approach 1 (fine-grained billing).
	if final := numPrefix(t, cell(t, tb, 3, 5)); final > 1.5 {
		t.Fatalf("serverless paid/used = %v, want ≈1\n%s", final, tb)
	}
}

func TestE26NoAckedWriteLost(t *testing.T) {
	tb := E26ChaosRecovery()
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for i := range tb.Rows {
		if acked := numPrefix(t, cell(t, tb, i, 1)); acked <= 0 {
			t.Fatalf("%s acked nothing — the workload never ran\n%s", cell(t, tb, i, 0), tb)
		}
		if lost := numPrefix(t, cell(t, tb, i, 2)); lost != numPrefix(t, cell(t, tb, i, 1)) {
			t.Fatalf("%s verified != acked\n%s", cell(t, tb, i, 0), tb)
		}
		if lost := numPrefix(t, cell(t, tb, i, 3)); lost != 0 {
			t.Fatalf("%s lost %v acked writes\n%s", cell(t, tb, i, 0), lost, tb)
		}
	}
	if !strings.Contains(tb.Notes, "identical rerun digest: true") {
		t.Fatalf("chaos run not deterministic: %s", tb.Notes)
	}
	if strings.Contains(tb.Notes, "ledger recoveries 0") || strings.Contains(tb.Notes, "pulsar takeovers 0") {
		t.Fatalf("fault schedule exercised no recoveries: %s", tb.Notes)
	}
}

func TestE27ElasticControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two full burst simulations")
	}
	tb := E27Elastic()
	if len(tb.Rows) != 9 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Every acceptance row must pass: convergence within the window, panic
	// scale-up, fleet growth, scale-to-zero, drained machines, fairness.
	for i := range tb.Rows {
		if p := cell(t, tb, i, 3); p == "NO" {
			t.Fatalf("criterion failed at row %q:\n%s", cell(t, tb, i, 0), tb)
		}
	}
	// Burst p99 must actually exceed 2× steady — otherwise the convergence
	// row proves nothing.
	steady := parseDur(t, cell(t, tb, 0, 1))
	burst := parseDur(t, cell(t, tb, 1, 1))
	if burst < 2*steady {
		t.Fatalf("burst p99 %v never rose above 2× steady %v — no cold-start pain to converge from\n%s", burst, steady, tb)
	}
	if !strings.Contains(tb.Notes, "identical rerun digest: true") {
		t.Fatalf("burst run not deterministic: %s", tb.Notes)
	}
}
