package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/mlserve"
)

// E8Training: §5.2 — data-parallel serverless training, and Feng et al.'s
// [94] "hierarchical update and reuse of parameter servers to minimize the
// latency". Sweep workers; compare flat vs hierarchical PS round times.
func E8Training() Table {
	table := Table{
		ID:      "E8",
		Title:   "Data-parallel training: flat vs hierarchical parameter server",
		Claim:   "§5.2/[94]: the flat PS serializes worker updates; hierarchical aggregation pushes the scaling knee right",
		Columns: []string{"workers", "flat round", "hier round", "hier speedup", "loss(flat)", "loss(hier)"},
	}
	ds := mlserve.SyntheticLogistic(640, 4, 8)
	for _, w := range []int{1, 2, 4, 8, 16, 32} {
		walls := map[mlserve.Topology]time.Duration{}
		losses := map[mlserve.Topology]float64{}
		for _, topo := range []mlserve.Topology{mlserve.Flat, mlserve.Hierarchical} {
			p, v := core.NewVirtual(core.Options{})
			v.Run(func() {
				rep, err := mlserve.TrainDistributed(p.FaaS, ds, mlserve.TrainConfig{
					Workers: w, Rounds: 3, LR: 0.5, Topology: topo,
					PSService: 5 * time.Millisecond, WorkPerExample: 20 * time.Microsecond,
				})
				if err != nil {
					panic(err)
				}
				var sum time.Duration
				for _, rw := range rep.RoundWalls {
					sum += rw
				}
				walls[topo] = sum / time.Duration(len(rep.RoundWalls))
				losses[topo] = rep.FinalLoss
			})
			v.Close()
		}
		table.Rows = append(table.Rows, []string{
			f("%d", w),
			walls[mlserve.Flat].Round(time.Millisecond).String(),
			walls[mlserve.Hierarchical].Round(time.Millisecond).String(),
			f("%.2fx", float64(walls[mlserve.Flat])/float64(walls[mlserve.Hierarchical])),
			f("%.4f", losses[mlserve.Flat]),
			f("%.4f", losses[mlserve.Hierarchical]),
		})
	}
	table.Notes = "losses identical by construction (synchronous full-batch GD); only wall time differs"
	return table
}

// E9Stragglers: §5.2/[104] — "in-built resiliency against stragglers that
// are characteristic of serverless architectures ... based on
// error-correcting codes to create redundant computation" [132].
func E9Stragglers() Table {
	table := Table{
		ID:      "E9",
		Title:   "Coded (2-replicated) vs uncoded mat-vec under stragglers",
		Claim:   "§5.2/[104],[132]: redundant coded computation keeps completion time near straggler-free",
		Columns: []string{"straggler p", "uncoded wall", "coded wall", "coded invocations", "coded speedup"},
	}
	a := mlserve.RandomMatrix(64, 32, 10)
	x := mlserve.RandomVector(32, 11)
	for _, prob := range []float64{0, 0.1, 0.3} {
		walls := map[int]time.Duration{}
		invs := map[int]int{}
		for _, repl := range []int{1, 2} {
			p, v := core.NewVirtual(core.Options{})
			v.Run(func() {
				rep, err := mlserve.MatVec(p.FaaS, a, x, mlserve.CodedConfig{
					Stripes: 8, Replication: repl,
					StragglerProb: prob, StragglerDelay: 5 * time.Second, Seed: 77,
				})
				if err != nil {
					panic(err)
				}
				walls[repl] = rep.Wall
				invs[repl] = rep.Invocations
			})
			v.Close()
		}
		table.Rows = append(table.Rows, []string{
			f("%.1f", prob),
			walls[1].Round(time.Millisecond).String(),
			walls[2].Round(time.Millisecond).String(),
			f("%d", invs[2]),
			f("%.1fx", float64(walls[1])/float64(walls[2])),
		})
	}
	table.Notes = "uncoded waits for every straggler; coded completes from the first replica per stripe (2x compute cost)"
	return table
}

// E16Hyperparam: §5.2/[186] (Seneca) — "the system concurrently invokes
// functions for all combinations of the hyperparameters specified and
// returns the configuration that results in the best score".
func E16Hyperparam() Table {
	table := Table{
		ID:      "E16",
		Title:   "Hyperparameter grid search: sequential vs concurrent functions",
		Claim:   "§5.2/[186]: concurrent invocation makes search wall-time ≈ one trial instead of the sum",
		Columns: []string{"mode", "trials", "wall", "best lr", "best rounds", "best loss"},
	}
	train, val := mlserve.SyntheticLogistic(700, 4, 12).Split(0.6)
	cfg := mlserve.HyperConfig{
		LRs:          []float64{0.01, 0.1, 0.5, 1.0},
		Rounds:       []int{5, 20, 50},
		WorkPerTrial: 3 * time.Second,
	}
	for _, conc := range []bool{false, true} {
		p, v := core.NewVirtual(core.Options{})
		cfg.Concurrent = conc
		var rep mlserve.HyperReport
		v.Run(func() {
			var err error
			rep, err = mlserve.GridSearch(p.FaaS, train, val, cfg)
			if err != nil {
				panic(err)
			}
		})
		v.Close()
		mode := "sequential"
		if conc {
			mode = "concurrent"
		}
		table.Rows = append(table.Rows, []string{
			mode, f("%d", len(rep.Trials)), rep.Wall.Round(time.Millisecond).String(),
			f("%.2f", rep.Best.LR), f("%d", rep.Best.Rounds), f("%.4f", rep.Best.Loss),
		})
	}
	table.Notes = "both modes must find the same best configuration"
	return table
}

// E17Inference: §5.2 — [112] "warm serverless executions are within an
// acceptable latency range, while cold starts add significant overhead";
// [88] (TrIMS) mitigates the model-loading part with a tiered model store.
func E17Inference() Table {
	table := Table{
		ID:      "E17",
		Title:   "Inference latency: shared model cache vs reload-per-request",
		Claim:   "§5.2/[88],[112]: model loading dominates inference cold cost; a tiered model store removes it",
		Columns: []string{"config", "first (cold)", "p50 warm", "p99 warm"},
	}
	for _, useCache := range []bool{false, true} {
		p, v := core.NewVirtual(core.Options{})
		var first time.Duration
		var warm []time.Duration
		v.Run(func() {
			if err := p.Blob.CreateBucket("models", "ml"); err != nil {
				panic(err)
			}
			ms := mlserve.NewModelStore(p.Blob, "models")
			model := mlserve.RandomVector(60000, 14) // ~0.5MB of weights
			if err := ms.Publish("clf", model); err != nil {
				panic(err)
			}
			name := "nocache"
			if useCache {
				name = "cache"
			}
			fn, err := mlserve.Deploy(p.FaaS, ms, name, mlserve.ServeConfig{Model: "clf", UseCache: useCache})
			if err != nil {
				panic(err)
			}
			req := inferPayload(len(model))
			for i := 0; i < 21; i++ {
				res, err := p.FaaS.Invoke(fn, req)
				if err != nil {
					panic(err)
				}
				if i == 0 {
					first = res.Latency
				} else {
					warm = append(warm, res.Latency)
				}
			}
		})
		v.Close()
		cfg := "reload per request"
		if useCache {
			cfg = "shared model cache"
		}
		table.Rows = append(table.Rows, []string{
			cfg, first.Round(time.Millisecond).String(),
			percentile(warm, 50).Round(time.Millisecond).String(),
			percentile(warm, 99).Round(time.Millisecond).String(),
		})
	}
	table.Notes = "with the cache, only the first request pays the blob model fetch"
	return table
}

func inferPayload(dim int) []byte {
	// Features of the right dimension, all zeros → probability 0.5.
	b := []byte(`{"features":[`)
	for i := 0; i < dim; i++ {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '0')
	}
	return append(b, ']', '}')
}

func percentile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	s := append([]time.Duration{}, ds...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[int(q/100*float64(len(s)-1))]
}
