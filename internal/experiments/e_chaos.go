package experiments

import (
	"fmt"
	"reflect"
	"time"

	"repro/internal/chaos"
	"repro/internal/coord"
	"repro/internal/jiffy"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/pulsar"
	"repro/internal/simclock"
)

// chaosDigest is everything one seeded chaos run produced: the applied-fault
// log plus per-plane acked/verified counts. Two runs with the same seed must
// yield identical digests — that equality is E26's determinism row.
type chaosDigest struct {
	Log          []string
	LedgerAcked  int
	LedgerRead   int
	JiffyAcked   int
	JiffyOK      int
	FifoEnq      int
	FifoDeq      int
	PubAcked     int
	PubDelivered int
	Injected     int64
	RecoveriesLg int64
	RecoveriesPl int64
	MTTRMax      time.Duration
}

// E26ChaosRecovery: §4.3/§4.4 — the platform's recovery story under a seeded
// fault schedule. Bookies, brokers and Jiffy memory nodes crash (plus
// stragglers and dropped operations) while live traffic runs on every plane;
// the experiment counts acked writes that survived, and runs the whole thing
// twice to show the fault plane is deterministic.
func E26ChaosRecovery() Table {
	const seed = 6
	d1 := runChaosSoak(seed)
	d2 := runChaosSoak(seed)
	deterministic := reflect.DeepEqual(d1, d2)

	table := Table{
		ID:      "E26",
		Title:   "Seeded chaos soak: recovery across ledger, Jiffy and Pulsar",
		Claim:   "§4.3/§4.4: replicated ledgers, stateless brokers and replicated ephemeral state recover from fail-stop faults without losing acked writes",
		Columns: []string{"plane", "acked", "verified", "lost"},
		Rows: [][]string{
			{"ledger entries", f("%d", d1.LedgerAcked), f("%d", d1.LedgerRead), f("%d", d1.LedgerAcked-d1.LedgerRead)},
			{"jiffy KV puts", f("%d", d1.JiffyAcked), f("%d", d1.JiffyOK), f("%d", d1.JiffyAcked-d1.JiffyOK)},
			{"jiffy FIFO items", f("%d", d1.FifoEnq), f("%d", d1.FifoDeq), f("%d", d1.FifoEnq-d1.FifoDeq)},
			{"pulsar publishes", f("%d", d1.PubAcked), f("%d", d1.PubDelivered), f("%d", d1.PubAcked-d1.PubDelivered)},
		},
	}
	table.Notes = f("seed %d injected %d faults (ledger recoveries %d, pulsar takeovers %d, max MTTR %v); identical rerun digest: %v",
		seed, d1.Injected, d1.RecoveriesLg, d1.RecoveriesPl, d1.MTTRMax, deterministic)
	return table
}

// runChaosSoak drives one seeded fault schedule against live ledger, Jiffy
// and Pulsar traffic on a fresh virtual-clock stack. The Pulsar path keeps
// its own zero-latency bookie fleet: brokers append while holding topic
// locks, and a sleeper holding a lock the injector contends would stall the
// virtual clock. The chaos-targeted bookies live in a second ledger system
// (own metadata store, so ledger ids don't collide) whose 1ms append latency
// makes crashes land mid-append.
func runChaosSoak(seed int64) chaosDigest {
	v := simclock.NewVirtual()
	defer v.Close()
	meta := coord.NewStore(v)
	pls := ledger.NewSystem(v, meta)
	for i := 0; i < 3; i++ {
		pls.AddBookie(ledger.NewBookie(fmt.Sprintf("pbookie-%d", i)))
	}
	cluster := pulsar.NewCluster(v, meta, pls, nil, pulsar.ClusterConfig{})
	for i := 0; i < 3; i++ {
		cluster.AddBroker(fmt.Sprintf("broker-%d", i))
	}
	jc := jiffy.NewController(v, nil, jiffy.Config{Latency: jiffy.NoLatency, DefaultLease: -1})
	for i := 0; i < 4; i++ {
		jc.AddNode(fmt.Sprintf("mem-%d", i), 16)
	}
	lsys := ledger.NewSystem(v, coord.NewStore(v))
	lsys.AppendLatency = time.Millisecond
	for i := 0; i < 5; i++ {
		lsys.AddBookie(ledger.NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	reg := obs.New(v)
	lsys.SetObs(reg)
	cluster.SetObs(reg)
	jc.SetObs(reg)
	inj := chaos.NewInjector(v, lsys, cluster, jc)
	inj.SetObs(reg)
	sch := chaos.Generate(chaos.Options{
		Seed:       seed,
		Duration:   120 * time.Millisecond,
		Bookies:    lsys.BookieIDs(),
		Brokers:    cluster.BrokerIDs(),
		JiffyNodes: jc.NodeIDs(),
		Crashes:    6,
		Stragglers: 3,
		Drops:      3,
	})

	var d chaosDigest
	const iters = 50
	v.Run(func() {
		if err := cluster.CreateTopic("soak", 0); err != nil {
			panic(err)
		}
		prod, err := cluster.CreateProducer("soak")
		if err != nil {
			panic(err)
		}
		cons, err := cluster.Subscribe("soak", "s", pulsar.Exclusive, pulsar.Earliest)
		if err != nil {
			panic(err)
		}
		ns, err := jc.CreateNamespace("/soak", jiffy.NamespaceOptions{Replicas: 2, InitialBlocks: 2})
		if err != nil {
			panic(err)
		}
		w, err := lsys.CreateLedger(3, 2, 2)
		if err != nil {
			panic(err)
		}

		inj.Run(sch)
		done := make(chan struct{}, 3)

		var acked int
		v.Go(func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < iters; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("L%d", i))); err == nil {
					acked++
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		jiffyAcked := map[string]string{}
		var enq []string
		v.Go(func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < iters; i++ {
				k, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
				if err := ns.Put(k, []byte(val)); err == nil {
					jiffyAcked[k] = val
				}
				item := fmt.Sprintf("q%d", i)
				if err := ns.Enqueue([]byte(item)); err == nil {
					enq = append(enq, item)
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		var pubAcked []string
		prodDone := make(chan struct{})
		v.Go(func() {
			defer func() { done <- struct{}{} }()
			defer close(prodDone)
			for i := 0; i < iters; i++ {
				payload := fmt.Sprintf("m%d", i)
				if _, err := prod.Send([]byte(payload)); err == nil {
					pubAcked = append(pubAcked, payload)
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		received := map[string]bool{}
		recvDone := make(chan struct{})
		v.Go(func() {
			defer close(recvDone)
			closing := false
			for {
				m, ok := cons.Receive(4 * time.Millisecond)
				if ok {
					received[string(m.Payload)] = true
					_ = cons.Ack(m)
					continue
				}
				if closing {
					return
				}
				select {
				case <-prodDone:
					closing = true
				default:
				}
			}
		})

		for i := 0; i < 3; i++ {
			v.BlockOn(func() { <-done })
		}
		v.BlockOn(func() { <-recvDone })
		inj.Wait()

		// Verify each plane against what was acked.
		if err := w.Close(); err != nil {
			panic(err)
		}
		r, err := lsys.OpenReader(w.ID())
		if err != nil {
			panic(err)
		}
		entries, err := r.ReadAll()
		if err != nil {
			panic(err)
		}
		d.LedgerAcked, d.LedgerRead = acked, len(entries)

		d.JiffyAcked = len(jiffyAcked)
		for k, want := range jiffyAcked {
			if got, err := ns.Get(k); err == nil && string(got) == want {
				d.JiffyOK++
			}
		}
		d.FifoEnq = len(enq)
		for i := 0; ; i++ {
			it, err := ns.Dequeue()
			if err != nil {
				break
			}
			if i < len(enq) && string(it) == enq[i] {
				d.FifoDeq++
			}
		}

		d.PubAcked = len(pubAcked)
		for _, p := range pubAcked {
			if received[p] {
				d.PubDelivered++
			}
		}
	})

	d.Log = inj.Log()
	d.Injected = reg.CounterValue("chaos.injected")
	d.RecoveriesLg = reg.CounterValue("ledger.recoveries")
	d.RecoveriesPl = reg.CounterValue("pulsar.recoveries")
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "chaos.mttr" {
			d.MTTRMax = h.Max
		}
	}
	return d
}
