package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/billing"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/scheduler"
	"repro/internal/simclock"
	"repro/internal/workload"
)

// E1CostEfficiency: §2 "users only pay for the resources they actually use
// ... in contrast to the server-centric model, where the users have to
// reserve server resources regardless of whether or not they use it", and
// §3.2 "peak load being several times higher than the mean".
//
// A bursty workload (fixed peak, varying peak/mean ratio) is billed two
// ways: fine-grained serverless (GB-seconds + requests) vs a VM fleet
// reserved for the peak. The serverless advantage must grow with the
// peak/mean ratio.
func E1CostEfficiency() Table {
	const (
		window   = 5 * time.Minute
		peakRPS  = 8.0
		period   = time.Minute
		workDur  = 100 * time.Millisecond
		memoryMB = 512
		perVMRPS = 10.0 // one VM sustains this
	)
	table := Table{
		ID:      "E1",
		Title:   "Serverless vs reserved cost under bursty load",
		Claim:   "§2/§6: fine-grained billing means paying only for use; the gap vs peak-provisioned reservation grows with peak/mean",
		Columns: []string{"peak/mean", "invocations", "serverless$", "reserved$", "savings"},
	}
	for _, ratio := range []int{1, 2, 5, 10, 50} {
		p, v := core.NewVirtual(core.Options{})
		burst := period / time.Duration(ratio)
		rf := workload.Bursty(0, peakRPS, period, burst)
		if ratio == 1 {
			rf = workload.Constant(peakRPS)
		}
		arrivals := workload.Arrivals(rf, window, 1)

		handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Work(workDur)
			return nil, nil
		}
		var nInvocations int
		v.Run(func() {
			if err := p.Tenant("acme").Register("api", handler, faas.Config{MemoryMB: memoryMB}); err != nil {
				panic(err)
			}
			rep := faas.Drive(p.FaaS, "api", nil, arrivals)
			rep.Wait()
			nInvocations = len(rep.Results())
		})
		v.Close()

		serverless := p.Tenant("acme").Invoice().Total
		reserved := billing.ReservedCost(billing.VMsForPeak(peakRPS, perVMRPS), window, p.Pricing)
		savings := "-"
		if serverless > 0 {
			savings = f("%.1fx", reserved/serverless)
		}
		table.Rows = append(table.Rows, []string{
			f("%d", ratio), f("%d", nInvocations),
			f("$%.4f", serverless), f("$%.4f", reserved), savings,
		})
	}
	table.Notes = "reserved fleet sized for peak (§3.2); serverless bills 100ms granules of actual use"
	return table
}

// E2Elasticity: §2 "the platform should be able to allocate (and
// de-allocate) resources for an application based on its workload
// requirements over time", including scale to (and from) zero.
func E2Elasticity() Table {
	p, v := core.NewVirtual(core.Options{})
	defer v.Close()
	const window = 20 * time.Minute
	rf := workload.Bursty(0, 6, 8*time.Minute, 2*time.Minute)
	arrivals := workload.Arrivals(rf, window, 2)

	v.Run(func() {
		if err := p.Tenant("t").Register("app", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			ctx.Work(500 * time.Millisecond)
			return nil, nil
		}, faas.Config{KeepAlive: time.Minute}); err != nil {
			panic(err)
		}
		rep := faas.Drive(p.FaaS, "app", nil, arrivals)
		rep.Wait()
		v.Sleep(3 * time.Minute) // idle tail: instances should be reaped
		p.FaaS.Stats("app")      // force final reap sample
	})
	st, _ := p.FaaS.Stats("app")

	table := Table{
		ID:      "E2",
		Title:   "Instance footprint tracks offered load (scale from/to zero)",
		Claim:   "§2: demand-driven execution — fine-grained resource elasticity over time",
		Columns: []string{"t(min)", "offered rps", "instances"},
	}
	for minute := 0; minute <= int(window/time.Minute)+3; minute += 2 {
		at := simclock.Epoch.Add(time.Duration(minute) * time.Minute)
		inst := 0
		for _, pt := range st.Timeline {
			if !pt.At.After(at) {
				inst = pt.Instances
			}
		}
		rps := 0.0
		if time.Duration(minute)*time.Minute < window {
			rps = rf(time.Duration(minute) * time.Minute)
		}
		table.Rows = append(table.Rows, []string{f("%d", minute), f("%.0f", rps), f("%d", inst)})
	}
	// Render the elasticity timeline as a figure, paper-style.
	var labels []string
	var vals []float64
	for _, row := range table.Rows {
		labels = append(labels, row[0]+"min")
		var inst float64
		fmt.Sscanf(row[2], "%f", &inst)
		vals = append(vals, inst)
	}
	table.Notes = f("cold starts: %d, peak tracked automatically, final footprint 0\ninstances over time:\n%s",
		st.ColdStarts, asciiChart(labels, vals, 40, " instances"))
	return table
}

// E3ColdStart: §5.2 / [112] "warm serverless executions are within an
// acceptable latency range, while cold starts add significant overhead".
// Sweep the inter-arrival gap: once it exceeds the keep-alive window every
// invocation is cold.
func E3ColdStart() Table {
	table := Table{
		ID:      "E3",
		Title:   "Cold vs warm start latency vs inter-arrival gap",
		Claim:   "[112]/§5.2: warm executions acceptable, cold starts add significant overhead",
		Columns: []string{"gap", "invocations", "cold", "cold-frac", "p50 latency", "p99 latency"},
	}
	const keepAlive = 10 * time.Minute
	for _, gap := range []time.Duration{time.Second, time.Minute, 5 * time.Minute, 12 * time.Minute} {
		p, v := core.NewVirtual(core.Options{})
		const n = 40
		arrivals := make([]time.Duration, n)
		for i := range arrivals {
			arrivals[i] = time.Duration(i) * gap
		}
		v.Run(func() {
			if err := p.Tenant("t").Register("fn", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
				ctx.Work(20 * time.Millisecond)
				return nil, nil
			}, faas.Config{KeepAlive: keepAlive, ColdStart: 250 * time.Millisecond, WarmStart: time.Millisecond}); err != nil {
				panic(err)
			}
			rep := faas.Drive(p.FaaS, "fn", nil, arrivals)
			rep.Wait()
		})
		st, _ := p.FaaS.Stats("fn")
		v.Close()
		table.Rows = append(table.Rows, []string{
			gap.String(), f("%d", st.Invocations), f("%d", st.ColdStarts),
			f("%.2f", float64(st.ColdStarts)/float64(st.Invocations)),
			faas.Percentile(st.Durations, 50).String(),
			faas.Percentile(st.Durations, 99).String(),
		})
	}
	table.Notes = "keep-alive 10m: gaps beyond it make every invocation cold (~13x warm latency here)"
	return table
}

// E11Multiplexing: §6 "the cloud provider benefits due to the cost-savings
// arising from higher degree of resource multiplexing and increased
// resource utilization". Tenants with staggered bursts share one pool; the
// shared pool needs far fewer machine-hours than per-tenant dedicated
// fleets.
func E11Multiplexing() Table {
	table := Table{
		ID:      "E11",
		Title:   "Shared pool vs dedicated fleets across staggered tenants",
		Claim:   "§6: providers win through resource multiplexing and higher utilization",
		Columns: []string{"tenants", "dedicated mach-h", "shared mach-h", "saving", "mach-h saved"},
	}
	const (
		window   = 4 * time.Hour
		step     = time.Minute
		perVMRPS = 10.0
	)
	for _, k := range []int{2, 4, 8} {
		// Tenant i bursts during its own slice of each hour.
		rfs := make([]workload.RateFunc, k)
		for i := range rfs {
			rfs[i] = workload.Shift(workload.Bursty(0, 40, time.Hour, time.Hour/time.Duration(k)), time.Duration(i)*time.Hour/time.Duration(k))
		}
		demand := func(rf workload.RateFunc, t time.Duration) int {
			return int((rf(t) + perVMRPS - 1) / perVMRPS)
		}
		// Dedicated, server-centric: each tenant reserves its own peak for
		// the whole window (§2: "users have to reserve server resources
		// regardless of whether or not they use it").
		var dedicated float64
		for _, rf := range rfs {
			peakVMs := billingVMs(workload.PeakRate(rf, window), perVMRPS)
			dedicated += float64(peakVMs) * window.Hours()
		}
		// Shared, provider-side elastic pool: machine-hours actually
		// occupied when every tenant's instantaneous demand is packed onto
		// one cluster.
		var shared float64
		cluster := scheduler.NewCluster(scheduler.Resources{CPU: 1000}, scheduler.FirstFit{})
		instSeq := 0
		var live []string
		for t := time.Duration(0); t < window; t += step {
			total := 0
			for _, rf := range rfs {
				total += demand(rf, t)
			}
			for _, id := range live {
				_ = cluster.Release(id)
			}
			live = live[:0]
			for j := 0; j < total; j++ {
				id := fmt.Sprintf("i%d", instSeq)
				instSeq++
				if _, err := cluster.Place(id, scheduler.Resources{CPU: 1000}); err == nil {
					live = append(live, id)
				}
			}
			shared += float64(cluster.ActiveMachines()) * step.Hours()
		}
		saving := "-"
		if shared > 0 {
			saving = f("%.1fx", dedicated/shared)
		}
		savedPct := 0.0
		if dedicated > 0 {
			savedPct = 100 * (1 - shared/dedicated)
		}
		table.Rows = append(table.Rows, []string{
			f("%d", k), f("%.1f", dedicated), f("%.1f", shared), saving, f("%.0f%%", savedPct),
		})
	}
	table.Notes = "staggered bursts: the shared pool serves each tenant's burst with the same machines"
	return table
}

func billingVMs(peakRPS, perVMRPS float64) int {
	return billing.VMsForPeak(peakRPS, perVMRPS)
}

// E12BinPacking: §6 future work — "bin-packing techniques that pack
// different functions together based on heuristics that ensure performance
// isolation, e.g., by packing together functions that have complementary
// ... resource requirements, ensuring they do not contend".
func E12BinPacking() Table {
	table := Table{
		ID:      "E12",
		Title:   "Placement policies: machines, utilization, contention",
		Claim:   "§6: packing complementary (CPU-heavy with memory-heavy) functions improves isolation without more machines",
		Columns: []string{"policy", "machines", "mean util", "contention"},
	}
	capVec := scheduler.Resources{CPU: 4000, MemMB: 16384}
	// A churning fleet: functions arrive in type-skewed phases and depart
	// after a bounded lifetime. Departures fragment machines, giving the
	// policies real choices (a fresh empty cluster forces every policy
	// into the same packing). Seeded, so all policies see the identical
	// event sequence.
	type ev struct {
		demand   scheduler.Resources
		lifetime int
	}
	rng := rand.New(rand.NewSource(99))
	const events = 500
	seq := make([]ev, events)
	for i := range seq {
		// Bursty phases: 20-event runs of one dominant type.
		cpuPhase := (i/20)%2 == 0
		if cpuPhase {
			seq[i] = ev{scheduler.Resources{CPU: 1500 + float64(rng.Intn(600)), MemMB: 1024}, 8 + rng.Intn(20)}
		} else {
			seq[i] = ev{scheduler.Resources{CPU: 200, MemMB: 6000 + float64(rng.Intn(2500))}, 8 + rng.Intn(20)}
		}
	}
	for _, pol := range []scheduler.Policy{scheduler.FirstFit{}, scheduler.BestFit{}, scheduler.WorstFit{}, scheduler.Complementary{}} {
		c := scheduler.NewCluster(capVec, pol)
		expiry := map[int][]string{}
		var contentionSum, utilSum float64
		peakMachines := 0
		for i, e := range seq {
			for _, id := range expiry[i] {
				_ = c.Release(id)
			}
			id := fmt.Sprintf("i%d", i)
			if _, err := c.Place(id, e.demand); err != nil {
				panic(err)
			}
			expiry[i+e.lifetime] = append(expiry[i+e.lifetime], id)
			contentionSum += float64(c.Contention())
			utilSum += c.MeanUtilization()
			if m := c.ActiveMachines(); m > peakMachines {
				peakMachines = m
			}
		}
		table.Rows = append(table.Rows, []string{
			pol.Name(), f("%d", peakMachines), f("%.2f", utilSum/events), f("%.1f", contentionSum/events),
		})
	}
	table.Notes = "contention = time-averaged same-dominant co-resident pairs over a churning, type-bursty fleet"
	return table
}
