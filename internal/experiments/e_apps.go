package experiments

import (
	"fmt"
	"time"

	"repro/internal/bioseq"
	"repro/internal/core"
	"repro/internal/jiffy"
	"repro/internal/matmul"
	"repro/internal/video"
)

// E10Matmul: §5.1/[181] — "distributed execution of Strassen's algorithm for
// MATMUL in a serverless setting", with "support for ephemeral storage of
// intermediate results (refer to §4.4)".
func E10Matmul() Table {
	table := Table{
		ID:      "E10",
		Title:   "Matrix multiply: serial vs blocked-parallel vs serverless Strassen",
		Claim:   "§5.1/[181]: serverless fan-out with ephemeral intermediates accelerates MATMUL; Strassen needs 7^k not 8^k products",
		Columns: []string{"n", "serial wall", "blocked wall", "strassen wall", "strassen ops/naive", "max |Δ|"},
	}
	perOp := 200 * time.Nanosecond
	for _, n := range []int{64, 128, 256} {
		a, b := matmul.Random(n, n, 20), matmul.Random(n, n, 21)
		want, _ := matmul.Mul(a, b)

		p, v := core.NewVirtual(core.Options{JiffyBlockSize: 8 << 20, JiffyNodes: 8, BlocksPerNode: 512})
		var serialWall, blockedWall, strassenWall time.Duration
		var maxDiff float64
		v.Run(func() {
			root, err := p.Jiffy.CreateNamespace("/mm", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
			if err != nil {
				panic(err)
			}
			nsB, err := root.CreateChild("blocked", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
			if err != nil {
				panic(err)
			}
			nsS, err := root.CreateChild("strassen", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
			if err != nil {
				panic(err)
			}
			// Serial baseline: one function does all n³ scalar ops.
			start := v.Now()
			v.Sleep(time.Duration(int64(n)*int64(n)*int64(n)) * perOp)
			serialWall = v.Now().Sub(start)

			start = v.Now()
			got, err := matmul.MulBlocked(p.FaaS, nsB, a, b, matmul.ServerlessConfig{
				BlockSize: n / 4, WorkPerOp: perOp,
			})
			if err != nil {
				panic(err)
			}
			blockedWall = v.Now().Sub(start)
			maxDiff = matmul.MaxAbsDiff(want, got)

			start = v.Now()
			got2, err := matmul.StrassenServerless(p.FaaS, nsS, a, b, n/4, matmul.ServerlessConfig{WorkPerOp: perOp})
			if err != nil {
				panic(err)
			}
			strassenWall = v.Now().Sub(start)
			if d := matmul.MaxAbsDiff(want, got2); d > maxDiff {
				maxDiff = d
			}
		})
		v.Close()
		naive := int64(n) * int64(n) * int64(n)
		table.Rows = append(table.Rows, []string{
			f("%d", n),
			serialWall.Round(time.Millisecond).String(),
			blockedWall.Round(time.Millisecond).String(),
			strassenWall.Round(time.Millisecond).String(),
			f("%.2f", float64(matmul.StrassenOps(n, n/4))/float64(naive)),
			f("%.1e", maxDiff),
		})
	}
	table.Notes = "blocked: 16 concurrent tile tasks; strassen: 7 concurrent products at 7/8 the op count per level"
	return table
}

// E13Video: §5.1/[97],[71] — ExCamera-style fine-grained parallel video
// encoding: latency drops with chunk parallelism, at the cost of boundary
// key frames (larger output) and stitch overhead (diminishing returns).
func E13Video() Table {
	table := Table{
		ID:      "E13",
		Title:   "Chunk-parallel video encode: latency vs chunks",
		Claim:   "§5.1/[97],[71]: intra-video parallelism achieves low latency; trade-off is output size + stitch overhead",
		Columns: []string{"chunks", "wall", "speedup", "realtime ratio", "output"},
	}
	clip := video.Synthetic(600, 30, 22) // 20s of 30fps video
	var base time.Duration
	for _, chunks := range []int{1, 2, 4, 8, 16, 32} {
		p, v := core.NewVirtual(core.Options{})
		var rep video.Report
		v.Run(func() {
			var err error
			rep, err = video.EncodeParallel(p.FaaS, clip, video.DefaultCost(), chunks)
			if err != nil {
				panic(err)
			}
		})
		v.Close()
		if chunks == 1 {
			base = rep.Wall
		}
		table.Rows = append(table.Rows, []string{
			f("%d", chunks),
			rep.Wall.Round(10 * time.Millisecond).String(),
			f("%.1fx", float64(base)/float64(rep.Wall)),
			f("%.2f", rep.RealTimeRatio),
			fmtBytes(rep.OutputBytes),
		})
	}
	var labels []string
	var vals []float64
	for _, row := range table.Rows {
		labels = append(labels, row[0]+" chunks")
		var ratio float64
		fmt.Sscanf(row[3], "%f", &ratio)
		vals = append(vals, ratio)
	}
	table.Notes = "realtime ratio < 1 means encoding faster than playback — ExCamera's goal; output grows with forced boundary key frames\nrealtime ratio by chunk count:\n" +
		asciiChart(labels, vals, 40, "x")
	return table
}

// E14SeqCompare: §5.1/[150] — "the use of serverless to carry out an
// all-to-all pairwise comparison among all unique human proteins", here on
// synthetic proteins with exact Smith-Waterman scores.
func E14SeqCompare() Table {
	table := Table{
		ID:      "E14",
		Title:   "All-pairs Smith-Waterman over serverless workers",
		Claim:   "§5.1/[150]: all-to-all sequence comparison scales near-linearly over functions, scores exact",
		Columns: []string{"workers", "pairs", "wall", "speedup", "matches serial"},
	}
	seqs := bioseq.RandomProteins(24, 80, 120, 23)
	want := bioseq.AllPairsSerial(seqs, bioseq.DefaultScoring())
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8, 16} {
		p, v := core.NewVirtual(core.Options{})
		var wall time.Duration
		exact := true
		v.Run(func() {
			start := v.Now()
			got, err := bioseq.AllPairsServerless(p.FaaS, seqs, bioseq.DefaultScoring(), bioseq.ServerlessConfig{
				Workers: w, WorkPerCell: 2 * time.Microsecond,
			})
			if err != nil {
				panic(err)
			}
			wall = v.Now().Sub(start)
			for pr, score := range want {
				if got[pr] != score {
					exact = false
				}
			}
		})
		v.Close()
		if w == 1 {
			base = wall
		}
		table.Rows = append(table.Rows, []string{
			f("%d", w), f("%d", len(want)),
			wall.Round(time.Millisecond).String(),
			f("%.1fx", float64(base)/float64(wall)),
			f("%v", exact),
		})
	}
	table.Notes = "alignment scores are bit-identical to the serial baseline at every worker count"
	return table
}
