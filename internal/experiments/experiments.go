// Package experiments operationalizes the paper's qualitative claims as
// measurable experiments (E1-E18; see DESIGN.md §2 for the full index).
// Le Taureau is a vision/tutorial paper with no evaluation tables of its
// own, so each experiment here turns one claim from the text into a
// reproducible table: the workload, the treatment and baseline systems, and
// the shape the claim predicts. cmd/benchrunner prints the tables;
// bench_test.go wraps each in a testing.B benchmark; EXPERIMENTS.md records
// expected vs measured shapes.
//
// Every experiment runs on a fresh virtual-clock platform, so results are
// deterministic and a full sweep takes seconds of real time.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Table is one experiment's result in paper style.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement under test (with section)
	Columns []string
	Rows    [][]string
	Notes   string
}

// String renders the table fixed-width.
func (t Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			fmt.Fprintf(&b, "  %-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	if t.Notes != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Notes)
	}
	return b.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID   string
	Name string
	Run  func() Table
}

// All returns every experiment, in ID order.
func All() []Experiment {
	exps := []Experiment{
		{"E1", "cost-efficiency", E1CostEfficiency},
		{"E2", "elasticity", E2Elasticity},
		{"E3", "cold-start", E3ColdStart},
		{"E4", "ephemeral-state", E4EphemeralState},
		{"E5", "isolation", E5Isolation},
		{"E6", "pulsar-sketch", E6PulsarSketch},
		{"E7", "orchestration", E7Orchestration},
		{"E8", "training", E8Training},
		{"E9", "stragglers", E9Stragglers},
		{"E10", "matmul", E10Matmul},
		{"E11", "multiplexing", E11Multiplexing},
		{"E12", "bin-packing", E12BinPacking},
		{"E13", "video", E13Video},
		{"E14", "seq-compare", E14SeqCompare},
		{"E15", "pulsar-durability", E15PulsarDurability},
		{"E16", "hyperparam", E16Hyperparam},
		{"E17", "inference", E17Inference},
		{"E18", "leases", E18Leases},
		{"E19", "security-coresidency", E19Security},
		{"E20", "sla-tail-latency", E20SLA},
		{"E21", "tiered-storage", E21TieredStorage},
		{"E22", "provisioned-concurrency", E22Provisioned},
		{"E23", "oram-overhead", E23ORAM},
		{"E24", "isolation-tech", E24IsolationTech},
		{"E25", "evolution-ladder", E25Evolution},
		{"E26", "chaos-recovery", E26ChaosRecovery},
		{"E27", "elastic-control-plane", E27Elastic},
	}
	sort.SliceStable(exps, func(i, j int) bool { return idNum(exps[i].ID) < idNum(exps[j].ID) })
	return exps
}

// ByID returns one experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

func idNum(id string) int {
	var n int
	fmt.Sscanf(id, "E%d", &n)
	return n
}

func f(format string, args ...any) string { return fmt.Sprintf(format, args...) }
