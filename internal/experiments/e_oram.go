package experiments

import (
	"fmt"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/oram"
)

// E23ORAM: §6 "Security" — "increased network communications incentivizes
// the exploration of security primitives that hide network access patterns
// in the cloud, e.g., using ORAMs [169]". Path ORAM makes every access touch
// one uniform root-to-leaf path; this experiment measures the price:
// bandwidth amplification and latency versus direct blob access, across
// store sizes.
func E23ORAM() Table {
	table := Table{
		ID:      "E23",
		Title:   "Path ORAM over the blob store: overhead of hiding access patterns",
		Claim:   "§6/[169]: ORAM hides which block is accessed at a logarithmic bandwidth/latency cost",
		Columns: []string{"blocks", "path len", "store ops/access", "oram access", "direct access", "slowdown"},
	}
	for _, n := range []int{64, 512, 2048} {
		p, v := core.NewVirtual(core.Options{})
		var pathLen int
		var opsPerAccess float64
		var oramDur, directDur time.Duration
		v.Run(func() {
			if err := p.Blob.CreateBucket("oram", "sec"); err != nil {
				panic(err)
			}
			c, err := oram.New(p.Blob, "oram", "tree", n, 42)
			if err != nil {
				panic(err)
			}
			pathLen = c.Levels() + 1
			const accesses = 20
			r0, w0 := c.Reads, c.Writes
			start := v.Now()
			for i := 0; i < accesses; i++ {
				if err := c.Write(int64(i%n), []byte("payload-0123456789")); err != nil {
					panic(err)
				}
			}
			oramDur = v.Now().Sub(start) / accesses
			opsPerAccess = float64((c.Reads-r0)+(c.Writes-w0)) / accesses

			// Direct baseline: one blob put per logical write.
			start = v.Now()
			for i := 0; i < accesses; i++ {
				if _, err := p.Blob.Put("oram", fmt.Sprintf("direct/%d", i%n), []byte("payload-0123456789"), blob.PutOptions{}); err != nil {
					panic(err)
				}
			}
			directDur = v.Now().Sub(start) / accesses
		})
		v.Close()
		table.Rows = append(table.Rows, []string{
			f("%d", n), f("%d", pathLen), f("%.0f", opsPerAccess),
			oramDur.Round(time.Millisecond).String(),
			directDur.Round(time.Millisecond).String(),
			f("%.0fx", float64(oramDur)/float64(directDur)),
		})
	}
	table.Notes = "every ORAM access costs 2(L+1) bucket transfers regardless of which block is touched; overhead grows logarithmically with store size"
	return table
}
