package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/faas"
)

// E24IsolationTech: §6 "Security" — "recent research has focused on
// lightweight isolation between functions on shared hardware via secure
// containers" (Firecracker [29], gVisor [38], Kata [44]); §5.1's USETL [95]
// argues unikernels cut serverless memory and CPU overhead further. The
// lighter the isolation, the cheaper the cold start and the denser the
// packing.
func E24IsolationTech() Table {
	table := Table{
		ID:      "E24",
		Title:   "Isolation technology: cold start, sporadic-traffic p99, packing density",
		Claim:   "§6/[29],[38],[95]: lightweight isolation cuts cold-start latency and per-instance overhead, raising density",
		Columns: []string{"technology", "cold start", "p99 (sporadic)", "instances per 16GiB"},
	}
	// Sporadic traffic: every request arrives past the keep-alive, so each
	// pays the technology's cold start.
	arrivals := make([]time.Duration, 12)
	for i := range arrivals {
		arrivals[i] = time.Duration(i) * 15 * time.Minute
	}
	for _, iso := range faas.Isolations() {
		p, v := core.NewVirtual(core.Options{})
		cfg := iso.Apply(faas.Config{MemoryMB: 128, WarmStart: time.Millisecond})
		if err := p.Tenant("t").Register("fn", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			ctx.Work(20 * time.Millisecond)
			return nil, nil
		}, cfg); err != nil {
			panic(err)
		}
		v.Run(func() {
			rep := faas.Drive(p.FaaS, "fn", nil, arrivals)
			rep.Wait()
		})
		st, _ := p.FaaS.Stats("fn")
		v.Close()
		table.Rows = append(table.Rows, []string{
			iso.Name,
			iso.ColdStart.String(),
			faas.Percentile(st.Durations, 99).Round(time.Millisecond).String(),
			f("%d", iso.Density(128, 16384)),
		})
	}
	table.Notes = "presets follow published measurements (Firecracker ~125ms boot; unikernels tens of ms); density assumes a 128MB function on a 16GiB machine"
	return table
}
