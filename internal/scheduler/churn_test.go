package scheduler

import (
	"fmt"
	"sync"
	"testing"
)

// TestDrainAndGrowCycle exercises the autoscaler's machine lifecycle:
// Grow → Place → Release → DrainEmpty → Grow revives the drained hosts
// instead of provisioning new ones.
func TestDrainAndGrowCycle(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	c.Grow(4)
	if got := c.MachineCount(); got != 4 {
		t.Fatalf("MachineCount = %d, want 4", got)
	}

	// Fill one instance per machine via WorstFit-style manual spread:
	// FirstFit packs, so place demands that fill a machine each.
	full := Resources{CPU: 4000, MemMB: 16384}
	for i := 0; i < 4; i++ {
		mustPlace(t, c, fmt.Sprintf("i%d", i), full)
	}
	if got := c.DrainEmpty(4); got != 0 {
		t.Fatalf("DrainEmpty on a full cluster drained %d, want 0", got)
	}

	// Release the two highest machines' instances and drain them.
	for i := 2; i < 4; i++ {
		if err := c.Release(fmt.Sprintf("i%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.DrainEmpty(10); got != 2 {
		t.Fatalf("DrainEmpty drained %d, want 2", got)
	}
	if got, want := c.MachineCount(), 2; got != want {
		t.Fatalf("MachineCount after drain = %d, want %d", got, want)
	}
	if got := c.RetiredMachines(); got != 2 {
		t.Fatalf("RetiredMachines = %d, want 2", got)
	}

	// A placement now must not land on a retired machine.
	p, err := c.Place("j0", full)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine == 2 || p.Machine == 3 {
		t.Fatalf("placed on retired machine %d", p.Machine)
	}
	// Machines 0, 1 are full, so the cluster grew a fresh machine (ID 4).
	if p.Machine != 4 {
		t.Fatalf("placed on machine %d, want new machine 4", p.Machine)
	}

	// Grow revives the two retired machines before adding new ones.
	before := len(c.Machines())
	c.Grow(2)
	if got := len(c.Machines()); got != before {
		t.Fatalf("Grow(2) provisioned new machines (%d → %d) instead of reviving", before, got)
	}
	if got := c.RetiredMachines(); got != 0 {
		t.Fatalf("RetiredMachines after Grow = %d, want 0", got)
	}
	// Revived machines accept placements again.
	p, err = c.Place("j1", full)
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine != 2 {
		t.Fatalf("revived placement on machine %d, want 2", p.Machine)
	}
}

// TestFreeSlots checks the autoscaler headroom signal against hand-counted
// capacity, including the retired-machine exclusion.
func TestFreeSlots(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	demand := Resources{CPU: 1000, MemMB: 4096}
	if got := c.SlotsPerMachine(demand); got != 4 {
		t.Fatalf("SlotsPerMachine = %d, want 4", got)
	}
	c.Grow(2)
	if got := c.FreeSlots(demand); got != 8 {
		t.Fatalf("FreeSlots on empty fleet = %d, want 8", got)
	}
	mustPlace(t, c, "a", demand)
	if got := c.FreeSlots(demand); got != 7 {
		t.Fatalf("FreeSlots = %d, want 7", got)
	}
	if got := c.DrainEmpty(1); got != 1 {
		t.Fatalf("DrainEmpty = %d, want 1", got)
	}
	if got := c.FreeSlots(demand); got != 3 {
		t.Fatalf("FreeSlots after drain = %d, want 3", got)
	}
	if c.SlotsPerMachine(Resources{Accel: 1}) != 0 {
		t.Fatal("accel demand should not fit an accel-free machine")
	}
}

// TestChurnInvariants hammers Grow/Place/Release/DrainEmpty concurrently
// (run under -race) and then asserts the bookkeeping invariants: every
// placed instance is accounted, ActiveMachines matches machines holding
// instances, MeanUtilization stays in [0,1], and a final release of
// everything returns the fleet to empty.
func TestChurnInvariants(t *testing.T) {
	c := NewCluster(machineCap, BestFit{})
	c.Grow(8)
	demand := Resources{CPU: 500, MemMB: 2048}

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := fmt.Sprintf("w%d-r%d", w, r)
				if _, err := c.PlaceTenant(id, fmt.Sprintf("t%d", w%3), demand); err != nil {
					t.Errorf("place %s: %v", id, err)
					return
				}
				if mu := c.MeanUtilization(); mu < 0 || mu > 1 {
					t.Errorf("MeanUtilization %v out of [0,1]", mu)
					return
				}
				if r%2 == 0 {
					if err := c.Release(id); err != nil {
						t.Errorf("release %s: %v", id, err)
						return
					}
				}
				if r%10 == 9 {
					c.DrainEmpty(1)
					c.Grow(1)
				}
			}
		}()
	}
	wg.Wait()

	// Every worker kept its odd-round placements: workers × rounds/2.
	want := workers * rounds / 2
	live := 0
	c.mu.Lock()
	for _, m := range c.machines {
		live += len(m.instances)
		if m.retired && len(m.instances) > 0 {
			t.Error("retired machine holds instances")
		}
	}
	placed := len(c.placed)
	c.mu.Unlock()
	if live != want || placed != want {
		t.Fatalf("live=%d placed=%d, want %d", live, placed, want)
	}

	active := 0
	c.mu.Lock()
	for _, m := range c.machines {
		if len(m.instances) > 0 {
			active++
		}
	}
	c.mu.Unlock()
	if got := c.ActiveMachines(); got != active {
		t.Fatalf("ActiveMachines = %d, want %d", got, active)
	}

	// Release the survivors; the fleet must return to empty.
	c.mu.Lock()
	ids := make([]string, 0, len(c.placed))
	for id := range c.placed {
		ids = append(ids, id)
	}
	c.mu.Unlock()
	for _, id := range ids {
		if err := c.Release(id); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ActiveMachines(); got != 0 {
		t.Fatalf("ActiveMachines after full release = %d, want 0", got)
	}
	if got := c.MeanUtilization(); got != 0 {
		t.Fatalf("MeanUtilization after full release = %v, want 0", got)
	}
	n := len(c.Machines())
	if got := c.DrainEmpty(n + 1); got != n {
		t.Fatalf("DrainEmpty(all) = %d, want %d", got, n)
	}
	if got := c.MachineCount(); got != 0 {
		t.Fatalf("MachineCount after full drain = %d, want 0", got)
	}
}
