package scheduler

import (
	"fmt"
	"testing"
)

func TestTenantDedicatedZeroExposure(t *testing.T) {
	c := NewCluster(machineCap, TenantDedicated{})
	for i := 0; i < 24; i++ {
		tenant := fmt.Sprintf("t%d", i%4)
		if _, err := c.PlaceTenant(fmt.Sprintf("i%d", i), tenant, Resources{CPU: 900}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CrossTenantPairs(); got != 0 {
		t.Fatalf("cross-tenant pairs = %d, want 0", got)
	}
	// Each tenant's 6 instances need 2 machines (4 per machine) → 8 total.
	if got := c.ActiveMachines(); got != 8 {
		t.Fatalf("machines = %d, want 8", got)
	}
}

func TestTenantDedicatedReusesEmptyMachines(t *testing.T) {
	c := NewCluster(machineCap, TenantDedicated{})
	if _, err := c.PlaceTenant("a1", "a", Resources{CPU: 900}); err != nil {
		t.Fatal(err)
	}
	if err := c.Release("a1"); err != nil {
		t.Fatal(err)
	}
	p, err := c.PlaceTenant("b1", "b", Resources{CPU: 900})
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine != 0 {
		t.Fatalf("empty machine not reused: placed on %d", p.Machine)
	}
}

func TestCrossTenantPairsCounting(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	// Machine 0: 2 of tenant A + 1 of tenant B → 2 cross pairs.
	for i, tenant := range []string{"a", "a", "b"} {
		if _, err := c.PlaceTenant(fmt.Sprintf("i%d", i), tenant, Resources{CPU: 1000}); err != nil {
			t.Fatal(err)
		}
	}
	if got := c.CrossTenantPairs(); got != 2 {
		t.Fatalf("pairs = %d, want 2", got)
	}
	// Removing the B instance zeroes exposure.
	if err := c.Release("i2"); err != nil {
		t.Fatal(err)
	}
	if got := c.CrossTenantPairs(); got != 0 {
		t.Fatalf("pairs after release = %d", got)
	}
}

func TestContendersOf(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	cpu := Resources{CPU: 1000, MemMB: 100}
	mem := Resources{CPU: 10, MemMB: 8000}
	mustPlace(t, c, "c1", cpu)
	mustPlace(t, c, "c2", cpu)
	mustPlace(t, c, "m1", mem)
	if got := c.ContendersOf("c1"); got != 1 {
		t.Fatalf("c1 contenders = %d, want 1", got)
	}
	if got := c.ContendersOf("m1"); got != 0 {
		t.Fatalf("m1 contenders = %d, want 0", got)
	}
	if got := c.ContendersOf("ghost"); got != 0 {
		t.Fatalf("unknown instance contenders = %d", got)
	}
}

func TestGrowPrebuildsFleet(t *testing.T) {
	c := NewCluster(machineCap, WorstFit{})
	c.Grow(4)
	if got := len(c.Machines()); got != 4 {
		t.Fatalf("machines = %d", got)
	}
	// WorstFit now spreads across the pre-built fleet.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		p, err := c.Place(fmt.Sprintf("i%d", i), Resources{CPU: 1000})
		if err != nil {
			t.Fatal(err)
		}
		seen[p.Machine] = true
	}
	if len(seen) != 4 {
		t.Fatalf("worst-fit did not spread: %v", seen)
	}
}

func TestPolicyChoosingUnfitMachineRejected(t *testing.T) {
	c := NewCluster(machineCap, badPolicy{})
	if _, err := c.Place("a", Resources{CPU: 4000}); err != nil {
		t.Fatal(err) // first placement creates machine 0
	}
	// badPolicy keeps answering machine 0, which is now full.
	if _, err := c.Place("b", Resources{CPU: 4000}); err == nil {
		t.Fatal("placement on a full machine should error")
	}
}

type badPolicy struct{}

func (badPolicy) Name() string { return "bad" }
func (badPolicy) Choose(machines []*Machine, _ Resources, _ string) int {
	if len(machines) == 0 {
		return -1
	}
	return 0
}
