// Package scheduler implements the cluster placement layer behind the
// platform, and the paper's §6 "SLA Guarantees" proposal: bin-packing
// techniques that pack functions onto machines based on heuristics ensuring
// performance isolation — e.g. packing together functions with complementary
// resource requirements (CPU-heavy with memory-heavy) so they do not contend.
//
// Machines expose a heterogeneous resource vector (CPU, memory, and an
// accelerator dimension standing in for the GPUs/TPUs/FPGAs of §6 "Hardware
// Heterogeneity"). Policies place instance demands onto machines; the
// experiments compare machine counts and contention across policies (E11,
// E12).
package scheduler

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/errs"
)

// ErrUnplaceable is returned when no machine can fit a demand even when
// empty. It wraps the platform-wide errs.ErrNoCapacity identity.
var ErrUnplaceable = fmt.Errorf("scheduler: demand exceeds machine capacity (%w)", errs.ErrNoCapacity)

// Resources is a demand or capacity vector. Units are abstract (millicores,
// MB, accelerator slots); only ratios matter to the policies.
type Resources struct {
	CPU   float64
	MemMB float64
	Accel float64
}

// Add returns r + o.
func (r Resources) Add(o Resources) Resources {
	return Resources{r.CPU + o.CPU, r.MemMB + o.MemMB, r.Accel + o.Accel}
}

// Sub returns r - o.
func (r Resources) Sub(o Resources) Resources {
	return Resources{r.CPU - o.CPU, r.MemMB - o.MemMB, r.Accel - o.Accel}
}

// Fits reports whether demand o fits within r.
func (r Resources) Fits(o Resources) bool {
	return o.CPU <= r.CPU && o.MemMB <= r.MemMB && o.Accel <= r.Accel
}

// Dominant returns which dimension of r is largest relative to cap ("cpu",
// "mem" or "accel"). It drives the complementary-packing heuristic.
func (r Resources) Dominant(cap Resources) string {
	cpu, mem, acc := 0.0, 0.0, 0.0
	if cap.CPU > 0 {
		cpu = r.CPU / cap.CPU
	}
	if cap.MemMB > 0 {
		mem = r.MemMB / cap.MemMB
	}
	if cap.Accel > 0 {
		acc = r.Accel / cap.Accel
	}
	switch {
	case acc >= cpu && acc >= mem && acc > 0:
		return "accel"
	case cpu >= mem:
		return "cpu"
	default:
		return "mem"
	}
}

// Placement records where an instance landed.
type Placement struct {
	InstanceID string
	Machine    int
}

// Machine is one worker host.
type Machine struct {
	ID       int
	Capacity Resources
	Used     Resources
	// retired marks a machine drained out of the fleet by the autoscaler:
	// policies never place on it, and Grow revives retired machines before
	// provisioning new ones. Only empty machines can retire.
	retired bool
	// byDominant counts resident instances by dominant resource, used by
	// the contention model.
	byDominant map[string]int
	// byTenant counts resident instances per tenant, used by the
	// co-residency (security, §6) metrics and tenant-dedicated policies.
	byTenant  map[string]int
	instances map[string]Resources
}

// Tenants returns how many distinct tenants share the machine.
func (m *Machine) Tenants() int { return len(m.byTenant) }

// HostsOnly reports whether the machine is empty or hosts only the given
// tenant.
func (m *Machine) HostsOnly(tenant string) bool {
	if len(m.byTenant) == 0 {
		return true
	}
	_, ok := m.byTenant[tenant]
	return ok && len(m.byTenant) == 1
}

// Free returns the machine's remaining capacity.
func (m *Machine) Free() Resources { return m.Capacity.Sub(m.Used) }

// Utilization returns the max-dimension utilization in [0,1].
func (m *Machine) Utilization() float64 {
	var u float64
	if m.Capacity.CPU > 0 {
		u = math.Max(u, m.Used.CPU/m.Capacity.CPU)
	}
	if m.Capacity.MemMB > 0 {
		u = math.Max(u, m.Used.MemMB/m.Capacity.MemMB)
	}
	if m.Capacity.Accel > 0 {
		u = math.Max(u, m.Used.Accel/m.Capacity.Accel)
	}
	return u
}

// Policy selects a machine for a demand from the given tenant.
// Implementations return the index of the chosen machine in machines, or -1
// to request a new machine.
type Policy interface {
	Name() string
	Choose(machines []*Machine, demand Resources, tenant string) int
}

// Cluster is a growable fleet of identical machines under one policy.
type Cluster struct {
	mu       sync.Mutex
	template Resources
	policy   Policy
	machines []*Machine
	placed   map[string]int    // instance → machine
	tenantOf map[string]string // instance → tenant
}

// NewCluster creates an empty cluster that grows machines with the given
// per-machine capacity on demand.
func NewCluster(perMachine Resources, policy Policy) *Cluster {
	return &Cluster{template: perMachine, policy: policy, placed: map[string]int{}, tenantOf: map[string]string{}}
}

// Grow adds n machines to the placeable fleet: retired machines are revived
// first (a drained host returning to service is cheaper than provisioning),
// then new empty machines are appended.
func (c *Cluster) Grow(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.machines {
		if n == 0 {
			return
		}
		if m.retired {
			m.retired = false
			n--
		}
	}
	for i := 0; i < n; i++ {
		c.machines = append(c.machines, &Machine{
			ID:         len(c.machines),
			Capacity:   c.template,
			byDominant: map[string]int{},
			byTenant:   map[string]int{},
			instances:  map[string]Resources{},
		})
	}
}

// DrainEmpty retires up to max empty machines (highest IDs first, so the
// fleet shrinks from its most recent growth), removing them from placement
// until Grow revives them. It returns how many machines were retired.
func (c *Cluster) DrainEmpty(max int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	drained := 0
	for i := len(c.machines) - 1; i >= 0 && drained < max; i-- {
		m := c.machines[i]
		if !m.retired && len(m.instances) == 0 {
			m.retired = true
			drained++
		}
	}
	return drained
}

// eligibleLocked returns the placeable (non-retired) machines. c.mu held.
func (c *Cluster) eligibleLocked() []*Machine {
	out := make([]*Machine, 0, len(c.machines))
	for _, m := range c.machines {
		if !m.retired {
			out = append(out, m)
		}
	}
	return out
}

// MachineCount returns the placeable (non-retired) machine count.
func (c *Cluster) MachineCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.eligibleLocked())
}

// RetiredMachines returns how many machines are currently drained out.
func (c *Cluster) RetiredMachines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.machines {
		if m.retired {
			n++
		}
	}
	return n
}

// FreeSlots returns how many instances of demand the placeable fleet's
// current free capacity can absorb — the autoscaler's headroom signal.
func (c *Cluster) FreeSlots(demand Resources) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, m := range c.machines {
		if m.retired {
			continue
		}
		total += slotsIn(m.Free(), demand)
	}
	return total
}

// SlotsPerMachine returns how many instances of demand one empty machine
// holds (0 when the demand does not fit at all).
func (c *Cluster) SlotsPerMachine(demand Resources) int {
	return slotsIn(c.template, demand)
}

func slotsIn(free, demand Resources) int {
	n := math.MaxInt
	dim := func(f, d float64) {
		if d > 0 {
			if k := int(f / d); k < n {
				n = k
			}
		}
	}
	dim(free.CPU, demand.CPU)
	dim(free.MemMB, demand.MemMB)
	dim(free.Accel, demand.Accel)
	if n == math.MaxInt || n < 0 {
		return 0
	}
	return n
}

// Place assigns an instance's demand to a machine, growing the cluster if
// the policy finds no fit. Equivalent to PlaceTenant with an empty tenant.
func (c *Cluster) Place(instanceID string, demand Resources) (Placement, error) {
	return c.PlaceTenant(instanceID, "", demand)
}

// PlaceTenant assigns a tenant's instance to a machine.
func (c *Cluster) PlaceTenant(instanceID, tenant string, demand Resources) (Placement, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.template.Fits(demand) {
		return Placement{}, fmt.Errorf("%w: %+v > %+v", ErrUnplaceable, demand, c.template)
	}
	idx := c.policy.Choose(c.eligibleLocked(), demand, tenant)
	if idx < 0 {
		m := &Machine{
			ID:         len(c.machines),
			Capacity:   c.template,
			byDominant: map[string]int{},
			byTenant:   map[string]int{},
			instances:  map[string]Resources{},
		}
		c.machines = append(c.machines, m)
		idx = m.ID
	} else if idx >= len(c.machines) || !c.machines[idx].Free().Fits(demand) {
		return Placement{}, fmt.Errorf("%w: policy %s chose machine %d without room for %+v",
			ErrUnplaceable, c.policy.Name(), idx, demand)
	}
	m := c.machines[idx]
	m.Used = m.Used.Add(demand)
	m.byDominant[demand.Dominant(m.Capacity)]++
	m.byTenant[tenant]++
	m.instances[instanceID] = demand
	c.placed[instanceID] = idx
	c.tenantOf[instanceID] = tenant
	return Placement{InstanceID: instanceID, Machine: idx}, nil
}

// Release removes an instance from its machine.
func (c *Cluster) Release(instanceID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.placed[instanceID]
	if !ok {
		return fmt.Errorf("scheduler: instance %q not placed", instanceID)
	}
	m := c.machines[idx]
	demand := m.instances[instanceID]
	tenant := c.tenantOf[instanceID]
	m.Used = m.Used.Sub(demand)
	m.byDominant[demand.Dominant(m.Capacity)]--
	m.byTenant[tenant]--
	if m.byTenant[tenant] == 0 {
		delete(m.byTenant, tenant)
	}
	delete(m.instances, instanceID)
	delete(c.placed, instanceID)
	delete(c.tenantOf, instanceID)
	return nil
}

// ContendersOf returns how many co-resident instances share the dominant
// resource of the given instance — the interference it currently suffers.
func (c *Cluster) ContendersOf(instanceID string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx, ok := c.placed[instanceID]
	if !ok {
		return 0
	}
	m := c.machines[idx]
	dom := m.instances[instanceID].Dominant(m.Capacity)
	n := m.byDominant[dom] - 1
	if n < 0 {
		n = 0
	}
	return n
}

// CrossTenantPairs counts co-resident instance pairs belonging to different
// tenants — the §6 side-channel exposure surface: "functions of different
// tenants may run on the same physical hardware, increasing the likelihood
// of traditional side-channel attacks".
func (c *Cluster) CrossTenantPairs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := 0
	for _, m := range c.machines {
		n := len(m.instances)
		allPairs := n * (n - 1) / 2
		samePairs := 0
		for _, cnt := range m.byTenant {
			samePairs += cnt * (cnt - 1) / 2
		}
		total += allPairs - samePairs
	}
	return total
}

// Machines returns a snapshot of the fleet.
func (c *Cluster) Machines() []Machine {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Machine, len(c.machines))
	for i, m := range c.machines {
		out[i] = Machine{ID: m.ID, Capacity: m.Capacity, Used: m.Used}
	}
	return out
}

// ActiveMachines counts machines hosting at least one instance.
func (c *Cluster) ActiveMachines() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.machines {
		if len(m.instances) > 0 {
			n++
		}
	}
	return n
}

// MeanUtilization averages max-dimension utilization over active machines.
func (c *Cluster) MeanUtilization() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var sum float64
	var n int
	for _, m := range c.machines {
		if len(m.instances) > 0 {
			sum += m.Utilization()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Contention scores the fleet's interference: for each machine, instances
// sharing the same dominant resource contend pairwise; the score is the total
// count of same-dominant pairs. Complementary packing drives it toward zero
// (§6's performance-isolation goal).
func (c *Cluster) Contention() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	score := 0
	for _, m := range c.machines {
		for _, n := range m.byDominant {
			score += n * (n - 1) / 2
		}
	}
	return score
}

// --- policies ---

// FirstFit places on the lowest-indexed machine with room.
type FirstFit struct{}

// Name implements Policy.
func (FirstFit) Name() string { return "first-fit" }

// Choose implements Policy.
func (FirstFit) Choose(machines []*Machine, demand Resources, _ string) int {
	for _, m := range machines {
		if m.Free().Fits(demand) {
			return m.ID
		}
	}
	return -1
}

// BestFit places on the machine whose free capacity is tightest after
// placement (minimizes fragmentation).
type BestFit struct{}

// Name implements Policy.
func (BestFit) Name() string { return "best-fit" }

// Choose implements Policy.
func (BestFit) Choose(machines []*Machine, demand Resources, _ string) int {
	best, bestSlack := -1, math.MaxFloat64
	for _, m := range machines {
		free := m.Free()
		if !free.Fits(demand) {
			continue
		}
		rem := free.Sub(demand)
		slack := rem.CPU + rem.MemMB/1024 + rem.Accel
		if slack < bestSlack {
			best, bestSlack = m.ID, slack
		}
	}
	return best
}

// WorstFit places on the machine with the most remaining room (spreads load).
type WorstFit struct{}

// Name implements Policy.
func (WorstFit) Name() string { return "worst-fit" }

// Choose implements Policy.
func (WorstFit) Choose(machines []*Machine, demand Resources, _ string) int {
	best, bestSlack := -1, -1.0
	for _, m := range machines {
		free := m.Free()
		if !free.Fits(demand) {
			continue
		}
		slack := free.CPU + free.MemMB/1024 + free.Accel
		if slack > bestSlack {
			best, bestSlack = m.ID, slack
		}
	}
	return best
}

// Complementary is the paper's §6 proposal: prefer machines where the
// demand's dominant resource is *not* already the dominant resource of
// resident instances, packing CPU-heavy with memory-heavy functions so they
// do not contend. Among non-contending candidates it behaves like best-fit.
type Complementary struct{}

// Name implements Policy.
func (Complementary) Name() string { return "complementary" }

// Choose implements Policy.
func (Complementary) Choose(machines []*Machine, demand Resources, _ string) int {
	type cand struct {
		id         int
		contenders int
		slack      float64
	}
	var cands []cand
	for _, m := range machines {
		free := m.Free()
		if !free.Fits(demand) {
			continue
		}
		dom := demand.Dominant(m.Capacity)
		rem := free.Sub(demand)
		cands = append(cands, cand{
			id:         m.ID,
			contenders: m.byDominant[dom],
			slack:      rem.CPU + rem.MemMB/1024 + rem.Accel,
		})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].contenders != cands[j].contenders {
			return cands[i].contenders < cands[j].contenders
		}
		if cands[i].slack != cands[j].slack {
			return cands[i].slack < cands[j].slack
		}
		return cands[i].id < cands[j].id
	})
	return cands[0].id
}

// TenantDedicated is the hardware-isolation end of §6's security spectrum:
// an instance only shares a machine with its own tenant, eliminating
// cross-tenant co-residency (and its side-channel exposure) at the price of
// lower consolidation. Within a tenant's machines it packs first-fit.
type TenantDedicated struct{}

// Name implements Policy.
func (TenantDedicated) Name() string { return "tenant-dedicated" }

// Choose implements Policy.
func (TenantDedicated) Choose(machines []*Machine, demand Resources, tenant string) int {
	for _, m := range machines {
		if m.HostsOnly(tenant) && len(m.instances) > 0 && m.Free().Fits(demand) {
			return m.ID
		}
	}
	// Reuse a fully empty machine before growing.
	for _, m := range machines {
		if len(m.instances) == 0 && m.Free().Fits(demand) {
			return m.ID
		}
	}
	return -1
}
