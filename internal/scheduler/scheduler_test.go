package scheduler

import (
	"errors"
	"fmt"
	"testing"
)

var machineCap = Resources{CPU: 4000, MemMB: 16384, Accel: 0}

func TestResourcesArithmetic(t *testing.T) {
	a := Resources{CPU: 2, MemMB: 4, Accel: 1}
	b := Resources{CPU: 1, MemMB: 1, Accel: 1}
	if got := a.Add(b); got != (Resources{3, 5, 2}) {
		t.Fatalf("Add = %+v", got)
	}
	if got := a.Sub(b); got != (Resources{1, 3, 0}) {
		t.Fatalf("Sub = %+v", got)
	}
	if !a.Fits(b) || b.Fits(a) {
		t.Fatal("Fits wrong")
	}
}

func TestDominant(t *testing.T) {
	cap := Resources{CPU: 4000, MemMB: 16384, Accel: 4}
	if d := (Resources{CPU: 2000, MemMB: 1024}).Dominant(cap); d != "cpu" {
		t.Fatalf("dominant = %s", d)
	}
	if d := (Resources{CPU: 100, MemMB: 8192}).Dominant(cap); d != "mem" {
		t.Fatalf("dominant = %s", d)
	}
	if d := (Resources{CPU: 100, MemMB: 100, Accel: 2}).Dominant(cap); d != "accel" {
		t.Fatalf("dominant = %s", d)
	}
}

func TestFirstFitGrowsOnlyWhenFull(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	// Each instance takes half a machine's CPU: 2 per machine.
	for i := 0; i < 4; i++ {
		_, err := c.Place(fmt.Sprintf("i%d", i), Resources{CPU: 2000, MemMB: 1024})
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := c.ActiveMachines(); got != 2 {
		t.Fatalf("machines = %d, want 2", got)
	}
}

func TestUnplaceable(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	if _, err := c.Place("big", Resources{CPU: 99999}); !errors.Is(err, ErrUnplaceable) {
		t.Fatalf("err = %v", err)
	}
}

func TestReleaseFreesCapacity(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	_, err := c.Place("a", Resources{CPU: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Full machine: next placement grows the fleet.
	_, err = c.Place("b", Resources{CPU: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if c.ActiveMachines() != 2 {
		t.Fatal("expected 2 active machines")
	}
	if err := c.Release("a"); err != nil {
		t.Fatal(err)
	}
	if c.ActiveMachines() != 1 {
		t.Fatal("release did not empty machine")
	}
	// New placement reuses the empty machine (first-fit).
	p, err := c.Place("c", Resources{CPU: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Machine != 0 {
		t.Fatalf("placed on machine %d, want 0", p.Machine)
	}
	if err := c.Release("ghost"); err == nil {
		t.Fatal("releasing unknown instance should error")
	}
}

func TestBestFitPacksTightest(t *testing.T) {
	c := NewCluster(machineCap, BestFit{})
	mustPlace(t, c, "a", Resources{CPU: 3000}) // m0: 1000 free
	mustPlace(t, c, "b", Resources{CPU: 1000}) // m0 fits exactly under best-fit
	if c.ActiveMachines() != 1 {
		t.Fatalf("best-fit spread across %d machines", c.ActiveMachines())
	}
}

func TestWorstFitSpreads(t *testing.T) {
	c := NewCluster(machineCap, WorstFit{})
	mustPlace(t, c, "a", Resources{CPU: 1000})
	mustPlace(t, c, "b", Resources{CPU: 1000})
	// Worst-fit picks the machine with most slack; with one machine at
	// 2000/4000 it still fits there, so both land on m0. Fill it and check
	// spreading across two.
	mustPlace(t, c, "c", Resources{CPU: 2000})
	mustPlace(t, c, "d", Resources{CPU: 1000}) // m0 full → m1
	mustPlace(t, c, "e", Resources{CPU: 1000}) // m1 has most slack
	ms := c.Machines()
	if len(ms) != 2 {
		t.Fatalf("machines = %d", len(ms))
	}
}

func TestComplementaryAvoidsContention(t *testing.T) {
	// Seed two machines: m0 hosts a CPU-dominant instance, m1 a
	// memory-dominant one (the second seed is sized so it cannot fit on
	// m0). A new CPU-heavy arrival then lands on m0 under first-fit
	// (contending) but on m1 under complementary packing (isolated).
	cpuSeed := Resources{CPU: 2000, MemMB: 1000}  // cpu-dominant
	memSeed := Resources{CPU: 2500, MemMB: 12000} // forces m1; mem-dominant
	arrival := Resources{CPU: 1000, MemMB: 1000}  // cpu-dominant

	for _, tc := range []struct {
		policy      Policy
		wantMachine int
		wantScore   int
	}{
		{FirstFit{}, 0, 1},
		{Complementary{}, 1, 0},
	} {
		c := NewCluster(machineCap, tc.policy)
		mustPlace(t, c, "cpu-seed", cpuSeed)
		mustPlace(t, c, "mem-seed", memSeed)
		p, err := c.Place("arrival", arrival)
		if err != nil {
			t.Fatal(err)
		}
		if p.Machine != tc.wantMachine {
			t.Errorf("%s placed arrival on machine %d, want %d", tc.policy.Name(), p.Machine, tc.wantMachine)
		}
		if got := c.Contention(); got != tc.wantScore {
			t.Errorf("%s contention = %d, want %d", tc.policy.Name(), got, tc.wantScore)
		}
	}
}

func TestUtilizationAndMean(t *testing.T) {
	c := NewCluster(machineCap, FirstFit{})
	mustPlace(t, c, "a", Resources{CPU: 2000, MemMB: 4096})
	ms := c.Machines()
	if u := ms[0].Utilization(); u != 0.5 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
	if mu := c.MeanUtilization(); mu != 0.5 {
		t.Fatalf("mean utilization = %v", mu)
	}
	empty := NewCluster(machineCap, FirstFit{})
	if empty.MeanUtilization() != 0 {
		t.Fatal("empty cluster mean utilization should be 0")
	}
}

func TestPolicyNames(t *testing.T) {
	for _, p := range []Policy{FirstFit{}, BestFit{}, WorstFit{}, Complementary{}} {
		if p.Name() == "" {
			t.Fatal("empty policy name")
		}
	}
}

func mustPlace(t *testing.T, c *Cluster, id string, r Resources) {
	t.Helper()
	if _, err := c.Place(id, r); err != nil {
		t.Fatal(err)
	}
}
