package matmul

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/simclock"
)

func TestMulKnownValues(t *testing.T) {
	a := Matrix{Rows: 2, Cols: 2, Data: []float64{1, 2, 3, 4}}
	b := Matrix{Rows: 2, Cols: 2, Data: []float64{5, 6, 7, 8}}
	c, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("c = %v, want %v", c.Data, want)
		}
	}
}

func TestMulDimensionCheck(t *testing.T) {
	if _, err := Mul(New(2, 3), New(2, 3)); !errors.Is(err, ErrDims) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Add(New(2, 3), New(3, 2)); !errors.Is(err, ErrDims) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Sub(New(2, 3), New(3, 2)); !errors.Is(err, ErrDims) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrassenMatchesSerial(t *testing.T) {
	for _, n := range []int{2, 8, 32, 64} {
		a, b := Random(n, n, 1), Random(n, n, 2)
		want, _ := Mul(a, b)
		got, err := Strassen(a, b, 4)
		if err != nil {
			t.Fatal(err)
		}
		if d := MaxAbsDiff(want, got); d > 1e-9 {
			t.Fatalf("n=%d: strassen differs by %v", n, d)
		}
	}
}

func TestStrassenValidation(t *testing.T) {
	if _, err := Strassen(New(3, 3), New(3, 3), 1); !errors.Is(err, ErrNotPow2) {
		t.Fatalf("err = %v", err)
	}
	if _, err := Strassen(New(4, 2), New(2, 4), 1); !errors.Is(err, ErrNotPow2) {
		t.Fatalf("err = %v", err)
	}
}

func TestStrassenOpsSavings(t *testing.T) {
	// n=256, cutoff 32: 3 levels of recursion → 7³·32³ vs 8³·32³.
	strassenOps := StrassenOps(256, 32)
	naiveOps := int64(256) * 256 * 256
	if strassenOps >= naiveOps {
		t.Fatalf("strassen ops %d not fewer than naive %d", strassenOps, naiveOps)
	}
	want := int64(7*7*7) * 32 * 32 * 32
	if strassenOps != want {
		t.Fatalf("ops = %d, want %d", strassenOps, want)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(rows, cols uint8) bool {
		r, c := int(rows)%8+1, int(cols)%8+1
		m := Random(r, c, int64(rows)*31+int64(cols))
		got, err := decode(encode(m))
		if err != nil {
			return false
		}
		return MaxAbsDiff(m, got) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
	if _, err := decode([]byte{1, 2}); err == nil {
		t.Fatal("short decode should fail")
	}
	if _, err := decode(make([]byte, 9)); err == nil {
		t.Fatal("size-mismatch decode should fail")
	}
}

func serverlessEnv(t *testing.T) (*simclock.Virtual, *faas.Platform, *jiffy.Namespace) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	p := faas.New(v, nil)
	ctrl := jiffy.NewController(v, nil, jiffy.Config{BlockSize: 1 << 20, Latency: jiffy.NoLatency})
	ctrl.AddNode("n0", 256)
	ns, err := ctrl.CreateNamespace("/mm", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	return v, p, ns
}

func TestMulBlockedMatchesSerial(t *testing.T) {
	v, p, ns := serverlessEnv(t)
	a, b := Random(50, 70, 3), Random(70, 30, 4)
	want, _ := Mul(a, b)
	var got Matrix
	v.Run(func() {
		var err error
		got, err = MulBlocked(p, ns, a, b, ServerlessConfig{BlockSize: 16})
		if err != nil {
			t.Error(err)
		}
	})
	if d := MaxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("blocked result differs by %v", d)
	}
}

func TestMulBlockedDimensionCheck(t *testing.T) {
	v, p, ns := serverlessEnv(t)
	v.Run(func() {
		if _, err := MulBlocked(p, ns, New(2, 3), New(2, 3), ServerlessConfig{}); !errors.Is(err, ErrDims) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestStrassenServerlessMatchesSerial(t *testing.T) {
	v, p, ns := serverlessEnv(t)
	a, b := Random(64, 64, 5), Random(64, 64, 6)
	want, _ := Mul(a, b)
	var got Matrix
	v.Run(func() {
		var err error
		got, err = StrassenServerless(p, ns, a, b, 8, ServerlessConfig{})
		if err != nil {
			t.Error(err)
		}
	})
	if d := MaxAbsDiff(want, got); d > 1e-9 {
		t.Fatalf("serverless strassen differs by %v", d)
	}
}

func TestStrassenServerlessParallelism(t *testing.T) {
	// With WorkPerOp set, the 7 products must overlap: wall time well under
	// 7× a single product's modelled compute.
	v, p, ns := serverlessEnv(t)
	a, b := Random(32, 32, 7), Random(32, 32, 8)
	perOp := 10 * time.Microsecond
	oneProduct := time.Duration(StrassenOps(16, 8)) * perOp
	end := v.Run(func() {
		if _, err := StrassenServerless(p, ns, a, b, 8, ServerlessConfig{WorkPerOp: perOp}); err != nil {
			t.Error(err)
		}
	})
	if el := end.Sub(simclock.Epoch); el > 3*oneProduct {
		t.Fatalf("7 products serialized: %v > 3×%v", el, oneProduct)
	}
}
