package matmul

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
)

// encode serializes a matrix for ephemeral storage.
func encode(m Matrix) []byte {
	buf := make([]byte, 8+8*len(m.Data))
	binary.BigEndian.PutUint32(buf[0:4], uint32(m.Rows))
	binary.BigEndian.PutUint32(buf[4:8], uint32(m.Cols))
	for i, v := range m.Data {
		binary.BigEndian.PutUint64(buf[8+8*i:], math.Float64bits(v))
	}
	return buf
}

// decode deserializes a matrix.
func decode(b []byte) (Matrix, error) {
	if len(b) < 8 {
		return Matrix{}, fmt.Errorf("matmul: short matrix encoding (%d bytes)", len(b))
	}
	rows := int(binary.BigEndian.Uint32(b[0:4]))
	cols := int(binary.BigEndian.Uint32(b[4:8]))
	if len(b) != 8+8*rows*cols {
		return Matrix{}, fmt.Errorf("matmul: encoding size %d != %dx%d", len(b), rows, cols)
	}
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = math.Float64frombits(binary.BigEndian.Uint64(b[8+8*i:]))
	}
	return m, nil
}

// ServerlessConfig parameterizes the distributed multiply.
type ServerlessConfig struct {
	// BlockSize is the tile dimension for MulBlocked. Default 64.
	BlockSize int
	// Tenant owns the worker function. Default "matmul".
	Tenant string
	// WorkPerOp models compute time per scalar multiply-add on the
	// platform clock (zero = real compute only).
	WorkPerOp time.Duration
	// Worker overrides the worker function config.
	Worker faas.Config
}

func (c ServerlessConfig) withDefaults() ServerlessConfig {
	if c.BlockSize <= 0 {
		c.BlockSize = 64
	}
	if c.Tenant == "" {
		c.Tenant = "matmul"
	}
	if c.Worker.ColdStart == 0 {
		c.Worker.ColdStart = time.Millisecond
	}
	if c.Worker.MaxRetries == 0 {
		c.Worker.MaxRetries = -1
	}
	return c
}

// MulBlocked multiplies a×b by fanning tile products out over FaaS
// functions, exchanging tiles through the Jiffy namespace ns (the
// ephemeral-intermediate-state pattern of [181]).
func MulBlocked(p *faas.Platform, ns *jiffy.Namespace, a, b Matrix, cfg ServerlessConfig) (Matrix, error) {
	if a.Cols != b.Rows {
		return Matrix{}, fmt.Errorf("%w: %dx%d × %dx%d", ErrDims, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	cfg = cfg.withDefaults()
	bs := cfg.BlockSize
	fnName := fmt.Sprintf("matmul-tile-%s", ns.Path()[1:])

	// Stage inputs once in ephemeral storage, tile by tile.
	tiles := func(m Matrix, name string) (int, int, error) {
		rT, cT := (m.Rows+bs-1)/bs, (m.Cols+bs-1)/bs
		for i := 0; i < rT; i++ {
			for j := 0; j < cT; j++ {
				blk := m.Block(i*bs, min(m.Rows, (i+1)*bs), j*bs, min(m.Cols, (j+1)*bs))
				if err := ns.Put(fmt.Sprintf("%s/%d/%d", name, i, j), encode(blk)); err != nil {
					return 0, 0, err
				}
			}
		}
		return rT, cT, nil
	}
	aRT, aCT, err := tiles(a, "A")
	if err != nil {
		return Matrix{}, err
	}
	_, bCT, err := tiles(b, "B")
	if err != nil {
		return Matrix{}, err
	}

	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct{ I, J, K int }
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		acc := Matrix{}
		for k := 0; k < in.K; k++ {
			ab, err := ns.Get(fmt.Sprintf("A/%d/%d", in.I, k))
			if err != nil {
				return nil, err
			}
			bb, err := ns.Get(fmt.Sprintf("B/%d/%d", k, in.J))
			if err != nil {
				return nil, err
			}
			am, err := decode(ab)
			if err != nil {
				return nil, err
			}
			bm, err := decode(bb)
			if err != nil {
				return nil, err
			}
			prod, err := Mul(am, bm)
			if err != nil {
				return nil, err
			}
			ctx.Work(time.Duration(am.Rows*am.Cols*bm.Cols) * cfg.WorkPerOp)
			if acc.Data == nil {
				acc = prod
			} else if acc, err = Add(acc, prod); err != nil {
				return nil, err
			}
		}
		return nil, ns.Put(fmt.Sprintf("C/%d/%d", in.I, in.J), encode(acc))
	}
	if err := p.Register(fnName, cfg.Tenant, worker, cfg.Worker); err != nil {
		return Matrix{}, err
	}
	defer p.Unregister(fnName)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < aRT; i++ {
		for j := 0; j < bCT; j++ {
			payload, _ := json.Marshal(struct{ I, J, K int }{i, j, aCT})
			wg.Add(1)
			p.InvokeAsync(fnName, payload, func(_ faas.Result, err error) {
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				wg.Done()
			})
		}
	}
	p.Clock().BlockOn(wg.Wait)
	if firstErr != nil {
		return Matrix{}, firstErr
	}

	// Assemble C from ephemeral tiles.
	c := New(a.Rows, b.Cols)
	for i := 0; i < aRT; i++ {
		for j := 0; j < bCT; j++ {
			raw, err := ns.Get(fmt.Sprintf("C/%d/%d", i, j))
			if err != nil {
				return Matrix{}, err
			}
			blk, err := decode(raw)
			if err != nil {
				return Matrix{}, err
			}
			c.paste(blk, i*bs, j*bs)
		}
	}
	return c, nil
}

// StrassenServerless runs Strassen's seven top-level products as concurrent
// FaaS invocations (Werner et al.'s distributed Strassen [181]), with
// operands and products exchanged through ephemeral storage; each product is
// computed with serial Strassen below the top level.
func StrassenServerless(p *faas.Platform, ns *jiffy.Namespace, a, b Matrix, cutoff int, cfg ServerlessConfig) (Matrix, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Cols != b.Rows || a.Rows&(a.Rows-1) != 0 {
		return Matrix{}, fmt.Errorf("%w: %dx%d × %dx%d", ErrNotPow2, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	cfg = cfg.withDefaults()
	if cutoff < 1 {
		cutoff = 64
	}
	a11, a12, a21, a22 := a.quarters()
	b11, b12, b21, b22 := b.quarters()
	add := func(x, y Matrix) Matrix { z, _ := Add(x, y); return z }
	sub := func(x, y Matrix) Matrix { z, _ := Sub(x, y); return z }

	type prod struct{ l, r Matrix }
	prods := []prod{
		{add(a11, a22), add(b11, b22)}, // M1
		{add(a21, a22), b11},           // M2
		{a11, sub(b12, b22)},           // M3
		{a22, sub(b21, b11)},           // M4
		{add(a11, a12), b22},           // M5
		{sub(a21, a11), add(b11, b12)}, // M6
		{sub(a12, a22), add(b21, b22)}, // M7
	}
	for i, pr := range prods {
		if err := ns.Put(fmt.Sprintf("S/L/%d", i), encode(pr.l)); err != nil {
			return Matrix{}, err
		}
		if err := ns.Put(fmt.Sprintf("S/R/%d", i), encode(pr.r)); err != nil {
			return Matrix{}, err
		}
	}

	fnName := fmt.Sprintf("strassen-%s", ns.Path()[1:])
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct{ I int }
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		lb, err := ns.Get(fmt.Sprintf("S/L/%d", in.I))
		if err != nil {
			return nil, err
		}
		rb, err := ns.Get(fmt.Sprintf("S/R/%d", in.I))
		if err != nil {
			return nil, err
		}
		l, err := decode(lb)
		if err != nil {
			return nil, err
		}
		r, err := decode(rb)
		if err != nil {
			return nil, err
		}
		m := strassen(l, r, cutoff)
		ctx.Work(time.Duration(StrassenOps(l.Rows, cutoff)) * cfg.WorkPerOp)
		return nil, ns.Put(fmt.Sprintf("S/M/%d", in.I), encode(m))
	}
	if err := p.Register(fnName, cfg.Tenant, worker, cfg.Worker); err != nil {
		return Matrix{}, err
	}
	defer p.Unregister(fnName)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < 7; i++ {
		payload, _ := json.Marshal(struct{ I int }{i})
		wg.Add(1)
		p.InvokeAsync(fnName, payload, func(_ faas.Result, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			wg.Done()
		})
	}
	p.Clock().BlockOn(wg.Wait)
	if firstErr != nil {
		return Matrix{}, firstErr
	}

	m := make([]Matrix, 7)
	for i := range m {
		raw, err := ns.Get(fmt.Sprintf("S/M/%d", i))
		if err != nil {
			return Matrix{}, err
		}
		if m[i], err = decode(raw); err != nil {
			return Matrix{}, err
		}
	}
	c11 := add(sub(add(m[0], m[3]), m[4]), m[6])
	c12 := add(m[2], m[4])
	c21 := add(m[1], m[3])
	c22 := add(add(sub(m[0], m[1]), m[2]), m[5])
	n := a.Rows
	c := New(n, n)
	c.paste(c11, 0, 0)
	c.paste(c12, 0, n/2)
	c.paste(c21, n/2, 0)
	c.paste(c22, n/2, n/2)
	return c, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
