// Package matmul implements the distributed matrix multiplication workload
// of §5.1 ([181]): dense matrices, a serial baseline, a block-parallel
// serverless MATMUL that fans block products out over FaaS functions with
// intermediate results in ephemeral storage, and Strassen's seven-product
// recursion ([170]) — both serial and with its top-level products executed
// as serverless functions.
package matmul

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// Errors returned by the package.
var (
	ErrDims    = errors.New("matmul: dimension mismatch")
	ErrNotPow2 = errors.New("matmul: strassen requires square power-of-two matrices")
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// New creates a zero matrix.
func New(rows, cols int) Matrix {
	return Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Random creates a matrix with deterministic pseudo-random entries in [-1,1).
func Random(rows, cols int, seed int64) Matrix {
	m := New(rows, cols)
	rng := rand.New(rand.NewSource(seed))
	for i := range m.Data {
		m.Data[i] = rng.Float64()*2 - 1
	}
	return m
}

// At returns m[i,j].
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j].
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul is the serial O(n³) baseline.
func Mul(a, b Matrix) (Matrix, error) {
	if a.Cols != b.Rows {
		return Matrix{}, fmt.Errorf("%w: %dx%d × %dx%d", ErrDims, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			aik := a.At(i, k)
			if aik == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				c.Data[i*c.Cols+j] += aik * b.At(k, j)
			}
		}
	}
	return c, nil
}

// Add returns a+b.
func Add(a, b Matrix) (Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return Matrix{}, fmt.Errorf("%w: %dx%d + %dx%d", ErrDims, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, a.Cols)
	for i := range c.Data {
		c.Data[i] = a.Data[i] + b.Data[i]
	}
	return c, nil
}

// Sub returns a-b.
func Sub(a, b Matrix) (Matrix, error) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return Matrix{}, fmt.Errorf("%w: %dx%d - %dx%d", ErrDims, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	c := New(a.Rows, a.Cols)
	for i := range c.Data {
		c.Data[i] = a.Data[i] - b.Data[i]
	}
	return c, nil
}

// MaxAbsDiff returns the max elementwise |a-b| (for approximate equality).
func MaxAbsDiff(a, b Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return math.Inf(1)
	}
	var max float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

// Block extracts the r0..r1 × c0..c1 submatrix (half-open).
func (m Matrix) Block(r0, r1, c0, c1 int) Matrix {
	out := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(out.Data[(i-r0)*out.Cols:(i-r0+1)*out.Cols], m.Data[i*m.Cols+c0:i*m.Cols+c1])
	}
	return out
}

// paste writes src into m at (r0, c0).
func (m *Matrix) paste(src Matrix, r0, c0 int) {
	for i := 0; i < src.Rows; i++ {
		copy(m.Data[(r0+i)*m.Cols+c0:(r0+i)*m.Cols+c0+src.Cols], src.Data[i*src.Cols:(i+1)*src.Cols])
	}
}

// quarters splits a square even-dimension matrix into 2×2 blocks.
func (m Matrix) quarters() (a11, a12, a21, a22 Matrix) {
	h := m.Rows / 2
	return m.Block(0, h, 0, h), m.Block(0, h, h, m.Cols), m.Block(h, m.Rows, 0, h), m.Block(h, m.Rows, h, m.Cols)
}

// StrassenOps counts the scalar multiplications Strassen performs for n×n
// with the given cutoff — the 7^k vs 8^k saving the algorithm exists for.
func StrassenOps(n, cutoff int) int64 {
	if n <= cutoff || n%2 != 0 {
		return int64(n) * int64(n) * int64(n)
	}
	return 7*StrassenOps(n/2, cutoff) + 0 // additions are free in this count
}

// Strassen multiplies square power-of-two matrices with the seven-product
// recursion, falling back to the serial kernel at or below cutoff.
func Strassen(a, b Matrix, cutoff int) (Matrix, error) {
	if a.Rows != a.Cols || b.Rows != b.Cols || a.Cols != b.Rows {
		return Matrix{}, fmt.Errorf("%w: %dx%d × %dx%d", ErrNotPow2, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	if a.Rows&(a.Rows-1) != 0 {
		return Matrix{}, fmt.Errorf("%w: n=%d", ErrNotPow2, a.Rows)
	}
	if cutoff < 1 {
		cutoff = 64
	}
	return strassen(a, b, cutoff), nil
}

func strassen(a, b Matrix, cutoff int) Matrix {
	n := a.Rows
	if n <= cutoff {
		c, _ := Mul(a, b)
		return c
	}
	a11, a12, a21, a22 := a.quarters()
	b11, b12, b21, b22 := b.quarters()

	add := func(x, y Matrix) Matrix { z, _ := Add(x, y); return z }
	sub := func(x, y Matrix) Matrix { z, _ := Sub(x, y); return z }

	m1 := strassen(add(a11, a22), add(b11, b22), cutoff)
	m2 := strassen(add(a21, a22), b11, cutoff)
	m3 := strassen(a11, sub(b12, b22), cutoff)
	m4 := strassen(a22, sub(b21, b11), cutoff)
	m5 := strassen(add(a11, a12), b22, cutoff)
	m6 := strassen(sub(a21, a11), add(b11, b12), cutoff)
	m7 := strassen(sub(a12, a22), add(b21, b22), cutoff)

	c11 := add(sub(add(m1, m4), m5), m7)
	c12 := add(m3, m5)
	c21 := add(m2, m4)
	c22 := add(add(sub(m1, m2), m3), m6)

	c := New(n, n)
	h := n / 2
	c.paste(c11, 0, 0)
	c.paste(c12, 0, h)
	c.paste(c21, h, 0)
	c.paste(c22, h, h)
	return c
}
