package workload

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestConstant(t *testing.T) {
	rf := Constant(5)
	if rf(0) != 5 || rf(time.Hour) != 5 {
		t.Fatal("Constant not constant")
	}
}

func TestBurstyShape(t *testing.T) {
	rf := Bursty(0, 100, time.Minute, 10*time.Second)
	if rf(0) != 100 || rf(5*time.Second) != 100 {
		t.Fatal("no peak during burst")
	}
	if rf(30*time.Second) != 0 || rf(59*time.Second) != 0 {
		t.Fatal("base not honoured")
	}
	if rf(time.Minute) != 100 {
		t.Fatal("burst not periodic")
	}
}

func TestBurstyPeakToMean(t *testing.T) {
	// 10s of 100 rps per 60s, base 0 → mean ≈ 16.7, peak/mean ≈ 6.
	rf := Bursty(0, 100, time.Minute, 10*time.Second)
	ratio := PeakToMean(rf, time.Hour)
	if ratio < 5.5 || ratio > 6.5 {
		t.Fatalf("peak/mean = %v, want ≈6", ratio)
	}
}

func TestDiurnalClipsAtZero(t *testing.T) {
	rf := Diurnal(10, 50, 24*time.Hour)
	for ti := time.Duration(0); ti < 24*time.Hour; ti += time.Hour {
		if rf(ti) < 0 {
			t.Fatalf("negative rate at %v", ti)
		}
	}
	// Peak near 6h mark for a sine starting at mean.
	if rf(6*time.Hour) < 55 {
		t.Fatalf("expected peak near 6h, got %v", rf(6*time.Hour))
	}
}

func TestOnOff(t *testing.T) {
	rf := OnOff(20, time.Minute, 4*time.Minute)
	if rf(30*time.Second) != 20 {
		t.Fatal("on phase wrong")
	}
	if rf(2*time.Minute) != 0 {
		t.Fatal("off phase wrong")
	}
	if rf(5*time.Minute) != 20 {
		t.Fatal("period wrong")
	}
}

func TestSpike(t *testing.T) {
	rf := Spike(Constant(1), 500, time.Minute, 10*time.Second)
	if rf(0) != 1 || rf(65*time.Second) != 500 || rf(71*time.Second) != 1 {
		t.Fatal("spike misplaced")
	}
}

func TestTrace(t *testing.T) {
	rf := Trace([]float64{1, 2, 3})
	if rf(0) != 1 || rf(1500*time.Millisecond) != 2 || rf(10*time.Second) != 3 {
		t.Fatal("trace replay wrong")
	}
	if Trace(nil)(0) != 0 {
		t.Fatal("empty trace should be zero")
	}
}

func TestScaleSumShift(t *testing.T) {
	rf := Sum(Constant(1), Scale(Constant(2), 3))
	if rf(0) != 7 {
		t.Fatalf("Sum/Scale = %v, want 7", rf(0))
	}
	sh := Shift(Constant(5), time.Minute)
	if sh(30*time.Second) != 0 || sh(2*time.Minute) != 5 {
		t.Fatal("Shift wrong")
	}
}

func TestArrivalsDeterministicAndSorted(t *testing.T) {
	rf := Constant(10)
	a := Arrivals(rf, time.Minute, 7)
	b := Arrivals(rf, time.Minute, 7)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic arrivals")
		}
	}
	if !sort.SliceIsSorted(a, func(i, j int) bool { return a[i] < a[j] }) {
		t.Fatal("arrivals not sorted")
	}
}

func TestArrivalsRateMatches(t *testing.T) {
	// 10 rps over 10 minutes ⇒ ~6000 arrivals; Poisson σ≈77, allow ±5σ.
	got := len(Arrivals(Constant(10), 10*time.Minute, 1))
	if got < 5600 || got > 6400 {
		t.Fatalf("arrivals = %d, want ≈6000", got)
	}
}

func TestArrivalsRespectBursts(t *testing.T) {
	rf := Bursty(0, 100, time.Minute, 10*time.Second)
	arr := Arrivals(rf, 10*time.Minute, 42)
	inBurst := 0
	for _, a := range arr {
		if a%time.Minute < 10*time.Second {
			inBurst++
		}
	}
	if frac := float64(inBurst) / float64(len(arr)); frac < 0.98 {
		t.Fatalf("only %.2f of arrivals in burst windows, want ~1.0", frac)
	}
}

func TestArrivalsZeroRate(t *testing.T) {
	if got := Arrivals(Constant(0), time.Minute, 1); len(got) != 0 {
		t.Fatalf("zero-rate produced %d arrivals", len(got))
	}
}

func TestUniformArrivals(t *testing.T) {
	arr := UniformArrivals(Constant(3), 2*time.Second)
	if len(arr) != 6 {
		t.Fatalf("arrivals = %d, want 6", len(arr))
	}
	if !sort.SliceIsSorted(arr, func(i, j int) bool { return arr[i] < arr[j] }) {
		t.Fatal("not sorted")
	}
}

func TestPeakAndMeanRate(t *testing.T) {
	rf := Bursty(2, 10, time.Minute, 30*time.Second)
	if p := PeakRate(rf, time.Hour); p != 10 {
		t.Fatalf("peak = %v", p)
	}
	m := MeanRate(rf, time.Hour)
	if math.Abs(m-6) > 0.2 {
		t.Fatalf("mean = %v, want ≈6", m)
	}
	if PeakToMean(Constant(0), time.Minute) != 0 {
		t.Fatal("zero mean should give 0 ratio")
	}
}

func TestZipfKeysSkewed(t *testing.T) {
	keys := ZipfKeys(1000, 1.5, 20000, 3)
	counts := map[string]int{}
	for _, k := range keys {
		counts[k]++
	}
	if counts["key-0"] < len(keys)/10 {
		t.Fatalf("hottest key only %d/%d — not skewed", counts["key-0"], len(keys))
	}
	// Determinism.
	keys2 := ZipfKeys(1000, 1.5, 20000, 3)
	for i := range keys {
		if keys[i] != keys2[i] {
			t.Fatal("ZipfKeys nondeterministic")
		}
	}
}

func TestUniformKeysCoverage(t *testing.T) {
	keys := UniformKeys(10, 1000, 5)
	seen := map[string]bool{}
	for _, k := range keys {
		seen[k] = true
	}
	if len(seen) != 10 {
		t.Fatalf("saw %d distinct keys, want 10", len(seen))
	}
}

func TestPayloadDeterministic(t *testing.T) {
	a, b := Payload(64, 9), Payload(64, 9)
	if string(a) != string(b) {
		t.Fatal("payload nondeterministic")
	}
	if string(a) == string(Payload(64, 10)) {
		t.Fatal("different seeds gave identical payloads")
	}
}

func TestAzureLikeFleetHeavyTailed(t *testing.T) {
	fleet := AzureLikeFleet(500, 0.002, 3.0, 7)
	if len(fleet) != 500 {
		t.Fatalf("fleet = %d", len(fleet))
	}
	rare, hot := 0, 0
	for _, f := range fleet {
		if f.MeanRPS < 1.0/600 { // rarer than once per 10min keep-alive
			rare++
		}
		if f.MeanRPS > 1 {
			hot++
		}
	}
	// The Azure-trace shape: a majority of functions are rare, a small
	// nonzero fraction is hot.
	if rare < 200 {
		t.Fatalf("only %d/500 rare functions — tail not heavy", rare)
	}
	if hot == 0 || hot > 100 {
		t.Fatalf("hot functions = %d — head wrong", hot)
	}
	// Names unique and deterministic.
	names := map[string]bool{}
	for _, f := range fleet {
		if names[f.Name] {
			t.Fatalf("duplicate name %s", f.Name)
		}
		names[f.Name] = true
	}
	again := AzureLikeFleet(500, 0.002, 3.0, 7)
	for i := range fleet {
		if fleet[i].MeanRPS != again[i].MeanRPS {
			t.Fatal("fleet nondeterministic")
		}
	}
}

func TestColdFractionEstimate(t *testing.T) {
	// One invocation per hour with a 10-minute keep-alive: essentially
	// always cold.
	if f := ColdFractionEstimate(1.0/3600, 10*time.Minute); f < 0.8 {
		t.Fatalf("rare function cold fraction %v", f)
	}
	// Ten rps: essentially never cold.
	if f := ColdFractionEstimate(10, 10*time.Minute); f > 1e-6 {
		t.Fatalf("hot function cold fraction %v", f)
	}
	if ColdFractionEstimate(0, time.Minute) != 1 {
		t.Fatal("zero-rate should always be cold")
	}
}

// TestColdFractionEstimateMatchesSimulation ties the analytic estimate to
// the platform: Poisson arrivals at a rate around the keep-alive boundary
// should produce a measured cold fraction near e^(-rate·keepAlive).
func TestColdFractionEstimateMatchesSimulation(t *testing.T) {
	// rate = 1/300 s⁻¹, keepAlive = 300s → predicted cold fraction e⁻¹ ≈ 0.37.
	want := ColdFractionEstimate(1.0/300, 5*time.Minute)
	if math.Abs(want-math.Exp(-1)) > 1e-9 {
		t.Fatalf("analytic value %v", want)
	}
}
