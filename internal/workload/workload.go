// Package workload generates the load shapes that §3.2 of the paper says
// characterize serverless applications: highly variable load over time, with
// peak several times the mean and the minimum often zero. Generators are
// deterministic given a seed so experiments are reproducible.
package workload

import (
	"math"
	"math/rand"
	"time"
)

// RateFunc gives the offered load, in requests per second, at offset t from
// the start of the workload window.
type RateFunc func(t time.Duration) float64

// Constant returns a flat rate.
func Constant(rps float64) RateFunc {
	return func(time.Duration) float64 { return rps }
}

// Bursty returns a square wave: baseRPS normally, peakRPS during the first
// burstLen of every period. With baseRPS = 0 this reproduces the paper's
// "minimum often being zero" shape.
func Bursty(baseRPS, peakRPS float64, period, burstLen time.Duration) RateFunc {
	return func(t time.Duration) float64 {
		if period <= 0 {
			return baseRPS
		}
		if t%period < burstLen {
			return peakRPS
		}
		return baseRPS
	}
}

// Diurnal returns a sinusoidal day/night cycle around mean with the given
// amplitude, clipped at zero. period is the cycle length (24h for a day).
func Diurnal(mean, amplitude float64, period time.Duration) RateFunc {
	return func(t time.Duration) float64 {
		r := mean + amplitude*math.Sin(2*math.Pi*float64(t)/float64(period))
		if r < 0 {
			return 0
		}
		return r
	}
}

// OnOff alternates onRPS for onDur, then zero for offDur.
func OnOff(onRPS float64, onDur, offDur time.Duration) RateFunc {
	period := onDur + offDur
	return func(t time.Duration) float64 {
		if period <= 0 || t%period < onDur {
			return onRPS
		}
		return 0
	}
}

// Spike overlays a single rectangular spike of peakRPS on top of base,
// starting at 'at' and lasting 'width'.
func Spike(base RateFunc, peakRPS float64, at, width time.Duration) RateFunc {
	return func(t time.Duration) float64 {
		if t >= at && t < at+width {
			return peakRPS
		}
		return base(t)
	}
}

// Trace replays per-second rates from a recorded trace, holding the last
// value beyond its end.
func Trace(perSecond []float64) RateFunc {
	return func(t time.Duration) float64 {
		if len(perSecond) == 0 {
			return 0
		}
		i := int(t / time.Second)
		if i >= len(perSecond) {
			i = len(perSecond) - 1
		}
		if i < 0 {
			i = 0
		}
		return perSecond[i]
	}
}

// Scale multiplies a rate function by k.
func Scale(rf RateFunc, k float64) RateFunc {
	return func(t time.Duration) float64 { return rf(t) * k }
}

// Sum superposes rate functions (multiple tenants on one pool).
func Sum(rfs ...RateFunc) RateFunc {
	return func(t time.Duration) float64 {
		var s float64
		for _, rf := range rfs {
			s += rf(t)
		}
		return s
	}
}

// Shift delays a rate function by d (load before the shifted start is zero).
func Shift(rf RateFunc, d time.Duration) RateFunc {
	return func(t time.Duration) float64 {
		if t < d {
			return 0
		}
		return rf(t - d)
	}
}

// Arrivals samples a non-homogeneous Poisson process with intensity rf over
// [0, window) using Lewis-Shedler thinning, seeded for determinism. The
// returned offsets are strictly increasing.
func Arrivals(rf RateFunc, window time.Duration, seed int64) []time.Duration {
	lambdaMax := PeakRate(rf, window)
	if lambdaMax <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var out []time.Duration
	t := 0.0
	wsec := window.Seconds()
	for {
		t += rng.ExpFloat64() / lambdaMax
		if t >= wsec {
			return out
		}
		at := time.Duration(t * float64(time.Second))
		if rng.Float64()*lambdaMax <= rf(at) {
			out = append(out, at)
		}
	}
}

// UniformArrivals produces evenly spaced arrivals tracking rf: within each
// one-second bucket, round(rate) arrivals spread uniformly. Deterministic
// without randomness; useful for exact-shape tests.
func UniformArrivals(rf RateFunc, window time.Duration) []time.Duration {
	var out []time.Duration
	for s := time.Duration(0); s < window; s += time.Second {
		n := int(math.Round(rf(s)))
		for i := 0; i < n; i++ {
			out = append(out, s+time.Duration(i)*(time.Second/time.Duration(n+1)))
		}
	}
	return out
}

// sampleEvery is the numeric-integration step used by PeakRate and MeanRate.
const sampleEvery = time.Second

// PeakRate returns the maximum of rf over [0, window], sampled each second.
func PeakRate(rf RateFunc, window time.Duration) float64 {
	peak := 0.0
	for t := time.Duration(0); t <= window; t += sampleEvery {
		if r := rf(t); r > peak {
			peak = r
		}
	}
	return peak
}

// MeanRate returns the time-average of rf over [0, window), sampled each second.
func MeanRate(rf RateFunc, window time.Duration) float64 {
	if window <= 0 {
		return 0
	}
	var sum float64
	var n int
	for t := time.Duration(0); t < window; t += sampleEvery {
		sum += rf(t)
		n++
	}
	return sum / float64(n)
}

// PeakToMean returns the peak/mean ratio of rf over window (∞-safe: returns 0
// when the mean is 0).
func PeakToMean(rf RateFunc, window time.Duration) float64 {
	m := MeanRate(rf, window)
	if m == 0 {
		return 0
	}
	return PeakRate(rf, window) / m
}
