package workload

import (
	"fmt"
	"math/rand"
)

// ZipfKeys draws count keys from a Zipf(s) distribution over a universe of n
// distinct keys ("key-0" … "key-{n-1}"), seeded for determinism. Skewed key
// popularity is the regime where frequency sketches such as Count-Min (§5.1,
// Figure 3) earn their keep.
func ZipfKeys(n uint64, s float64, count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, n-1)
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", z.Uint64())
	}
	return out
}

// UniformKeys draws count keys uniformly from a universe of n distinct keys.
func UniformKeys(n uint64, count int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, count)
	for i := range out {
		out[i] = fmt.Sprintf("key-%d", rng.Uint64()%n)
	}
	return out
}

// Payload returns a deterministic pseudo-random byte payload of the given size.
func Payload(size int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, size)
	rng.Read(b)
	return b
}
