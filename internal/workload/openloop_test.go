package workload

import (
	"testing"
	"time"
)

func TestRamp(t *testing.T) {
	rf := Ramp(0, 100, 10*time.Second)
	if got := rf(0); got != 0 {
		t.Fatalf("ramp(0) = %v", got)
	}
	if got := rf(5 * time.Second); got != 50 {
		t.Fatalf("ramp(mid) = %v, want 50", got)
	}
	if got := rf(10 * time.Second); got != 100 {
		t.Fatalf("ramp(end) = %v, want 100", got)
	}
	if got := rf(time.Minute); got != 100 {
		t.Fatalf("ramp holds %v, want 100", got)
	}
	if got := Ramp(5, 50, 0)(0); got != 50 {
		t.Fatalf("zero-duration ramp = %v, want step to 50", got)
	}
}

func TestBurstShape(t *testing.T) {
	rf := Burst(2, 10, 30*time.Second, 10*time.Second)
	if got := rf(0); got != 2 {
		t.Fatalf("pre-burst = %v, want 2", got)
	}
	if got := rf(35 * time.Second); got != 20 {
		t.Fatalf("mid-burst = %v, want 20", got)
	}
	if got := rf(45 * time.Second); got != 2 {
		t.Fatalf("post-burst = %v, want 2", got)
	}
	// §3.2's signature: peak is several times the mean.
	if ptm := PeakToMean(rf, time.Minute); ptm < 3 {
		t.Fatalf("peak-to-mean = %v, want ≥ 3", ptm)
	}
}

func TestStaircaseRamp(t *testing.T) {
	rf := StaircaseRamp(100, 4, 10*time.Second)
	want := []struct {
		at   time.Duration
		rate float64
	}{
		{0, 25}, {9 * time.Second, 25}, {10 * time.Second, 50},
		{25 * time.Second, 75}, {39 * time.Second, 100}, {time.Hour, 100},
	}
	for _, w := range want {
		if got := rf(w.at); got != w.rate {
			t.Errorf("staircase(%v) = %v, want %v", w.at, got, w.rate)
		}
	}
}

func TestOffsetArrivals(t *testing.T) {
	in := []time.Duration{0, time.Second, 2 * time.Second}
	out := OffsetArrivals(in, 500*time.Microsecond)
	if len(out) != 3 || out[0] != 500*time.Microsecond || out[2] != 2*time.Second+500*time.Microsecond {
		t.Fatalf("out = %v", out)
	}
	if got := OffsetArrivals(in, -2*time.Second); len(got) != 1 {
		t.Fatalf("negative offset kept %v", got)
	}
}

func TestConvergenceTime(t *testing.T) {
	steady := 10 * time.Millisecond
	series := []time.Duration{
		10 * time.Millisecond, // 0s: steady
		80 * time.Millisecond, // 1s: burst
		60 * time.Millisecond, // 2s
		25 * time.Millisecond, // 3s: still >2×
		15 * time.Millisecond, // 4s: converged
		11 * time.Millisecond, // 5s
	}
	if got := ConvergenceTime(series, steady, 2, time.Second); got != 3*time.Second {
		t.Fatalf("convergence = %v, want 3s", got)
	}
	// Never converges.
	if got := ConvergenceTime([]time.Duration{time.Second, time.Second}, steady, 2, 0); got != -1 {
		t.Fatalf("non-convergent = %v, want -1", got)
	}
	// Already converged at burst end.
	if got := ConvergenceTime(series, steady, 10, time.Second); got != 0 {
		t.Fatalf("instant convergence = %v, want 0", got)
	}
}

func TestTotalArrivals(t *testing.T) {
	if got := TotalArrivals(Constant(5), 10*time.Second); got != 50 {
		t.Fatalf("total = %d, want 50", got)
	}
	rf := Burst(2, 10, 10*time.Second, 5*time.Second)
	// 2 rps × 55s + 20 rps × 5s = 110 + 100 = 210.
	if got := TotalArrivals(rf, time.Minute); got != 210 {
		t.Fatalf("burst total = %d, want 210", got)
	}
}
