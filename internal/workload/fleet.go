package workload

import (
	"math"
	"math/rand"
	"time"
)

// FleetFunction is one function in a synthetic multi-function fleet.
type FleetFunction struct {
	Name string
	Rate RateFunc
	// MeanRPS is the function's average rate (for reporting).
	MeanRPS float64
}

// AzureLikeFleet generates a fleet with the heavy-tailed invocation-rate
// distribution production FaaS traces exhibit (the shape popularized by the
// Azure Functions trace): most functions are invoked rarely — many less
// than once per keep-alive window, which is why cold starts matter — while
// a small number are extremely hot. Rates are drawn from a log-normal
// distribution, deterministic under seed.
func AzureLikeFleet(functions int, medianRPS, sigma float64, seed int64) []FleetFunction {
	rng := rand.New(rand.NewSource(seed))
	mu := math.Log(medianRPS)
	out := make([]FleetFunction, functions)
	for i := range out {
		rate := math.Exp(mu + sigma*rng.NormFloat64())
		out[i] = FleetFunction{
			Name:    fleetName(i),
			Rate:    Constant(rate),
			MeanRPS: rate,
		}
	}
	return out
}

func fleetName(i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	name := []byte{'f', 'n', '-'}
	for i >= 0 {
		name = append(name, letters[i%26])
		i = i/26 - 1
	}
	return string(name)
}

// ColdFractionEstimate predicts, for a Poisson-arrival function at rate rps
// with the given keep-alive, the fraction of invocations that find no warm
// instance: an arrival is cold when the previous arrival was more than
// keepAlive ago, which for exponential gaps happens with probability
// e^(-rate·keepAlive).
func ColdFractionEstimate(rps float64, keepAlive time.Duration) float64 {
	if rps <= 0 {
		return 1
	}
	return math.Exp(-rps * keepAlive.Seconds())
}
