package workload

import (
	"math"
	"time"
)

// This file holds the open-loop shapes the elasticity experiments drive the
// autoscaler with (§3.2: "peak several times the mean"): linear ramps and
// multiplicative bursts. Open-loop means arrivals are scheduled by the shape
// alone — a slow platform does not slow the offered load, it builds queues —
// which is what makes burst→cold-start→converge curves honest.

// Ramp rises (or falls) linearly from startRPS to endRPS over dur, holding
// endRPS from then on. A ramp with dur <= 0 is a step to endRPS.
func Ramp(startRPS, endRPS float64, dur time.Duration) RateFunc {
	return func(t time.Duration) float64 {
		if dur <= 0 || t >= dur {
			return endRPS
		}
		if t < 0 {
			return startRPS
		}
		frac := float64(t) / float64(dur)
		r := startRPS + (endRPS-startRPS)*frac
		if r < 0 {
			return 0
		}
		return r
	}
}

// Burst is the burst-convergence shape: steady baseRPS, a multiple× surge
// starting at 'at' for 'width', then steady baseRPS again. Burst(2, 10, …)
// offers 2 rps normally and 20 rps during the surge — the open-loop input
// of the burst→cold-start→converge experiment (E27).
func Burst(baseRPS, multiple float64, at, width time.Duration) RateFunc {
	return Spike(Constant(baseRPS), baseRPS*multiple, at, width)
}

// StaircaseRamp climbs from 0 to peakRPS in equal steps of stepDur — the
// load pattern autoscaler papers use to read scaling lag per step. After
// steps×stepDur it holds peakRPS.
func StaircaseRamp(peakRPS float64, steps int, stepDur time.Duration) RateFunc {
	if steps <= 0 {
		steps = 1
	}
	return func(t time.Duration) float64 {
		if t < 0 {
			return 0
		}
		k := int(t/stepDur) + 1
		if k > steps {
			k = steps
		}
		return peakRPS * float64(k) / float64(steps)
	}
}

// OffsetArrivals shifts every arrival by delta — used to keep open-loop
// arrivals off the autoscaler's tick grid (off-grid arrivals cannot race a
// same-instant control-loop evaluation, which keeps virtual-clock runs
// deterministic).
func OffsetArrivals(arrivals []time.Duration, delta time.Duration) []time.Duration {
	out := make([]time.Duration, 0, len(arrivals))
	for _, a := range arrivals {
		if v := a + delta; v >= 0 {
			out = append(out, v)
		}
	}
	return out
}

// ConvergenceTime scans per-second p99 samples after a burst ends and
// returns how long the metric stayed above tolerance × steady, i.e. the
// recovery time the burst experiment reports. Samples before 'from' are
// ignored; returns -1 if the series never re-converges.
func ConvergenceTime(perSecondP99 []time.Duration, steady time.Duration, tolerance float64, from time.Duration) time.Duration {
	limit := time.Duration(float64(steady) * tolerance)
	start := int(from / time.Second)
	if start < 0 {
		start = 0
	}
	last := -1
	for i := start; i < len(perSecondP99); i++ {
		if perSecondP99[i] > limit {
			last = i
		}
	}
	if last < 0 {
		return 0
	}
	if last == len(perSecondP99)-1 {
		return -1 // still above tolerance at the end of the window
	}
	conv := time.Duration(last+1) * time.Second
	if conv < from {
		return 0
	}
	return conv - from
}

// TotalArrivals integrates rf over [0, window) — the expected open-loop
// request count, useful for sizing admission budgets in experiments.
func TotalArrivals(rf RateFunc, window time.Duration) int {
	var sum float64
	for t := time.Duration(0); t < window; t += sampleEvery {
		sum += rf(t)
	}
	return int(math.Round(sum))
}
