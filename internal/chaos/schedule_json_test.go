package chaos

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// A generated schedule must survive a JSON round trip exactly: witnesses are
// saved and replayed by value, so any lossy encoding would replay a different
// fault sequence than the one that produced the divergence.
func TestScheduleJSONRoundTripGenerated(t *testing.T) {
	sch := Generate(Options{
		Seed:       42,
		Bookies:    []string{"bookie-0", "bookie-1", "bookie-2"},
		Brokers:    []string{"broker-0", "broker-1"},
		JiffyNodes: []string{"mem-0"},
	})
	if len(sch) == 0 {
		t.Fatal("generated schedule is empty")
	}
	raw, err := json.Marshal(sch)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Schedule
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(sch, back) {
		t.Fatalf("round trip diverged:\n  in:  %+v\n  out: %+v", sch, back)
	}
	// A second marshal must be byte-identical — schedules are compared as
	// serialized witnesses.
	raw2, err := json.Marshal(back)
	if err != nil {
		t.Fatalf("re-marshal: %v", err)
	}
	if string(raw) != string(raw2) {
		t.Fatalf("re-marshal not byte-identical:\n  %s\n  %s", raw, raw2)
	}
}

// The new conformance fault kinds (duplicate delivery, crash-after-effect)
// round-trip too, including sub-millisecond offsets and N fields.
func TestScheduleJSONRoundTripConformanceOps(t *testing.T) {
	sch := Schedule{
		{At: 333 * time.Microsecond, Op: OpDuplicate, Kind: KindSub, Target: "orders/workers"},
		{At: time.Millisecond + 333*time.Microsecond, Op: OpDrop, Kind: KindSub, Target: "orders/workers", N: 2},
		{At: 2 * time.Millisecond, Op: OpCrashAfterEffect, Kind: KindFunction, Target: "checkout", N: 1},
		{At: 5 * time.Millisecond, Op: OpSlow, Kind: KindBroker, Target: "broker-0", Latency: 1500 * time.Microsecond},
	}
	raw, err := json.Marshal(sch)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(raw), `"op":"duplicate"`) || !strings.Contains(string(raw), `"op":"crash-after-effect"`) {
		t.Fatalf("wire form missing conformance ops: %s", raw)
	}
	var back Schedule
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(sch, back) {
		t.Fatalf("round trip diverged:\n  in:  %+v\n  out: %+v", sch, back)
	}
}
