package chaos

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/autoscale"
	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/simclock"
)

// autoscaleSoakResult digests one run of the FaaS-over-Jiffy soak: what the
// functions returned, what state survived, and what the control loop did.
// Same seed → identical digest, or the autoscaler has introduced
// nondeterminism into the virtual-clock stack.
type autoscaleSoakResult struct {
	log         []string
	invoked     int
	failed      int
	cold        int
	putsAcked   int
	putsOK      int
	peakDesired int
	peakMach    int
	finalPool   int
	finalMach   int
	ticks       int64
}

// runAutoscaleSoak drives a bursty FaaS workload — whose handler writes
// through the chaos-targeted Jiffy state plane — with the elastic control
// plane active, while a seeded fault schedule crashes Jiffy memory nodes.
// Replicated namespaces must absorb every crash (no failed invoke, no lost
// acked put) while the autoscaler grows, converges and scales back to zero.
func runAutoscaleSoak(t *testing.T, seed int64) autoscaleSoakResult {
	t.Helper()
	v := simclock.NewVirtual()
	defer v.Close()

	jc := jiffy.NewController(v, nil, jiffy.Config{Latency: jiffy.NoLatency, DefaultLease: -1})
	for i := 0; i < 4; i++ {
		jc.AddNode(fmt.Sprintf("mem-%d", i), 16)
	}
	fp := faas.New(v, nil)
	fp.AttachCluster(scheduler.NewCluster(scheduler.Resources{CPU: 4000, MemMB: 16384}, scheduler.FirstFit{}), 0)
	ctrl := autoscale.New(v, fp, fp.Cluster(), autoscale.Config{
		TickInterval:     time.Second,
		StableWindow:     10 * time.Second,
		PanicWindow:      2 * time.Second,
		ScaleToZeroAfter: 3 * time.Second,
		DrainDelay:       2 * time.Second,
	})
	reg := obs.New(v)
	jc.SetObs(reg)
	fp.SetObs(reg)
	ctrl.SetObs(reg)

	inj := NewInjector(v, nil, nil, jc)
	inj.SetObs(reg)
	sch := Generate(Options{
		Seed:       seed,
		Duration:   8 * time.Second,
		JiffyNodes: jc.NodeIDs(),
		Crashes:    3,
		Stragglers: 1,
		Drops:      1,
	})
	crashes := 0
	for _, e := range sch {
		if e.Kind == KindJiffy && e.Op == OpCrash {
			crashes++
		}
	}
	if crashes == 0 {
		t.Fatalf("seed %d crashes no jiffy node; pick another", seed)
	}

	res := autoscaleSoakResult{}
	v.Run(func() {
		ns, err := jc.CreateNamespace("/soak", jiffy.NamespaceOptions{Replicas: 2, InitialBlocks: 2})
		must(t, err)
		putsAcked := map[string]string{}
		var smu sync.Mutex
		if err := fp.Register("writer", "soak", func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			// Long enough to span control-loop ticks, so the in-flight
			// signal the autoscaler samples actually sees the burst.
			ctx.Work(600 * time.Millisecond)
			k := string(payload)
			if err := ns.Put(k, payload); err != nil {
				return nil, err
			}
			smu.Lock()
			putsAcked[k] = k
			smu.Unlock()
			return payload, nil
		}, faas.Config{
			MemoryMB:        128,
			ColdStart:       150 * time.Millisecond,
			KeepAlive:       3 * time.Second,
			ColdStartBudget: 5 * time.Second,
		}); err != nil {
			t.Error(err)
			return
		}
		ctrl.Start()
		defer ctrl.Stop()
		inj.Run(sch)

		// Burst phase: 8 concurrent waves every 500ms for 8s, overlapping
		// the whole fault schedule; then idle for scale-to-zero.
		var wg sync.WaitGroup
		var mu sync.Mutex
		for wave := 0; wave < 16; wave++ {
			wave := wave
			width := 2
			if wave >= 4 && wave < 10 {
				width = 8 // the burst
			}
			for j := 0; j < width; j++ {
				key := fmt.Sprintf("w%d-%d", wave, j)
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					v.Sleep(time.Duration(wave)*500*time.Millisecond + 700*time.Microsecond)
					out, err := fp.Invoke("writer", []byte(key))
					mu.Lock()
					defer mu.Unlock()
					res.invoked++
					if err != nil {
						res.failed++
						t.Errorf("invoke %s failed under chaos: %v", key, err)
						return
					}
					if out.Cold {
						res.cold++
					}
				})
			}
		}
		// Sample the controller while the burst runs.
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				v.Sleep(time.Second)
				st := ctrl.Status()
				if st.Machines > res.peakMach {
					res.peakMach = st.Machines
				}
				for _, f := range st.Functions {
					if f.Name == "writer" && f.Desired > res.peakDesired {
						res.peakDesired = f.Desired
					}
				}
			}
		})
		v.BlockOn(wg.Wait)
		inj.Wait()

		v.Sleep(15 * time.Second) // idle: scale-to-zero + drain
		res.finalPool, _ = fp.PoolTarget("writer")
		res.finalMach = ctrl.Status().Machines

		// Every acked put must still read back through the repaired replicas.
		smu.Lock()
		res.putsAcked = len(putsAcked)
		for k, want := range putsAcked {
			if got, err := ns.Get(k); err == nil && string(got) == want {
				res.putsOK++
			} else {
				t.Errorf("acked put %s = %q, %v (want %q)", k, got, err, want)
			}
		}
		smu.Unlock()
	})

	res.log = inj.Log()
	res.ticks = ctrl.Ticks()
	return res
}

// TestChaosSoakWithAutoscaler: the elastic control plane stays correct and
// deterministic under fault injection — Jiffy node crashes land while the
// autoscaler is mid-burst-reaction, and still: zero failed invokes, zero
// lost acked state, a clean scale-up/scale-to-zero cycle, and a
// byte-identical rerun digest.
func TestChaosSoakWithAutoscaler(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	const seed = 9
	r1 := runAutoscaleSoak(t, seed)
	if t.Failed() {
		t.Fatalf("first run failed; chaos log:\n%s", joinLines(r1.log))
	}
	r2 := runAutoscaleSoak(t, seed)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("autoscale soak not deterministic:\nrun1: %+v\nrun2: %+v", r1, r2)
	}
	if r1.failed != 0 {
		t.Errorf("%d invokes failed under chaos", r1.failed)
	}
	if r1.putsOK != r1.putsAcked || r1.putsAcked == 0 {
		t.Errorf("state loss: %d/%d acked puts verified", r1.putsOK, r1.putsAcked)
	}
	if r1.peakDesired < 2 {
		t.Errorf("peak desired = %d; the burst never drove a scale-up", r1.peakDesired)
	}
	if r1.finalPool != 0 || r1.finalMach != 0 {
		t.Errorf("idle left pool=%d machines=%d, want 0/0", r1.finalPool, r1.finalMach)
	}
	if r1.ticks == 0 {
		t.Error("controller never ticked")
	}
}
