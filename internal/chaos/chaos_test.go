package chaos

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/simclock"
)

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func genOpts(seed int64) Options {
	return Options{
		Seed:       seed,
		Duration:   100 * time.Millisecond,
		Bookies:    []string{"bookie-0", "bookie-1", "bookie-2"},
		Brokers:    []string{"broker-0", "broker-1"},
		JiffyNodes: []string{"mem-0", "mem-1"},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := Generate(genOpts(42)), Generate(genOpts(42))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%v\n%v", a, b)
	}
	if reflect.DeepEqual(a, Generate(genOpts(43))) {
		t.Fatal("different seeds produced the same schedule")
	}
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	for i := 1; i < len(a); i++ {
		if a[i].At < a[i-1].At {
			t.Fatalf("schedule not time-ordered at %d: %v after %v", i, a[i].At, a[i-1].At)
		}
	}
}

// TestGenerateOneOutagePerKind: the generated adversary never has two
// targets of the same kind down at once, so quorums stay reachable.
func TestGenerateOneOutagePerKind(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		sch := Generate(genOpts(seed))
		down := map[Kind]string{}
		for _, e := range sch {
			switch e.Op {
			case OpCrash:
				if holder, busy := down[e.Kind]; busy {
					t.Fatalf("seed %d: crash %s/%s while %s still down", seed, e.Kind, e.Target, holder)
				}
				down[e.Kind] = e.Target
			case OpRestart:
				delete(down, e.Kind)
			}
		}
		if len(down) != 0 {
			t.Fatalf("seed %d: targets left down at end: %v", seed, down)
		}
	}
}

// TestGenerateOffGrid: every event lands off the millisecond grid workloads
// tick on.
func TestGenerateOffGrid(t *testing.T) {
	for _, e := range Generate(genOpts(7)) {
		if e.At%time.Millisecond != eventOffset {
			t.Fatalf("event %v not offset from the ms grid", e)
		}
	}
}

// TestInjectorAppliesAndLogs drives a crash/restart pair against a real
// bookie and checks the fault landed, the log recorded it, and the MTTR
// instruments observed the outage.
func TestInjectorAppliesAndLogs(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	ls := ledger.NewSystem(v, coord.NewStore(v))
	b := ledger.NewBookie("bookie-0")
	ls.AddBookie(b)
	reg := obs.New(v)
	inj := NewInjector(v, ls, nil, nil)
	inj.SetObs(reg)
	sch := Schedule{
		{At: time.Millisecond, Op: OpCrash, Kind: KindBookie, Target: "bookie-0"},
		{At: 4 * time.Millisecond, Op: OpRestart, Kind: KindBookie, Target: "bookie-0"},
	}
	v.Run(func() {
		inj.Run(sch)
		v.Sleep(2 * time.Millisecond)
		if !b.Down() {
			t.Error("bookie not down after crash event")
		}
		inj.Wait()
		if b.Down() {
			t.Error("bookie still down after restart event")
		}
	})
	log := inj.Log()
	if len(log) != 2 {
		t.Fatalf("log = %v, want 2 lines", log)
	}
	if log[0] != "t=1ms crash bookie/bookie-0" {
		t.Fatalf("log[0] = %q", log[0])
	}
	if got := reg.CounterValue("chaos.injected"); got != 2 {
		t.Fatalf("chaos.injected = %d, want 2", got)
	}
	for _, h := range reg.Snapshot().Histograms {
		if h.Name == "chaos.mttr" {
			if h.Count != 1 || h.Max != 3*time.Millisecond {
				t.Fatalf("chaos.mttr = count %d max %v, want 1 / 3ms", h.Count, h.Max)
			}
			return
		}
	}
	t.Fatal("chaos.mttr histogram missing")
}

// TestInjectorSkipsAbsentComponents: events for components the injector was
// not wired to are logged as skipped, not applied.
func TestInjectorSkipsAbsentComponents(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	inj := NewInjector(v, nil, nil, nil)
	v.Run(func() {
		inj.Run(Schedule{{At: time.Millisecond, Op: OpCrash, Kind: KindJiffy, Target: "mem-0"}})
		inj.Wait()
	})
	log := inj.Log()
	if len(log) != 1 || log[0] != "t=1ms crash jiffy/mem-0 (no jiffy controller)" {
		t.Fatalf("log = %v", log)
	}
}
