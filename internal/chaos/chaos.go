// Package chaos is the platform's deterministic fault-injection plane.
//
// A seeded generator produces a Schedule of crash/restart, straggler
// (added-latency) and drop events against the stateful components of the
// Figure-1 stack — bookies (ledger), brokers (pulsar) and Jiffy memory
// nodes — and an Injector replays the schedule on the virtual clock. Every
// event lands at a fixed virtual instant, offset off the millisecond grid
// that workloads naturally tick on, so two runs with the same seed produce
// byte-identical event logs and byte-identical system behavior. That
// determinism is what turns "we survived a soak" into a regression test:
// the recovery paths exercised are the same ones every run.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/jiffy"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/pulsar"
	"repro/internal/simclock"
)

// Op is a fault operation.
type Op string

const (
	OpCrash   Op = "crash"
	OpRestart Op = "restart"
	OpSlow    Op = "slow" // add Latency to the target's operations (0 clears)
	OpDrop    Op = "drop" // fail the target's next N operations (KindSub: swallow the next N acks)
	// OpDuplicate forces duplicate delivery: every delivered-but-unacked
	// message of the target subscription (KindSub, Target "topic/sub") is
	// redelivered through the exact-cursor redelivery queue — the
	// at-least-once delivery fault the conformance explorer probes.
	OpDuplicate Op = "duplicate"
	// OpCrashAfterEffect arms the named function's registered Crasher
	// (KindFunction) to kill its next attempt after N effect boundaries
	// (N == 0: at entry). The platform's retry then re-executes the partial
	// attempt — the crash-mid-handler fault of the formal semantics.
	OpCrashAfterEffect Op = "crash-after-effect"
)

// Kind is a fault target class.
type Kind string

const (
	KindBookie Kind = "bookie"
	KindBroker Kind = "broker"
	KindJiffy  Kind = "jiffy"
	// KindSub targets a pulsar subscription; Target is "topic/sub".
	KindSub Kind = "sub"
	// KindFunction targets a registered FaaS function's effect-boundary
	// Crasher (see Injector.RegisterCrasher).
	KindFunction Kind = "function"
)

// Event is one scheduled fault, At ticks after injection starts.
type Event struct {
	At      time.Duration
	Op      Op
	Kind    Kind
	Target  string
	Latency time.Duration // OpSlow: the added latency
	N       int           // OpDrop: how many operations to drop
}

func (e Event) String() string {
	s := fmt.Sprintf("t=%v %s %s/%s", e.At, e.Op, e.Kind, e.Target)
	if e.Op == OpSlow {
		s += fmt.Sprintf(" latency=%v", e.Latency)
	}
	if e.Op == OpDrop {
		s += fmt.Sprintf(" n=%d", e.N)
	}
	return s
}

// Schedule is a time-ordered fault plan.
type Schedule []Event

// Options parameterizes Generate. Zero values take defaults; the target
// lists default to empty (no faults of that kind).
type Options struct {
	// Seed drives every random choice. The same seed and targets always
	// yield the same schedule.
	Seed int64
	// Duration is the soak window faults land in. Default 100ms.
	Duration time.Duration
	// Targets, by kind.
	Bookies, Brokers, JiffyNodes []string
	// Crashes is how many crash+restart pairs to plan. Default 3.
	Crashes int
	// Stragglers is how many slow+clear pairs to plan (bookies and brokers
	// only). Default 2.
	Stragglers int
	// Drops is how many drop bursts to plan (bookies and brokers only).
	// Default 2.
	Drops int
	// MaxSlow bounds injected straggler latency. Default 2ms.
	MaxSlow time.Duration
}

// eventOffset keeps fault instants off the millisecond grid that workload
// loops tick on: no fault ever lands at the exact instant a workload
// goroutine wakes, so the virtual-clock interleaving is unambiguous and
// runs are reproducible.
const eventOffset = 333 * time.Microsecond

type target struct {
	kind Kind
	id   string
}

// Generate plans a seeded fault schedule. At most one target per kind is
// down at any instant (a quorum-respecting adversary: recovery paths are
// exercised without making progress impossible), and crash/restart pairs
// never overlap on the same target.
func Generate(opts Options) Schedule {
	if opts.Duration <= 0 {
		opts.Duration = 100 * time.Millisecond
	}
	if opts.Crashes == 0 {
		opts.Crashes = 3
	}
	if opts.Stragglers == 0 {
		opts.Stragglers = 2
	}
	if opts.Drops == 0 {
		opts.Drops = 2
	}
	if opts.MaxSlow <= 0 {
		opts.MaxSlow = 2 * time.Millisecond
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	slots := int(opts.Duration / time.Millisecond)
	if slots < 10 {
		slots = 10
	}
	at := func(slot int) time.Duration {
		return time.Duration(slot)*time.Millisecond + eventOffset
	}

	var crashable []target
	for _, id := range opts.Bookies {
		crashable = append(crashable, target{KindBookie, id})
	}
	for _, id := range opts.Brokers {
		crashable = append(crashable, target{KindBroker, id})
	}
	for _, id := range opts.JiffyNodes {
		crashable = append(crashable, target{KindJiffy, id})
	}
	var flaky []target // slow/drop apply to bookies and brokers only
	for _, t := range crashable {
		if t.kind != KindJiffy {
			flaky = append(flaky, t)
		}
	}

	var sch Schedule
	// kindBusyUntil enforces one concurrent outage per kind; rejected plans
	// are skipped, not re-rolled, so the rng stream stays aligned.
	kindBusyUntil := map[Kind]int{}
	for i := 0; i < opts.Crashes && len(crashable) > 0; i++ {
		t := crashable[rng.Intn(len(crashable))]
		start := 1 + rng.Intn(slots*6/10)
		down := 1 + slots/10 + rng.Intn(slots/5+1)
		if start < kindBusyUntil[t.kind] {
			continue
		}
		kindBusyUntil[t.kind] = start + down + 1
		sch = append(sch,
			Event{At: at(start), Op: OpCrash, Kind: t.kind, Target: t.id},
			Event{At: at(start + down), Op: OpRestart, Kind: t.kind, Target: t.id},
		)
	}
	slowSteps := int(opts.MaxSlow / (500 * time.Microsecond))
	if slowSteps < 1 {
		slowSteps = 1
	}
	for i := 0; i < opts.Stragglers && len(flaky) > 0; i++ {
		t := flaky[rng.Intn(len(flaky))]
		start := 1 + rng.Intn(slots*7/10)
		lat := time.Duration(1+rng.Intn(slowSteps)) * 500 * time.Microsecond
		span := 1 + rng.Intn(slots/5+1)
		sch = append(sch,
			Event{At: at(start), Op: OpSlow, Kind: t.kind, Target: t.id, Latency: lat},
			Event{At: at(start + span), Op: OpSlow, Kind: t.kind, Target: t.id, Latency: 0},
		)
	}
	for i := 0; i < opts.Drops && len(flaky) > 0; i++ {
		t := flaky[rng.Intn(len(flaky))]
		start := 1 + rng.Intn(slots*8/10)
		sch = append(sch, Event{At: at(start), Op: OpDrop, Kind: t.kind, Target: t.id, N: 1 + rng.Intn(2)})
	}
	sort.SliceStable(sch, func(i, j int) bool { return sch[i].At < sch[j].At })
	return sch
}

// Injector replays a Schedule against live components. Any of the component
// handles may be nil; events for an absent component are logged as skipped.
type Injector struct {
	clock   simclock.Clock
	ledgers *ledger.System
	cluster *pulsar.Cluster
	mem     *jiffy.Controller

	obsInjected *obs.Counter
	obsMTTR     *obs.Histogram

	mu       sync.Mutex
	log      []string
	downAt   map[string]time.Time
	crashers map[string]*Crasher // function name → effect-boundary crasher
	wg       sync.WaitGroup
}

// RegisterCrasher attaches a function's effect-boundary Crasher so
// OpCrashAfterEffect events with KindFunction and Target name can arm it.
func (inj *Injector) RegisterCrasher(name string, c *Crasher) {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.crashers == nil {
		inj.crashers = map[string]*Crasher{}
	}
	inj.crashers[name] = c
}

// NewInjector wires an injector to the stack under test.
func NewInjector(clock simclock.Clock, ledgers *ledger.System, cluster *pulsar.Cluster, mem *jiffy.Controller) *Injector {
	return &Injector{
		clock:   clock,
		ledgers: ledgers,
		cluster: cluster,
		mem:     mem,
		downAt:  map[string]time.Time{},
	}
}

// SetObs attaches observability instruments: chaos.injected counts applied
// events, chaos.mttr observes crash→restart spans per target.
func (inj *Injector) SetObs(r *obs.Registry) {
	inj.obsInjected = r.Counter("chaos.injected")
	inj.obsMTTR = r.Histogram("chaos.mttr")
}

// Run replays the schedule on the clock in a background goroutine. Under a
// virtual clock inside Virtual.Run the replay completes before Run returns;
// Wait blocks explicitly otherwise.
func (inj *Injector) Run(sch Schedule) {
	inj.wg.Add(1)
	inj.clock.Go(func() {
		defer inj.wg.Done()
		var elapsed time.Duration
		for _, e := range sch {
			if e.At > elapsed {
				inj.clock.Sleep(e.At - elapsed)
				elapsed = e.At
			}
			inj.apply(e)
		}
	})
}

// Wait blocks (clock-aware) until every scheduled event has been applied.
func (inj *Injector) Wait() { inj.clock.BlockOn(inj.wg.Wait) }

// Log returns the applied-event log, one line per event in application
// order. Two runs with the same seed, stack and workload produce identical
// logs — the determinism contract the soak tests pin.
func (inj *Injector) Log() []string {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]string(nil), inj.log...)
}

func (inj *Injector) apply(e Event) {
	note := inj.dispatch(e)
	inj.mu.Lock()
	defer inj.mu.Unlock()
	line := e.String()
	if note != "" {
		line += " " + note
	}
	inj.log = append(inj.log, line)
	inj.obsInjected.Inc()
	key := string(e.Kind) + "/" + e.Target
	switch e.Op {
	case OpCrash:
		inj.downAt[key] = inj.clock.Now()
	case OpRestart:
		if t0, ok := inj.downAt[key]; ok {
			inj.obsMTTR.Observe(inj.clock.Now().Sub(t0))
			delete(inj.downAt, key)
		}
	}
}

// dispatch applies the fault to the owning component and returns an outcome
// note for the log.
func (inj *Injector) dispatch(e Event) string {
	switch e.Kind {
	case KindBookie:
		if inj.ledgers == nil {
			return "(no ledger system)"
		}
		b, ok := inj.ledgers.Bookie(e.Target)
		if !ok {
			return "(unknown bookie)"
		}
		switch e.Op {
		case OpCrash:
			b.SetDown(true)
		case OpRestart:
			b.SetDown(false)
		case OpSlow:
			b.SetSlow(e.Latency)
		case OpDrop:
			b.DropNext(e.N)
		}
	case KindBroker:
		if inj.cluster == nil {
			return "(no cluster)"
		}
		b, ok := inj.cluster.Broker(e.Target)
		if !ok {
			return "(unknown broker)"
		}
		switch e.Op {
		case OpCrash:
			b.SetDown(true)
		case OpRestart:
			b.SetDown(false)
		case OpSlow:
			b.SetSlow(e.Latency)
		case OpDrop:
			b.DropNext(e.N)
		}
	case KindSub:
		if inj.cluster == nil {
			return "(no cluster)"
		}
		topic, sub, ok := strings.Cut(e.Target, "/")
		if !ok {
			return "(target must be topic/sub)"
		}
		switch e.Op {
		case OpDuplicate:
			n, err := inj.cluster.RedeliverUnacked(topic, sub)
			if err != nil {
				return fmt.Sprintf("(err %v)", err)
			}
			return fmt.Sprintf("redelivered=%d", n)
		case OpDrop:
			if err := inj.cluster.DropAcks(topic, sub, e.N); err != nil {
				return fmt.Sprintf("(err %v)", err)
			}
		default:
			return "(unsupported on sub)"
		}
	case KindFunction:
		inj.mu.Lock()
		cr := inj.crashers[e.Target]
		inj.mu.Unlock()
		if cr == nil {
			return "(no crasher registered)"
		}
		if e.Op != OpCrashAfterEffect {
			return "(unsupported on function)"
		}
		cr.Arm(e.N)
	case KindJiffy:
		if inj.mem == nil {
			return "(no jiffy controller)"
		}
		switch e.Op {
		case OpCrash:
			repaired, lost, err := inj.mem.CrashNode(e.Target)
			if err != nil {
				return fmt.Sprintf("(err %v)", err)
			}
			return fmt.Sprintf("repaired=%d lost=%d", repaired, lost)
		case OpRestart:
			if err := inj.mem.RestartNode(e.Target); err != nil {
				return fmt.Sprintf("(err %v)", err)
			}
		default:
			return "(unsupported on jiffy)"
		}
	}
	return ""
}
