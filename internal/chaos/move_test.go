package chaos

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/ledger"
	"repro/internal/pulsar"
	"repro/internal/simclock"
)

// moveCrashResult digests one run of the mid-handoff crash scenario: the
// fault log, the move's outcome, and everything the consumer saw.
type moveCrashResult struct {
	log      []string
	moveErr  string
	redeliv  []int64 // seqs redelivered after the failed handoff
	finalSeq int64
}

// runMoveCrash drives a partition reassignment whose destination broker
// crashes inside the handoff window (stretched by SetHandoffDelay so the
// fault schedule can land there). The topic is left unowned; the next
// publish elects the surviving broker through the same exact-cursor
// recovery as a failover.
func runMoveCrash(t *testing.T) moveCrashResult {
	t.Helper()
	v := simclock.NewVirtual()
	defer v.Close()
	meta := coord.NewStore(v)
	ls := ledger.NewSystem(v, meta)
	for i := 0; i < 3; i++ {
		ls.AddBookie(ledger.NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	cluster := pulsar.NewCluster(v, meta, ls, nil, pulsar.ClusterConfig{})
	for i := 0; i < 2; i++ {
		cluster.AddBroker(fmt.Sprintf("broker-%d", i))
	}
	inj := NewInjector(v, ls, cluster, nil)
	// Crash the destination 1.333ms into the run — inside the 2ms handoff
	// window — and restart it well after the scenario re-elects the
	// survivor. Events keep the generator's off-grid 333µs convention.
	sch := Schedule{
		{At: time.Millisecond + eventOffset, Op: OpCrash, Kind: KindBroker, Target: "broker-1"},
		{At: 8*time.Millisecond + eventOffset, Op: OpRestart, Kind: KindBroker, Target: "broker-1"},
	}

	res := moveCrashResult{}
	v.Run(func() {
		must(t, cluster.CreateTopic("orders", 0))
		must(t, cluster.MoveTopic("orders", "broker-0")) // pin the initial owner
		prod, err := cluster.CreateProducer("orders")
		must(t, err)
		cons, err := cluster.Subscribe("orders", "app", pulsar.Shared, pulsar.Earliest)
		must(t, err)
		for i := 0; i < 10; i++ {
			_, err := prod.Send([]byte(fmt.Sprintf("m%d", i)))
			must(t, err)
		}
		got := map[int64]pulsar.Message{}
		for i := 0; i < 10; i++ {
			m, ok := cons.Receive(time.Second)
			if !ok {
				t.Fatalf("missing message %d", i)
			}
			got[m.Seq] = m
		}
		// Ragged acks: a prefix plus out-of-order holes, so the recovered
		// cursor has both an acked prefix and individually-acked islands.
		acked := map[int64]bool{0: true, 1: true, 2: true, 5: true, 7: true}
		for seq := range acked {
			must(t, cons.Ack(got[seq]))
		}

		cluster.SetHandoffDelay(2 * time.Millisecond)
		inj.Run(sch)
		var wg sync.WaitGroup
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			err := cluster.MoveTopic("orders", "broker-1")
			if err == nil {
				t.Error("move to crashed broker unexpectedly succeeded")
				return
			}
			if !errors.Is(err, pulsar.ErrBrokerDown) {
				t.Errorf("move error = %v, want ErrBrokerDown", err)
			}
			res.moveErr = "broker-down"
		})
		v.BlockOn(wg.Wait)
		cluster.SetHandoffDelay(0)

		// The topic is unowned and the destination is still down: the next
		// publish elects the survivor, recovering the exact cursor.
		for i := 10; i < 15; i++ {
			seq, err := prod.Send([]byte(fmt.Sprintf("m%d", i)))
			must(t, err)
			if seq != int64(i) {
				t.Fatalf("post-crash publish seq = %d, want %d (acked history lost?)", seq, i)
			}
		}
		// Exactly the unacked messages redeliver, then the new ones; no
		// acked message ever comes back.
		want := 5 + 5 // unacked {3,4,6,8,9} + new 10..14
		for len(res.redeliv) < want {
			m, ok := cons.Receive(time.Second)
			if !ok {
				t.Fatalf("timed out; got %v", res.redeliv)
			}
			if acked[m.Seq] {
				t.Fatalf("acked seq %d redelivered after failed handoff", m.Seq)
			}
			res.redeliv = append(res.redeliv, m.Seq)
			must(t, cons.Ack(m))
		}

		inj.Wait() // broker-1 restarts at 8.333ms
		must(t, cluster.MoveTopic("orders", "broker-1"))
		seq, err := prod.Send([]byte("m15"))
		must(t, err)
		res.finalSeq = seq
		m, ok := cons.Receive(time.Second)
		if !ok || m.Seq != seq {
			t.Fatalf("final message: got %v %v, want seq %d", m, ok, seq)
		}
		must(t, cons.Ack(m))
	})
	res.log = inj.Log()
	return res
}

// TestMoveDestinationCrashMidHandoff: crashing the reassignment destination
// inside the handoff window loses nothing — acked messages never redeliver,
// unacked ones redeliver exactly once from the recovered cursor, sequence
// numbers continue unbroken, and the whole scenario is rerun-identical
// under -race.
func TestMoveDestinationCrashMidHandoff(t *testing.T) {
	a := runMoveCrash(t)
	if a.moveErr != "broker-down" {
		t.Fatalf("move outcome = %q", a.moveErr)
	}
	if a.finalSeq != 15 {
		t.Fatalf("final seq = %d, want 15", a.finalSeq)
	}
	if len(a.log) != 2 || !strings.Contains(a.log[0], "crash broker/broker-1") {
		t.Fatalf("fault log = %v", a.log)
	}
	b := runMoveCrash(t)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("reruns diverged:\n%+v\n%+v", a, b)
	}
}
