package chaos

import (
	"errors"
	"fmt"
	"sync"
)

// This file is the effect-boundary half of the chaos plane: crash-after-effect
// injection at named effect boundaries inside a handler execution, plus
// duplicate-delivery support constants. "Formal Foundations of Serverless
// Computing" models a platform crash as striking between any two effects of a
// handler; Crasher makes that precise and injectable — a handler (or the
// conform explorer's wrapper around it) marks each effect boundary by name,
// and an armed Crasher kills the attempt immediately after the k-th effect
// has applied, leaving effects 1..k durable and k+1.. unexecuted. That is
// exactly the partial-execution prefix the at-least-once retry semantics must
// be robust to.

// ErrInjectedCrash is the error a recovered injected crash surfaces as.
// Platform retry machinery treats it like any other handler failure (it is
// retryable), which is the point: a crashed attempt is re-executed.
var ErrInjectedCrash = errors.New("chaos: injected crash")

// CrashSignal is the panic payload an armed Crasher raises. It is converted
// into an error wrapping ErrInjectedCrash by RecoverCrash; any other panic
// value passes through untouched.
type CrashSignal struct {
	Boundary string // name of the effect boundary the crash struck at ("" = entry)
	Index    int    // how many effects had applied when the crash struck (0 = entry)
}

// Crasher injects a crash at a chosen effect boundary of a handler attempt.
// It is one-shot: after firing it disarms itself, so the platform's retry of
// the crashed attempt runs clean unless the driver re-arms. Safe for use from
// the single goroutine executing the handler plus any goroutine calling
// Arm/Disarm between attempts (the conform explorer's driver).
type Crasher struct {
	mu    sync.Mutex
	armed int // effect index to crash at; <0 disarmed
	count int // effects applied in the current attempt
	trace []string
}

// NewCrasher returns a disarmed Crasher.
func NewCrasher() *Crasher { return &Crasher{armed: -1} }

// Arm schedules a crash during the next (or current) attempt: k == 0 strikes
// at Begin, before any effect; k >= 1 strikes at the k-th Boundary call,
// after that effect has applied.
func (c *Crasher) Arm(k int) {
	c.mu.Lock()
	c.armed = k
	c.mu.Unlock()
}

// Disarm cancels any scheduled crash.
func (c *Crasher) Disarm() {
	c.mu.Lock()
	c.armed = -1
	c.mu.Unlock()
}

// Begin starts an attempt: the effect count and boundary trace reset. If the
// Crasher is armed at 0 the attempt dies here — a crash at function entry,
// before any effect.
func (c *Crasher) Begin() {
	c.mu.Lock()
	c.count = 0
	c.trace = c.trace[:0]
	fire := c.armed == 0
	if fire {
		c.armed = -1
	}
	c.mu.Unlock()
	if fire {
		panic(CrashSignal{Boundary: "", Index: 0})
	}
}

// Boundary records that the named effect has just applied, and fires the
// injected crash if this is the armed boundary. Call it immediately AFTER the
// effect becomes durable — the crash then models "the platform died after the
// effect landed but before the handler finished".
func (c *Crasher) Boundary(name string) {
	c.mu.Lock()
	c.count++
	c.trace = append(c.trace, name)
	fire := c.armed == c.count
	idx := c.count
	if fire {
		c.armed = -1
	}
	c.mu.Unlock()
	if fire {
		panic(CrashSignal{Boundary: name, Index: idx})
	}
}

// Crossings returns how many effect boundaries the current (or last) attempt
// crossed.
func (c *Crasher) Crossings() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.count
}

// Trace returns the boundary names the current (or last) attempt crossed, in
// order.
func (c *Crasher) Trace() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.trace...)
}

// RecoverCrash converts an in-flight CrashSignal panic into *err (wrapping
// ErrInjectedCrash) and re-raises any other panic. Use as the first defer of
// a handler wrapped for conformance exploration:
//
//	func(ctx *faas.Ctx, payload []byte) (out []byte, err error) {
//		defer chaos.RecoverCrash(&err)
//		crasher.Begin()
//		return inner(ctx, payload)
//	}
func RecoverCrash(err *error) {
	r := recover()
	if r == nil {
		return
	}
	cs, ok := r.(CrashSignal)
	if !ok {
		panic(r)
	}
	if cs.Index == 0 {
		*err = fmt.Errorf("%w at entry", ErrInjectedCrash)
		return
	}
	*err = fmt.Errorf("%w after effect %d (%s)", ErrInjectedCrash, cs.Index, cs.Boundary)
}
