package chaos

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/jiffy"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/pulsar"
	"repro/internal/simclock"
)

// traceSoakSeed drives both the fault schedule and the tail sampler.
const traceSoakSeed = 11

// runTraceSoak drives traced traffic (explicit request roots wrapping pulsar
// publishes and jiffy puts) through a seeded fault schedule with tail
// sampling on, and returns the tracer's canonical digest — an id-free,
// order-independent hash of every kept trace's structure and virtual-clock
// timings.
func runTraceSoak(t *testing.T, seed int64) (digest string, stats obs.TracerStats) {
	t.Helper()
	v := simclock.NewVirtual()
	defer v.Close()
	meta := coord.NewStore(v)
	ls := ledger.NewSystem(v, meta)
	for i := 0; i < 3; i++ {
		ls.AddBookie(ledger.NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	cluster := pulsar.NewCluster(v, meta, ls, nil, pulsar.ClusterConfig{})
	for i := 0; i < 2; i++ {
		cluster.AddBroker(fmt.Sprintf("broker-%d", i))
	}
	jc := jiffy.NewController(v, nil, jiffy.Config{Latency: jiffy.NoLatency, DefaultLease: -1})
	for i := 0; i < 3; i++ {
		jc.AddNode(fmt.Sprintf("mem-%d", i), 16)
	}
	reg := obs.New(v)
	ls.SetObs(reg)
	cluster.SetObs(reg)
	jc.SetObs(reg)
	tr := reg.Tracer()
	tr.SetMaxSpans(1 << 17)
	tr.SetSampler(obs.SamplerConfig{
		Seed:          seed,
		KeepFraction:  0.3,
		SlowThreshold: 4 * time.Millisecond,
	})

	inj := NewInjector(v, ls, cluster, jc)
	inj.SetObs(reg)
	sch := Generate(Options{
		Seed:       seed,
		Duration:   80 * time.Millisecond,
		Bookies:    ls.BookieIDs(),
		Brokers:    cluster.BrokerIDs(),
		JiffyNodes: jc.NodeIDs(),
		Crashes:    4,
		Stragglers: 2,
		Drops:      2,
	})
	// Bookie stragglers sleep under the brokers' topic locks and stall the
	// virtual clock (see cmd/taureau's startChaos); drop them here too.
	filtered := sch[:0]
	for _, e := range sch {
		if e.Kind == KindBookie && e.Op == OpSlow {
			continue
		}
		filtered = append(filtered, e)
	}

	v.Run(func() {
		must(t, cluster.CreateTopic("tsoak", 0))
		prod, err := cluster.CreateProducer("tsoak")
		must(t, err)
		cons, err := cluster.Subscribe("tsoak", "s", pulsar.Exclusive, pulsar.Earliest)
		must(t, err)
		ns, err := jc.CreateNamespace("/tsoak", jiffy.NamespaceOptions{Replicas: 2, InitialBlocks: 2})
		must(t, err)

		inj.Run(filtered)
		var wg sync.WaitGroup
		prodDone := make(chan struct{})
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			defer close(prodDone)
			for i := 0; i < 40; i++ {
				root := tr.Start(obs.TraceCtx{}, "soak.request")
				_, perr := prod.SendTrace([]byte(fmt.Sprintf("m%d", i)), root.Ctx())
				tns := ns.Traced(root.Ctx())
				kerr := tns.Put(fmt.Sprintf("k%d", i), []byte("v"))
				root.EndErr(perr != nil || kerr != nil)
				v.Sleep(2 * time.Millisecond)
			}
		})
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			done := false
			for {
				m, ok := cons.Receive(4 * time.Millisecond)
				if ok {
					_ = cons.Ack(m)
					continue
				}
				if done {
					return
				}
				select {
				case <-prodDone:
					done = true
				default:
				}
			}
		})
		v.BlockOn(wg.Wait)
		inj.Wait()
	})
	return tr.CanonicalDigest(), tr.Stats()
}

// TestChaosTraceDeterminism is the tracing twin of TestChaosSoak: the same
// seeded chaos run, executed twice with tail sampling enabled, must produce
// byte-identical canonical trace digests. The digest deliberately excludes
// span/trace ids (goroutines race between virtual-clock advances, so atomic
// id assignment is not reproducible) — what must reproduce is everything an
// operator reads off a trace: structure, names, virtual timings, error
// flags, and which traces the sampler kept.
func TestChaosTraceDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos trace soak skipped in -short")
	}
	d1, s1 := runTraceSoak(t, traceSoakSeed)
	if t.Failed() {
		t.Fatal("first trace soak run failed")
	}
	d2, s2 := runTraceSoak(t, traceSoakSeed)
	if d1 != d2 {
		t.Fatalf("trace digests differ across identical runs:\nrun1: %s (stats %+v)\nrun2: %s (stats %+v)", d1, s1, d2, s2)
	}
	if s1.KeptTraces == 0 {
		t.Errorf("sampler kept no traces (stats %+v); the soak produced nothing to digest", s1)
	}
	if s1.DiscardedTraces == 0 {
		t.Errorf("sampler discarded no traces (stats %+v); KeepFraction 0.3 should drop some", s1)
	}
}
