package chaos

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/jiffy"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/pulsar"
	"repro/internal/simclock"
)

// soakSeed drives the soak's fault schedule. Chosen so the plan crashes at
// least one bookie, one broker and one jiffy node (asserted below) — the
// three end-to-end recovery paths the chaos plane exists to exercise.
const soakSeed = 6

// soakResult is the run's digest: the applied-fault log plus everything the
// workloads acknowledged and observed. Two runs with the same seed must
// produce identical digests.
type soakResult struct {
	log          []string
	ledgerAcked  int
	ledgerRead   int
	jiffyPuts    int
	pubAcked     []string
	consumed     map[int64]int // seq → times received
	injectedObs  int64
	recoveriesLg int64
	recoveriesPl int64
}

// runSoak drives the full Figure-1 stack — ledger appends, jiffy KV+FIFO
// traffic, pulsar publish/consume/ack — under a seeded fault schedule, then
// verifies zero acked data was lost anywhere.
func runSoak(t *testing.T, seed int64) soakResult {
	t.Helper()
	v := simclock.NewVirtual()
	defer v.Close()
	meta := coord.NewStore(v)
	// The pulsar-path bookies stay at zero modelled latency: brokers append
	// under their topic locks, and a sleeper holding a lock the injector
	// contends stalls the virtual clock.
	ls := ledger.NewSystem(v, meta)
	for i := 0; i < 3; i++ {
		ls.AddBookie(ledger.NewBookie(fmt.Sprintf("pbookie-%d", i)))
	}
	cluster := pulsar.NewCluster(v, meta, ls, nil, pulsar.ClusterConfig{})
	for i := 0; i < 3; i++ {
		cluster.AddBroker(fmt.Sprintf("broker-%d", i))
	}
	jc := jiffy.NewController(v, nil, jiffy.Config{Latency: jiffy.NoLatency, DefaultLease: -1})
	for i := 0; i < 4; i++ {
		jc.AddNode(fmt.Sprintf("mem-%d", i), 16)
	}
	// The ledger workload gets its own bookie fleet with a real append
	// latency (own metadata store, so ledger ids don't collide with the
	// pulsar topics'): appends span the fault instants, so bookie crashes
	// land mid-batch-append. All fault-plane bookie events target this
	// system; its sleeps happen only in the workload goroutine, lock-free.
	lsys := ledger.NewSystem(v, coord.NewStore(v))
	lsys.AppendLatency = time.Millisecond
	for i := 0; i < 5; i++ {
		lsys.AddBookie(ledger.NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	reg := obs.New(v)
	ls.SetObs(reg)
	lsys.SetObs(reg)
	cluster.SetObs(reg)
	jc.SetObs(reg)
	inj := NewInjector(v, lsys, cluster, jc)
	inj.SetObs(reg)
	sch := Generate(Options{
		Seed:       seed,
		Duration:   120 * time.Millisecond,
		Bookies:    lsys.BookieIDs(),
		Brokers:    cluster.BrokerIDs(),
		JiffyNodes: jc.NodeIDs(),
		Crashes:    6,
		Stragglers: 3,
		Drops:      3,
	})
	kinds := map[Kind]bool{}
	for _, e := range sch {
		if e.Op == OpCrash {
			kinds[e.Kind] = true
		}
	}
	if !kinds[KindBookie] || !kinds[KindBroker] || !kinds[KindJiffy] {
		t.Fatalf("seed %d does not crash all three kinds (%v); pick another", seed, kinds)
	}

	res := soakResult{consumed: map[int64]int{}}
	const iters = 60
	v.Run(func() {
		// --- setup ---
		must(t, cluster.CreateTopic("soak", 0))
		prod, err := cluster.CreateProducer("soak")
		must(t, err)
		cons, err := cluster.Subscribe("soak", "s", pulsar.Exclusive, pulsar.Earliest)
		must(t, err)
		ns, err := jc.CreateNamespace("/soak", jiffy.NamespaceOptions{Replicas: 2, InitialBlocks: 2})
		must(t, err)
		w, err := lsys.CreateLedger(3, 2, 2)
		must(t, err)

		inj.Run(sch)
		var wg sync.WaitGroup
		var ackedEntries [][]byte
		var mu sync.Mutex

		// Ledger workload: a batch append every 2ms. With 5 bookies and at
		// most one down, ensemble replacement must absorb every crash: a
		// failed append here is a recovery bug, not acceptable chaos.
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				batch := [][]byte{
					[]byte(fmt.Sprintf("L%d-a", i)),
					[]byte(fmt.Sprintf("L%d-b", i)),
				}
				if _, err := w.AppendBatch(batch); err != nil {
					t.Errorf("ledger append %d failed under chaos: %v", i, err)
				} else {
					mu.Lock()
					ackedEntries = append(ackedEntries, batch...)
					mu.Unlock()
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		// Jiffy workload: replicated KV puts plus FIFO enqueue/dequeue. With
		// Replicas=2 a single node loss is repaired in place, so no op may
		// fail and no acked put may vanish.
		jiffyAcked := map[string]string{}
		var enq, deq []string
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k, val := fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i)
				if err := ns.Put(k, []byte(val)); err != nil {
					t.Errorf("jiffy Put(%s) failed under chaos: %v", k, err)
				} else {
					jiffyAcked[k] = val
				}
				item := fmt.Sprintf("q%d", i)
				if err := ns.Enqueue([]byte(item)); err != nil {
					t.Errorf("jiffy Enqueue(%s) failed under chaos: %v", item, err)
				} else {
					enq = append(enq, item)
				}
				if i%3 == 2 {
					if it, err := ns.Dequeue(); err != nil {
						t.Errorf("jiffy Dequeue failed under chaos: %v", err)
					} else {
						deq = append(deq, string(it))
					}
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		// Pulsar producer: a publish every 2ms. Drop injections and
		// exhausted failover retries may fail a publish — that loss is
		// legal (never acked); only acked publishes are load-bearing.
		prodDone := make(chan struct{})
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			defer close(prodDone)
			for i := 0; i < iters; i++ {
				payload := fmt.Sprintf("m%d", i)
				if _, err := prod.Send([]byte(payload)); err == nil {
					mu.Lock()
					res.pubAcked = append(res.pubAcked, payload)
					mu.Unlock()
				}
				v.Sleep(2 * time.Millisecond)
			}
		})

		// Pulsar consumer: receive and ack everything, riding through
		// broker failovers; drains after the producer stops.
		received := map[int64][]byte{}
		wg.Add(1)
		v.Go(func() {
			defer wg.Done()
			done := false
			for {
				m, ok := cons.Receive(4 * time.Millisecond)
				if ok {
					received[m.Seq] = m.Payload
					res.consumed[m.Seq]++
					_ = cons.Ack(m)
					continue
				}
				if done {
					return
				}
				select {
				case <-prodDone:
					done = true
				default:
				}
			}
		})

		v.BlockOn(wg.Wait)
		inj.Wait()

		// --- verification: zero lost acked data, everywhere ---
		must(t, w.Close())
		r, err := lsys.OpenReader(w.ID())
		must(t, err)
		entries, err := r.ReadAll()
		must(t, err)
		res.ledgerRead = len(entries)
		mu.Lock()
		res.ledgerAcked = len(ackedEntries)
		if len(entries) != len(ackedEntries) {
			t.Errorf("ledger: read %d entries, acked %d", len(entries), len(ackedEntries))
		} else {
			for i := range entries {
				if !bytes.Equal(entries[i], ackedEntries[i]) {
					t.Errorf("ledger entry %d = %q, acked %q", i, entries[i], ackedEntries[i])
					break
				}
			}
		}
		mu.Unlock()

		res.jiffyPuts = len(jiffyAcked)
		for k, want := range jiffyAcked {
			if got, err := ns.Get(k); err != nil || string(got) != want {
				t.Errorf("jiffy: acked put %s = %q, %v (want %q)", k, got, err, want)
			}
		}
		for {
			it, err := ns.Dequeue()
			if err != nil {
				break
			}
			deq = append(deq, string(it))
		}
		if !reflect.DeepEqual(deq, enq) {
			t.Errorf("jiffy FIFO: dequeued %d items, enqueued %d (order or loss mismatch)", len(deq), len(enq))
		}

		for _, payload := range res.pubAcked {
			found := false
			for _, got := range received {
				if string(got) == payload {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("pulsar: acked publish %q never delivered", payload)
			}
		}
	})

	res.log = inj.Log()
	if len(res.log) != len(sch) {
		t.Errorf("applied %d events, scheduled %d", len(res.log), len(sch))
	}
	res.injectedObs = reg.CounterValue("chaos.injected")
	res.recoveriesLg = reg.CounterValue("ledger.recoveries")
	res.recoveriesPl = reg.CounterValue("pulsar.recoveries")
	if res.injectedObs != int64(len(sch)) {
		t.Errorf("chaos.injected = %d, want %d", res.injectedObs, len(sch))
	}
	return res
}

// TestChaosSoak is the end-to-end chaos regression: a seeded fault schedule
// (bookie, broker and jiffy crashes, stragglers, drops) runs against live
// traffic on every plane, and no acked write is lost anywhere. Two runs with
// the same seed must be byte-identical — event log and workload digest — or
// the virtual-clock determinism the whole harness rests on has regressed.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short")
	}
	r1 := runSoak(t, soakSeed)
	if t.Failed() {
		t.Fatalf("first soak run failed; log:\n%s", joinLines(r1.log))
	}
	r2 := runSoak(t, soakSeed)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("soak not deterministic across runs:\nrun1: %+v\nrun2: %+v", r1, r2)
	}
	if r1.recoveriesLg < 1 {
		t.Errorf("ledger.recoveries = %d, want >= 1 (bookie crash should force ensemble change)", r1.recoveriesLg)
	}
	if r1.recoveriesPl < 1 {
		t.Errorf("pulsar.recoveries = %d, want >= 1 (broker crash should force topic takeover)", r1.recoveriesPl)
	}
}

func joinLines(lines []string) string {
	var b bytes.Buffer
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	return b.String()
}
