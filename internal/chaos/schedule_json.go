package chaos

import (
	"encoding/json"
	"fmt"
	"time"
)

// Schedules marshal to a stable, human-auditable JSON form so a divergence
// witness (the exact fault schedule that broke a handler) can be saved in a
// bug report and replayed byte-for-byte later — reproducibility by value, not
// just by generator seed. Durations are encoded as Go duration strings
// ("333µs", "1.5ms"): exact at nanosecond granularity in both directions.

// eventJSON is Event's wire form.
type eventJSON struct {
	At      string `json:"at"`
	Op      Op     `json:"op"`
	Kind    Kind   `json:"kind"`
	Target  string `json:"target,omitempty"`
	Latency string `json:"latency,omitempty"`
	N       int    `json:"n,omitempty"`
}

// MarshalJSON encodes the event with durations as duration strings.
func (e Event) MarshalJSON() ([]byte, error) {
	ej := eventJSON{
		At:     e.At.String(),
		Op:     e.Op,
		Kind:   e.Kind,
		Target: e.Target,
		N:      e.N,
	}
	if e.Latency != 0 {
		ej.Latency = e.Latency.String()
	}
	return json.Marshal(ej)
}

// UnmarshalJSON decodes the wire form produced by MarshalJSON.
func (e *Event) UnmarshalJSON(data []byte) error {
	var ej eventJSON
	if err := json.Unmarshal(data, &ej); err != nil {
		return err
	}
	at, err := time.ParseDuration(ej.At)
	if err != nil {
		return fmt.Errorf("chaos: bad event time %q: %w", ej.At, err)
	}
	var lat time.Duration
	if ej.Latency != "" {
		if lat, err = time.ParseDuration(ej.Latency); err != nil {
			return fmt.Errorf("chaos: bad event latency %q: %w", ej.Latency, err)
		}
	}
	*e = Event{At: at, Op: ej.Op, Kind: ej.Kind, Target: ej.Target, Latency: lat, N: ej.N}
	return nil
}

// MarshalJSON encodes the schedule as a JSON array of events.
func (s Schedule) MarshalJSON() ([]byte, error) {
	return json.Marshal([]Event(s))
}

// UnmarshalJSON decodes a schedule encoded by MarshalJSON.
func (s *Schedule) UnmarshalJSON(data []byte) error {
	var evs []Event
	if err := json.Unmarshal(data, &evs); err != nil {
		return err
	}
	*s = Schedule(evs)
	return nil
}
