package stateful

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/simclock"
)

func env(t *testing.T, latency jiffy.LatencyModel) (*simclock.Virtual, *Platform) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	fp := faas.New(v, nil)
	ctrl := jiffy.NewController(v, nil, jiffy.Config{Latency: latency, DefaultLease: -1})
	ctrl.AddNode("n0", 32)
	ns, err := ctrl.CreateNamespace("/state", jiffy.NamespaceOptions{InitialBlocks: 4})
	if err != nil {
		t.Fatal(err)
	}
	return v, New(fp, ns)
}

func TestStatePersistsAcrossInvocations(t *testing.T) {
	v, p := env(t, jiffy.NoLatency)
	counter := func(ctx *Ctx, _ []byte) ([]byte, error) {
		n := 0
		if raw, err := ctx.Get("count"); err == nil {
			fmt.Sscanf(string(raw), "%d", &n)
		} else if !IsNoKey(err) {
			return nil, err
		}
		n++
		return []byte(fmt.Sprint(n)), ctx.Put("count", []byte(fmt.Sprint(n)))
	}
	if err := p.Register("counter", "t", counter, Config{}); err != nil {
		t.Fatal(err)
	}
	v.Run(func() {
		for want := 1; want <= 5; want++ {
			res, err := p.Invoke("counter", nil)
			if err != nil {
				t.Fatal(err)
			}
			if string(res.Output) != fmt.Sprint(want) {
				t.Fatalf("invocation %d returned %q", want, res.Output)
			}
		}
	})
}

func TestCacheServesRepeatReadsFast(t *testing.T) {
	// With a 1ms-per-op shared store and caching on, the second read of a
	// key inside the TTL must skip the store entirely.
	v, p := env(t, jiffy.LatencyModel{PerOp: time.Millisecond})
	reader := func(ctx *Ctx, _ []byte) ([]byte, error) {
		if _, err := ctx.Get("cfg"); err != nil {
			return nil, err
		}
		if _, err := ctx.Get("cfg"); err != nil {
			return nil, err
		}
		return nil, nil
	}
	if err := p.Register("reader", "t", reader, Config{
		CacheTTL: time.Minute,
		Function: faas.Config{ColdStart: 1, WarmStart: 1, KeepAlive: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	v.Run(func() {
		if err := p.ns.Put("cfg", []byte("v1")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Invoke("reader", nil); err != nil {
			t.Fatal(err)
		}
	})
	hits, misses := p.CacheStats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

func TestBoundedStaleness(t *testing.T) {
	// A cached value may be stale at most CacheTTL: after the TTL the
	// instance re-reads the shared store and sees the new value.
	v, p := env(t, jiffy.NoLatency)
	var got []string
	reader := func(ctx *Ctx, _ []byte) ([]byte, error) {
		val, err := ctx.Get("k")
		if err != nil {
			return nil, err
		}
		got = append(got, string(val))
		return nil, nil
	}
	if err := p.Register("reader", "t", reader, Config{
		CacheTTL: 10 * time.Second,
		Function: faas.Config{ColdStart: 1, WarmStart: 1, KeepAlive: time.Hour},
	}); err != nil {
		t.Fatal(err)
	}
	v.Run(func() {
		if err := p.ns.Put("k", []byte("old")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Invoke("reader", nil); err != nil {
			t.Fatal(err)
		}
		// An external writer updates the shared store directly.
		if err := p.ns.Put("k", []byte("new")); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Invoke("reader", nil); err != nil {
			t.Fatal(err)
		}
		v.Sleep(11 * time.Second) // past the TTL
		if _, err := p.Invoke("reader", nil); err != nil {
			t.Fatal(err)
		}
	})
	if len(got) != 3 || got[0] != "old" || got[1] != "old" || got[2] != "new" {
		t.Fatalf("reads = %v, want [old old(cached) new]", got)
	}
}

func TestWriteThroughVisibleImmediatelyToWriter(t *testing.T) {
	v, p := env(t, jiffy.NoLatency)
	rw := func(ctx *Ctx, payload []byte) ([]byte, error) {
		if err := ctx.Put("x", payload); err != nil {
			return nil, err
		}
		return ctx.Get("x")
	}
	if err := p.Register("rw", "t", rw, Config{CacheTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	v.Run(func() {
		res, err := p.Invoke("rw", []byte("fresh"))
		if err != nil || string(res.Output) != "fresh" {
			t.Fatalf("res = %q err = %v", res.Output, err)
		}
	})
}

func TestDeleteClearsCacheAndStore(t *testing.T) {
	v, p := env(t, jiffy.NoLatency)
	h := func(ctx *Ctx, _ []byte) ([]byte, error) {
		if err := ctx.Put("k", []byte("v")); err != nil {
			return nil, err
		}
		if err := ctx.Delete("k"); err != nil {
			return nil, err
		}
		if _, err := ctx.Get("k"); !IsNoKey(err) {
			return nil, fmt.Errorf("deleted key readable: %v", err)
		}
		return nil, nil
	}
	if err := p.Register("h", "t", h, Config{CacheTTL: time.Minute}); err != nil {
		t.Fatal(err)
	}
	v.Run(func() {
		if _, err := p.Invoke("h", nil); err != nil {
			t.Fatal(err)
		}
	})
}
