// Package stateful implements a Cloudburst-style stateful FaaS layer
// (§4.1, [168]): "a stateful FaaS platform that provides familiar ...
// programming with low-latency mutable state and communication". Handlers
// get a mutable key-value state abstraction backed by the Jiffy ephemeral
// store (standing in for Cloudburst's Anna KVS), with a per-instance local
// cache on the function's warm instances — reads hit the cache at memory
// speed; writes go through to the shared store and invalidate per a
// freshness bound, giving Cloudburst's bounded-staleness flavour of
// consistency.
package stateful

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
)

// ErrNoKey mirrors jiffy.ErrNoKey for state misses.
var ErrNoKey = jiffy.ErrNoKey

// Handler is a stateful function body.
type Handler func(ctx *Ctx, payload []byte) ([]byte, error)

// Config parameterizes a stateful function.
type Config struct {
	// Function is the underlying FaaS configuration.
	Function faas.Config
	// CacheTTL bounds how stale a cached read may be. Zero disables
	// caching (every read hits the shared store). Cloudburst's guarantees
	// are causal; bounded staleness is the shape this reproduction models.
	CacheTTL time.Duration
}

// Platform wires a FaaS platform and a Jiffy namespace into a stateful
// function runtime.
//
// Concurrency: the cache table is read-mostly (a cache is inserted once per
// function instance, then looked up on every state op), so it sits behind an
// RWMutex; each instance's cache has its own lock, so state ops on distinct
// instances never contend. Hit/miss counters are atomics — they are touched
// on every cached read and must not serialize the read path.
type Platform struct {
	faas *faas.Platform
	ns   *jiffy.Namespace

	mu     sync.RWMutex
	caches map[string]*cache // function#instance → local cache

	hits   atomic.Int64
	misses atomic.Int64
}

type cache struct {
	mu      sync.Mutex
	entries map[string]cacheEntry
}

type cacheEntry struct {
	value     []byte
	fetchedAt time.Time
}

// New creates a stateful platform over an existing FaaS platform and
// namespace.
func New(fp *faas.Platform, ns *jiffy.Namespace) *Platform {
	return &Platform{faas: fp, ns: ns, caches: map[string]*cache{}}
}

// CacheStats returns (hits, misses) across all instances.
func (p *Platform) CacheStats() (int64, int64) {
	return p.hits.Load(), p.misses.Load()
}

// cacheFor returns the instance's cache, creating it on first use.
func (p *Platform) cacheFor(key string) *cache {
	p.mu.RLock()
	ch := p.caches[key]
	p.mu.RUnlock()
	if ch != nil {
		return ch
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if ch = p.caches[key]; ch == nil {
		ch = &cache{entries: map[string]cacheEntry{}}
		p.caches[key] = ch
	}
	return ch
}

// Ctx extends the FaaS context with mutable state.
type Ctx struct {
	*faas.Ctx
	p   *Platform
	ttl time.Duration
	key string // cache key: function#instance
}

// Get reads a state key, serving from this instance's local cache when the
// entry is within the freshness bound.
func (c *Ctx) Get(key string) ([]byte, error) {
	now := c.Clock.Now()
	if c.ttl > 0 {
		ch := c.p.cacheFor(c.key)
		ch.mu.Lock()
		if e, ok := ch.entries[key]; ok && now.Sub(e.fetchedAt) <= c.ttl {
			val := append([]byte(nil), e.value...)
			ch.mu.Unlock()
			c.p.hits.Add(1)
			return val, nil
		}
		ch.mu.Unlock()
		c.p.misses.Add(1)
	}
	val, err := c.p.ns.Get(key)
	if err != nil {
		return nil, err
	}
	c.cacheStore(key, val, now)
	return val, nil
}

// Put writes a state key through to the shared store and refreshes this
// instance's cache. Other instances see the write once their cached entries
// age out (bounded staleness).
func (c *Ctx) Put(key string, value []byte) error {
	if err := c.p.ns.Put(key, value); err != nil {
		return err
	}
	c.cacheStore(key, value, c.Clock.Now())
	return nil
}

// Delete removes a state key everywhere this instance can see.
func (c *Ctx) Delete(key string) error {
	c.p.mu.RLock()
	ch := c.p.caches[c.key]
	c.p.mu.RUnlock()
	if ch != nil {
		ch.mu.Lock()
		delete(ch.entries, key)
		ch.mu.Unlock()
	}
	return c.p.ns.Delete(key)
}

func (c *Ctx) cacheStore(key string, value []byte, at time.Time) {
	if c.ttl <= 0 {
		return
	}
	ch := c.p.cacheFor(c.key)
	ch.mu.Lock()
	ch.entries[key] = cacheEntry{value: append([]byte(nil), value...), fetchedAt: at}
	ch.mu.Unlock()
}

// Register deploys a stateful function under the given name and tenant.
func (p *Platform) Register(name, tenant string, h Handler, cfg Config) error {
	wrapped := func(fctx *faas.Ctx, payload []byte) ([]byte, error) {
		ctx := &Ctx{
			Ctx: fctx,
			p:   p,
			ttl: cfg.CacheTTL,
			key: fmt.Sprintf("%s#%d", name, fctx.InstanceID),
		}
		return h(ctx, payload)
	}
	return p.faas.Register(name, tenant, wrapped, cfg.Function)
}

// Invoke runs a stateful function synchronously.
func (p *Platform) Invoke(name string, payload []byte) (faas.Result, error) {
	return p.faas.Invoke(name, payload)
}

// IsNoKey reports whether err is a state miss.
func IsNoKey(err error) bool { return errors.Is(err, jiffy.ErrNoKey) }
