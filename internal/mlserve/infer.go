package mlserve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/blob"
	"repro/internal/faas"
)

// ModelStore is the tiered model repository of TrIMS [88]: models persist in
// blob storage; a shared in-memory cache across function instances removes
// the model-loading component of inference cold starts — the overhead that
// Ishakian et al. [112] measured to dominate serverless inference latency.
type ModelStore struct {
	store  *blob.Store
	bucket string

	mu    sync.Mutex
	cache map[string][]float64
	hits  int64
	miss  int64
}

// NewModelStore creates a store over an existing bucket.
func NewModelStore(store *blob.Store, bucket string) *ModelStore {
	return &ModelStore{store: store, bucket: bucket, cache: map[string][]float64{}}
}

// Publish uploads model weights under name.
func (m *ModelStore) Publish(name string, weights []float64) error {
	raw, _ := json.Marshal(weights)
	_, err := m.store.Put(m.bucket, "models/"+name, raw, blob.PutOptions{})
	return err
}

// Load fetches a model, using the shared cache when allowed. The blob read
// (and its modelled latency) is paid only on a miss.
func (m *ModelStore) Load(name string, useCache bool) ([]float64, error) {
	if useCache {
		m.mu.Lock()
		if w, ok := m.cache[name]; ok {
			m.hits++
			m.mu.Unlock()
			return w, nil
		}
		m.mu.Unlock()
	}
	raw, _, err := m.store.Get(m.bucket, "models/"+name)
	if err != nil {
		return nil, err
	}
	var w []float64
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.miss++
	if useCache {
		m.cache[name] = w
	}
	m.mu.Unlock()
	return w, nil
}

// CacheStats returns (hits, misses).
func (m *ModelStore) CacheStats() (int64, int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.hits, m.miss
}

// ServeConfig parameterizes an inference deployment.
type ServeConfig struct {
	// Model names the published model to serve.
	Model string
	// UseCache enables the shared model cache (the TrIMS treatment arm).
	UseCache bool
	// InferCost models per-request compute. Default 2ms ([112]: inference
	// is cheap; loading is what hurts).
	InferCost time.Duration
	// Function overrides the function config.
	Function faas.Config
	// Tenant owns the function. Default "infer".
	Tenant string
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.InferCost == 0 {
		c.InferCost = 2 * time.Millisecond
	}
	if c.Tenant == "" {
		c.Tenant = "infer"
	}
	if c.Function.ColdStart == 0 {
		c.Function.ColdStart = 150 * time.Millisecond
	}
	if c.Function.MaxRetries == 0 {
		c.Function.MaxRetries = -1
	}
	return c
}

// InferRequest is the payload for a deployed inference function.
type InferRequest struct {
	Features []float64 `json:"features"`
}

// InferResponse is the function's output.
type InferResponse struct {
	Probability float64 `json:"probability"`
	Label       int     `json:"label"`
}

// Deploy registers an inference function for a published model and returns
// its name. Each invocation loads the model (cache-aware), pays the
// inference cost, and returns the logistic prediction.
func Deploy(p *faas.Platform, ms *ModelStore, name string, cfg ServeConfig) (string, error) {
	cfg = cfg.withDefaults()
	fnName := "infer-" + name
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var req InferRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		w, err := ms.Load(cfg.Model, cfg.UseCache)
		if err != nil {
			return nil, err
		}
		if len(req.Features) != len(w) {
			return nil, fmt.Errorf("mlserve: feature dim %d != model dim %d", len(req.Features), len(w))
		}
		ctx.Work(cfg.InferCost)
		prob := sigmoid(dot(req.Features, w))
		label := 0
		if prob >= 0.5 {
			label = 1
		}
		return json.Marshal(InferResponse{Probability: prob, Label: label})
	}
	if err := p.Register(fnName, cfg.Tenant, handler, cfg.Function); err != nil {
		return "", err
	}
	return fnName, nil
}
