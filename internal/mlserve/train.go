package mlserve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/faas"
)

// Topology selects the parameter-server arrangement.
type Topology int

const (
	// Flat: every worker pushes to the single root server.
	Flat Topology = iota
	// Hierarchical: workers push to √W-ish aggregators that forward
	// combined updates to the root ([94]).
	Hierarchical
)

// TrainConfig parameterizes distributed training.
type TrainConfig struct {
	Workers int
	Rounds  int
	LR      float64
	// Topology selects flat vs hierarchical parameter serving.
	Topology Topology
	// Aggregators overrides the hierarchical fan-out (default ≈ √Workers).
	Aggregators int
	// PSService is the parameter server's per-request service time.
	// Default 5ms.
	PSService time.Duration
	// WorkPerExample models per-example gradient compute. Default 50µs.
	WorkPerExample time.Duration
	// Tenant owns the worker function. Default "mltrain".
	Tenant string
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 10
	}
	if c.LR == 0 {
		c.LR = 0.5
	}
	if c.PSService == 0 {
		c.PSService = 5 * time.Millisecond
	}
	if c.WorkPerExample == 0 {
		c.WorkPerExample = 50 * time.Microsecond
	}
	if c.Tenant == "" {
		c.Tenant = "mltrain"
	}
	if c.Aggregators <= 0 {
		c.Aggregators = isqrt(c.Workers)
	}
	return c
}

// TrainReport describes a distributed training run.
type TrainReport struct {
	Weights    []float64
	RoundWalls []time.Duration
	FinalLoss  float64
}

// TrainDistributed runs synchronous data-parallel logistic-regression
// training over FaaS workers with gradients funnelled through a parameter
// server. With identical data, rounds, and learning rate it computes exactly
// the same weights as TrainSerial — the topologies differ only in wall-clock
// time (experiment E8).
func TrainDistributed(p *faas.Platform, ds Dataset, cfg TrainConfig) (TrainReport, error) {
	cfg = cfg.withDefaults()
	clock := p.Clock()
	dim := len(ds.X[0])
	root := NewServer(clock, dim, cfg.PSService)

	// Build the push path.
	paths := make([]Pusher, cfg.Workers)
	switch cfg.Topology {
	case Flat:
		for i := range paths {
			paths[i] = root
		}
	case Hierarchical:
		aggs := make([]*Aggregator, cfg.Aggregators)
		// Workers are dealt round-robin; each aggregator knows its exact
		// fan-in so it flushes once per round.
		for a := range aggs {
			fanIn := cfg.Workers / cfg.Aggregators
			if a < cfg.Workers%cfg.Aggregators {
				fanIn++
			}
			aggs[a] = NewAggregator(clock, root, fanIn, cfg.PSService)
		}
		for i := range paths {
			paths[i] = aggs[i%cfg.Aggregators]
		}
	}

	// The worker function: pull-free (weights arrive in the payload
	// snapshot), gradient over its shard, push along its path.
	var snapMu sync.Mutex
	snapshot := root.Snapshot()
	fnName := fmt.Sprintf("sgd-worker-%d-%d", cfg.Workers, int(cfg.Topology))
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct{ Shard int }
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		shard := ds.Shard(in.Shard, cfg.Workers)
		snapMu.Lock()
		w := append([]float64{}, snapshot...)
		snapMu.Unlock()
		g := Gradient(shard, w)
		ctx.Work(time.Duration(shard.Len()) * cfg.WorkPerExample)
		paths[in.Shard].Push(g, cfg.LR/float64(ds.Len()))
		return nil, nil
	}
	if err := p.Register(fnName, cfg.Tenant, worker, faas.Config{
		ColdStart:  50 * time.Millisecond,
		Timeout:    time.Hour,
		MaxRetries: -1,
	}); err != nil {
		return TrainReport{}, err
	}
	defer p.Unregister(fnName)

	rep := TrainReport{}
	for r := 0; r < cfg.Rounds; r++ {
		snapMu.Lock()
		snapshot = root.Snapshot()
		snapMu.Unlock()
		start := clock.Now()
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		for wkr := 0; wkr < cfg.Workers; wkr++ {
			payload, _ := json.Marshal(struct{ Shard int }{wkr})
			wg.Add(1)
			p.InvokeAsync(fnName, payload, func(_ faas.Result, err error) {
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				wg.Done()
			})
		}
		clock.BlockOn(wg.Wait)
		if firstErr != nil {
			return rep, firstErr
		}
		rep.RoundWalls = append(rep.RoundWalls, clock.Now().Sub(start))
	}
	rep.Weights = root.Snapshot()
	rep.FinalLoss = LogLoss(ds, rep.Weights)
	return rep, nil
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}
