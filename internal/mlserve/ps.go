package mlserve

import (
	"sync"
	"time"

	"repro/internal/simclock"
)

// Server is a parameter server: it holds the model weights and processes
// pulls and gradient applications *sequentially*, each costing a modelled
// service time — the serialization that makes a flat parameter server the
// bottleneck of data-parallel training as worker counts grow, and that
// hierarchical aggregation ([94]) alleviates.
type Server struct {
	clock   simclock.Clock
	service time.Duration

	mu      sync.Mutex
	w       []float64
	pulls   int64
	applies int64
}

// NewServer creates a parameter server with zero-initialized weights of the
// given dimension and the given per-request service time.
func NewServer(clock simclock.Clock, dim int, service time.Duration) *Server {
	return &Server{clock: clock, service: service, w: make([]float64, dim)}
}

// lockSlow acquires the server's lock in a virtual-clock-aware way: waiting
// for a busy server counts as blocked, letting simulated time advance.
func (s *Server) lockSlow() {
	s.clock.BlockOn(s.mu.Lock)
}

// Pull returns a copy of the current weights, paying one service time.
func (s *Server) Pull() []float64 {
	s.lockSlow()
	defer s.mu.Unlock()
	s.clock.Sleep(s.service)
	s.pulls++
	return append([]float64{}, s.w...)
}

// Apply subtracts factor·grad from the weights, paying one service time.
func (s *Server) Apply(grad []float64, factor float64) {
	s.lockSlow()
	defer s.mu.Unlock()
	s.clock.Sleep(s.service)
	s.applies++
	for i := range s.w {
		s.w[i] -= factor * grad[i]
	}
}

// Snapshot returns the weights without paying service time (coordinator
// bookkeeping, not a modelled network request).
func (s *Server) Snapshot() []float64 {
	s.lockSlow()
	defer s.mu.Unlock()
	return append([]float64{}, s.w...)
}

// Stats returns (pulls, applies) processed so far.
func (s *Server) Stats() (int64, int64) {
	s.lockSlow()
	defer s.mu.Unlock()
	return s.pulls, s.applies
}

// Pusher accepts worker gradients. Both Server (flat topology) and
// Aggregator (hierarchical) implement it.
type Pusher interface {
	// Push contributes one worker's summed gradient; factor is the
	// per-worker update scale applied at the root.
	Push(grad []float64, factor float64)
}

// Push implements Pusher for the flat topology: every worker pushes straight
// to the root server.
func (s *Server) Push(grad []float64, factor float64) {
	s.Apply(grad, factor)
}

// Aggregator is one mid-tier node of a hierarchical parameter server: it
// absorbs fanIn worker pushes (each paying the aggregator's service time,
// but in parallel across aggregators), then forwards a single combined
// update to the root.
type Aggregator struct {
	clock   simclock.Clock
	root    *Server
	fanIn   int
	service time.Duration

	mu     sync.Mutex
	acc    []float64
	factor float64
	count  int
}

// NewAggregator creates an aggregator forwarding to root after fanIn pushes.
func NewAggregator(clock simclock.Clock, root *Server, fanIn int, service time.Duration) *Aggregator {
	return &Aggregator{clock: clock, root: root, fanIn: fanIn, service: service}
}

// Push implements Pusher.
func (a *Aggregator) Push(grad []float64, factor float64) {
	a.clock.BlockOn(a.mu.Lock)
	a.clock.Sleep(a.service)
	if a.acc == nil {
		a.acc = make([]float64, len(grad))
	}
	for i := range grad {
		a.acc[i] += grad[i]
	}
	a.factor = factor
	a.count++
	var flush []float64
	var f float64
	if a.count >= a.fanIn {
		flush, f = a.acc, a.factor
		a.acc, a.count = nil, 0
	}
	a.mu.Unlock()
	if flush != nil {
		a.root.Apply(flush, f)
	}
}
