package mlserve

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faas"
)

// CodedConfig parameterizes straggler-resilient distributed mat-vec — the
// coded-computation setting of [104]/[132], where redundant encoded work
// lets the result complete from any sufficient subset of workers, providing
// "in-built resiliency against stragglers that are characteristic of
// serverless architectures".
type CodedConfig struct {
	// Stripes is how many row-stripes the matrix splits into.
	Stripes int
	// Replication is how many workers compute each stripe (1 = uncoded:
	// the result needs *every* worker; ≥2 = coded: the result needs any
	// one replica per stripe).
	Replication int
	// StragglerProb is each task's probability of straggling.
	StragglerProb float64
	// StragglerDelay is the extra modelled latency a straggler pays.
	// Default 10× WorkPerRow×rows.
	StragglerDelay time.Duration
	// WorkPerEntry models compute per matrix entry. Default 1µs.
	WorkPerEntry time.Duration
	// Seed drives straggler injection.
	Seed int64
	// Tenant owns the worker function. Default "coded".
	Tenant string
}

func (c CodedConfig) withDefaults(rows int) CodedConfig {
	if c.Stripes <= 0 {
		c.Stripes = 4
	}
	if c.Replication <= 0 {
		c.Replication = 1
	}
	if c.WorkPerEntry == 0 {
		c.WorkPerEntry = time.Microsecond
	}
	if c.StragglerDelay == 0 {
		c.StragglerDelay = 10 * time.Duration(rows) * time.Millisecond
	}
	if c.Tenant == "" {
		c.Tenant = "coded"
	}
	return c
}

// CodedReport describes one mat-vec run.
type CodedReport struct {
	Y []float64
	// Wall is when the result was complete (first replica per stripe).
	Wall time.Duration
	// Invocations is total tasks launched (the redundancy cost).
	Invocations int
	// Stragglers is how many tasks straggled.
	Stragglers int
}

// MatVec computes y = A·x over FaaS workers with the given striping and
// replication. The returned wall time is when every stripe had its first
// completed replica — redundant replicas may still be running (and billing).
func MatVec(p *faas.Platform, a [][]float64, x []float64, cfg CodedConfig) (CodedReport, error) {
	rows := len(a)
	if rows == 0 || len(a[0]) != len(x) {
		return CodedReport{}, fmt.Errorf("mlserve: matvec dimension mismatch")
	}
	cfg = cfg.withDefaults(rows)
	if cfg.Stripes > rows {
		cfg.Stripes = rows
	}
	clock := p.Clock()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-decide stragglers deterministically, task order = (stripe, replica).
	straggle := make([][]bool, cfg.Stripes)
	nStraggle := 0
	for s := range straggle {
		straggle[s] = make([]bool, cfg.Replication)
		for r := range straggle[s] {
			if rng.Float64() < cfg.StragglerProb {
				straggle[s][r] = true
				nStraggle++
			}
		}
	}

	fnName := fmt.Sprintf("matvec-%d-%d", cfg.Stripes, cfg.Replication)
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct{ Stripe, Replica int }
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		lo, hi := in.Stripe*rows/cfg.Stripes, (in.Stripe+1)*rows/cfg.Stripes
		out := make([]float64, hi-lo)
		for i := lo; i < hi; i++ {
			for j, v := range a[i] {
				out[i-lo] += v * x[j]
			}
		}
		ctx.Work(time.Duration((hi-lo)*len(x)) * cfg.WorkPerEntry)
		if straggle[in.Stripe][in.Replica] {
			ctx.Work(cfg.StragglerDelay)
		}
		return json.Marshal(out)
	}
	if err := p.Register(fnName, cfg.Tenant, worker, faas.Config{
		ColdStart:  20 * time.Millisecond,
		Timeout:    time.Hour,
		MaxRetries: -1,
	}); err != nil {
		return CodedReport{}, err
	}
	defer p.Unregister(fnName)

	start := clock.Now()
	var mu sync.Mutex
	stripeDone := make([]bool, cfg.Stripes)
	stripeOut := make([][]float64, cfg.Stripes)
	remaining := cfg.Stripes
	var wall time.Duration
	allDone := make(chan struct{})
	var once sync.Once
	var wgAll sync.WaitGroup

	for s := 0; s < cfg.Stripes; s++ {
		for r := 0; r < cfg.Replication; r++ {
			payload, _ := json.Marshal(struct{ Stripe, Replica int }{s, r})
			s := s
			wgAll.Add(1)
			p.InvokeAsync(fnName, payload, func(res faas.Result, err error) {
				defer wgAll.Done()
				if err != nil {
					return
				}
				var out []float64
				if json.Unmarshal(res.Output, &out) != nil {
					return
				}
				mu.Lock()
				if !stripeDone[s] {
					stripeDone[s] = true
					stripeOut[s] = out
					remaining--
					if remaining == 0 {
						// Stamp the wall here, in the resolving tracked
						// goroutine: virtual time cannot advance while it
						// runs. Reading Now() after BlockOn resumes instead
						// races with the clock driver — if this goroutine's
						// waker is descheduled past the settle window (GC
						// assist pressure), the driver jumps to the next
						// deadline (a straggler's wake) first and the
						// measurement absorbs the stragglers it was designed
						// to dodge.
						wall = clock.Now().Sub(start)
						once.Do(func() { close(allDone) })
					}
				}
				mu.Unlock()
			})
		}
	}
	clock.BlockOn(func() { <-allDone })
	// Drain the redundant replicas before returning (they exist and bill;
	// the *result* was ready at wall).
	clock.BlockOn(wgAll.Wait)

	y := make([]float64, 0, rows)
	mu.Lock()
	for _, part := range stripeOut {
		y = append(y, part...)
	}
	mu.Unlock()
	return CodedReport{
		Y:           y,
		Wall:        wall,
		Invocations: cfg.Stripes * cfg.Replication,
		Stragglers:  nStraggle,
	}, nil
}

// MatVecSerial is the baseline.
func MatVecSerial(a [][]float64, x []float64) []float64 {
	y := make([]float64, len(a))
	for i, row := range a {
		for j, v := range row {
			y[i] += v * x[j]
		}
	}
	return y
}

// RandomMatrix generates a deterministic rows×cols matrix.
func RandomMatrix(rows, cols int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	a := make([][]float64, rows)
	for i := range a {
		a[i] = make([]float64, cols)
		for j := range a[i] {
			a[i][j] = rng.NormFloat64()
		}
	}
	return a
}

// RandomVector generates a deterministic vector.
func RandomVector(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

// MaxAbsDiffVec returns max |a[i]-b[i]|.
func MaxAbsDiffVec(a, b []float64) float64 {
	if len(a) != len(b) {
		return math.Inf(1)
	}
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}
