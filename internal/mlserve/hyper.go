package mlserve

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faas"
)

// HyperConfig parameterizes a hyperparameter grid search in the style of
// Seneca [186]: the system "concurrently invokes functions for all
// combinations of the hyperparameters specified and returns the
// configuration that results in the best score".
type HyperConfig struct {
	// LRs and Rounds define the grid (every pair is one configuration).
	LRs    []float64
	Rounds []int
	// Concurrent selects concurrent (serverless) vs sequential execution.
	Concurrent bool
	// WorkPerTrial models each trial's compute time. Default 2s.
	WorkPerTrial time.Duration
	// Tenant owns the trial function. Default "hyper".
	Tenant string
}

func (c HyperConfig) withDefaults() HyperConfig {
	if len(c.LRs) == 0 {
		c.LRs = []float64{0.01, 0.1, 0.5}
	}
	if len(c.Rounds) == 0 {
		c.Rounds = []int{10}
	}
	if c.WorkPerTrial == 0 {
		c.WorkPerTrial = 2 * time.Second
	}
	if c.Tenant == "" {
		c.Tenant = "hyper"
	}
	return c
}

// Trial is one evaluated configuration.
type Trial struct {
	LR     float64 `json:"lr"`
	Rounds int     `json:"rounds"`
	Loss   float64 `json:"loss"`
}

// HyperReport describes one search.
type HyperReport struct {
	Best   Trial
	Trials []Trial
	Wall   time.Duration
}

// GridSearch trains one model per (lr, rounds) configuration on held-in data
// and scores it on held-out data, returning the best by validation loss.
func GridSearch(p *faas.Platform, train, val Dataset, cfg HyperConfig) (HyperReport, error) {
	cfg = cfg.withDefaults()
	clock := p.Clock()

	fnName := fmt.Sprintf("hp-trial-%d", len(cfg.LRs)*len(cfg.Rounds))
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in Trial
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		w := TrainSerial(train, in.LR, in.Rounds)
		in.Loss = LogLoss(val, w)
		ctx.Work(cfg.WorkPerTrial)
		return json.Marshal(in)
	}
	if err := p.Register(fnName, cfg.Tenant, worker, faas.Config{
		ColdStart:  100 * time.Millisecond,
		Timeout:    time.Hour,
		MaxRetries: -1,
	}); err != nil {
		return HyperReport{}, err
	}
	defer p.Unregister(fnName)

	var grid []Trial
	for _, lr := range cfg.LRs {
		for _, r := range cfg.Rounds {
			grid = append(grid, Trial{LR: lr, Rounds: r})
		}
	}

	start := clock.Now()
	rep := HyperReport{Best: Trial{Loss: math.Inf(1)}}
	collect := func(res faas.Result, err error) *Trial {
		if err != nil {
			return nil
		}
		var out Trial
		if json.Unmarshal(res.Output, &out) != nil {
			return nil
		}
		return &out
	}
	if cfg.Concurrent {
		var wg sync.WaitGroup
		var mu sync.Mutex
		for _, tr := range grid {
			payload, _ := json.Marshal(tr)
			wg.Add(1)
			p.InvokeAsync(fnName, payload, func(res faas.Result, err error) {
				if out := collect(res, err); out != nil {
					mu.Lock()
					rep.Trials = append(rep.Trials, *out)
					mu.Unlock()
				}
				wg.Done()
			})
		}
		clock.BlockOn(wg.Wait)
	} else {
		for _, tr := range grid {
			payload, _ := json.Marshal(tr)
			res, err := p.Invoke(fnName, payload)
			if out := collect(res, err); out != nil {
				rep.Trials = append(rep.Trials, *out)
			}
		}
	}
	rep.Wall = clock.Now().Sub(start)
	if len(rep.Trials) != len(grid) {
		return rep, fmt.Errorf("mlserve: %d/%d trials completed", len(rep.Trials), len(grid))
	}
	for _, tr := range rep.Trials {
		if tr.Loss < rep.Best.Loss {
			rep.Best = tr
		}
	}
	return rep, nil
}
