package mlserve

import (
	"encoding/json"
	"math"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/faas"
	"repro/internal/simclock"
)

func env(t *testing.T) (*simclock.Virtual, *faas.Platform) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	return v, faas.New(v, nil)
}

func TestSyntheticLogisticLearnable(t *testing.T) {
	ds := SyntheticLogistic(2000, 5, 1)
	w := TrainSerial(ds, 0.5, 50)
	acc := Accuracy(ds, w)
	if acc < 0.8 {
		t.Fatalf("trained accuracy %.3f — dataset not learnable", acc)
	}
	zero := make([]float64, 5)
	if LogLoss(ds, w) >= LogLoss(ds, zero) {
		t.Fatal("training did not reduce loss")
	}
}

func TestShardPartition(t *testing.T) {
	ds := SyntheticLogistic(100, 3, 2)
	total := 0
	for i := 0; i < 7; i++ {
		total += ds.Shard(i, 7).Len()
	}
	if total != 100 {
		t.Fatalf("shards cover %d examples", total)
	}
}

func TestDistributedMatchesSerial(t *testing.T) {
	// Synchronous data-parallel full-batch GD must equal the serial run
	// exactly: gradients are summed, scale lr/N — same update.
	v, p := env(t)
	ds := SyntheticLogistic(400, 4, 3)
	want := TrainSerial(ds, 0.5, 5)
	for _, topo := range []Topology{Flat, Hierarchical} {
		var got []float64
		v.Run(func() {
			rep, err := TrainDistributed(p, ds, TrainConfig{
				Workers: 4, Rounds: 5, LR: 0.5, Topology: topo,
			})
			if err != nil {
				t.Error(err)
				return
			}
			got = rep.Weights
		})
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("topology %d: w[%d] = %v, want %v", topo, i, got[i], want[i])
			}
		}
	}
}

func TestHierarchicalBeatsFlatAtScale(t *testing.T) {
	// With 16 workers and a 5ms-per-request PS, the flat root serializes
	// 16 pushes; hierarchical (4 aggregators) parallelizes them.
	v, p := env(t)
	ds := SyntheticLogistic(320, 4, 4)
	walls := map[Topology]time.Duration{}
	for _, topo := range []Topology{Flat, Hierarchical} {
		v.Run(func() {
			rep, err := TrainDistributed(p, ds, TrainConfig{
				Workers: 16, Rounds: 3, LR: 0.5, Topology: topo,
				PSService: 5 * time.Millisecond, WorkPerExample: 10 * time.Microsecond,
			})
			if err != nil {
				t.Error(err)
				return
			}
			var sum time.Duration
			for _, w := range rep.RoundWalls {
				sum += w
			}
			walls[topo] = sum
		})
	}
	if walls[Hierarchical] >= walls[Flat] {
		t.Fatalf("hierarchical %v not faster than flat %v", walls[Hierarchical], walls[Flat])
	}
}

func TestPSServiceSerializes(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	ps := NewServer(v, 4, 10*time.Millisecond)
	end := v.Run(func() {
		done := make(chan struct{}, 8)
		for i := 0; i < 8; i++ {
			v.Go(func() {
				ps.Apply([]float64{1, 1, 1, 1}, 0.1)
				done <- struct{}{}
			})
		}
		v.BlockOn(func() {
			for i := 0; i < 8; i++ {
				<-done
			}
		})
	})
	// 8 serialized applies at 10ms = 80ms.
	if el := end.Sub(simclock.Epoch); el != 80*time.Millisecond {
		t.Fatalf("elapsed %v, want 80ms (serialized)", el)
	}
	if _, applies := ps.Stats(); applies != 8 {
		t.Fatalf("applies = %d", applies)
	}
	w := ps.Snapshot()
	if math.Abs(w[0]-(-0.8)) > 1e-9 {
		t.Fatalf("w[0] = %v, want -0.8", w[0])
	}
}

func TestPSPullCopies(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	ps := NewServer(v, 2, time.Millisecond)
	v.Run(func() {
		w := ps.Pull()
		w[0] = 42
		if ps.Snapshot()[0] != 0 {
			t.Error("Pull exposed internal weights")
		}
		if pulls, _ := ps.Stats(); pulls != 1 {
			t.Errorf("pulls = %d", pulls)
		}
	})
}

func TestCodedMatVecCorrect(t *testing.T) {
	v, p := env(t)
	a := RandomMatrix(40, 20, 5)
	x := RandomVector(20, 6)
	want := MatVecSerial(a, x)
	for _, repl := range []int{1, 2} {
		var got []float64
		v.Run(func() {
			rep, err := MatVec(p, a, x, CodedConfig{Stripes: 4, Replication: repl, Seed: 7})
			if err != nil {
				t.Error(err)
				return
			}
			got = rep.Y
		})
		if d := MaxAbsDiffVec(want, got); d > 1e-12 {
			t.Fatalf("replication %d: result differs by %v", repl, d)
		}
	}
}

func TestCodedBeatsUncodedUnderStragglers(t *testing.T) {
	v, p := env(t)
	a := RandomMatrix(64, 32, 8)
	x := RandomVector(32, 9)
	walls := map[int]time.Duration{}
	for _, repl := range []int{1, 2} {
		v.Run(func() {
			rep, err := MatVec(p, a, x, CodedConfig{
				Stripes: 8, Replication: repl,
				StragglerProb: 0.3, StragglerDelay: 5 * time.Second, Seed: 42,
			})
			if err != nil {
				t.Error(err)
				return
			}
			walls[repl] = rep.Wall
			if repl == 1 && rep.Stragglers == 0 {
				t.Error("straggler injection produced no stragglers")
			}
		})
	}
	// Uncoded must wait for stragglers (≥5s); 2-replication dodges them
	// unless both replicas of a stripe straggle (didn't happen at seed 42).
	if walls[1] < 5*time.Second {
		t.Fatalf("uncoded wall %v — should have hit a straggler", walls[1])
	}
	if walls[2] >= walls[1]/2 {
		t.Fatalf("coded %v not ≪ uncoded %v", walls[2], walls[1])
	}
}

func TestGridSearchConcurrentFasterSameBest(t *testing.T) {
	v, p := env(t)
	train, val := SyntheticLogistic(500, 4, 10).Split(0.6)
	cfg := HyperConfig{LRs: []float64{0.01, 0.1, 0.5, 1.0}, Rounds: []int{5, 20}, WorkPerTrial: 2 * time.Second}

	var serial, conc HyperReport
	v.Run(func() {
		var err error
		cfg.Concurrent = false
		serial, err = GridSearch(p, train, val, cfg)
		if err != nil {
			t.Error(err)
			return
		}
		cfg.Concurrent = true
		conc, err = GridSearch(p, train, val, cfg)
		if err != nil {
			t.Error(err)
		}
	})
	if conc.Best != serial.Best {
		t.Fatalf("best differs: %+v vs %+v", conc.Best, serial.Best)
	}
	// 8 trials × 2s serial ≈ 16s; concurrent ≈ 2s.
	if conc.Wall >= serial.Wall/4 {
		t.Fatalf("concurrent %v not ≪ serial %v", conc.Wall, serial.Wall)
	}
	if len(conc.Trials) != 8 {
		t.Fatalf("trials = %d", len(conc.Trials))
	}
}

func TestInferenceCacheCutsLatency(t *testing.T) {
	v, p := env(t)
	store := blob.New(v, nil, blob.S3Latency)
	var coldLat, warmLat time.Duration
	v.Run(func() {
		if err := store.CreateBucket("models", "ml"); err != nil {
			t.Error(err)
			return
		}
		ms := NewModelStore(store, "models")
		ds := SyntheticLogistic(200, 64, 12)
		w := TrainSerial(ds, 0.5, 10)
		// Pad the model to make the blob read expensive.
		big := append(append([]float64{}, w...), make([]float64, 100000)...)
		if err := ms.Publish("clf", big[:len(w)]); err != nil {
			t.Error(err)
			return
		}
		if err := ms.Publish("clf-big", big); err != nil {
			t.Error(err)
			return
		}

		fn, err := Deploy(p, ms, "cached", ServeConfig{Model: "clf-big", UseCache: true})
		if err != nil {
			t.Error(err)
			return
		}
		req, _ := json.Marshal(InferRequest{Features: make([]float64, len(big))})
		res1, err := p.Invoke(fn, req)
		if err != nil {
			t.Error(err)
			return
		}
		coldLat = res1.Latency
		res2, err := p.Invoke(fn, req)
		if err != nil {
			t.Error(err)
			return
		}
		warmLat = res2.Latency
		hits, miss := ms.CacheStats()
		if hits != 1 || miss != 1 {
			t.Errorf("cache stats hits=%d miss=%d", hits, miss)
		}
	})
	// The warm path must dodge the blob read entirely.
	if warmLat*2 >= coldLat {
		t.Fatalf("cache did not help: cold %v, warm %v", coldLat, warmLat)
	}
}

func TestInferencePrediction(t *testing.T) {
	v, p := env(t)
	store := blob.New(v, nil, blob.LatencyModel{})
	v.Run(func() {
		if err := store.CreateBucket("models", "ml"); err != nil {
			t.Error(err)
			return
		}
		ms := NewModelStore(store, "models")
		if err := ms.Publish("m", []float64{10, 0}); err != nil {
			t.Error(err)
			return
		}
		fn, err := Deploy(p, ms, "m", ServeConfig{Model: "m"})
		if err != nil {
			t.Error(err)
			return
		}
		req, _ := json.Marshal(InferRequest{Features: []float64{1, 0}})
		res, err := p.Invoke(fn, req)
		if err != nil {
			t.Error(err)
			return
		}
		var out InferResponse
		if err := json.Unmarshal(res.Output, &out); err != nil {
			t.Error(err)
			return
		}
		if out.Label != 1 || out.Probability < 0.99 {
			t.Errorf("prediction = %+v", out)
		}
		// Dimension mismatch surfaces as an error.
		bad, _ := json.Marshal(InferRequest{Features: []float64{1}})
		if _, err := p.Invoke(fn, bad); err == nil {
			t.Error("dimension mismatch not rejected")
		}
	})
}
