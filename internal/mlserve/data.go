// Package mlserve implements the machine-learning workloads of §5.2:
// data-parallel model training with flat and hierarchical parameter servers
// ([94]), hyperparameter search by concurrent function invocation ([186],
// Seneca), straggler-resilient coded computation ([104],[132]), and model
// inference serving with a tiered model store that mitigates cold-start
// loading ([88], TrIMS; [112]).
package mlserve

import (
	"math"
	"math/rand"
)

// Dataset is a binary-classification dataset for logistic regression.
type Dataset struct {
	X [][]float64 // n × d features
	Y []float64   // labels in {0,1}
	// TrueW is the generating weight vector (for diagnostics).
	TrueW []float64
}

// SyntheticLogistic generates n examples of dimension d from a random true
// weight vector, deterministic under seed. Labels are sampled from the true
// logistic probability, so the Bayes-optimal accuracy is well below 1 but a
// good fit beats chance comfortably.
func SyntheticLogistic(n, d int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.NormFloat64() * 2
	}
	ds := Dataset{X: make([][]float64, n), Y: make([]float64, n), TrueW: w}
	for i := 0; i < n; i++ {
		x := make([]float64, d)
		dot := 0.0
		for j := 0; j < d; j++ {
			x[j] = rng.NormFloat64()
			dot += x[j] * w[j]
		}
		ds.X[i] = x
		if rng.Float64() < sigmoid(dot) {
			ds.Y[i] = 1
		}
	}
	return ds
}

// Split divides the dataset into a training prefix holding frac of the
// examples and a held-out remainder (both from the same generating
// distribution — the right way to build a validation set).
func (d Dataset) Split(frac float64) (train, held Dataset) {
	n := int(float64(len(d.X)) * frac)
	if n < 1 {
		n = 1
	}
	if n >= len(d.X) {
		n = len(d.X) - 1
	}
	train = Dataset{X: d.X[:n], Y: d.Y[:n], TrueW: d.TrueW}
	held = Dataset{X: d.X[n:], Y: d.Y[n:], TrueW: d.TrueW}
	return train, held
}

// Shard returns the i-th of k contiguous shards.
func (d Dataset) Shard(i, k int) Dataset {
	n := len(d.X)
	lo, hi := i*n/k, (i+1)*n/k
	return Dataset{X: d.X[lo:hi], Y: d.Y[lo:hi], TrueW: d.TrueW}
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// Gradient returns the summed logistic-loss gradient of weights over the
// dataset (not averaged; callers scale by 1/n).
func Gradient(d Dataset, w []float64) []float64 {
	g := make([]float64, len(w))
	for i, x := range d.X {
		p := sigmoid(dot(x, w))
		err := p - d.Y[i]
		for j := range g {
			g[j] += err * x[j]
		}
	}
	return g
}

// LogLoss returns the mean logistic loss of weights over the dataset.
func LogLoss(d Dataset, w []float64) float64 {
	var sum float64
	for i, x := range d.X {
		p := sigmoid(dot(x, w))
		// Clamp for numerical safety.
		p = math.Min(math.Max(p, 1e-12), 1-1e-12)
		if d.Y[i] > 0.5 {
			sum += -math.Log(p)
		} else {
			sum += -math.Log(1 - p)
		}
	}
	return sum / float64(len(d.X))
}

// Accuracy returns the 0/1 accuracy of weights over the dataset.
func Accuracy(d Dataset, w []float64) float64 {
	correct := 0
	for i, x := range d.X {
		pred := 0.0
		if sigmoid(dot(x, w)) >= 0.5 {
			pred = 1
		}
		if pred == d.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(d.X))
}

// TrainSerial runs full-batch gradient descent for the given rounds —
// the single-node baseline the distributed trainer must match.
func TrainSerial(d Dataset, lr float64, rounds int) []float64 {
	w := make([]float64, len(d.X[0]))
	n := float64(d.Len())
	for r := 0; r < rounds; r++ {
		g := Gradient(d, w)
		for j := range w {
			w[j] -= lr * g[j] / n
		}
	}
	return w
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
