// Package sketch implements the family of streaming data sketches that §5.1
// of the paper identifies as natural serverless analytics workloads —
// frequency (Count-Min, the paper's Figure 3 example), membership (Bloom),
// cardinality (HyperLogLog), heavy hitters (SpaceSaving), sampling
// (reservoir), quantiles (Greenwald-Khanna) and second moments (AMS F2).
//
// Every sketch that is mergeable exposes a Merge method, since composability
// is exactly what distributing a sketch across serverless function instances
// requires (§4.3.1 notes composable/concurrent sketches need ephemeral state
// exchange between instances).
package sketch

import "hash/fnv"

// hash2 returns two independent 64-bit hashes of key; the i-th derived hash
// is h1 + i·h2 (Kirsch-Mitzenmacher double hashing). FNV output is passed
// through a splitmix64 finalizer: raw FNV has poor high-bit avalanche on
// short keys, which HyperLogLog's bucket-index-from-high-bits scheme needs.
func hash2(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := mix(h.Sum64())
	h.Write([]byte{0x9e, 0x37, 0x79, 0xb9})
	h2 := mix(h.Sum64()) | 1 // odd, so all derived hashes differ
	return h1, h2
}

// mix is the splitmix64 finalizer.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashAt derives the i-th hash value for key.
func hashAt(key string, i int) uint64 {
	h1, h2 := hash2(key)
	return h1 + uint64(i)*h2
}
