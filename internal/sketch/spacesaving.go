package sketch

import "sort"

// SpaceSaving finds frequent elements ("heavy hitters") with k counters
// (Metwally et al.). Any element with true frequency > N/k is guaranteed to
// be among the counters, and each reported count overestimates the truth by
// at most its stored error.
type SpaceSaving struct {
	k      int
	counts map[string]uint64
	errs   map[string]uint64
	total  uint64
}

// NewSpaceSaving creates a summary with k counters.
func NewSpaceSaving(k int) *SpaceSaving {
	if k < 1 {
		k = 1
	}
	return &SpaceSaving{k: k, counts: map[string]uint64{}, errs: map[string]uint64{}}
}

// Add observes key occurring count times.
func (s *SpaceSaving) Add(key string, count uint64) {
	s.total += count
	if _, ok := s.counts[key]; ok {
		s.counts[key] += count
		return
	}
	if len(s.counts) < s.k {
		s.counts[key] = count
		s.errs[key] = 0
		return
	}
	// Evict the minimum counter; the newcomer inherits its count as error.
	minKey, minVal := "", uint64(0)
	first := true
	for k2, v := range s.counts {
		if first || v < minVal || (v == minVal && k2 < minKey) {
			minKey, minVal, first = k2, v, false
		}
	}
	delete(s.counts, minKey)
	delete(s.errs, minKey)
	s.counts[key] = minVal + count
	s.errs[key] = minVal
}

// Entry is one reported heavy hitter.
type Entry struct {
	Key   string
	Count uint64 // estimated count (may overcount by Err)
	Err   uint64 // maximum overcount
}

// Top returns up to n entries by estimated count, descending (ties by key).
func (s *SpaceSaving) Top(n int) []Entry {
	out := make([]Entry, 0, len(s.counts))
	for k, v := range s.counts {
		out = append(out, Entry{Key: k, Count: v, Err: s.errs[k]})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}

// N returns the total count observed.
func (s *SpaceSaving) N() uint64 { return s.total }

// GuaranteedHeavy reports whether an entry's true count certainly exceeds
// threshold (count - err > threshold).
func (e Entry) GuaranteedHeavy(threshold uint64) bool {
	return e.Count-e.Err > threshold
}
