package sketch

import (
	"fmt"
	"math"
	"math/bits"
)

// HLL is a HyperLogLog cardinality estimator with 2^precision registers and
// standard error ≈ 1.04/√m.
type HLL struct {
	precision uint8
	registers []uint8
}

// NewHLL creates an estimator. precision must be in [4, 16]; out-of-range
// values are clamped.
func NewHLL(precision uint8) *HLL {
	if precision < 4 {
		precision = 4
	}
	if precision > 16 {
		precision = 16
	}
	return &HLL{precision: precision, registers: make([]uint8, 1<<precision)}
}

// Add observes key.
func (h *HLL) Add(key string) {
	x := hashAt(key, 0)
	idx := x >> (64 - h.precision)
	rest := x<<h.precision | (1 << (h.precision - 1)) // avoid zero tail
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the approximate number of distinct keys added.
func (h *HLL) Estimate() float64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / math.Pow(2, float64(r))
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	e := alpha * m * m / sum
	// Small-range correction (linear counting).
	if e <= 2.5*m && zeros > 0 {
		return m * math.Log(m/float64(zeros))
	}
	return e
}

// StdError returns the estimator's relative standard error.
func (h *HLL) StdError() float64 {
	return 1.04 / math.Sqrt(float64(len(h.registers)))
}

// Merge takes the register-wise max with another sketch (same precision
// required); merging equals sketching the union of the streams.
func (h *HLL) Merge(o *HLL) error {
	if h.precision != o.precision {
		return fmt.Errorf("%w: p=%d vs p=%d", ErrDimensionMismatch, h.precision, o.precision)
	}
	for i, r := range o.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}
