package sketch

import (
	"fmt"
	"sort"
)

// F2 estimates the second frequency moment Σf(k)² of a stream (Alon, Matias
// & Szegedy) with median-of-means over rows of ±1 projections. The second
// moment measures stream skew: the repeat rate / self-join size.
type F2 struct {
	rows, cols int
	cells      [][]int64
}

// NewF2 creates an estimator with the given rows (medians) and cols (means).
func NewF2(rows, cols int) *F2 {
	if rows < 1 {
		rows = 1
	}
	if cols < 1 {
		cols = 1
	}
	cells := make([][]int64, rows)
	for i := range cells {
		cells[i] = make([]int64, cols)
	}
	return &F2{rows: rows, cols: cols, cells: cells}
}

// Add observes key occurring count times.
func (f *F2) Add(key string, count int64) {
	for r := 0; r < f.rows; r++ {
		h := hashAt(key, r)
		c := int(h>>1) % f.cols
		sign := int64(1)
		if h&1 == 0 {
			sign = -1
		}
		f.cells[r][c] += sign * count
	}
}

// Estimate returns the estimated second moment.
func (f *F2) Estimate() float64 {
	rowEst := make([]float64, f.rows)
	for r := 0; r < f.rows; r++ {
		var sum float64
		for c := 0; c < f.cols; c++ {
			v := float64(f.cells[r][c])
			sum += v * v
		}
		rowEst[r] = sum
	}
	sort.Float64s(rowEst)
	mid := len(rowEst) / 2
	if len(rowEst)%2 == 1 {
		return rowEst[mid]
	}
	return (rowEst[mid-1] + rowEst[mid]) / 2
}

// Merge adds another estimator's projections (same dimensions required).
func (f *F2) Merge(o *F2) error {
	if f.rows != o.rows || f.cols != o.cols {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrDimensionMismatch, f.rows, f.cols, o.rows, o.cols)
	}
	for r := range f.cells {
		for c := range f.cells[r] {
			f.cells[r][c] += o.cells[r][c]
		}
	}
	return nil
}
