package sketch

import (
	"math"
	"sort"
)

// GK is a Greenwald-Khanna ε-approximate quantile summary: Quantile(φ)
// returns a value whose rank is within εN of ⌈φN⌉ using O((1/ε)·log(εN))
// space.
type GK struct {
	eps    float64
	n      int64
	tuples []gkTuple // sorted by value
}

type gkTuple struct {
	v     float64
	g     int64 // rmin(i) - rmin(i-1)
	delta int64 // rmax(i) - rmin(i)
}

// NewGK creates a summary with error bound eps (clamped to (0, 0.5]).
func NewGK(eps float64) *GK {
	if eps <= 0 || eps > 0.5 {
		eps = 0.01
	}
	return &GK{eps: eps}
}

// Add observes one value.
func (q *GK) Add(v float64) {
	q.n++
	pos := sort.Search(len(q.tuples), func(i int) bool { return q.tuples[i].v >= v })
	var delta int64
	if pos > 0 && pos < len(q.tuples) {
		delta = int64(math.Floor(2*q.eps*float64(q.n))) - 1
		if delta < 0 {
			delta = 0
		}
	}
	t := gkTuple{v: v, g: 1, delta: delta}
	q.tuples = append(q.tuples, gkTuple{})
	copy(q.tuples[pos+1:], q.tuples[pos:])
	q.tuples[pos] = t
	if q.n%int64(math.Ceil(1/(2*q.eps))) == 0 {
		q.compress()
	}
}

// compress merges adjacent tuples whose combined span stays within 2εn.
func (q *GK) compress() {
	if len(q.tuples) < 3 {
		return
	}
	bound := int64(math.Floor(2 * q.eps * float64(q.n)))
	out := q.tuples[:1] // never merge away the minimum
	for i := 1; i < len(q.tuples); i++ {
		t := q.tuples[i]
		last := &out[len(out)-1]
		// Merge last into t when safe (and last isn't the minimum).
		if len(out) > 1 && i < len(q.tuples) && last.g+t.g+t.delta <= bound {
			t.g += last.g
			out[len(out)-1] = t
		} else {
			out = append(out, t)
		}
	}
	q.tuples = out
}

// Quantile returns a value whose rank is within εN of ⌈φN⌉. φ is clamped to
// [0,1]. Returns NaN for an empty summary.
func (q *GK) Quantile(phi float64) float64 {
	if q.n == 0 {
		return math.NaN()
	}
	if phi < 0 {
		phi = 0
	}
	if phi > 1 {
		phi = 1
	}
	target := int64(math.Ceil(phi * float64(q.n)))
	if target < 1 {
		target = 1
	}
	bound := int64(math.Ceil(q.eps * float64(q.n)))
	var rmin int64
	for i, t := range q.tuples {
		rmin += t.g
		rmax := rmin + t.delta
		if i == len(q.tuples)-1 || (target-rmin <= bound && rmax-target <= bound) {
			return t.v
		}
		// Peek: if the next tuple would overshoot, answer here.
		next := q.tuples[i+1]
		if rmin+next.g+next.delta > target+bound {
			return t.v
		}
	}
	return q.tuples[len(q.tuples)-1].v
}

// N returns how many values have been observed.
func (q *GK) N() int64 { return q.n }

// Size returns the number of stored tuples (space diagnostic).
func (q *GK) Size() int { return len(q.tuples) }
