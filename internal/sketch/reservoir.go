package sketch

import "math/rand"

// Reservoir maintains a uniform random sample of k items from a stream
// (Vitter's algorithm R), deterministic under a seed.
type Reservoir struct {
	k     int
	n     int64
	items []string
	rng   *rand.Rand
}

// NewReservoir creates a sampler of size k with the given seed.
func NewReservoir(k int, seed int64) *Reservoir {
	if k < 1 {
		k = 1
	}
	return &Reservoir{k: k, rng: rand.New(rand.NewSource(seed))}
}

// Add observes one item.
func (r *Reservoir) Add(item string) {
	r.n++
	if len(r.items) < r.k {
		r.items = append(r.items, item)
		return
	}
	if j := r.rng.Int63n(r.n); j < int64(r.k) {
		r.items[j] = item
	}
}

// Sample returns the current sample (at most k items).
func (r *Reservoir) Sample() []string {
	return append([]string{}, r.items...)
}

// N returns how many items have been observed.
func (r *Reservoir) N() int64 { return r.n }
