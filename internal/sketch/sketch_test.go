package sketch

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// --- Count-Min ---

func TestCountMinNeverUndercounts(t *testing.T) {
	cm := NewCountMin(0.01, 0.01)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(500))
		cm.Add(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("undercount for %s: %d < %d", k, got, want)
		}
	}
}

func TestCountMinErrorBound(t *testing.T) {
	cm := NewCountMin(0.005, 0.001)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(2000))
		cm.Add(k, 1)
		truth[k]++
	}
	bound := cm.ErrorBound()
	violations := 0
	for k, want := range truth {
		if cm.Estimate(k)-want > bound {
			violations++
		}
	}
	// δ = 0.001: essentially no violations expected over 2000 keys.
	if violations > 2 {
		t.Fatalf("%d estimates exceeded εN bound %d", violations, bound)
	}
}

func TestCountMinMergeEqualsUnion(t *testing.T) {
	a, b := NewCountMinWH(256, 4), NewCountMinWH(256, 4)
	u := NewCountMinWH(256, 4)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i%50)
		if i%2 == 0 {
			a.Add(k, 1)
		} else {
			b.Add(k, 1)
		}
		u.Add(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N() != u.N() {
		t.Fatalf("N = %d, want %d", a.N(), u.N())
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("k%d", i)
		if a.Estimate(k) != u.Estimate(k) {
			t.Fatalf("merged estimate differs for %s", k)
		}
	}
	if err := a.Merge(NewCountMinWH(8, 2)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestCountMinFigure3Dimensions(t *testing.T) {
	// The paper's Figure 3 constructs CountMinSketch(20, 20, 128).
	cm := NewCountMinWH(20, 20)
	cm.Add("event", 1)
	if cm.Estimate("event") != 1 {
		t.Fatal("single add estimate != 1")
	}
	if cm.Estimate("other") != 0 {
		t.Fatal("phantom count for absent key at low load")
	}
}

// --- Bloom ---

func TestBloomNoFalseNegatives(t *testing.T) {
	f := func(seed int64) bool {
		b := NewBloom(500, 0.01)
		rng := rand.New(rand.NewSource(seed))
		keys := make([]string, 200)
		for i := range keys {
			keys[i] = fmt.Sprintf("k%d", rng.Int63())
			b.Add(keys[i])
		}
		for _, k := range keys {
			if !b.Contains(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.03 {
		t.Fatalf("false positive rate %.4f, want ≤0.03", rate)
	}
	if r := b.FillRatio(); r <= 0 || r >= 1 {
		t.Fatalf("fill ratio %v", r)
	}
}

func TestBloomMerge(t *testing.T) {
	a, b := NewBloom(100, 0.01), NewBloom(100, 0.01)
	a.Add("left")
	b.Add("right")
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !a.Contains("left") || !a.Contains("right") {
		t.Fatal("merge lost membership")
	}
	if err := a.Merge(NewBloom(5000, 0.001)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

// --- HLL ---

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 10000, 200000} {
		h := NewHLL(12)
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("item-%d", i))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		// 1.04/√4096 ≈ 1.6%; allow 4 sigma.
		if relErr > 4*h.StdError() {
			t.Fatalf("n=%d: estimate %.0f, rel err %.4f > %.4f", n, est, relErr, 4*h.StdError())
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h := NewHLL(12)
	for i := 0; i < 10000; i++ {
		h.Add(fmt.Sprintf("item-%d", i%100))
	}
	if est := h.Estimate(); est > 150 || est < 60 {
		t.Fatalf("estimate %.0f for 100 distinct", est)
	}
}

func TestHLLMergeEqualsUnion(t *testing.T) {
	a, b, u := NewHLL(12), NewHLL(12), NewHLL(12)
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("item-%d", i)
		if i%2 == 0 {
			a.Add(k)
		} else {
			b.Add(k)
		}
		u.Add(k)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merged %.0f != union %.0f", a.Estimate(), u.Estimate())
	}
	if err := a.Merge(NewHLL(8)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestHLLPrecisionClamped(t *testing.T) {
	if got := len(NewHLL(1).registers); got != 16 {
		t.Fatalf("low clamp registers = %d", got)
	}
	if got := len(NewHLL(30).registers); got != 1<<16 {
		t.Fatalf("high clamp registers = %d", got)
	}
}

// --- SpaceSaving ---

func TestSpaceSavingFindsHeavyHitters(t *testing.T) {
	ss := NewSpaceSaving(10)
	// Two heavy keys among uniform noise.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 10000; i++ {
		switch {
		case i%3 == 0:
			ss.Add("heavy-A", 1)
		case i%5 == 0:
			ss.Add("heavy-B", 1)
		default:
			ss.Add(fmt.Sprintf("noise-%d", rng.Intn(5000)), 1)
		}
	}
	top := ss.Top(2)
	if top[0].Key != "heavy-A" || top[1].Key != "heavy-B" {
		t.Fatalf("top = %+v", top)
	}
	// True count of heavy-A ≈ 3334; must be guaranteed above N/k.
	if !top[0].GuaranteedHeavy(ss.N() / 10) {
		t.Fatalf("heavy-A not guaranteed heavy: %+v, N=%d", top[0], ss.N())
	}
}

func TestSpaceSavingErrorBound(t *testing.T) {
	ss := NewSpaceSaving(20)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%d", int(math.Abs(rng.NormFloat64())*30))
		ss.Add(k, 1)
		truth[k]++
	}
	for _, e := range ss.Top(0) {
		if e.Err > ss.N()/20 {
			t.Fatalf("entry error %d exceeds N/k = %d", e.Err, ss.N()/20)
		}
		if e.Count < truth[e.Key] {
			t.Fatalf("undercount for %s: %d < %d", e.Key, e.Count, truth[e.Key])
		}
	}
}

// --- Reservoir ---

func TestReservoirSizeAndDeterminism(t *testing.T) {
	a, b := NewReservoir(10, 7), NewReservoir(10, 7)
	for i := 0; i < 1000; i++ {
		item := fmt.Sprintf("i%d", i)
		a.Add(item)
		b.Add(item)
	}
	sa, sb := a.Sample(), b.Sample()
	if len(sa) != 10 || a.N() != 1000 {
		t.Fatalf("sample size %d, n %d", len(sa), a.N())
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("reservoir nondeterministic under same seed")
		}
	}
}

func TestReservoirUniformity(t *testing.T) {
	// Each of 100 items should appear in a size-10 sample ~10% of runs.
	hits := make([]int, 100)
	for seed := int64(0); seed < 400; seed++ {
		r := NewReservoir(10, seed)
		for i := 0; i < 100; i++ {
			r.Add(fmt.Sprintf("%d", i))
		}
		for _, s := range r.Sample() {
			var idx int
			fmt.Sscanf(s, "%d", &idx)
			hits[idx]++
		}
	}
	for i, h := range hits {
		// Expect 40 ± generous tolerance (binomial σ ≈ 6).
		if h < 10 || h > 80 {
			t.Fatalf("item %d sampled %d/400 — not uniform", i, h)
		}
	}
}

func TestReservoirFewerThanK(t *testing.T) {
	r := NewReservoir(10, 1)
	r.Add("only")
	if s := r.Sample(); len(s) != 1 || s[0] != "only" {
		t.Fatalf("sample = %v", s)
	}
}

// --- GK quantiles ---

func TestGKRankError(t *testing.T) {
	const n = 20000
	eps := 0.01
	q := NewGK(eps)
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = rng.NormFloat64() * 100
		q.Add(vals[i])
	}
	sorted := append([]float64{}, vals...)
	sort.Float64s(sorted)
	for _, phi := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := q.Quantile(phi)
		// Find got's rank in the sorted data.
		rank := 0
		for rank < n && sorted[rank] < got {
			rank++
		}
		target := phi * n
		if math.Abs(float64(rank)-target) > 2*eps*n+1 {
			t.Fatalf("φ=%.2f: rank %d, target %.0f, allowed ±%.0f", phi, rank, target, 2*eps*n+1)
		}
	}
	// Space must be sublinear.
	if q.Size() > n/10 {
		t.Fatalf("summary holds %d tuples for %d items", q.Size(), n)
	}
}

func TestGKExtremesAndEmpty(t *testing.T) {
	q := NewGK(0.05)
	if !math.IsNaN(q.Quantile(0.5)) {
		t.Fatal("empty summary should return NaN")
	}
	for i := 1; i <= 100; i++ {
		q.Add(float64(i))
	}
	if v := q.Quantile(0); v > 10 {
		t.Fatalf("φ=0 → %v", v)
	}
	if v := q.Quantile(1); v < 90 {
		t.Fatalf("φ=1 → %v", v)
	}
	if q.N() != 100 {
		t.Fatalf("N = %d", q.N())
	}
}

// --- F2 ---

func TestF2Accuracy(t *testing.T) {
	f := NewF2(11, 512)
	truth := map[string]int64{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(300))
		f.Add(k, 1)
		truth[k]++
	}
	var want float64
	for _, c := range truth {
		want += float64(c) * float64(c)
	}
	got := f.Estimate()
	if rel := math.Abs(got-want) / want; rel > 0.15 {
		t.Fatalf("F2 estimate %.0f, truth %.0f, rel err %.3f", got, want, rel)
	}
}

func TestF2Merge(t *testing.T) {
	a, b, u := NewF2(5, 128), NewF2(5, 128), NewF2(5, 128)
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("k%d", i%30)
		if i%2 == 0 {
			a.Add(k, 1)
		} else {
			b.Add(k, 1)
		}
		u.Add(k, 1)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Estimate() != u.Estimate() {
		t.Fatalf("merged %v != union %v", a.Estimate(), u.Estimate())
	}
	if err := a.Merge(NewF2(3, 64)); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestCountMinConservativeNeverUndercounts(t *testing.T) {
	cm := NewCountMinWH(64, 4)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 20000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(300))
		cm.AddConservative(k, 1)
		truth[k]++
	}
	for k, want := range truth {
		if got := cm.Estimate(k); got < want {
			t.Fatalf("conservative undercount for %s: %d < %d", k, got, want)
		}
	}
}

func TestConservativeTighterThanStandard(t *testing.T) {
	std, cons := NewCountMinWH(64, 4), NewCountMinWH(64, 4)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 30000; i++ {
		k := fmt.Sprintf("k%d", rng.Intn(1000))
		std.Add(k, 1)
		cons.AddConservative(k, 1)
		truth[k]++
	}
	var stdErr, consErr uint64
	for k, want := range truth {
		stdErr += std.Estimate(k) - want
		consErr += cons.Estimate(k) - want
	}
	if consErr >= stdErr {
		t.Fatalf("conservative total error %d not below standard %d", consErr, stdErr)
	}
}
