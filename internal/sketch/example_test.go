package sketch_test

import (
	"fmt"

	"repro/internal/sketch"
)

// ExampleCountMin mirrors the paper's Figure 3: count events in a stream and
// react to updated estimates.
func ExampleCountMin() {
	cm := sketch.NewCountMinWH(20, 20) // the Figure-3 dimensions
	for i := 0; i < 100; i++ {
		cm.Add("popular", 1)
	}
	cm.Add("rare", 1)
	fmt.Println("popular ≈", cm.Estimate("popular"))
	fmt.Println("rare    ≈", cm.Estimate("rare"))
	// Output:
	// popular ≈ 100
	// rare    ≈ 1
}

// ExampleCountMin_Merge shows distributing a sketch across function
// instances and merging the shards — the composability §4.3.1 calls for.
func ExampleCountMin_Merge() {
	shard1 := sketch.NewCountMinWH(64, 4)
	shard2 := sketch.NewCountMinWH(64, 4)
	shard1.Add("k", 3)
	shard2.Add("k", 4)
	if err := shard1.Merge(shard2); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("merged estimate:", shard1.Estimate("k"))
	// Output:
	// merged estimate: 7
}

// ExampleHLL estimates stream cardinality.
func ExampleHLL() {
	h := sketch.NewHLL(12)
	for i := 0; i < 1000; i++ {
		h.Add(fmt.Sprintf("user-%d", i%100)) // 100 distinct users
	}
	est := h.Estimate()
	fmt.Println("within 5% of 100:", est > 95 && est < 105)
	// Output:
	// within 5% of 100: true
}
