package sketch

import (
	"errors"
	"fmt"
	"math"
)

// ErrDimensionMismatch is returned when merging incompatible sketches.
var ErrDimensionMismatch = errors.New("sketch: dimension mismatch")

// CountMin estimates event frequencies over a stream (Cormode &
// Muthukrishnan [86]; the sketch of the paper's Figure 3). Estimates never
// undercount; with width w = ⌈e/ε⌉ and depth d = ⌈ln(1/δ)⌉ the overcount is
// at most εN with probability 1-δ.
type CountMin struct {
	width, depth int
	rows         [][]uint64
	n            uint64 // total count added
}

// NewCountMin creates a sketch with the given error bound ε and failure
// probability δ.
func NewCountMin(epsilon, delta float64) *CountMin {
	w := int(math.Ceil(math.E / epsilon))
	d := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMinWH(w, d)
}

// NewCountMinWH creates a sketch with explicit width and depth (as the
// paper's Figure 3 does with CountMinSketch(20, 20, 128)).
func NewCountMinWH(width, depth int) *CountMin {
	if width < 1 {
		width = 1
	}
	if depth < 1 {
		depth = 1
	}
	rows := make([][]uint64, depth)
	for i := range rows {
		rows[i] = make([]uint64, width)
	}
	return &CountMin{width: width, depth: depth, rows: rows}
}

// Add counts key occurring count times.
func (c *CountMin) Add(key string, count uint64) {
	for i := 0; i < c.depth; i++ {
		c.rows[i][hashAt(key, i)%uint64(c.width)] += count
	}
	c.n += count
}

// AddConservative counts key with the conservative-update heuristic
// (Estan & Varghese): each counter is raised only as far as needed so the
// minimum reaches estimate+count. Estimates stay one-sided (never
// undercount) but overcounts shrink substantially on skewed streams — the
// ablation benchmark BenchmarkAblationCountMinUpdate quantifies it.
// Conservative sketches must not be merged (Merge assumes plain addition).
func (c *CountMin) AddConservative(key string, count uint64) {
	target := c.Estimate(key) + count
	for i := 0; i < c.depth; i++ {
		cell := &c.rows[i][hashAt(key, i)%uint64(c.width)]
		if *cell < target {
			*cell = target
		}
	}
	c.n += count
}

// Estimate returns the estimated frequency of key (never an undercount).
func (c *CountMin) Estimate(key string) uint64 {
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		if v := c.rows[i][hashAt(key, i)%uint64(c.width)]; v < est {
			est = v
		}
	}
	return est
}

// N returns the total count added.
func (c *CountMin) N() uint64 { return c.n }

// ErrorBound returns εN for this sketch's dimensions: the w.h.p. maximum
// overcount.
func (c *CountMin) ErrorBound() uint64 {
	return uint64(math.Ceil(math.E / float64(c.width) * float64(c.n)))
}

// Merge adds another sketch's counts into this one (same dimensions
// required) — the composability distributed sketching needs.
func (c *CountMin) Merge(o *CountMin) error {
	if c.width != o.width || c.depth != o.depth {
		return fmt.Errorf("%w: %dx%d vs %dx%d", ErrDimensionMismatch, c.width, c.depth, o.width, o.depth)
	}
	for i := range c.rows {
		for j := range c.rows[i] {
			c.rows[i][j] += o.rows[i][j]
		}
	}
	c.n += o.n
	return nil
}
