package sketch

import "testing"

// FuzzCountMinNoUndercount: for arbitrary key bytes, estimates never drop
// below the true count of that exact key.
func FuzzCountMinNoUndercount(f *testing.F) {
	f.Add("key", uint8(3))
	f.Add("", uint8(1))
	f.Add("\x00\xff", uint8(7))
	f.Fuzz(func(t *testing.T, key string, times uint8) {
		cm := NewCountMinWH(64, 4)
		n := uint64(times)%16 + 1
		for i := uint64(0); i < n; i++ {
			cm.Add(key, 1)
		}
		if got := cm.Estimate(key); got < n {
			t.Fatalf("undercount: %d < %d for %q", got, n, key)
		}
	})
}

// FuzzBloomNoFalseNegative: anything added is always reported present.
func FuzzBloomNoFalseNegative(f *testing.F) {
	f.Add("hello")
	f.Add("")
	f.Add("\x00")
	f.Fuzz(func(t *testing.T, key string) {
		b := NewBloom(64, 0.05)
		b.Add(key)
		if !b.Contains(key) {
			t.Fatalf("false negative for %q", key)
		}
	})
}
