package sketch

import (
	"fmt"
	"math"
)

// Bloom is a Bloom filter: set membership with no false negatives and a
// tunable false-positive rate.
type Bloom struct {
	bits  []uint64
	m     uint64 // bit count
	k     int    // hash count
	count uint64 // elements added (approximate if duplicates)
}

// NewBloom sizes a filter for n expected elements at false-positive rate p.
func NewBloom(n int, p float64) *Bloom {
	if n < 1 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// Add inserts key.
func (b *Bloom) Add(key string) {
	for i := 0; i < b.k; i++ {
		bit := hashAt(key, i) % b.m
		b.bits[bit/64] |= 1 << (bit % 64)
	}
	b.count++
}

// Contains reports whether key may be in the set (false = definitely not).
func (b *Bloom) Contains(key string) bool {
	for i := 0; i < b.k; i++ {
		bit := hashAt(key, i) % b.m
		if b.bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}

// Merge ORs another filter into this one (same parameters required).
func (b *Bloom) Merge(o *Bloom) error {
	if b.m != o.m || b.k != o.k {
		return fmt.Errorf("%w: m=%d,k=%d vs m=%d,k=%d", ErrDimensionMismatch, b.m, b.k, o.m, o.k)
	}
	for i := range b.bits {
		b.bits[i] |= o.bits[i]
	}
	b.count += o.count
	return nil
}

// FillRatio returns the fraction of set bits (diagnostic for saturation).
func (b *Bloom) FillRatio() float64 {
	set := 0
	for _, w := range b.bits {
		for ; w != 0; w &= w - 1 {
			set++
		}
	}
	return float64(set) / float64(b.m)
}
