// Package errs holds the platform-wide sentinel errors shared by every
// plane. It is a leaf package (no imports) so that faas, jiffy, scheduler
// and core can all wrap the same identities: a caller matching with
// errors.Is(err, core.ErrThrottled) gets a hit whether the throttle came
// from a function's concurrency limit or a tenant's admission bucket, and
// capacity exhaustion reads the same whether the scheduler or the Jiffy
// block pool ran dry.
//
// Subsystems keep their historical exported sentinels but define them as
// wrappers around these, preserving both message prefixes and existing
// errors.Is behaviour; core/errs.go re-exports the shared identities as the
// public matching surface.
package errs

import "errors"

var (
	// ErrThrottled marks load shed by an admission control: a function's
	// concurrency cap or a tenant's fair-share token bucket.
	ErrThrottled = errors.New("throttled")

	// ErrColdStartTimeout marks a request that waited for cold-start
	// capacity (cluster placement or admission queue) past its budget.
	ErrColdStartTimeout = errors.New("cold-start timeout")

	// ErrBreakerOpen marks a request fast-failed by an open circuit breaker.
	ErrBreakerOpen = errors.New("circuit breaker open")

	// ErrLeaseExpired marks state rejected because its lease lapsed and the
	// platform reclaimed it.
	ErrLeaseExpired = errors.New("lease expired")

	// ErrNoCapacity marks a demand that no machine or memory pool can hold.
	ErrNoCapacity = errors.New("no capacity")
)
