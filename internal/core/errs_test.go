package core

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/scheduler"
)

// TestSentinelRoundTrip pins the error taxonomy: every subsystem failure
// wraps exactly one platform-wide sentinel, survives further wrapping, and
// does not bleed into the other sentinels.
func TestSentinelRoundTrip(t *testing.T) {
	sentinels := []error{ErrThrottled, ErrColdStartTimeout, ErrBreakerOpen, ErrLeaseExpired, ErrNoCapacity}
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"faas concurrency cap", faas.ErrThrottled, ErrThrottled},
		{"faas tenant admission", faas.ErrTenantThrottled, ErrThrottled},
		{"faas cold-start budget", faas.ErrColdStartTimeout, ErrColdStartTimeout},
		{"faas circuit breaker", faas.ErrCircuitOpen, ErrBreakerOpen},
		{"jiffy lease expiry", jiffy.ErrLeaseExpired, ErrLeaseExpired},
		{"jiffy pool exhausted", jiffy.ErrNoCapacity, ErrNoCapacity},
		{"scheduler unplaceable", scheduler.ErrUnplaceable, ErrNoCapacity},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			// The raw subsystem error matches its platform sentinel…
			if !errors.Is(c.err, c.want) {
				t.Fatalf("%v does not match %v", c.err, c.want)
			}
			// …still matches after a caller wraps it again…
			wrapped := fmt.Errorf("handling request 42: %w", c.err)
			if !errors.Is(wrapped, c.want) {
				t.Fatalf("wrapped %v lost its sentinel %v", wrapped, c.want)
			}
			// …and matches no other sentinel.
			for _, other := range sentinels {
				if other != c.want && errors.Is(c.err, other) {
					t.Fatalf("%v also matches unrelated sentinel %v", c.err, other)
				}
			}
		})
	}
}

// TestSentinelLivePaths produces two sentinels through real call paths —
// not just value identity — and switches on them the way callers should.
func TestSentinelLivePaths(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	acme := p.Tenant("acme")
	must(t, acme.Register("f", func(ctx *faas.Ctx, in []byte) ([]byte, error) { return in, nil },
		faas.Config{MaxRetries: -1}))
	// One-token bucket with an unqueueable wait: the second back-to-back
	// request is shed.
	p.FaaS.SetAdmission(faas.AdmissionConfig{RatePerSecond: 1, Burst: 1, MaxWait: time.Nanosecond})
	v.Run(func() {
		if _, err := acme.Invoke("f", nil); err != nil {
			t.Fatalf("first invoke: %v", err)
		}
		_, err := acme.Invoke("f", nil)
		switch {
		case errors.Is(err, ErrThrottled): // expected
		case err == nil:
			t.Fatal("second invoke admitted, want shed")
		default:
			t.Fatalf("err = %v, want ErrThrottled", err)
		}
	})

	// A lapsed jiffy lease surfaces ErrLeaseExpired (and stays compatible
	// with the legacy no-namespace match).
	v.Run(func() {
		ns, err := p.Jiffy.CreateNamespace("/tmp", jiffy.NamespaceOptions{Lease: 100 * time.Millisecond})
		must(t, err)
		v.Sleep(time.Second)
		err = ns.Put("k", []byte("v"))
		if !errors.Is(err, ErrLeaseExpired) {
			t.Fatalf("err = %v, want ErrLeaseExpired", err)
		}
		if !errors.Is(err, jiffy.ErrNoNamespace) {
			t.Fatalf("err = %v lost the legacy ErrNoNamespace match", err)
		}
	})
}
