package core

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
)

// StateDigest canonically serializes the platform's user-visible durable and
// ephemeral state — jiffy namespaces (KV + queue), kvdb tables (latest visible
// rows), blob buckets (latest object bytes), and pulsar subscriptions (the
// multiset of acked payloads per cursor) — and returns the text plus its
// FNV-1a 64 hash. Two platforms are observationally equivalent on the state
// axis exactly when their digests match.
//
// The read is pure: every snapshot below is lock-only, pays no modelled
// latency and never touches the clock, so the explorer (internal/conform) can
// digest mid-run or at quiescence without perturbing the execution it is
// observing. Keys, paths, tables and topics are emitted sorted, so the text
// is a canonical form, not merely a hashable one — a diff of two digests is a
// human-readable statement of how the states diverge.
func (p *Platform) StateDigest() (string, uint64) {
	var b strings.Builder

	if p.Jiffy != nil {
		for _, path := range p.Jiffy.Paths() {
			ns, err := p.Jiffy.Namespace(path)
			if err != nil {
				continue
			}
			kv := ns.SnapshotKV()
			keys := make([]string, 0, len(kv))
			for k := range kv {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "jiffy %s\n", path)
			for _, k := range keys {
				fmt.Fprintf(&b, "  kv %q=%q\n", k, kv[k])
			}
			for i, e := range ns.SnapshotQueue() {
				fmt.Fprintf(&b, "  q[%d]=%q\n", i, e)
			}
		}
	}

	if p.DB != nil {
		for _, tbl := range p.DB.Tables() {
			rows, err := p.DB.LatestRows(tbl)
			if err != nil {
				continue
			}
			pks := make([]string, 0, len(rows))
			for pk := range rows {
				pks = append(pks, pk)
			}
			sort.Strings(pks)
			fmt.Fprintf(&b, "kvdb %s\n", tbl)
			for _, pk := range pks {
				row := rows[pk]
				cols := make([]string, 0, len(row))
				for c := range row {
					cols = append(cols, c)
				}
				sort.Strings(cols)
				fmt.Fprintf(&b, "  row %q", pk)
				for _, c := range cols {
					fmt.Fprintf(&b, " %q=%q", c, row[c])
				}
				b.WriteString("\n")
			}
		}
	}

	if p.Blob != nil {
		for _, bkt := range p.Blob.Buckets() {
			objs, err := p.Blob.SnapshotObjects(bkt)
			if err != nil {
				continue
			}
			keys := make([]string, 0, len(objs))
			for k := range objs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "blob %s\n", bkt)
			for _, k := range keys {
				h := fnv.New64a()
				h.Write(objs[k])
				fmt.Fprintf(&b, "  obj %q len=%d fnv=%x\n", k, len(objs[k]), h.Sum64())
			}
		}
	}

	if p.Pulsar != nil {
		topics, err := p.Pulsar.Topics()
		if err == nil {
			for _, topic := range topics {
				subs, err := p.Pulsar.Subscriptions(topic)
				if err != nil {
					continue
				}
				for _, sub := range subs {
					acked, err := p.Pulsar.AckedMessages(topic, sub)
					if err != nil {
						continue
					}
					// The acked payloads as a multiset: duplicates of the same
					// payload must be visible (double-acking a republished
					// message is a divergence), but per-payload counts — not
					// seq identity — are the observable.
					counts := map[string]int{}
					for _, m := range acked {
						h := fnv.New64a()
						h.Write(m)
						counts[fmt.Sprintf("%x", h.Sum64())]++
					}
					hashes := make([]string, 0, len(counts))
					for h := range counts {
						hashes = append(hashes, h)
					}
					sort.Strings(hashes)
					fmt.Fprintf(&b, "pulsar %s/%s acked=%d\n", topic, sub, len(acked))
					for _, h := range hashes {
						fmt.Fprintf(&b, "  msg %s x%d\n", h, counts[h])
					}
				}
			}
		}
	}

	text := b.String()
	h := fnv.New64a()
	h.Write([]byte(text))
	return text, h.Sum64()
}
