// Package core assembles the full serverless stack the paper deconstructs
// into one handle: the FaaS platform (§2, §4.1), the BaaS substrates — blob
// storage, transactional database, queues/notifications (§2.2, §4.1) — the
// orchestration engine (§4.2), the Pulsar messaging cluster with Pulsar
// Functions (§4.3), and the Jiffy ephemeral-state store (§4.4), all sharing
// one clock and one billing meter.
//
// This is the public API examples and experiments build on; the individual
// subsystem packages stay usable on their own.
package core

import (
	"fmt"
	"time"

	"repro/internal/autoscale"
	"repro/internal/billing"
	"repro/internal/blob"
	"repro/internal/coord"
	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/kvdb"
	"repro/internal/ledger"
	"repro/internal/obs"
	"repro/internal/orchestrate"
	"repro/internal/pulsar"
	"repro/internal/queue"
	"repro/internal/simclock"
)

// Options configures a Platform. The zero value is a sensible deployment:
// real clock, 2 brokers, 3 bookies, 4 Jiffy memory nodes of 256 blocks.
type Options struct {
	// Clock drives every subsystem. Default: the real clock. Use
	// simclock.NewVirtual() for deterministic experiments.
	Clock simclock.Clock
	// Brokers is the Pulsar broker count. Default 2.
	Brokers int
	// Bookies is the ledger storage node count. Default 3.
	Bookies int
	// JiffyNodes and BlocksPerNode size the ephemeral memory pool.
	// Defaults 4 and 256.
	JiffyNodes    int
	BlocksPerNode int
	// JiffyBlockSize is bytes per block. Default 64 KiB.
	JiffyBlockSize int
	// PulsarBatchMax is the default producer batch size: how many
	// SendAsync messages buffer per partition before one group-commit
	// ledger append. Default 1 (batching off).
	PulsarBatchMax int
	// PulsarFlushInterval bounds buffered-message staleness for batching
	// producers. Default 1ms.
	PulsarFlushInterval time.Duration
	// BlobLatency models blob store access. Default blob.S3Latency.
	BlobLatency blob.LatencyModel
	// JiffyLatency models ephemeral access. Default jiffy.MemoryLatency.
	JiffyLatency jiffy.LatencyModel
	// Pricing converts metered usage to dollars. Default
	// billing.DefaultPricing().
	Pricing billing.Pricing
	// Obs is the observability registry threaded through every subsystem.
	// Nil creates a fresh registry on the platform clock; set DisableObs to
	// run fully uninstrumented instead.
	Obs *obs.Registry
	// DisableObs turns platform observability off: subsystems get nil
	// instruments and their hot paths pay only a predicted branch.
	DisableObs bool
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = simclock.Real{}
	}
	if o.Brokers <= 0 {
		o.Brokers = 2
	}
	if o.Bookies <= 0 {
		o.Bookies = 3
	}
	if o.JiffyNodes <= 0 {
		o.JiffyNodes = 4
	}
	if o.BlocksPerNode <= 0 {
		o.BlocksPerNode = 256
	}
	if o.JiffyBlockSize <= 0 {
		o.JiffyBlockSize = 64 << 10
	}
	if o.BlobLatency == (blob.LatencyModel{}) {
		o.BlobLatency = blob.S3Latency
	}
	if o.JiffyLatency == (jiffy.LatencyModel{}) {
		o.JiffyLatency = jiffy.MemoryLatency
	}
	if o.Pricing == nil {
		o.Pricing = billing.DefaultPricing()
	}
	return o
}

// Platform is one serverless deployment: every subsystem on a shared clock
// and meter.
type Platform struct {
	Clock   simclock.Clock
	Meter   *billing.Meter
	Pricing billing.Pricing
	// Obs is the platform's metrics registry and tracer (nil when built with
	// DisableObs).
	Obs *obs.Registry

	// FaaS is the function platform (§4.1).
	FaaS *faas.Platform
	// Blob is the S3-style object store (§2.2).
	Blob *blob.Store
	// Queue is the SQS/SNS-style messaging BaaS (§3.1).
	Queue *queue.Service
	// DB is the transactional serverless database (§4.1).
	DB *kvdb.DB
	// Coord is the ZooKeeper-style coordination service (§4.3, Fig. 1).
	Coord *coord.Store
	// Ledgers is the BookKeeper-style durable log layer (§4.3, Fig. 1).
	Ledgers *ledger.System
	// Pulsar is the messaging cluster with Pulsar Functions (§4.3).
	Pulsar *pulsar.Cluster
	// Jiffy is the ephemeral-state store (§4.4, Fig. 2).
	Jiffy *jiffy.Controller
	// Orchestrator composes functions into state machines (§4.2).
	Orchestrator *orchestrate.Engine
	// Autoscaler is the elastic control plane, set by EnableAutoscale
	// (nil until then).
	Autoscaler *autoscale.Controller
	// BrokerLoad is the Pulsar broker load manager, set by
	// EnableBrokerLoadManager (nil until then).
	BrokerLoad *pulsar.LoadManager
}

// New assembles a Platform.
func New(opts Options) *Platform {
	opts = opts.withDefaults()
	clock := opts.Clock
	meter := billing.NewMeter()

	reg := opts.Obs
	if reg == nil && !opts.DisableObs {
		reg = obs.New(clock)
	}

	meta := coord.NewStore(clock)
	ledgers := ledger.NewSystem(clock, meta)
	for i := 0; i < opts.Bookies; i++ {
		ledgers.AddBookie(ledger.NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	cluster := pulsar.NewCluster(clock, meta, ledgers, meter, pulsar.ClusterConfig{
		BatchMaxMessages:   opts.PulsarBatchMax,
		BatchFlushInterval: opts.PulsarFlushInterval,
	})
	for i := 0; i < opts.Brokers; i++ {
		cluster.AddBroker(fmt.Sprintf("broker-%d", i))
	}
	jf := jiffy.NewController(clock, meter, jiffy.Config{
		BlockSize: opts.JiffyBlockSize,
		Latency:   opts.JiffyLatency,
	})
	for i := 0; i < opts.JiffyNodes; i++ {
		jf.AddNode(fmt.Sprintf("mem-%d", i), opts.BlocksPerNode)
	}
	fp := faas.New(clock, meter)
	blobStore := blob.New(clock, meter, opts.BlobLatency)
	queueSvc := queue.New(clock, meter)
	db := kvdb.New(clock, meter)
	engine := orchestrate.NewEngine(fp)

	// Attach instrumentation before any traffic. With DisableObs (nil reg)
	// every subsystem gets nil instruments and stays no-op.
	obs.Wire(reg, ledgers, cluster, jf, fp, blobStore, queueSvc, db, engine)

	return &Platform{
		Clock:        clock,
		Meter:        meter,
		Pricing:      opts.Pricing,
		Obs:          reg,
		FaaS:         fp,
		Blob:         blobStore,
		Queue:        queueSvc,
		DB:           db,
		Coord:        meta,
		Ledgers:      ledgers,
		Pulsar:       cluster,
		Jiffy:        jf,
		Orchestrator: engine,
	}
}

// Compile-time proof that every platform subsystem satisfies the shared
// instrumentation contract obs.Wire fans out over.
var (
	_ obs.Instrumentable = (*ledger.System)(nil)
	_ obs.Instrumentable = (*pulsar.Cluster)(nil)
	_ obs.Instrumentable = (*jiffy.Controller)(nil)
	_ obs.Instrumentable = (*faas.Platform)(nil)
	_ obs.Instrumentable = (*blob.Store)(nil)
	_ obs.Instrumentable = (*queue.Service)(nil)
	_ obs.Instrumentable = (*kvdb.DB)(nil)
	_ obs.Instrumentable = (*orchestrate.Engine)(nil)
	_ obs.Instrumentable = (*autoscale.Controller)(nil)
)

// EnableAutoscale builds, wires and starts the elastic control plane over
// the platform's FaaS layer and whatever cluster is attached to it (attach
// one first with FaaS.AttachCluster for machine-fleet elasticity). The
// controller ticks on the platform clock until Stop. It is also stored on
// Platform.Autoscaler for state endpoints and demos.
func (p *Platform) EnableAutoscale(cfg autoscale.Config) *autoscale.Controller {
	ctrl := autoscale.New(p.Clock, p.FaaS, p.FaaS.Cluster(), cfg)
	if p.Obs != nil {
		ctrl.SetObs(p.Obs)
	}
	p.Autoscaler = ctrl
	ctrl.Start()
	return ctrl
}

// EnableBrokerLoadManager builds and starts the Pulsar broker load manager
// (DESIGN.md §12): per-partition load sampling, hot-partition reassignment
// through the cursor-exact handoff, and key-range splits when configured.
// The manager is stored on Platform.BrokerLoad for the `/brokers` endpoint
// and demos.
func (p *Platform) EnableBrokerLoadManager(cfg pulsar.LoadManagerConfig) *pulsar.LoadManager {
	lm := p.Pulsar.NewLoadManager(cfg)
	p.BrokerLoad = lm
	lm.Start()
	return lm
}

// NewVirtual builds a Platform on a fresh virtual clock and returns both.
// The caller drives the simulation with v.Run and should v.Close it after.
func NewVirtual(opts Options) (*Platform, *simclock.Virtual) {
	v := simclock.NewVirtual()
	opts.Clock = v
	return New(opts), v
}

// Elapsed returns the time elapsed on a virtual platform clock (zero on the
// real clock).
func (p *Platform) Elapsed() time.Duration {
	if v, ok := p.Clock.(*simclock.Virtual); ok {
		return v.Elapsed()
	}
	return 0
}
