// Typed sentinel errors, unified across planes. Every plane wraps the same
// underlying identities (internal/errs), so callers match with errors.Is
// against the re-exports here without caring which subsystem shed, timed
// out or reclaimed:
//
//	res, err := tenant.Invoke("fn", payload)
//	switch {
//	case errors.Is(err, core.ErrThrottled):        // admission or concurrency shed
//	case errors.Is(err, core.ErrColdStartTimeout): // capacity did not appear in time
//	case errors.Is(err, core.ErrBreakerOpen):      // circuit breaker fast-fail
//	}
//
// The per-subsystem sentinels (faas.ErrThrottled, jiffy.ErrNoCapacity,
// scheduler.ErrUnplaceable, …) remain and still match — they wrap these.
package core

import "repro/internal/errs"

var (
	// ErrThrottled: the request was shed by admission control — a tenant's
	// fair-share token bucket or a function's concurrency cap.
	ErrThrottled = errs.ErrThrottled
	// ErrColdStartTimeout: a cold invocation waited for capacity (cluster
	// placement) past its ColdStartBudget.
	ErrColdStartTimeout = errs.ErrColdStartTimeout
	// ErrBreakerOpen: a per-function circuit breaker fast-failed the call.
	ErrBreakerOpen = errs.ErrBreakerOpen
	// ErrLeaseExpired: the ephemeral state's lease lapsed and it was
	// reclaimed.
	ErrLeaseExpired = errs.ErrLeaseExpired
	// ErrNoCapacity: no machine or memory pool can hold the demand.
	ErrNoCapacity = errs.ErrNoCapacity
)
