package core

import (
	"repro/internal/billing"
	"repro/internal/faas"
)

// TenantHandle scopes platform operations to one tenant. It is the
// preferred deployment API: the tenant name is stated once, at handle
// creation, instead of being threaded (and occasionally swapped) through
// every stringly call site.
//
//	acme := platform.Tenant("acme")
//	acme.Register("resize", resizeHandler, faas.Config{MemoryMB: 512})
//	res, err := acme.Invoke("resize", img)
//	fmt.Print(acme.Invoice())
type TenantHandle struct {
	p    *Platform
	name string
}

// Tenant returns a handle scoping operations to the named tenant. Handles
// are cheap and stateless; calling Tenant twice with the same name yields
// interchangeable handles.
func (p *Platform) Tenant(name string) *TenantHandle {
	return &TenantHandle{p: p, name: name}
}

// Name returns the tenant this handle is scoped to.
func (t *TenantHandle) Name() string { return t.name }

// Platform returns the underlying platform for subsystem access.
func (t *TenantHandle) Platform() *Platform { return t.p }

// Register deploys a function owned by this tenant.
func (t *TenantHandle) Register(name string, h faas.Handler, cfg faas.Config) error {
	return t.p.FaaS.Register(name, t.name, h, cfg)
}

// Invoke runs one of this tenant's functions synchronously. Names resolve
// only within this tenant's namespace: a function owned by a different
// tenant fails with faas.ErrNoFunction, indistinguishable from one that was
// never registered — a tenant cannot see (or probe for) another tenant's
// deployments.
func (t *TenantHandle) Invoke(name string, payload []byte) (faas.Result, error) {
	return t.p.FaaS.InvokeFor(t.name, name, payload)
}

// InvokeAsync runs one of this tenant's functions on its own goroutine with
// the platform's transparent retry; done (if non-nil) receives the final
// result. Cross-tenant names fail like Invoke.
func (t *TenantHandle) InvokeAsync(name string, payload []byte, done func(faas.Result, error)) {
	t.p.FaaS.InvokeAsyncFor(t.name, name, payload, done)
}

// Unregister removes one of this tenant's functions. Like Invoke, the name
// resolves only within this tenant's namespace: another tenant's same-named
// function is untouched, and the failure is ErrNoFunction either way.
func (t *TenantHandle) Unregister(name string) error {
	return t.p.FaaS.UnregisterFor(t.name, name)
}

// Functions lists this tenant's registered functions, sorted by name.
func (t *TenantHandle) Functions() []faas.FunctionInfo {
	return t.p.FaaS.FunctionsFor(t.name)
}

// Stats snapshots one of this tenant's functions' counters.
func (t *TenantHandle) Stats(name string) (faas.Stats, error) {
	return t.p.FaaS.StatsFor(t.name, name)
}

// Invoice prices the tenant's accumulated usage.
func (t *TenantHandle) Invoice() billing.Invoice {
	return t.p.Meter.Invoice(t.name, t.p.Pricing)
}

// Limits sets the tenant's admission share: fair-share weight, burst depth
// and queue bounds. No-op until faas admission is enabled with
// FaaS.SetAdmission.
func (t *TenantHandle) Limits(l faas.TenantLimit) {
	t.p.FaaS.SetTenantLimit(t.name, l)
}

// Shed returns how many of the tenant's requests admission has shed.
func (t *TenantHandle) Shed() int64 {
	return t.p.FaaS.AdmissionShed(t.name)
}
