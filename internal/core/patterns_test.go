package core

// §3.2 cites Hong et al.'s categorization of serverless design patterns:
// (1) periodic invocation, (2) event-driven, (3) data transformation,
// (4) data streaming, (5) state machine, (6) bundled pattern. Each test below
// exercises one pattern end to end on the assembled platform — the
// integration-level proof that the reproduction supports the full catalogue.

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/faas"
	"repro/internal/orchestrate"
	"repro/internal/pulsar"
	"repro/internal/queue"
	"repro/internal/sketch"
)

// Pattern 1: periodic invocation — a function fired on a fixed schedule
// (compliance scans, report generation).
func TestPatternPeriodicInvocation(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	var runs int64
	v.Run(func() {
		must(t, p.Tenant("t").Register("scan", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			atomic.AddInt64(&runs, 1)
			ctx.Work(50 * time.Millisecond)
			return nil, nil
		}, faas.Config{}))
		// Every 10 minutes for an hour.
		schedule := make([]time.Duration, 6)
		for i := range schedule {
			schedule[i] = time.Duration(i) * 10 * time.Minute
		}
		rep := faas.Drive(p.FaaS, "scan", nil, schedule)
		rep.Wait()
	})
	if runs != 6 {
		t.Fatalf("periodic runs = %d, want 6", runs)
	}
}

// Pattern 2: event-driven — storage events trigger compute.
func TestPatternEventDriven(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	var processed int64
	v.Run(func() {
		must(t, p.Blob.CreateBucket("in", "t"))
		must(t, p.Tenant("t").Register("react", func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			atomic.AddInt64(&processed, 1)
			return nil, nil
		}, faas.Config{}))
		faas.BindBlob(p.FaaS, p.Blob, "in", "react")
		for i := 0; i < 4; i++ {
			_, err := p.Blob.Put("in", fmt.Sprintf("o%d", i), []byte("x"), blob.PutOptions{})
			must(t, err)
		}
		v.Sleep(time.Second)
	})
	if processed != 4 {
		t.Fatalf("events processed = %d, want 4", processed)
	}
}

// Pattern 3: data transformation — queue-fed transform writing back to
// storage (the ETL archetype).
func TestPatternDataTransformation(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() {
		must(t, p.Blob.CreateBucket("out", "t"))
		must(t, p.Queue.CreateQueue("jobs", "t", queue.DefaultConfig()))
		must(t, p.Tenant("t").Register("transform", func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			upper := []byte(fmt.Sprintf("transformed:%s", payload))
			_, err := p.Blob.Put("out", string(payload), upper, blob.PutOptions{})
			return nil, err
		}, faas.Config{}))
		must(t, faas.BindQueue(p.FaaS, p.Queue, "jobs", "transform", 10))
		for _, name := range []string{"a", "b", "c"} {
			_, err := p.Queue.Send("jobs", []byte(name))
			must(t, err)
		}
		v.Sleep(time.Second)
		for _, name := range []string{"a", "b", "c"} {
			data, _, err := p.Blob.Get("out", name)
			must(t, err)
			if string(data) != "transformed:"+name {
				t.Errorf("out[%s] = %q", name, data)
			}
		}
	})
}

// Pattern 4: data streaming — a stateful Pulsar function over a topic.
func TestPatternDataStreaming(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() {
		must(t, p.Pulsar.CreateTopic("stream", 0))
		hll := sketch.NewHLL(10)
		fn, err := p.Pulsar.StartFunction(pulsar.FunctionConfig{
			Name: "distinct", Inputs: []string{"stream"},
		}, func(ctx *pulsar.FnContext, m pulsar.Message) ([]byte, error) {
			hll.Add(m.Key)
			return nil, nil
		})
		must(t, err)
		prod, _ := p.Pulsar.CreateProducer("stream")
		for i := 0; i < 200; i++ {
			_, err := prod.SendKey(fmt.Sprintf("u%d", i%50), nil)
			must(t, err)
		}
		for i := 0; i < 1000 && fn.Processed() < 200; i++ {
			v.Sleep(5 * time.Millisecond)
		}
		fn.Stop()
		if est := hll.Estimate(); est < 40 || est > 60 {
			t.Errorf("distinct estimate %.0f, want ≈50", est)
		}
	})
}

// Pattern 5: state machine — an orchestrated multi-step workflow with
// branching.
func TestPatternStateMachine(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() {
		must(t, p.Tenant("t").Register("classify", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return in, nil
		}, faas.Config{}))
		must(t, p.Tenant("t").Register("small", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return []byte("small:" + string(in)), nil
		}, faas.Config{}))
		must(t, p.Tenant("t").Register("large", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return []byte("large:" + string(in)), nil
		}, faas.Config{}))
		sm := orchestrate.Chain(
			orchestrate.Task("classify"),
			orchestrate.Choice([]orchestrate.ChoiceBranch{
				{When: func(in []byte) bool { return len(in) < 5 }, Then: orchestrate.Task("small")},
			}, orchestrate.Task("large")),
		)
		out, err := p.Orchestrator.Execute(sm, []byte("ab"))
		must(t, err)
		if string(out) != "small:ab" {
			t.Errorf("out = %q", out)
		}
		out, err = p.Orchestrator.Execute(sm, []byte("abcdefgh"))
		must(t, err)
		if string(out) != "large:abcdefgh" {
			t.Errorf("out = %q", out)
		}
	})
}

// Pattern 6: bundled pattern — one deployment combining several of the
// above: a periodic tick fans a queue out to workers whose results feed a
// streaming aggregate.
func TestPatternBundled(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	var aggregated int64
	v.Run(func() {
		must(t, p.Queue.CreateQueue("work", "t", queue.DefaultConfig()))
		must(t, p.Pulsar.CreateTopic("results", 0))
		prod, err := p.Pulsar.CreateProducer("results")
		must(t, err)

		// Worker: queue-driven, publishes results to the topic.
		must(t, p.Tenant("t").Register("worker", func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Work(10 * time.Millisecond)
			_, err := prod.Send(payload)
			return nil, err
		}, faas.Config{}))
		must(t, faas.BindQueue(p.FaaS, p.Queue, "work", "worker", 10))

		// Streaming aggregate over results. (The wide poll keeps the idle
		// function from dominating virtual-clock advances across the
		// multi-second tick schedule.)
		fn, err := p.Pulsar.StartFunction(pulsar.FunctionConfig{
			Name: "agg", Inputs: []string{"results"}, PollTimeout: 200 * time.Millisecond,
		}, func(ctx *pulsar.FnContext, m pulsar.Message) ([]byte, error) {
			atomic.AddInt64(&aggregated, 1)
			return nil, nil
		})
		must(t, err)

		// Periodic tick: every minute, enqueue a batch of work.
		must(t, p.Tenant("t").Register("tick", func(ctx *faas.Ctx, _ []byte) ([]byte, error) {
			for i := 0; i < 3; i++ {
				if _, err := p.Queue.Send("work", []byte(fmt.Sprintf("job-%d", i))); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}, faas.Config{}))
		schedule := []time.Duration{0, time.Second, 2 * time.Second}
		rep := faas.Drive(p.FaaS, "tick", nil, schedule)
		rep.Wait()
		for i := 0; i < 2000 && atomic.LoadInt64(&aggregated) < 9; i++ {
			v.Sleep(50 * time.Millisecond)
		}
		fn.Stop()
	})
	if aggregated != 9 {
		t.Fatalf("aggregated = %d, want 9 (3 ticks × 3 jobs)", aggregated)
	}
}
