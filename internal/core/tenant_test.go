package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/faas"
)

func TestTenantHandle(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	acme := p.Tenant("acme")
	rival := p.Tenant("rival")
	if acme.Name() != "acme" || acme.Platform() != p {
		t.Fatal("handle identity")
	}

	must(t, acme.Register("resize", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(50 * time.Millisecond)
		return in, nil
	}, faas.Config{MemoryMB: 512}))

	v.Run(func() {
		res, err := acme.Invoke("resize", []byte("img"))
		must(t, err)
		if string(res.Output) != "img" {
			t.Fatalf("output = %q", res.Output)
		}

		// Another tenant cannot invoke — or distinguish from nonexistent.
		if _, err := rival.Invoke("resize", nil); !errors.Is(err, faas.ErrNoFunction) {
			t.Fatalf("cross-tenant invoke err = %v, want ErrNoFunction", err)
		}
		if _, err := acme.Invoke("ghost", nil); !errors.Is(err, faas.ErrNoFunction) {
			t.Fatalf("missing-function err = %v, want ErrNoFunction", err)
		}

		// Async path honors the same scoping.
		got := make(chan error, 1)
		rival.InvokeAsync("resize", nil, func(_ faas.Result, err error) { got <- err })
		v.BlockOn(func() {
			if err := <-got; !errors.Is(err, faas.ErrNoFunction) {
				t.Errorf("cross-tenant async err = %v, want ErrNoFunction", err)
			}
		})
		done := make(chan error, 1)
		acme.InvokeAsync("resize", []byte("x"), func(_ faas.Result, err error) { done <- err })
		v.BlockOn(func() {
			if err := <-done; err != nil {
				t.Errorf("own async invoke: %v", err)
			}
		})
	})

	// The invocation shows up on the handle's invoice.
	inv := acme.Invoice()
	if inv.Tenant != "acme" || inv.Total <= 0 {
		t.Fatalf("invoice = %+v", inv)
	}
	if rival.Invoice().Total != 0 {
		t.Fatal("rival billed for acme's work")
	}

	// Limits + Shed round-trip through admission.
	p.FaaS.SetAdmission(faas.AdmissionConfig{RatePerSecond: 1, Burst: 1, MaxWait: time.Nanosecond})
	acme.Limits(faas.TenantLimit{Weight: 2})
	v.Run(func() {
		_, _ = acme.Invoke("resize", nil)
		_, _ = acme.Invoke("resize", nil)
	})
	if acme.Shed() != 1 {
		t.Fatalf("shed = %d, want 1", acme.Shed())
	}
	if got := p.Meter.Units("acme", billing.ResShedRequests); got != 1 {
		t.Fatalf("billed shed units = %v, want 1", got)
	}
}

// TestTenantNamespacedFunctionNames: function names are a namespace per
// tenant. Two tenants each own a "resize" without colliding — registration
// neither fails nor reveals that the other tenant's name exists — and each
// handle's Invoke resolves to its own tenant's deployment. The bare-name
// legacy surface reports the shared name as ambiguous instead of silently
// picking a tenant.
func TestTenantNamespacedFunctionNames(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	acme := p.Tenant("acme")
	evil := p.Tenant("evil")
	mk := func(out string) faas.Handler {
		return func(ctx *faas.Ctx, in []byte) ([]byte, error) { return []byte(out), nil }
	}
	must(t, acme.Register("resize", mk("acme"), faas.Config{}))
	must(t, evil.Register("resize", mk("evil"), faas.Config{}))
	if err := evil.Register("resize", mk("again"), faas.Config{}); !errors.Is(err, faas.ErrExists) {
		t.Fatalf("same-tenant re-register = %v, want ErrExists", err)
	}
	v.Run(func() {
		for _, tc := range []struct {
			h    *TenantHandle
			want string
		}{{acme, "acme"}, {evil, "evil"}} {
			res, err := tc.h.Invoke("resize", nil)
			if err != nil || string(res.Output) != tc.want {
				t.Fatalf("%s.Invoke(resize) = %q, %v", tc.h.Name(), res.Output, err)
			}
		}
		// Cross-tenant names stay unprobeable.
		if _, err := acme.Invoke("missing", nil); !errors.Is(err, faas.ErrNoFunction) {
			t.Fatalf("missing = %v", err)
		}
		// The tenant-unscoped bare faas lookup cannot pick a winner.
		if _, err := p.FaaS.Invoke("resize", nil); !errors.Is(err, faas.ErrAmbiguous) {
			t.Fatalf("bare Invoke(resize) = %v, want ErrAmbiguous", err)
		}
	})
	if _, ok := p.FaaS.PoolTarget("acme/resize"); !ok {
		t.Fatal("qualified PoolTarget lookup failed")
	}
}
