package core

import (
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/kvdb"
	"repro/internal/orchestrate"
)

func TestNewDefaults(t *testing.T) {
	p := New(Options{})
	if p.FaaS == nil || p.Blob == nil || p.Queue == nil || p.DB == nil ||
		p.Coord == nil || p.Ledgers == nil || p.Pulsar == nil || p.Jiffy == nil ||
		p.Orchestrator == nil || p.Meter == nil {
		t.Fatal("subsystem missing from default platform")
	}
	if p.Elapsed() != 0 {
		t.Fatal("real-clock platform reports elapsed time")
	}
	if p.Jiffy.TotalBlocks() != 4*256 {
		t.Fatalf("jiffy pool = %d blocks", p.Jiffy.TotalBlocks())
	}
}

// TestEndToEndPipeline drives one request through most of the stack: a blob
// upload triggers a function that writes a DB row, publishes to Pulsar, and
// leaves ephemeral state in Jiffy; billing reflects it all.
func TestEndToEndPipeline(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() {
		must(t, p.Blob.CreateBucket("uploads", "acme"))
		must(t, p.DB.CreateTable("files", "acme"))
		must(t, p.Pulsar.CreateTopic("uploaded", 0))
		tenant, err := p.Jiffy.CreateNamespace("/acme", jiffy.NamespaceOptions{Lease: -1})
		must(t, err)
		ns, err := tenant.CreateChild("pipeline", jiffy.NamespaceOptions{Lease: -1})
		must(t, err)
		prod, err := p.Pulsar.CreateProducer("uploaded")
		must(t, err)

		handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
			ctx.Work(10 * time.Millisecond)
			if err := p.DB.RunTxn(func(tx *kvdb.Txn) error {
				return tx.Put("files", "f1", kvdb.Row{"status": "processed"})
			}); err != nil {
				return nil, err
			}
			if _, err := prod.Send([]byte("f1 done")); err != nil {
				return nil, err
			}
			return nil, ns.Put("last", payload)
		}
		must(t, p.Tenant("acme").Register("process", handler, faas.Config{}))

		cons, err := p.Pulsar.Subscribe("uploaded", "audit", 0, 1) // Exclusive, Earliest
		must(t, err)

		res, err := p.Tenant("acme").Invoke("process", []byte("hello"))
		must(t, err)
		if !res.Cold {
			t.Error("first invocation should be cold")
		}

		// DB row landed.
		row, ok, err := p.DB.Begin().Get("files", "f1")
		must(t, err)
		if !ok || row["status"] != "processed" {
			t.Errorf("db row = %v ok=%v", row, ok)
		}
		// Message landed.
		m, ok := cons.Receive(time.Second)
		if !ok || string(m.Payload) != "f1 done" {
			t.Errorf("pulsar message = %q ok=%v", m.Payload, ok)
		}
		// Ephemeral state landed.
		got, err := ns.Get("last")
		must(t, err)
		if string(got) != "hello" {
			t.Errorf("jiffy state = %q", got)
		}
	})
	inv := p.Tenant("acme").Invoice()
	if inv.Total <= 0 {
		t.Fatalf("invoice total = %v", inv.Total)
	}
	if p.Meter.Units("acme", billing.ResInvocationReqs) != 1 {
		t.Fatal("invocation not billed")
	}
	if p.Meter.Units("pulsar", billing.ResMsgPublish) != 1 {
		t.Fatal("publish not billed")
	}
}

func TestOrchestratorWired(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() {
		must(t, p.Tenant("t").Register("double", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
			return append(in, in...), nil
		}, faas.Config{}))
		out, err := p.Orchestrator.Execute(orchestrate.Chain(
			orchestrate.Task("double"),
			orchestrate.Task("double"),
		), []byte("ab"))
		must(t, err)
		if string(out) != "abababab" {
			t.Errorf("out = %q", out)
		}
	})
}

func TestElapsedOnVirtualClock(t *testing.T) {
	p, v := NewVirtual(Options{})
	defer v.Close()
	v.Run(func() { v.Sleep(time.Minute) })
	if p.Elapsed() != time.Minute {
		t.Fatalf("Elapsed = %v", p.Elapsed())
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
