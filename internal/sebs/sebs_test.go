package sebs

import (
	"encoding/json"
	"testing"
)

// TestSuiteShortRun drives every app through the HTTP gateway with a small
// closed loop and checks the report invariants: all four apps present, no
// errors, the forced cold-start pattern (request 0 plus one keep-alive gap
// at request 5 → exactly 2 colds in 10), ordered percentiles, and a nonzero
// bill.
func TestSuiteShortRun(t *testing.T) {
	rep, err := Run(Config{Requests: 10, ColdEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Apps) != 4 {
		t.Fatalf("apps = %d, want 4", len(rep.Apps))
	}
	if rep.Transport != "http" || !rep.VirtualClock {
		t.Fatalf("report meta = %+v", rep)
	}
	for _, a := range rep.Apps {
		if a.Errors != 0 {
			t.Errorf("%s: %d errors", a.App, a.Errors)
		}
		if a.ColdStarts != 2 {
			t.Errorf("%s: cold_starts = %d, want 2 (request 0 + one forced gap)", a.App, a.ColdStarts)
		}
		if a.P50Ms <= 0 || a.P50Ms > a.P95Ms || a.P95Ms > a.P99Ms {
			t.Errorf("%s: percentiles out of order: p50=%v p95=%v p99=%v", a.App, a.P50Ms, a.P95Ms, a.P99Ms)
		}
		if a.BilledCostUSD <= 0 || a.CostPer1kUSD <= 0 {
			t.Errorf("%s: zero billed cost (%v / %v per 1k)", a.App, a.BilledCostUSD, a.CostPer1kUSD)
		}
	}
}

// TestSuiteDeterministic: two identical runs must serialize to identical
// JSON — every figure comes from the virtual clock and the meter, never
// from wall time.
func TestSuiteDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("two full suite runs; skipped in -short mode")
	}
	cfg := Config{Requests: 8, ColdEvery: 4, Apps: []string{"webapp", "video"}}
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.Marshal(r1)
	j2, _ := json.Marshal(r2)
	if string(j1) != string(j2) {
		t.Fatalf("reports differ:\n%s\n%s", j1, j2)
	}
}
