// Package sebs is a SeBS-style end-to-end benchmark suite (after
// "SeBS: A Serverless Benchmark Suite", arXiv 2012.14132): representative
// serverless applications driven through the real HTTP gateway — register
// over REST, invoke over REST, read the bill over REST — rather than through
// in-process calls. The suite reports, per application, p50/p95/p99 latency,
// billed cost per 1k invocations, and cold-start fraction.
//
// Everything runs on the virtual clock, so the report is deterministic: the
// latency figures are exact simulated durations carried back in the
// gateway's X-Taureau-* headers (wall time never enters them), cold starts
// are forced at fixed points by sleeping past the keep-alive between bursts,
// and billing is the platform meter priced by the default pricing table.
// The HTTP transport is real (a live TCP listener, real request parsing);
// only time is simulated.
package sebs

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"sort"
	"time"

	"repro/internal/blob"
	"repro/internal/core"
	"repro/internal/faas"
	"repro/internal/gateway"
	"repro/internal/kvdb"
	"repro/internal/mlserve"
	"repro/internal/video"
)

// Config sizes a suite run. The zero value runs every app with the default
// closed-loop depth.
type Config struct {
	// Requests per app. Default 40.
	Requests int
	// ColdEvery inserts a keep-alive-exceeding idle gap before every
	// ColdEvery-th request, forcing a deterministic cold-start pattern
	// (request 0 plus each gap). 0 uses the default of 10; negative
	// disables forced gaps (only request 0 is cold).
	ColdEvery int
	// Apps filters the suite to these app names. Empty runs all.
	Apps []string
}

// AppReport is one application's end-to-end figures.
type AppReport struct {
	App          string  `json:"app"`
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	ColdStarts   int     `json:"cold_starts"`
	ColdFraction float64 `json:"cold_fraction"`
	P50Ms        float64 `json:"p50_ms"`
	P95Ms        float64 `json:"p95_ms"`
	P99Ms        float64 `json:"p99_ms"`
	// BilledCostUSD is the tenant's full invoice for the run: invocation
	// GB-seconds plus whatever BaaS the app touched (blob, database).
	BilledCostUSD float64 `json:"billed_cost_usd"`
	CostPer1kUSD  float64 `json:"billed_cost_per_1k_usd"`
}

// Report is the suite's JSON output.
type Report struct {
	Suite          string      `json:"suite"`
	Transport      string      `json:"transport"`
	VirtualClock   bool        `json:"virtual_clock"`
	RequestsPerApp int         `json:"requests_per_app"`
	Apps           []AppReport `json:"apps"`
}

// app is one suite member: its wire spec, a setup hook that provisions
// backing state and returns the handler (run inside the virtual clock), and
// a deterministic payload generator.
type app struct {
	name  string
	spec  gateway.FunctionSpec
	setup func(p *core.Platform) (faas.Handler, func(i int) []byte, error)
}

func tenantOf(appName string) string { return "sebs-" + appName }
func tokenOf(appName string) string  { return "tok-" + appName }

// suite returns the full app roster. Specs share lifecycle constants chosen
// so the forced-cold pattern is unambiguous: keep-alive 60s (gaps sleep
// 61s), cold start 200ms, warm start 1ms.
func suite() []app {
	base := func(name string) gateway.FunctionSpec {
		return gateway.FunctionSpec{
			Name:        name,
			Handler:     "sebs-" + name,
			MemoryMB:    256,
			TimeoutMs:   30_000,
			KeepAliveMs: 60_000,
			ColdStartMs: 200,
			WarmStartMs: 1,
		}
	}
	return []app{
		{name: "webapp", spec: base("webapp"), setup: setupWebapp},
		{name: "mlserve", spec: base("mlserve"), setup: setupMLServe},
		{name: "graphrank", spec: base("graphrank"), setup: setupGraphRank},
		{name: "video", spec: base("video"), setup: setupVideo},
	}
}

// setupWebapp is a product-page render: one indexed database read plus one
// blob asset fetch per request, then a fixed render cost.
func setupWebapp(p *core.Platform) (faas.Handler, func(int) []byte, error) {
	tenant := tenantOf("webapp")
	if err := p.Blob.CreateBucket("sebs-assets", tenant); err != nil {
		return nil, nil, err
	}
	if err := p.DB.CreateTable("sebs-products", tenant, "category"); err != nil {
		return nil, nil, err
	}
	cats := []string{"tools", "books", "garden", "games"}
	for i := 0; i < 16; i++ {
		pk := fmt.Sprintf("p%02d", i)
		row := map[string]string{"name": "product " + pk, "category": cats[i%len(cats)]}
		if err := p.DB.RunTxn(func(tx *kvdb.Txn) error { return tx.Put("sebs-products", pk, row) }); err != nil {
			return nil, nil, err
		}
		asset := make([]byte, 4<<10)
		for j := range asset {
			asset[j] = byte(i + j)
		}
		if _, err := p.Blob.Put("sebs-assets", pk+".png", asset, blob.PutOptions{}); err != nil {
			return nil, nil, err
		}
	}
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		pk := string(payload)
		var category string
		err := p.DB.RunTxn(func(tx *kvdb.Txn) error {
			row, ok, err := tx.Get("sebs-products", pk)
			if err != nil {
				return err
			}
			if !ok {
				return fmt.Errorf("webapp: no product %q", pk)
			}
			category = row["category"]
			return nil
		})
		if err != nil {
			return nil, err
		}
		asset, _, err := p.Blob.Get("sebs-assets", pk+".png")
		if err != nil {
			return nil, err
		}
		ctx.Work(2 * time.Millisecond) // template render
		return json.Marshal(map[string]any{
			"product": pk, "category": category, "asset_bytes": len(asset),
		})
	}
	payload := func(i int) []byte { return []byte(fmt.Sprintf("p%02d", i%16)) }
	return handler, payload, nil
}

// setupMLServe is inference serving: load published weights from blob (with
// the shared model cache), score a feature vector with a logistic model.
func setupMLServe(p *core.Platform) (faas.Handler, func(int) []byte, error) {
	tenant := tenantOf("mlserve")
	if err := p.Blob.CreateBucket("sebs-models", tenant); err != nil {
		return nil, nil, err
	}
	ms := mlserve.NewModelStore(p.Blob, "sebs-models")
	const dim = 256
	if err := ms.Publish("clf", mlserve.RandomVector(dim, 7)); err != nil {
		return nil, nil, err
	}
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var req mlserve.InferRequest
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		w, err := ms.Load("clf", true)
		if err != nil {
			return nil, err
		}
		if len(req.Features) != len(w) {
			return nil, fmt.Errorf("mlserve: feature dim %d != model dim %d", len(req.Features), len(w))
		}
		var z float64
		for i, f := range req.Features {
			z += f * w[i]
		}
		ctx.Work(2 * time.Millisecond) // inference cost
		prob := 1 / (1 + math.Exp(-z))
		label := 0
		if prob >= 0.5 {
			label = 1
		}
		return json.Marshal(mlserve.InferResponse{Probability: prob, Label: label})
	}
	payload := func(i int) []byte {
		features := mlserve.RandomVector(dim, int64(100+i))
		b, _ := json.Marshal(mlserve.InferRequest{Features: features})
		return b
	}
	return handler, payload, nil
}

// setupGraphRank is CPU-bound analytics: a power-iteration rank over a small
// deterministic graph, with work proportional to edges×iterations.
func setupGraphRank(p *core.Platform) (faas.Handler, func(int) []byte, error) {
	const n, iters = 64, 10
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var req struct {
			Seed int `json:"seed"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		// Ring plus seed-dependent chords; out-degree 2 everywhere.
		adj := make([][]int, n)
		for i := range adj {
			adj[i] = []int{(i + 1) % n, (i + 3 + req.Seed%7) % n}
		}
		rank := make([]float64, n)
		next := make([]float64, n)
		for i := range rank {
			rank[i] = 1.0 / n
		}
		for it := 0; it < iters; it++ {
			for i := range next {
				next[i] = 0.15 / n
			}
			for i, out := range adj {
				share := 0.85 * rank[i] / float64(len(out))
				for _, j := range out {
					next[j] += share
				}
			}
			rank, next = next, rank
			ctx.Work(500 * time.Microsecond) // per-iteration compute
		}
		best, bestRank := 0, rank[0]
		for i, r := range rank {
			if r > bestRank {
				best, bestRank = i, r
			}
		}
		return json.Marshal(map[string]any{"top_node": best, "rank": bestRank})
	}
	payload := func(i int) []byte {
		b, _ := json.Marshal(map[string]int{"seed": i})
		return b
	}
	return handler, payload, nil
}

// setupVideo is chunked video encoding (the ExCamera workload): each request
// encodes one 12-frame GOP of a synthetic clip, paying per-frame costs from
// the default software-encoder model.
func setupVideo(p *core.Platform) (faas.Handler, func(int) []byte, error) {
	clip := video.Synthetic(48, 12, 3)
	cost := video.DefaultCost()
	const chunk = 12
	chunks := (len(clip.Frames) + chunk - 1) / chunk
	handler := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var req struct {
			Chunk int `json:"chunk"`
		}
		if err := json.Unmarshal(payload, &req); err != nil {
			return nil, err
		}
		start := (req.Chunk % chunks) * chunk
		end := start + chunk
		if end > len(clip.Frames) {
			end = len(clip.Frames)
		}
		bytesOut := 0
		for i := start; i < end; i++ {
			f := clip.Frames[i]
			d := time.Duration(float64(cost.PerFrame) * f.Complexity)
			b := float64(cost.BytesPerFrame) * f.Complexity
			if f.KeyFrame || i == start {
				d = time.Duration(float64(d) * cost.KeyFrameFactor)
				b *= cost.KeyFrameFactor
			}
			ctx.Work(d)
			bytesOut += int(b)
		}
		return json.Marshal(map[string]int{"frames": end - start, "bytes": bytesOut})
	}
	payload := func(i int) []byte {
		b, _ := json.Marshal(map[string]int{"chunk": i % chunks})
		return b
	}
	return handler, payload, nil
}

// Run executes the suite: boot a virtual-clock platform, serve the gateway
// on a real listener, and drive each app through HTTP in a closed loop.
func Run(cfg Config) (Report, error) {
	if cfg.Requests <= 0 {
		cfg.Requests = 40
	}
	if cfg.ColdEvery == 0 {
		cfg.ColdEvery = 10
	}
	apps := suite()
	if len(cfg.Apps) > 0 {
		want := make(map[string]bool, len(cfg.Apps))
		for _, n := range cfg.Apps {
			want[n] = true
		}
		kept := apps[:0]
		for _, a := range apps {
			if want[a.name] {
				kept = append(kept, a)
			}
		}
		apps = kept
		if len(apps) == 0 {
			return Report{}, fmt.Errorf("sebs: no known apps in filter %v", cfg.Apps)
		}
	}

	p, v := core.NewVirtual(core.Options{})
	exec := gateway.NewInProc()
	tokens := make(map[string]string, len(apps))
	for _, a := range apps {
		tokens[tokenOf(a.name)] = tenantOf(a.name)
	}
	gw := gateway.New(p, gateway.Config{Tokens: tokens, Executor: exec})
	srv := httptest.NewServer(gw)
	defer srv.Close()

	rep := Report{
		Suite:          "sebs",
		Transport:      "http",
		VirtualClock:   true,
		RequestsPerApp: cfg.Requests,
	}
	var runErr error
	v.Run(func() {
		for _, a := range apps {
			h, payload, err := a.setup(p)
			if err != nil {
				runErr = fmt.Errorf("sebs: %s setup: %w", a.name, err)
				return
			}
			exec.Bind(a.spec.Handler, h)
			c := &gateway.Client{BaseURL: srv.URL, Token: tokenOf(a.name), Block: v.BlockOn}
			if err := c.Register(a.spec); err != nil {
				runErr = fmt.Errorf("sebs: %s register: %w", a.name, err)
				return
			}
			gap := time.Duration(a.spec.KeepAliveMs)*time.Millisecond + time.Second
			var lats []time.Duration
			colds, errors := 0, 0
			for i := 0; i < cfg.Requests; i++ {
				if i > 0 && cfg.ColdEvery > 0 && i%cfg.ColdEvery == 0 {
					p.Clock.Sleep(gap) // idle past keep-alive: next invoke is cold
				}
				res, err := c.Invoke(a.spec.Name, payload(i))
				if err != nil {
					errors++
					continue
				}
				lats = append(lats, res.Latency)
				if res.Cold {
					colds++
				}
			}
			rep.Apps = append(rep.Apps, summarize(a.name, cfg.Requests, lats, colds, errors))
		}
	})
	v.Close()
	if runErr != nil {
		return Report{}, runErr
	}

	// Price each app's tenant after the run; every app has its own tenant,
	// so the invoice isolates its full footprint (compute + BaaS).
	for i := range rep.Apps {
		inv := p.Tenant(tenantOf(rep.Apps[i].App)).Invoice()
		rep.Apps[i].BilledCostUSD = round6(inv.Total)
		if rep.Apps[i].Requests > 0 {
			rep.Apps[i].CostPer1kUSD = round6(inv.Total * 1000 / float64(rep.Apps[i].Requests))
		}
	}
	return rep, nil
}

func summarize(name string, requests int, lats []time.Duration, colds, errors int) AppReport {
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	pct := func(q float64) float64 {
		if len(sorted) == 0 {
			return 0
		}
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return round3(float64(sorted[idx]) / float64(time.Millisecond))
	}
	r := AppReport{
		App:        name,
		Requests:   requests,
		Errors:     errors,
		ColdStarts: colds,
		P50Ms:      pct(0.50),
		P95Ms:      pct(0.95),
		P99Ms:      pct(0.99),
	}
	if len(lats) > 0 {
		r.ColdFraction = round3(float64(colds) / float64(len(lats)))
	}
	return r
}

func round3(f float64) float64 { return math.Round(f*1e3) / 1e3 }
func round6(f float64) float64 { return math.Round(f*1e6) / 1e6 }
