package kvdb

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/simclock"
)

// TestModelEquivalence drives the database with a random committed-operation
// sequence and checks it stays equivalent to a plain map — the model-based
// correctness test for the MVCC engine's happy path.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New(simclock.Real{}, nil)
		if err := db.CreateTable("t", "x"); err != nil {
			return false
		}
		model := map[string]string{}
		for op := 0; op < 200; op++ {
			key := fmt.Sprintf("k%d", rng.Intn(20))
			tx := db.Begin()
			switch rng.Intn(3) {
			case 0: // put
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := tx.Put("t", key, Row{"v": val}); err != nil {
					return false
				}
				if err := tx.Commit(); err != nil {
					return false
				}
				model[key] = val
			case 1: // delete (may be a no-op)
				if err := tx.Delete("t", key); err != nil {
					return false
				}
				if err := tx.Commit(); err != nil {
					return false
				}
				delete(model, key)
			case 2: // read & verify
				row, ok, err := tx.Get("t", key)
				if err != nil {
					return false
				}
				want, exists := model[key]
				if ok != exists {
					return false
				}
				if ok && row["v"] != want {
					return false
				}
				tx.Abort()
			}
		}
		// Full scan equivalence.
		rows, err := db.Begin().Scan("t")
		if err != nil || len(rows) != len(model) {
			return false
		}
		for k, want := range model {
			if rows[k]["v"] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestSnapshotStabilityUnderConcurrentWrites opens a snapshot, then commits
// many writes; the snapshot's reads must be frozen at its begin point.
func TestSnapshotStabilityUnderConcurrentWrites(t *testing.T) {
	db := New(simclock.Real{}, nil)
	if err := db.CreateTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	seed := db.Begin()
	for i := 0; i < 50; i++ {
		if err := seed.Put("t", fmt.Sprintf("k%d", i), Row{"v": "orig"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := seed.Commit(); err != nil {
		t.Fatal(err)
	}

	snap := db.Begin()
	// 50 later commits mutate every key.
	for i := 0; i < 50; i++ {
		w := db.Begin()
		if err := w.Put("t", fmt.Sprintf("k%d", i), Row{"v": "new"}); err != nil {
			t.Fatal(err)
		}
		if err := w.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		row, ok, err := snap.Get("t", fmt.Sprintf("k%d", i))
		if err != nil || !ok || row["v"] != "orig" {
			t.Fatalf("snapshot drifted at k%d: %v %v %v", i, row, ok, err)
		}
	}
	rows, err := snap.Scan("t")
	if err != nil {
		t.Fatal(err)
	}
	for k, row := range rows {
		if row["v"] != "orig" {
			t.Fatalf("scan drifted at %s", k)
		}
	}
}

// TestFirstCommitterWinsProperty: for any pair of transactions writing the
// same key, exactly one commits.
func TestFirstCommitterWinsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := New(simclock.Real{}, nil)
		if err := db.CreateTable("t", "x"); err != nil {
			return false
		}
		key := fmt.Sprintf("k%d", rng.Intn(4))
		a, b := db.Begin(), db.Begin()
		if a.Put("t", key, Row{"v": "a"}) != nil || b.Put("t", key, Row{"v": "b"}) != nil {
			return false
		}
		errA := a.Commit()
		errB := b.Commit()
		// A committed first, so A must win and B must abort.
		return errA == nil && errB != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestVersionGCSafety: heavy rewrite churn must not corrupt latest values.
func TestVersionChurn(t *testing.T) {
	db := New(simclock.Real{}, nil)
	if err := db.CreateTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tx := db.Begin()
		if err := tx.Put("t", "hot", Row{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	row, ok, err := db.Begin().Get("t", "hot")
	if err != nil || !ok || row["v"] != "499" {
		t.Fatalf("final = %v %v %v", row, ok, err)
	}
	if db.CommitTS() != 500 {
		t.Fatalf("commit ts = %d", db.CommitTS())
	}
}
func TestVacuumReclaimsHistory(t *testing.T) {
	db := New(simclock.Real{}, nil)
	if err := db.CreateTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx := db.Begin()
		if err := tx.Put("t", "k", Row{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	// Delete another key entirely, leaving a tombstone.
	tx := db.Begin()
	if err := tx.Put("t", "gone", Row{"v": "x"}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx = db.Begin()
	if err := tx.Delete("t", "gone"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	horizon := db.CommitTS()
	dropped := db.Vacuum(horizon)
	if dropped < 9+2 {
		t.Fatalf("dropped = %d, want ≥11 (9 stale versions + tombstone chain)", dropped)
	}
	// Current reads unchanged.
	row, ok, err := db.Begin().Get("t", "k")
	if err != nil || !ok || row["v"] != "9" {
		t.Fatalf("post-vacuum read = %v %v %v", row, ok, err)
	}
	if _, ok, _ := db.Begin().Get("t", "gone"); ok {
		t.Fatal("tombstoned key resurrected by vacuum")
	}
	// Vacuum is idempotent.
	if again := db.Vacuum(horizon); again != 0 {
		t.Fatalf("second vacuum dropped %d", again)
	}
}

func TestVacuumPreservesNewerSnapshots(t *testing.T) {
	db := New(simclock.Real{}, nil)
	if err := db.CreateTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		tx := db.Begin()
		if err := tx.Put("t", "k", Row{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	horizon := db.CommitTS() // = 5
	snap := db.Begin()       // reads at 5
	// Two more commits beyond the horizon.
	for i := 5; i < 7; i++ {
		tx := db.Begin()
		if err := tx.Put("t", "k", Row{"v": fmt.Sprint(i)}); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	db.Vacuum(horizon)
	// The snapshot at the horizon still reads its version.
	row, ok, err := snap.Get("t", "k")
	if err != nil || !ok || row["v"] != "4" {
		t.Fatalf("horizon snapshot read = %v %v %v", row, ok, err)
	}
	// Latest still newest.
	row, _, _ = db.Begin().Get("t", "k")
	if row["v"] != "6" {
		t.Fatalf("latest = %v", row)
	}
}

func TestScanPrefix(t *testing.T) {
	db := New(simclock.Real{}, nil)
	if err := db.CreateTable("t", "x"); err != nil {
		t.Fatal(err)
	}
	tx := db.Begin()
	for _, pk := range []string{"user/1", "user/2", "order/1"} {
		if err := tx.Put("t", pk, Row{"v": pk}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx2 := db.Begin()
	if err := tx2.Put("t", "user/3", Row{"v": "buffered"}); err != nil {
		t.Fatal(err)
	}
	rows, err := tx2.ScanPrefix("t", "user/")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows["user/3"]["v"] != "buffered" {
		t.Fatalf("prefix scan = %v", rows)
	}
	if _, err := tx2.ScanPrefix("ghost", "x"); err == nil {
		t.Fatal("missing table should error")
	}
}
