package kvdb

import (
	"errors"
	"fmt"
	"strconv"
	"sync"
	"testing"

	"repro/internal/billing"
	"repro/internal/simclock"
)

func newDB() *DB { return New(simclock.Real{}, nil) }

func TestPutGetCommit(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("users", "t"))
	tx := db.Begin()
	must(t, tx.Put("users", "u1", Row{"name": "ada"}))
	// Read-your-writes before commit.
	row, ok, err := tx.Get("users", "u1")
	if err != nil || !ok || row["name"] != "ada" {
		t.Fatalf("read-your-writes: %v %v %v", row, ok, err)
	}
	must(t, tx.Commit())

	tx2 := db.Begin()
	row, ok, _ = tx2.Get("users", "u1")
	if !ok || row["name"] != "ada" {
		t.Fatalf("committed read: %v %v", row, ok)
	}
}

func TestSnapshotIsolationNoDirtyRead(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	writer := db.Begin()
	must(t, writer.Put("tbl", "k", Row{"v": "draft"}))

	reader := db.Begin()
	_, ok, _ := reader.Get("tbl", "k")
	if ok {
		t.Fatal("dirty read of uncommitted write")
	}
	must(t, writer.Commit())
	// Reader's snapshot predates the commit: still invisible.
	_, ok, _ = reader.Get("tbl", "k")
	if ok {
		t.Fatal("non-repeatable read: commit leaked into old snapshot")
	}
	// A new transaction sees it.
	_, ok, _ = db.Begin().Get("tbl", "k")
	if !ok {
		t.Fatal("new snapshot missing committed row")
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	seed := db.Begin()
	must(t, seed.Put("tbl", "k", Row{"n": "0"}))
	must(t, seed.Commit())

	a, b := db.Begin(), db.Begin()
	must(t, a.Put("tbl", "k", Row{"n": "a"}))
	must(t, b.Put("tbl", "k", Row{"n": "b"}))
	must(t, a.Commit())
	if err := b.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer err = %v, want ErrConflict", err)
	}
	row, _, _ := db.Begin().Get("tbl", "k")
	if row["n"] != "a" {
		t.Fatalf("winner = %v", row)
	}
}

func TestDisjointWritesBothCommit(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	a, b := db.Begin(), db.Begin()
	must(t, a.Put("tbl", "x", Row{"v": "1"}))
	must(t, b.Put("tbl", "y", Row{"v": "2"}))
	must(t, a.Commit())
	must(t, b.Commit())
}

func TestDelete(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	tx := db.Begin()
	must(t, tx.Put("tbl", "k", Row{"v": "1"}))
	must(t, tx.Commit())

	del := db.Begin()
	must(t, del.Delete("tbl", "k"))
	if _, ok, _ := del.Get("tbl", "k"); ok {
		t.Fatal("delete not visible to own txn")
	}
	must(t, del.Commit())
	if _, ok, _ := db.Begin().Get("tbl", "k"); ok {
		t.Fatal("row survived committed delete")
	}
}

func TestScanMergesBufferedWrites(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	seed := db.Begin()
	must(t, seed.Put("tbl", "a", Row{"v": "1"}))
	must(t, seed.Put("tbl", "b", Row{"v": "2"}))
	must(t, seed.Commit())

	tx := db.Begin()
	must(t, tx.Put("tbl", "c", Row{"v": "3"}))
	must(t, tx.Delete("tbl", "a"))
	rows, err := tx.Scan("tbl")
	must(t, err)
	if len(rows) != 2 || rows["b"]["v"] != "2" || rows["c"]["v"] != "3" {
		t.Fatalf("scan = %v", rows)
	}
}

func TestIndexLookup(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("devices", "t", "kind"))
	seed := db.Begin()
	must(t, seed.Put("devices", "d1", Row{"kind": "sensor"}))
	must(t, seed.Put("devices", "d2", Row{"kind": "sensor"}))
	must(t, seed.Put("devices", "d3", Row{"kind": "camera"}))
	must(t, seed.Commit())

	tx := db.Begin()
	pks, err := tx.IndexLookup("devices", "kind", "sensor")
	must(t, err)
	if len(pks) != 2 || pks[0] != "d1" || pks[1] != "d2" {
		t.Fatalf("lookup = %v", pks)
	}
	if _, err := tx.IndexLookup("devices", "nope", "x"); !errors.Is(err, ErrNoIndex) {
		t.Fatalf("err = %v", err)
	}
}

func TestIndexRespectsSnapshotAndUpdates(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("devices", "t", "kind"))
	seed := db.Begin()
	must(t, seed.Put("devices", "d1", Row{"kind": "sensor"}))
	must(t, seed.Commit())

	old := db.Begin()
	// Re-type d1 to camera in a later transaction.
	up := db.Begin()
	must(t, up.Put("devices", "d1", Row{"kind": "camera"}))
	must(t, up.Commit())

	// Old snapshot still sees it as a sensor.
	pks, _ := old.IndexLookup("devices", "kind", "sensor")
	if len(pks) != 1 {
		t.Fatalf("old snapshot lookup = %v", pks)
	}
	// New snapshot: stale index entry must not leak.
	pks, _ = db.Begin().IndexLookup("devices", "kind", "sensor")
	if len(pks) != 0 {
		t.Fatalf("stale index entry leaked: %v", pks)
	}
	pks, _ = db.Begin().IndexLookup("devices", "kind", "camera")
	if len(pks) != 1 {
		t.Fatalf("new value lookup = %v", pks)
	}
}

func TestIndexLookupMergesBufferedWrites(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("devices", "t", "kind"))
	tx := db.Begin()
	must(t, tx.Put("devices", "d9", Row{"kind": "sensor"}))
	pks, _ := tx.IndexLookup("devices", "kind", "sensor")
	if len(pks) != 1 || pks[0] != "d9" {
		t.Fatalf("buffered write not visible to index lookup: %v", pks)
	}
}

func TestTxnDone(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	tx := db.Begin()
	must(t, tx.Commit())
	if err := tx.Put("tbl", "k", Row{}); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("double commit err = %v", err)
	}
	tx2 := db.Begin()
	tx2.Abort()
	if _, _, err := tx2.Get("tbl", "k"); !errors.Is(err, ErrTxnDone) {
		t.Fatalf("err after abort = %v", err)
	}
}

// TestRunTxnCounterUnderReexecution is the paper's §4.1 claim in miniature:
// concurrent, transparently re-executed transactions (as a FaaS platform
// re-runs failed functions) must not lose updates.
func TestRunTxnCounterUnderReexecution(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("counters", "t"))
	seed := db.Begin()
	must(t, seed.Put("counters", "hits", Row{"n": "0"}))
	must(t, seed.Commit())

	const goroutines, perG = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				err := db.RunTxn(func(tx *Txn) error {
					row, _, err := tx.Get("counters", "hits")
					if err != nil {
						return err
					}
					n, _ := strconv.Atoi(row["n"])
					return tx.Put("counters", "hits", Row{"n": strconv.Itoa(n + 1)})
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	row, _, _ := db.Begin().Get("counters", "hits")
	if row["n"] != fmt.Sprint(goroutines*perG) {
		t.Fatalf("counter = %s, want %d (lost updates)", row["n"], goroutines*perG)
	}
}

func TestRunTxnPropagatesUserError(t *testing.T) {
	db := newDB()
	boom := errors.New("boom")
	if err := db.RunTxn(func(*Txn) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
}

func TestTableErrors(t *testing.T) {
	db := newDB()
	tx := db.Begin()
	if _, _, err := tx.Get("none", "k"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	if err := tx.Put("none", "k", Row{}); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
	must(t, db.CreateTable("tbl", "t"))
	if err := db.CreateTable("tbl", "t"); !errors.Is(err, ErrTableExists) {
		t.Fatalf("err = %v", err)
	}
	must(t, db.DropTable("tbl"))
	if err := db.DropTable("tbl"); !errors.Is(err, ErrNoTable) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	db := newDB()
	must(t, db.CreateTable("tbl", "t"))
	tx := db.Begin()
	must(t, tx.Put("tbl", "k", Row{"v": "1"}))
	must(t, tx.Commit())
	tx2 := db.Begin()
	row, _, _ := tx2.Get("tbl", "k")
	row["v"] = "tampered"
	row2, _, _ := db.Begin().Get("tbl", "k")
	if row2["v"] != "1" {
		t.Fatal("Get exposed internal row")
	}
}

func TestMetering(t *testing.T) {
	m := billing.NewMeter()
	db := New(simclock.Real{}, m)
	must(t, db.CreateTable("tbl", "acme"))
	tx := db.Begin()
	must(t, tx.Put("tbl", "k", Row{"v": "1"}))
	must(t, tx.Commit())
	_, _, _ = db.Begin().Get("tbl", "k")
	if m.Units("acme", billing.ResDBWriteUnits) != 1 {
		t.Fatalf("write units = %v", m.Units("acme", billing.ResDBWriteUnits))
	}
	if m.Units("acme", billing.ResDBReadUnits) != 1 {
		t.Fatalf("read units = %v", m.Units("acme", billing.ResDBReadUnits))
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
