// Package kvdb implements the serverless database BaaS of §4.1: a
// multi-version, snapshot-isolated transactional table store with secondary
// indexes. The paper observes that "since most FaaS platforms re-execute
// functions transparently on failure, the transactional semantics offered by
// serverless database services can be crucial for ensuring correctness" —
// RunTxn models exactly that transparent re-execution, and the test suite
// verifies that concurrent re-executed transactions remain correct.
//
// Concurrency control is first-committer-wins snapshot isolation: a
// transaction reads the committed state as of its begin timestamp, buffers
// its writes, and aborts at commit if any written key was committed by
// another transaction in the interim.
package kvdb

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/billing"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by DB operations.
var (
	ErrNoTable     = errors.New("kvdb: table does not exist")
	ErrTableExists = errors.New("kvdb: table already exists")
	ErrConflict    = errors.New("kvdb: write-write conflict, transaction aborted")
	ErrTxnDone     = errors.New("kvdb: transaction already committed or aborted")
	ErrNoIndex     = errors.New("kvdb: no index on column")
)

// Row is one record: column name → value. The primary key is kept outside
// the row.
type Row map[string]string

func (r Row) clone() Row {
	c := make(Row, len(r))
	for k, v := range r {
		c[k] = v
	}
	return c
}

type rowVersion struct {
	commitTS int64
	deleted  bool
	row      Row
}

type table struct {
	name    string
	tenant  string
	rows    map[string][]rowVersion                   // pk → versions, commitTS ascending
	indexes map[string]map[string]map[string]struct{} // col → value → pk set
}

// DB is an in-process serverless database instance.
type DB struct {
	clock simclock.Clock
	meter *billing.Meter

	mu     sync.Mutex
	ts     int64 // commit timestamp oracle
	tables map[string]*table

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsGetLat    *obs.Histogram
	obsCommitLat *obs.Histogram
	obsConflicts *obs.Counter
}

// New creates an empty DB. meter may be nil.
func New(clock simclock.Clock, meter *billing.Meter) *DB {
	return &DB{clock: clock, meter: meter, tables: map[string]*table{}}
}

// SetObs attaches observability instruments. Call before traffic starts.
func (db *DB) SetObs(r *obs.Registry) {
	db.obsGetLat = r.Histogram("kvdb.get.latency")
	db.obsCommitLat = r.Histogram("kvdb.commit.latency")
	db.obsConflicts = r.Counter("kvdb.txn.conflicts")
}

// CreateTable makes a table billed to tenant, with secondary indexes on the
// named columns.
func (db *DB) CreateTable(name, tenant string, indexCols ...string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; ok {
		return fmt.Errorf("%w: %q", ErrTableExists, name)
	}
	t := &table{name: name, tenant: tenant, rows: map[string][]rowVersion{}, indexes: map[string]map[string]map[string]struct{}{}}
	for _, c := range indexCols {
		t.indexes[c] = map[string]map[string]struct{}{}
	}
	db.tables[name] = t
	return nil
}

// DropTable removes a table and its data.
func (db *DB) DropTable(name string) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	delete(db.tables, name)
	return nil
}

type writeOp struct {
	row     Row
	deleted bool
}

type writeKey struct {
	table string
	pk    string
}

// Txn is a snapshot-isolated transaction. Not safe for concurrent use by
// multiple goroutines.
type Txn struct {
	db     *DB
	readTS int64
	writes map[writeKey]writeOp
	order  []writeKey // write order, for deterministic index updates
	done   bool
}

// Begin starts a transaction reading the latest committed snapshot.
func (db *DB) Begin() *Txn {
	db.mu.Lock()
	defer db.mu.Unlock()
	return &Txn{db: db, readTS: db.ts, writes: map[writeKey]writeOp{}}
}

// Get returns the row for pk visible in this transaction's snapshot,
// including the transaction's own buffered writes.
func (tx *Txn) Get(tableName, pk string) (Row, bool, error) {
	if tx.done {
		return nil, false, ErrTxnDone
	}
	if tx.db.obsGetLat != nil {
		start := tx.db.clock.Now()
		defer func() { tx.db.obsGetLat.Observe(tx.db.clock.Now().Sub(start)) }()
	}
	if w, ok := tx.writes[writeKey{tableName, pk}]; ok {
		if w.deleted {
			return nil, false, nil
		}
		return w.row.clone(), true, nil
	}
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	t, ok := tx.db.tables[tableName]
	if !ok {
		return nil, false, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	tx.db.meterAdd(t.tenant, billing.ResDBReadUnits, 1)
	v, ok := visible(t.rows[pk], tx.readTS)
	if !ok || v.deleted {
		return nil, false, nil
	}
	return v.row.clone(), true, nil
}

// Put buffers a full-row write.
func (tx *Txn) Put(tableName, pk string, row Row) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := tx.checkTable(tableName); err != nil {
		return err
	}
	k := writeKey{tableName, pk}
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{row: row.clone()}
	return nil
}

// Delete buffers a row deletion.
func (tx *Txn) Delete(tableName, pk string) error {
	if tx.done {
		return ErrTxnDone
	}
	if err := tx.checkTable(tableName); err != nil {
		return err
	}
	k := writeKey{tableName, pk}
	if _, seen := tx.writes[k]; !seen {
		tx.order = append(tx.order, k)
	}
	tx.writes[k] = writeOp{deleted: true}
	return nil
}

// Scan returns every (pk, row) visible in the snapshot, pk-sorted, merged
// with the transaction's buffered writes.
func (tx *Txn) Scan(tableName string) (map[string]Row, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	tx.db.mu.Lock()
	t, ok := tx.db.tables[tableName]
	if !ok {
		tx.db.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	out := map[string]Row{}
	for pk, versions := range t.rows {
		if v, ok := visible(versions, tx.readTS); ok && !v.deleted {
			out[pk] = v.row.clone()
		}
	}
	tx.db.meterAdd(t.tenant, billing.ResDBReadUnits, float64(len(out)))
	tx.db.mu.Unlock()
	for k, w := range tx.writes {
		if k.table != tableName {
			continue
		}
		if w.deleted {
			delete(out, k.pk)
		} else {
			out[k.pk] = w.row.clone()
		}
	}
	return out, nil
}

// ScanPrefix returns every (pk, row) visible in the snapshot whose primary
// key begins with prefix, merged with the transaction's buffered writes —
// the range-query primitive web/IoT registries page with.
func (tx *Txn) ScanPrefix(tableName, prefix string) (map[string]Row, error) {
	all, err := tx.Scan(tableName)
	if err != nil {
		return nil, err
	}
	out := map[string]Row{}
	for pk, row := range all {
		if strings.HasPrefix(pk, prefix) {
			out[pk] = row
		}
	}
	return out, nil
}

// IndexLookup returns the pks of rows whose indexed column equals value in
// this snapshot, sorted. Buffered writes of this transaction are merged in.
func (tx *Txn) IndexLookup(tableName, column, value string) ([]string, error) {
	if tx.done {
		return nil, ErrTxnDone
	}
	tx.db.mu.Lock()
	t, ok := tx.db.tables[tableName]
	if !ok {
		tx.db.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoTable, tableName)
	}
	idx, ok := t.indexes[column]
	if !ok {
		tx.db.mu.Unlock()
		return nil, fmt.Errorf("%w: %s.%s", ErrNoIndex, tableName, column)
	}
	set := map[string]bool{}
	// Index entries are insert-only hints; each candidate is verified
	// against the snapshot so stale entries never leak.
	for pk := range idx[value] {
		if v, ok := visible(t.rows[pk], tx.readTS); ok && !v.deleted && v.row[column] == value {
			set[pk] = true
		}
	}
	tx.db.meterAdd(t.tenant, billing.ResDBReadUnits, 1)
	tx.db.mu.Unlock()
	for k, w := range tx.writes {
		if k.table != tableName {
			continue
		}
		if w.deleted {
			delete(set, k.pk)
		} else if w.row[column] == value {
			set[k.pk] = true
		} else {
			delete(set, k.pk)
		}
	}
	out := make([]string, 0, len(set))
	for pk := range set {
		out = append(out, pk)
	}
	sort.Strings(out)
	return out, nil
}

// Commit atomically applies the buffered writes, or returns ErrConflict if
// any written key was committed by another transaction since this one began.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	tx.done = true
	if len(tx.writes) == 0 {
		return nil
	}
	if tx.db.obsCommitLat != nil {
		start := tx.db.clock.Now()
		defer func() { tx.db.obsCommitLat.Observe(tx.db.clock.Now().Sub(start)) }()
	}
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	// First-committer-wins validation.
	for k := range tx.writes {
		t, ok := tx.db.tables[k.table]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoTable, k.table)
		}
		if vs := t.rows[k.pk]; len(vs) > 0 && vs[len(vs)-1].commitTS > tx.readTS {
			tx.db.obsConflicts.Inc()
			return fmt.Errorf("%w: key %s/%s", ErrConflict, k.table, k.pk)
		}
	}
	tx.db.ts++
	commitTS := tx.db.ts
	for _, k := range tx.order {
		w := tx.writes[k]
		t := tx.db.tables[k.table]
		t.rows[k.pk] = append(t.rows[k.pk], rowVersion{commitTS: commitTS, deleted: w.deleted, row: w.row})
		if !w.deleted {
			for col, idx := range t.indexes {
				if val, ok := w.row[col]; ok {
					if idx[val] == nil {
						idx[val] = map[string]struct{}{}
					}
					idx[val][k.pk] = struct{}{}
				}
			}
		}
		tx.db.meterAdd(t.tenant, billing.ResDBWriteUnits, 1)
	}
	return nil
}

// Abort discards the transaction's buffered writes.
func (tx *Txn) Abort() {
	tx.done = true
	tx.writes = nil
}

// MaxTxnRetries bounds RunTxn's retry loop.
const MaxTxnRetries = 64

// RunTxn executes fn in a transaction, transparently re-executing it on
// conflict — the same at-least-once re-execution discipline FaaS platforms
// apply to failed functions (§4.1). fn must be idempotent apart from its
// transactional effects.
func (db *DB) RunTxn(fn func(tx *Txn) error) error {
	for i := 0; i < MaxTxnRetries; i++ {
		tx := db.Begin()
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		err := tx.Commit()
		if err == nil {
			return nil
		}
		if !errors.Is(err, ErrConflict) {
			return err
		}
		// Brief backoff keeps herds of re-executed functions from
		// re-colliding in lockstep.
		db.clock.Sleep(time.Duration(i+1) * time.Millisecond)
	}
	return fmt.Errorf("%w: retries exhausted", ErrConflict)
}

// Vacuum reclaims row versions that no transaction reading at or after
// horizon can observe: for every key it keeps all versions newer than
// horizon plus the newest version at or below it (the one such readers
// resolve to). Snapshots older than horizon may lose history, as with any
// MVCC vacuum; the caller picks a horizon no newer than its oldest live
// snapshot. It returns the number of versions dropped.
func (db *DB) Vacuum(horizon int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	for _, t := range db.tables {
		for pk, versions := range t.rows {
			// Find the newest version with commitTS ≤ horizon.
			keepFrom := 0
			for i, v := range versions {
				if v.commitTS <= horizon {
					keepFrom = i
				}
			}
			if keepFrom > 0 {
				dropped += keepFrom
				t.rows[pk] = append([]rowVersion{}, versions[keepFrom:]...)
			}
			// A lone deletion tombstone at or below the horizon is fully
			// reclaimable: every current reader sees "absent" either way.
			vs := t.rows[pk]
			if len(vs) == 1 && vs[0].deleted && vs[0].commitTS <= horizon {
				delete(t.rows, pk)
				dropped++
			}
		}
	}
	return dropped
}

// CommitTS returns the current commit timestamp (for tests and tooling).
func (db *DB) CommitTS() int64 {
	db.mu.Lock()
	defer db.mu.Unlock()
	return db.ts
}

func (tx *Txn) checkTable(name string) error {
	tx.db.mu.Lock()
	defer tx.db.mu.Unlock()
	if _, ok := tx.db.tables[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	return nil
}

// visible returns the newest version with commitTS ≤ readTS.
func visible(versions []rowVersion, readTS int64) (rowVersion, bool) {
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i].commitTS <= readTS {
			return versions[i], true
		}
	}
	return rowVersion{}, false
}

func (db *DB) meterAdd(tenant, resource string, units float64) {
	if db.meter != nil {
		db.meter.Add(billing.Record{Tenant: tenant, Resource: resource, Units: units, At: db.clock.Now()})
	}
}
