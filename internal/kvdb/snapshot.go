package kvdb

import (
	"fmt"
	"sort"
)

// Verification reads for the conformance explorer (internal/conform): pure
// lock-only snapshots of the database's committed state, paying no modelled
// latency and allocating copies — the explorer compares final states across
// interleavings, so these reads must not perturb the clock or alias live
// rows.

// Tables returns every table name, sorted.
func (db *DB) Tables() []string {
	db.mu.Lock()
	defer db.mu.Unlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LatestRows returns deep copies of every live row of a table as of the
// newest commit: the version visible at the current timestamp oracle,
// excluding deletions.
func (db *DB) LatestRows(name string) (map[string]Row, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoTable, name)
	}
	out := map[string]Row{}
	for pk, versions := range t.rows {
		if v, ok := visible(versions, db.ts); ok && !v.deleted {
			out[pk] = v.row.clone()
		}
	}
	return out, nil
}
