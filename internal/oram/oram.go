// Package oram implements Path ORAM (Stefanov et al., the paper's citation
// [169]) over the blob store. §6 "Security" observes that FaaS platforms
// "lead to increased network communications due to external storage
// accesses, leaking more information to a network adversary" and proposes
// "security primitives that hide network access patterns in the cloud,
// e.g., using ORAMs".
//
// The client keeps a position map and a stash; the untrusted store holds a
// binary tree of fixed-size buckets. Every logical access — read or write,
// any block — touches exactly one root-to-leaf path (L+1 bucket reads
// followed by L+1 bucket writes), so the server observes a data-independent
// access pattern. Confidentiality would additionally need encryption of
// bucket contents; this reproduction models the *access-pattern* property,
// which is what the paper's claim concerns, and experiment E23 measures its
// bandwidth/latency overhead.
package oram

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/blob"
)

// Errors returned by the client.
var (
	ErrNoBlock  = errors.New("oram: block does not exist")
	ErrBadBlock = errors.New("oram: block id out of range")
	ErrOverflow = errors.New("oram: stash overflow")
)

// Z is the bucket capacity (slots per tree node), per the Path ORAM paper.
const Z = 4

// stashLimit bounds client memory; Path ORAM's stash is O(log N) w.h.p.
const stashLimit = 512

type slot struct {
	ID   int64  `json:"id"` // -1 = empty
	Data []byte `json:"data,omitempty"`
}

type bucket [Z]slot

// Client is a Path ORAM client over one blob bucket.
type Client struct {
	store  *blob.Store
	bucket string
	prefix string

	n      int   // logical block capacity
	levels int   // tree height: leaves at level `levels`
	leaves int64 // number of leaves

	pos   map[int64]int64 // block id → leaf
	stash map[int64][]byte
	rng   *rand.Rand

	// Reads and Writes count bucket-level store operations (for the
	// overhead measurement of E23).
	Reads, Writes int64
}

// New initializes an ORAM of capacity n blocks inside the given blob bucket
// (which must exist), writing the empty tree. seed drives the position
// randomness.
func New(store *blob.Store, bucketName, prefix string, n int, seed int64) (*Client, error) {
	if n < 1 {
		n = 1
	}
	levels := 0
	for (int64(1) << levels) < int64(n) {
		levels++
	}
	c := &Client{
		store:  store,
		bucket: bucketName,
		prefix: prefix,
		n:      n,
		levels: levels,
		leaves: 1 << levels,
		pos:    map[int64]int64{},
		stash:  map[int64][]byte{},
		rng:    rand.New(rand.NewSource(seed)),
	}
	// The tree is lazily materialized: a bucket object that does not exist
	// yet reads as empty, so no O(N) initialization pass is needed.
	return c, nil
}

// Capacity returns the logical block capacity.
func (c *Client) Capacity() int { return c.n }

// Levels returns the tree height (path length is Levels+1 buckets).
func (c *Client) Levels() int { return c.levels }

// StashSize returns the current client stash occupancy.
func (c *Client) StashSize() int { return len(c.stash) }

// Write stores data under block id.
func (c *Client) Write(id int64, data []byte) error {
	_, err := c.access(id, data, true)
	return err
}

// Read returns block id's data, or ErrNoBlock.
func (c *Client) Read(id int64) ([]byte, error) {
	return c.access(id, nil, false)
}

// access is the Path ORAM access procedure: remap the block to a fresh
// random leaf, read the old path into the stash, serve the operation, and
// write the path back greedily.
func (c *Client) access(id int64, data []byte, isWrite bool) ([]byte, error) {
	if id < 0 || id >= int64(c.n) {
		return nil, fmt.Errorf("%w: %d (capacity %d)", ErrBadBlock, id, c.n)
	}
	oldLeaf, existed := c.pos[id]
	if !existed {
		oldLeaf = c.rng.Int63n(c.leaves)
	}
	c.pos[id] = c.rng.Int63n(c.leaves)

	// Read the full path into the stash.
	path := c.pathIndices(oldLeaf)
	for _, idx := range path {
		b, err := c.readBucket(idx)
		if err != nil {
			return nil, err
		}
		for _, s := range b {
			if s.ID >= 0 {
				c.stash[s.ID] = s.Data
			}
		}
	}

	// Serve the request from the stash.
	var out []byte
	cur, inStash := c.stash[id]
	if isWrite {
		c.stash[id] = append([]byte(nil), data...)
	} else {
		if !inStash {
			// Absent block: still complete the path write-back so the
			// access pattern stays indistinguishable.
			defer delete(c.stash, id)
		}
		out = append([]byte(nil), cur...)
	}

	// Write the path back, deepest level first, greedily evicting stash
	// blocks whose assigned leaf shares the bucket's subtree.
	for lvl := c.levels; lvl >= 0; lvl-- {
		idx := path[lvl]
		var b bucket
		filled := 0
		for sid, sdata := range c.stash {
			if filled == Z {
				break
			}
			if sid == id && !isWrite && !inStash {
				continue // phantom read entry; not real data
			}
			if c.bucketOnPath(c.pos[sid], lvl) == idx {
				b[filled] = slot{ID: sid, Data: sdata}
				filled++
				delete(c.stash, sid)
			}
		}
		for i := filled; i < Z; i++ {
			b[i].ID = -1
		}
		if err := c.writeBucket(idx, b); err != nil {
			return nil, err
		}
	}
	if len(c.stash) > stashLimit {
		return nil, fmt.Errorf("%w: %d blocks", ErrOverflow, len(c.stash))
	}
	if !isWrite && !inStash {
		return nil, fmt.Errorf("%w: %d", ErrNoBlock, id)
	}
	return out, nil
}

// pathIndices returns the bucket indices from root (level 0) to the leaf.
func (c *Client) pathIndices(leaf int64) []int64 {
	out := make([]int64, c.levels+1)
	for lvl := 0; lvl <= c.levels; lvl++ {
		out[lvl] = c.bucketOnPath(leaf, lvl)
	}
	return out
}

// bucketOnPath returns the index (heap numbering) of the level-lvl bucket on
// the path to leaf.
func (c *Client) bucketOnPath(leaf int64, lvl int) int64 {
	// Heap numbering: root = 0; leaf node index = 2^levels - 1 + leaf.
	node := (int64(1) << c.levels) - 1 + leaf
	for i := c.levels; i > lvl; i-- {
		node = (node - 1) / 2
	}
	return node
}

func (c *Client) bucketKey(idx int64) string {
	return fmt.Sprintf("%s/bucket/%08d", c.prefix, idx)
}

func (c *Client) readBucket(idx int64) (bucket, error) {
	var b bucket
	raw, _, err := c.store.Get(c.bucket, c.bucketKey(idx))
	if errors.Is(err, blob.ErrNoObject) {
		// Lazily materialized: an unwritten bucket is empty. The server
		// still observed a fetch, so the access pattern is unchanged.
		c.Reads++
		for i := range b {
			b[i].ID = -1
		}
		return b, nil
	}
	if err != nil {
		return b, err
	}
	c.Reads++
	err = json.Unmarshal(raw, &b)
	return b, err
}

func (c *Client) writeBucket(idx int64, b bucket) error {
	raw, _ := json.Marshal(b)
	_, err := c.store.Put(c.bucket, c.bucketKey(idx), raw, blob.PutOptions{})
	if err == nil {
		c.Writes++
	}
	return err
}
