package oram

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blob"
	"repro/internal/simclock"
)

func newORAM(t *testing.T, n int, seed int64) *Client {
	t.Helper()
	store := blob.New(simclock.Real{}, nil, blob.LatencyModel{})
	if err := store.CreateBucket("oram", "t"); err != nil {
		t.Fatal(err)
	}
	c, err := New(store, "oram", "tree", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWriteReadRoundTrip(t *testing.T) {
	c := newORAM(t, 16, 1)
	if err := c.Write(3, []byte("secret")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Read(3)
	if err != nil || string(got) != "secret" {
		t.Fatalf("Read = %q %v", got, err)
	}
	// Overwrite.
	if err := c.Write(3, []byte("updated")); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Read(3)
	if string(got) != "updated" {
		t.Fatalf("after overwrite: %q", got)
	}
}

func TestReadAbsentBlock(t *testing.T) {
	c := newORAM(t, 8, 2)
	if _, err := c.Read(5); !errors.Is(err, ErrNoBlock) {
		t.Fatalf("err = %v", err)
	}
	if _, err := c.Read(99); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("err = %v", err)
	}
	if err := c.Write(-1, nil); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("err = %v", err)
	}
}

// TestModelEquivalence: a random read/write sequence must match a map model.
func TestModelEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		c := newORAM(t, 32, seed)
		rng := rand.New(rand.NewSource(seed + 1))
		model := map[int64]string{}
		for op := 0; op < 150; op++ {
			id := rng.Int63n(32)
			if rng.Intn(2) == 0 {
				val := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := c.Write(id, []byte(val)); err != nil {
					return false
				}
				model[id] = val
			} else {
				got, err := c.Read(id)
				want, exists := model[id]
				if exists != (err == nil) {
					return false
				}
				if exists && string(got) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// TestAccessPatternUniform: every access touches exactly one root-to-leaf
// path — (L+1) bucket reads and (L+1) bucket writes — independent of which
// block is accessed or whether it is a read or a write. This is the §6
// property: the server cannot distinguish accesses.
func TestAccessPatternUniform(t *testing.T) {
	c := newORAM(t, 64, 3)
	pathLen := int64(c.Levels() + 1)
	ops := []func() error{
		func() error { return c.Write(0, []byte("a")) },
		func() error { return c.Write(63, []byte("b")) },
		func() error { _, err := c.Read(0); return err },
		func() error { _, err := c.Read(63); return err },
		func() error { _, err := c.Read(17); return err }, // absent block
	}
	for i, op := range ops {
		r0, w0 := c.Reads, c.Writes
		_ = op() // absent-read error is fine; the pattern is what matters
		if c.Reads-r0 != pathLen || c.Writes-w0 != pathLen {
			t.Fatalf("op %d: touched %d reads / %d writes, want %d each (uniform path)",
				i, c.Reads-r0, c.Writes-w0, pathLen)
		}
	}
}

// TestPositionRemapping: accessing the same block repeatedly must not keep
// touching the same leaf path (the position map re-randomizes every access).
func TestPositionRemapping(t *testing.T) {
	c := newORAM(t, 64, 4)
	if err := c.Write(7, []byte("x")); err != nil {
		t.Fatal(err)
	}
	leaves := map[int64]bool{}
	for i := 0; i < 30; i++ {
		leaves[c.pos[7]] = true
		if _, err := c.Read(7); err != nil {
			t.Fatal(err)
		}
	}
	if len(leaves) < 10 {
		t.Fatalf("block 7 stayed on %d distinct leaves over 30 accesses — positions not re-randomized", len(leaves))
	}
}

// TestStashStaysBounded: sustained random load must not blow up the stash
// (Path ORAM's stash is O(log N) with overwhelming probability).
func TestStashStaysBounded(t *testing.T) {
	c := newORAM(t, 128, 5)
	rng := rand.New(rand.NewSource(6))
	maxStash := 0
	for op := 0; op < 2000; op++ {
		id := rng.Int63n(128)
		if err := c.Write(id, []byte("data")); err != nil {
			t.Fatal(err)
		}
		if s := c.StashSize(); s > maxStash {
			maxStash = s
		}
	}
	if maxStash > 60 {
		t.Fatalf("stash peaked at %d for N=128 — should stay O(log N)", maxStash)
	}
}

func TestManyBlocksPersist(t *testing.T) {
	c := newORAM(t, 64, 7)
	for i := int64(0); i < 64; i++ {
		if err := c.Write(i, []byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 64; i++ {
		got, err := c.Read(i)
		if err != nil || string(got) != fmt.Sprintf("block-%d", i) {
			t.Fatalf("block %d = %q %v", i, got, err)
		}
	}
}
