// Package analytics implements the PyWren-style serverless data analytics
// engine of §5.1 ([114]): MapReduce jobs whose mappers and reducers run as
// stateless functions on the FaaS platform, exchanging intermediate
// ("shuffle") state through an external store — either the blob store (the
// persistent-store path PyWren used) or a Jiffy namespace (the ephemeral
// path §4.4 argues for). The choice is an interface, so experiment E4's
// comparison falls out naturally.
package analytics

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"repro/internal/blob"
	"repro/internal/faas"
	"repro/internal/jiffy"
)

// ErrJobFailed wraps worker failures.
var ErrJobFailed = errors.New("analytics: job failed")

// KV is one intermediate key-value pair.
type KV struct {
	K string `json:"k"`
	V string `json:"v"`
}

// MapFunc turns one input chunk into intermediate pairs.
type MapFunc func(chunk string) []KV

// ReduceFunc folds all values of one key into a result.
type ReduceFunc func(key string, values []string) string

// ShuffleStore is where mappers leave partitions for reducers.
type ShuffleStore interface {
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
}

// BlobShuffle adapts a blob bucket as a ShuffleStore.
type BlobShuffle struct {
	Store  *blob.Store
	Bucket string
}

// Put implements ShuffleStore.
func (b BlobShuffle) Put(key string, data []byte) error {
	_, err := b.Store.Put(b.Bucket, key, data, blob.PutOptions{})
	return err
}

// Get implements ShuffleStore.
func (b BlobShuffle) Get(key string) ([]byte, error) {
	data, _, err := b.Store.Get(b.Bucket, key)
	return data, err
}

// JiffyShuffle adapts a Jiffy namespace as a ShuffleStore.
type JiffyShuffle struct {
	NS *jiffy.Namespace
}

// Put implements ShuffleStore.
func (j JiffyShuffle) Put(key string, data []byte) error { return j.NS.Put(key, data) }

// Get implements ShuffleStore. Shuffle partitions are write-once (each
// mapper writes its own key) and only read after the map barrier, so the
// zero-copy view is safe: nothing overwrites the key while reducers decode
// it, and json.Unmarshal does not retain or mutate the input bytes.
func (j JiffyShuffle) Get(key string) ([]byte, error) { return j.NS.GetView(key) }

// Job describes one MapReduce run.
type Job struct {
	Name     string
	Reducers int
	Map      MapFunc
	Reduce   ReduceFunc
	// Tenant owns the worker functions (billing). Default "analytics".
	Tenant string
	// WorkerConfig configures the mapper/reducer functions.
	WorkerConfig faas.Config
}

// Run executes the job on the platform: one mapper invocation per input
// chunk, then Reducers reducer invocations, shuffling through store. It
// returns the final key→value results.
func Run(p *faas.Platform, store ShuffleStore, job Job, chunks []string) (map[string]string, error) {
	if job.Reducers <= 0 {
		job.Reducers = 1
	}
	if job.Tenant == "" {
		job.Tenant = "analytics"
	}
	mapperName := "mr-" + job.Name + "-map"
	reducerName := "mr-" + job.Name + "-reduce"

	// Mapper: chunk in, R partition files out.
	mapper := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct {
			Index int    `json:"index"`
			Chunk string `json:"chunk"`
		}
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		pairs := job.Map(in.Chunk)
		parts := make([][]KV, job.Reducers)
		for _, kv := range pairs {
			r := int(hashString(kv.K)) % job.Reducers
			parts[r] = append(parts[r], kv)
		}
		for r, part := range parts {
			data, _ := json.Marshal(part)
			if err := store.Put(shuffleKey(job.Name, in.Index, r), data); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	// Reducer: M partition files in, grouped results out.
	nChunks := len(chunks)
	reducer := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct {
			Partition int `json:"partition"`
		}
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		grouped := map[string][]string{}
		for m := 0; m < nChunks; m++ {
			data, err := store.Get(shuffleKey(job.Name, m, in.Partition))
			if err != nil {
				return nil, err
			}
			var part []KV
			if err := json.Unmarshal(data, &part); err != nil {
				return nil, err
			}
			for _, kv := range part {
				grouped[kv.K] = append(grouped[kv.K], kv.V)
			}
		}
		keys := make([]string, 0, len(grouped))
		for k := range grouped {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([]KV, 0, len(keys))
		for _, k := range keys {
			out = append(out, KV{K: k, V: job.Reduce(k, grouped[k])})
		}
		return json.Marshal(out)
	}

	if err := p.Register(mapperName, job.Tenant, mapper, job.WorkerConfig); err != nil {
		return nil, err
	}
	defer p.Unregister(mapperName)
	if err := p.Register(reducerName, job.Tenant, reducer, job.WorkerConfig); err != nil {
		return nil, err
	}
	defer p.Unregister(reducerName)

	// Map phase: all chunks in parallel.
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i, chunk := range chunks {
		payload, _ := json.Marshal(struct {
			Index int    `json:"index"`
			Chunk string `json:"chunk"`
		}{i, chunk})
		wg.Add(1)
		p.InvokeAsync(mapperName, payload, func(_ faas.Result, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			wg.Done()
		})
	}
	p.Clock().BlockOn(wg.Wait)
	if firstErr != nil {
		return nil, fmt.Errorf("%w: map phase: %v", ErrJobFailed, firstErr)
	}

	// Reduce phase: all partitions in parallel.
	results := make([][]KV, job.Reducers)
	for r := 0; r < job.Reducers; r++ {
		r := r
		payload, _ := json.Marshal(struct {
			Partition int `json:"partition"`
		}{r})
		wg.Add(1)
		p.InvokeAsync(reducerName, payload, func(res faas.Result, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				var out []KV
				if uerr := json.Unmarshal(res.Output, &out); uerr == nil {
					results[r] = out
				}
			}
			mu.Unlock()
			wg.Done()
		})
	}
	p.Clock().BlockOn(wg.Wait)
	if firstErr != nil {
		return nil, fmt.Errorf("%w: reduce phase: %v", ErrJobFailed, firstErr)
	}

	final := map[string]string{}
	for _, part := range results {
		for _, kv := range part {
			final[kv.K] = kv.V
		}
	}
	return final, nil
}

// WordCountMap splits a chunk into lowercase words, emitting (word, "1").
func WordCountMap(chunk string) []KV {
	fields := strings.FieldsFunc(strings.ToLower(chunk), func(r rune) bool {
		return !('a' <= r && r <= 'z') && !('0' <= r && r <= '9')
	})
	out := make([]KV, len(fields))
	for i, f := range fields {
		out[i] = KV{K: f, V: "1"}
	}
	return out
}

// SumReduce adds integer-valued strings.
func SumReduce(_ string, values []string) string {
	sum := 0
	for _, v := range values {
		var n int
		fmt.Sscanf(v, "%d", &n)
		sum += n
	}
	return fmt.Sprint(sum)
}

func shuffleKey(job string, mapper, partition int) string {
	return fmt.Sprintf("shuffle/%s/m%05d-r%05d", job, mapper, partition)
}

func hashString(s string) uint32 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return h.Sum32()
}
