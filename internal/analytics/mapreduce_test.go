package analytics

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/simclock"
)

func TestWordCountMap(t *testing.T) {
	kvs := WordCountMap("Hello, hello world! 42")
	if len(kvs) != 4 {
		t.Fatalf("kvs = %v", kvs)
	}
	if kvs[0].K != "hello" || kvs[1].K != "hello" || kvs[2].K != "world" || kvs[3].K != "42" {
		t.Fatalf("kvs = %v", kvs)
	}
}

func TestSumReduce(t *testing.T) {
	if got := SumReduce("k", []string{"1", "2", "3"}); got != "6" {
		t.Fatalf("sum = %s", got)
	}
}

func wordCountJob(reducers int) Job {
	return Job{
		Name:     "wc",
		Reducers: reducers,
		Map:      WordCountMap,
		Reduce:   SumReduce,
		WorkerConfig: faas.Config{
			ColdStart:  time.Millisecond,
			MaxRetries: -1,
		},
	}
}

func TestWordCountOnBlobShuffle(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	store := blob.New(v, nil, blob.LatencyModel{})
	chunks := []string{
		"the quick brown fox",
		"the lazy dog and the quick cat",
		"fox and dog",
	}
	var result map[string]string
	v.Run(func() {
		if err := store.CreateBucket("shuffle", "t"); err != nil {
			t.Error(err)
			return
		}
		var err error
		result, err = Run(p, BlobShuffle{Store: store, Bucket: "shuffle"}, wordCountJob(3), chunks)
		if err != nil {
			t.Error(err)
		}
	})
	want := map[string]string{"the": "3", "quick": "2", "fox": "2", "dog": "2", "and": "2", "brown": "1", "lazy": "1", "cat": "1"}
	for k, w := range want {
		if result[k] != w {
			t.Fatalf("count[%s] = %s, want %s (all: %v)", k, result[k], w, result)
		}
	}
}

func TestWordCountOnJiffyShuffle(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	ctrl := jiffy.NewController(v, nil, jiffy.Config{Latency: jiffy.NoLatency})
	ctrl.AddNode("n0", 32)
	var result map[string]string
	v.Run(func() {
		ns, err := ctrl.CreateNamespace("/wc", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 4})
		if err != nil {
			t.Error(err)
			return
		}
		result, err = Run(p, JiffyShuffle{NS: ns}, wordCountJob(2), []string{"a b a", "b a"})
		if err != nil {
			t.Error(err)
		}
	})
	if result["a"] != "3" || result["b"] != "2" {
		t.Fatalf("result = %v", result)
	}
}

func TestMapReduceMatchesSerialBaseline(t *testing.T) {
	// A larger randomized corpus: distributed result must equal the serial
	// single-node count exactly.
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	store := blob.New(v, nil, blob.LatencyModel{})

	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	var chunks []string
	serial := map[string]int{}
	for c := 0; c < 8; c++ {
		var sb strings.Builder
		for i := 0; i < 50; i++ {
			w := words[(c*50+i*7)%len(words)]
			sb.WriteString(w + " ")
			serial[w]++
		}
		chunks = append(chunks, sb.String())
	}
	var result map[string]string
	v.Run(func() {
		if err := store.CreateBucket("shuffle", "t"); err != nil {
			t.Error(err)
			return
		}
		var err error
		result, err = Run(p, BlobShuffle{Store: store, Bucket: "shuffle"}, wordCountJob(4), chunks)
		if err != nil {
			t.Error(err)
		}
	})
	if len(result) != len(serial) {
		t.Fatalf("distinct words %d, want %d", len(result), len(serial))
	}
	for w, n := range serial {
		if result[w] != fmt.Sprint(n) {
			t.Fatalf("count[%s] = %s, want %d", w, result[w], n)
		}
	}
}

func TestJobFailurePropagates(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	store := blob.New(v, nil, blob.LatencyModel{})
	job := Job{
		Name:         "boom",
		Reducers:     1,
		Map:          func(string) []KV { return nil },
		Reduce:       SumReduce,
		WorkerConfig: faas.Config{ColdStart: time.Millisecond, MaxRetries: -1},
	}
	v.Run(func() {
		// No bucket created: mapper Puts fail, Run must surface the error.
		if _, err := Run(p, BlobShuffle{Store: store, Bucket: "missing"}, job, []string{"x"}); err == nil {
			t.Error("expected failure, got nil")
		}
	})
}

func TestMapPhaseRunsInParallel(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	store := blob.New(v, nil, blob.LatencyModel{})
	slowMap := func(chunk string) []KV { return []KV{{K: "k", V: "1"}} }
	job := Job{
		Name:         "slow",
		Reducers:     1,
		Map:          slowMap,
		Reduce:       SumReduce,
		WorkerConfig: faas.Config{ColdStart: time.Millisecond, MaxRetries: -1},
	}
	// Give mappers 100ms of modelled work via the shuffle store latency.
	slowStore := blob.New(v, nil, blob.LatencyModel{PerOp: 100 * time.Millisecond})
	_ = store
	end := v.Run(func() {
		if err := slowStore.CreateBucket("shuffle", "t"); err != nil {
			t.Error(err)
			return
		}
		chunks := make([]string, 8)
		if _, err := Run(p, BlobShuffle{Store: slowStore, Bucket: "shuffle"}, job, chunks); err != nil {
			t.Error(err)
		}
	})
	// 8 mappers × 100ms store put + reducer reads (8 × 100ms sequential)
	// ≈ 0.1 + 0.8 + small; serial mapping would add ≥0.8 more.
	if el := end.Sub(simclock.Epoch); el > 1500*time.Millisecond {
		t.Fatalf("map phase appears serialized: %v", el)
	}
}
