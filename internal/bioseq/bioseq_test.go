package bioseq

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/faas"
	"repro/internal/simclock"
)

func TestSmithWatermanKnownValues(t *testing.T) {
	s := DefaultScoring()
	cases := []struct {
		a, b string
		want int
	}{
		{"ACACACTA", "AGCACACA", 12}, // classic SW example with +2/-1/-1
		{"AAAA", "AAAA", 8},
		{"AAAA", "CCCC", 0}, // no positive local alignment
		{"", "ACGT", 0},
		{"A", "A", 2},
	}
	for _, c := range cases {
		if got := SmithWaterman(c.a, c.b, s); got != c.want {
			t.Errorf("SW(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestSmithWatermanProperties(t *testing.T) {
	s := DefaultScoring()
	// Symmetry and self-alignment maximality.
	f := func(seedA, seedB int8) bool {
		a := RandomProtein(20+int(seedA&15), int64(seedA))
		b := RandomProtein(20+int(seedB&15), int64(seedB))
		if SmithWaterman(a, b, s) != SmithWaterman(b, a, s) {
			return false
		}
		// Self alignment = 2·len (full match).
		if SmithWaterman(a, a, s) != 2*len(a) {
			return false
		}
		// Score against any other sequence can't beat self-alignment of
		// the shorter sequence.
		max := 2 * len(a)
		if len(b) < len(a) {
			max = 2 * len(b)
		}
		return SmithWaterman(a, b, s) <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomProteinsAlphabetAndDeterminism(t *testing.T) {
	seqs := RandomProteins(10, 30, 60, 9)
	if len(seqs) != 10 {
		t.Fatalf("count = %d", len(seqs))
	}
	for _, s := range seqs {
		if len(s) < 30 || len(s) > 60 {
			t.Fatalf("length %d out of range", len(s))
		}
		for _, c := range s {
			ok := false
			for _, a := range aminoAcids {
				if c == a {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("invalid residue %c", c)
			}
		}
	}
	seqs2 := RandomProteins(10, 30, 60, 9)
	for i := range seqs {
		if seqs[i] != seqs2[i] {
			t.Fatal("RandomProteins nondeterministic")
		}
	}
}

func TestAllPairsEnumeration(t *testing.T) {
	pairs := AllPairs(4)
	if len(pairs) != 6 {
		t.Fatalf("pairs = %v", pairs)
	}
	for _, p := range pairs {
		if p.I >= p.J {
			t.Fatalf("bad pair %+v", p)
		}
	}
}

func TestServerlessMatchesSerial(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	seqs := RandomProteins(8, 40, 80, 11)
	want := AllPairsSerial(seqs, DefaultScoring())
	var got map[Pair]int
	v.Run(func() {
		var err error
		got, err = AllPairsServerless(p, seqs, DefaultScoring(), ServerlessConfig{Workers: 4})
		if err != nil {
			t.Error(err)
		}
	})
	if len(got) != len(want) {
		t.Fatalf("got %d scores, want %d", len(got), len(want))
	}
	for pr, w := range want {
		if got[pr] != w {
			t.Fatalf("score%v = %d, want %d", pr, got[pr], w)
		}
	}
}

func TestServerlessScalesNearLinearly(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	seqs := RandomProteins(12, 50, 50, 12)
	perCell := 10 * time.Microsecond // compute-bound regime: work ≫ cold start
	walls := map[int]time.Duration{}
	v.Run(func() {
		for _, w := range []int{1, 4} {
			start := v.Now()
			if _, err := AllPairsServerless(p, seqs, DefaultScoring(), ServerlessConfig{
				Workers: w, WorkPerCell: perCell,
			}); err != nil {
				t.Error(err)
				return
			}
			walls[w] = v.Now().Sub(start)
		}
	})
	speedup := float64(walls[1]) / float64(walls[4])
	if speedup < 3 {
		t.Fatalf("4-worker speedup %.2f < 3 (w1=%v w4=%v)", speedup, walls[1], walls[4])
	}
}

func TestServerlessInputValidation(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	p := faas.New(v, nil)
	v.Run(func() {
		if _, err := AllPairsServerless(p, []string{"A"}, DefaultScoring(), ServerlessConfig{}); !errors.Is(err, ErrBadInput) {
			t.Errorf("err = %v", err)
		}
	})
}
