// Package bioseq implements the sequence-comparison workload of §5.1 (Niu
// et al. [150]): Smith-Waterman local alignment and all-to-all pairwise
// comparison of protein sequences, fanned out over serverless functions.
// Sequences are synthetic (the substitution for protein databases we do not
// ship), but the alignment scores are exact, so the serverless fan-out can
// be validated bit-for-bit against the serial baseline.
package bioseq

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/faas"
)

// ErrBadInput is returned for invalid workloads.
var ErrBadInput = errors.New("bioseq: invalid input")

// aminoAcids is the 20-letter protein alphabet.
const aminoAcids = "ACDEFGHIKLMNPQRSTVWY"

// RandomProtein generates a synthetic protein sequence of length n,
// deterministic under seed.
func RandomProtein(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	for i := range b {
		b[i] = aminoAcids[rng.Intn(len(aminoAcids))]
	}
	return string(b)
}

// RandomProteins generates count sequences with lengths in [minLen, maxLen].
func RandomProteins(count, minLen, maxLen int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, count)
	for i := range out {
		n := minLen
		if maxLen > minLen {
			n += rng.Intn(maxLen - minLen + 1)
		}
		out[i] = RandomProtein(n, rng.Int63())
	}
	return out
}

// Scoring parameterizes Smith-Waterman.
type Scoring struct {
	Match    int // score for a matching residue (>0)
	Mismatch int // score for a mismatch (<0)
	Gap      int // linear gap penalty (<0)
}

// DefaultScoring is a common +2/-1/-1 scheme.
func DefaultScoring() Scoring { return Scoring{Match: 2, Mismatch: -1, Gap: -1} }

// SmithWaterman returns the optimal local alignment score of a and b.
func SmithWaterman(a, b string, s Scoring) int {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	best := 0
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			sub := s.Mismatch
			if a[i-1] == b[j-1] {
				sub = s.Match
			}
			v := prev[j-1] + sub
			if up := prev[j] + s.Gap; up > v {
				v = up
			}
			if left := cur[j-1] + s.Gap; left > v {
				v = left
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best
}

// Pair identifies one comparison (I < J).
type Pair struct {
	I, J int
}

// AllPairs enumerates the upper triangle of an n×n comparison.
func AllPairs(n int) []Pair {
	var out []Pair
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			out = append(out, Pair{i, j})
		}
	}
	return out
}

// AllPairsSerial computes every pairwise score on one node. The result maps
// pair (i,j), i<j, to its score.
func AllPairsSerial(seqs []string, s Scoring) map[Pair]int {
	out := make(map[Pair]int)
	for _, p := range AllPairs(len(seqs)) {
		out[p] = SmithWaterman(seqs[p.I], seqs[p.J], s)
	}
	return out
}

// ServerlessConfig parameterizes the fan-out.
type ServerlessConfig struct {
	// Workers is the number of batches the pair list splits into (one
	// function invocation each). Default 8.
	Workers int
	// WorkPerCell models compute time per DP cell on the platform clock.
	WorkPerCell time.Duration
	// Tenant owns the worker function. Default "bioseq".
	Tenant string
	// Worker overrides the function config.
	Worker faas.Config
}

func (c ServerlessConfig) withDefaults() ServerlessConfig {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Tenant == "" {
		c.Tenant = "bioseq"
	}
	if c.Worker.ColdStart == 0 {
		c.Worker.ColdStart = 100 * time.Millisecond
	}
	if c.Worker.Timeout == 0 {
		c.Worker.Timeout = time.Hour
	}
	if c.Worker.MaxRetries == 0 {
		c.Worker.MaxRetries = -1
	}
	return c
}

// AllPairsServerless fans the all-to-all comparison out over FaaS workers
// ([150]'s design). Scores are identical to AllPairsSerial.
func AllPairsServerless(p *faas.Platform, seqs []string, s Scoring, cfg ServerlessConfig) (map[Pair]int, error) {
	if len(seqs) < 2 {
		return nil, fmt.Errorf("%w: need at least 2 sequences", ErrBadInput)
	}
	cfg = cfg.withDefaults()
	pairs := AllPairs(len(seqs))
	W := cfg.Workers
	if W > len(pairs) {
		W = len(pairs)
	}

	type batchOut struct {
		Pairs  []Pair `json:"pairs"`
		Scores []int  `json:"scores"`
	}
	fnName := fmt.Sprintf("seqcmp-%d-%d", len(seqs), W)
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var batch []Pair
		if err := json.Unmarshal(payload, &batch); err != nil {
			return nil, err
		}
		out := batchOut{Pairs: batch, Scores: make([]int, len(batch))}
		var cells int64
		for i, pr := range batch {
			out.Scores[i] = SmithWaterman(seqs[pr.I], seqs[pr.J], s)
			cells += int64(len(seqs[pr.I])) * int64(len(seqs[pr.J]))
		}
		ctx.Work(time.Duration(cells) * cfg.WorkPerCell)
		return json.Marshal(out)
	}
	if err := p.Register(fnName, cfg.Tenant, worker, cfg.Worker); err != nil {
		return nil, err
	}
	defer p.Unregister(fnName)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	results := make(map[Pair]int, len(pairs))
	for w := 0; w < W; w++ {
		lo, hi := w*len(pairs)/W, (w+1)*len(pairs)/W
		if lo >= hi {
			continue
		}
		payload, _ := json.Marshal(pairs[lo:hi])
		wg.Add(1)
		p.InvokeAsync(fnName, payload, func(res faas.Result, err error) {
			mu.Lock()
			if err != nil && firstErr == nil {
				firstErr = err
			} else if err == nil {
				var out batchOut
				if uerr := json.Unmarshal(res.Output, &out); uerr == nil {
					for i, pr := range out.Pairs {
						results[pr] = out.Scores[i]
					}
				}
			}
			mu.Unlock()
			wg.Done()
		})
	}
	p.Clock().BlockOn(wg.Wait)
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}
