package queue

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
)

// TestPropertyAtLeastOnce: under random consumer behaviour (ack, drop,
// nack), every message is eventually acked or lands in the DLQ — none
// vanish.
func TestPropertyAtLeastOnce(t *testing.T) {
	f := func(seed int64) bool {
		v := simclock.NewVirtual()
		defer v.Close()
		s := New(v, nil)
		ok := true
		v.Run(func() {
			if err := s.CreateQueue("dlq", "t", DefaultConfig()); err != nil {
				ok = false
				return
			}
			if err := s.CreateQueue("q", "t", Config{
				VisibilityTimeout: time.Second, MaxReceive: 3, DeadLetter: "dlq",
			}); err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed))
			const n = 40
			for i := 0; i < n; i++ {
				if _, err := s.Send("q", []byte(fmt.Sprint(i))); err != nil {
					ok = false
					return
				}
			}
			acked := map[string]bool{}
			// Consume with random behaviour until the queue drains.
			for round := 0; round < 200; round++ {
				ds, err := s.Receive("q", 5)
				if err != nil {
					ok = false
					return
				}
				if len(ds) == 0 {
					v.Sleep(1200 * time.Millisecond) // let inflight time out
					if l, _ := s.Len("q"); l == 0 {
						break
					}
					continue
				}
				for _, d := range ds {
					switch rng.Intn(3) {
					case 0: // ack
						if err := s.Ack("q", d.ReceiptHandle); err != nil {
							ok = false
							return
						}
						acked[string(d.Body)] = true
					case 1: // fast nack
						_ = s.ChangeVisibility("q", d.ReceiptHandle, 0)
					case 2: // drop (let visibility lapse)
					}
				}
			}
			// Everything not acked must be in the DLQ.
			inDLQ := map[string]bool{}
			for {
				ds, _ := s.Receive("dlq", 10)
				if len(ds) == 0 {
					break
				}
				for _, d := range ds {
					inDLQ[string(d.Body)] = true
					_ = s.Ack("dlq", d.ReceiptHandle)
				}
			}
			for i := 0; i < n; i++ {
				id := fmt.Sprint(i)
				if !acked[id] && !inDLQ[id] {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}
