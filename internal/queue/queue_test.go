package queue

import (
	"errors"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/simclock"
)

func newSvc() *Service { return New(simclock.Real{}, nil) }

func TestSendReceiveAck(t *testing.T) {
	s := newSvc()
	must(t, s.CreateQueue("q", "t", DefaultConfig()))
	id, err := s.Send("q", []byte("hello"))
	must(t, err)
	if id == 0 {
		t.Fatal("zero message id")
	}
	ds, err := s.Receive("q", 10)
	must(t, err)
	if len(ds) != 1 || string(ds[0].Body) != "hello" || ds[0].ReceiveCount != 1 {
		t.Fatalf("deliveries = %+v", ds)
	}
	must(t, s.Ack("q", ds[0].ReceiptHandle))
	n, _ := s.Len("q")
	if n != 0 {
		t.Fatalf("Len = %d after ack", n)
	}
	// Double ack fails.
	if err := s.Ack("q", ds[0].ReceiptHandle); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("double ack err = %v", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	s := newSvc()
	must(t, s.CreateQueue("q", "t", DefaultConfig()))
	for _, b := range []string{"a", "b", "c"} {
		_, err := s.Send("q", []byte(b))
		must(t, err)
	}
	ds, _ := s.Receive("q", 10)
	if len(ds) != 3 || string(ds[0].Body) != "a" || string(ds[2].Body) != "c" {
		t.Fatalf("order wrong: %+v", ds)
	}
}

func TestVisibilityTimeoutRedelivery(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := New(v, nil)
	v.Run(func() {
		must(t, s.CreateQueue("q", "t", Config{VisibilityTimeout: 30 * time.Second}))
		_, err := s.Send("q", []byte("m"))
		must(t, err)
		ds, _ := s.Receive("q", 1)
		if len(ds) != 1 {
			t.Fatalf("first receive got %d", len(ds))
		}
		// Hidden while in flight.
		if ds2, _ := s.Receive("q", 1); len(ds2) != 0 {
			t.Fatal("message visible during visibility timeout")
		}
		v.Sleep(31 * time.Second)
		ds3, _ := s.Receive("q", 1)
		if len(ds3) != 1 || ds3[0].ReceiveCount != 2 {
			t.Fatalf("redelivery = %+v", ds3)
		}
		// The stale first handle must no longer ack.
		if err := s.Ack("q", ds[0].ReceiptHandle); !errors.Is(err, ErrBadHandle) {
			t.Fatalf("stale handle ack err = %v", err)
		}
		must(t, s.Ack("q", ds3[0].ReceiptHandle))
	})
}

func TestChangeVisibilityNack(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := New(v, nil)
	v.Run(func() {
		must(t, s.CreateQueue("q", "t", Config{VisibilityTimeout: time.Hour}))
		_, err := s.Send("q", []byte("m"))
		must(t, err)
		ds, _ := s.Receive("q", 1)
		must(t, s.ChangeVisibility("q", ds[0].ReceiptHandle, 0))
		ds2, _ := s.Receive("q", 1)
		if len(ds2) != 1 {
			t.Fatal("nacked message not redelivered")
		}
	})
}

func TestDeadLetterRedrive(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := New(v, nil)
	v.Run(func() {
		must(t, s.CreateQueue("dlq", "t", DefaultConfig()))
		must(t, s.CreateQueue("q", "t", Config{VisibilityTimeout: time.Second, MaxReceive: 2, DeadLetter: "dlq"}))
		_, err := s.Send("q", []byte("poison"))
		must(t, err)
		for i := 0; i < 2; i++ {
			ds, _ := s.Receive("q", 1)
			if len(ds) != 1 {
				t.Fatalf("attempt %d: got %d messages", i, len(ds))
			}
			v.Sleep(2 * time.Second) // let it time out, unacked
		}
		// Third attempt: exhausted → redriven to DLQ, not delivered.
		ds, _ := s.Receive("q", 1)
		if len(ds) != 0 {
			t.Fatalf("exhausted message delivered: %+v", ds)
		}
		dd, _ := s.Receive("dlq", 1)
		if len(dd) != 1 || string(dd[0].Body) != "poison" {
			t.Fatalf("dlq = %+v", dd)
		}
	})
}

func TestOnSendHook(t *testing.T) {
	s := newSvc()
	must(t, s.CreateQueue("q", "t", DefaultConfig()))
	var fired []string
	must(t, s.OnSend("q", func(qn string) { fired = append(fired, qn) }))
	_, err := s.Send("q", nil)
	must(t, err)
	if len(fired) != 1 || fired[0] != "q" {
		t.Fatalf("hook fired = %v", fired)
	}
}

func TestTopicFanout(t *testing.T) {
	s := newSvc()
	must(t, s.CreateQueue("q1", "t", DefaultConfig()))
	must(t, s.CreateQueue("q2", "t", DefaultConfig()))
	must(t, s.CreateTopic("tp", "t"))
	must(t, s.SubscribeQueue("tp", "q1"))
	must(t, s.SubscribeQueue("tp", "q2"))
	var direct [][]byte
	must(t, s.SubscribeFunc("tp", func(b []byte) { direct = append(direct, b) }))
	must(t, s.Publish("tp", []byte("news")))
	for _, q := range []string{"q1", "q2"} {
		ds, _ := s.Receive(q, 1)
		if len(ds) != 1 || string(ds[0].Body) != "news" {
			t.Fatalf("%s = %+v", q, ds)
		}
	}
	if len(direct) != 1 || string(direct[0]) != "news" {
		t.Fatalf("func sub = %v", direct)
	}
}

func TestErrors(t *testing.T) {
	s := newSvc()
	if _, err := s.Send("none", nil); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.Receive("none", 1); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Publish("none", nil); !errors.Is(err, ErrNoTopic) {
		t.Fatalf("err = %v", err)
	}
	must(t, s.CreateQueue("q", "t", DefaultConfig()))
	if err := s.CreateQueue("q", "t", DefaultConfig()); !errors.Is(err, ErrQueueExists) {
		t.Fatalf("err = %v", err)
	}
	if err := s.Ack("q", "garbage"); !errors.Is(err, ErrBadHandle) {
		t.Fatalf("err = %v", err)
	}
	must(t, s.DeleteQueue("q"))
	if err := s.DeleteQueue("q"); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("err = %v", err)
	}
}

func TestMetering(t *testing.T) {
	m := billing.NewMeter()
	s := New(simclock.Real{}, m)
	must(t, s.CreateQueue("q", "acme", DefaultConfig()))
	_, err := s.Send("q", nil)
	must(t, err)
	_, err = s.Receive("q", 1)
	must(t, err)
	if got := m.Units("acme", billing.ResQueueReqs); got != 2 {
		t.Fatalf("queue requests = %v, want 2", got)
	}
}

func TestReceiveMax(t *testing.T) {
	s := newSvc()
	must(t, s.CreateQueue("q", "t", DefaultConfig()))
	for i := 0; i < 5; i++ {
		_, err := s.Send("q", []byte{byte(i)})
		must(t, err)
	}
	ds, _ := s.Receive("q", 3)
	if len(ds) != 3 {
		t.Fatalf("got %d, want 3", len(ds))
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
