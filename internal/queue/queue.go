// Package queue implements the SQS/SNS-style messaging BaaS that serverless
// applications in §3.1 of the paper glue their event-driven pipelines with:
// at-least-once queues with visibility timeouts and dead-letter redrive, and
// fan-out notification topics. Queues are the canonical FaaS event source
// (the "serverless ETL using Lambda and SQS" pattern the paper cites).
package queue

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/billing"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by Service operations.
var (
	ErrNoQueue     = errors.New("queue: queue does not exist")
	ErrQueueExists = errors.New("queue: queue already exists")
	ErrNoTopic     = errors.New("queue: topic does not exist")
	ErrTopicExists = errors.New("queue: topic already exists")
	ErrBadHandle   = errors.New("queue: invalid or stale receipt handle")
)

// Config parameterizes a queue.
type Config struct {
	// VisibilityTimeout hides a delivered message from other consumers
	// until it is acked or the timeout lapses (at-least-once semantics).
	VisibilityTimeout time.Duration
	// MaxReceive is how many deliveries a message gets before being moved
	// to the dead-letter queue. Zero means unlimited.
	MaxReceive int
	// DeadLetter names the queue that exhausted messages move to. Empty
	// with MaxReceive>0 drops them.
	DeadLetter string
}

// DefaultConfig mirrors common provider defaults.
func DefaultConfig() Config {
	return Config{VisibilityTimeout: 30 * time.Second}
}

// Message is a queued payload.
type Message struct {
	ID           int64
	Body         []byte
	SentAt       time.Time
	ReceiveCount int
}

// Delivery is one received message plus the receipt handle used to ack it.
type Delivery struct {
	Message
	ReceiptHandle string
}

type qmsg struct {
	msg       Message
	visibleAt time.Time
	gen       int // bumped per delivery; stale handles can't ack
	inflight  bool
}

type qstate struct {
	name   string
	tenant string
	cfg    Config
	msgs   []*qmsg // FIFO order
	onSend []func(queueName string)
}

type topic struct {
	name     string
	tenant   string
	queues   []string
	handlers []func(body []byte)
}

// Service hosts all queues and topics.
type Service struct {
	clock simclock.Clock
	meter *billing.Meter

	mu     sync.Mutex
	queues map[string]*qstate
	topics map[string]*topic
	nextID int64

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsSendLat    *obs.Histogram
	obsReceiveLat *obs.Histogram
}

// New creates an empty Service. meter may be nil.
func New(clock simclock.Clock, meter *billing.Meter) *Service {
	return &Service{clock: clock, meter: meter, queues: map[string]*qstate{}, topics: map[string]*topic{}}
}

// SetObs attaches observability instruments. Call before traffic starts.
func (s *Service) SetObs(r *obs.Registry) {
	s.obsSendLat = r.Histogram("queue.send.latency")
	s.obsReceiveLat = r.Histogram("queue.receive.latency")
}

// CreateQueue makes a queue billed to tenant.
func (s *Service) CreateQueue(name, tenant string, cfg Config) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; ok {
		return fmt.Errorf("%w: %q", ErrQueueExists, name)
	}
	s.queues[name] = &qstate{name: name, tenant: tenant, cfg: cfg}
	return nil
}

// DeleteQueue removes a queue and its messages.
func (s *Service) DeleteQueue(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.queues[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	delete(s.queues, name)
	return nil
}

// OnSend registers fn to run synchronously after every Send to the named
// queue. FaaS event-source mappings hook here so that virtual-clock
// experiments stay event-driven rather than polling.
func (s *Service) OnSend(name string, fn func(queueName string)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	q.onSend = append(q.onSend, fn)
	return nil
}

// Send enqueues a message and returns its ID.
func (s *Service) Send(name string, body []byte) (int64, error) {
	if s.obsSendLat != nil {
		start := s.clock.Now()
		defer func() { s.obsSendLat.Observe(s.clock.Now().Sub(start)) }()
	}
	s.mu.Lock()
	q, ok := s.queues[name]
	if !ok {
		s.mu.Unlock()
		return 0, fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	s.nextID++
	id := s.nextID
	q.msgs = append(q.msgs, &qmsg{
		msg:       Message{ID: id, Body: append([]byte(nil), body...), SentAt: s.clock.Now()},
		visibleAt: s.clock.Now(),
	})
	tenant := q.tenant
	hooks := append([]func(string){}, q.onSend...)
	s.mu.Unlock()

	s.meterAdd(tenant, 1)
	for _, fn := range hooks {
		fn(name)
	}
	return id, nil
}

// Receive returns up to max visible messages, hiding each for the queue's
// visibility timeout. Exhausted messages (ReceiveCount ≥ MaxReceive) are
// redriven to the dead-letter queue instead of delivered.
func (s *Service) Receive(name string, max int) ([]Delivery, error) {
	if s.obsReceiveLat != nil {
		start := s.clock.Now()
		defer func() { s.obsReceiveLat.Observe(s.clock.Now().Sub(start)) }()
	}
	s.mu.Lock()
	q, ok := s.queues[name]
	if !ok {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	now := s.clock.Now()
	var out []Delivery
	var redrive []*qmsg
	kept := q.msgs[:0]
	for _, m := range q.msgs {
		if len(out) >= max || m.visibleAt.After(now) {
			kept = append(kept, m)
			continue
		}
		if q.cfg.MaxReceive > 0 && m.msg.ReceiveCount >= q.cfg.MaxReceive {
			redrive = append(redrive, m)
			continue // dropped from this queue either way
		}
		m.msg.ReceiveCount++
		m.gen++
		m.visibleAt = now.Add(q.cfg.VisibilityTimeout)
		m.inflight = true
		out = append(out, Delivery{
			Message:       m.msg,
			ReceiptHandle: handle(name, m.msg.ID, m.gen),
		})
		kept = append(kept, m)
	}
	q.msgs = kept
	dlq := q.cfg.DeadLetter
	tenant := q.tenant
	s.mu.Unlock()

	s.meterAdd(tenant, 1)
	for _, m := range redrive {
		if dlq != "" {
			_, _ = s.Send(dlq, m.msg.Body)
		}
	}
	return out, nil
}

// Ack deletes a delivered message using its receipt handle. A stale handle
// (the message timed out and was redelivered) returns ErrBadHandle.
func (s *Service) Ack(name, receiptHandle string) error {
	var id int64
	var gen int
	var qname string
	if _, err := fmt.Sscanf(receiptHandle, "%s %d %d", &qname, &id, &gen); err != nil || qname != name {
		return fmt.Errorf("%w: %q", ErrBadHandle, receiptHandle)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	for i, m := range q.msgs {
		if m.msg.ID == id {
			if m.gen != gen {
				return fmt.Errorf("%w: message %d redelivered", ErrBadHandle, id)
			}
			q.msgs = append(q.msgs[:i], q.msgs[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%w: message %d gone", ErrBadHandle, id)
}

// ChangeVisibility adjusts how long a delivered message stays hidden.
// A zero duration makes it immediately visible again (fast nack).
func (s *Service) ChangeVisibility(name, receiptHandle string, d time.Duration) error {
	var id int64
	var gen int
	var qname string
	if _, err := fmt.Sscanf(receiptHandle, "%s %d %d", &qname, &id, &gen); err != nil || qname != name {
		return fmt.Errorf("%w: %q", ErrBadHandle, receiptHandle)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	for _, m := range q.msgs {
		if m.msg.ID == id && m.gen == gen {
			m.visibleAt = s.clock.Now().Add(d)
			return nil
		}
	}
	return fmt.Errorf("%w: message %d", ErrBadHandle, id)
}

// Len returns the number of messages currently visible in the queue.
func (s *Service) Len(name string) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	q, ok := s.queues[name]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNoQueue, name)
	}
	now := s.clock.Now()
	n := 0
	for _, m := range q.msgs {
		if !m.visibleAt.After(now) {
			n++
		}
	}
	return n, nil
}

// CreateTopic makes a fan-out notification topic billed to tenant.
func (s *Service) CreateTopic(name, tenant string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.topics[name]; ok {
		return fmt.Errorf("%w: %q", ErrTopicExists, name)
	}
	s.topics[name] = &topic{name: name, tenant: tenant}
	return nil
}

// SubscribeQueue fans topic messages out into a queue.
func (s *Service) SubscribeQueue(topicName, queueName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	if _, ok := s.queues[queueName]; !ok {
		return fmt.Errorf("%w: %q", ErrNoQueue, queueName)
	}
	t.queues = append(t.queues, queueName)
	return nil
}

// SubscribeFunc delivers topic messages synchronously to fn.
func (s *Service) SubscribeFunc(topicName string, fn func(body []byte)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.topics[topicName]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	t.handlers = append(t.handlers, fn)
	return nil
}

// Publish fans a message out to every topic subscriber.
func (s *Service) Publish(topicName string, body []byte) error {
	s.mu.Lock()
	t, ok := s.topics[topicName]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrNoTopic, topicName)
	}
	queues := append([]string{}, t.queues...)
	handlers := append([]func([]byte){}, t.handlers...)
	tenant := t.tenant
	s.mu.Unlock()

	s.meterAdd(tenant, 1)
	for _, qn := range queues {
		_, _ = s.Send(qn, body)
	}
	for _, fn := range handlers {
		fn(append([]byte(nil), body...))
	}
	return nil
}

func (s *Service) meterAdd(tenant string, units float64) {
	if s.meter != nil {
		s.meter.Add(billing.Record{Tenant: tenant, Resource: billing.ResQueueReqs, Units: units, At: s.clock.Now()})
	}
}

func handle(queue string, id int64, gen int) string {
	return fmt.Sprintf("%s %d %d", queue, id, gen)
}
