package billing

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestBilledDurationRoundsUp(t *testing.T) {
	cases := []struct {
		in   time.Duration
		want time.Duration
	}{
		{0, 100 * time.Millisecond},
		{-time.Second, 100 * time.Millisecond},
		{1 * time.Millisecond, 100 * time.Millisecond},
		{100 * time.Millisecond, 100 * time.Millisecond},
		{101 * time.Millisecond, 200 * time.Millisecond},
		{250 * time.Millisecond, 300 * time.Millisecond},
		{time.Second, time.Second},
	}
	for _, c := range cases {
		if got := BilledDuration(c.in); got != c.want {
			t.Errorf("BilledDuration(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestBilledDurationProperties(t *testing.T) {
	// Property: billed ≥ actual, billed is a positive multiple of the
	// granularity, and overshoot is < one granule.
	f := func(ms uint16) bool {
		d := time.Duration(ms) * time.Millisecond
		b := BilledDuration(d)
		if b < d || b <= 0 {
			return false
		}
		if b%BillingGranularity != 0 {
			return false
		}
		return b-d < BillingGranularity || d == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddInvocationGBSeconds(t *testing.T) {
	m := NewMeter()
	// 1 second at 1024 MB = exactly 1 GB-second.
	m.AddInvocation("acme", time.Second, 1024, time.Time{})
	if got := m.Units("acme", ResInvocationGBs); math.Abs(got-1.0) > 1e-9 {
		t.Fatalf("GB-seconds = %v, want 1", got)
	}
	if got := m.Units("acme", ResInvocationReqs); got != 1 {
		t.Fatalf("requests = %v, want 1", got)
	}
	// 50 ms at 512 MB bills as 100 ms × 0.5 GB = 0.05 GB-s.
	m.AddInvocation("acme", 50*time.Millisecond, 512, time.Time{})
	if got := m.Units("acme", ResInvocationGBs); math.Abs(got-1.05) > 1e-9 {
		t.Fatalf("GB-seconds = %v, want 1.05", got)
	}
}

func TestInvoiceTotalsAndOrdering(t *testing.T) {
	m := NewMeter()
	m.Add(Record{Tenant: "t", Resource: ResBlobPut, Units: 1000})
	m.Add(Record{Tenant: "t", Resource: ResBlobGet, Units: 5000})
	p := Pricing{ResBlobGet: 0.001, ResBlobPut: 0.01}
	inv := m.Invoice("t", p)
	if len(inv.Lines) != 2 {
		t.Fatalf("lines = %d", len(inv.Lines))
	}
	if inv.Lines[0].Resource != ResBlobGet {
		t.Fatalf("lines not sorted: %v", inv.Lines[0].Resource)
	}
	want := 5000*0.001 + 1000*0.01
	if math.Abs(inv.Total-want) > 1e-9 {
		t.Fatalf("total = %v, want %v", inv.Total, want)
	}
	if s := inv.String(); s == "" {
		t.Fatal("empty invoice rendering")
	}
}

func TestZeroUnitRecordsDropped(t *testing.T) {
	m := NewMeter()
	m.Add(Record{Tenant: "t", Resource: "x", Units: 0})
	if len(m.Records()) != 0 {
		t.Fatal("zero-unit record retained")
	}
}

func TestTenantsSorted(t *testing.T) {
	m := NewMeter()
	m.Add(Record{Tenant: "zeta", Resource: "r", Units: 1})
	m.Add(Record{Tenant: "acme", Resource: "r", Units: 1})
	got := m.Tenants()
	if len(got) != 2 || got[0] != "acme" || got[1] != "zeta" {
		t.Fatalf("Tenants = %v", got)
	}
}

func TestReset(t *testing.T) {
	m := NewMeter()
	m.Add(Record{Tenant: "t", Resource: "r", Units: 5})
	m.Reset()
	if m.Units("t", "r") != 0 || len(m.Records()) != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestReservedCost(t *testing.T) {
	p := Pricing{ResVMHours: 0.10}
	if got := ReservedCost(3, 10*time.Hour, p); math.Abs(got-3.0) > 1e-9 {
		t.Fatalf("ReservedCost = %v, want 3.0", got)
	}
	// Partial hours bill as full hours.
	if got := ReservedCost(1, 90*time.Minute, p); math.Abs(got-0.20) > 1e-9 {
		t.Fatalf("ReservedCost(90m) = %v, want 0.20", got)
	}
	if got := ReservedCost(1, time.Minute, p); math.Abs(got-0.10) > 1e-9 {
		t.Fatalf("ReservedCost(1m) = %v, want 0.10", got)
	}
}

func TestVMsForPeak(t *testing.T) {
	if got := VMsForPeak(1000, 100); got != 10 {
		t.Fatalf("VMsForPeak = %d, want 10", got)
	}
	if got := VMsForPeak(101, 100); got != 2 {
		t.Fatalf("VMsForPeak = %d, want 2 (ceil)", got)
	}
	if got := VMsForPeak(0, 100); got != 0 {
		t.Fatalf("VMsForPeak(0) = %d", got)
	}
}

func TestDefaultPricingCoversCanonicalResources(t *testing.T) {
	p := DefaultPricing()
	for _, r := range []string{
		ResInvocationGBs, ResInvocationReqs, ResBlobStorageGBh, ResBlobGet,
		ResBlobPut, ResBlobBytesOut, ResQueueReqs, ResDBReadUnits,
		ResDBWriteUnits, ResVMHours, ResMsgPublish, ResJiffyBlockSecs,
	} {
		if p[r] <= 0 {
			t.Errorf("no price for %s", r)
		}
	}
}

func TestMeterConcurrentAdds(t *testing.T) {
	m := NewMeter()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				m.Add(Record{Tenant: "t", Resource: "r", Units: 1})
			}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if got := m.Units("t", "r"); got != 8000 {
		t.Fatalf("Units = %v, want 8000", got)
	}
}

// TestMeterConcurrentRecordInvoice hammers the Meter with concurrent writers
// (Add, AddInvocation) and readers (Invoice, Units, Tenants, Records) — the
// pattern a live platform produces when the billing surface is scraped while
// traffic flows. Run under -race this proves the Meter's locking covers every
// public method, not just Add.
func TestMeterConcurrentRecordInvoice(t *testing.T) {
	m := NewMeter()
	p := DefaultPricing()
	tenants := []string{"acme", "globex", "initech"}
	const writers, perWriter = 6, 500

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			tenant := tenants[i%len(tenants)]
			for j := 0; j < perWriter; j++ {
				m.Add(Record{Tenant: tenant, Resource: ResMsgPublish, Units: 1})
				m.AddInvocation(tenant, 42*time.Millisecond, 128, time.Time{})
			}
		}()
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				for _, tenant := range m.Tenants() {
					inv := m.Invoice(tenant, p)
					if inv.Total < 0 {
						t.Errorf("negative invoice total for %s", tenant)
						return
					}
				}
				_ = m.Units(tenants[j%len(tenants)], ResInvocationReqs)
				_ = m.Records()
			}
		}()
	}
	wg.Wait()

	wantPub := float64(writers * perWriter / len(tenants))
	for _, tenant := range tenants {
		if got := m.Units(tenant, ResMsgPublish); got != wantPub {
			t.Errorf("Units(%s, publish) = %v, want %v", tenant, got, wantPub)
		}
		if got := m.Units(tenant, ResInvocationReqs); got != wantPub {
			t.Errorf("Units(%s, requests) = %v, want %v", tenant, got, wantPub)
		}
	}
}
