// Package billing implements the metering and cost model at the heart of the
// paper's serverless value proposition (§2 "Cost efficiency", §6): users of a
// serverless platform are billed at fine time granularity for the resources
// they actually consume, whereas the server-centric baseline reserves
// capacity — and pays for it — regardless of use.
//
// The Meter accumulates usage records; Pricing converts them to dollars.
// Default prices mirror the public price sheets the paper's ecosystem ran on
// circa 2020 (AWS Lambda, S3, EC2 on-demand), so that experiment E1's
// serverless-vs-reserved comparison reproduces the published cost structure.
package billing

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Canonical resource names used across the platform.
const (
	ResInvocationGBs  = "faas:gb-seconds"     // billed function duration × memory
	ResInvocationReqs = "faas:requests"       // per-invocation request fee
	ResBlobStorageGBh = "blob:gb-hours"       // blob storage over time
	ResBlobGet        = "blob:get-requests"   //
	ResBlobPut        = "blob:put-requests"   //
	ResBlobBytesOut   = "blob:bytes-out"      // egress
	ResQueueReqs      = "queue:requests"      //
	ResDBReadUnits    = "db:read-units"       //
	ResDBWriteUnits   = "db:write-units"      //
	ResVMHours        = "vm:reserved-hours"   // server-centric baseline
	ResMsgPublish     = "pulsar:publish"      //
	ResJiffyBlockSecs = "jiffy:block-seconds" // ephemeral memory blocks × time
	ResShedRequests   = "faas:shed-requests"  // requests shed by tenant admission
)

// Pricing maps a resource name to its USD price per unit.
type Pricing map[string]float64

// DefaultPricing reflects public 2020-era cloud list prices; experiment E1's
// cost-shape conclusions depend only on their relative structure.
func DefaultPricing() Pricing {
	return Pricing{
		ResInvocationGBs:  0.0000166667, // per GB-second (AWS Lambda)
		ResInvocationReqs: 0.20 / 1e6,   // per request
		ResBlobStorageGBh: 0.023 / 730,  // $0.023/GB-month
		ResBlobGet:        0.0000004,    // per GET
		ResBlobPut:        0.000005,     // per PUT
		ResBlobBytesOut:   0.09 / 1e9,   // $0.09/GB egress
		ResQueueReqs:      0.40 / 1e6,   // per request (SQS)
		ResDBReadUnits:    0.25 / 1e6,   // per read unit (DynamoDB on-demand)
		ResDBWriteUnits:   1.25 / 1e6,   // per write unit
		ResVMHours:        0.096,        // m5.large on-demand per hour
		ResMsgPublish:     0.05 / 1e6,   // per published message
		ResJiffyBlockSecs: 0.0000035,    // per block-second of ephemeral memory
		ResShedRequests:   0,            // free, but itemized on the invoice
	}
}

// Record is one usage entry.
type Record struct {
	Tenant   string
	Resource string
	Units    float64
	At       time.Time
}

// recordWindow is how many itemized usage records a Meter retains (the
// most recent ones; totals are always exact and unbounded). A fixed ring —
// lazily allocated, never grown — keeps the metering call on the invoke and
// publish hot paths allocation-free and bounds Meter memory on long soaks.
const recordWindow = 1 << 14

// Meter accumulates usage records, thread-safely. Per-tenant totals are
// exact over the Meter's whole lifetime; the itemized record log is a
// sliding window of the most recent recordWindow entries.
type Meter struct {
	mu       sync.Mutex
	recBuf   []Record // fixed-capacity ring, lazily allocated
	recNext  int
	recCount int
	totals   map[string]map[string]float64 // tenant → resource → units
}

// NewMeter returns an empty Meter.
func NewMeter() *Meter {
	return &Meter{totals: map[string]map[string]float64{}}
}

// Add appends a usage record. Zero-unit records are dropped.
func (m *Meter) Add(r Record) {
	if r.Units == 0 {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.recBuf == nil {
		m.recBuf = make([]Record, recordWindow)
	}
	m.recBuf[m.recNext] = r
	m.recNext = (m.recNext + 1) % len(m.recBuf)
	if m.recCount < len(m.recBuf) {
		m.recCount++
	}
	t := m.totals[r.Tenant]
	if t == nil {
		t = map[string]float64{}
		m.totals[r.Tenant] = t
	}
	t[r.Resource] += r.Units
}

// BillingGranularity is the time quantum functions are billed in. AWS Lambda
// billed per 100 ms until late 2020, the era the paper describes.
const BillingGranularity = 100 * time.Millisecond

// BilledDuration rounds d up to the billing granularity, with a minimum of
// one granule (providers charge at least one quantum per invocation).
func BilledDuration(d time.Duration) time.Duration {
	if d <= 0 {
		return BillingGranularity
	}
	g := int64(BillingGranularity)
	n := (int64(d) + g - 1) / g
	return time.Duration(n * g)
}

// AddInvocation meters one function invocation: the request fee plus
// GB-seconds for the billed (rounded-up) duration at the given memory size.
func (m *Meter) AddInvocation(tenant string, d time.Duration, memoryMB int, at time.Time) {
	billed := BilledDuration(d)
	gbSeconds := billed.Seconds() * float64(memoryMB) / 1024.0
	m.Add(Record{Tenant: tenant, Resource: ResInvocationGBs, Units: gbSeconds, At: at})
	m.Add(Record{Tenant: tenant, Resource: ResInvocationReqs, Units: 1, At: at})
}

// Units returns the total units a tenant has accrued for a resource.
func (m *Meter) Units(tenant, resource string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.totals[tenant][resource]
}

// Tenants returns the sorted set of tenants with any usage.
func (m *Meter) Tenants() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.totals))
	for t := range m.totals {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Records returns a copy of the retained usage records (the most recent
// recordWindow), in insertion order.
func (m *Meter) Records() []Record {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Record, 0, m.recCount)
	start := m.recNext - m.recCount
	if start < 0 {
		start += len(m.recBuf)
	}
	for i := 0; i < m.recCount; i++ {
		out = append(out, m.recBuf[(start+i)%len(m.recBuf)])
	}
	return out
}

// Reset clears all accumulated usage.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.recBuf, m.recNext, m.recCount = nil, 0, 0
	m.totals = map[string]map[string]float64{}
}

// LineItem is one priced row of an invoice.
type LineItem struct {
	Resource string
	Units    float64
	USD      float64
}

// Invoice is the priced usage of one tenant.
type Invoice struct {
	Tenant string
	Lines  []LineItem
	Total  float64
}

// Invoice prices a tenant's accumulated usage.
func (m *Meter) Invoice(tenant string, p Pricing) Invoice {
	m.mu.Lock()
	defer m.mu.Unlock()
	inv := Invoice{Tenant: tenant}
	resources := make([]string, 0, len(m.totals[tenant]))
	for r := range m.totals[tenant] {
		resources = append(resources, r)
	}
	sort.Strings(resources)
	for _, r := range resources {
		units := m.totals[tenant][r]
		usd := units * p[r]
		inv.Lines = append(inv.Lines, LineItem{Resource: r, Units: units, USD: usd})
		inv.Total += usd
	}
	return inv
}

// String renders the invoice as a fixed-width table.
func (inv Invoice) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "invoice for %s\n", inv.Tenant)
	for _, l := range inv.Lines {
		fmt.Fprintf(&b, "  %-22s %16.4f units  $%12.6f\n", l.Resource, l.Units, l.USD)
	}
	fmt.Fprintf(&b, "  %-22s %35s$%12.6f\n", "total", "", inv.Total)
	return b.String()
}

// ReservedCost is the server-centric baseline of §2: a fleet of vms VMs
// reserved for the full wall-clock window, billed per VM-hour whether used or
// not. Partial hours are billed in full, as on-demand pricing does.
func ReservedCost(vms int, window time.Duration, p Pricing) float64 {
	hours := math.Ceil(window.Hours())
	if hours < 1 && window > 0 {
		hours = 1
	}
	return float64(vms) * hours * p[ResVMHours]
}

// VMsForPeak returns the number of VMs a server-centric deployment must
// reserve to serve a peak of peakRPS requests per second when one VM sustains
// perVMRPS. Server-centric capacity is provisioned for the peak (§3.2: peak
// load is several times the mean).
func VMsForPeak(peakRPS, perVMRPS float64) int {
	if peakRPS <= 0 {
		return 0
	}
	return int(math.Ceil(peakRPS / perVMRPS))
}
