package ledger

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/coord"
	"repro/internal/simclock"
)

func newSystem(bookies int) *System {
	s := NewSystem(simclock.Real{}, coord.NewStore(simclock.Real{}))
	for i := 0; i < bookies; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	return s
}

func TestAppendCloseRead(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	for i := 0; i < 10; i++ {
		id, err := w.Append([]byte(fmt.Sprintf("entry-%d", i)))
		must(t, err)
		if id != int64(i) {
			t.Fatalf("entry id = %d, want %d", id, i)
		}
	}
	must(t, w.Close())
	r, err := s.OpenReader(w.ID())
	must(t, err)
	if r.LastEntry() != 9 {
		t.Fatalf("LastEntry = %d", r.LastEntry())
	}
	all, err := r.ReadAll()
	must(t, err)
	for i, e := range all {
		if string(e) != fmt.Sprintf("entry-%d", i) {
			t.Fatalf("entry %d = %q", i, e)
		}
	}
}

func TestSingleWriterAppendAfterClose(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 1)
	must(t, w.Close())
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("err = %v", err)
	}
	if err := w.Close(); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("double close err = %v", err)
	}
}

func TestOpenReaderOnOpenLedgerFails(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	if _, err := s.OpenReader(w.ID()); !errors.Is(err, ErrNotClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestQuorumConfigValidation(t *testing.T) {
	s := newSystem(3)
	for _, c := range [][3]int{{2, 3, 1}, {3, 2, 3}, {3, 2, 0}} {
		if _, err := s.CreateLedger(c[0], c[1], c[2]); !errors.Is(err, ErrBadQuorum) {
			t.Fatalf("CreateLedger(%v) err = %v", c, err)
		}
	}
	if _, err := s.CreateLedger(5, 3, 2); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("oversized ensemble err = %v", err)
	}
}

func TestReadSurvivesBookieFailure(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	for i := 0; i < 6; i++ {
		_, err := w.Append([]byte(fmt.Sprintf("e%d", i)))
		must(t, err)
	}
	must(t, w.Close())

	// Kill any single bookie: every entry still readable (writeQuorum=2).
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.SetDown(true)
		r, err := s.OpenReader(w.ID())
		must(t, err)
		if _, err := r.ReadAll(); err != nil {
			t.Fatalf("ReadAll with %s down: %v", b.ID, err)
		}
		b.SetDown(false)
	}
}

func TestAppendFailsWithoutAckQuorum(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("ok"))
	must(t, err)
	// Down two bookies: at most one replica can be written.
	for i := 0; i < 2; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.SetDown(true)
	}
	if _, err := w.Append([]byte("fail")); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecoveryFencesAndSeals(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 3, 2)
	for i := 0; i < 5; i++ {
		_, err := w.Append([]byte(fmt.Sprintf("e%d", i)))
		must(t, err)
	}
	// Writer "crashes" (no Close). A new client recovers the ledger.
	r, err := s.Recover(w.ID())
	must(t, err)
	if r.LastEntry() != 4 {
		t.Fatalf("recovered LastEntry = %d, want 4", r.LastEntry())
	}
	// The zombie writer must be fenced out.
	if _, err := w.Append([]byte("zombie")); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie append err = %v", err)
	}
	// Recovery of an already-closed ledger is a plain open.
	r2, err := s.Recover(w.ID())
	must(t, err)
	if r2.LastEntry() != 4 {
		t.Fatalf("re-recover LastEntry = %d", r2.LastEntry())
	}
}

func TestRecoverEmptyLedger(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	r, err := s.Recover(w.ID())
	must(t, err)
	if r.LastEntry() != -1 {
		t.Fatalf("empty ledger LastEntry = %d, want -1", r.LastEntry())
	}
	if _, err := r.Read(0); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("read on empty = %v", err)
	}
}

func TestDeleteLedger(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 3, 2)
	_, err := w.Append([]byte("x"))
	must(t, err)
	must(t, w.Close())
	total := 0
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		total += b.EntryCount()
	}
	if total != 3 {
		t.Fatalf("replicas before delete = %d, want 3", total)
	}
	must(t, s.DeleteLedger(w.ID()))
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		if b.EntryCount() != 0 {
			t.Fatalf("%s retains entries after delete", b.ID)
		}
	}
	if _, err := s.OpenReader(w.ID()); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("open deleted = %v", err)
	}
	if err := s.DeleteLedger(w.ID()); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("double delete = %v", err)
	}
}

func TestStripingDistributesEntries(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	for i := 0; i < 30; i++ {
		_, err := w.Append([]byte("x"))
		must(t, err)
	}
	must(t, w.Close())
	// 30 entries × 2 replicas striped over 3 bookies → 20 each.
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		if b.EntryCount() != 20 {
			t.Fatalf("%s holds %d entries, want 20", b.ID, b.EntryCount())
		}
	}
}

func TestAppendLatencyOnVirtualClock(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewSystem(v, coord.NewStore(v))
	for i := 0; i < 3; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("b%d", i)))
	}
	s.AppendLatency = 2 * time.Millisecond
	end := v.Run(func() {
		w, err := s.CreateLedger(3, 2, 2)
		must(t, err)
		for i := 0; i < 10; i++ {
			_, err := w.Append([]byte("x"))
			must(t, err)
		}
	})
	if got := end.Sub(simclock.Epoch); got != 20*time.Millisecond {
		t.Fatalf("virtual append time = %v, want 20ms", got)
	}
}

// TestPropertyAckedEntriesSurviveRecovery: for any prefix of appends followed
// by a crash and one bookie failure, every acked entry is recovered. This is
// the core BookKeeper durability invariant.
func TestPropertyAckedEntriesSurviveRecovery(t *testing.T) {
	f := func(nEntries uint8, killIdx uint8) bool {
		n := int(nEntries)%20 + 1
		s := newSystem(3)
		w, err := s.CreateLedger(3, 3, 2)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("e%d", i))); err != nil {
				return false
			}
		}
		// Crash the writer and one bookie, then recover.
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", int(killIdx)%3))
		b.SetDown(true)
		r, err := s.Recover(w.ID())
		if err != nil {
			return false
		}
		if r.LastEntry() < int64(n-1) {
			return false // lost an acked entry
		}
		for e := int64(0); e < int64(n); e++ {
			data, err := r.Read(e)
			if err != nil || string(data) != fmt.Sprintf("e%d", e) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
