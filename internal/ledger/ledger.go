// Package ledger implements the Apache BookKeeper-style distributed
// write-ahead log of §4.3 (Figure 1): storage nodes ("bookies") holding
// replicated entries of append-only, single-writer logs ("ledgers").
//
// Ledger semantics follow the paper's description exactly: a process can
// create a ledger, append entries and close it; after close — explicit or
// because the writer crashed — it can only be opened read-only; when its
// entries are no longer needed the whole ledger is deleted. Crash recovery
// fences the ensemble so the dead writer cannot add entries, then finds the
// last entry that reached the ack quorum.
//
// Ledger metadata (ensemble, quorum sizes, state) lives in the coordination
// service, as it does in the real system.
package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by the ledger system.
var (
	ErrNoLedger     = errors.New("ledger: ledger does not exist")
	ErrNoEntry      = errors.New("ledger: entry does not exist")
	ErrClosed       = errors.New("ledger: ledger is closed")
	ErrNotClosed    = errors.New("ledger: ledger is still open")
	ErrFenced       = errors.New("ledger: ledger is fenced")
	ErrBookieDown   = errors.New("ledger: bookie is down")
	ErrNotEnough    = errors.New("ledger: not enough live bookies")
	ErrQuorumLost   = errors.New("ledger: ack quorum unreachable")
	ErrBadQuorum    = errors.New("ledger: invalid quorum configuration")
	ErrWriterClosed = errors.New("ledger: writer already closed")
)

type entryKey struct {
	ledger int64
	entry  int64
}

// Bookie is one storage node.
//
// Entry immutability contract: addEntry retains the data slice it is handed
// without copying, and every replica of an entry shares that one buffer. The
// writer makes (exactly) one defensive copy before replicating — callers
// above the ledger layer must never mutate a buffer after appending it.
// readEntry still returns a fresh copy, so readers may mutate what they get
// back.
type Bookie struct {
	ID string

	mu      sync.Mutex
	entries map[entryKey][]byte
	fenced  map[int64]bool
	last    map[int64]int64 // highest entry id seen per ledger
	down    bool
}

// NewBookie creates an empty bookie.
func NewBookie(id string) *Bookie {
	return &Bookie{ID: id, entries: map[entryKey][]byte{}, fenced: map[int64]bool{}, last: map[int64]int64{}}
}

// SetDown injects or clears a crash: a down bookie rejects every request but
// keeps its data (it can come back).
func (b *Bookie) SetDown(down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = down
}

// Down reports whether the bookie is crashed.
func (b *Bookie) Down() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

func (b *Bookie) addEntry(ledgerID, entryID int64, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	if b.fenced[ledgerID] {
		return fmt.Errorf("%w: ledger %d on %s", ErrFenced, ledgerID, b.ID)
	}
	b.entries[entryKey{ledgerID, entryID}] = data // shared, immutable (see type doc)
	if cur, ok := b.last[ledgerID]; !ok || entryID > cur {
		b.last[ledgerID] = entryID
	}
	return nil
}

func (b *Bookie) readEntry(ledgerID, entryID int64) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil, fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	data, ok := b.entries[entryKey{ledgerID, entryID}]
	if !ok {
		return nil, fmt.Errorf("%w: ledger %d entry %d on %s", ErrNoEntry, ledgerID, entryID, b.ID)
	}
	return append([]byte(nil), data...), nil
}

// fence marks the ledger read-only on this bookie and returns the highest
// entry id it holds for the ledger (-1 if none).
func (b *Bookie) fence(ledgerID int64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return -1, fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	b.fenced[ledgerID] = true
	if last, ok := b.last[ledgerID]; ok {
		return last, nil
	}
	return -1, nil
}

func (b *Bookie) deleteLedger(ledgerID int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for k := range b.entries {
		if k.ledger == ledgerID {
			delete(b.entries, k)
		}
	}
	delete(b.fenced, ledgerID)
	delete(b.last, ledgerID)
}

// EntryCount returns how many entries the bookie stores (all ledgers).
func (b *Bookie) EntryCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.entries)
}

// metadata is the per-ledger record kept in the coordination service.
type metadata struct {
	Ensemble    []string `json:"ensemble"`
	WriteQuorum int      `json:"write_quorum"`
	AckQuorum   int      `json:"ack_quorum"`
	Closed      bool     `json:"closed"`
	LastEntry   int64    `json:"last_entry"` // valid when Closed
}

const metaRoot = "/ledgers"

// System is the bookkeeper cluster: a set of bookies plus the metadata store.
type System struct {
	clock simclock.Clock
	meta  *coord.Store

	// AppendLatency is the modelled durability cost paid by each Append.
	AppendLatency time.Duration
	// ReadLatency is the modelled bookie RPC cost paid by each Read.
	ReadLatency time.Duration

	mu      sync.Mutex
	bookies map[string]*Bookie
	order   []string // registration order, for deterministic ensembles
	nextID  int64

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsAppends   *obs.Counter
	obsAppendLat *obs.Histogram
	obsFanIn     *obs.Histogram
	obsReadLat   *obs.Histogram
}

// SetObs attaches observability instruments. Call before traffic starts.
func (s *System) SetObs(r *obs.Registry) {
	s.obsAppends = r.Counter("ledger.append.entries")
	s.obsAppendLat = r.Histogram("ledger.append.latency")
	s.obsFanIn = r.ValueHistogram("ledger.append.batch.fanin")
	s.obsReadLat = r.Histogram("ledger.read.latency")
}

// NewSystem creates a ledger system using meta for metadata.
func NewSystem(clock simclock.Clock, meta *coord.Store) *System {
	_ = meta.EnsurePath(metaRoot)
	return &System{clock: clock, meta: meta, bookies: map[string]*Bookie{}}
}

// AddBookie registers a bookie with the cluster.
func (s *System) AddBookie(b *Bookie) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bookies[b.ID]; !ok {
		s.order = append(s.order, b.ID)
	}
	s.bookies[b.ID] = b
}

// Bookie returns a registered bookie by id.
func (s *System) Bookie(id string) (*Bookie, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bookies[id]
	return b, ok
}

// Writer appends entries to an open ledger. A ledger has a single writer.
type Writer struct {
	sys      *System
	ledgerID int64
	meta     metadata
	next     int64
	closed   bool
}

// CreateLedger opens a new ledger striped across an ensemble of ensembleSize
// live bookies; each entry is written to writeQuorum of them and acknowledged
// after ackQuorum durable copies.
func (s *System) CreateLedger(ensembleSize, writeQuorum, ackQuorum int) (*Writer, error) {
	if ackQuorum < 1 || ackQuorum > writeQuorum || writeQuorum > ensembleSize {
		return nil, fmt.Errorf("%w: ensemble=%d write=%d ack=%d", ErrBadQuorum, ensembleSize, writeQuorum, ackQuorum)
	}
	s.mu.Lock()
	var live []string
	for _, id := range s.order {
		if !s.bookies[id].Down() {
			live = append(live, id)
		}
	}
	if len(live) < ensembleSize {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: have %d live, need %d", ErrNotEnough, len(live), ensembleSize)
	}
	s.nextID++
	id := s.nextID
	ensemble := live[:ensembleSize]
	s.mu.Unlock()

	md := metadata{Ensemble: ensemble, WriteQuorum: writeQuorum, AckQuorum: ackQuorum}
	raw, _ := json.Marshal(md)
	if err := s.meta.Create(metaPath(id), raw, coord.Persistent, 0); err != nil {
		return nil, err
	}
	return &Writer{sys: s, ledgerID: id, meta: md}, nil
}

// ID returns the ledger's id.
func (w *Writer) ID() int64 { return w.ledgerID }

// Append writes data as the next entry, returning its entry id once
// ackQuorum bookies have it. The writer retains data without copying (see
// the Bookie immutability contract): do not mutate it after the call.
func (w *Writer) Append(data []byte) (int64, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	var start time.Time
	if w.sys.obsAppendLat != nil {
		start = w.sys.clock.Now()
	}
	w.sys.clock.Sleep(w.sys.AppendLatency)
	entryID := w.next
	if err := w.replicate(entryID, data); err != nil {
		return 0, err
	}
	w.next++
	w.sys.obsAppends.Inc()
	w.sys.obsFanIn.ObserveValue(1)
	if !start.IsZero() {
		w.sys.obsAppendLat.Observe(w.sys.clock.Now().Sub(start))
	}
	return entryID, nil
}

// AppendBatch writes entries as one group commit: the modelled
// AppendLatency — the durability round trip — is paid once for the whole
// batch instead of once per entry, while each entry still replicates to its
// write quorum. It returns the entry id assigned to entries[0]; subsequent
// entries get consecutive ids. Entries commit in order; if one fails to
// reach its ack quorum the batch stops there, the error is returned, and the
// earlier entries of the batch stay committed (callers needing atomicity
// must treat the whole batch as failed and rely on recovery semantics, as
// the broker does). Entries are retained without copying, like Append.
func (w *Writer) AppendBatch(entries [][]byte) (int64, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	first := w.next
	if len(entries) == 0 {
		return first, nil
	}
	var start time.Time
	if w.sys.obsAppendLat != nil {
		start = w.sys.clock.Now()
	}
	w.sys.clock.Sleep(w.sys.AppendLatency)
	for _, data := range entries {
		if err := w.replicate(w.next, data); err != nil {
			return first, err
		}
		w.next++
	}
	w.sys.obsAppends.Add(int64(len(entries)))
	w.sys.obsFanIn.ObserveValue(int64(len(entries)))
	if !start.IsZero() {
		w.sys.obsAppendLat.Observe(w.sys.clock.Now().Sub(start))
	}
	return first, nil
}

// replicate pushes one entry to its write quorum and requires ackQuorum
// durable copies. A fenced ensemble permanently closes the writer.
func (w *Writer) replicate(entryID int64, data []byte) error {
	acks := 0
	var lastErr error
	for j := 0; j < w.meta.WriteQuorum; j++ {
		bid := w.meta.Ensemble[int(entryID+int64(j))%len(w.meta.Ensemble)]
		b, ok := w.sys.Bookie(bid)
		if !ok {
			continue
		}
		if err := b.addEntry(w.ledgerID, entryID, data); err != nil {
			lastErr = err
			if errors.Is(err, ErrFenced) {
				w.closed = true
				return err
			}
			continue
		}
		acks++
	}
	if acks < w.meta.AckQuorum {
		return fmt.Errorf("%w: %d/%d acks (%v)", ErrQuorumLost, acks, w.meta.AckQuorum, lastErr)
	}
	return nil
}

// Close seals the ledger, recording the last entry id in metadata.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	w.meta.Closed = true
	w.meta.LastEntry = w.next - 1
	raw, _ := json.Marshal(w.meta)
	_, err := w.sys.meta.Set(metaPath(w.ledgerID), raw, coord.AnyVersion)
	return err
}

// Reader reads a closed ledger.
type Reader struct {
	sys      *System
	ledgerID int64
	meta     metadata
	// cold holds the ledger's entries when it was opened from the blob
	// tier (OpenTiered on an offloaded ledger).
	cold [][]byte
}

// OpenReader opens a closed ledger for reading. Opening a still-open ledger
// returns ErrNotClosed; use Recover for crashed writers.
func (s *System) OpenReader(ledgerID int64) (*Reader, error) {
	md, err := s.loadMeta(ledgerID)
	if err != nil {
		return nil, err
	}
	if !md.Closed {
		return nil, fmt.Errorf("%w: ledger %d", ErrNotClosed, ledgerID)
	}
	return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
}

// LastEntry returns the id of the final entry (-1 for an empty ledger).
func (r *Reader) LastEntry() int64 { return r.meta.LastEntry }

// Read returns entry entryID, trying each replica until a live bookie
// serves it.
func (r *Reader) Read(entryID int64) ([]byte, error) {
	if entryID < 0 || entryID > r.meta.LastEntry {
		return nil, fmt.Errorf("%w: %d (last is %d)", ErrNoEntry, entryID, r.meta.LastEntry)
	}
	var start time.Time
	if r.sys.obsReadLat != nil {
		start = r.sys.clock.Now()
	}
	r.sys.clock.Sleep(r.sys.ReadLatency)
	defer func() {
		if !start.IsZero() {
			r.sys.obsReadLat.Observe(r.sys.clock.Now().Sub(start))
		}
	}()
	var lastErr error
	for j := 0; j < r.meta.WriteQuorum; j++ {
		bid := r.meta.Ensemble[int(entryID+int64(j))%len(r.meta.Ensemble)]
		b, ok := r.sys.Bookie(bid)
		if !ok {
			continue
		}
		data, err := b.readEntry(r.ledgerID, entryID)
		if err == nil {
			return data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("ledger %d entry %d unreadable: %w", r.ledgerID, entryID, lastErr)
}

// ReadAll returns every entry in order.
func (r *Reader) ReadAll() ([][]byte, error) {
	out := make([][]byte, 0, r.meta.LastEntry+1)
	for e := int64(0); e <= r.meta.LastEntry; e++ {
		data, err := r.Read(e)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// Recover handles a crashed writer: it fences the ledger on every reachable
// ensemble bookie (so the old writer can no longer append), determines the
// last entry that reached the ack quorum, seals the metadata, and returns a
// Reader. Recovering an already-closed ledger just opens it.
func (s *System) Recover(ledgerID int64) (*Reader, error) {
	md, err := s.loadMeta(ledgerID)
	if err != nil {
		return nil, err
	}
	if md.Closed {
		return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
	}
	// Fence and collect per-bookie last-entry ids.
	reachable := 0
	var lasts []int64
	for _, bid := range md.Ensemble {
		b, ok := s.Bookie(bid)
		if !ok {
			continue
		}
		last, err := b.fence(ledgerID)
		if err != nil {
			continue
		}
		reachable++
		lasts = append(lasts, last)
	}
	if reachable == 0 {
		return nil, fmt.Errorf("%w: no ensemble bookie reachable for recovery", ErrNotEnough)
	}
	// An entry is recoverable if some reachable bookie holds it. Walk
	// forward from -1: the last recoverable entry is the max id for which
	// at least one bookie reports last ≥ id AND the entry is actually
	// readable from a replica. (Entries past the last acked one may exist
	// on a minority; BookKeeper recovers them too — anything readable is
	// kept, which preserves the "acked entries are never lost" guarantee.)
	sort.Slice(lasts, func(i, j int) bool { return lasts[i] < lasts[j] })
	maxSeen := lasts[len(lasts)-1]
	lastEntry := int64(-1)
	probe := Reader{sys: s, ledgerID: ledgerID, meta: metadata{
		Ensemble: md.Ensemble, WriteQuorum: md.WriteQuorum, AckQuorum: md.AckQuorum, Closed: true, LastEntry: maxSeen,
	}}
	for e := int64(0); e <= maxSeen; e++ {
		if _, err := probe.Read(e); err != nil {
			break
		}
		lastEntry = e
	}
	md.Closed = true
	md.LastEntry = lastEntry
	raw, _ := json.Marshal(md)
	if _, err := s.meta.Set(metaPath(ledgerID), raw, coord.AnyVersion); err != nil {
		return nil, err
	}
	return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
}

// DeleteLedger removes a ledger's entries from all bookies and its metadata.
func (s *System) DeleteLedger(ledgerID int64) error {
	if _, err := s.loadMeta(ledgerID); err != nil {
		return err
	}
	s.mu.Lock()
	bookies := make([]*Bookie, 0, len(s.order))
	for _, id := range s.order {
		bookies = append(bookies, s.bookies[id])
	}
	s.mu.Unlock()
	for _, b := range bookies {
		b.deleteLedger(ledgerID)
	}
	return s.meta.Delete(metaPath(ledgerID), coord.AnyVersion)
}

func (s *System) loadMeta(ledgerID int64) (metadata, error) {
	raw, _, err := s.meta.Get(metaPath(ledgerID))
	if err != nil {
		return metadata{}, fmt.Errorf("%w: %d", ErrNoLedger, ledgerID)
	}
	var md metadata
	if err := json.Unmarshal(raw, &md); err != nil {
		return metadata{}, err
	}
	return md, nil
}

func metaPath(id int64) string { return fmt.Sprintf("%s/%d", metaRoot, id) }
