// Package ledger implements the Apache BookKeeper-style distributed
// write-ahead log of §4.3 (Figure 1): storage nodes ("bookies") holding
// replicated entries of append-only, single-writer logs ("ledgers").
//
// Ledger semantics follow the paper's description exactly: a process can
// create a ledger, append entries and close it; after close — explicit or
// because the writer crashed — it can only be opened read-only; when its
// entries are no longer needed the whole ledger is deleted. Crash recovery
// fences the ensemble so the dead writer cannot add entries, then finds the
// last entry that reached the ack quorum.
//
// Ledger metadata (ensemble, quorum sizes, state) lives in the coordination
// service, as it does in the real system.
package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// Errors returned by the ledger system.
var (
	ErrNoLedger     = errors.New("ledger: ledger does not exist")
	ErrNoEntry      = errors.New("ledger: entry does not exist")
	ErrClosed       = errors.New("ledger: ledger is closed")
	ErrNotClosed    = errors.New("ledger: ledger is still open")
	ErrFenced       = errors.New("ledger: ledger is fenced")
	ErrBookieDown   = errors.New("ledger: bookie is down")
	ErrNotEnough    = errors.New("ledger: not enough live bookies")
	ErrQuorumLost   = errors.New("ledger: ack quorum unreachable")
	ErrBadQuorum    = errors.New("ledger: invalid quorum configuration")
	ErrWriterClosed = errors.New("ledger: writer already closed")
	ErrDropped      = errors.New("ledger: replication write dropped")
)

// ledgerStore is one ledger's entries on one bookie. Entry IDs are dense
// and ascending, so a slice indexed by entry ID replaces the old flat
// (ledger, entry)-keyed map: an append is a bounds check plus an amortized
// slice grow instead of a hash insert whose rehashes scale with the
// bookie's total entry count. Striped writes leave nil holes for the
// entries other quorum members hold.
type ledgerStore struct {
	entries [][]byte // indexed by entry ID; nil = not stored here
	count   int      // non-nil entries
	last    int64    // highest entry id seen (-1 if none)
	fenced  bool
}

// Bookie is one storage node.
//
// Entry immutability contract: addEntry retains the data slice it is handed
// without copying, and every replica of an entry shares that one buffer. The
// writer makes (exactly) one defensive copy before replicating — callers
// above the ledger layer must never mutate a buffer after appending it.
// readEntry still returns a fresh copy, so readers may mutate what they get
// back.
type Bookie struct {
	ID string

	mu      sync.Mutex
	ledgers map[int64]*ledgerStore
	down    bool

	slow     int64 // atomic: injected straggler latency (ns) per request
	dropNext int64 // under mu: next N addEntry calls fail transiently
}

// NewBookie creates an empty bookie.
func NewBookie(id string) *Bookie {
	return &Bookie{ID: id, ledgers: map[int64]*ledgerStore{}}
}

// ledgerLocked returns (creating if needed) a ledger's store. Called with
// b.mu held.
func (b *Bookie) ledgerLocked(ledgerID int64) *ledgerStore {
	ls := b.ledgers[ledgerID]
	if ls == nil {
		ls = &ledgerStore{last: -1}
		b.ledgers[ledgerID] = ls
	}
	return ls
}

// SetDown injects or clears a crash: a down bookie rejects every request but
// keeps its data (it can come back).
func (b *Bookie) SetDown(down bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.down = down
}

// Down reports whether the bookie is crashed.
func (b *Bookie) Down() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.down
}

// SetSlow injects straggler behaviour: requests against this bookie cost an
// extra d of modelled latency, paid by the caller on its clock (the slowest
// quorum member gates an append, like a straggling replica would).
func (b *Bookie) SetSlow(d time.Duration) { atomic.StoreInt64(&b.slow, int64(d)) }

func (b *Bookie) extraLatency() time.Duration { return time.Duration(atomic.LoadInt64(&b.slow)) }

// DropNext makes the next n addEntry calls fail transiently, as if the
// replication RPC was lost in flight. The writer's single immediate retry
// absorbs isolated drops; bursts force quorum handling.
func (b *Bookie) DropNext(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.dropNext = int64(n)
}

func (b *Bookie) addEntry(ledgerID, entryID int64, data []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	if b.dropNext > 0 {
		b.dropNext--
		return fmt.Errorf("%w: %s", ErrDropped, b.ID)
	}
	ls := b.ledgerLocked(ledgerID)
	if ls.fenced {
		return fmt.Errorf("%w: ledger %d on %s", ErrFenced, ledgerID, b.ID)
	}
	for int64(len(ls.entries)) <= entryID {
		ls.entries = append(ls.entries, nil)
	}
	if ls.entries[entryID] == nil {
		ls.count++
	}
	ls.entries[entryID] = data // shared, immutable (see type doc)
	if entryID > ls.last {
		ls.last = entryID
	}
	return nil
}

func (b *Bookie) readEntry(ledgerID, entryID int64) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return nil, fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	ls := b.ledgers[ledgerID]
	if ls == nil || entryID < 0 || entryID >= int64(len(ls.entries)) || ls.entries[entryID] == nil {
		return nil, fmt.Errorf("%w: ledger %d entry %d on %s", ErrNoEntry, ledgerID, entryID, b.ID)
	}
	return append([]byte(nil), ls.entries[entryID]...), nil
}

// fence marks the ledger read-only on this bookie and returns the highest
// entry id it holds for the ledger (-1 if none).
func (b *Bookie) fence(ledgerID int64) (int64, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.down {
		return -1, fmt.Errorf("%w: %s", ErrBookieDown, b.ID)
	}
	ls := b.ledgerLocked(ledgerID)
	ls.fenced = true
	return ls.last, nil
}

func (b *Bookie) deleteLedger(ledgerID int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.ledgers, ledgerID)
}

// EntryCount returns how many entries the bookie stores (all ledgers).
func (b *Bookie) EntryCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, ls := range b.ledgers {
		n += ls.count
	}
	return n
}

// metadata is the per-ledger record kept in the coordination service.
type metadata struct {
	Ensemble    []string `json:"ensemble"`
	WriteQuorum int      `json:"write_quorum"`
	AckQuorum   int      `json:"ack_quorum"`
	Closed      bool     `json:"closed"`
	LastEntry   int64    `json:"last_entry"` // valid when Closed
}

const metaRoot = "/ledgers"

// System is the bookkeeper cluster: a set of bookies plus the metadata store.
type System struct {
	clock simclock.Clock
	meta  *coord.Store

	// AppendLatency is the modelled durability cost paid by each Append.
	AppendLatency time.Duration
	// ReadLatency is the modelled bookie RPC cost paid by each Read.
	ReadLatency time.Duration

	mu      sync.Mutex
	bookies map[string]*Bookie
	order   []string // registration order, for deterministic ensembles
	nextID  int64

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obsAppends      *obs.Counter
	obsAppendLat    *obs.Histogram
	obsFanIn        *obs.Histogram
	obsReadLat      *obs.Histogram
	obsRecoveries   *obs.Counter
	obsRecoveryTime *obs.Histogram
	obsReplacements *obs.Counter
	obsReplicated   *obs.Counter
	tracer          *obs.Tracer
}

// SetObs attaches observability instruments. Call before traffic starts.
func (s *System) SetObs(r *obs.Registry) {
	s.tracer = r.Tracer()
	s.obsAppends = r.Counter("ledger.append.entries")
	s.obsAppendLat = r.Histogram("ledger.append.latency")
	s.obsFanIn = r.ValueHistogram("ledger.append.batch.fanin")
	s.obsReadLat = r.Histogram("ledger.read.latency")
	s.obsRecoveries = r.Counter("ledger.recoveries")
	s.obsRecoveryTime = r.Histogram("ledger.recovery.time")
	s.obsReplacements = r.Counter("ledger.ensemble.replacements")
	s.obsReplicated = r.Counter("ledger.rereplicated.entries")
}

// NewSystem creates a ledger system using meta for metadata.
func NewSystem(clock simclock.Clock, meta *coord.Store) *System {
	_ = meta.EnsurePath(metaRoot)
	return &System{clock: clock, meta: meta, bookies: map[string]*Bookie{}}
}

// AddBookie registers a bookie with the cluster.
func (s *System) AddBookie(b *Bookie) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.bookies[b.ID]; !ok {
		s.order = append(s.order, b.ID)
	}
	s.bookies[b.ID] = b
}

// Bookie returns a registered bookie by id.
func (s *System) Bookie(id string) (*Bookie, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b, ok := s.bookies[id]
	return b, ok
}

// BookieIDs returns bookie ids in registration order (a stable target list
// for fault injection).
func (s *System) BookieIDs() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.order...)
}

// Writer appends entries to an open ledger. A ledger has a single writer.
type Writer struct {
	sys      *System
	ledgerID int64
	meta     metadata
	next     int64
	closed   bool
}

// CreateLedger opens a new ledger striped across an ensemble of ensembleSize
// live bookies; each entry is written to writeQuorum of them and acknowledged
// after ackQuorum durable copies.
func (s *System) CreateLedger(ensembleSize, writeQuorum, ackQuorum int) (*Writer, error) {
	if ackQuorum < 1 || ackQuorum > writeQuorum || writeQuorum > ensembleSize {
		return nil, fmt.Errorf("%w: ensemble=%d write=%d ack=%d", ErrBadQuorum, ensembleSize, writeQuorum, ackQuorum)
	}
	s.mu.Lock()
	var live []string
	for _, id := range s.order {
		if !s.bookies[id].Down() {
			live = append(live, id)
		}
	}
	if len(live) < ensembleSize {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: have %d live, need %d", ErrNotEnough, len(live), ensembleSize)
	}
	s.nextID++
	id := s.nextID
	ensemble := live[:ensembleSize]
	s.mu.Unlock()

	md := metadata{Ensemble: ensemble, WriteQuorum: writeQuorum, AckQuorum: ackQuorum}
	raw, _ := json.Marshal(md)
	if err := s.meta.Create(metaPath(id), raw, coord.Persistent, 0); err != nil {
		return nil, err
	}
	return &Writer{sys: s, ledgerID: id, meta: md}, nil
}

// ID returns the ledger's id.
func (w *Writer) ID() int64 { return w.ledgerID }

// Append writes data as the next entry, returning its entry id once
// ackQuorum bookies have it. The writer retains data without copying (see
// the Bookie immutability contract): do not mutate it after the call.
func (w *Writer) Append(data []byte) (int64, error) {
	return w.AppendCtx(data, obs.TraceCtx{})
}

// AppendCtx is Append carrying the caller's causal context: a valid tc adds
// a "ledger.append" span (covering the durability round trip and quorum
// replication) to the caller's trace. A zero tc traces nothing — untraced
// appends cost one branch, not a span.
func (w *Writer) AppendCtx(data []byte, tc obs.TraceCtx) (int64, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	var span obs.SpanRef
	if tc.Valid() {
		span = w.sys.tracer.Start(tc, "ledger.append")
	}
	var start time.Time
	if w.sys.obsAppendLat != nil {
		start = w.sys.clock.Now()
	}
	w.sys.clock.Sleep(w.sys.AppendLatency + w.stragglerExtra())
	entryID := w.next
	if err := w.replicate(entryID, data); err != nil {
		span.EndErr(true)
		return 0, err
	}
	w.next++
	w.sys.obsAppends.Inc()
	w.sys.obsFanIn.ObserveValue(1)
	if !start.IsZero() {
		w.sys.obsAppendLat.Observe(w.sys.clock.Now().Sub(start))
	}
	span.End()
	return entryID, nil
}

// AppendBatch writes entries as one group commit: the modelled
// AppendLatency — the durability round trip — is paid once for the whole
// batch instead of once per entry, while each entry still replicates to its
// write quorum. It returns the entry id assigned to entries[0]; subsequent
// entries get consecutive ids. Entries commit in order; if one fails to
// reach its ack quorum the batch stops there, the error is returned, and the
// earlier entries of the batch stay committed (callers needing atomicity
// must treat the whole batch as failed and rely on recovery semantics, as
// the broker does). Entries are retained without copying, like Append.
func (w *Writer) AppendBatch(entries [][]byte) (int64, error) {
	return w.AppendBatchCtx(entries, obs.TraceCtx{})
}

// AppendBatchCtx is AppendBatch carrying a causal context for the group
// commit. Batches aggregate entries from many requests, so the span is
// coarse: it parents on tc (by convention the first traced entry in the
// batch) and annotates nothing per-entry.
func (w *Writer) AppendBatchCtx(entries [][]byte, tc obs.TraceCtx) (int64, error) {
	if w.closed {
		return 0, ErrWriterClosed
	}
	first := w.next
	if len(entries) == 0 {
		return first, nil
	}
	var span obs.SpanRef
	if tc.Valid() {
		span = w.sys.tracer.Start(tc, "ledger.append.batch")
	}
	var start time.Time
	if w.sys.obsAppendLat != nil {
		start = w.sys.clock.Now()
	}
	w.sys.clock.Sleep(w.sys.AppendLatency + w.stragglerExtra())
	for _, data := range entries {
		if err := w.replicate(w.next, data); err != nil {
			span.EndErr(true)
			return first, err
		}
		w.next++
	}
	w.sys.obsAppends.Add(int64(len(entries)))
	w.sys.obsFanIn.ObserveValue(int64(len(entries)))
	if !start.IsZero() {
		w.sys.obsAppendLat.Observe(w.sys.clock.Now().Sub(start))
	}
	span.End()
	return first, nil
}

// replicate pushes one entry to its write quorum and requires ackQuorum
// durable copies. A fenced ensemble permanently closes the writer. When the
// quorum cannot be reached because replicas are down, the writer performs a
// BookKeeper-style ensemble change instead of failing: the dead bookies are
// swapped for live spares in the metadata, the entry retries against the new
// ensemble, and a background task re-replicates earlier entries onto the
// replacements.
func (w *Writer) replicate(entryID int64, data []byte) error {
	const maxEnsembleChanges = 2
	for change := 0; ; change++ {
		acks := 0
		var lastErr error
		var failed []int // ensemble positions that did not ack
		for j := 0; j < w.meta.WriteQuorum; j++ {
			pos := int((entryID + int64(j)) % int64(len(w.meta.Ensemble)))
			b, ok := w.sys.Bookie(w.meta.Ensemble[pos])
			if !ok {
				failed = append(failed, pos)
				continue
			}
			err := b.addEntry(w.ledgerID, entryID, data)
			if errors.Is(err, ErrDropped) {
				// One immediate retry absorbs an isolated lost RPC.
				err = b.addEntry(w.ledgerID, entryID, data)
			}
			if err != nil {
				if errors.Is(err, ErrFenced) {
					w.closed = true
					return err
				}
				lastErr = err
				failed = append(failed, pos)
				continue
			}
			acks++
		}
		if acks >= w.meta.AckQuorum {
			return nil
		}
		if change >= maxEnsembleChanges || len(failed) == 0 {
			return fmt.Errorf("%w: %d/%d acks (%v)", ErrQuorumLost, acks, w.meta.AckQuorum, lastErr)
		}
		if err := w.replaceBookies(failed); err != nil {
			return fmt.Errorf("%w: %d/%d acks (%v; ensemble change failed: %v)", ErrQuorumLost, acks, w.meta.AckQuorum, lastErr, err)
		}
	}
}

// replaceBookies swaps the ensemble members at the given positions for live
// spare bookies, persists the updated metadata, and starts background
// re-replication of the entries previously striped onto those positions.
// Fails with ErrNotEnough when no spare is available.
func (w *Writer) replaceBookies(positions []int) error {
	start := w.sys.clock.Now()
	inUse := make(map[string]bool, len(w.meta.Ensemble))
	for _, id := range w.meta.Ensemble {
		inUse[id] = true
	}
	w.sys.mu.Lock()
	var spares []string
	for _, id := range w.sys.order {
		if !inUse[id] && !w.sys.bookies[id].Down() {
			spares = append(spares, id)
		}
	}
	w.sys.mu.Unlock()
	if len(spares) < len(positions) {
		return fmt.Errorf("%w: need %d spare bookies, have %d", ErrNotEnough, len(positions), len(spares))
	}
	ensemble := append([]string(nil), w.meta.Ensemble...)
	replaced := make(map[int]string, len(positions)) // position -> old bookie
	for i, pos := range positions {
		replaced[pos] = ensemble[pos]
		ensemble[pos] = spares[i]
	}
	w.meta.Ensemble = ensemble
	raw, _ := json.Marshal(w.meta)
	if _, err := w.sys.meta.Set(metaPath(w.ledgerID), raw, coord.AnyVersion); err != nil {
		return err
	}
	w.sys.obsReplacements.Add(int64(len(positions)))
	// Restore the write quorum for the ledger prefix on a tracked goroutine
	// so the append path is not blocked behind the copy.
	md := w.meta
	md.Ensemble = append([]string(nil), ensemble...)
	upto := w.next
	sys, ledgerID := w.sys, w.ledgerID
	sys.clock.Go(func() {
		copied := sys.rereplicate(ledgerID, md, replaced, upto)
		sys.obsReplicated.Add(int64(copied))
		sys.obsRecoveries.Inc()
		sys.obsRecoveryTime.Observe(sys.clock.Now().Sub(start))
	})
	return nil
}

// rereplicate copies every entry in [0, upto) whose replica set includes a
// replaced ensemble position from a surviving replica onto the replacement
// bookie. Entries with no reachable replica are skipped: they were either
// never acked, or lost beyond what the quorum can protect.
func (s *System) rereplicate(ledgerID int64, md metadata, replaced map[int]string, upto int64) int {
	copied := 0
	for e := int64(0); e < upto; e++ {
		for j := 0; j < md.WriteQuorum; j++ {
			pos := int((e + int64(j)) % int64(len(md.Ensemble)))
			old, wasReplaced := replaced[pos]
			if !wasReplaced {
				continue
			}
			dst, ok := s.Bookie(md.Ensemble[pos])
			if !ok {
				continue
			}
			data := s.readReplica(ledgerID, md, e, pos)
			if data == nil {
				// Last resort: the replaced bookie may still serve reads
				// (e.g. it only dropped writes).
				if ob, ok := s.Bookie(old); ok {
					data, _ = ob.readEntry(ledgerID, e)
				}
			}
			if data == nil {
				continue
			}
			if err := dst.addEntry(ledgerID, e, data); err == nil {
				copied++
			}
		}
	}
	return copied
}

// readReplica fetches one entry from any replica position other than skipPos.
func (s *System) readReplica(ledgerID int64, md metadata, entryID int64, skipPos int) []byte {
	for j := 0; j < md.WriteQuorum; j++ {
		pos := int((entryID + int64(j)) % int64(len(md.Ensemble)))
		if pos == skipPos {
			continue
		}
		if b, ok := s.Bookie(md.Ensemble[pos]); ok {
			if data, err := b.readEntry(ledgerID, entryID); err == nil {
				return data
			}
		}
	}
	return nil
}

// stragglerExtra is the injected latency gating an append: the slowest
// ensemble member bounds the quorum round trip.
func (w *Writer) stragglerExtra() time.Duration {
	var max time.Duration
	for _, bid := range w.meta.Ensemble {
		if b, ok := w.sys.Bookie(bid); ok {
			if d := b.extraLatency(); d > max {
				max = d
			}
		}
	}
	return max
}

// Close seals the ledger, recording the last entry id in metadata.
func (w *Writer) Close() error {
	if w.closed {
		return ErrWriterClosed
	}
	w.closed = true
	w.meta.Closed = true
	w.meta.LastEntry = w.next - 1
	raw, _ := json.Marshal(w.meta)
	_, err := w.sys.meta.Set(metaPath(w.ledgerID), raw, coord.AnyVersion)
	return err
}

// Reader reads a closed ledger.
type Reader struct {
	sys      *System
	ledgerID int64
	meta     metadata
	// cold holds the ledger's entries when it was opened from the blob
	// tier (OpenTiered on an offloaded ledger).
	cold [][]byte
}

// OpenReader opens a closed ledger for reading. Opening a still-open ledger
// returns ErrNotClosed; use Recover for crashed writers.
func (s *System) OpenReader(ledgerID int64) (*Reader, error) {
	md, err := s.loadMeta(ledgerID)
	if err != nil {
		return nil, err
	}
	if !md.Closed {
		return nil, fmt.Errorf("%w: ledger %d", ErrNotClosed, ledgerID)
	}
	return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
}

// LastEntry returns the id of the final entry (-1 for an empty ledger).
func (r *Reader) LastEntry() int64 { return r.meta.LastEntry }

// Read returns entry entryID, trying each replica until a live bookie
// serves it.
func (r *Reader) Read(entryID int64) ([]byte, error) {
	if entryID < 0 || entryID > r.meta.LastEntry {
		return nil, fmt.Errorf("%w: %d (last is %d)", ErrNoEntry, entryID, r.meta.LastEntry)
	}
	var start time.Time
	if r.sys.obsReadLat != nil {
		start = r.sys.clock.Now()
	}
	r.sys.clock.Sleep(r.sys.ReadLatency)
	defer func() {
		if !start.IsZero() {
			r.sys.obsReadLat.Observe(r.sys.clock.Now().Sub(start))
		}
	}()
	var lastErr error
	for j := 0; j < r.meta.WriteQuorum; j++ {
		bid := r.meta.Ensemble[int(entryID+int64(j))%len(r.meta.Ensemble)]
		b, ok := r.sys.Bookie(bid)
		if !ok {
			continue
		}
		data, err := b.readEntry(r.ledgerID, entryID)
		if err == nil {
			r.sys.clock.Sleep(b.extraLatency())
			return data, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("ledger %d entry %d unreadable: %w", r.ledgerID, entryID, lastErr)
}

// ReadAll returns every entry in order.
func (r *Reader) ReadAll() ([][]byte, error) {
	out := make([][]byte, 0, r.meta.LastEntry+1)
	for e := int64(0); e <= r.meta.LastEntry; e++ {
		data, err := r.Read(e)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// Recover handles a crashed writer: it fences the ledger on every reachable
// ensemble bookie (so the old writer can no longer append), determines the
// last entry that reached the ack quorum, seals the metadata, and returns a
// Reader. Recovering an already-closed ledger just opens it.
func (s *System) Recover(ledgerID int64) (*Reader, error) {
	md, err := s.loadMeta(ledgerID)
	if err != nil {
		return nil, err
	}
	if md.Closed {
		return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
	}
	// Fence and collect per-bookie last-entry ids.
	reachable := 0
	var lasts []int64
	for _, bid := range md.Ensemble {
		b, ok := s.Bookie(bid)
		if !ok {
			continue
		}
		last, err := b.fence(ledgerID)
		if err != nil {
			continue
		}
		reachable++
		lasts = append(lasts, last)
	}
	if reachable == 0 {
		return nil, fmt.Errorf("%w: no ensemble bookie reachable for recovery", ErrNotEnough)
	}
	// An entry is recoverable if some reachable bookie holds it. Walk
	// forward from -1: the last recoverable entry is the max id for which
	// at least one bookie reports last ≥ id AND the entry is actually
	// readable from a replica. (Entries past the last acked one may exist
	// on a minority; BookKeeper recovers them too — anything readable is
	// kept, which preserves the "acked entries are never lost" guarantee.)
	sort.Slice(lasts, func(i, j int) bool { return lasts[i] < lasts[j] })
	maxSeen := lasts[len(lasts)-1]
	lastEntry := int64(-1)
	probe := Reader{sys: s, ledgerID: ledgerID, meta: metadata{
		Ensemble: md.Ensemble, WriteQuorum: md.WriteQuorum, AckQuorum: md.AckQuorum, Closed: true, LastEntry: maxSeen,
	}}
	for e := int64(0); e <= maxSeen; e++ {
		if _, err := probe.Read(e); err != nil {
			break
		}
		lastEntry = e
	}
	md.Closed = true
	md.LastEntry = lastEntry
	raw, _ := json.Marshal(md)
	if _, err := s.meta.Set(metaPath(ledgerID), raw, coord.AnyVersion); err != nil {
		return nil, err
	}
	return &Reader{sys: s, ledgerID: ledgerID, meta: md}, nil
}

// DeleteLedger removes a ledger's entries from all bookies and its metadata.
func (s *System) DeleteLedger(ledgerID int64) error {
	if _, err := s.loadMeta(ledgerID); err != nil {
		return err
	}
	s.mu.Lock()
	bookies := make([]*Bookie, 0, len(s.order))
	for _, id := range s.order {
		bookies = append(bookies, s.bookies[id])
	}
	s.mu.Unlock()
	for _, b := range bookies {
		b.deleteLedger(ledgerID)
	}
	return s.meta.Delete(metaPath(ledgerID), coord.AnyVersion)
}

func (s *System) loadMeta(ledgerID int64) (metadata, error) {
	raw, _, err := s.meta.Get(metaPath(ledgerID))
	if err != nil {
		return metadata{}, fmt.Errorf("%w: %d", ErrNoLedger, ledgerID)
	}
	var md metadata
	if err := json.Unmarshal(raw, &md); err != nil {
		return metadata{}, err
	}
	return md, nil
}

func metaPath(id int64) string { return fmt.Sprintf("%s/%d", metaRoot, id) }
