package ledger

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/simclock"
)

func TestAppendBatchOrderAndIDs(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	// Mix single appends and batches; ids must stay contiguous.
	if _, err := w.Append([]byte("solo-0")); err != nil {
		t.Fatal(err)
	}
	batch := make([][]byte, 5)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("batch-%d", i))
	}
	first, err := w.AppendBatch(batch)
	must(t, err)
	if first != 1 {
		t.Fatalf("batch first id = %d, want 1", first)
	}
	id, err := w.Append([]byte("solo-1"))
	must(t, err)
	if id != 6 {
		t.Fatalf("post-batch id = %d, want 6", id)
	}
	must(t, w.Close())
	r, err := s.OpenReader(w.ID())
	must(t, err)
	all, err := r.ReadAll()
	must(t, err)
	want := []string{"solo-0", "batch-0", "batch-1", "batch-2", "batch-3", "batch-4", "solo-1"}
	if len(all) != len(want) {
		t.Fatalf("got %d entries, want %d", len(all), len(want))
	}
	for i, e := range all {
		if string(e) != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, e, want[i])
		}
	}
}

func TestAppendBatchEmptyAndClosed(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	if first, err := w.AppendBatch(nil); err != nil || first != 0 {
		t.Fatalf("empty batch = (%d, %v)", first, err)
	}
	must(t, w.Close())
	if _, err := w.AppendBatch([][]byte{[]byte("x")}); !errors.Is(err, ErrWriterClosed) {
		t.Fatalf("err = %v, want ErrWriterClosed", err)
	}
}

// TestAppendBatchGroupCommitLatency is the point of batching: the modelled
// durability round trip is paid once per batch, not once per entry.
func TestAppendBatchGroupCommitLatency(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewSystem(v, coord.NewStore(v))
	for i := 0; i < 3; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	s.AppendLatency = time.Millisecond
	v.Run(func() {
		w, err := s.CreateLedger(3, 2, 2)
		must(t, err)
		start := v.Now()
		batch := make([][]byte, 10)
		for i := range batch {
			batch[i] = []byte("x")
		}
		if _, err := w.AppendBatch(batch); err != nil {
			t.Error(err)
			return
		}
		if got := v.Now().Sub(start); got != time.Millisecond {
			t.Errorf("batch of 10 cost %v, want one AppendLatency (1ms)", got)
		}
		start = v.Now()
		for i := 0; i < 10; i++ {
			if _, err := w.Append([]byte("y")); err != nil {
				t.Error(err)
				return
			}
		}
		if got := v.Now().Sub(start); got != 10*time.Millisecond {
			t.Errorf("10 single appends cost %v, want 10ms", got)
		}
	})
}

func TestAppendBatchQuorumLoss(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 3, 3)
	must(t, err)
	b, _ := s.Bookie("bookie-1")
	b.SetDown(true)
	if _, err := w.AppendBatch([][]byte{[]byte("a"), []byte("b")}); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
}

// TestBookieSharesEntryBuffer pins the single-copy contract: replicas of an
// entry share one buffer rather than copying per bookie, and reads still
// hand back a private copy.
func TestBookieSharesEntryBuffer(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 3, 3)
	must(t, err)
	data := []byte("immutable")
	id, err := w.Append(data)
	must(t, err)
	var bufs [][]byte
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.mu.Lock()
		bufs = append(bufs, b.ledgers[w.ledgerID].entries[id])
		b.mu.Unlock()
	}
	for i := 1; i < len(bufs); i++ {
		if &bufs[0][0] != &bufs[i][0] {
			t.Fatalf("bookie %d holds a private copy; replicas should share the writer's buffer", i)
		}
	}
	must(t, w.Close())
	r, err := s.OpenReader(w.ID())
	must(t, err)
	got, err := r.Read(id)
	must(t, err)
	if &got[0] == &bufs[0][0] {
		t.Fatal("Read returned the stored buffer; readers must get a copy")
	}
}
