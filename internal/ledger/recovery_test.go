package ledger

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/obs"
	"repro/internal/simclock"
)

// TestEnsembleChangeOnBookieCrash is the tentpole recovery guarantee: a
// bookie crash mid-ledger no longer kills the writer with ErrQuorumLost —
// the dead bookie is swapped for a spare, the append completes, and the
// ledger prefix is re-replicated onto the replacement.
func TestEnsembleChangeOnBookieCrash(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewSystem(v, coord.NewStore(v))
	for i := 0; i < 5; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	reg := obs.New(v)
	s.SetObs(reg)

	var w *Writer
	v.Run(func() {
		var err error
		w, err = s.CreateLedger(3, 2, 2)
		must(t, err)
		for i := 0; i < 8; i++ {
			_, err := w.Append([]byte(fmt.Sprintf("pre-%d", i)))
			must(t, err)
		}
		// Crash an ensemble member; the next append must still commit.
		b, _ := s.Bookie(w.meta.Ensemble[1])
		b.SetDown(true)
		for i := 0; i < 8; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("post-%d", i))); err != nil {
				t.Errorf("append after crash: %v", err)
				return
			}
		}
		must(t, w.Close())
	})
	// Run has drained stragglers: background re-replication is complete.
	for _, id := range w.meta.Ensemble {
		if id == "bookie-1" {
			t.Fatalf("crashed bookie still in ensemble %v", w.meta.Ensemble)
		}
	}
	// Every entry must be readable with the crashed bookie still down.
	v.Run(func() {
		r, err := s.OpenReader(w.ID())
		must(t, err)
		all, err := r.ReadAll()
		must(t, err)
		if len(all) != 16 {
			t.Fatalf("read %d entries, want 16", len(all))
		}
	})
	if got := reg.CounterValue("ledger.recoveries"); got < 1 {
		t.Fatalf("ledger.recoveries = %d, want >= 1", got)
	}
	// Entries 0..8 whose stripe hits the replaced position: e%3 ∈ {0,1}.
	if got := reg.CounterValue("ledger.rereplicated.entries"); got < 6 {
		t.Fatalf("ledger.rereplicated.entries = %d, want >= 6 (prefix copied)", got)
	}
}

// TestEnsembleChangeMidBatch crashes a bookie between two batch appends and
// requires the second batch to commit via ensemble replacement.
func TestEnsembleChangeMidBatch(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewSystem(v, coord.NewStore(v))
	for i := 0; i < 5; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	v.Run(func() {
		w, err := s.CreateLedger(3, 3, 2)
		must(t, err)
		if _, err := w.AppendBatch([][]byte{[]byte("a"), []byte("b")}); err != nil {
			t.Error(err)
			return
		}
		b, _ := s.Bookie(w.meta.Ensemble[0])
		b.SetDown(true)
		if _, err := w.AppendBatch([][]byte{[]byte("c"), []byte("d")}); err != nil {
			t.Errorf("batch after crash: %v", err)
			return
		}
		must(t, w.Close())
		r, err := s.OpenReader(w.ID())
		must(t, err)
		all, err := r.ReadAll()
		must(t, err)
		if len(all) != 4 {
			t.Errorf("read %d entries, want 4", len(all))
		}
	})
}

// TestEnsembleChangeExhaustsSpares pins the degraded path: with no spare
// bookies left the writer still reports ErrQuorumLost.
func TestEnsembleChangeExhaustsSpares(t *testing.T) {
	s := newSystem(3) // ensemble uses all three: no spares
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	for i := 0; i < 2; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.SetDown(true)
	}
	if _, err := w.Append([]byte("x")); !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost", err)
	}
}

// TestDropNextAbsorbedByRetry: a single injected RPC drop is healed by the
// writer's immediate retry without an ensemble change.
func TestDropNextAbsorbedByRetry(t *testing.T) {
	s := newSystem(3)
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	b, _ := s.Bookie(w.meta.Ensemble[0])
	b.DropNext(1)
	before := append([]string(nil), w.meta.Ensemble...)
	if _, err := w.Append([]byte("x")); err != nil {
		t.Fatalf("append with one drop: %v", err)
	}
	for i, id := range w.meta.Ensemble {
		if id != before[i] {
			t.Fatalf("ensemble changed on a transient drop: %v -> %v", before, w.meta.Ensemble)
		}
	}
}

// TestSetSlowGatesAppend: an injected straggler bounds the append round trip.
func TestSetSlowGatesAppend(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewSystem(v, coord.NewStore(v))
	for i := 0; i < 3; i++ {
		s.AddBookie(NewBookie(fmt.Sprintf("bookie-%d", i)))
	}
	s.AppendLatency = time.Millisecond
	v.Run(func() {
		w, err := s.CreateLedger(3, 2, 2)
		must(t, err)
		b, _ := s.Bookie(w.meta.Ensemble[0])
		b.SetSlow(5 * time.Millisecond)
		start := v.Now()
		if _, err := w.Append([]byte("x")); err != nil {
			t.Error(err)
			return
		}
		if got := v.Now().Sub(start); got != 6*time.Millisecond {
			t.Errorf("straggler append cost %v, want 6ms", got)
		}
		b.SetSlow(0)
	})
}
