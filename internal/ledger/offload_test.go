package ledger

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/blob"
	"repro/internal/simclock"
)

func tieredSystem(t *testing.T) (*System, *blob.Store) {
	t.Helper()
	s := newSystem(3)
	store := blob.New(simclock.Real{}, nil, blob.LatencyModel{})
	if err := store.CreateBucket("tier", "t"); err != nil {
		t.Fatal(err)
	}
	return s, store
}

func TestOffloadMovesEntriesToColdTier(t *testing.T) {
	s, store := tieredSystem(t)
	w, err := s.CreateLedger(3, 2, 2)
	must(t, err)
	for i := 0; i < 8; i++ {
		_, err := w.Append([]byte(fmt.Sprintf("e%d", i)))
		must(t, err)
	}
	must(t, w.Close())
	must(t, s.Offload(w.ID(), store, "tier"))

	if !s.IsOffloaded(w.ID()) {
		t.Fatal("ledger not marked offloaded")
	}
	// Bookies are empty: space reclaimed.
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		if b.EntryCount() != 0 {
			t.Fatalf("%s still holds entries after offload", b.ID)
		}
	}
	// Tiered reads return the exact entries.
	r, err := s.OpenTiered(w.ID(), store)
	must(t, err)
	for i := int64(0); i < 8; i++ {
		data, err := r.ReadTiered(i)
		must(t, err)
		if string(data) != fmt.Sprintf("e%d", i) {
			t.Fatalf("entry %d = %q", i, data)
		}
	}
	if _, err := r.ReadTiered(8); !errors.Is(err, ErrNoEntry) {
		t.Fatalf("out-of-range err = %v", err)
	}
}

func TestOffloadRequiresClosed(t *testing.T) {
	s, store := tieredSystem(t)
	w, _ := s.CreateLedger(3, 2, 2)
	if err := s.Offload(w.ID(), store, "tier"); !errors.Is(err, ErrNotClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestOpenTieredOnHotLedger(t *testing.T) {
	s, store := tieredSystem(t)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("hot"))
	must(t, err)
	must(t, w.Close())
	r, err := s.OpenTiered(w.ID(), store)
	must(t, err)
	data, err := r.ReadTiered(0)
	must(t, err)
	if string(data) != "hot" {
		t.Fatalf("data = %q", data)
	}
}

func TestOffloadSurvivesAllBookiesDown(t *testing.T) {
	// The point of tiered storage: once offloaded, the data no longer
	// depends on the bookie ensemble at all.
	s, store := tieredSystem(t)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("precious"))
	must(t, err)
	must(t, w.Close())
	must(t, s.Offload(w.ID(), store, "tier"))
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.SetDown(true)
	}
	r, err := s.OpenTiered(w.ID(), store)
	must(t, err)
	data, err := r.ReadTiered(0)
	must(t, err)
	if string(data) != "precious" {
		t.Fatalf("data = %q", data)
	}
}

func TestOffloadUnknownLedger(t *testing.T) {
	s, store := tieredSystem(t)
	if err := s.Offload(999, store, "tier"); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("err = %v", err)
	}
	if _, err := s.OpenTiered(999, store); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("err = %v", err)
	}
	if s.IsOffloaded(999) {
		t.Fatal("unknown ledger reported offloaded")
	}
}

func TestRecoverWithNoReachableBookies(t *testing.T) {
	s := newSystem(3)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("x"))
	must(t, err)
	for i := 0; i < 3; i++ {
		b, _ := s.Bookie(fmt.Sprintf("bookie-%d", i))
		b.SetDown(true)
	}
	if _, err := s.Recover(w.ID()); !errors.Is(err, ErrNotEnough) {
		t.Fatalf("recover with no bookies err = %v", err)
	}
}

func TestDeleteAfterOffloadRemovesMetadata(t *testing.T) {
	s, store := tieredSystem(t)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("x"))
	must(t, err)
	must(t, w.Close())
	must(t, s.Offload(w.ID(), store, "tier"))
	must(t, s.DeleteLedger(w.ID()))
	if _, err := s.OpenTiered(w.ID(), store); !errors.Is(err, ErrNoLedger) {
		t.Fatalf("open after delete err = %v", err)
	}
}

func TestOffloadIdempotentMetadata(t *testing.T) {
	// Offloading twice re-uploads but must not corrupt reads.
	s, store := tieredSystem(t)
	w, _ := s.CreateLedger(3, 2, 2)
	_, err := w.Append([]byte("once"))
	must(t, err)
	must(t, w.Close())
	must(t, s.Offload(w.ID(), store, "tier"))
	// Second offload reads via the (now empty) bookie path and must fail
	// cleanly rather than write an empty object over good data.
	if err := s.Offload(w.ID(), store, "tier"); err == nil {
		// If it succeeded it must still be readable.
		r, err := s.OpenTiered(w.ID(), store)
		must(t, err)
		data, err := r.ReadTiered(0)
		must(t, err)
		if string(data) != "once" {
			t.Fatalf("double offload corrupted data: %q", data)
		}
	}
}
