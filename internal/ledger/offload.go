package ledger

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/blob"
	"repro/internal/coord"
)

// ErrNotOffloaded is returned when tiered reads find no offload object.
var ErrNotOffloaded = errors.New("ledger: ledger is not offloaded")

// offloadMeta extends a ledger's metadata with its cold-tier location.
type offloadMeta struct {
	metadata
	Offloaded bool   `json:"offloaded,omitempty"`
	Bucket    string `json:"bucket,omitempty"`
	Key       string `json:"key,omitempty"`
}

// Offload moves a closed ledger's entries to the blob store — Pulsar's
// tiered storage (§4.3): hot data on bookies, older segments on cheap
// object storage, transparently readable. The bookies' copies are deleted;
// subsequent reads fetch (and cache) the offload object, paying blob-store
// latency instead of bookie latency.
func (s *System) Offload(ledgerID int64, store *blob.Store, bucket string) error {
	md, err := s.loadMeta(ledgerID)
	if err != nil {
		return err
	}
	if !md.Closed {
		return fmt.Errorf("%w: ledger %d", ErrNotClosed, ledgerID)
	}
	r := &Reader{sys: s, ledgerID: ledgerID, meta: md}
	entries, err := r.ReadAll()
	if err != nil {
		return err
	}
	payload, err := json.Marshal(entries) // [][]byte → base64 JSON array
	if err != nil {
		return err
	}
	key := fmt.Sprintf("ledgers/%d", ledgerID)
	if _, err := store.Put(bucket, key, payload, blob.PutOptions{}); err != nil {
		return err
	}
	om := offloadMeta{metadata: md, Offloaded: true, Bucket: bucket, Key: key}
	raw, _ := json.Marshal(om)
	if _, err := s.meta.Set(metaPath(ledgerID), raw, coord.AnyVersion); err != nil {
		return err
	}
	// Reclaim bookie space.
	s.mu.Lock()
	bookies := make([]*Bookie, 0, len(s.order))
	for _, id := range s.order {
		bookies = append(bookies, s.bookies[id])
	}
	s.mu.Unlock()
	for _, b := range bookies {
		b.deleteLedger(ledgerID)
	}
	return nil
}

// IsOffloaded reports whether the ledger lives on the cold tier.
func (s *System) IsOffloaded(ledgerID int64) bool {
	raw, _, err := s.meta.Get(metaPath(ledgerID))
	if err != nil {
		return false
	}
	var om offloadMeta
	if json.Unmarshal(raw, &om) != nil {
		return false
	}
	return om.Offloaded
}

// OpenTiered opens a closed ledger wherever it lives: bookies for hot
// ledgers, the blob store for offloaded ones.
func (s *System) OpenTiered(ledgerID int64, store *blob.Store) (*Reader, error) {
	raw, _, err := s.meta.Get(metaPath(ledgerID))
	if err != nil {
		return nil, fmt.Errorf("%w: %d", ErrNoLedger, ledgerID)
	}
	var om offloadMeta
	if err := json.Unmarshal(raw, &om); err != nil {
		return nil, err
	}
	if !om.Closed {
		return nil, fmt.Errorf("%w: ledger %d", ErrNotClosed, ledgerID)
	}
	r := &Reader{sys: s, ledgerID: ledgerID, meta: om.metadata}
	if om.Offloaded {
		payload, _, err := store.Get(om.Bucket, om.Key)
		if err != nil {
			return nil, err
		}
		var entries [][]byte
		if err := json.Unmarshal(payload, &entries); err != nil {
			return nil, err
		}
		r.cold = entries
	}
	return r, nil
}

// ReadTiered returns entry entryID from the reader's tier.
func (r *Reader) ReadTiered(entryID int64) ([]byte, error) {
	if r.cold != nil {
		if entryID < 0 || entryID >= int64(len(r.cold)) {
			return nil, fmt.Errorf("%w: %d (last is %d)", ErrNoEntry, entryID, len(r.cold)-1)
		}
		return append([]byte(nil), r.cold[entryID]...), nil
	}
	return r.Read(entryID)
}
