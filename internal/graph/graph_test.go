package graph

import (
	"math"
	"testing"

	"repro/internal/faas"
	"repro/internal/jiffy"
	"repro/internal/simclock"
)

func TestGeneratorsShape(t *testing.T) {
	g := Random(100, 3, 1)
	if g.N != 100 || g.Edges() != 300 {
		t.Fatalf("random graph: n=%d edges=%d", g.N, g.Edges())
	}
	r := Ring(10)
	if r.Edges() != 20 {
		t.Fatalf("ring edges = %d", r.Edges())
	}
	s := Star(5)
	if s.Edges() != 8 {
		t.Fatalf("star edges = %d", s.Edges())
	}
	// Determinism.
	g2 := Random(100, 3, 1)
	for v := 0; v < g.N; v++ {
		for i, e := range g.Adj[v] {
			if g2.Adj[v][i] != e {
				t.Fatal("Random graph nondeterministic")
			}
		}
	}
}

func TestPageRankSerialSums(t *testing.T) {
	g := Random(50, 4, 2)
	pr := PageRankSerial(g, 30, 0.85)
	sum := 0.0
	for _, r := range pr {
		sum += r
	}
	// Mass is conserved up to dangling-vertex leakage (none here: every
	// vertex has out-degree 4).
	if math.Abs(sum-1) > 0.01 {
		t.Fatalf("pagerank sum = %v", sum)
	}
}

func TestSSSPSerialOnRing(t *testing.T) {
	g := Ring(10)
	dist := SSSPSerial(g, 0)
	if dist[5] != 5 || dist[9] != 1 || dist[0] != 0 {
		t.Fatalf("dist = %v", dist)
	}
}

func TestWCCSerial(t *testing.T) {
	g := NewGraph(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 0, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 2, 1)
	labels := WCCSerial(g)
	if labels[0] != 0 || labels[1] != 0 || labels[2] != 2 || labels[3] != 2 {
		t.Fatalf("labels = %v", labels)
	}
	if labels[4] != 4 || labels[5] != 5 {
		t.Fatalf("isolated labels = %v", labels)
	}
}

func pregelEnv(t *testing.T) (*simclock.Virtual, *faas.Platform, *jiffy.Namespace) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	p := faas.New(v, nil)
	ctrl := jiffy.NewController(v, nil, jiffy.Config{BlockSize: 1 << 20, Latency: jiffy.NoLatency})
	ctrl.AddNode("n0", 256)
	ns, err := ctrl.CreateNamespace("/pregel", jiffy.NamespaceOptions{Lease: -1, InitialBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	return v, p, ns
}

func TestPregelPageRankMatchesSerial(t *testing.T) {
	v, p, ns := pregelEnv(t)
	g := Random(60, 4, 3)
	want := PageRankSerial(g, 20, 0.85)
	var got []float64
	v.Run(func() {
		var err error
		got, _, err = Run(p, ns, g, PageRank(20, 0.85), EngineConfig{Workers: 4, MaxSupersteps: 25})
		if err != nil {
			t.Error(err)
		}
	})
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("rank[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPregelSSSPMatchesDijkstra(t *testing.T) {
	v, p, ns := pregelEnv(t)
	g := Random(80, 3, 4)
	want := SSSPSerial(g, 0)
	var got []float64
	var stats RunStats
	v.Run(func() {
		var err error
		got, stats, err = Run(p, ns, g, SSSP(0), EngineConfig{Workers: 5, MaxSupersteps: 100})
		if err != nil {
			t.Error(err)
		}
	})
	for i := range want {
		if want[i] != got[i] && !(math.IsInf(want[i], 1) && math.IsInf(got[i], 1)) {
			t.Fatalf("dist[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if stats.Supersteps == 0 || stats.MessagesSent == 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPregelWCCMatchesUnionFind(t *testing.T) {
	v, p, ns := pregelEnv(t)
	// Three components: a ring, a pair, an isolated vertex.
	g := NewGraph(13)
	for i := 0; i < 10; i++ {
		g.AddEdge(i, (i+1)%10, 1)
		g.AddEdge((i+1)%10, i, 1)
	}
	g.AddEdge(10, 11, 1)
	g.AddEdge(11, 10, 1)
	want := WCCSerial(g)
	var got []float64
	v.Run(func() {
		var err error
		got, _, err = Run(p, ns, g, WCC(), EngineConfig{Workers: 3, MaxSupersteps: 50})
		if err != nil {
			t.Error(err)
		}
	})
	for i := range want {
		if int(got[i]) != want[i] {
			t.Fatalf("label[%d] = %v, want %d", i, got[i], want[i])
		}
	}
}

func TestPregelHaltsEarly(t *testing.T) {
	v, p, ns := pregelEnv(t)
	g := Ring(6) // SSSP on a small ring converges in ~4 supersteps
	var stats RunStats
	v.Run(func() {
		var err error
		_, stats, err = Run(p, ns, g, SSSP(0), EngineConfig{Workers: 2, MaxSupersteps: 100})
		if err != nil {
			t.Error(err)
		}
	})
	if stats.Supersteps >= 100 || stats.Supersteps < 3 {
		t.Fatalf("supersteps = %d, expected early halt", stats.Supersteps)
	}
}

func TestPregelWorkersCappedByVertices(t *testing.T) {
	v, p, ns := pregelEnv(t)
	g := Ring(3)
	v.Run(func() {
		got, _, err := Run(p, ns, g, SSSP(0), EngineConfig{Workers: 16, MaxSupersteps: 20})
		if err != nil {
			t.Error(err)
			return
		}
		if got[1] != 1 || got[2] != 1 {
			t.Errorf("dist = %v", got)
		}
	})
}
