package graph

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/faas"
	"repro/internal/jiffy"
)

// VertexProgram defines one vertex-centric computation (the Pregel model
// [142]). Compute receives the vertex's current value and incoming messages,
// returns the new value and outgoing messages, and votes to halt by
// returning active=false. A halted vertex is reactivated by any incoming
// message.
type VertexProgram struct {
	// Init gives vertex v's initial value.
	Init func(v int, g *Graph) float64
	// Compute runs once per active vertex per superstep.
	Compute func(v int, g *Graph, value float64, msgs []float64, step int) (newValue float64, outgoing []Message, active bool)
}

// Message is one value sent to a destination vertex for the next superstep.
type Message struct {
	To    int     `json:"to"`
	Value float64 `json:"value"`
}

// EngineConfig parameterizes a Pregel run.
type EngineConfig struct {
	// Workers is the partition count; each superstep runs one FaaS
	// invocation per partition. Default 4.
	Workers int
	// MaxSupersteps bounds the run. Default 50.
	MaxSupersteps int
	// Tenant owns the worker function. Default "graph".
	Tenant string
	// WorkPerVertex models compute time per vertex visit.
	WorkPerVertex time.Duration
	// Worker overrides the function config.
	Worker faas.Config
}

func (c EngineConfig) withDefaults() EngineConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxSupersteps <= 0 {
		c.MaxSupersteps = 50
	}
	if c.Tenant == "" {
		c.Tenant = "graph"
	}
	if c.Worker.ColdStart == 0 {
		c.Worker.ColdStart = time.Millisecond
	}
	if c.Worker.MaxRetries == 0 {
		c.Worker.MaxRetries = -1
	}
	if c.Worker.Timeout == 0 {
		c.Worker.Timeout = 5 * time.Minute
	}
	return c
}

// RunStats reports a completed Pregel run.
type RunStats struct {
	Supersteps   int
	MessagesSent int64
}

// Run executes a vertex program over g on the platform, with vertex values
// and inter-partition messages exchanged through the Jiffy namespace ns. It
// returns the final vertex values.
func Run(p *faas.Platform, ns *jiffy.Namespace, g *Graph, prog VertexProgram, cfg EngineConfig) ([]float64, RunStats, error) {
	cfg = cfg.withDefaults()
	W := cfg.Workers
	if W > g.N {
		W = g.N
	}
	part := func(v int) int { return v % W }

	// Initialise vertex values in ephemeral storage, one record per
	// partition.
	values := make([]float64, g.N)
	active := make([]bool, g.N)
	for v := 0; v < g.N; v++ {
		values[v] = prog.Init(v, g)
		active[v] = true
	}
	if err := putPartitionState(ns, values, active, part, W); err != nil {
		return nil, RunStats{}, err
	}

	fnName := fmt.Sprintf("pregel-%s", ns.Path()[1:])
	worker := func(ctx *faas.Ctx, payload []byte) ([]byte, error) {
		var in struct {
			Partition int `json:"partition"`
			Step      int `json:"step"`
		}
		if err := json.Unmarshal(payload, &in); err != nil {
			return nil, err
		}
		st, err := getPartitionState(ns, in.Partition)
		if err != nil {
			return nil, err
		}
		// Gather inbound messages from every partition, freeing each
		// batch once consumed (ephemeral state discipline).
		inbox := map[int][]float64{}
		for src := 0; src < W; src++ {
			key := msgKey(in.Step, src, in.Partition)
			raw, err := ns.Get(key)
			if err != nil {
				continue // no messages from src
			}
			ms, err := unmarshalMessages(raw)
			if err != nil {
				return nil, err
			}
			_ = ns.Delete(key)
			for _, m := range ms {
				inbox[m.To] = append(inbox[m.To], m.Value)
			}
		}
		// Compute active vertices (message receipt reactivates).
		outByPart := make([][]Message, W)
		visited := 0
		anyActive := false
		for i, v := range st.Vertices {
			msgs := inbox[v]
			if !st.Active[i] && len(msgs) == 0 {
				continue
			}
			visited++
			newVal, outgoing, stillActive := prog.Compute(v, g, st.Values[i], msgs, in.Step)
			st.Values[i] = newVal
			st.Active[i] = stillActive
			if stillActive {
				anyActive = true
			}
			for _, m := range outgoing {
				outByPart[part(m.To)] = append(outByPart[part(m.To)], m)
			}
		}
		ctx.Work(time.Duration(visited) * cfg.WorkPerVertex)
		sent := int64(0)
		for dst, ms := range outByPart {
			if len(ms) == 0 {
				continue
			}
			if err := ns.Put(msgKey(in.Step+1, in.Partition, dst), marshalMessages(ms)); err != nil {
				return nil, err
			}
			sent += int64(len(ms))
		}
		if err := putOnePartition(ns, in.Partition, st); err != nil {
			return nil, err
		}
		return json.Marshal(struct {
			Sent   int64 `json:"sent"`
			Active bool  `json:"active"`
		}{sent, anyActive})
	}
	if err := p.Register(fnName, cfg.Tenant, worker, cfg.Worker); err != nil {
		return nil, RunStats{}, err
	}
	defer p.Unregister(fnName)

	stats := RunStats{}
	for step := 0; step < cfg.MaxSupersteps; step++ {
		var wg sync.WaitGroup
		var mu sync.Mutex
		var firstErr error
		stepSent := int64(0)
		stepActive := false
		for q := 0; q < W; q++ {
			payload, _ := json.Marshal(struct {
				Partition int `json:"partition"`
				Step      int `json:"step"`
			}{q, step})
			wg.Add(1)
			p.InvokeAsync(fnName, payload, func(res faas.Result, err error) {
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				} else if err == nil {
					var out struct {
						Sent   int64 `json:"sent"`
						Active bool  `json:"active"`
					}
					if json.Unmarshal(res.Output, &out) == nil {
						stepSent += out.Sent
						stepActive = stepActive || out.Active
					}
				}
				mu.Unlock()
				wg.Done()
			})
		}
		p.Clock().BlockOn(wg.Wait)
		if firstErr != nil {
			return nil, stats, firstErr
		}
		stats.Supersteps++
		stats.MessagesSent += stepSent
		if stepSent == 0 && !stepActive {
			break // global vote to halt
		}
	}

	// Collect final values.
	out := make([]float64, g.N)
	for q := 0; q < W; q++ {
		st, err := getPartitionState(ns, q)
		if err != nil {
			return nil, stats, err
		}
		for i, v := range st.Vertices {
			out[v] = st.Values[i]
		}
	}
	return out, stats, nil
}

type partState struct {
	Vertices []int
	Values   []float64
	Active   []bool
}

// wireState is partState's serialized form. Values travel as IEEE-754 bits
// because encoding/json rejects ±Inf — and SSSP's unreached distances are
// exactly +Inf.
type wireState struct {
	Vertices  []int    `json:"vertices"`
	ValueBits []uint64 `json:"value_bits"`
	Active    []bool   `json:"active"`
}

func (st partState) marshal() []byte {
	w := wireState{Vertices: st.Vertices, Active: st.Active, ValueBits: make([]uint64, len(st.Values))}
	for i, v := range st.Values {
		w.ValueBits[i] = math.Float64bits(v)
	}
	raw, _ := json.Marshal(w)
	return raw
}

func unmarshalState(raw []byte) (partState, error) {
	var w wireState
	if err := json.Unmarshal(raw, &w); err != nil {
		return partState{}, err
	}
	st := partState{Vertices: w.Vertices, Active: w.Active, Values: make([]float64, len(w.ValueBits))}
	for i, b := range w.ValueBits {
		st.Values[i] = math.Float64frombits(b)
	}
	return st, nil
}

func putPartitionState(ns *jiffy.Namespace, values []float64, active []bool, part func(int) int, w int) error {
	states := make([]partState, w)
	for v := range values {
		q := part(v)
		states[q].Vertices = append(states[q].Vertices, v)
		states[q].Values = append(states[q].Values, values[v])
		states[q].Active = append(states[q].Active, active[v])
	}
	for q := range states {
		if err := putOnePartition(ns, q, states[q]); err != nil {
			return err
		}
	}
	return nil
}

func putOnePartition(ns *jiffy.Namespace, q int, st partState) error {
	return ns.Put(fmt.Sprintf("state/%d", q), st.marshal())
}

func getPartitionState(ns *jiffy.Namespace, q int) (partState, error) {
	raw, err := ns.Get(fmt.Sprintf("state/%d", q))
	if err != nil {
		return partState{}, err
	}
	return unmarshalState(raw)
}

func msgKey(step, src, dst int) string {
	return fmt.Sprintf("msgs/%d/%d/%d", step, src, dst)
}

// wireMsgs carries message values as IEEE-754 bits (json rejects ±Inf).
type wireMsgs struct {
	To   []int    `json:"to"`
	Bits []uint64 `json:"bits"`
}

func marshalMessages(ms []Message) []byte {
	w := wireMsgs{To: make([]int, len(ms)), Bits: make([]uint64, len(ms))}
	for i, m := range ms {
		w.To[i] = m.To
		w.Bits[i] = math.Float64bits(m.Value)
	}
	raw, _ := json.Marshal(w)
	return raw
}

func unmarshalMessages(raw []byte) ([]Message, error) {
	var w wireMsgs
	if err := json.Unmarshal(raw, &w); err != nil {
		return nil, err
	}
	ms := make([]Message, len(w.To))
	for i := range ms {
		ms[i] = Message{To: w.To[i], Value: math.Float64frombits(w.Bits[i])}
	}
	return ms, nil
}
