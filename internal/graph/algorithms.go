package graph

import "math"

// PageRank returns the vertex program computing iters rounds of PageRank
// with the given damping factor.
func PageRank(iters int, damping float64) VertexProgram {
	return VertexProgram{
		Init: func(v int, g *Graph) float64 { return 1.0 / float64(g.N) },
		Compute: func(v int, g *Graph, value float64, msgs []float64, step int) (float64, []Message, bool) {
			newVal := value
			if step > 0 {
				sum := 0.0
				for _, m := range msgs {
					sum += m
				}
				newVal = (1-damping)/float64(g.N) + damping*sum
			}
			if step >= iters {
				return newVal, nil, false
			}
			var out []Message
			if deg := len(g.Adj[v]); deg > 0 {
				share := newVal / float64(deg)
				for _, e := range g.Adj[v] {
					out = append(out, Message{To: e.To, Value: share})
				}
			}
			return newVal, out, true
		},
	}
}

// SSSP returns the vertex program computing single-source shortest paths
// from src (parallel Bellman-Ford with vote-to-halt).
func SSSP(src int) VertexProgram {
	return VertexProgram{
		Init: func(v int, g *Graph) float64 {
			if v == src {
				return 0
			}
			return math.Inf(1)
		},
		Compute: func(v int, g *Graph, value float64, msgs []float64, step int) (float64, []Message, bool) {
			best := value
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			improved := best < value || (step == 0 && v == src)
			if !improved {
				return best, nil, false
			}
			var out []Message
			for _, e := range g.Adj[v] {
				out = append(out, Message{To: e.To, Value: best + e.Weight})
			}
			return best, out, false // halt; messages reactivate
		},
	}
}

// WCC returns the vertex program labelling weakly connected components with
// the minimum vertex id (min-label propagation). It treats edges as
// undirected only if the graph already contains both directions.
func WCC() VertexProgram {
	return VertexProgram{
		Init: func(v int, g *Graph) float64 { return float64(v) },
		Compute: func(v int, g *Graph, value float64, msgs []float64, step int) (float64, []Message, bool) {
			best := value
			for _, m := range msgs {
				if m < best {
					best = m
				}
			}
			improved := best < value || step == 0
			if !improved {
				return best, nil, false
			}
			var out []Message
			for _, e := range g.Adj[v] {
				out = append(out, Message{To: e.To, Value: best})
			}
			return best, out, false
		},
	}
}
