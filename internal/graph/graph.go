// Package graph implements the serverless graph processing workload of §5.1
// ([173], Graphless): a vertex-centric BSP ("Pregel" [142]) engine whose
// per-superstep vertex computation fans out over FaaS workers, with vertex
// state and message exchange held in an in-memory engine — here a Jiffy
// namespace, standing in for the distributed Redis memory engine Toader et
// al. used. PageRank, single-source shortest paths and connected components
// are provided as vertex programs with exact serial baselines.
package graph

import (
	"container/heap"
	"math"
	"math/rand"
)

// Edge is a weighted directed edge.
type Edge struct {
	To     int
	Weight float64
}

// Graph is a directed graph in adjacency-list form.
type Graph struct {
	N   int
	Adj [][]Edge
}

// NewGraph creates an empty graph with n vertices.
func NewGraph(n int) *Graph {
	return &Graph{N: n, Adj: make([][]Edge, n)}
}

// AddEdge adds a directed edge.
func (g *Graph) AddEdge(from, to int, w float64) {
	g.Adj[from] = append(g.Adj[from], Edge{To: to, Weight: w})
}

// Edges returns the total edge count.
func (g *Graph) Edges() int {
	n := 0
	for _, adj := range g.Adj {
		n += len(adj)
	}
	return n
}

// Random generates a graph where each vertex gets outDegree random
// out-neighbours, deterministic under seed.
func Random(n, outDegree int, seed int64) *Graph {
	g := NewGraph(n)
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < n; v++ {
		for d := 0; d < outDegree; d++ {
			to := rng.Intn(n)
			g.AddEdge(v, to, 1+rng.Float64()*9)
		}
	}
	return g
}

// Ring generates a bidirectional ring (diameter n/2 — a worst case for BSP
// propagation).
func Ring(n int) *Graph {
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		g.AddEdge(v, (v+1)%n, 1)
		g.AddEdge((v+1)%n, v, 1)
	}
	return g
}

// Star generates a hub-and-spoke graph (vertex 0 is the hub).
func Star(n int) *Graph {
	g := NewGraph(n)
	for v := 1; v < n; v++ {
		g.AddEdge(0, v, 1)
		g.AddEdge(v, 0, 1)
	}
	return g
}

// --- serial baselines ---

// PageRankSerial runs the classic power iteration.
func PageRankSerial(g *Graph, iters int, damping float64) []float64 {
	n := g.N
	rank := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	for it := 0; it < iters; it++ {
		next := make([]float64, n)
		base := (1 - damping) / float64(n)
		for i := range next {
			next[i] = base
		}
		for v := 0; v < n; v++ {
			if len(g.Adj[v]) == 0 {
				continue
			}
			share := damping * rank[v] / float64(len(g.Adj[v]))
			for _, e := range g.Adj[v] {
				next[e.To] += share
			}
		}
		rank = next
	}
	return rank
}

// SSSPSerial is Dijkstra from src; unreachable vertices get +Inf.
func SSSPSerial(g *Graph, src int) []float64 {
	dist := make([]float64, g.N)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := &distHeap{{src, 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		if top.d > dist[top.v] {
			continue
		}
		for _, e := range g.Adj[top.v] {
			if nd := top.d + e.Weight; nd < dist[e.To] {
				dist[e.To] = nd
				heap.Push(pq, distEntry{e.To, nd})
			}
		}
	}
	return dist
}

// WCCSerial labels weakly connected components with union-find; the label is
// the smallest vertex id in the component.
func WCCSerial(g *Graph) []int {
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for v := 0; v < g.N; v++ {
		for _, e := range g.Adj[v] {
			union(v, e.To)
		}
	}
	out := make([]int, g.N)
	for v := range out {
		out[v] = find(v)
	}
	return out
}

type distEntry struct {
	v int
	d float64
}

type distHeap []distEntry

func (h distHeap) Len() int           { return len(h) }
func (h distHeap) Less(i, j int) bool { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x any)        { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
