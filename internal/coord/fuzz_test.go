package coord

import (
	"strings"
	"testing"

	"repro/internal/simclock"
)

// FuzzPathHandling throws arbitrary paths at the store: no input may panic,
// and any path that Create accepts must round-trip through Get and Delete.
func FuzzPathHandling(f *testing.F) {
	for _, seed := range []string{"/a", "/a/b", "//", "/", "", "a", "/a//b", "/a b", "/ù", "/a/b/c/d/e"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, path string) {
		s := NewStore(simclock.Real{})
		// Parents first, best-effort.
		if strings.HasPrefix(path, "/") {
			parts := strings.Split(strings.Trim(path, "/"), "/")
			for i := 1; i < len(parts); i++ {
				_ = s.Create("/"+strings.Join(parts[:i], "/"), nil, Persistent, 0)
			}
		}
		if err := s.Create(path, []byte("x"), Persistent, 0); err != nil {
			return // rejected inputs just must not panic
		}
		data, _, err := s.Get(path)
		if err != nil || string(data) != "x" {
			t.Fatalf("accepted path %q does not round-trip: %q %v", path, data, err)
		}
		if err := s.Delete(path, AnyVersion); err != nil {
			t.Fatalf("accepted path %q cannot be deleted: %v", path, err)
		}
	})
}
