// Package coord implements the ZooKeeper-style coordination service that the
// messaging layer (Figure 1 of the paper) depends on for configuration
// management, topic ownership and ledger metadata.
//
// It provides a hierarchical namespace of versioned nodes ("znodes") with
// persistent, ephemeral and sequential creation modes, one-shot watches, and
// session-scoped liveness: when a session closes or its lease expires, every
// ephemeral node it created is removed and the relevant watches fire. The
// store is linearizable by construction (a single mutex orders all
// operations).
package coord

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simclock"
)

// Errors returned by Store operations.
var (
	ErrNoNode      = errors.New("coord: node does not exist")
	ErrNodeExists  = errors.New("coord: node already exists")
	ErrBadVersion  = errors.New("coord: version mismatch")
	ErrNotEmpty    = errors.New("coord: node has children")
	ErrNoSession   = errors.New("coord: session expired or closed")
	ErrBadPath     = errors.New("coord: malformed path")
	ErrEphChildren = errors.New("coord: ephemeral nodes cannot have children")
)

// Mode selects the lifetime of a created node.
type Mode int

const (
	// Persistent nodes live until explicitly deleted.
	Persistent Mode = iota
	// Ephemeral nodes are deleted automatically when their creating
	// session closes or expires.
	Ephemeral
)

// EventType describes what happened to a watched node.
type EventType int

const (
	// EventCreated fires when a watched-for node is created.
	EventCreated EventType = iota
	// EventDataChanged fires when a node's data is overwritten.
	EventDataChanged
	// EventDeleted fires when a node is deleted.
	EventDeleted
	// EventChildrenChanged fires when a node gains or loses a child.
	EventChildrenChanged
)

// Event is delivered on watch channels.
type Event struct {
	Type EventType
	Path string
}

// Stat carries a node's metadata.
type Stat struct {
	Version        int64 // bumped on every Set
	CreatedAt      time.Time
	ModifiedAt     time.Time
	EphemeralOwner SessionID // zero for persistent nodes
	NumChildren    int
}

// SessionID identifies a client session. The zero value means "no session".
type SessionID int64

// AnyVersion disables the compare-and-set check in Set and Delete.
const AnyVersion int64 = -1

type node struct {
	data     []byte
	stat     Stat
	children map[string]*node
	seq      int64 // counter for sequential children

	dataWatch  []chan Event
	childWatch []chan Event
}

type session struct {
	id         SessionID
	ttl        time.Duration
	expiresAt  time.Time
	closed     bool
	ephemerals map[string]struct{}
}

// Store is an in-process coordination service instance.
type Store struct {
	clock simclock.Clock

	mu       sync.Mutex
	root     *node
	sessions map[SessionID]*session
	nextSess SessionID
}

// NewStore creates an empty Store on the given clock.
func NewStore(clock simclock.Clock) *Store {
	return &Store{
		clock:    clock,
		root:     &node{children: map[string]*node{}},
		sessions: map[SessionID]*session{},
	}
}

// NewSession opens a session with the given lease TTL. A TTL of zero means
// the session never expires on its own (it must be closed explicitly).
func (s *Store) NewSession(ttl time.Duration) SessionID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextSess++
	sess := &session{
		id:         s.nextSess,
		ttl:        ttl,
		ephemerals: map[string]struct{}{},
	}
	if ttl > 0 {
		sess.expiresAt = s.clock.Now().Add(ttl)
	}
	s.sessions[sess.id] = sess
	return sess.id
}

// KeepAlive renews a session's lease. It returns ErrNoSession if the session
// has already expired or been closed.
func (s *Store) KeepAlive(id SessionID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	sess, ok := s.sessions[id]
	if !ok || sess.closed {
		return ErrNoSession
	}
	if sess.ttl > 0 {
		sess.expiresAt = s.clock.Now().Add(sess.ttl)
	}
	return nil
}

// CloseSession ends a session, deleting its ephemeral nodes.
func (s *Store) CloseSession(id SessionID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return
	}
	s.endSessionLocked(sess)
}

// SessionAlive reports whether the session is open and unexpired.
func (s *Store) SessionAlive(id SessionID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	sess, ok := s.sessions[id]
	return ok && !sess.closed
}

// Create makes a new node at path with the given data. Parent nodes must
// already exist. For Ephemeral mode, owner must be a live session.
func (s *Store) Create(path string, data []byte, mode Mode, owner SessionID) error {
	_, err := s.create(path, data, mode, owner, false)
	return err
}

// CreateSequential creates a node whose final path component is path's last
// component suffixed with a monotonically increasing, zero-padded counter
// scoped to the parent (ZooKeeper's sequential nodes). It returns the actual
// path created.
func (s *Store) CreateSequential(path string, data []byte, mode Mode, owner SessionID) (string, error) {
	return s.create(path, data, mode, owner, true)
}

func (s *Store) create(path string, data []byte, mode Mode, owner SessionID, sequential bool) (string, error) {
	parts, err := splitPath(path)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()

	var sess *session
	if mode == Ephemeral {
		var ok bool
		sess, ok = s.sessions[owner]
		if !ok || sess.closed {
			return "", ErrNoSession
		}
	}

	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return "", fmt.Errorf("%w: missing parent %q in %q", ErrNoNode, p, path)
		}
		parent = child
	}
	if parent != s.root && parent.stat.EphemeralOwner != 0 {
		return "", ErrEphChildren
	}
	name := parts[len(parts)-1]
	if sequential {
		name = fmt.Sprintf("%s%010d", name, parent.seq)
		parent.seq++
		path = "/" + strings.Join(append(append([]string{}, parts[:len(parts)-1]...), name), "/")
	}
	if _, ok := parent.children[name]; ok {
		return "", fmt.Errorf("%w: %q", ErrNodeExists, path)
	}
	now := s.clock.Now()
	n := &node{
		data:     append([]byte(nil), data...),
		children: map[string]*node{},
		stat:     Stat{CreatedAt: now, ModifiedAt: now},
	}
	if mode == Ephemeral {
		n.stat.EphemeralOwner = owner
		sess.ephemerals[path] = struct{}{}
	}
	parent.children[name] = n
	parent.stat.NumChildren = len(parent.children)
	s.fireLocked(&parent.childWatch, Event{Type: EventChildrenChanged, Path: parentPath(path)})
	return path, nil
}

// Get returns a node's data and metadata.
func (s *Store) Get(path string) ([]byte, Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	n, err := s.lookupLocked(path)
	if err != nil {
		return nil, Stat{}, err
	}
	st := n.stat
	st.NumChildren = len(n.children)
	return append([]byte(nil), n.data...), st, nil
}

// Exists reports whether a node exists at path.
func (s *Store) Exists(path string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	_, err := s.lookupLocked(path)
	return err == nil
}

// Set overwrites a node's data if version matches (or is AnyVersion).
func (s *Store) Set(path string, data []byte, version int64) (Stat, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	n, err := s.lookupLocked(path)
	if err != nil {
		return Stat{}, err
	}
	if version != AnyVersion && version != n.stat.Version {
		return Stat{}, fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.stat.Version, version)
	}
	n.data = append([]byte(nil), data...)
	n.stat.Version++
	n.stat.ModifiedAt = s.clock.Now()
	s.fireLocked(&n.dataWatch, Event{Type: EventDataChanged, Path: path})
	return n.stat, nil
}

// Delete removes a node if it has no children and version matches.
func (s *Store) Delete(path string, version int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	return s.deleteLocked(path, version, true)
}

// Children returns the sorted names of a node's children.
func (s *Store) Children(path string) ([]string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	n, err := s.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(n.children))
	for name := range n.children {
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// WatchData registers a one-shot watch that fires when the node's data
// changes or the node is deleted. The returned channel has capacity 1 and is
// used at most once.
func (s *Store) WatchData(path string) (<-chan Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	n, err := s.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event, 1)
	n.dataWatch = append(n.dataWatch, ch)
	return ch, nil
}

// WatchChildren registers a one-shot watch that fires when the node's child
// set changes.
func (s *Store) WatchChildren(path string) (<-chan Event, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reapLocked()
	n, err := s.lookupLocked(path)
	if err != nil {
		return nil, err
	}
	ch := make(chan Event, 1)
	n.childWatch = append(n.childWatch, ch)
	return ch, nil
}

// EnsurePath creates every missing component of path as a persistent node
// with empty data (a convenience ZooKeeper clients typically implement
// themselves).
func (s *Store) EnsurePath(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	for i := range parts {
		p := "/" + strings.Join(parts[:i+1], "/")
		if err := s.Create(p, nil, Persistent, 0); err != nil && !errors.Is(err, ErrNodeExists) {
			return err
		}
	}
	return nil
}

// --- internals ---

func (s *Store) lookupLocked(path string) (*node, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, err
	}
	n := s.root
	for _, p := range parts {
		child, ok := n.children[p]
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrNoNode, path)
		}
		n = child
	}
	return n, nil
}

func (s *Store) deleteLocked(path string, version int64, checkChildren bool) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	parent := s.root
	for _, p := range parts[:len(parts)-1] {
		child, ok := parent.children[p]
		if !ok {
			return fmt.Errorf("%w: %q", ErrNoNode, path)
		}
		parent = child
	}
	name := parts[len(parts)-1]
	n, ok := parent.children[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoNode, path)
	}
	if checkChildren && len(n.children) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	if version != AnyVersion && version != n.stat.Version {
		return fmt.Errorf("%w: have %d, want %d", ErrBadVersion, n.stat.Version, version)
	}
	delete(parent.children, name)
	parent.stat.NumChildren = len(parent.children)
	if n.stat.EphemeralOwner != 0 {
		if sess, ok := s.sessions[n.stat.EphemeralOwner]; ok {
			delete(sess.ephemerals, path)
		}
	}
	s.fireLocked(&n.dataWatch, Event{Type: EventDeleted, Path: path})
	s.fireLocked(&parent.childWatch, Event{Type: EventChildrenChanged, Path: parentPath(path)})
	return nil
}

// reapLocked lazily expires sessions whose leases have lapsed.
func (s *Store) reapLocked() {
	now := s.clock.Now()
	for _, sess := range s.sessions {
		if sess.closed || sess.ttl == 0 {
			continue
		}
		if now.After(sess.expiresAt) {
			s.endSessionLocked(sess)
		}
	}
}

func (s *Store) endSessionLocked(sess *session) {
	if sess.closed {
		return
	}
	sess.closed = true
	paths := make([]string, 0, len(sess.ephemerals))
	for p := range sess.ephemerals {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		_ = s.deleteLocked(p, AnyVersion, false)
	}
	delete(s.sessions, sess.id)
}

// fireLocked delivers ev to every registered one-shot watch and clears the list.
func (s *Store) fireLocked(watches *[]chan Event, ev Event) {
	for _, ch := range *watches {
		ch <- ev // capacity 1, used once: never blocks
	}
	*watches = nil
}

func splitPath(path string) ([]string, error) {
	if !strings.HasPrefix(path, "/") || path == "/" {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" {
			return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
		}
	}
	if path != "/"+strings.Join(parts, "/") {
		return nil, fmt.Errorf("%w: %q", ErrBadPath, path)
	}
	return parts, nil
}

func parentPath(path string) string {
	i := strings.LastIndex(path, "/")
	if i <= 0 {
		return "/"
	}
	return path[:i]
}
