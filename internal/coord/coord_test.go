package coord

import (
	"errors"
	"testing"
	"time"

	"repro/internal/simclock"
)

func newStore() *Store { return NewStore(simclock.Real{}) }

func TestCreateGetSetDelete(t *testing.T) {
	s := newStore()
	if err := s.Create("/a", []byte("one"), Persistent, 0); err != nil {
		t.Fatal(err)
	}
	data, st, err := s.Get("/a")
	if err != nil || string(data) != "one" || st.Version != 0 {
		t.Fatalf("Get = %q v%d err %v", data, st.Version, err)
	}
	if _, err := s.Set("/a", []byte("two"), 0); err != nil {
		t.Fatal(err)
	}
	data, st, _ = s.Get("/a")
	if string(data) != "two" || st.Version != 1 {
		t.Fatalf("after Set: %q v%d", data, st.Version)
	}
	if err := s.Delete("/a", 1); err != nil {
		t.Fatal(err)
	}
	if s.Exists("/a") {
		t.Fatal("node survived Delete")
	}
}

func TestCreateRequiresParent(t *testing.T) {
	s := newStore()
	if err := s.Create("/a/b", nil, Persistent, 0); !errors.Is(err, ErrNoNode) {
		t.Fatalf("err = %v, want ErrNoNode", err)
	}
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
	if !s.Exists("/a/b/c") {
		t.Fatal("EnsurePath did not create the chain")
	}
	// EnsurePath must be idempotent.
	if err := s.EnsurePath("/a/b/c"); err != nil {
		t.Fatal(err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	s := newStore()
	must(t, s.Create("/a", nil, Persistent, 0))
	if err := s.Create("/a", nil, Persistent, 0); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("err = %v, want ErrNodeExists", err)
	}
}

func TestBadPaths(t *testing.T) {
	s := newStore()
	for _, p := range []string{"", "/", "a", "/a//b", "//"} {
		if err := s.Create(p, nil, Persistent, 0); !errors.Is(err, ErrBadPath) {
			t.Fatalf("Create(%q) err = %v, want ErrBadPath", p, err)
		}
	}
}

func TestVersionedSetAndDelete(t *testing.T) {
	s := newStore()
	must(t, s.Create("/v", []byte("x"), Persistent, 0))
	if _, err := s.Set("/v", []byte("y"), 99); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale Set err = %v", err)
	}
	if _, err := s.Set("/v", []byte("y"), AnyVersion); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("/v", 0); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("stale Delete err = %v", err)
	}
	if err := s.Delete("/v", 1); err != nil {
		t.Fatal(err)
	}
}

func TestDeleteNonEmpty(t *testing.T) {
	s := newStore()
	must(t, s.EnsurePath("/p/c"))
	if err := s.Delete("/p", AnyVersion); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("err = %v, want ErrNotEmpty", err)
	}
}

func TestChildrenSorted(t *testing.T) {
	s := newStore()
	must(t, s.Create("/p", nil, Persistent, 0))
	for _, c := range []string{"zeta", "alpha", "mid"} {
		must(t, s.Create("/p/"+c, nil, Persistent, 0))
	}
	kids, err := s.Children("/p")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "mid", "zeta"}
	for i := range want {
		if kids[i] != want[i] {
			t.Fatalf("Children = %v, want %v", kids, want)
		}
	}
}

func TestSequentialNodes(t *testing.T) {
	s := newStore()
	must(t, s.Create("/q", nil, Persistent, 0))
	p1, err := s.CreateSequential("/q/item-", nil, Persistent, 0)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := s.CreateSequential("/q/item-", nil, Persistent, 0)
	if p1 != "/q/item-0000000000" || p2 != "/q/item-0000000001" {
		t.Fatalf("sequential paths = %q, %q", p1, p2)
	}
}

func TestEphemeralDeletedOnClose(t *testing.T) {
	s := newStore()
	sess := s.NewSession(0)
	must(t, s.Create("/e", []byte("owner"), Ephemeral, sess))
	if !s.Exists("/e") {
		t.Fatal("ephemeral missing")
	}
	s.CloseSession(sess)
	if s.Exists("/e") {
		t.Fatal("ephemeral survived session close")
	}
}

func TestEphemeralRequiresSession(t *testing.T) {
	s := newStore()
	if err := s.Create("/e", nil, Ephemeral, 42); !errors.Is(err, ErrNoSession) {
		t.Fatalf("err = %v, want ErrNoSession", err)
	}
}

func TestEphemeralNoChildren(t *testing.T) {
	s := newStore()
	sess := s.NewSession(0)
	must(t, s.Create("/e", nil, Ephemeral, sess))
	if err := s.Create("/e/kid", nil, Persistent, 0); !errors.Is(err, ErrEphChildren) {
		t.Fatalf("err = %v, want ErrEphChildren", err)
	}
}

func TestSessionExpiryOnVirtualClock(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewStore(v)
	v.Run(func() {
		sess := s.NewSession(10 * time.Second)
		must(t, s.Create("/lease", nil, Ephemeral, sess))
		v.Sleep(5 * time.Second)
		if !s.Exists("/lease") {
			t.Error("ephemeral vanished before lease expiry")
		}
		if err := s.KeepAlive(sess); err != nil {
			t.Error(err)
		}
		v.Sleep(8 * time.Second) // renewed at t=5s; still alive at t=13s
		if !s.Exists("/lease") {
			t.Error("keepalive did not renew lease")
		}
		v.Sleep(10 * time.Second) // now past renewal+ttl
		if s.Exists("/lease") {
			t.Error("ephemeral survived lease expiry")
		}
		if s.SessionAlive(sess) {
			t.Error("session alive after expiry")
		}
		if err := s.KeepAlive(sess); !errors.Is(err, ErrNoSession) {
			t.Errorf("KeepAlive on dead session = %v", err)
		}
	})
}

func TestWatchData(t *testing.T) {
	s := newStore()
	must(t, s.Create("/w", []byte("a"), Persistent, 0))
	ch, err := s.WatchData("/w")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("/w", []byte("b"), AnyVersion); err != nil {
		t.Fatal(err)
	}
	ev := <-ch
	if ev.Type != EventDataChanged || ev.Path != "/w" {
		t.Fatalf("event = %+v", ev)
	}
	// One-shot: second Set must not panic or deliver again.
	if _, err := s.Set("/w", []byte("c"), AnyVersion); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-ch:
		t.Fatalf("one-shot watch fired twice: %+v", ev)
	default:
	}
}

func TestWatchDelete(t *testing.T) {
	s := newStore()
	must(t, s.Create("/w", nil, Persistent, 0))
	ch, _ := s.WatchData("/w")
	must(t, s.Delete("/w", AnyVersion))
	if ev := <-ch; ev.Type != EventDeleted {
		t.Fatalf("event = %+v", ev)
	}
}

func TestWatchChildren(t *testing.T) {
	s := newStore()
	must(t, s.Create("/p", nil, Persistent, 0))
	ch, _ := s.WatchChildren("/p")
	must(t, s.Create("/p/kid", nil, Persistent, 0))
	if ev := <-ch; ev.Type != EventChildrenChanged || ev.Path != "/p" {
		t.Fatalf("event = %+v", ev)
	}
}

func TestWatchFiresOnSessionExpiry(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	s := NewStore(v)
	v.Run(func() {
		sess := s.NewSession(time.Second)
		must(t, s.Create("/owner", nil, Ephemeral, sess))
		ch, err := s.WatchData("/owner")
		if err != nil {
			t.Fatal(err)
		}
		v.Sleep(2 * time.Second)
		s.Exists("/owner") // trigger lazy reap
		select {
		case ev := <-ch:
			if ev.Type != EventDeleted {
				t.Errorf("event = %+v", ev)
			}
		default:
			t.Error("no delete event after session expiry")
		}
	})
}

func TestTryAcquireRelease(t *testing.T) {
	s := newStore()
	a, b := s.NewSession(0), s.NewSession(0)
	ok, err := s.TryAcquire("/lock", []byte("a"), a)
	if err != nil || !ok {
		t.Fatalf("first acquire: ok=%v err=%v", ok, err)
	}
	ok, err = s.TryAcquire("/lock", []byte("b"), b)
	if err != nil || ok {
		t.Fatalf("second acquire should fail: ok=%v err=%v", ok, err)
	}
	holder, held := s.LockHolder("/lock")
	if !held || string(holder) != "a" {
		t.Fatalf("holder = %q %v", holder, held)
	}
	s.CloseSession(a)
	ok, _ = s.TryAcquire("/lock", []byte("b"), b)
	if !ok {
		t.Fatal("lock not released by session close")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := newStore()
	must(t, s.Create("/c", []byte("abc"), Persistent, 0))
	data, _, _ := s.Get("/c")
	data[0] = 'X'
	data2, _, _ := s.Get("/c")
	if string(data2) != "abc" {
		t.Fatal("Get exposed internal buffer")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
