package coord

import "errors"

// TryAcquire attempts to take the ephemeral lock at path for the given
// session, storing data (typically the owner's identity) in the lock node.
// It returns true if the lock was acquired, false if another live session
// holds it. The lock is released when the session closes or expires, or via
// Release.
func (s *Store) TryAcquire(path string, data []byte, owner SessionID) (bool, error) {
	err := s.Create(path, data, Ephemeral, owner)
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, ErrNodeExists):
		return false, nil
	default:
		return false, err
	}
}

// Release drops the lock at path if held. It is a no-op if the node is gone.
func (s *Store) Release(path string) {
	_ = s.Delete(path, AnyVersion)
}

// LockHolder returns the data stored in the lock node at path, and whether
// the lock is currently held.
func (s *Store) LockHolder(path string) ([]byte, bool) {
	data, _, err := s.Get(path)
	if err != nil {
		return nil, false
	}
	return data, true
}
