package simclock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRealClockBasics(t *testing.T) {
	var c Clock = Real{}
	t0 := c.Now()
	c.Sleep(time.Millisecond)
	if c.Now().Sub(t0) < time.Millisecond {
		t.Fatalf("Real.Sleep did not sleep")
	}
	done := make(chan struct{})
	c.Go(func() { close(done) })
	c.BlockOn(func() { <-done })
}

func TestRealSleepNonPositive(t *testing.T) {
	var c Clock = Real{}
	t0 := time.Now()
	c.Sleep(0)
	c.Sleep(-time.Hour)
	if time.Since(t0) > 100*time.Millisecond {
		t.Fatalf("non-positive Sleep blocked")
	}
}

func TestVirtualSleepAdvances(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	end := v.Run(func() {
		v.Sleep(3 * time.Hour)
	})
	if got := end.Sub(Epoch); got != 3*time.Hour {
		t.Fatalf("elapsed = %v, want 3h", got)
	}
}

func TestVirtualZeroSleep(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	end := v.Run(func() {
		v.Sleep(0)
		v.Sleep(-time.Minute)
	})
	if end != Epoch {
		t.Fatalf("time moved on non-positive sleep: %v", end.Sub(Epoch))
	}
}

func TestVirtualConcurrentSleepersOrdering(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	var mu sync.Mutex
	var order []int
	v.Run(func() {
		var wg sync.WaitGroup
		delays := []time.Duration{30 * time.Minute, 10 * time.Minute, 20 * time.Minute}
		for i, d := range delays {
			i, d := i, d
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				v.Sleep(d)
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}
		v.BlockOn(wg.Wait)
	})
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("wake order = %v, want %v", order, want)
		}
	}
}

func TestVirtualParallelSleepOverlap(t *testing.T) {
	// N goroutines each sleeping 1h in parallel must advance the clock by
	// exactly 1h, not N hours.
	v := NewVirtual()
	defer v.Close()
	end := v.Run(func() {
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				v.Sleep(time.Hour)
			})
		}
		v.BlockOn(wg.Wait)
	})
	if got := end.Sub(Epoch); got != time.Hour {
		t.Fatalf("elapsed = %v, want 1h", got)
	}
}

func TestVirtualSequentialSleepsAccumulate(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	end := v.Run(func() {
		for i := 0; i < 100; i++ {
			v.Sleep(time.Second)
		}
	})
	if got := end.Sub(Epoch); got != 100*time.Second {
		t.Fatalf("elapsed = %v, want 100s", got)
	}
}

func TestVirtualDeterminism(t *testing.T) {
	run := func() []time.Duration {
		v := NewVirtual()
		defer v.Close()
		var mu sync.Mutex
		var stamps []time.Duration
		v.Run(func() {
			var wg sync.WaitGroup
			for i := 1; i <= 8; i++ {
				i := i
				wg.Add(1)
				v.Go(func() {
					defer wg.Done()
					v.Sleep(time.Duration(i) * time.Minute)
					mu.Lock()
					stamps = append(stamps, v.Now().Sub(Epoch))
					mu.Unlock()
					v.Sleep(time.Duration(9-i) * time.Minute)
				})
			}
			v.BlockOn(wg.Wait)
		})
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run mismatch at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestVirtualBlockOnChannel(t *testing.T) {
	// A consumer blocked on a channel must not stall the clock: the
	// producer sleeps, time advances, the message arrives.
	v := NewVirtual()
	defer v.Close()
	var got time.Duration
	v.Run(func() {
		ch := make(chan struct{})
		v.Go(func() {
			v.Sleep(42 * time.Second)
			close(ch)
		})
		v.BlockOn(func() { <-ch })
		got = v.Now().Sub(Epoch)
	})
	if got != 42*time.Second {
		t.Fatalf("consumer resumed at %v, want 42s", got)
	}
}

func TestVirtualPipelineThroughChannels(t *testing.T) {
	// Producer → consumer pipeline: producer adds 1s of virtual latency per
	// item; consumer tallies. Total elapsed must be items × 1s.
	v := NewVirtual()
	defer v.Close()
	const items = 5
	var processed int64
	end := v.Run(func() {
		ch := make(chan int)
		v.Go(func() {
			for i := 0; i < items; i++ {
				v.Sleep(time.Second)
				x := i
				v.BlockOn(func() { ch <- x })
			}
			close(ch)
		})
		v.BlockOn(func() {
			for range ch {
				atomic.AddInt64(&processed, 1)
			}
		})
	})
	if processed != items {
		t.Fatalf("processed = %d, want %d", processed, items)
	}
	if got := end.Sub(Epoch); got != items*time.Second {
		t.Fatalf("elapsed = %v, want %v", got, items*time.Second)
	}
}

func TestVirtualElapsed(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	v.Run(func() { v.Sleep(90 * time.Second) })
	if v.Elapsed() != 90*time.Second {
		t.Fatalf("Elapsed = %v", v.Elapsed())
	}
}

func TestVirtualManyGoroutinesStress(t *testing.T) {
	v := NewVirtual()
	defer v.Close()
	var count int64
	end := v.Run(func() {
		var wg sync.WaitGroup
		for i := 0; i < 200; i++ {
			i := i
			wg.Add(1)
			v.Go(func() {
				defer wg.Done()
				for j := 0; j < 5; j++ {
					v.Sleep(time.Duration(1+(i+j)%7) * time.Second)
					atomic.AddInt64(&count, 1)
				}
			})
		}
		v.BlockOn(wg.Wait)
	})
	if count != 1000 {
		t.Fatalf("count = %d, want 1000", count)
	}
	if end.Sub(Epoch) > 35*time.Second || end.Sub(Epoch) < 5*time.Second {
		t.Fatalf("implausible elapsed %v", end.Sub(Epoch))
	}
}
