package simclock

import (
	"container/heap"
	"fmt"
	"sync"
	"time"
)

// Virtual is a deterministic discrete-event Clock. Time only moves when every
// tracked goroutine is blocked; it then jumps directly to the earliest
// pending deadline. A simulation spanning days completes in real
// milliseconds, and two runs with the same inputs observe identical
// timestamps.
//
// Use NewVirtual to create one and Run to execute the simulation's root
// function.
type Virtual struct {
	mu      sync.Mutex
	cond    *sync.Cond // signalled on every state mutation; the driver waits on it
	now     time.Time
	active  int   // tracked goroutines currently alive
	blocked int   // of those, blocked in Sleep or BlockOn
	gen     int64 // bumped on every state mutation; lets the driver detect churn
	seq     int64
	sleep   sleepHeap
	closed  bool
}

type sleeper struct {
	deadline time.Time
	seq      int64 // FIFO tiebreak for equal deadlines: determinism
	wake     chan struct{}
}

type sleepHeap []*sleeper

func (h sleepHeap) Len() int { return len(h) }
func (h sleepHeap) Less(i, j int) bool {
	if !h[i].deadline.Equal(h[j].deadline) {
		return h[i].deadline.Before(h[j].deadline)
	}
	return h[i].seq < h[j].seq
}
func (h sleepHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *sleepHeap) Push(x any)   { *h = append(*h, x.(*sleeper)) }
func (h *sleepHeap) Pop() any {
	old := *h
	n := len(old)
	s := old[n-1]
	*h = old[:n-1]
	return s
}
func (h sleepHeap) peek() *sleeper { return h[0] }

// Epoch is the instant at which virtual clocks created by NewVirtual start.
var Epoch = time.Date(2020, 6, 14, 0, 0, 0, 0, time.UTC) // SIGMOD'20, day one

// settle is how long the driver waits, in real time, to confirm the
// simulation is quiescent before advancing virtual time. It gives goroutines
// that were just woken (and are briefly still counted as blocked) a chance to
// resume and register as runnable. The generation check re-verifies state
// after the window, so settle trades a little safety margin for simulation
// throughput (it is paid once per virtual-time advance).
const settle = 75 * time.Microsecond

// deadlockConfirm is how long quiescence-with-no-timers must persist, with
// no state change, before the clock declares the simulation deadlocked.
// Transients — a goroutine descheduled inside a momentary BlockOn — can look
// deadlocked for a scheduling quantum; a real deadlock persists forever, so
// a generous window costs nothing.
const deadlockConfirm = 250 * time.Millisecond

// NewVirtual returns a Virtual clock positioned at Epoch with its advance
// driver running. Call Close when the clock is no longer needed.
func NewVirtual() *Virtual {
	v := &Virtual{now: Epoch}
	v.cond = sync.NewCond(&v.mu)
	go v.drive()
	return v
}

// Close stops the clock's internal driver goroutine. Using the clock after
// Close may hang tracked goroutines; only call it once the simulation is done.
func (v *Virtual) Close() {
	v.mu.Lock()
	v.closed = true
	v.mu.Unlock()
	v.cond.Broadcast()
}

// Now returns the current virtual time.
func (v *Virtual) Now() time.Time {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep blocks the calling tracked goroutine for d of virtual time.
func (v *Virtual) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	v.mu.Lock()
	s := &sleeper{deadline: v.now.Add(d), seq: v.seq, wake: make(chan struct{})}
	v.seq++
	heap.Push(&v.sleep, s)
	v.blocked++
	v.gen++
	v.mu.Unlock()
	v.cond.Broadcast()

	<-s.wake // the driver decremented blocked when it woke us
}

// Go spawns fn as a tracked goroutine.
func (v *Virtual) Go(fn func()) {
	v.mu.Lock()
	v.active++
	v.gen++
	v.mu.Unlock()
	v.cond.Broadcast()
	go func() {
		defer func() {
			v.mu.Lock()
			v.active--
			v.gen++
			v.mu.Unlock()
			v.cond.Broadcast()
		}()
		fn()
	}()
}

// BlockOn marks the calling tracked goroutine as blocked while fn runs.
// fn must block only on events resolved by other tracked goroutines.
//
// Caveat: the caller may observe a LATER Now() than the instant its event
// was resolved. Resolution is a plain memory operation the clock cannot
// see, so if the resumed caller stays descheduled past the driver's settle
// window (e.g. under GC assist pressure) the driver can advance to the
// next deadline first. When an exact timestamp matters — wall-time
// measurements especially — capture Now() in the resolving tracked
// goroutine, not after BlockOn returns.
func (v *Virtual) BlockOn(fn func()) {
	v.mu.Lock()
	v.blocked++
	v.gen++
	v.mu.Unlock()
	v.cond.Broadcast()

	fn()

	v.mu.Lock()
	v.blocked--
	v.gen++
	v.mu.Unlock()
	v.cond.Broadcast()
}

// Run executes fn as the root tracked goroutine and blocks the caller (which
// is outside the simulation) until fn and every goroutine it spawned via Go
// have finished. It returns the final virtual time.
func (v *Virtual) Run(fn func()) time.Time {
	finished := make(chan struct{})
	v.Go(func() {
		defer close(finished)
		fn()
	})
	<-finished
	// Wait for stragglers spawned by fn that are still alive.
	v.mu.Lock()
	for v.active > 0 {
		v.mu.Unlock()
		time.Sleep(settle)
		v.mu.Lock()
	}
	t := v.now
	v.mu.Unlock()
	return t
}

// Elapsed returns the virtual time elapsed since Epoch.
func (v *Virtual) Elapsed() time.Duration {
	return v.Now().Sub(Epoch)
}

// drive is the clock's advance loop. It waits until the simulation is
// quiescent (every tracked goroutine blocked), confirms quiescence held for a
// settle window, then jumps time to the earliest deadline and wakes the
// sleepers due there.
func (v *Virtual) drive() {
	v.mu.Lock()
	defer v.mu.Unlock()
	for {
		for !v.closed && !v.quiescentLocked() {
			v.cond.Wait()
		}
		if v.closed {
			return
		}
		// Confirm nothing changed across a settle window: a goroutine
		// woken a moment ago may still be counted as blocked.
		g := v.gen
		v.mu.Unlock()
		time.Sleep(settle)
		v.mu.Lock()
		if v.closed {
			return
		}
		if v.gen != g || !v.quiescentLocked() {
			continue
		}
		if v.sleep.Len() == 0 {
			// Every goroutine appears to wait on a non-time event. Confirm
			// the state holds over a long window before declaring a
			// genuine deadlock in the simulated program.
			confirmed := true
			deadline := time.Now().Add(deadlockConfirm)
			for time.Now().Before(deadline) {
				g2 := v.gen
				v.mu.Unlock()
				time.Sleep(settle)
				v.mu.Lock()
				if v.closed {
					return
				}
				if v.gen != g2 || !v.quiescentLocked() || v.sleep.Len() > 0 {
					confirmed = false
					break
				}
			}
			if !confirmed {
				continue
			}
			panic(fmt.Sprintf("simclock: deadlock at %s: %d goroutines blocked with no pending timers",
				v.now.Format(time.RFC3339Nano), v.blocked))
		}
		next := v.sleep.peek().deadline
		if next.After(v.now) {
			v.now = next
		}
		for v.sleep.Len() > 0 && !v.sleep.peek().deadline.After(v.now) {
			s := heap.Pop(&v.sleep).(*sleeper)
			v.blocked-- // the woken goroutine is runnable again
			close(s.wake)
		}
		v.gen++
	}
}

// quiescentLocked reports whether every tracked goroutine is blocked.
func (v *Virtual) quiescentLocked() bool {
	return v.active > 0 && v.blocked >= v.active
}
