// Package simclock provides the time abstraction used throughout the
// platform. Production code paths use the real wall clock; experiments use a
// deterministic discrete-event virtual clock so that cold-start latencies,
// billing windows and autoscaler dynamics are reproducible and run in
// microseconds of real time regardless of how many simulated hours they span.
//
// The virtual clock follows a quiescence-advance design: goroutines
// participating in simulated time are spawned through Clock.Go, and block
// through Clock.Sleep or Clock.BlockOn. When every tracked goroutine is
// blocked and at least one is sleeping on a deadline, the clock jumps to the
// earliest deadline and wakes the sleepers due at that instant.
package simclock

import (
	"runtime"
	"time"
)

// Clock is the time source shared by all platform components.
//
// Components must route all time-dependent behaviour through a Clock:
// reading time with Now, modelling latency with Sleep, spawning concurrent
// work with Go, and waiting on non-time events (channels, wait groups) with
// BlockOn. Code that follows this discipline runs identically under the real
// clock and the virtual clock.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time

	// Sleep blocks the calling goroutine for d of this clock's time.
	// Non-positive durations return immediately.
	Sleep(d time.Duration)

	// Go spawns fn as a goroutine tracked by this clock. All goroutines
	// that Sleep or BlockOn on a virtual clock must be spawned via Go (or
	// be the function passed to Virtual.Run).
	Go(fn func())

	// BlockOn runs fn, which is expected to block on a non-time event
	// (channel receive, WaitGroup, mutex) that some other tracked
	// goroutine will resolve. Under the virtual clock this marks the
	// goroutine as blocked so time can advance past it; under the real
	// clock it simply calls fn.
	BlockOn(fn func())
}

// Real is the wall Clock. The zero value is ready to use.
type Real struct{}

// Now returns time.Now().
func (Real) Now() time.Time { return time.Now() }

// spinSleepMax bounds the sleeps Real.Sleep serves by yielding-and-polling
// instead of the runtime timer. Modelled latencies of a few nanoseconds —
// the warm-start and append latencies micro-benchmarks configure — cost
// microseconds through time.Sleep's timer machinery, dwarfing the thing
// being measured; a Gosched loop keeps them honest while still yielding the
// processor, so single-CPU runs cannot livelock.
const spinSleepMax = 10 * time.Microsecond

// Sleep blocks for d: short sleeps yield-and-poll (see spinSleepMax), longer
// ones call time.Sleep.
func (Real) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if d > spinSleepMax {
		time.Sleep(d)
		return
	}
	deadline := time.Now().Add(d)
	for {
		runtime.Gosched()
		if !time.Now().Before(deadline) {
			return
		}
	}
}

// Go spawns fn with the go statement.
func (Real) Go(fn func()) { go fn() }

// BlockOn simply runs fn.
func (Real) BlockOn(fn func()) { fn() }
