package orchestrate_test

import (
	"bytes"
	"fmt"

	"repro/internal/faas"
	"repro/internal/orchestrate"
	"repro/internal/simclock"
)

// ExampleChain composes two functions into a pipeline — each Task sees the
// previous one's output, and the composition bills only the underlying
// invocations (§4.2).
func ExampleChain() {
	p := faas.New(simclock.Real{}, nil)
	_ = p.Register("upper", "demo", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return bytes.ToUpper(in), nil
	}, faas.Config{WarmStart: 1, ColdStart: 1})
	_ = p.Register("exclaim", "demo", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return append(in, '!'), nil
	}, faas.Config{WarmStart: 1, ColdStart: 1})

	engine := orchestrate.NewEngine(p)
	out, err := engine.Execute(orchestrate.Chain(
		orchestrate.Task("upper"),
		orchestrate.Task("exclaim"),
	), []byte("le taureau"))
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(string(out))
	// Output:
	// LE TAUREAU!
}
