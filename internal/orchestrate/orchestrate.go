// Package orchestrate implements the FaaS orchestration framework of §4.2:
// composition of serverless functions into state machines (sequences,
// parallel branches, choices, maps, waits) in the style of AWS Step
// Functions / IBM Composer.
//
// The design enforces the three properties Lopez et al. require of such
// frameworks (§4.2):
//
//  1. Functions are black boxes: a Task references a function only by name;
//     composition neither inspects nor modifies it.
//  2. A composition is itself a function: Engine.RegisterComposition makes a
//     state machine invocable by name from other compositions (and from
//     Engine.Execute), nestable to any depth.
//  3. No double billing: the engine meters nothing itself. Running a
//     composition bills exactly the basic function invocations it performs —
//     verified by experiment E7.
package orchestrate

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/faas"
	"repro/internal/obs"
)

// Errors returned by the engine.
var (
	ErrUnknownTarget = errors.New("orchestrate: task target is neither a function nor a composition")
	ErrNoChoice      = errors.New("orchestrate: no choice branch matched and no default given")
	ErrBadInput      = errors.New("orchestrate: input does not match state requirements")
	ErrFailed        = errors.New("orchestrate: execution reached a Fail state")
)

// State is one node of a state machine. States are built with the
// constructors below and interpreted by Engine.Execute.
type State interface {
	run(e *Engine, ec *execCtx, input []byte) ([]byte, error)
}

// RetryPolicy controls task re-execution on error.
type RetryPolicy struct {
	MaxAttempts int           // total attempts (≥1); 0 means 1
	Interval    time.Duration // delay before first retry
	Backoff     float64       // multiplier per retry; 0 means 2.0
}

func (r RetryPolicy) attempts() int {
	if r.MaxAttempts < 1 {
		return 1
	}
	return r.MaxAttempts
}

func (r RetryPolicy) backoff() float64 {
	if r.Backoff <= 0 {
		return 2.0
	}
	return r.Backoff
}

// --- state constructors ---

type taskState struct {
	target string
	retry  RetryPolicy
	catch  State
}

// Task invokes the named target — a registered platform function or a
// registered composition (property 2) — passing the state input as payload.
func Task(target string) State { return taskState{target: target} }

// TaskRetry is Task with a retry policy.
func TaskRetry(target string, retry RetryPolicy) State {
	return taskState{target: target, retry: retry}
}

// TaskCatch is Task with a retry policy and an error fallback state that
// receives the original input when all attempts fail.
func TaskCatch(target string, retry RetryPolicy, catch State) State {
	return taskState{target: target, retry: retry, catch: catch}
}

type chainState []State

// Chain runs states sequentially, piping each output into the next input.
func Chain(states ...State) State { return chainState(states) }

type parallelState []State

// Parallel runs branches concurrently on the same input; its output is the
// JSON array of branch outputs, in branch order.
func Parallel(branches ...State) State { return parallelState(branches) }

// ChoiceBranch pairs a predicate over the input with the state to run.
type ChoiceBranch struct {
	When func(input []byte) bool
	Then State
}

type choiceState struct {
	branches []ChoiceBranch
	fallback State
}

// Choice runs the first branch whose predicate matches; otherwise the
// default (which may be nil, making an unmatched input an error).
func Choice(branches []ChoiceBranch, def State) State {
	return choiceState{branches: branches, fallback: def}
}

type mapState struct {
	iterator State
	maxConc  int
}

// Map applies iterator to every element of the JSON-array input, with at
// most maxConc concurrent iterations (0 = unlimited). Output is the JSON
// array of per-element outputs in input order.
func Map(iterator State, maxConc int) State { return mapState{iterator: iterator, maxConc: maxConc} }

type waitState time.Duration

// Wait pauses the execution for d (on the platform clock) and passes its
// input through.
func Wait(d time.Duration) State { return waitState(d) }

type passState struct {
	transform func([]byte) ([]byte, error)
}

// Pass transforms the input inline (pure glue, no function invocation; bills
// nothing). A nil transform is the identity.
func Pass(transform func([]byte) ([]byte, error)) State { return passState{transform} }

type failState string

// Fail aborts the execution with the given reason.
func Fail(reason string) State { return failState(reason) }

// --- engine ---

// Event records one step of an execution trace.
type Event struct {
	At     time.Time
	Kind   string // "task", "retry", "choice", "wait", ...
	Detail string
}

// Trace is the observable history of one execution.
type Trace struct {
	mu     sync.Mutex
	Events []Event
}

func (t *Trace) add(at time.Time, kind, detail string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.Events = append(t.Events, Event{At: at, Kind: kind, Detail: detail})
	t.mu.Unlock()
}

type execCtx struct {
	trace *Trace
	depth int
	span  *obs.Span // current parent span; nil when tracing is off
}

// childCtx opens a child span named prefix+name under the execution's
// current span and returns a derived context carrying it. With tracing off
// (nil span, or the tracer's retention buffer full) both returns are no-ops /
// the receiver itself, and the name is never materialized — hot paths pay no
// concat allocation.
func (ec *execCtx) childCtx(prefix, name string) (*obs.Span, *execCtx) {
	if ec.span == nil {
		return nil, ec
	}
	if prefix != "" {
		name = prefix + name
	}
	sp := ec.span.StartChild(name)
	if sp == nil {
		return nil, ec
	}
	return sp, &execCtx{trace: ec.trace, depth: ec.depth, span: sp}
}

// Engine interprets state machines against a FaaS platform.
type Engine struct {
	platform *faas.Platform

	mu           sync.Mutex
	compositions map[string]State

	// Pre-resolved observability handles; nil (no-ops) until SetObs.
	obs      *obs.Registry
	obsExecs *obs.Counter
	obsSteps *obs.Counter
}

// NewEngine creates an engine bound to a platform.
func NewEngine(p *faas.Platform) *Engine {
	return &Engine{platform: p, compositions: map[string]State{}}
}

// SetObs attaches observability instruments. Every Execute then produces one
// trace: a root span with one child span per step.
func (e *Engine) SetObs(r *obs.Registry) {
	e.obs = r
	e.obsExecs = r.Counter("orchestrate.executions")
	e.obsSteps = r.Counter("orchestrate.steps")
}

// RegisterComposition names a state machine so that Task(name) can invoke it
// (the "composition is also a function" property). It returns an error if a
// composition with that name exists.
func (e *Engine) RegisterComposition(name string, sm State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.compositions[name]; ok {
		return fmt.Errorf("orchestrate: composition %q already registered", name)
	}
	e.compositions[name] = sm
	return nil
}

// Execute runs a state machine to completion and returns its output. With
// observability attached, the execution forms one trace: a root span plus a
// child span per step.
func (e *Engine) Execute(sm State, input []byte) ([]byte, error) {
	e.obsExecs.Inc()
	root := e.obs.Tracer().StartSpan("orchestrate.execution")
	out, err := sm.run(e, &execCtx{span: root}, input)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	return out, err
}

// ExecuteTraced runs a state machine, also returning its execution trace.
func (e *Engine) ExecuteTraced(sm State, input []byte) ([]byte, *Trace, error) {
	e.obsExecs.Inc()
	tr := &Trace{}
	root := e.obs.Tracer().StartSpan("orchestrate.execution")
	out, err := sm.run(e, &execCtx{trace: tr, span: root}, input)
	if err != nil {
		root.SetAttr("error", err.Error())
	}
	root.End()
	return out, tr, err
}

// --- interpreters ---

func (s taskState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	clock := e.platform.Clock()
	e.mu.Lock()
	comp, isComp := e.compositions[s.target]
	e.mu.Unlock()

	e.obsSteps.Inc()
	sp, ec := ec.childCtx("task:", s.target)
	defer sp.End()

	var out []byte
	var err error
	interval := s.retry.Interval
	for attempt := 1; attempt <= s.retry.attempts(); attempt++ {
		if attempt > 1 {
			ec.trace.add(clock.Now(), "retry", fmt.Sprintf("%s attempt %d", s.target, attempt))
			sp.SetAttr("retry", fmt.Sprintf("attempt %d", attempt))
			clock.Sleep(interval)
			interval = time.Duration(float64(interval) * s.retry.backoff())
		}
		ec.trace.add(clock.Now(), "task", s.target)
		if isComp {
			out, err = comp.run(e, ec, input)
		} else {
			// The step span's context rides into the platform, so the
			// invocation (queue, handler, and anything the handler touches)
			// joins the execution's trace instead of rooting its own.
			var res faas.Result
			res, err = e.platform.InvokeTrace(s.target, input, sp.Ctx())
			out = res.Output
			if err != nil && errors.Is(err, faas.ErrNoFunction) {
				return nil, fmt.Errorf("%w: %q", ErrUnknownTarget, s.target)
			}
		}
		if err == nil {
			return out, nil
		}
	}
	if s.catch != nil {
		ec.trace.add(clock.Now(), "catch", s.target)
		sp.SetAttr("catch", s.target)
		return s.catch.run(e, ec, input)
	}
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	return nil, err
}

func (s chainState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	cur := input
	for _, st := range s {
		out, err := st.run(e, ec, cur)
		if err != nil {
			return nil, err
		}
		cur = out
	}
	return cur, nil
}

func (s parallelState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	clock := e.platform.Clock()
	ec.trace.add(clock.Now(), "parallel", fmt.Sprintf("%d branches", len(s)))
	sp, ec := ec.childCtx("", "parallel")
	if sp != nil {
		sp.SetAttr("branches", fmt.Sprint(len(s)))
	}
	defer sp.End()
	outs := make([]json.RawMessage, len(s))
	errs := make([]error, len(s))
	var wg sync.WaitGroup
	for i, br := range s {
		i, br := i, br
		wg.Add(1)
		clock.Go(func() {
			defer wg.Done()
			out, err := br.run(e, ec, input)
			outs[i], errs[i] = out, err
		})
	}
	clock.BlockOn(wg.Wait)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return marshalArray(outs)
}

func (s choiceState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	for i, br := range s.branches {
		if br.When(input) {
			ec.trace.add(e.platform.Clock().Now(), "choice", fmt.Sprintf("branch %d", i))
			sp, ec := ec.childCtx("", "choice")
			if sp != nil {
				sp.SetAttr("branch", fmt.Sprint(i))
			}
			defer sp.End()
			return br.Then.run(e, ec, input)
		}
	}
	if s.fallback == nil {
		return nil, ErrNoChoice
	}
	ec.trace.add(e.platform.Clock().Now(), "choice", "default")
	sp, ec := ec.childCtx("", "choice")
	sp.SetAttr("branch", "default")
	defer sp.End()
	return s.fallback.run(e, ec, input)
}

func (s mapState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	var items []json.RawMessage
	if err := json.Unmarshal(input, &items); err != nil {
		return nil, fmt.Errorf("%w: Map needs a JSON array: %v", ErrBadInput, err)
	}
	clock := e.platform.Clock()
	ec.trace.add(clock.Now(), "map", fmt.Sprintf("%d items", len(items)))
	sp, ec := ec.childCtx("", "map")
	if sp != nil {
		sp.SetAttr("items", fmt.Sprint(len(items)))
	}
	defer sp.End()
	outs := make([]json.RawMessage, len(items))
	errs := make([]error, len(items))
	var wg sync.WaitGroup
	var sem chan struct{}
	if s.maxConc > 0 {
		sem = make(chan struct{}, s.maxConc)
	}
	for i, item := range items {
		i, item := i, item
		wg.Add(1)
		if sem != nil {
			clock.BlockOn(func() { sem <- struct{}{} })
		}
		clock.Go(func() {
			defer wg.Done()
			if sem != nil {
				defer func() { <-sem }()
			}
			out, err := s.iterator.run(e, ec, item)
			outs[i], errs[i] = out, err
		})
	}
	clock.BlockOn(wg.Wait)
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return marshalArray(outs)
}

func (s waitState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	ec.trace.add(e.platform.Clock().Now(), "wait", time.Duration(s).String())
	sp, _ := ec.childCtx("", "wait")
	e.platform.Clock().Sleep(time.Duration(s))
	sp.End()
	return input, nil
}

func (s passState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	if s.transform == nil {
		return input, nil
	}
	return s.transform(input)
}

func (s failState) run(e *Engine, ec *execCtx, input []byte) ([]byte, error) {
	return nil, fmt.Errorf("%w: %s", ErrFailed, string(s))
}

func marshalArray(outs []json.RawMessage) ([]byte, error) {
	for i, o := range outs {
		if len(o) == 0 {
			outs[i] = json.RawMessage("null")
		} else if !json.Valid(o) {
			// Function outputs are arbitrary bytes; wrap non-JSON output
			// as a JSON string so arrays always compose.
			q, _ := json.Marshal(string(o))
			outs[i] = q
		}
	}
	return json.Marshal(outs)
}
