package orchestrate

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/billing"
	"repro/internal/faas"
	"repro/internal/simclock"
)

// testEnv wires a virtual-clock platform with a few basic functions.
func testEnv(t *testing.T) (*simclock.Virtual, *faas.Platform, *billing.Meter, *Engine) {
	t.Helper()
	v := simclock.NewVirtual()
	t.Cleanup(v.Close)
	m := billing.NewMeter()
	p := faas.New(v, m)
	reg := func(name string, h faas.Handler) {
		if err := p.Register(name, "acme", h, faas.Config{ColdStart: time.Millisecond, MaxRetries: -1}); err != nil {
			t.Fatal(err)
		}
	}
	reg("upper", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(10 * time.Millisecond)
		return bytes.ToUpper(in), nil
	})
	reg("exclaim", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(10 * time.Millisecond)
		return append(in, '!'), nil
	})
	reg("len", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return json.Marshal(len(in))
	})
	return v, p, m, NewEngine(p)
}

func TestChainPipesOutput(t *testing.T) {
	v, _, _, e := testEnv(t)
	var out []byte
	var err error
	v.Run(func() {
		out, err = e.Execute(Chain(Task("upper"), Task("exclaim")), []byte("hi"))
	})
	if err != nil || string(out) != "HI!" {
		t.Fatalf("out = %q err = %v", out, err)
	}
}

func TestParallelFanOut(t *testing.T) {
	v, _, _, e := testEnv(t)
	var out []byte
	var err error
	v.Run(func() {
		out, err = e.Execute(Parallel(Task("upper"), Task("exclaim")), []byte("go"))
	})
	if err != nil {
		t.Fatal(err)
	}
	var arr []string
	if err := json.Unmarshal(out, &arr); err != nil {
		t.Fatalf("output %q not a JSON array: %v", out, err)
	}
	if arr[0] != "GO" || arr[1] != "go!" {
		t.Fatalf("arr = %v", arr)
	}
}

func TestParallelRunsConcurrently(t *testing.T) {
	v, p, _, e := testEnv(t)
	if err := p.Register("slow", "acme", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		ctx.Work(time.Second)
		return in, nil
	}, faas.Config{ColdStart: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	end := v.Run(func() {
		if _, err := e.Execute(Parallel(Task("slow"), Task("slow"), Task("slow")), nil); err != nil {
			t.Error(err)
		}
	})
	if el := end.Sub(simclock.Epoch); el > 1500*time.Millisecond {
		t.Fatalf("parallel branches serialized: %v", el)
	}
}

func TestChoiceRouting(t *testing.T) {
	v, _, _, e := testEnv(t)
	sm := Choice([]ChoiceBranch{
		{When: func(in []byte) bool { return strings.HasPrefix(string(in), "img:") }, Then: Task("upper")},
	}, Task("exclaim"))
	v.Run(func() {
		out, err := e.Execute(sm, []byte("img:cat"))
		if err != nil || string(out) != "IMG:CAT" {
			t.Errorf("branch out = %q err=%v", out, err)
		}
		out, err = e.Execute(sm, []byte("other"))
		if err != nil || string(out) != "other!" {
			t.Errorf("default out = %q err=%v", out, err)
		}
	})
}

func TestChoiceNoMatchNoDefault(t *testing.T) {
	v, _, _, e := testEnv(t)
	sm := Choice([]ChoiceBranch{
		{When: func([]byte) bool { return false }, Then: Task("upper")},
	}, nil)
	v.Run(func() {
		if _, err := e.Execute(sm, []byte("x")); !errors.Is(err, ErrNoChoice) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestMapAppliesPerElement(t *testing.T) {
	v, _, _, e := testEnv(t)
	input, _ := json.Marshal([]string{"a", "b", "c"})
	var out []byte
	var err error
	v.Run(func() {
		out, err = e.Execute(Map(Task("upper"), 2), input)
	})
	if err != nil {
		t.Fatal(err)
	}
	var arr []string
	if err := json.Unmarshal(out, &arr); err != nil {
		t.Fatalf("bad output %q: %v", out, err)
	}
	// upper receives the raw JSON element (`"a"`), uppercases it to `"A"`,
	// which is itself valid JSON and embeds directly in the output array.
	if len(arr) != 3 || arr[0] != "A" || arr[2] != "C" {
		t.Fatalf("arr = %q", arr)
	}
}

func TestMapRejectsNonArray(t *testing.T) {
	v, _, _, e := testEnv(t)
	v.Run(func() {
		if _, err := e.Execute(Map(Task("upper"), 0), []byte("notjson")); !errors.Is(err, ErrBadInput) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestWaitAdvancesClock(t *testing.T) {
	v, _, _, e := testEnv(t)
	end := v.Run(func() {
		out, err := e.Execute(Chain(Wait(time.Minute), Pass(nil)), []byte("keep"))
		if err != nil || string(out) != "keep" {
			t.Errorf("out = %q err = %v", out, err)
		}
	})
	if el := end.Sub(simclock.Epoch); el != time.Minute {
		t.Fatalf("elapsed = %v", el)
	}
}

func TestPassTransform(t *testing.T) {
	v, _, _, e := testEnv(t)
	double := Pass(func(in []byte) ([]byte, error) { return append(in, in...), nil })
	v.Run(func() {
		out, err := e.Execute(double, []byte("ab"))
		if err != nil || string(out) != "abab" {
			t.Errorf("out = %q err = %v", out, err)
		}
	})
}

func TestFailState(t *testing.T) {
	v, _, _, e := testEnv(t)
	v.Run(func() {
		if _, err := e.Execute(Fail("bad input"), nil); !errors.Is(err, ErrFailed) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestTaskRetryWithBackoff(t *testing.T) {
	v, p, _, e := testEnv(t)
	var calls int64
	if err := p.Register("flaky", "acme", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		if atomic.AddInt64(&calls, 1) < 3 {
			return nil, errors.New("transient")
		}
		return []byte("ok"), nil
	}, faas.Config{ColdStart: time.Millisecond, MaxRetries: -1}); err != nil {
		t.Fatal(err)
	}
	start := simclock.Epoch
	end := v.Run(func() {
		out, err := e.Execute(TaskRetry("flaky", RetryPolicy{MaxAttempts: 4, Interval: time.Second, Backoff: 2}), nil)
		if err != nil || string(out) != "ok" {
			t.Errorf("out = %q err = %v", out, err)
		}
	})
	if calls != 3 {
		t.Fatalf("calls = %d", calls)
	}
	// Two retries: backoff 1s + 2s = 3s minimum elapsed.
	if el := end.Sub(start); el < 3*time.Second {
		t.Fatalf("elapsed = %v, want ≥3s of backoff", el)
	}
}

func TestTaskCatchFallback(t *testing.T) {
	v, p, _, e := testEnv(t)
	if err := p.Register("broken", "acme", func(ctx *faas.Ctx, in []byte) ([]byte, error) {
		return nil, errors.New("always fails")
	}, faas.Config{ColdStart: time.Millisecond, MaxRetries: -1}); err != nil {
		t.Fatal(err)
	}
	sm := TaskCatch("broken", RetryPolicy{MaxAttempts: 2}, Task("exclaim"))
	v.Run(func() {
		out, err := e.Execute(sm, []byte("in"))
		if err != nil || string(out) != "in!" {
			t.Errorf("catch out = %q err = %v", out, err)
		}
	})
}

func TestUnknownTarget(t *testing.T) {
	v, _, _, e := testEnv(t)
	v.Run(func() {
		if _, err := e.Execute(Task("ghost"), nil); !errors.Is(err, ErrUnknownTarget) {
			t.Errorf("err = %v", err)
		}
	})
}

// TestCompositionIsAFunction checks Lopez property 2: a registered
// composition is invocable via Task, nested arbitrarily.
func TestCompositionIsAFunction(t *testing.T) {
	v, _, _, e := testEnv(t)
	if err := e.RegisterComposition("shout", Chain(Task("upper"), Task("exclaim"))); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterComposition("shout", Pass(nil)); err == nil {
		t.Fatal("duplicate composition allowed")
	}
	// Nest the composition inside another composition.
	outer := Chain(Task("shout"), Task("exclaim"))
	v.Run(func() {
		out, err := e.Execute(outer, []byte("hey"))
		if err != nil || string(out) != "HEY!!" {
			t.Errorf("out = %q err = %v", out, err)
		}
	})
}

// TestNoDoubleBilling checks Lopez property 3: executing a composition bills
// exactly the basic function invocations, nothing for the composition.
func TestNoDoubleBilling(t *testing.T) {
	v, p, m, e := testEnv(t)
	if err := e.RegisterComposition("pipeline", Chain(Task("upper"), Task("exclaim"), Task("len"))); err != nil {
		t.Fatal(err)
	}
	// Baseline: invoke the three functions directly.
	v.Run(func() {
		for _, f := range []string{"upper", "exclaim", "len"} {
			if _, err := p.Invoke(f, []byte("hi")); err != nil {
				t.Fatal(err)
			}
		}
	})
	directReqs := m.Units("acme", billing.ResInvocationReqs)
	directGBs := m.Units("acme", billing.ResInvocationGBs)
	m.Reset()

	v.Run(func() {
		if _, err := e.Execute(Task("pipeline"), []byte("hi")); err != nil {
			t.Fatal(err)
		}
	})
	if got := m.Units("acme", billing.ResInvocationReqs); got != directReqs {
		t.Fatalf("composition billed %v requests, direct %v — double billing", got, directReqs)
	}
	if got := m.Units("acme", billing.ResInvocationGBs); got != directGBs {
		t.Fatalf("composition billed %v GB-s, direct %v", got, directGBs)
	}
}

func TestExecuteTraced(t *testing.T) {
	v, _, _, e := testEnv(t)
	v.Run(func() {
		_, tr, err := e.ExecuteTraced(Chain(Task("upper"), Wait(time.Second), Task("exclaim")), []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		kinds := map[string]int{}
		for _, ev := range tr.Events {
			kinds[ev.Kind]++
		}
		if kinds["task"] != 2 || kinds["wait"] != 1 {
			t.Errorf("trace kinds = %v", kinds)
		}
	})
}
