package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// promName sanitizes an instrument name into the Prometheus exposition
// alphabet: dots and dashes become underscores, anything else non-alphanumeric
// is dropped.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		case c == '.', c == '-', c == '/', c == ':':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders the registry in Prometheus text exposition format:
// counters and gauges as-is, histograms as summaries (quantile labels plus
// _sum and _count, seconds units). No-op on nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		n := promName(c.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", n, n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		// Latency histograms export in seconds; value histograms (batch
		// sizes, fan-in) export their raw units.
		toUnit := func(d time.Duration) float64 { return d.Seconds() }
		n := promName(h.Name) + "_seconds"
		if h.Unit == "count" {
			toUnit = func(d time.Duration) float64 { return float64(d) }
			n = promName(h.Name)
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"0.5", toUnit(h.P50)},
			{"0.95", toUnit(h.P95)},
			{"0.99", toUnit(h.P99)},
		} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, q.label, q.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, toUnit(h.Sum), n, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented JSON. No-op on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WriteText renders a compact human-readable dump: counters, gauges, then
// histograms with count/mean/p50/p95/p99/max. No-op on nil.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%-40s %12d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "%-40s %12g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			// An empty window has no percentiles; say so instead of
			// rendering a row of misleading zeros.
			if _, err := fmt.Fprintf(w, "%-40s n=0          (no samples)\n", h.Name); err != nil {
				return err
			}
			continue
		}
		if h.Unit == "count" {
			if _, err := fmt.Fprintf(w, "%-40s n=%-8d mean=%-12d p50=%-12d p95=%-12d p99=%-12d max=%d\n",
				h.Name, h.Count, int64(h.Mean), int64(h.P50), int64(h.P95), int64(h.P99), int64(h.Max)); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-40s n=%-8d mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v\n",
			h.Name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max); err != nil {
			return err
		}
	}
	return nil
}
