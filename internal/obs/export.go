package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"
)

// promName sanitizes an instrument name into the Prometheus exposition
// alphabet: dots and dashes become underscores, anything else non-alphanumeric
// is dropped.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if b.Len() == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		case c == '.', c == '-', c == '/', c == ':':
			b.WriteByte('_')
		}
	}
	return b.String()
}

// escapeLabelValue escapes a label value per the exposition format:
// backslash, double-quote, and newline must be escaped inside `label="..."`.
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a `# HELP` string: backslash and newline only (quotes
// are legal in help text).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	return b.String()
}

// promLabelSet renders a {k="v",...} block from labels plus an optional
// extra pair (the summary quantile). Returns "" when there is nothing.
func promLabelSet(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(promName(l.Key))
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// writeHeader emits `# HELP` (when registered) and `# TYPE` once per metric
// name; labeled series of the same family share one header.
func (r *Registry) writeHeader(w io.Writer, last *string, rawName, promID, kind string) error {
	if promID == *last {
		return nil
	}
	*last = promID
	if help := r.HelpFor(rawName); help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", promID, escapeHelp(help)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", promID, kind)
	return err
}

// WritePrometheus renders the registry in Prometheus text exposition format:
// counters and gauges as-is, histograms as summaries (quantile labels plus
// _sum and _count, seconds units). Series order is the snapshot's sorted
// order — name, then label values — so successive scrapes diff cleanly.
// Label values and help strings are escaped per the format. No-op on nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	last := ""
	for _, c := range snap.Counters {
		n := promName(c.Name)
		if err := r.writeHeader(w, &last, c.Name, n, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", n, promLabelSet(c.Labels, "", ""), c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		n := promName(g.Name)
		if err := r.writeHeader(w, &last, g.Name, n, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", n, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		// Latency histograms export in seconds; value histograms (batch
		// sizes, fan-in) export their raw units.
		toUnit := func(d time.Duration) float64 { return d.Seconds() }
		n := promName(h.Name) + "_seconds"
		if h.Unit == "count" {
			toUnit = func(d time.Duration) float64 { return float64(d) }
			n = promName(h.Name)
		}
		if err := r.writeHeader(w, &last, h.Name, n, "summary"); err != nil {
			return err
		}
		for _, q := range []struct {
			label string
			v     float64
		}{
			{"0.5", toUnit(h.P50)},
			{"0.95", toUnit(h.P95)},
			{"0.99", toUnit(h.P99)},
		} {
			if _, err := fmt.Fprintf(w, "%s%s %g\n", n, promLabelSet(h.Labels, "quantile", q.label), q.v); err != nil {
				return err
			}
		}
		ls := promLabelSet(h.Labels, "", "")
		if _, err := fmt.Fprintf(w, "%s_sum%s %g\n%s_count%s %d\n", n, ls, toUnit(h.Sum), n, ls, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders the registry snapshot as indented JSON. No-op on nil.
func (r *Registry) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// textName renders "name{k=v,...}" for the human-readable dump.
func textName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WriteText renders a compact human-readable dump: counters, gauges, then
// histograms with count/mean/p50/p95/p99/max. Histograms with a p99
// exemplar append the linked trace id. No-op on nil.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if _, err := fmt.Fprintf(w, "%-40s %12d\n", textName(c.Name, c.Labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range snap.Gauges {
		if _, err := fmt.Fprintf(w, "%-40s %12g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range snap.Histograms {
		name := textName(h.Name, h.Labels)
		if h.Count == 0 {
			// An empty window has no percentiles; say so instead of
			// rendering a row of misleading zeros.
			if _, err := fmt.Fprintf(w, "%-40s n=0          (no samples)\n", name); err != nil {
				return err
			}
			continue
		}
		exemplar := ""
		if h.ExemplarP99 != 0 {
			exemplar = fmt.Sprintf(" p99_trace=%d", h.ExemplarP99)
		}
		if h.Unit == "count" {
			if _, err := fmt.Fprintf(w, "%-40s n=%-8d mean=%-12d p50=%-12d p95=%-12d p99=%-12d max=%d%s\n",
				name, h.Count, int64(h.Mean), int64(h.P50), int64(h.P95), int64(h.P99), int64(h.Max), exemplar); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%-40s n=%-8d mean=%-12v p50=%-12v p95=%-12v p99=%-12v max=%v%s\n",
			name, h.Count, h.Mean, h.P50, h.P95, h.P99, h.Max, exemplar); err != nil {
			return err
		}
	}
	return nil
}
