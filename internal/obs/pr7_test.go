package obs

// PR7 unit coverage: labeled vec cardinality and overflow folding, tail-
// sampler determinism, SLO burn-rate math on the virtual clock, histogram
// exemplars, and the Prometheus exposition golden file.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

func TestCounterVecCardinalityCap(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	r := New(v)
	cv := r.CounterVec("api.requests", "tenant")
	cv.SetMaxSeries(3)
	for i := 0; i < 10; i++ {
		cv.With(fmt.Sprintf("t%d", i)).Inc()
	}
	// Interned series keep their identity; the overflow series absorbs the
	// other seven.
	cv.With("t0").Inc()
	snap := r.Snapshot()
	var seen []string
	var otherVal, t0Val int64
	for _, c := range snap.Counters {
		if c.Name != "api.requests" {
			continue
		}
		val := c.Labels[0].Value
		seen = append(seen, val)
		switch val {
		case OverflowLabel:
			otherVal = c.Value
		case "t0":
			t0Val = c.Value
		}
	}
	if len(seen) != 4 { // t0, t1, t2 + __other__
		t.Fatalf("got series %v, want 3 interned + overflow", seen)
	}
	if !sort.StringsAreSorted(seen) {
		t.Fatalf("series must export in sorted order, got %v", seen)
	}
	if otherVal != 7 {
		t.Fatalf("__other__ = %d, want 7", otherVal)
	}
	if t0Val != 2 {
		t.Fatalf("t0 = %d, want 2", t0Val)
	}
	// Wrong arity folds into overflow instead of panicking.
	cv.With("a", "b").Inc()
	if got := cv.With("nope", "extra"); got != cv.With("also", "wrong", "arity") {
		t.Fatal("wrong-arity calls must share the overflow counter")
	}
}

func TestVecConcurrentAccess(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	r := New(v)
	cv := r.CounterVec("stress.counter", "tenant", "fn")
	hv := r.HistogramVec("stress.latency", "tenant")
	cv.SetMaxSeries(8)
	hv.SetMaxSeries(8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				cv.With(fmt.Sprintf("tenant-%d", (g+i)%16), "fn").Inc()
				hv.With(fmt.Sprintf("tenant-%d", i%16)).Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	var total int64
	for _, c := range r.Snapshot().Counters {
		if c.Name == "stress.counter" {
			total += c.Value
		}
	}
	if total != 8*500 {
		t.Fatalf("counted %d increments across series, want %d", total, 8*500)
	}
}

func TestTailSamplerDeterministic(t *testing.T) {
	run := func() ([]string, TracerStats) {
		v := simclock.NewVirtual()
		defer v.Close()
		r := New(v)
		tr := r.Tracer()
		tr.SetSampler(SamplerConfig{Seed: 42, KeepFraction: 0.4, SlowThreshold: 50 * time.Millisecond})
		v.Run(func() {
			for i := 0; i < 100; i++ {
				root := tr.Start(TraceCtx{}, fmt.Sprintf("req-%d", i))
				v.Sleep(time.Millisecond)
				root.End()
			}
			// One failed and one slow trace: always kept, whatever the dice say.
			failed := tr.Start(TraceCtx{}, "req-failed")
			failed.EndErr(true)
			slow := tr.Start(TraceCtx{}, "req-slow")
			v.Sleep(time.Second)
			slow.End()
		})
		var kept []string
		for _, s := range tr.Traces() {
			kept = append(kept, s.Name)
		}
		return kept, tr.Stats()
	}
	kept1, st1 := run()
	kept2, st2 := run()
	if strings.Join(kept1, ",") != strings.Join(kept2, ",") {
		t.Fatalf("kept sets differ across identical runs:\n%v\n%v", kept1, kept2)
	}
	if st1.KeptTraces != st2.KeptTraces || st1.DiscardedTraces != st2.DiscardedTraces {
		t.Fatalf("sampler stats differ: %+v vs %+v", st1, st2)
	}
	if st1.DiscardedTraces == 0 || st1.KeptTraces == int64(len(kept1)) && st1.DiscardedTraces == 0 {
		t.Fatalf("KeepFraction 0.4 discarded nothing: %+v", st1)
	}
	has := func(name string) bool {
		for _, k := range kept1 {
			if k == name {
				return true
			}
		}
		return false
	}
	if !has("req-failed") {
		t.Fatal("failed trace was sampled out; errors must always be kept")
	}
	if !has("req-slow") {
		t.Fatal("slow trace was sampled out; tail latencies must always be kept")
	}
}

func TestSLOBurnRates(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	r := New(v)
	eng := r.SLO()
	eng.SetObjective("acme", SLOConfig{Objective: 0.999, LatencyTarget: 100 * time.Millisecond, LatencyObjective: 0.99})
	s := eng.Tenant("acme")
	v.Run(func() {
		// 2% error rate against a 0.1% budget → burn 20 in every window →
		// page (fast pair ≥ 14.4) and ticket (slow pair ≥ 3.0).
		for i := 0; i < 1000; i++ {
			s.Record(10*time.Millisecond, i%50 == 0)
		}
	})
	snaps := eng.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("got %d tenants, want 1", len(snaps))
	}
	snap := snaps[0]
	if len(snap.Windows) != len(BurnWindows) {
		t.Fatalf("got %d windows, want %d", len(snap.Windows), len(BurnWindows))
	}
	for _, w := range snap.Windows {
		if w.Total != 1000 || w.Errors != 20 {
			t.Fatalf("window %v: total=%d errors=%d, want 1000/20", w.Window, w.Total, w.Errors)
		}
		if w.ErrorBurn < 19.9 || w.ErrorBurn > 20.1 {
			t.Fatalf("window %v: error burn %.2f, want ~20", w.Window, w.ErrorBurn)
		}
		if w.LatencyBurn != 0 {
			t.Fatalf("window %v: latency burn %.2f, want 0 (all requests fast)", w.Window, w.LatencyBurn)
		}
	}
	if !snap.ErrorPage || !snap.ErrorTicket {
		t.Fatalf("burn 20 must page and ticket: %+v", snap)
	}
	if snap.LatencyPage || snap.LatencyTicket {
		t.Fatalf("latency alerts must stay clear: %+v", snap)
	}

	// 6h+ later every bucket has aged out of all windows.
	v.Run(func() { v.Sleep(sloMaxWindow + time.Minute) })
	for _, w := range eng.Snapshot()[0].Windows {
		if w.Total != 0 {
			t.Fatalf("window %v still holds %d requests after ring aged out", w.Window, w.Total)
		}
	}

	// Slow-but-successful traffic trips the latency objective only.
	v.Run(func() {
		for i := 0; i < 1000; i++ {
			s.Record(500*time.Millisecond, false) // > 100ms target, 1% budget → burn 100
		}
	})
	snap = eng.Snapshot()[0]
	if !snap.LatencyPage || !snap.LatencyTicket {
		t.Fatalf("all-slow traffic must trip latency alerts: %+v", snap)
	}
	if snap.ErrorPage || snap.ErrorTicket {
		t.Fatalf("error alerts must stay clear on successful traffic: %+v", snap)
	}
}

func TestHistogramExemplars(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	r := New(v)
	h := r.Histogram("api.latency")
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	// The slow tail (10% of samples) owns the p95/p99 buckets, so its last
	// trace id surfaces as the exemplar.
	for i := 0; i < 10; i++ {
		h.ObserveTrace(2*time.Second, 7777)
	}
	snap := r.Snapshot()
	var found bool
	for _, hs := range snap.Histograms {
		if hs.Name != "api.latency" {
			continue
		}
		found = true
		if hs.ExemplarP99 != 7777 {
			t.Fatalf("ExemplarP99 = %d, want 7777", hs.ExemplarP99)
		}
	}
	if !found {
		t.Fatal("api.latency missing from snapshot")
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "p99_trace=7777") {
		t.Fatalf("text dump missing exemplar link:\n%s", buf.String())
	}
}

// TestPrometheusGolden pins the exposition format byte-for-byte: header
// dedup per family, labeled series in sorted order, escaped label values and
// help strings, summaries with quantile/_sum/_count. Regenerate with
// `go test ./internal/obs -run TestPrometheusGolden -update` after an
// intentional format change.
func TestPrometheusGolden(t *testing.T) {
	v := simclock.NewVirtual()
	defer v.Close()
	r := New(v)

	r.SetHelp("api.requests", "Requests per tenant.\nSecond line with a \\ backslash.")
	cv := r.CounterVec("api.requests", "tenant", "function")
	cv.With("acme", "resize").Add(3)
	cv.With(`quo"ted`, "fn\\path").Inc()
	cv.With("multi\nline", "f").Inc()

	r.SetHelp("build.info", "Static build marker.")
	r.Counter("build.info").Inc()
	r.Gauge("pool.size").Set(4)

	r.SetHelp("api.latency", "Request latency.")
	hv := r.HistogramVec("api.latency", "tenant")
	for i := 0; i < 100; i++ {
		hv.With("acme").Observe(5 * time.Millisecond)
	}
	hv.With("acme").Observe(400 * time.Millisecond)
	r.ValueHistogram("batch.size").ObserveValue(8)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "prom_golden.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("prometheus exposition drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
	// Spot-check the load-bearing escapes so a stale golden can't hide them.
	out := buf.String()
	for _, needle := range []string{
		`tenant="quo\"ted"`,
		`function="fn\\path"`,
		`tenant="multi\nline"`,
		`Second line with a \\ backslash.`,
	} {
		if !strings.Contains(out, needle) {
			t.Fatalf("exposition missing escape %q:\n%s", needle, out)
		}
	}
}
