package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/simclock"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	// None of these may panic, and reads return zero values.
	r.Counter("c").Inc()
	r.Counter("c").Add(5)
	r.Gauge("g").Set(3)
	r.Gauge("g").Add(1)
	r.Histogram("h").Observe(time.Second)
	if got := r.Counter("c").Value(); got != 0 {
		t.Fatalf("nil counter value = %d", got)
	}
	if got := r.Gauge("g").Value(); got != 0 {
		t.Fatalf("nil gauge value = %g", got)
	}
	if got := r.Histogram("h").Snapshot(); got.Count != 0 {
		t.Fatalf("nil histogram count = %d", got.Count)
	}
	if snap := r.Snapshot(); len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty")
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	sp := r.Tracer().StartSpan("root")
	sp.SetAttr("k", "v")
	child := sp.StartChild("child")
	child.End()
	sp.End()
	if spans := r.Tracer().Spans(); spans != nil {
		t.Fatalf("nil tracer returned spans")
	}
	if out, err := r.Tracer().ExportJSON(); err != nil || string(out) != "[]" {
		t.Fatalf("nil tracer export = %q, %v", out, err)
	}
}

func TestCounterConcurrent(t *testing.T) {
	r := New(nil)
	c := r.Counter("hits")
	const workers, perWorker = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
}

func TestGauge(t *testing.T) {
	r := New(nil)
	g := r.Gauge("pool")
	g.Set(10)
	g.Add(-2.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("gauge = %g, want 7.5", got)
	}
}

func TestHistogramPercentiles(t *testing.T) {
	r := New(nil)
	h := r.Histogram("lat")
	// 1..1000 ms, uniform: p50≈500ms, p95≈950ms, p99≈990ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	snap := h.Snapshot()
	if snap.Count != 1000 {
		t.Fatalf("count = %d", snap.Count)
	}
	wantSum := time.Duration(1000*1001/2) * time.Millisecond
	if snap.Sum != wantSum {
		t.Fatalf("sum = %v, want %v", snap.Sum, wantSum)
	}
	check := func(name string, got, want time.Duration) {
		t.Helper()
		// Log-linear buckets guarantee ≤ 12.5% relative error.
		if err := math.Abs(float64(got-want)) / float64(want); err > 0.125 {
			t.Errorf("%s = %v, want ~%v (err %.1f%%)", name, got, want, err*100)
		}
	}
	check("p50", snap.P50, 500*time.Millisecond)
	check("p95", snap.P95, 950*time.Millisecond)
	check("p99", snap.P99, 990*time.Millisecond)
	if snap.Max != time.Second {
		t.Fatalf("max = %v, want 1s", snap.Max)
	}
}

func TestHistogramBucketsRoundTrip(t *testing.T) {
	// Every bucket's upper bound must map back into that bucket, and bucket
	// indices must be monotone in the observed value.
	for idx := 0; idx <= maxBucket; idx++ {
		up := bucketUpper(idx)
		if up == math.MaxInt64 {
			continue
		}
		if got := bucketOf(up); got != idx {
			t.Fatalf("bucketOf(bucketUpper(%d)=%d) = %d", idx, up, got)
		}
	}
	prev := -1
	for _, ns := range []int64{0, 1, 7, 8, 9, 100, 1e3, 1e6, 1e9, 1e12, math.MaxInt64} {
		idx := bucketOf(ns)
		if idx < prev {
			t.Fatalf("bucketOf not monotone at %d", ns)
		}
		prev = idx
	}
}

func TestTracerVirtualClockDeterministic(t *testing.T) {
	run := func() []SpanData {
		v := simclock.NewVirtual()
		defer v.Close()
		r := New(v)
		v.Run(func() {
			root := r.Tracer().StartSpan("exec")
			v.Sleep(10 * time.Millisecond)
			child := root.StartChild("step")
			child.SetAttr("target", "fn")
			v.Sleep(30 * time.Millisecond)
			child.End()
			root.End()
		})
		return r.Tracer().Spans()
	}
	a, b := run(), run()
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if !bytes.Equal(ja, jb) {
		t.Fatalf("traces differ across identical runs:\n%s\n%s", ja, jb)
	}
	if len(a) != 2 {
		t.Fatalf("got %d spans, want 2", len(a))
	}
	// Completion order: child first.
	if a[0].Name != "step" || a[0].Duration != 30*time.Millisecond {
		t.Fatalf("child span = %+v", a[0])
	}
	if a[1].Name != "exec" || a[1].Duration != 40*time.Millisecond {
		t.Fatalf("root span = %+v", a[1])
	}
	if a[0].TraceID != a[1].TraceID || a[0].ParentID != a[1].SpanID {
		t.Fatalf("span lineage wrong: %+v / %+v", a[0], a[1])
	}
}

func TestTracerSpanCap(t *testing.T) {
	r := New(nil)
	tr := r.Tracer()
	tr.SetMaxSpans(10)
	for i := 0; i < 25; i++ {
		tr.StartSpan("s").End()
	}
	if got := len(tr.Spans()); got != 10 {
		t.Fatalf("retained %d spans, want 10", got)
	}
	if got := tr.Dropped(); got != 15 {
		t.Fatalf("dropped = %d, want 15", got)
	}
	tr.Reset()
	if len(tr.Spans()) != 0 || tr.Dropped() != 0 {
		t.Fatalf("reset did not clear")
	}
}

func TestPrometheusAndJSONExport(t *testing.T) {
	r := New(nil)
	r.Counter("faas.invoke.cold").Add(3)
	r.Gauge("jiffy.blocks.inuse").Set(12)
	r.Histogram("faas.invoke.latency").Observe(250 * time.Millisecond)

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE faas_invoke_cold counter",
		"faas_invoke_cold 3",
		"# TYPE jiffy_blocks_inuse gauge",
		"jiffy_blocks_inuse 12",
		"# TYPE faas_invoke_latency_seconds summary",
		`faas_invoke_latency_seconds{quantile="0.99"}`,
		"faas_invoke_latency_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(js.Bytes(), &snap); err != nil {
		t.Fatalf("json dump not parseable: %v", err)
	}
	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("json counters = %+v", snap.Counters)
	}
}

func TestHTTPHandler(t *testing.T) {
	r := New(nil)
	r.Counter("hits").Inc()
	r.Tracer().StartSpan("root").End()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for path, want := range map[string]string{
		"/metrics":      "hits 1",
		"/metrics.json": `"hits"`,
		"/trace":        `"root"`,
		"/debug/pprof/": "profile",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), want) {
			t.Errorf("%s: response missing %q", path, want)
		}
	}
}
