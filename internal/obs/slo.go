package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/simclock"
)

// The SLO engine keeps per-tenant windowed rollups on the platform clock and
// evaluates multi-window burn rates, Google-SRE style: a fast pair (5m + 1h)
// that pages, and a slow pair (30m + 6h) that tickets. Burn rate is the
// fraction of the error budget consumed relative to the rate that would
// exactly exhaust it over the objective period: burn 1.0 = on budget, burn
// 14.4 = the whole 30-day budget gone in 2 days.
const (
	sloBucket      = 30 * time.Second // rollup resolution
	sloRingLen     = 721              // 6h of buckets plus the in-progress one
	sloMaxWindow   = 6 * time.Hour
	PageBurnRate   = 14.4 // both fast windows at/above this → page
	TicketBurnRate = 3.0  // both slow windows at/above this → ticket
)

// BurnWindows lists the evaluated windows, fast pair first.
var BurnWindows = []time.Duration{5 * time.Minute, time.Hour, 30 * time.Minute, sloMaxWindow}

// SLOConfig is one tenant's objectives.
type SLOConfig struct {
	Objective        float64       `json:"objective"`         // availability target, e.g. 0.999
	LatencyTarget    time.Duration `json:"latency_target_ns"` // requests slower than this are "slow"
	LatencyObjective float64       `json:"latency_objective"` // fraction that must be fast, e.g. 0.99
}

// DefaultSLOConfig is applied to tenants without an explicit objective.
var DefaultSLOConfig = SLOConfig{
	Objective:        0.999,
	LatencyTarget:    500 * time.Millisecond,
	LatencyObjective: 0.99,
}

type sloCell struct {
	epoch int64 // bucket epoch (now / sloBucket); stale cells are lazily reset
	total int64
	errs  int64
	slow  int64
}

// TenantSLO accumulates one tenant's request outcomes. Handles are resolved
// once at function-registration time; Record is a mutex plus integer
// arithmetic — no allocation, no map access.
type TenantSLO struct {
	name  string
	clock simclock.Clock

	mu      sync.Mutex
	cfg     SLOConfig
	buckets [sloRingLen]sloCell
}

// Record adds one request outcome. No-op on nil.
func (s *TenantSLO) Record(d time.Duration, failed bool) {
	if s == nil {
		return
	}
	ep := s.clock.Now().UnixNano() / int64(sloBucket)
	s.mu.Lock()
	c := &s.buckets[ep%sloRingLen]
	if c.epoch != ep {
		*c = sloCell{epoch: ep}
	}
	c.total++
	if failed {
		c.errs++
	}
	if d > s.cfg.LatencyTarget {
		c.slow++
	}
	s.mu.Unlock()
}

// windowLocked sums the cells covering [now-w, now]. Caller holds s.mu.
func (s *TenantSLO) windowLocked(nowEp int64, w time.Duration) (total, errs, slow int64) {
	n := int64(w / sloBucket)
	if n < 1 {
		n = 1
	}
	for i := int64(0); i < n; i++ {
		ep := nowEp - i
		if ep < 0 {
			break
		}
		c := &s.buckets[ep%sloRingLen]
		if c.epoch == ep {
			total += c.total
			errs += c.errs
			slow += c.slow
		}
	}
	return
}

// SLOWindow is one evaluated burn window.
type SLOWindow struct {
	Window      time.Duration `json:"window_ns"`
	Total       int64         `json:"total"`
	Errors      int64         `json:"errors"`
	Slow        int64         `json:"slow"`
	ErrorBurn   float64       `json:"error_burn"`
	LatencyBurn float64       `json:"latency_burn"`
}

// SLOSnapshot is one tenant's evaluated SLO state.
type SLOSnapshot struct {
	Tenant        string      `json:"tenant"`
	Config        SLOConfig   `json:"config"`
	Windows       []SLOWindow `json:"windows"`
	ErrorPage     bool        `json:"error_page"`
	ErrorTicket   bool        `json:"error_ticket"`
	LatencyPage   bool        `json:"latency_page"`
	LatencyTicket bool        `json:"latency_ticket"`
}

// snapshot evaluates all burn windows at the current clock instant.
func (s *TenantSLO) snapshot() SLOSnapshot {
	nowEp := s.clock.Now().UnixNano() / int64(sloBucket)
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SLOSnapshot{Tenant: s.name, Config: s.cfg}
	errBudget := 1 - s.cfg.Objective
	latBudget := 1 - s.cfg.LatencyObjective
	burns := make([]SLOWindow, 0, len(BurnWindows))
	for _, w := range BurnWindows {
		total, errs, slow := s.windowLocked(nowEp, w)
		win := SLOWindow{Window: w, Total: total, Errors: errs, Slow: slow}
		if total > 0 {
			if errBudget > 0 {
				win.ErrorBurn = float64(errs) / float64(total) / errBudget
			}
			if latBudget > 0 {
				win.LatencyBurn = float64(slow) / float64(total) / latBudget
			}
		}
		burns = append(burns, win)
	}
	snap.Windows = burns
	// burns[0..1] is the fast pair (5m, 1h); burns[2..3] the slow (30m, 6h).
	snap.ErrorPage = burns[0].ErrorBurn >= PageBurnRate && burns[1].ErrorBurn >= PageBurnRate
	snap.LatencyPage = burns[0].LatencyBurn >= PageBurnRate && burns[1].LatencyBurn >= PageBurnRate
	snap.ErrorTicket = burns[2].ErrorBurn >= TicketBurnRate && burns[3].ErrorBurn >= TicketBurnRate
	snap.LatencyTicket = burns[2].LatencyBurn >= TicketBurnRate && burns[3].LatencyBurn >= TicketBurnRate
	return snap
}

// SLOEngine hands out per-tenant SLO accumulators.
type SLOEngine struct {
	clock simclock.Clock

	mu      sync.RWMutex
	tenants map[string]*TenantSLO
}

func newSLOEngine(clock simclock.Clock) *SLOEngine {
	return &SLOEngine{clock: clock, tenants: map[string]*TenantSLO{}}
}

// Tenant returns (creating with defaults if needed) the tenant's
// accumulator. Nil engine → nil accumulator, whose Record no-ops.
func (e *SLOEngine) Tenant(name string) *TenantSLO {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	s := e.tenants[name]
	e.mu.RUnlock()
	if s != nil {
		return s
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if s = e.tenants[name]; s == nil {
		s = &TenantSLO{name: name, clock: e.clock, cfg: DefaultSLOConfig}
		e.tenants[name] = s
	}
	return s
}

// SetObjective replaces a tenant's objectives (creating the tenant if
// needed). Zero fields fall back to defaults. Nil-safe.
func (e *SLOEngine) SetObjective(name string, cfg SLOConfig) {
	if e == nil {
		return
	}
	if cfg.Objective <= 0 || cfg.Objective >= 1 {
		cfg.Objective = DefaultSLOConfig.Objective
	}
	if cfg.LatencyTarget <= 0 {
		cfg.LatencyTarget = DefaultSLOConfig.LatencyTarget
	}
	if cfg.LatencyObjective <= 0 || cfg.LatencyObjective >= 1 {
		cfg.LatencyObjective = DefaultSLOConfig.LatencyObjective
	}
	s := e.Tenant(name)
	s.mu.Lock()
	s.cfg = cfg
	s.mu.Unlock()
}

// Snapshot evaluates every tenant, sorted by name. Empty on nil.
func (e *SLOEngine) Snapshot() []SLOSnapshot {
	if e == nil {
		return nil
	}
	e.mu.RLock()
	tenants := make([]*TenantSLO, 0, len(e.tenants))
	for _, s := range e.tenants {
		tenants = append(tenants, s)
	}
	e.mu.RUnlock()
	sort.Slice(tenants, func(i, j int) bool { return tenants[i].name < tenants[j].name })
	out := make([]SLOSnapshot, 0, len(tenants))
	for _, s := range tenants {
		out = append(out, s.snapshot())
	}
	return out
}

// WriteSLOText renders the engine's current evaluation as a human-readable
// report (the `taureau -slo` output).
func (e *SLOEngine) WriteSLOText(w io.Writer) error {
	snaps := e.Snapshot()
	if len(snaps) == 0 {
		_, err := fmt.Fprintln(w, "no tenants with recorded traffic")
		return err
	}
	for _, s := range snaps {
		alert := "ok"
		switch {
		case s.ErrorPage || s.LatencyPage:
			alert = "PAGE"
		case s.ErrorTicket || s.LatencyTicket:
			alert = "TICKET"
		}
		if _, err := fmt.Fprintf(w, "tenant %-16s objective=%.4f latency<=%s@%.3f  [%s]\n",
			s.Tenant, s.Config.Objective, s.Config.LatencyTarget, s.Config.LatencyObjective, alert); err != nil {
			return err
		}
		for _, win := range s.Windows {
			if _, err := fmt.Fprintf(w, "  window %-6s total=%-8d errors=%-6d slow=%-6d err_burn=%-8.2f lat_burn=%-8.2f\n",
				win.Window, win.Total, win.Errors, win.Slow, win.ErrorBurn, win.LatencyBurn); err != nil {
				return err
			}
		}
	}
	return nil
}
